// Package repro reproduces "RDF Query Answering Using Apache Spark:
// Review and Assessment" (Agathangelos, Troullinou, Kondylakis,
// Stefanidis, Plexousakis — ICDE Workshops 2018) as a working Go
// library: a simulated Spark substrate (RDD, DataFrames, Spark SQL,
// GraphX, GraphFrames), a full RDF + SPARQL stack, and from-scratch
// implementations of all nine systems the survey covers, plus the
// assessment harness that measures them against each other.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// per-table/figure reproduction record. The benchmarks in this package
// (bench_test.go) regenerate every artifact of the paper.
package repro
