// Package repro reproduces "RDF Query Answering Using Apache Spark:
// Review and Assessment" (Agathangelos, Troullinou, Kondylakis,
// Stefanidis, Plexousakis — ICDE Workshops 2018) as a working Go
// library: a simulated Spark substrate (RDD, DataFrames, Spark SQL,
// GraphX, GraphFrames), a full RDF + SPARQL stack, and from-scratch
// implementations of all nine systems the survey covers, plus the
// assessment harness that measures them against each other.
//
// # Execution-path architecture
//
// Two hot paths carry every benchmark and conformance test:
//
//   - The shuffle path (internal/spark). PartitionBy scatters in
//     parallel — one map-side task per source partition writes
//     per-destination buckets, merged deterministically in source
//     order — and meters shuffle bytes by structurally sampling a few
//     boundary records (internal/spark/sizer.go), never by collecting
//     the dataset to the driver. Join and CoGroup skip the shuffle for
//     sides that are already key-partitioned with the matching
//     partition count, and SortBy performs a range-partitioned merge:
//     sampled splits, one scatter shuffle, parallel per-range sorts.
//     Aggregating shuffles go through CombineByKey's combiner-aware
//     scatter: values fold into per-destination combiner maps while
//     records are being placed, so exactly one combined record per
//     (source partition, key) crosses the shuffle, combined records
//     are materialized once at their destination, and destinations
//     merge source buckets in source order (deterministic key order).
//     ReduceByKey, CountByKey, Distinct, and the DataFrame aggregates
//     all ride this path; GroupByKey deliberately keeps shuffling the
//     raw dataset (the survey's reduceByKey-vs-groupByKey contrast)
//     but folds scattered buckets straight into groups with no merged
//     intermediate.
//
//   - The reference evaluator (internal/sparql over internal/rdf).
//     Queries are slot-compiled: a Var→slot table is built once per
//     query and every partial solution is a []rdf.TermID row over the
//     graph's dictionary-encoded triples (rdf.Graph.Encoded), the
//     HAQWA-style integer encoding. BGP patterns are reordered by
//     estimated selectivity from the SPARQLGX-style rdf.Stats, rows
//     are bump-allocated from arenas, and solution modifiers
//     (projection, DISTINCT, ORDER BY, LIMIT, ASK) run in id space so
//     only surviving rows are decoded back to terms. Graph lookups
//     (WithSubject/WithPredicate/WithObject) return zero-copy index
//     views. Joins (Group folds, OPTIONAL) run as id-space hash joins:
//     the join key is the slots bound in every row of both sides, the
//     smaller side is hashed on it, candidates are verified with the
//     full compatibility check, and a counting pass pre-sizes the
//     output and the arena so a join allocates O(1) beyond its result
//     rows. Sides sharing no slots (cartesian) or only partially bound
//     on the key fall back to the nested loop, which stays the
//     semantic baseline. Allocation-regression tests pin all of these
//     invariants.
//
// # Query service
//
// internal/server wraps the reference evaluator in the thing the
// survey frames these systems as: a concurrent query-answering
// service. The serving contract is built on a compile-once/run-many
// split in internal/sparql:
//
//   - sparql.Prepare(text) parses once and builds the Var→slot table;
//     the resulting Prepared is goroutine-safe — any number of
//     (*Prepared).Run(ctx, g) calls may execute concurrently, each on
//     its own arena. Run honors context cancellation with an amortized
//     check (one poll per 1024 rows) inside the scan and join loops,
//     so deadlines and client disconnects abort long joins promptly
//     without costing the pinned allocations per operation. A context
//     that can never be cancelled costs the hot loops one nil check.
//   - Prepared memoizes, per BGP, the compiled patterns (constants
//     resolved to dictionary ids, selectivity-ordered) for one graph
//     snapshot, identified by (EncodedView pointer, triple count):
//     re-running on an unchanged graph skips constant encoding,
//     estimation, and join ordering; an Add invalidates by changing
//     the count. Published plans are immutable and shared lock-free by
//     concurrent runs. (*Prepared).RunSolutions returns id-space rows
//     whose terms decode on access, for streaming serializers.
//
// # Morsel-driven intra-query parallelism
//
// A single Run additionally uses every core (sparql.WithParallelism,
// default GOMAXPROCS; rdfserve -query-parallelism): each BGP's
// most-selective seed scan and each hash join's probe side split into
// fixed-size morsels — contiguous 1024-item subranges of the serial
// iteration order (rdf.MorselBounds) — dispatched to a per-Run worker
// pool. Each worker owns a private row arena and cancellation latch
// and shares only immutable run state; results merge in morsel order
// (build-left probes scatter through per-(morsel, build-row) cursors
// computed by a counting pass), so output is byte-identical to the
// serial evaluator at every width — TestParallelRunDeterminism pins
// rows and order across widths 1/4/16 under the race detector. The
// first environment to observe ctx.Done() raises a shared stop flag
// that every worker and the dispatcher pick up at their next amortized
// poll. Below two morsels of input everything stays serial, so the
// serial allocation pins are untouched. LIMIT pushes below the
// modifier pipeline: ORDER BY + LIMIT selects its K rows with a
// bounded heap (stable-sort-identical ties, BenchmarkEvalTopK) and
// LIMIT without ORDER BY stops morsel dispatch — and the serial scan —
// as soon as OFFSET+LIMIT leading rows exist.
//
// # Sharded execution
//
// internal/shard turns the partitioning strategies of
// internal/partition into a live execution substrate. A ShardedGraph
// splits one dataset into N rdf.Graph shards under any
// partition.Strategy — selected by name through the partition.ByName
// registry — while every shard encodes through one shared
// rdf.Dictionary, so TermIDs are globally consistent and all
// cross-shard work stays in id space. The distributed executor
// (sparql.RunSharded) routes each prepared query by placement: a
// single-BGP subject star pushes down whole to each shard when the
// placement co-located subjects (verified at build time, not assumed),
// with no cross-shard join; everything else scatters per pattern and
// folds the gathered matches with the single-graph id-space hash
// joins. Shards whose indexes cannot contribute a candidate are pruned
// unscanned (the vertical/semantic payoff), reported through
// ExplainShards and the /stats sharding block. Determinism contract:
// shards preserve dataset insertion order, every triple's global
// position keys the k-way gather merge, and the plan compiles from the
// summed global statistics — so sharded output is byte-identical (rows
// and order) to a single-graph run at any shard count and parallelism,
// pinned by the cross-strategy determinism suite under the race
// detector. rdfserve -shards N -partition <name> serves it;
// rdfbench -shards compares strategies by end-to-end query latency.
//
// The server itself holds one read-only rdf.Graph (single-writer/
// many-reader: Encoded and Stats fill lazily under a lock, all other
// read paths are lock-free), an LRU plan cache keyed by exact query
// text (a hit returns the shared Prepared and skips parse + compile
// entirely — BenchmarkServeCachedQuery measures the gap), a bounded
// worker pool whose admission queue charges waiting time against the
// query's deadline, and streaming SPARQL JSON / TSV writers that
// decode each surviving row straight into the response buffer, never
// materializing []Binding. /healthz and /stats (plan-cache counters,
// in-flight gauge, latency histogram, morsel-execution counters)
// expose the service's state.
//
// # Fault model
//
// The surveyed Spark systems inherit lineage-based fault tolerance
// from the platform: a lost task re-runs from its lineage and the job's
// answer never changes. The native engine reproduces that contract
// in-process, at two granularities. Morsel tasks are pure and
// idempotent over immutable run state (probe tasks re-initialize their
// private cursor row on entry), so a panicking or fault-injected task
// is recovered and re-run up to a fixed attempt budget before the
// query — never the process — fails with a typed sparql.PanicError.
// Per-shard ops run against replica views (shard.BuildReplicated):
// every replica encodes the same triples in the same order through the
// shared dictionary, so scans are byte-identical from any replica and
// failover is invisible in the output. Replica selection steers by
// per-replica circuit breakers (consecutive failures trip a breaker
// open; a cooled-down breaker admits a half-open probe) but never
// denies: an op retries across replicas with capped exponential
// backoff charged against the context deadline, and only after
// genuinely attempting every replica for the whole retry budget does
// the query fail, with a sparql.PartialFailureError naming the lost
// shards. Cancellation is never retried. Determinism under faults is
// the pinned contract: the chaos suite runs every workload query with
// one replica of each shard failed, latency injected on every scatter
// attempt, and a morsel panic injected per query, and requires output
// byte-identical to a clean single-graph serial run, under the race
// detector, across seeds (internal/fault seeds all injected
// randomness). The HTTP layer completes the fault boundary: a recovery
// middleware turns any handler panic into a 500 while the process
// keeps serving, PartialFailureError maps to 502, the
// Config.MaxResultRows overload guard maps to 413, /stats exposes the
// fault counters and breaker states, and rdfserve drains in-flight
// queries gracefully on SIGTERM.
//
// # Straggler model
//
// Failures are not the only tail risk the surveyed platform defends
// against: Spark's speculative execution re-runs tasks that merely run
// slow. The native engine reproduces that straggler defense at the
// same two granularities as the fault model, under the same
// contract — recovery actions never change output. Replica selection
// steers by health: each replica carries an EWMA of its
// successful-attempt latency and a decayed error rate
// (sparql.ReplicaHealth), unsampled replicas are warmed round-robin,
// and among closed breakers the lowest score wins, so stragglers shed
// traffic without being declared dead. A run armed with
// sparql.WithHedge races stubborn stragglers instead of waiting them
// out: a shard op that outlives the hedge delay — fixed, or adaptive
// from the op class's observed p95 (scatter scans and pushdowns keep
// separate windows) — launches on the next-best replica, the first
// success wins, and the loser is stopped through its private
// cancellation flag; byte-identical replica scans make the race
// invisible in the output. A run armed with sparql.WithSpeculation
// re-dispatches morsel tasks still running past k× the run's median
// completed-task time, and a single atomic claim per morsel decides
// which copy commits its private buffer — seed scans and build-right
// probe passes are eligible, while build-left cursor-matrix passes
// write shared state in place and always run exactly once. Retried
// and hedged passes each get a bounded slice of the remaining context
// deadline, so one straggling replica cannot consume the whole budget
// that later attempts would have used. The chaos suite extends the
// fault matrix with stragglers: one replica of every shard slowed
// ~100×, hedging and speculation armed, output pinned byte-identical
// to a clean serial single-graph run across placement strategies,
// shard counts, replica counts, and parallelism, raced and
// seed-swept; hedge and speculation launches/wins surface in
// sparql.FaultStats, /stats, /metrics, and the slow-query log.
//
// # Resource model
//
// Spark kills or spills a task that outgrows its executor's memory;
// one pathological job cannot take a worker down. The native engine
// reproduces that governance at query granularity. A run armed with
// sparql.WithMemoryBudget charges one shared atomic byte counter at
// every evaluator-owned allocation site — row-arena chunk growth,
// hash-join tables and their output batches, the parallel probes'
// cursor matrices, the sharded gather's merge buffers — and aborts
// with a typed sparql.BudgetError the moment the charges exceed the
// budget. The abort rides the same latched-error machinery as
// cancellation, so a budgeted query either returns output
// byte-identical to an unbudgeted serial run or fails typed — never
// partial rows — and an unarmed run pays one nil check per charge
// site, leaving the allocation pins intact. In front of the worker
// pool, the server's admission controller watches the queue depth and
// each query's planner cost estimate (Prepared.EstimateCost — connected
// components sum, cartesian components multiply) and walks a
// degradation ladder: under light backlog admitted queries lose
// parallelism (byte-identical output, just slower), under heavy
// backlog expensive queries are shed with an immediate 503 instead of
// burning their deadline in a hopeless queue, and a full queue sheds
// everything. Config.MaxQueryBytes maps budget aborts to 413,
// http.MaxBytesReader caps request bodies, and the /stats resources
// block reports bytes charged, the peak single-query charge, budget
// aborts, and shed/degraded query counts.
//
// # Observability
//
// internal/obs is the engine's observability layer, built under one
// contract: observing a run never steers it. A run armed with
// sparql.WithTrace records a span tree down the whole execution path —
// parse (plan-cache hit/miss), each BGP with its join order and
// per-pattern selectivity estimates next to actual row counts, each
// hash join's build side and inputs/output, morsel dispatch counts and
// per-worker busy time (accumulated in worker-owned atomics, merged
// onto the root span only after the pool quiesces — the span tree
// itself is driver-only), shard scatter/gather with per-shard row
// counts and pruned/retried/failed-over shards, the modifier pipeline,
// and response serialization. Traced output is byte-identical to an
// untraced run (pinned across parallelism 1/4 and shards 1/3 under the
// race detector), and a disarmed run pays one nil check per trace
// site, leaving every allocation pin intact. Three surfaces consume
// the trace: explain=analyze on /sparql (and rdfquery -explain)
// answers with the span tree as JSON or indented text instead of
// results; GET /metrics renders every /stats counter plus
// end-to-end/exec/serialize latency histograms in the Prometheus text
// exposition format (hand-rolled, zero dependencies); and the
// slow-query log (Config.SlowQueryThreshold; rdfserve
// -slow-query-threshold) emits one JSON line per slow query — request
// id, query hash (never the text), route, shard fan-out, and the
// top-3 spans by self time. Every response carries an X-Request-ID
// (inbound ids are honored, error bodies quote it), and rdfserve
// -debug-addr serves pprof on a separate listener off the query port.
//
// # Workload observability
//
// Where EXPLAIN describes one query, the workload observatory
// describes what the server has been serving — always on, bounded in
// memory. Its key is the plan fingerprint (sparql.FingerprintQuery,
// memoized on every Prepared plan): a hash of the query's structure
// under canonical variable numbering — join graph, predicate
// identities, filter shapes, modifiers — with literal values, entity
// constants, and LIMIT/OFFSET arguments erased, so ten thousand
// instantiations of one template are one workload entry. The server
// folds every request into a per-fingerprint aggregate
// (obs.ShapeRegistry: count, latency/rows/bytes histograms, route
// mix, cache hits, errors, sheds/degrades, hedges/speculations),
// LRU-bounded at Config.MaxShapes distinct shapes and served at
// GET /debug/shapes and in the /stats workload block.
// Config.TraceSampleRate arms always-on sampled tracing — one in N
// requests runs traced, deterministically off the request counter —
// and finished span trees (sampled, slow, and EXPLAIN captures) are
// retained in a bounded ring (obs.TraceRing, Config.TraceRingSize)
// behind GET /debug/queries and /debug/queries/<request-id>. Sampling
// inherits the observe-don't-steer contract: sampled responses are
// byte-identical and unsampled requests keep the one-nil-check fast
// path. /metrics adds labeled series — per-replica breaker state,
// latency EWMA, and error rate keyed {shard,replica}; per-shape query/
// error/cache-hit counters and p95 keyed {fingerprint,class} — and
// slow-query log lines carry plan_fingerprint so a slow line joins
// against its shape's history. GET /debug/dash serves a
// self-contained HTML dashboard (no external assets) over these
// endpoints, and rdfbench -json writes the same fingerprint-keyed
// per-query results as a machine-readable benchmark document.
//
// Run the micro-benchmarks tracking these paths with
//
//	go test -run xxx -bench 'BenchmarkEval|BenchmarkPartitionBy|BenchmarkReduceByKey' -benchmem ./...
//
// and the full assessment suite with go test -bench . -benchmem.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// per-table/figure reproduction record. The benchmarks in this package
// (bench_test.go) regenerate every artifact of the paper.
package repro
