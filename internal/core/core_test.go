package core

import (
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
)

// fakeEngine implements Engine for framework tests without pulling in
// the real systems (which live above core in the import graph).
type fakeEngine struct {
	info SystemInfo
	ctx  *spark.Context
	g    *rdf.Graph
	fail bool
}

func newFake(name, cite string, m DataModel, abs []Abstraction) *fakeEngine {
	return &fakeEngine{
		info: SystemInfo{
			Name: name, Citation: cite, Model: m, Abstractions: abs,
			QueryProcessing: "test", Optimized: true, Partitioning: "none", SPARQL: FragmentBGPPlus,
		},
		ctx: spark.NewContext(spark.DefaultConfig()),
	}
}

func (f *fakeEngine) Info() SystemInfo        { return f.info }
func (f *fakeEngine) Context() *spark.Context { return f.ctx }

func (f *fakeEngine) Load(ts []rdf.Triple) error {
	f.g = rdf.NewGraph(ts)
	return nil
}

func (f *fakeEngine) Execute(q *sparql.Query) (*sparql.Results, error) {
	res, err := sparql.Evaluate(q, f.g)
	if err != nil {
		return nil, err
	}
	if f.fail {
		// Corrupt the answer to exercise correctness checking.
		res.Rows = nil
	}
	return res, nil
}

func sampleTriples() []rdf.Triple {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://t/" + s) }
	return []rdf.Triple{
		{S: iri("a"), P: iri("p"), O: iri("b")},
		{S: iri("b"), P: iri("p"), O: iri("c")},
		{S: iri("a"), P: iri("name"), O: rdf.NewLiteral("A")},
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	e1 := newFake("One", "[1]", TripleModel, []Abstraction{RDDAbstraction})
	e2 := newFake("Two", "[2]", GraphModel, []Abstraction{GraphXAbstraction})
	r.Register(e1)
	r.Register(e2)
	if len(r.Engines()) != 2 {
		t.Fatalf("engines = %d", len(r.Engines()))
	}
	if got, ok := r.Get("Two"); !ok || got != e2 {
		t.Fatal("Get failed")
	}
	if _, ok := r.Get("Nope"); ok {
		t.Fatal("Get invented an engine")
	}
	names := r.Names()
	if names[0] != "One" || names[1] != "Two" {
		t.Fatalf("names = %v", names)
	}
}

func TestRunQueryMetersAndVerifies(t *testing.T) {
	e := newFake("X", "[9]", TripleModel, []Abstraction{RDDAbstraction})
	if err := e.Load(sampleTriples()); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(`SELECT ?x WHERE { ?x <http://t/p> ?y }`)
	want, _ := sparql.Evaluate(q, rdf.NewGraph(sampleTriples()))
	m := RunQuery(e, "q1", q, want)
	if !m.Correct || m.Err != nil {
		t.Fatalf("measurement = %+v", m)
	}
	if m.Rows != 2 {
		t.Fatalf("rows = %d", m.Rows)
	}

	bad := newFake("Y", "[8]", TripleModel, []Abstraction{RDDAbstraction})
	bad.fail = true
	_ = bad.Load(sampleTriples())
	m2 := RunQuery(bad, "q1", q, want)
	if m2.Correct {
		t.Fatal("wrong answer passed verification")
	}
}

func TestRunAssessment(t *testing.T) {
	e1 := newFake("One", "[1]", TripleModel, []Abstraction{RDDAbstraction})
	e2 := newFake("Two", "[2]", GraphModel, []Abstraction{GraphXAbstraction})
	w := Workload{Name: "sample", Triples: sampleTriples()}
	w.AddQuery("q-star", sparql.MustParse(`SELECT ?x ?n WHERE { ?x <http://t/p> ?y . ?x <http://t/name> ?n }`))
	w.AddQuery("q-linear", sparql.MustParse(`SELECT ?x ?z WHERE { ?x <http://t/p> ?y . ?y <http://t/p> ?z }`))

	a, err := RunAssessment([]Engine{e1, e2}, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Measurements) != 4 {
		t.Fatalf("measurements = %d", len(a.Measurements))
	}
	for _, m := range a.Measurements {
		if !m.Correct {
			t.Fatalf("measurement incorrect: %+v", m)
		}
	}
	if len(a.BySystem()["One"]) != 2 {
		t.Fatal("BySystem grouping wrong")
	}
	shapes := a.Shapes()
	if len(shapes) != 2 {
		t.Fatalf("shapes = %v", shapes)
	}
	if systems := a.SortedSystems(); len(systems) != 2 || systems[0] != "One" {
		t.Fatalf("systems = %v", systems)
	}
	text := RenderAssessment(a)
	if !strings.Contains(text, "q-star") || !strings.Contains(text, "One") {
		t.Fatalf("render = %s", text)
	}
}

func TestRenderFig1AndTables(t *testing.T) {
	engines := []Engine{
		newFake("TripleRDD", "[7]", TripleModel, []Abstraction{RDDAbstraction}),
		newFake("GraphGX", "[23]", GraphModel, []Abstraction{GraphXAbstraction}),
		newFake("Both", "[21]", TripleModel, []Abstraction{RDDAbstraction, DataFramesAbstraction}),
	}
	fig := RenderFig1(engines)
	if !strings.Contains(fig, "Data Model") || !strings.Contains(fig, "TripleRDD") {
		t.Fatalf("fig1 = %s", fig)
	}
	t1 := RenderTableI(engines)
	if !strings.Contains(t1, "[7], [21]") {
		t.Fatalf("table I should group citations per cell:\n%s", t1)
	}
	if !strings.Contains(t1, "GraphX") || !strings.Contains(t1, "GraphFrames") {
		t.Fatalf("table I missing abstraction rows:\n%s", t1)
	}
	t2 := RenderTableII(engines)
	if !strings.Contains(t2, "[23]") || !strings.Contains(t2, "Partitioning") {
		t.Fatalf("table II = %s", t2)
	}
}

func TestDimensionStrings(t *testing.T) {
	if TripleModel.String() != "The Triple Model" || GraphModel.String() != "The Graph Model" {
		t.Fatal("data model names changed")
	}
	names := map[Abstraction]string{
		RDDAbstraction:         "RDD",
		DataFramesAbstraction:  "DataFrames",
		SparkSQLAbstraction:    "Spark SQL",
		GraphXAbstraction:      "GraphX",
		GraphFramesAbstraction: "GraphFrames",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%v != %s", a, want)
		}
	}
	if len(Abstractions()) != 5 {
		t.Fatal("five abstractions expected")
	}
}

func TestRenderAssessmentCSV(t *testing.T) {
	e1 := newFake("One", "[1]", TripleModel, []Abstraction{RDDAbstraction})
	w := Workload{Name: "sample", Triples: sampleTriples()}
	w.AddQuery("q", sparql.MustParse(`SELECT ?x WHERE { ?x <http://t/p> ?y }`))
	a, err := RunAssessment([]Engine{e1}, w)
	if err != nil {
		t.Fatal(err)
	}
	csv := RenderAssessmentCSV(a)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[1], "sample,3,q,star,One,ok,2,") {
		t.Fatalf("csv row = %s", lines[1])
	}
}
