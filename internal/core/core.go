// Package core defines the framework of the reproduction: the Engine
// interface every surveyed system implements, the SystemInfo taxonomy
// metadata that regenerates the paper's Figure 1 and Tables I–II, the
// engine registry, and the assessment runner that measures every engine
// over shaped workloads and verifies its answers against the reference
// SPARQL evaluator.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
)

// DataModel is the survey's first dimension: how RDF data is modeled
// for processing.
type DataModel int

// Data models (survey Sec. III).
const (
	// TripleModel stores and processes RDF in its natural (s,p,o) form.
	TripleModel DataModel = iota
	// GraphModel represents RDF as a directed labeled graph.
	GraphModel
)

func (m DataModel) String() string {
	if m == TripleModel {
		return "The Triple Model"
	}
	return "The Graph Model"
}

// Abstraction is the survey's second dimension: which Spark API the
// implementation relies on.
type Abstraction int

// Spark abstractions (survey Sec. III).
const (
	RDDAbstraction Abstraction = iota
	DataFramesAbstraction
	SparkSQLAbstraction
	GraphXAbstraction
	GraphFramesAbstraction
)

func (a Abstraction) String() string {
	switch a {
	case RDDAbstraction:
		return "RDD"
	case DataFramesAbstraction:
		return "DataFrames"
	case SparkSQLAbstraction:
		return "Spark SQL"
	case GraphXAbstraction:
		return "GraphX"
	default:
		return "GraphFrames"
	}
}

// Abstractions lists the dimension values in Table I row order.
func Abstractions() []Abstraction {
	return []Abstraction{RDDAbstraction, DataFramesAbstraction, SparkSQLAbstraction, GraphXAbstraction, GraphFramesAbstraction}
}

// Fragment is the SPARQL fragment a system supports (Table II).
type Fragment string

// SPARQL fragments.
const (
	FragmentBGP     Fragment = "BGP"
	FragmentBGPPlus Fragment = "BGP+"
)

// SystemInfo is a system's row in the survey's taxonomy. Each engine
// self-describes; the table and figure renderers consume only this, so
// the reproduction of Tables I–II is generated from the living code.
type SystemInfo struct {
	// Name is the system name, e.g. "S2RDF".
	Name string
	// Citation is the reference number in the paper, e.g. "[24]".
	Citation string
	// Model is the data-model dimension.
	Model DataModel
	// Abstractions lists every Spark abstraction the system uses
	// (the hybrid system [21] spans RDD and DataFrames).
	Abstractions []Abstraction
	// QueryProcessing names the processing style (Table II column 2).
	QueryProcessing string
	// Optimized reports whether the system applies query optimizations
	// (Table II column 3).
	Optimized bool
	// Partitioning names the partitioning strategy (Table II column 4).
	Partitioning string
	// SPARQL is the supported fragment (Table II column 5).
	SPARQL Fragment
}

// Engine is a distributed RDF query-answering system. Implementations
// live in internal/systems, one per surveyed paper.
type Engine interface {
	// Info returns the system's taxonomy row.
	Info() SystemInfo
	// Load ingests the dataset, building the system's storage layout
	// (partitions, indexes, tables). It may be called once per engine.
	Load(triples []rdf.Triple) error
	// Execute answers q over the loaded data.
	Execute(q *sparql.Query) (*sparql.Results, error)
	// Context exposes the engine's spark context for metering.
	Context() *spark.Context
}

// Registry holds engines in registration order.
type Registry struct {
	engines []Engine
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends an engine.
func (r *Registry) Register(e Engine) { r.engines = append(r.engines, e) }

// Engines returns the registered engines in order.
func (r *Registry) Engines() []Engine { return r.engines }

// Get returns the engine with the given system name.
func (r *Registry) Get(name string) (Engine, bool) {
	for _, e := range r.engines {
		if e.Info().Name == name {
			return e, true
		}
	}
	return nil, false
}

// Names lists registered system names in order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.engines))
	for i, e := range r.engines {
		out[i] = e.Info().Name
	}
	return out
}

// Measurement is one (engine, query) cell of the assessment: wall time,
// the cluster activity diff, result size, and whether the answer
// matched the reference evaluator.
type Measurement struct {
	System   string
	Query    string
	Shape    sparql.Shape
	Duration time.Duration
	Activity spark.Metrics
	Rows     int
	Correct  bool
	Err      error
}

// RunQuery executes q on e, metering activity and checking the result
// against the reference answer (pass nil to skip the check).
func RunQuery(e Engine, name string, q *sparql.Query, reference *sparql.Results) Measurement {
	m := Measurement{System: e.Info().Name, Query: name, Shape: sparql.ClassifyShape(q)}
	before := e.Context().Snapshot()
	start := time.Now()
	res, err := e.Execute(q)
	m.Duration = time.Since(start)
	m.Activity = e.Context().Snapshot().Diff(before)
	if err != nil {
		m.Err = err
		return m
	}
	m.Rows = res.Len()
	if reference != nil {
		m.Correct = res.Equal(reference)
	} else {
		m.Correct = true
	}
	return m
}

// Assessment runs every registered engine over a workload and collects
// the full measurement matrix.
type Assessment struct {
	Dataset      string
	Triples      int
	Measurements []Measurement
}

// Workload couples a dataset with named queries.
type Workload struct {
	Name    string
	Triples []rdf.Triple
	Queries []struct {
		Name  string
		Query *sparql.Query
	}
}

// AddQuery appends a named query to the workload.
func (w *Workload) AddQuery(name string, q *sparql.Query) {
	w.Queries = append(w.Queries, struct {
		Name  string
		Query *sparql.Query
	}{name, q})
}

// RunAssessment loads the workload dataset into every engine and
// measures every query, verifying against the reference evaluator.
func RunAssessment(engines []Engine, w Workload) (*Assessment, error) {
	ref := rdf.NewGraph(w.Triples)
	a := &Assessment{Dataset: w.Name, Triples: len(w.Triples)}
	for _, e := range engines {
		if err := e.Load(w.Triples); err != nil {
			return nil, fmt.Errorf("%s load: %w", e.Info().Name, err)
		}
	}
	for _, nq := range w.Queries {
		expected, err := sparql.Evaluate(nq.Query, ref)
		if err != nil {
			return nil, fmt.Errorf("reference %s: %w", nq.Name, err)
		}
		for _, e := range engines {
			a.Measurements = append(a.Measurements, RunQuery(e, nq.Name, nq.Query, expected))
		}
	}
	return a, nil
}

// BySystem groups measurements per system name, preserving query order.
func (a *Assessment) BySystem() map[string][]Measurement {
	out := map[string][]Measurement{}
	for _, m := range a.Measurements {
		out[m.System] = append(out[m.System], m)
	}
	return out
}

// ByShape groups measurements per query shape.
func (a *Assessment) ByShape() map[sparql.Shape][]Measurement {
	out := map[sparql.Shape][]Measurement{}
	for _, m := range a.Measurements {
		out[m.Shape] = append(out[m.Shape], m)
	}
	return out
}

// Shapes returns the shapes present, in taxonomy order.
func (a *Assessment) Shapes() []sparql.Shape {
	seen := map[sparql.Shape]bool{}
	for _, m := range a.Measurements {
		seen[m.Shape] = true
	}
	var out []sparql.Shape
	for _, s := range []sparql.Shape{sparql.ShapeStar, sparql.ShapeLinear, sparql.ShapeSnowflake, sparql.ShapeComplex} {
		if seen[s] {
			out = append(out, s)
		}
	}
	return out
}

// SortedSystems returns system names present in the assessment, sorted.
func (a *Assessment) SortedSystems() []string {
	seen := map[string]bool{}
	for _, m := range a.Measurements {
		seen[m.System] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
