package core

import (
	"fmt"
	"sort"
	"strings"
)

// RenderFig1 regenerates the paper's Figure 1: the taxonomy tree of the
// dimensions used to organize RDF query processing methods. The tree is
// assembled from the registered engines' SystemInfo, so it reflects the
// code, not a hardcoded table.
func RenderFig1(engines []Engine) string {
	var b strings.Builder
	b.WriteString("RDF Query Processing on Apache Spark\n")
	b.WriteString("├── Data Model\n")
	for i, m := range []DataModel{TripleModel, GraphModel} {
		branch := "├──"
		if i == 1 {
			branch = "└──"
		}
		fmt.Fprintf(&b, "│   %s %s: %s\n", branch, m, strings.Join(systemsWithModel(engines, m), ", "))
	}
	b.WriteString("└── Apache Spark Abstraction\n")
	abstractions := Abstractions()
	for i, a := range abstractions {
		branch := "├──"
		if i == len(abstractions)-1 {
			branch = "└──"
		}
		names := systemsWithAbstraction(engines, a)
		label := strings.Join(names, ", ")
		if label == "" {
			label = "—"
		}
		fmt.Fprintf(&b, "    %s %s: %s\n", branch, a, label)
	}
	return b.String()
}

func systemsWithModel(engines []Engine, m DataModel) []string {
	var out []string
	for _, e := range engines {
		if e.Info().Model == m {
			out = append(out, e.Info().Name)
		}
	}
	return out
}

func systemsWithAbstraction(engines []Engine, a Abstraction) []string {
	var out []string
	for _, e := range engines {
		for _, ea := range e.Info().Abstractions {
			if ea == a {
				out = append(out, e.Info().Name)
				break
			}
		}
	}
	return out
}

// RenderTableI regenerates Table I: the data-model × Spark-abstraction
// matrix with each system's citation in its cell.
func RenderTableI(engines []Engine) string {
	models := []DataModel{TripleModel, GraphModel}
	var b strings.Builder
	b.WriteString("TABLE I: taxonomy of RDF query processing approaches\n")
	fmt.Fprintf(&b, "%-14s | %-24s | %-24s\n", "Abstraction", models[0], models[1])
	b.WriteString(strings.Repeat("-", 68) + "\n")
	for _, a := range Abstractions() {
		cells := make([]string, 2)
		for mi, m := range models {
			var refs []string
			for _, e := range engines {
				info := e.Info()
				if info.Model != m {
					continue
				}
				for _, ea := range info.Abstractions {
					if ea == a {
						refs = append(refs, info.Citation)
						break
					}
				}
			}
			sort.Slice(refs, func(i, j int) bool { return citationNum(refs[i]) < citationNum(refs[j]) })
			cells[mi] = strings.Join(refs, ", ")
		}
		fmt.Fprintf(&b, "%-14s | %-24s | %-24s\n", a, cells[0], cells[1])
	}
	return b.String()
}

// citationNum extracts the number from a "[N]" citation for ordering.
func citationNum(c string) int {
	n := 0
	fmt.Sscanf(strings.Trim(c, "[]"), "%d", &n)
	return n
}

// RenderTableII regenerates Table II: the per-system characteristics
// (query processing style, optimization, partitioning, fragment).
func RenderTableII(engines []Engine) string {
	var b strings.Builder
	b.WriteString("TABLE II: additional characteristics of the RDF query processing approaches\n")
	fmt.Fprintf(&b, "%-10s | %-18s | %-12s | %-26s | %-6s\n",
		"System", "Query Processing", "Optimization", "Partitioning", "SPARQL")
	b.WriteString(strings.Repeat("-", 86) + "\n")
	for _, e := range engines {
		info := e.Info()
		opt := "No"
		if info.Optimized {
			opt = "Yes"
		}
		fmt.Fprintf(&b, "%-10s | %-18s | %-12s | %-26s | %-6s\n",
			info.Citation, info.QueryProcessing, opt, info.Partitioning, info.SPARQL)
	}
	return b.String()
}

// RenderAssessment formats the assessment matrix: one block per query,
// one row per system, with correctness, time, and shuffle volume — the
// measurable version of the survey's qualitative comparison.
func RenderAssessment(a *Assessment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Assessment over %s (%d triples)\n", a.Dataset, a.Triples)
	byQuery := map[string][]Measurement{}
	var order []string
	for _, m := range a.Measurements {
		if _, ok := byQuery[m.Query]; !ok {
			order = append(order, m.Query)
		}
		byQuery[m.Query] = append(byQuery[m.Query], m)
	}
	for _, q := range order {
		ms := byQuery[q]
		fmt.Fprintf(&b, "\n%s (%s, %d rows)\n", q, ms[0].Shape, ms[0].Rows)
		fmt.Fprintf(&b, "  %-12s %-8s %10s %14s %12s %10s\n", "system", "ok", "time", "shuffleRec", "broadcast", "stages")
		for _, m := range ms {
			status := "ok"
			if m.Err != nil {
				// BGP-fragment engines legitimately reject BGP+ operators.
				status = "unsup"
			} else if !m.Correct {
				status = "WRONG"
			}
			fmt.Fprintf(&b, "  %-12s %-8s %10s %14d %12d %10d\n",
				m.System, status, m.Duration.Round(10e3), m.Activity.ShuffleRecords, m.Activity.BroadcastRecords, m.Activity.Stages)
		}
	}
	return b.String()
}

// RenderAssessmentCSV formats the assessment as CSV for downstream
// analysis: one row per (query, system) measurement.
func RenderAssessmentCSV(a *Assessment) string {
	var b strings.Builder
	b.WriteString("dataset,triples,query,shape,system,status,rows,duration_ns,shuffle_records,shuffle_bytes,broadcast_records,stages,tasks,supersteps,messages\n")
	for _, m := range a.Measurements {
		status := "ok"
		if m.Err != nil {
			status = "unsupported"
		} else if !m.Correct {
			status = "wrong"
		}
		fmt.Fprintf(&b, "%s,%d,%s,%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			a.Dataset, a.Triples, m.Query, m.Shape, m.System, status, m.Rows, m.Duration.Nanoseconds(),
			m.Activity.ShuffleRecords, m.Activity.ShuffleBytes, m.Activity.BroadcastRecords,
			m.Activity.Stages, m.Activity.Tasks, m.Activity.Supersteps, m.Activity.MessagesSent)
	}
	return b.String()
}
