package shard

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

// BenchmarkShardedStar measures what placement-aware routing buys: the
// same subject-star query over the same 4-shard subject-hash placement,
// once on the pushdown route (shard-local stars, no cross-shard join)
// and once forced onto scatter-gather (per-pattern gathers + global
// hash joins). Pushdown must win.
func BenchmarkShardedStar(b *testing.B) {
	triples := workload.GenerateUniversity(workload.MediumUniversity())
	sg, err := BuildByName(triples, "hash-subject", 4)
	if err != nil {
		b.Fatal(err)
	}
	text := fmt.Sprintf(`SELECT ?s ?d ?e WHERE { ?s <%sworksFor> ?d . ?s <%semailAddress> ?e . ?s <%sname> ?n }`,
		workload.UnivNS, workload.UnivNS, workload.UnivNS)
	sp, err := sg.Prepare(text)
	if err != nil {
		b.Fatal(err)
	}
	if route := sp.ExplainShards().Route; route != sparql.RoutePushdown {
		b.Fatalf("star query routed %s, want pushdown", route)
	}
	ctx := context.Background()
	b.Run("pushdown", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sp.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scatter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sp.Run(ctx, sparql.WithScatterOnly()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardedLinear tracks the scatter-gather route on a linear
// (cross-shard join) query against the single-graph evaluator — the
// price of distribution when placement cannot make the query local.
func BenchmarkShardedLinear(b *testing.B) {
	triples := workload.GenerateUniversity(workload.MediumUniversity())
	text := fmt.Sprintf(`SELECT ?st ?prof ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS)
	ctx := context.Background()

	sg, err := BuildByName(triples, "hash-subject", 4)
	if err != nil {
		b.Fatal(err)
	}
	sp, err := sg.Prepare(text)
	if err != nil {
		b.Fatal(err)
	}
	if route := sp.ExplainShards().Route; route != sparql.RouteScatter {
		b.Fatalf("linear query routed %s, want scatter-gather", route)
	}
	b.Run("scatter-4shards", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sp.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})

	g := rdf.NewGraph(triples)
	g.Encoded()
	g.Stats()
	prep, err := sparql.Prepare(text)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("single-graph", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := prep.Run(ctx, g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardedTailLatency measures what hedged shard operations
// buy under a straggler: the same scatter query over 4 shards × 2
// replicas, with the slow replica index alternating per iteration (a
// 2ms stall, so health steering keeps getting surprised), once without
// hedging and once hedged after 200µs. The p50-ms/p99-ms metrics are
// the point: hedging must pull the tail in.
func BenchmarkShardedTailLatency(b *testing.B) {
	triples := workload.GenerateUniversity(workload.MediumUniversity())
	text := fmt.Sprintf(`SELECT ?st ?prof ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS)
	const nShards, reps = 4, 2
	plans := make([]*fault.Plan, reps)
	for r := range plans {
		plans[r] = fault.NewPlan(int64(r + 1))
		for s := 0; s < nShards; s++ {
			plans[r].SlowReplica(s, r, 2*time.Millisecond)
		}
	}
	run := func(b *testing.B, opts ...sparql.RunOption) {
		// A fresh set per sub-benchmark: replica health must not carry
		// what it learned about the stragglers across variants.
		sg, err := BuildReplicatedByName(triples, "hash-subject", nShards, reps)
		if err != nil {
			b.Fatal(err)
		}
		sp, err := sg.Prepare(text)
		if err != nil {
			b.Fatal(err)
		}
		durs := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx := fault.With(context.Background(), plans[i%reps])
			start := time.Now()
			if _, err := sp.Run(ctx, opts...); err != nil {
				b.Fatal(err)
			}
			durs = append(durs, time.Since(start))
		}
		b.StopTimer()
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		pct := func(p int) float64 {
			idx := (p*len(durs) + 99) / 100
			if idx < 1 {
				idx = 1
			}
			return float64(durs[idx-1].Microseconds()) / 1000
		}
		b.ReportMetric(pct(50), "p50-ms")
		b.ReportMetric(pct(99), "p99-ms")
	}
	b.Run("unhedged", func(b *testing.B) { run(b) })
	b.Run("hedged", func(b *testing.B) {
		run(b, sparql.WithHedge(sparql.HedgePolicy{Delay: 200 * time.Microsecond}))
	})
}
