package shard

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

// BenchmarkShardedStar measures what placement-aware routing buys: the
// same subject-star query over the same 4-shard subject-hash placement,
// once on the pushdown route (shard-local stars, no cross-shard join)
// and once forced onto scatter-gather (per-pattern gathers + global
// hash joins). Pushdown must win.
func BenchmarkShardedStar(b *testing.B) {
	triples := workload.GenerateUniversity(workload.MediumUniversity())
	sg, err := BuildByName(triples, "hash-subject", 4)
	if err != nil {
		b.Fatal(err)
	}
	text := fmt.Sprintf(`SELECT ?s ?d ?e WHERE { ?s <%sworksFor> ?d . ?s <%semailAddress> ?e . ?s <%sname> ?n }`,
		workload.UnivNS, workload.UnivNS, workload.UnivNS)
	sp, err := sg.Prepare(text)
	if err != nil {
		b.Fatal(err)
	}
	if route := sp.ExplainShards().Route; route != sparql.RoutePushdown {
		b.Fatalf("star query routed %s, want pushdown", route)
	}
	ctx := context.Background()
	b.Run("pushdown", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sp.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scatter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sp.Run(ctx, sparql.WithScatterOnly()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardedLinear tracks the scatter-gather route on a linear
// (cross-shard join) query against the single-graph evaluator — the
// price of distribution when placement cannot make the query local.
func BenchmarkShardedLinear(b *testing.B) {
	triples := workload.GenerateUniversity(workload.MediumUniversity())
	text := fmt.Sprintf(`SELECT ?st ?prof ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS)
	ctx := context.Background()

	sg, err := BuildByName(triples, "hash-subject", 4)
	if err != nil {
		b.Fatal(err)
	}
	sp, err := sg.Prepare(text)
	if err != nil {
		b.Fatal(err)
	}
	if route := sp.ExplainShards().Route; route != sparql.RouteScatter {
		b.Fatalf("linear query routed %s, want scatter-gather", route)
	}
	b.Run("scatter-4shards", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sp.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})

	g := rdf.NewGraph(triples)
	g.Encoded()
	g.Stats()
	prep, err := sparql.Prepare(text)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("single-graph", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := prep.Run(ctx, g); err != nil {
				b.Fatal(err)
			}
		}
	})
}
