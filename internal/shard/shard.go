// Package shard turns the partitioning strategies of internal/partition
// from an offline scoring harness into a live execution substrate: a
// ShardedGraph splits one dataset into N rdf.Graph shards under any
// partition.Strategy while sharing a single global dictionary, and
// prepared queries fan out over the shards through the distributed
// executor in internal/sparql (RunSharded) — the survey's central
// claim, that placement decides whether a query runs shard-local or
// pays cross-partition joins, made operational.
//
// The sharding contract:
//
//   - Shared dictionary: every shard encodes through one
//     rdf.Dictionary, so rdf.TermIDs are globally consistent and all
//     cross-shard merging, joining, and deduplication stays in id
//     space.
//   - Determinism: shards preserve the dataset's insertion order and
//     every triple's global position is recorded, so scatter-gather
//     merges are deterministic and (*Prepared).Run output is
//     byte-identical — rows and order — to a single-graph
//     sparql.Prepared.Run over the same data, at any shard count and
//     any parallelism.
//   - Pushdown soundness: a single-BGP query whose patterns all share
//     one subject variable pushes down whole to each shard exactly
//     when the placement co-located every subject's triples
//     (SubjectColocated, verified at build time rather than assumed
//     from the strategy's name).
//   - Immutability: a built ShardedGraph is read-only; the shards, the
//     dictionary, and the position index must not be mutated. This is
//     what makes the ShardSet plan memo and unlimited concurrent runs
//     safe.
package shard

import (
	"context"
	"fmt"

	"repro/internal/partition"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// ShardedGraph is one dataset split into N shard graphs around a shared
// dictionary, ready for distributed query execution. Build it once,
// then serve any number of concurrent queries.
type ShardedGraph struct {
	strategy string
	shards   []*rdf.Graph
	dict     *rdf.Dictionary
	set      *sparql.ShardSet
	sizes    []int
	replicas int
}

// Build splits triples into n shards by the strategy's placement. The
// dataset is deduplicated first (RDF graphs are sets); each shard keeps
// its triples in dataset order, every shard encodes through one shared
// dictionary, and the whole-dataset statistics are computed so the
// distributed planner reproduces the single-graph plan. Subject
// co-location — the pushdown soundness condition — is verified from
// the actual placement, not assumed from the strategy.
func Build(triples []rdf.Triple, strat partition.Strategy, n int) (*ShardedGraph, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	deduped := rdf.Dedupe(triples)
	return buildPlaced(deduped, strat.Place(deduped, n), n, 1, strat.Name())
}

// BuildReplicated is Build with replicas copies of every shard: each
// shard's triples are materialized R times — in-process stand-ins for
// the copies a distributed deployment would place on R nodes — all
// encoding through the one shared dictionary in the same dataset
// order, so any replica of a shard yields byte-identical scans and
// replica failover can never change one row of query output. The
// distributed executor routes each per-shard op to a healthy replica
// (circuit breakers, retry with capped backoff; see internal/sparql);
// a query fails only when every replica of a needed shard is down.
func BuildReplicated(triples []rdf.Triple, strat partition.Strategy, n, replicas int) (*ShardedGraph, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	if replicas < 1 {
		return nil, fmt.Errorf("shard: need at least 1 replica, got %d", replicas)
	}
	deduped := rdf.Dedupe(triples)
	return buildPlaced(deduped, strat.Place(deduped, n), n, replicas, strat.Name())
}

// BuildReplicatedByName is BuildReplicated with the strategy resolved
// from the partition-strategy registry.
func BuildReplicatedByName(triples []rdf.Triple, name string, n, replicas int, opts ...partition.Option) (*ShardedGraph, error) {
	strat, err := partition.ByName(name, opts...)
	if err != nil {
		return nil, err
	}
	return BuildReplicated(triples, strat, n, replicas)
}

// BuildPlaced is Build from an already-computed placement: place[i] is
// the shard of the i-th triple of the already-deduplicated dataset.
// Callers that also score the placement (partition.EvaluatePlacement)
// use this to run the strategy once.
func BuildPlaced(deduped []rdf.Triple, place []int, n int, strategyName string) (*ShardedGraph, error) {
	return buildPlaced(deduped, place, n, 1, strategyName)
}

// buildPlaced is the shared build body; replicas >= 1 is the number of
// copies of each shard to materialize.
func buildPlaced(deduped []rdf.Triple, place []int, n, replicas int, strategyName string) (*ShardedGraph, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	if len(place) != len(deduped) {
		return nil, fmt.Errorf("shard: strategy %s placed %d of %d triples", strategyName, len(place), len(deduped))
	}
	dict := rdf.NewDictionary()
	enc := dict.EncodeAll(deduped)
	pos := make(map[rdf.EncodedTriple]int32, len(enc))
	for i, e := range enc {
		pos[e] = int32(i)
	}

	// Verify subject co-location from the placement itself.
	subjShard := make([]int32, dict.Len())
	for i := range subjShard {
		subjShard[i] = -1
	}
	coloc := true
	buckets := make([][]rdf.Triple, n)
	for i, t := range deduped {
		p := place[i]
		if p < 0 || p >= n {
			return nil, fmt.Errorf("shard: strategy %s placed triple %d on partition %d of %d", strategyName, i, p, n)
		}
		if s := subjShard[enc[i].S]; s < 0 {
			subjShard[enc[i].S] = int32(p)
		} else if int(s) != p {
			coloc = false
		}
		buckets[p] = append(buckets[p], t)
	}

	sg := &ShardedGraph{
		strategy: strategyName,
		shards:   make([]*rdf.Graph, n),
		dict:     dict,
		sizes:    make([]int, n),
		replicas: replicas,
	}
	views := make([]*rdf.EncodedView, n)
	var reps [][]*rdf.EncodedView
	if replicas > 1 {
		reps = make([][]*rdf.EncodedView, n)
	}
	for s, bucket := range buckets {
		// Each replica re-encodes the same bucket through the shared
		// dictionary (same ids, same order), so every replica's view is
		// content-identical — the failover-invisibility invariant.
		rv := make([]*rdf.EncodedView, replicas)
		for r := 0; r < replicas; r++ {
			g := rdf.NewGraphWithDictionary(bucket, dict)
			rv[r] = g.Encoded() // warm: shards are immutable from here on
			if r == 0 {
				sg.shards[s] = g
			}
		}
		views[s] = rv[0]
		if reps != nil {
			reps[s] = rv
		}
		sg.sizes[s] = len(bucket)
	}
	sg.set = &sparql.ShardSet{
		Dict:             dict,
		Views:            views,
		Stats:            rdf.ComputeStats(deduped),
		Pos:              pos,
		SubjectColocated: coloc,
		Replicas:         reps,
	}
	if replicas > 1 {
		sg.set.Health = sparql.NewReplicaHealth(n, replicas)
	}
	return sg, nil
}

// BuildByName is Build with the strategy resolved from the
// partition-strategy registry.
func BuildByName(triples []rdf.Triple, name string, n int, opts ...partition.Option) (*ShardedGraph, error) {
	strat, err := partition.ByName(name, opts...)
	if err != nil {
		return nil, err
	}
	return Build(triples, strat, n)
}

// NumShards returns the shard count.
func (sg *ShardedGraph) NumShards() int { return len(sg.shards) }

// Replicas returns the number of copies of each shard (1 when built
// without replication).
func (sg *ShardedGraph) Replicas() int { return sg.replicas }

// Strategy returns the placing strategy's name.
func (sg *ShardedGraph) Strategy() string { return sg.strategy }

// Len returns the total number of distinct triples across shards.
func (sg *ShardedGraph) Len() int {
	total := 0
	for _, n := range sg.sizes {
		total += n
	}
	return total
}

// ShardSizes returns the per-shard triple counts (read-only).
func (sg *ShardedGraph) ShardSizes() []int { return sg.sizes }

// Shards returns the shard graphs (read-only: mutating a shard breaks
// the sharding contract).
func (sg *ShardedGraph) Shards() []*rdf.Graph { return sg.shards }

// Dict returns the shared dictionary.
func (sg *ShardedGraph) Dict() *rdf.Dictionary { return sg.dict }

// Set returns the evaluator-facing shard set (read-only).
func (sg *ShardedGraph) Set() *sparql.ShardSet { return sg.set }

// SubjectColocated reports whether the placement mapped every subject's
// triples to a single shard.
func (sg *ShardedGraph) SubjectColocated() bool { return sg.set.SubjectColocated }

// Prepared is a query compiled for repeated distributed execution over
// one ShardedGraph. Like sparql.Prepared it is goroutine-safe: any
// number of Run / RunSolutions calls may execute concurrently.
type Prepared struct {
	prep *sparql.Prepared
	sg   *ShardedGraph
}

// Prepare parses text and compiles it for repeated execution over the
// sharded graph.
func (sg *ShardedGraph) Prepare(text string) (*Prepared, error) {
	prep, err := sparql.Prepare(text)
	if err != nil {
		return nil, err
	}
	return &Prepared{prep: prep, sg: sg}, nil
}

// PrepareQuery compiles an already-parsed query (which must not be
// mutated afterwards).
func (sg *ShardedGraph) PrepareQuery(q *sparql.Query) *Prepared {
	return &Prepared{prep: sparql.PrepareQuery(q), sg: sg}
}

// Prepared returns the underlying single-graph preparation (for
// callers that also run the query unsharded).
func (p *Prepared) Prepared() *sparql.Prepared { return p.prep }

// Run evaluates the query across the shards, honoring ctx exactly like
// sparql's (*Prepared).Run. The result is byte-identical — rows and
// order — to a single-graph run over the same dataset.
func (p *Prepared) Run(ctx context.Context, opts ...sparql.RunOption) (*sparql.Results, error) {
	return p.prep.RunSharded(ctx, p.sg.set, opts...)
}

// RunSolutions is Run positioned for streaming (see
// sparql.RunShardedSolutions).
func (p *Prepared) RunSolutions(ctx context.Context, opts ...sparql.RunOption) (*sparql.Solutions, error) {
	return p.prep.RunShardedSolutions(ctx, p.sg.set, opts...)
}

// ExplainShards reports, without executing, which route the query
// takes (pushdown vs scatter-gather) and how many shards its constants
// can touch — the placement payoff made visible.
func (p *Prepared) ExplainShards() sparql.ShardExplain {
	return p.prep.ExplainSharded(p.sg.set)
}
