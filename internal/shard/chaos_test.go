package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// TestChaosDeterminism is the fault-tolerance acceptance suite: for
// every workload query, across placement strategies, shard counts, and
// replica counts, a run with one replica of every shard failed, latency
// injected on every scatter attempt, and one morsel panic per query
// must return byte-identical results to a clean single-graph serial
// run. Failover must be invisible in the output and visible in the
// fault counters.
func TestChaosDeterminism(t *testing.T) {
	ctx := context.Background()
	for _, ds := range datasets() {
		g := rdf.NewGraph(ds.triples)
		want := make(map[string]*sparql.Results, len(ds.queries))
		for _, nq := range ds.queries {
			prep, err := sparql.Prepare(nq.Text)
			if err != nil {
				t.Fatal(err)
			}
			res, err := prep.Run(ctx, g, sparql.WithParallelism(1))
			if err != nil {
				t.Fatal(err)
			}
			want[nq.Name] = res
		}
		for _, strat := range []string{"hash-subject", "vertical"} {
			for _, nShards := range []int{3, 8} {
				for _, reps := range []int{2, 3} {
					t.Run(fmt.Sprintf("%s/%s/shards=%d/replicas=%d", ds.name, strat, nShards, reps), func(t *testing.T) {
						sg, err := BuildReplicatedByName(ds.triples, strat, nShards, reps)
						if err != nil {
							t.Fatal(err)
						}
						var failovers, recovered int64
						for qi, nq := range ds.queries {
							// Kill a different replica of every shard per
							// query, slow every scatter attempt down, and
							// panic the first morsel task (when the query
							// is big enough to dispatch morsels at all).
							kill := qi % reps
							plan := fault.NewPlan(int64(qi+1)).
								Delay(fault.PointScatter, 100*time.Microsecond).
								PanicNext(fault.PointMorsel, 1)
							for s := 0; s < nShards; s++ {
								plan.FailAlways(fault.ReplicaPoint(s, kill))
							}
							sp, err := sg.Prepare(nq.Text)
							if err != nil {
								t.Fatal(err)
							}
							var fs sparql.FaultStats
							got, err := sp.Run(fault.With(ctx, plan),
								sparql.WithParallelism(4), sparql.WithFaultStats(&fs))
							if err != nil {
								t.Fatalf("%s (replica %d down): %v", nq.Name, kill, err)
							}
							mustEqualResults(t, want[nq.Name], got)
							failovers += fs.Failovers
							recovered += fs.RecoveredPanics
						}
						if failovers == 0 {
							t.Fatal("no failovers recorded with a replica down for every query")
						}
						_ = recovered // morsel dispatch depends on data size; counted, not required
					})
				}
			}
		}
	}
}

// TestChaosTransientSeeds pins recovery from *transient* faults: every
// scatter attempt fails with 25% probability (seeded, so CI can sweep
// seeds via CHAOS_SEED), and with a widened retry budget the run must
// still produce byte-identical results. Sixteen attempts per shard op
// put the all-fail probability around 1e-10 per op.
func TestChaosTransientSeeds(t *testing.T) {
	seed := int64(1)
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", s, err)
		}
		seed = v
	}
	ctx := context.Background()
	ds := datasets()[0]
	g := rdf.NewGraph(ds.triples)
	sg, err := BuildReplicatedByName(ds.triples, "hash-subject", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sg.Set().Health.SetCooldown(time.Millisecond)
	retry := sparql.RetryPolicy{Cycles: 8, BaseBackoff: 200 * time.Microsecond, MaxBackoff: 2 * time.Millisecond}
	for qi, nq := range ds.queries {
		prep, err := sparql.Prepare(nq.Text)
		if err != nil {
			t.Fatal(err)
		}
		want, err := prep.Run(ctx, g, sparql.WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		plan := fault.NewPlan(seed+int64(qi)).FailRate(fault.PointScatter, 0.25)
		sp, err := sg.Prepare(nq.Text)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sp.Run(fault.With(ctx, plan),
			sparql.WithParallelism(4), sparql.WithRetryPolicy(retry))
		if err != nil {
			t.Fatalf("%s (seed %d): %v", nq.Name, seed, err)
		}
		mustEqualResults(t, want, got)
	}
}

// chaosSeed returns the seed for seeded chaos plans, overridable via
// CHAOS_SEED so CI can sweep schedules.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(1)
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", s, err)
		}
		seed = v
	}
	return seed
}

// TestChaosTailDeterminism is the straggler acceptance suite: with one
// replica of every shard slowed ~100× (a 2ms stall against µs-scale
// scans), hedged shard operations and speculative morsel re-execution
// armed, every workload query must return byte-identical results to a
// clean serial single-graph run — across placement strategies, shard
// counts, replica counts, and parallelism. The slowed replica index
// rotates per query, so health steering keeps getting surprised and
// every cell records hedges.
func TestChaosTailDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 16-cell matrix with injected 2ms stragglers")
	}
	seed := chaosSeed(t)
	ctx := context.Background()
	ds := datasets()[0]
	g := rdf.NewGraph(ds.triples)
	want := make(map[string]*sparql.Results, len(ds.queries))
	for _, nq := range ds.queries {
		prep, err := sparql.Prepare(nq.Text)
		if err != nil {
			t.Fatal(err)
		}
		res, err := prep.Run(ctx, g, sparql.WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		want[nq.Name] = res
	}
	hedge := sparql.HedgePolicy{Delay: 200 * time.Microsecond}
	for _, strat := range []string{"hash-subject", "vertical"} {
		for _, nShards := range []int{3, 8} {
			for _, reps := range []int{2, 3} {
				for _, par := range []int{1, 4} {
					t.Run(fmt.Sprintf("%s/shards=%d/replicas=%d/par=%d", strat, nShards, reps, par), func(t *testing.T) {
						sg, err := BuildReplicatedByName(ds.triples, strat, nShards, reps)
						if err != nil {
							t.Fatal(err)
						}
						var hedges, wins int64
						for qi, nq := range ds.queries {
							slow := qi % reps
							plan := fault.NewPlan(seed + int64(qi))
							for s := 0; s < nShards; s++ {
								plan.SlowReplica(s, slow, 2*time.Millisecond)
							}
							sp, err := sg.Prepare(nq.Text)
							if err != nil {
								t.Fatal(err)
							}
							var fs sparql.FaultStats
							got, err := sp.Run(fault.With(ctx, plan),
								sparql.WithParallelism(par),
								sparql.WithHedge(hedge),
								sparql.WithSpeculation(3),
								sparql.WithFaultStats(&fs))
							if err != nil {
								t.Fatalf("%s (replica %d slow): %v", nq.Name, slow, err)
							}
							mustEqualResults(t, want[nq.Name], got)
							hedges += fs.Hedges
							wins += fs.HedgeWins
						}
						if hedges == 0 {
							t.Fatal("no hedges recorded with a straggler replica in every shard")
						}
						_ = wins // the slow primary can still win a race; counted, not required
					})
				}
			}
		}
	}
}

// TestChaosSpeculationDeterminism pins speculative morsel re-execution:
// with seeded jittered delays injected into morsel tasks (stragglers)
// and speculation armed, a large parallel join must return
// byte-identical results to a clean serial run, and the straggler runs
// must actually exercise the speculation path.
func TestChaosSpeculationDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an 8192-row join with injected morsel stragglers")
	}
	seed := chaosSeed(t)
	ctx := context.Background()
	n := 8192
	ts := make([]rdf.Triple, 0, 2*n)
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://ex/a%d", i))
		ts = append(ts,
			rdf.Triple{S: s, P: rdf.NewIRI("http://ex/p"), O: rdf.NewLiteral(fmt.Sprintf("x%d", i))},
			rdf.Triple{S: s, P: rdf.NewIRI("http://ex/q"), O: rdf.NewLiteral(fmt.Sprintf("y%d", i))},
		)
	}
	g := rdf.NewGraph(ts)
	prep, err := sparql.Prepare(`SELECT * WHERE { ?a <http://ex/p> ?x . ?a <http://ex/q> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := prep.Run(ctx, g, sparql.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	var specs, wins int64
	for i := int64(0); i < 4; i++ {
		plan := fault.NewPlan(seed+i).DelayRate(fault.PointMorsel, 0.4, 2*time.Millisecond)
		var fs sparql.FaultStats
		got, err := prep.Run(fault.With(ctx, plan), g,
			sparql.WithParallelism(4),
			sparql.WithSpeculation(2),
			sparql.WithFaultStats(&fs))
		if err != nil {
			t.Fatalf("seed %d: %v", seed+i, err)
		}
		mustEqualResults(t, want, got)
		specs += fs.Speculations
		wins += fs.SpeculationWins
	}
	if specs == 0 {
		t.Fatal("no speculative re-executions across four seeded straggler runs")
	}
	if wins > specs {
		t.Fatalf("speculation wins %d > launches %d", wins, specs)
	}
}

// TestAllReplicasDownPartialFailure pins the only give-up condition:
// when every replica of a needed shard is down, the query fails with a
// typed PartialFailureError naming exactly the lost shards — not a
// hang, not a silent partial result.
func TestAllReplicasDownPartialFailure(t *testing.T) {
	ds := datasets()[0]
	sg, err := BuildReplicatedByName(ds.triples, "hash-subject", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	const lost = 1
	plan := fault.NewPlan(1).
		FailAlways(fault.ReplicaPoint(lost, 0)).
		FailAlways(fault.ReplicaPoint(lost, 1))
	// A full scan needs every shard, so the lost one cannot be pruned.
	sp, err := sg.Prepare(`SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	retry := sparql.RetryPolicy{Cycles: 2, BaseBackoff: 100 * time.Microsecond, MaxBackoff: time.Millisecond}
	_, err = sp.Run(fault.With(context.Background(), plan),
		sparql.WithParallelism(4), sparql.WithRetryPolicy(retry))
	var pf *sparql.PartialFailureError
	if !errors.As(err, &pf) {
		t.Fatalf("error = %v, want a *PartialFailureError", err)
	}
	if len(pf.Shards) != 1 || pf.Shards[0] != lost {
		t.Fatalf("lost shards = %v, want [%d]", pf.Shards, lost)
	}
	// The set is not poisoned: with the fault plan gone the same
	// prepared query answers cleanly again.
	res, err := sp.Run(context.Background(), sparql.WithParallelism(4))
	if err != nil {
		t.Fatalf("recovery run: %v", err)
	}
	if res.Len() == 0 {
		t.Fatal("recovery run returned no rows")
	}
}

// TestScatterCancelNoGoroutineLeak pins prompt cancellation through the
// sharded scatter path: cancelling mid-cartesian surfaces ctx.Err()
// quickly and leaves no worker goroutines behind.
func TestScatterCancelNoGoroutineLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("builds an 8192-wide cartesian")
	}
	n := 8192
	ts := make([]rdf.Triple, 0, 2*n)
	for i := 0; i < n; i++ {
		ts = append(ts,
			rdf.Triple{S: rdf.NewIRI(fmt.Sprintf("http://ex/a%d", i)), P: rdf.NewIRI("http://ex/p"), O: rdf.NewLiteral(fmt.Sprintf("x%d", i))},
			rdf.Triple{S: rdf.NewIRI(fmt.Sprintf("http://ex/b%d", i)), P: rdf.NewIRI("http://ex/q"), O: rdf.NewLiteral(fmt.Sprintf("y%d", i))},
		)
	}
	sg, err := BuildByName(ts, "hash-subject", 4)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sg.Prepare(`SELECT * WHERE { ?a <http://ex/p> ?x . ?b <http://ex/q> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = sp.Run(ctx, sparql.WithParallelism(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancelled scatter took %v, want prompt abort", elapsed)
	}
	// Workers unwind asynchronously after Run returns; poll instead of
	// asserting an instant count.
	waitGoroutines(t, before)
}

// waitGoroutines polls until the goroutine count returns to near the
// baseline, failing after three seconds — shared by the leak tests,
// since losers of hedge and speculation races unwind asynchronously.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d baseline, %d three seconds later", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosHedgeNoGoroutineLeak pins hedge-loser hygiene: after runs
// where every shard op races a slow primary against a hedge, the
// losing attempts must unwind on their own — no goroutines left behind
// once their injected stalls elapse.
func TestChaosHedgeNoGoroutineLeak(t *testing.T) {
	ds := datasets()[0]
	sg, err := BuildReplicatedByName(ds.triples, "hash-subject", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(1)
	for s := 0; s < 4; s++ {
		plan.SlowReplica(s, 0, 20*time.Millisecond)
	}
	before := runtime.NumGoroutine()
	hedge := sparql.HedgePolicy{Delay: 100 * time.Microsecond}
	for _, nq := range ds.queries {
		sp, err := sg.Prepare(nq.Text)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sp.Run(fault.With(context.Background(), plan),
			sparql.WithParallelism(4), sparql.WithHedge(hedge)); err != nil {
			t.Fatalf("%s: %v", nq.Name, err)
		}
	}
	waitGoroutines(t, before)
}

// TestChaosSpeculationNoGoroutineLeak pins speculation-loser hygiene:
// a large parallel join with heavy injected morsel stragglers and
// speculation armed must leave no goroutines behind after the run.
func TestChaosSpeculationNoGoroutineLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 4096-row join with injected morsel stragglers")
	}
	n := 4096
	ts := make([]rdf.Triple, 0, 2*n)
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://ex/a%d", i))
		ts = append(ts,
			rdf.Triple{S: s, P: rdf.NewIRI("http://ex/p"), O: rdf.NewLiteral(fmt.Sprintf("x%d", i))},
			rdf.Triple{S: s, P: rdf.NewIRI("http://ex/q"), O: rdf.NewLiteral(fmt.Sprintf("y%d", i))},
		)
	}
	g := rdf.NewGraph(ts)
	prep, err := sparql.Prepare(`SELECT * WHERE { ?a <http://ex/p> ?x . ?a <http://ex/q> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	plan := fault.NewPlan(1).DelayRate(fault.PointMorsel, 0.5, 5*time.Millisecond)
	if _, err := prep.Run(fault.With(context.Background(), plan), g,
		sparql.WithParallelism(4), sparql.WithSpeculation(1.5)); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, before)
}
