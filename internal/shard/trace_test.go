package shard

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// TestTracedShardedRunDeterminism pins tracing as a pure observer of
// sharded execution: for every workload query, at shards 1/3 and
// parallelism 1/4, a run armed with WithTrace returns byte-identical
// rows and order to the untraced single-graph serial run, and the
// trace records the scatter/pushdown activity plus the routing report
// on its root span.
func TestTracedShardedRunDeterminism(t *testing.T) {
	ctx := context.Background()
	for _, ds := range datasets() {
		g := rdf.NewGraph(ds.triples)
		want := make(map[string]*sparql.Results, len(ds.queries))
		for _, nq := range ds.queries {
			prep, err := sparql.Prepare(nq.Text)
			if err != nil {
				t.Fatal(err)
			}
			res, err := prep.Run(ctx, g, sparql.WithParallelism(1))
			if err != nil {
				t.Fatal(err)
			}
			want[nq.Name] = res
		}
		for _, nShards := range []int{1, 3} {
			sg, err := BuildByName(ds.triples, "hash-subject", nShards)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/shards=%d/par=%d", ds.name, nShards, par), func(t *testing.T) {
					for _, nq := range ds.queries {
						sp, err := sg.Prepare(nq.Text)
						if err != nil {
							t.Fatal(err)
						}
						tr := obs.New("query")
						got, err := sp.Run(ctx, sparql.WithParallelism(par), sparql.WithTrace(tr))
						tr.Finish()
						if err != nil {
							t.Fatalf("%s: %v", nq.Name, err)
						}
						mustEqualResults(t, want[nq.Name], got)
						root := tr.Root()
						route, ok := root.Str("route")
						if !ok {
							t.Fatalf("%s: trace root missing route", nq.Name)
						}
						shards, _ := root.Int("shards")
						if shards != int64(nShards) {
							t.Fatalf("%s: root shards = %d, want %d", nq.Name, shards, nShards)
						}
						// A scatter-routed query records scatter spans; a
						// pushdown-routed one records a pushdown span.
						switch route {
						case "scatter-gather":
							// Scatter spans exist unless an intermediate
							// emptied before the first pattern — the plans
							// here always scatter at least once.
							if len(root.FindAll("scatter")) == 0 {
								t.Fatalf("%s: scatter route recorded no scatter span", nq.Name)
							}
						case "pushdown":
							if root.Find("pushdown") == nil {
								t.Fatalf("%s: pushdown route recorded no pushdown span", nq.Name)
							}
						default:
							t.Fatalf("%s: unexpected route %q", nq.Name, route)
						}
					}
				})
			}
		}
	}
}

// TestTraceScatterShardRows checks the per-shard gather accounting: on
// a multi-shard scatter, the per-shard row attributes of the scatter
// spans sum to the span's merged row count.
func TestTraceScatterShardRows(t *testing.T) {
	ds := datasets()[0]
	sg, err := BuildByName(ds.triples, "hash-subject", 3)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sg.Prepare(ds.queries[0].Text)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New("query")
	if _, err := sp.Run(context.Background(),
		sparql.WithParallelism(1), sparql.WithTrace(tr), sparql.WithScatterOnly()); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	scatters := tr.Root().FindAll("scatter")
	if len(scatters) == 0 {
		t.Fatal("no scatter spans recorded")
	}
	for _, sc := range scatters {
		rows, ok := sc.Int("rows")
		if !ok {
			t.Fatal("scatter span missing rows")
		}
		var sum int64
		for s := 0; s < 3; s++ {
			if v, ok := sc.Int(fmt.Sprintf("shard_%d_rows", s)); ok {
				sum += v
			}
		}
		if sum != rows {
			t.Fatalf("per-shard rows sum to %d, scatter merged %d", sum, rows)
		}
	}
}
