package shard

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/partition"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

type dataset struct {
	name    string
	triples []rdf.Triple
	queries []workload.NamedQuery
}

func datasets() []dataset {
	return []dataset{
		{"university", workload.GenerateUniversity(workload.SmallUniversity()), workload.UniversityQueries()},
		{"shop", workload.GenerateShop(workload.SmallShop()), workload.ShopQueries()},
	}
}

// mustEqualResults asserts got is byte-identical to want: same form,
// same variables, same rows in the same order.
func mustEqualResults(t *testing.T, want, got *sparql.Results) {
	t.Helper()
	if want.IsAsk != got.IsAsk || want.IsGraph != got.IsGraph {
		t.Fatalf("result form differs: want ask=%v graph=%v, got ask=%v graph=%v",
			want.IsAsk, want.IsGraph, got.IsAsk, got.IsGraph)
	}
	if want.IsAsk {
		if want.Ask != got.Ask {
			t.Fatalf("ASK answer differs: want %v, got %v", want.Ask, got.Ask)
		}
		return
	}
	if want.IsGraph {
		if len(want.Triples) != len(got.Triples) {
			t.Fatalf("graph size differs: want %d, got %d", len(want.Triples), len(got.Triples))
		}
		for i := range want.Triples {
			if want.Triples[i] != got.Triples[i] {
				t.Fatalf("graph triple %d differs:\nwant %v\ngot  %v", i, want.Triples[i], got.Triples[i])
			}
		}
		return
	}
	if len(want.Vars) != len(got.Vars) {
		t.Fatalf("vars differ: want %v, got %v", want.Vars, got.Vars)
	}
	for i := range want.Vars {
		if want.Vars[i] != got.Vars[i] {
			t.Fatalf("vars differ: want %v, got %v", want.Vars, got.Vars)
		}
	}
	w, g := want.OrderedCanonical(), got.OrderedCanonical()
	if len(w) != len(g) {
		t.Fatalf("row count differs: want %d, got %d", len(w), len(g))
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("row %d differs:\nwant %s\ngot  %s", i, w[i], g[i])
		}
	}
}

// TestShardedRunMatchesSingleGraph is the cross-strategy determinism
// suite: sharded execution must be semantically transparent — for every
// workload query, under every strategy, at shard counts 1/3/8 and
// parallelism 1/4, (*Prepared).Run returns byte-identical rows and
// order to a single-graph sparql run.
func TestShardedRunMatchesSingleGraph(t *testing.T) {
	ctx := context.Background()
	strategies := []string{"hash-subject", "vertical", "semantic-class"}
	for _, ds := range datasets() {
		g := rdf.NewGraph(ds.triples)
		want := make(map[string]*sparql.Results, len(ds.queries))
		for _, nq := range ds.queries {
			prep, err := sparql.Prepare(nq.Text)
			if err != nil {
				t.Fatal(err)
			}
			res, err := prep.Run(ctx, g, sparql.WithParallelism(1))
			if err != nil {
				t.Fatal(err)
			}
			want[nq.Name] = res
		}
		for _, strat := range strategies {
			for _, nShards := range []int{1, 3, 8} {
				sg, err := BuildByName(ds.triples, strat, nShards)
				if err != nil {
					t.Fatal(err)
				}
				for _, par := range []int{1, 4} {
					t.Run(fmt.Sprintf("%s/%s/shards=%d/par=%d", ds.name, strat, nShards, par), func(t *testing.T) {
						for _, nq := range ds.queries {
							sp, err := sg.Prepare(nq.Text)
							if err != nil {
								t.Fatal(err)
							}
							got, err := sp.Run(ctx, sparql.WithParallelism(par))
							if err != nil {
								t.Fatalf("%s: %v", nq.Name, err)
							}
							mustEqualResults(t, want[nq.Name], got)
						}
					})
				}
			}
		}
	}
}

// TestScatterOnlyMatchesPushdown pins that both routes compute the same
// answer: forcing scatter-gather on pushdown-eligible queries changes
// nothing but the route.
func TestScatterOnlyMatchesPushdown(t *testing.T) {
	ctx := context.Background()
	ds := datasets()[0]
	sg, err := BuildByName(ds.triples, "hash-subject", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, nq := range ds.queries {
		sp, err := sg.Prepare(nq.Text)
		if err != nil {
			t.Fatal(err)
		}
		var pushStats, scatStats sparql.ShardStats
		push, err := sp.Run(ctx, sparql.WithShardStats(&pushStats))
		if err != nil {
			t.Fatal(err)
		}
		scat, err := sp.Run(ctx, sparql.WithScatterOnly(), sparql.WithShardStats(&scatStats))
		if err != nil {
			t.Fatal(err)
		}
		if scatStats.Route != sparql.RouteScatter {
			t.Fatalf("%s: WithScatterOnly ran route %s", nq.Name, scatStats.Route)
		}
		mustEqualResults(t, push, scat)
	}
}

// TestRoutes pins the routing rules: subject-star BGPs push down under
// subject-co-located placement and scatter otherwise, and the explain
// report agrees with the executed run.
func TestRoutes(t *testing.T) {
	ctx := context.Background()
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	star := fmt.Sprintf(`SELECT ?s ?n ?e WHERE { ?s <%sname> ?n . ?s <%semailAddress> ?e }`,
		workload.UnivNS, workload.UnivNS)
	linear := fmt.Sprintf(`SELECT ?st ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS)

	hash, err := BuildByName(triples, "hash-subject", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !hash.SubjectColocated() {
		t.Fatal("hash-subject placement must co-locate subjects")
	}
	vert, err := BuildByName(triples, "vertical", 4)
	if err != nil {
		t.Fatal(err)
	}
	if vert.SubjectColocated() {
		t.Fatal("vertical placement must not co-locate subjects")
	}

	cases := []struct {
		sg    *ShardedGraph
		text  string
		route sparql.ShardRoute
	}{
		{hash, star, sparql.RoutePushdown},
		{hash, linear, sparql.RouteScatter},
		{vert, star, sparql.RouteScatter},
		{vert, linear, sparql.RouteScatter},
	}
	for i, c := range cases {
		sp, err := c.sg.Prepare(c.text)
		if err != nil {
			t.Fatal(err)
		}
		ex := sp.ExplainShards()
		if ex.Route != c.route {
			t.Fatalf("case %d: explain route %s, want %s", i, ex.Route, c.route)
		}
		var st sparql.ShardStats
		if _, err := sp.Run(ctx, sparql.WithShardStats(&st)); err != nil {
			t.Fatal(err)
		}
		if st.Route != c.route {
			t.Fatalf("case %d: executed route %s, want %s", i, st.Route, c.route)
		}
		if st.ShardsTouched != ex.ShardsTouched || st.ShardsPruned != ex.ShardsPruned {
			t.Fatalf("case %d: run touched/pruned %d/%d, explain predicted %d/%d",
				i, st.ShardsTouched, st.ShardsPruned, ex.ShardsTouched, ex.ShardsPruned)
		}
	}
}

// TestVerticalPruning pins the vertical/semantic payoff: under
// predicate placement, a single-predicate query touches only the
// shard(s) holding that predicate and the rest are pruned unscanned.
func TestVerticalPruning(t *testing.T) {
	ctx := context.Background()
	triples := workload.GenerateShop(workload.SmallShop())
	sg, err := BuildByName(triples, "vertical", 8)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sg.Prepare(fmt.Sprintf(`SELECT ?p ?price WHERE { ?p <%sprice> ?price }`, workload.ShopNS))
	if err != nil {
		t.Fatal(err)
	}
	var st sparql.ShardStats
	res, err := sp.Run(ctx, sparql.WithShardStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("query must match")
	}
	if st.ShardsTouched != 1 {
		t.Fatalf("one predicate lives on one vertical shard; touched %d", st.ShardsTouched)
	}
	if st.ShardsPruned != 7 {
		t.Fatalf("want 7 shards pruned, got %d", st.ShardsPruned)
	}
}

// TestPreparedConcurrentShardedRuns pins goroutine safety of a shared
// sharded Prepared under the race detector.
func TestPreparedConcurrentShardedRuns(t *testing.T) {
	ctx := context.Background()
	ds := datasets()[0]
	sg, err := BuildByName(ds.triples, "hash-subject", 4)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sg.Prepare(ds.queries[0].Text)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sp.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(par int) {
			res, err := sp.Run(ctx, sparql.WithParallelism(par))
			if err == nil && res.Len() != ref.Len() {
				err = fmt.Errorf("row count %d, want %d", res.Len(), ref.Len())
			}
			done <- err
		}(1 + i%4)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedRunCancellation pins that a cancelled context aborts a
// sharded run with ctx.Err.
func TestShardedRunCancellation(t *testing.T) {
	ds := datasets()[0]
	sg, err := BuildByName(ds.triples, "hash-subject", 4)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sg.Prepare(ds.queries[0].Text)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sp.Run(ctx); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunSolutionsStreams pins the streaming face of a sharded run.
func TestRunSolutionsStreams(t *testing.T) {
	ctx := context.Background()
	ds := datasets()[0]
	sg, err := BuildByName(ds.triples, "hash-subject", 3)
	if err != nil {
		t.Fatal(err)
	}
	g := rdf.NewGraph(ds.triples)
	for _, nq := range ds.queries {
		sp, err := sg.Prepare(nq.Text)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := sp.RunSolutions(ctx)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := sparql.Prepare(nq.Text)
		if err != nil {
			t.Fatal(err)
		}
		want, err := prep.Run(ctx, g, sparql.WithParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, want, sol.Results())
	}
}

func TestBuildValidation(t *testing.T) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	if _, err := Build(triples, partition.HashSubject{}, 0); err == nil {
		t.Fatal("0 shards must error")
	}
	if _, err := BuildByName(triples, "no-such-strategy", 4); err == nil {
		t.Fatal("unknown strategy must error")
	}
	sg, err := BuildByName(triples, "hash-subject", 4)
	if err != nil {
		t.Fatal(err)
	}
	if sg.NumShards() != 4 || sg.Strategy() != "hash-subject" {
		t.Fatalf("sg = %d shards, strategy %q", sg.NumShards(), sg.Strategy())
	}
	total := 0
	for _, n := range sg.ShardSizes() {
		total += n
	}
	if total != sg.Len() || total != len(rdf.Dedupe(triples)) {
		t.Fatalf("shard sizes sum %d, Len %d, dataset %d", total, sg.Len(), len(rdf.Dedupe(triples)))
	}
}

// TestShardedLimitPushdown pins the per-shard LIMIT truncation: bare
// LIMIT (and ASK) queries — the limitHint-eligible forms — must still
// return exactly the single-graph answer on both routes, even though
// each shard stops producing early.
func TestShardedLimitPushdown(t *testing.T) {
	ctx := context.Background()
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	g := rdf.NewGraph(triples)
	queries := []string{
		// Pushdown route (subject star), bare LIMIT + OFFSET.
		fmt.Sprintf(`SELECT ?s ?n WHERE { ?s <%sname> ?n } LIMIT 5`, workload.UnivNS),
		fmt.Sprintf(`SELECT ?s ?n ?a WHERE { ?s <%sname> ?n . ?s <%sage> ?a } LIMIT 7 OFFSET 3`,
			workload.UnivNS, workload.UnivNS),
		fmt.Sprintf(`ASK { ?s <%sage> ?a }`, workload.UnivNS),
	}
	for _, strat := range []string{"hash-subject", "vertical"} {
		sg, err := BuildByName(triples, strat, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, text := range queries {
			prep, err := sparql.Prepare(text)
			if err != nil {
				t.Fatal(err)
			}
			want, err := prep.Run(ctx, g, sparql.WithParallelism(1))
			if err != nil {
				t.Fatal(err)
			}
			sp, err := sg.Prepare(text)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sp.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			mustEqualResults(t, want, got)
		}
	}
}
