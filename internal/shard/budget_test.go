package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// TestShardedBudgetOverloadDeterminism extends the budget contract to
// the distributed executor: a budgeted sharded run either returns
// output byte-identical to a clean single-graph serial run or fails
// with a typed *sparql.BudgetError — at any shard count × parallelism,
// on both the pushdown and scatter-gather routes (whose k-way merge
// buffers are themselves charged against the budget).
func TestShardedBudgetOverloadDeterminism(t *testing.T) {
	ctx := context.Background()
	for _, ds := range datasets() {
		g := rdf.NewGraph(ds.triples)
		want := make(map[string]*sparql.Results, len(ds.queries))
		for _, nq := range ds.queries {
			prep, err := sparql.Prepare(nq.Text)
			if err != nil {
				t.Fatal(err)
			}
			res, err := prep.Run(ctx, g, sparql.WithParallelism(1))
			if err != nil {
				t.Fatal(err)
			}
			want[nq.Name] = res
		}
		for _, nShards := range []int{3, 8} {
			t.Run(fmt.Sprintf("%s/shards=%d", ds.name, nShards), func(t *testing.T) {
				sg, err := BuildByName(ds.triples, "hash-subject", nShards)
				if err != nil {
					t.Fatal(err)
				}
				aborted, completed := 0, 0
				for _, nq := range ds.queries {
					sp, err := sg.Prepare(nq.Text)
					if err != nil {
						t.Fatal(err)
					}
					for _, par := range []int{1, 4} {
						for _, budget := range []int64{2 << 10, 1 << 30} {
							got, err := sp.Run(ctx,
								sparql.WithParallelism(par), sparql.WithMemoryBudget(budget))
							if err != nil {
								var be *sparql.BudgetError
								if !errors.As(err, &be) {
									t.Fatalf("%s par %d budget %d: error = %v, want *BudgetError",
										nq.Name, par, budget, err)
								}
								aborted++
								continue
							}
							mustEqualResults(t, want[nq.Name], got)
							completed++
						}
					}
				}
				if aborted == 0 {
					t.Fatal("no sharded query aborted under the 2 KiB budget")
				}
				if completed == 0 {
					t.Fatal("no sharded query completed under the 1 GiB budget")
				}
			})
		}
	}
}
