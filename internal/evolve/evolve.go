// Package evolve implements the survey's closing research direction
// (Sec. V): RDF data "are constantly evolving, typically without any
// warning", so next-generation parallel RDF query answering systems
// "should be able to handle evolving data in an uninterrupted manner",
// keeping track of versions so both the latest and previous states
// stay queryable (the archiving-policy line of [25] and the SPBV
// versioning benchmark [22]).
//
// Store is a delta-chained version store over RDF triples: version 0
// is the base snapshot and every commit appends an (added, removed)
// delta. Any version can be reconstructed, queried, or diffed against
// another. Live wraps any surveyed engine and serves queries without
// interruption while new versions load in the background: readers
// always hit a fully-loaded engine (double buffering), never a
// half-built one.
package evolve

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Version identifies a dataset state; the base snapshot is Version 0.
type Version int

// Delta is one commit: the statements added and removed relative to
// the previous version.
type Delta struct {
	Added   []rdf.Triple
	Removed []rdf.Triple
}

// Store is an append-only chain of deltas over a base snapshot. It is
// safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	base   []rdf.Triple
	deltas []Delta
}

// NewStore creates a store whose version 0 holds base (deduplicated).
func NewStore(base []rdf.Triple) *Store {
	return &Store{base: rdf.Dedupe(base)}
}

// Head returns the newest version.
func (s *Store) Head() Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Version(len(s.deltas))
}

// Commit appends a delta and returns the new version. Added triples
// already present and removed triples absent at the head are ignored,
// so deltas stay minimal and reconstruction stays exact.
func (s *Store) Commit(added, removed []rdf.Triple) (Version, error) {
	for _, t := range added {
		if err := t.Validate(); err != nil {
			return 0, fmt.Errorf("evolve: %w", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	current := map[rdf.Triple]bool{}
	for _, t := range s.snapshotLocked(Version(len(s.deltas))) {
		current[t] = true
	}
	var d Delta
	seenAdd := map[rdf.Triple]bool{}
	for _, t := range added {
		if !current[t] && !seenAdd[t] {
			seenAdd[t] = true
			d.Added = append(d.Added, t)
		}
	}
	seenRem := map[rdf.Triple]bool{}
	for _, t := range removed {
		if current[t] && !seenAdd[t] && !seenRem[t] {
			seenRem[t] = true
			d.Removed = append(d.Removed, t)
		}
	}
	s.deltas = append(s.deltas, d)
	return Version(len(s.deltas)), nil
}

// DeltaOf returns the delta that produced version v (v >= 1).
func (s *Store) DeltaOf(v Version) (Delta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if v < 1 || int(v) > len(s.deltas) {
		return Delta{}, fmt.Errorf("evolve: no delta for version %d", v)
	}
	return s.deltas[v-1], nil
}

// Snapshot reconstructs the full triple set of version v.
func (s *Store) Snapshot(v Version) ([]rdf.Triple, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if v < 0 || int(v) > len(s.deltas) {
		return nil, fmt.Errorf("evolve: unknown version %d (head is %d)", v, len(s.deltas))
	}
	return s.snapshotLocked(v), nil
}

func (s *Store) snapshotLocked(v Version) []rdf.Triple {
	set := make(map[rdf.Triple]bool, len(s.base))
	var order []rdf.Triple
	for _, t := range s.base {
		set[t] = true
		order = append(order, t)
	}
	for _, d := range s.deltas[:v] {
		for _, t := range d.Added {
			if !set[t] {
				set[t] = true
				order = append(order, t)
			}
		}
		for _, t := range d.Removed {
			delete(set, t)
		}
	}
	out := make([]rdf.Triple, 0, len(set))
	for _, t := range order {
		if set[t] {
			out = append(out, t)
		}
	}
	return out
}

// QueryAt answers q over version v with the reference evaluator.
func (s *Store) QueryAt(v Version, q *sparql.Query) (*sparql.Results, error) {
	snap, err := s.Snapshot(v)
	if err != nil {
		return nil, err
	}
	return sparql.Evaluate(q, rdf.NewGraph(snap))
}

// DiffResults evaluates q at two versions and returns the solutions
// that appeared and disappeared between them (canonical row strings) —
// the cross-version delta queries of SPBV-style archive benchmarks.
func (s *Store) DiffResults(from, to Version, q *sparql.Query) (appeared, disappeared []string, err error) {
	a, err := s.QueryAt(from, q)
	if err != nil {
		return nil, nil, err
	}
	b, err := s.QueryAt(to, q)
	if err != nil {
		return nil, nil, err
	}
	inA := multiset(a.Canonical())
	inB := multiset(b.Canonical())
	for row, n := range inB {
		for i := inA[row]; i < n; i++ {
			appeared = append(appeared, row)
		}
	}
	for row, n := range inA {
		for i := inB[row]; i < n; i++ {
			disappeared = append(disappeared, row)
		}
	}
	return appeared, disappeared, nil
}

func multiset(rows []string) map[string]int {
	m := map[string]int{}
	for _, r := range rows {
		m[r]++
	}
	return m
}

// Live serves SPARQL over the head of a store through a surveyed
// engine, uninterrupted across commits: Refresh loads the new head
// into a fresh engine off to the side and swaps it in atomically, so
// concurrent Execute calls always see a complete version.
type Live struct {
	store   *Store
	factory func() core.Engine

	mu      sync.RWMutex
	engine  core.Engine
	version Version
}

// NewLive builds a Live server over store using factory to create
// engines (one per loaded version) and loads the current head.
func NewLive(store *Store, factory func() core.Engine) (*Live, error) {
	l := &Live{store: store, factory: factory, version: -1}
	if err := l.Refresh(); err != nil {
		return nil, err
	}
	return l, nil
}

// Version returns the version currently being served.
func (l *Live) Version() Version {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.version
}

// Refresh loads the store's head into a fresh engine and swaps it in.
// Queries keep running against the previous engine until the swap.
func (l *Live) Refresh() error {
	head := l.store.Head()
	l.mu.RLock()
	current := l.version
	l.mu.RUnlock()
	if head == current {
		return nil
	}
	snap, err := l.store.Snapshot(head)
	if err != nil {
		return err
	}
	next := l.factory()
	if err := next.Load(snap); err != nil {
		return err
	}
	l.mu.Lock()
	l.engine = next
	l.version = head
	l.mu.Unlock()
	return nil
}

// Execute answers q against the most recently loaded version.
func (l *Live) Execute(q *sparql.Query) (*sparql.Results, Version, error) {
	l.mu.RLock()
	engine := l.engine
	version := l.version
	l.mu.RUnlock()
	res, err := engine.Execute(q)
	return res, version, err
}
