package evolve

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems/sparqlgx"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }

func tr(s, p, o string) rdf.Triple { return rdf.Triple{S: iri(s), P: iri(p), O: iri(o)} }

func baseData() []rdf.Triple {
	return []rdf.Triple{tr("a", "knows", "b"), tr("b", "knows", "c")}
}

func knowsQuery() *sparql.Query {
	return sparql.MustParse(`SELECT ?x ?y WHERE { ?x <http://e/knows> ?y }`)
}

func TestSnapshotVersions(t *testing.T) {
	s := NewStore(baseData())
	if s.Head() != 0 {
		t.Fatalf("head = %d", s.Head())
	}
	v1, err := s.Commit([]rdf.Triple{tr("c", "knows", "d")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s.Commit(nil, []rdf.Triple{tr("a", "knows", "b")})
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 || v2 != 2 || s.Head() != 2 {
		t.Fatalf("versions = %d %d head %d", v1, v2, s.Head())
	}
	for v, want := range map[Version]int{0: 2, 1: 3, 2: 2} {
		snap, err := s.Snapshot(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(snap) != want {
			t.Fatalf("v%d size = %d, want %d", v, len(snap), want)
		}
	}
	// Version 2 must not contain the removed triple.
	snap2, _ := s.Snapshot(2)
	for _, x := range snap2 {
		if x == tr("a", "knows", "b") {
			t.Fatal("removed triple still present")
		}
	}
}

func TestSnapshotUnknownVersion(t *testing.T) {
	s := NewStore(baseData())
	if _, err := s.Snapshot(5); err == nil {
		t.Fatal("expected error")
	}
	if _, err := s.Snapshot(-1); err == nil {
		t.Fatal("expected error")
	}
	if _, err := s.DeltaOf(0); err == nil {
		t.Fatal("version 0 has no delta")
	}
}

func TestCommitNormalizesDeltas(t *testing.T) {
	s := NewStore(baseData())
	// Adding an existing triple and removing an absent one is a no-op.
	v, err := s.Commit([]rdf.Triple{tr("a", "knows", "b")}, []rdf.Triple{tr("z", "knows", "z")})
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.DeltaOf(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatalf("delta not normalized: %+v", d)
	}
	v2, _ := s.Commit([]rdf.Triple{tr("n", "knows", "m"), tr("n", "knows", "m")}, nil)
	d2, _ := s.DeltaOf(v2)
	if len(d2.Added) != 1 {
		t.Fatalf("duplicate adds kept: %+v", d2)
	}
}

func TestCommitValidates(t *testing.T) {
	s := NewStore(nil)
	bad := rdf.Triple{S: rdf.NewLiteral("x"), P: iri("p"), O: iri("o")}
	if _, err := s.Commit([]rdf.Triple{bad}, nil); err == nil {
		t.Fatal("invalid triple accepted")
	}
}

func TestQueryAtAndDiff(t *testing.T) {
	s := NewStore(baseData())
	_, _ = s.Commit([]rdf.Triple{tr("c", "knows", "d")}, []rdf.Triple{tr("a", "knows", "b")})

	r0, err := s.QueryAt(0, knowsQuery())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.QueryAt(1, knowsQuery())
	if err != nil {
		t.Fatal(err)
	}
	if r0.Len() != 2 || r1.Len() != 2 {
		t.Fatalf("rows: v0=%d v1=%d", r0.Len(), r1.Len())
	}
	appeared, disappeared, err := s.DiffResults(0, 1, knowsQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(appeared) != 1 || len(disappeared) != 1 {
		t.Fatalf("diff = +%v -%v", appeared, disappeared)
	}
}

func TestLiveServesAcrossCommits(t *testing.T) {
	s := NewStore(baseData())
	factory := func() core.Engine {
		return sparqlgx.New(spark.NewContext(spark.DefaultConfig()))
	}
	live, err := NewLive(s, factory)
	if err != nil {
		t.Fatal(err)
	}
	res, v, err := live.Execute(knowsQuery())
	if err != nil || v != 0 || res.Len() != 2 {
		t.Fatalf("v0: res=%v v=%d err=%v", res.Len(), v, err)
	}

	if _, err := s.Commit([]rdf.Triple{tr("c", "knows", "d")}, nil); err != nil {
		t.Fatal(err)
	}
	// Before refresh the old version keeps serving (uninterrupted).
	res, v, err = live.Execute(knowsQuery())
	if err != nil || v != 0 || res.Len() != 2 {
		t.Fatalf("pre-refresh: res=%v v=%d err=%v", res.Len(), v, err)
	}
	if err := live.Refresh(); err != nil {
		t.Fatal(err)
	}
	res, v, err = live.Execute(knowsQuery())
	if err != nil || v != 1 || res.Len() != 3 {
		t.Fatalf("post-refresh: res=%v v=%d err=%v", res.Len(), v, err)
	}
	// Refresh at head is a no-op.
	if err := live.Refresh(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveUninterruptedUnderConcurrency(t *testing.T) {
	s := NewStore(baseData())
	factory := func() core.Engine {
		return sparqlgx.New(spark.NewContext(spark.Config{Parallelism: 2, Executors: 2, MaxConcurrency: 2}))
	}
	live, err := NewLive(s, factory)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)
	// Readers hammer the live server while the writer commits and
	// refreshes new versions.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, _, err := live.Execute(knowsQuery())
				if err != nil {
					errs <- err
					return
				}
				if res.Len() < 2 {
					errs <- fmt.Errorf("query saw a partial version: %d rows", res.Len())
					return
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Commit([]rdf.Triple{tr(fmt.Sprintf("n%d", i), "knows", "a")}, nil); err != nil {
			t.Fatal(err)
		}
		if err := live.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if live.Version() != 5 {
		t.Fatalf("final version = %d", live.Version())
	}
}
