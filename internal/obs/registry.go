package obs

import (
	"container/list"
	"sort"
	"sync"
	"time"
)

// ShapeRegistry aggregates the serving workload by plan fingerprint:
// every request that reaches query execution is folded into the entry
// for its normalized query shape (sparql.FingerprintQuery), so ten
// thousand point lookups that differ only in literals show up as one
// row with ten thousand observations. Cardinality is bounded by an
// LRU over shapes — a scripted scan of ever-new shapes evicts the
// least recently seen entries instead of growing without limit — and
// the heavy-hitter view (TopK) ranks the survivors by request count.
//
// All methods are safe for concurrent use; Observe is a single
// mutex-guarded fold designed to sit on the request completion path.
type ShapeRegistry struct {
	mu        sync.Mutex
	capacity  int
	entries   map[string]*shapeEntry
	order     *list.List // front = most recently seen
	evictions uint64

	latencyBounds []float64
	rowsBounds    []float64
	bytesBounds   []float64
}

// ShapeSample is one request's contribution to its shape entry.
type ShapeSample struct {
	Fingerprint string
	Class       string // shape classification (star/linear/snowflake/complex)
	Example     string // query text, retained for the first request of a shape
	Route       string // "local" or "sharded"
	DurationMs  float64
	Rows        int
	Bytes       int64 // bytes charged against the memory budget
	CacheHit    bool
	Err         bool
	Shed        bool
	Degraded    bool
	Hedges      int
	Speculation int
	Sampled     bool // request carried a sampled trace
}

type shapeEntry struct {
	fp        string
	class     string
	example   string
	firstSeen time.Time
	lastSeen  time.Time

	count, errors, cacheHits  uint64
	sheds, degrades           uint64
	hedges, speculations      uint64
	sampled                   uint64
	rowsTotal                 uint64
	bytesTotal                uint64
	routes                    map[string]uint64
	latency, rows, bytesUsage hist

	elem *list.Element // position in the LRU order
}

// hist is a cumulative-bucket histogram over fixed upper bounds, plus
// sum and max, sized for per-shape retention (a few dozen uint64s).
type hist struct {
	counts []uint64
	sum    float64
	max    float64
	n      uint64
}

func (h *hist) observe(bounds []float64, v float64) {
	if h.counts == nil {
		h.counts = make([]uint64, len(bounds))
	}
	for i, b := range bounds {
		if v <= b {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.n++
	if v > h.max {
		h.max = v
	}
}

// quantile estimates the q-quantile (0..1) from the bucket counts,
// attributing each bucket's mass to its upper bound; overflow mass
// reports the observed max.
func (h *hist) quantile(bounds []float64, q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if rank < cum {
			return bounds[i]
		}
	}
	return h.max
}

// Default histogram bounds: latency mirrors the server's bucket
// ladder, rows and bytes cover point lookups through full scans.
var (
	defaultLatencyBoundsMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}
	defaultRowsBounds      = []float64{1, 10, 100, 1000, 10000, 100000, 1000000}
	defaultBytesBounds     = []float64{1 << 10, 16 << 10, 256 << 10, 1 << 20, 16 << 20, 256 << 20}
)

// NewShapeRegistry builds a registry bounded to capacity shapes
// (minimum 1; a non-positive capacity defaults to 256).
func NewShapeRegistry(capacity int) *ShapeRegistry {
	if capacity <= 0 {
		capacity = 256
	}
	return &ShapeRegistry{
		capacity:      capacity,
		entries:       make(map[string]*shapeEntry, capacity),
		order:         list.New(),
		latencyBounds: defaultLatencyBoundsMs,
		rowsBounds:    defaultRowsBounds,
		bytesBounds:   defaultBytesBounds,
	}
}

// Observe folds one request into its shape entry, creating (and if
// necessary evicting) as needed. Samples without a fingerprint are
// dropped — they never reached query compilation.
func (r *ShapeRegistry) Observe(s ShapeSample) {
	if s.Fingerprint == "" {
		return
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[s.Fingerprint]
	if e == nil {
		for len(r.entries) >= r.capacity {
			back := r.order.Back()
			victim := back.Value.(*shapeEntry)
			r.order.Remove(back)
			delete(r.entries, victim.fp)
			r.evictions++
		}
		e = &shapeEntry{
			fp:        s.Fingerprint,
			class:     s.Class,
			example:   truncate(s.Example, 400),
			firstSeen: now,
			routes:    make(map[string]uint64, 2),
		}
		e.elem = r.order.PushFront(e)
		r.entries[s.Fingerprint] = e
	} else {
		r.order.MoveToFront(e.elem)
	}
	e.lastSeen = now
	e.count++
	if s.Err {
		e.errors++
	}
	if s.CacheHit {
		e.cacheHits++
	}
	if s.Shed {
		e.sheds++
	}
	if s.Degraded {
		e.degrades++
	}
	if s.Sampled {
		e.sampled++
	}
	e.hedges += uint64(s.Hedges)
	e.speculations += uint64(s.Speculation)
	if s.Rows > 0 {
		e.rowsTotal += uint64(s.Rows)
	}
	if s.Bytes > 0 {
		e.bytesTotal += uint64(s.Bytes)
	}
	if s.Route != "" {
		e.routes[s.Route]++
	}
	e.latency.observe(r.latencyBounds, s.DurationMs)
	e.rows.observe(r.rowsBounds, float64(s.Rows))
	e.bytesUsage.observe(r.bytesBounds, float64(s.Bytes))
}

// ShapeStat is a point-in-time snapshot of one shape entry.
type ShapeStat struct {
	Fingerprint  string            `json:"fingerprint"`
	Class        string            `json:"class"`
	Example      string            `json:"example"`
	Count        uint64            `json:"count"`
	Errors       uint64            `json:"errors"`
	CacheHits    uint64            `json:"cache_hits"`
	Sheds        uint64            `json:"sheds"`
	Degrades     uint64            `json:"degrades"`
	Hedges       uint64            `json:"hedges"`
	Speculations uint64            `json:"speculations"`
	Sampled      uint64            `json:"sampled_traces"`
	RowsTotal    uint64            `json:"rows_total"`
	BytesTotal   uint64            `json:"bytes_total"`
	Routes       map[string]uint64 `json:"routes"`
	LatencyP50Ms float64           `json:"latency_p50_ms"`
	LatencyP95Ms float64           `json:"latency_p95_ms"`
	LatencyP99Ms float64           `json:"latency_p99_ms"`
	LatencyMaxMs float64           `json:"latency_max_ms"`
	MeanRows     float64           `json:"mean_rows"`
	FirstSeen    time.Time         `json:"first_seen"`
	LastSeen     time.Time         `json:"last_seen"`
}

func (r *ShapeRegistry) snapshotEntry(e *shapeEntry) ShapeStat {
	routes := make(map[string]uint64, len(e.routes))
	for k, v := range e.routes {
		routes[k] = v
	}
	var meanRows float64
	if e.count > 0 {
		meanRows = float64(e.rowsTotal) / float64(e.count)
	}
	return ShapeStat{
		Fingerprint:  e.fp,
		Class:        e.class,
		Example:      e.example,
		Count:        e.count,
		Errors:       e.errors,
		CacheHits:    e.cacheHits,
		Sheds:        e.sheds,
		Degrades:     e.degrades,
		Hedges:       e.hedges,
		Speculations: e.speculations,
		Sampled:      e.sampled,
		RowsTotal:    e.rowsTotal,
		BytesTotal:   e.bytesTotal,
		Routes:       routes,
		LatencyP50Ms: e.latency.quantile(r.latencyBounds, 0.50),
		LatencyP95Ms: e.latency.quantile(r.latencyBounds, 0.95),
		LatencyP99Ms: e.latency.quantile(r.latencyBounds, 0.99),
		LatencyMaxMs: e.latency.max,
		MeanRows:     meanRows,
		FirstSeen:    e.firstSeen,
		LastSeen:     e.lastSeen,
	}
}

// TopK returns up to k shape entries ranked by request count
// (descending), ties broken by fingerprint for deterministic output.
// k <= 0 returns every retained shape.
func (r *ShapeRegistry) TopK(k int) []ShapeStat {
	r.mu.Lock()
	stats := make([]ShapeStat, 0, len(r.entries))
	for _, e := range r.entries {
		stats = append(stats, r.snapshotEntry(e))
	}
	r.mu.Unlock()
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Count != stats[j].Count {
			return stats[i].Count > stats[j].Count
		}
		return stats[i].Fingerprint < stats[j].Fingerprint
	})
	if k > 0 && len(stats) > k {
		stats = stats[:k]
	}
	return stats
}

// Len returns the number of shapes currently retained.
func (r *ShapeRegistry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Capacity returns the configured LRU bound.
func (r *ShapeRegistry) Capacity() int { return r.capacity }

// Evictions returns the number of shapes dropped by the LRU bound.
func (r *ShapeRegistry) Evictions() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictions
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
