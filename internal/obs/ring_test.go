package obs

import (
	"fmt"
	"sync"
	"testing"
)

func retained(id string) RetainedTrace {
	tr := New("query")
	tr.Finish()
	return RetainedTrace{RequestID: id, Reason: "sampled", Trace: tr}
}

// TestTraceRingEviction pins the retention bound: the ring never holds
// more than its capacity, the newest traces win, and List is
// newest-first.
func TestTraceRingEviction(t *testing.T) {
	r := NewTraceRing(4)
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d", r.Cap())
	}
	for i := 0; i < 10; i++ {
		r.Add(retained(fmt.Sprintf("req-%d", i)))
		if r.Len() > 4 {
			t.Fatalf("ring grew to %d at i=%d", r.Len(), i)
		}
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	list := r.List()
	want := []string{"req-9", "req-8", "req-7", "req-6"}
	for i, w := range want {
		if list[i].RequestID != w {
			t.Fatalf("List[%d] = %s, want %s", i, list[i].RequestID, w)
		}
	}
	// Evicted ids are gone; retained ids resolve.
	if _, ok := r.Get("req-0"); ok {
		t.Fatal("evicted trace still retrievable")
	}
	rt, ok := r.Get("req-8")
	if !ok || rt.RequestID != "req-8" || rt.Trace == nil {
		t.Fatalf("Get(req-8) = %+v, %v", rt, ok)
	}
}

// TestTraceRingDuplicateIDNewestWins pins the duplicate-id rule: when
// a client reuses X-Request-ID, Get returns the newest retention.
func TestTraceRingDuplicateIDNewestWins(t *testing.T) {
	r := NewTraceRing(8)
	a := retained("dup")
	a.DurationMs = 1
	r.Add(a)
	b := retained("dup")
	b.DurationMs = 2
	r.Add(b)
	got, ok := r.Get("dup")
	if !ok || got.DurationMs != 2 {
		t.Fatalf("Get(dup) = %+v, %v; want the newest (duration 2)", got, ok)
	}
}

// TestTraceRingConcurrent exercises Add/List/Get under -race.
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add(retained(fmt.Sprintf("w%d-%d", w, i)))
				if i%50 == 0 {
					r.List()
					r.Get(fmt.Sprintf("w%d-%d", w, i))
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 16 {
		t.Fatalf("Len = %d", r.Len())
	}
}
