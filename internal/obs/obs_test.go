package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndAttrs(t *testing.T) {
	tr := New("query")
	bgp := tr.Begin("bgp")
	bgp.SetInt("patterns", 2)
	bgp.SetStr("join_order", "1,0")
	seed := tr.Begin("seed_scan")
	seed.SetInt("rows", 100)
	seed.AddInt("morsels", 3)
	seed.AddInt("morsels", 2)
	tr.End(seed)
	tr.End(bgp)
	mod := tr.Begin("modifiers")
	mod.SetInt("rows_in", 100)
	mod.SetInt("rows_in", 250) // overwrite
	tr.End(mod)
	tr.Finish()

	root := tr.Root()
	if root.Name != "query" || len(root.Children) != 2 {
		t.Fatalf("root = %q with %d children, want query with 2", root.Name, len(root.Children))
	}
	if got := root.Children[0].Children[0].Name; got != "seed_scan" {
		t.Fatalf("nested child = %q, want seed_scan", got)
	}
	if v, ok := root.Find("seed_scan").Int("morsels"); !ok || v != 5 {
		t.Fatalf("morsels = %d,%v, want 5,true", v, ok)
	}
	if v, ok := root.Find("modifiers").Int("rows_in"); !ok || v != 250 {
		t.Fatalf("rows_in = %d,%v, want 250,true", v, ok)
	}
	if s, ok := root.Find("bgp").Str("join_order"); !ok || s != "1,0" {
		t.Fatalf("join_order = %q,%v", s, ok)
	}
	if root.Duration <= 0 {
		t.Fatalf("root duration %v not set by Finish", root.Duration)
	}
	for _, sp := range []*Span{root.Children[0], root.Children[1], root.Children[0].Children[0]} {
		if !sp.ended || sp.Duration < 0 {
			t.Fatalf("span %q not properly ended", sp.Name)
		}
	}
}

func TestEndClosesOpenDescendants(t *testing.T) {
	tr := New("query")
	outer := tr.Begin("outer")
	tr.Begin("inner") // an early-exit path leaves inner open
	tr.End(outer)
	if cur := tr.Current(); cur != tr.Root() {
		t.Fatalf("current = %q, want root", cur.Name)
	}
	inner := tr.Root().Find("inner")
	if !inner.ended {
		t.Fatal("inner span left open by End(outer)")
	}
	// Ending a span twice (or a span not on the stack) is a no-op.
	tr.End(outer)
	tr.Finish()
	tr.Finish()
}

func TestSelfTimeAndTopSelf(t *testing.T) {
	tr := New("query")
	root := tr.Root()
	root.Duration = 10 * time.Millisecond
	root.ended = true
	a := &Span{Name: "a", Duration: 6 * time.Millisecond}
	b := &Span{Name: "b", Duration: 3 * time.Millisecond}
	a.Children = []*Span{{Name: "a1", Duration: 2 * time.Millisecond}}
	root.Children = []*Span{a, b}

	if got := root.SelfTime(); got != 1*time.Millisecond {
		t.Fatalf("root self = %v, want 1ms", got)
	}
	if got := a.SelfTime(); got != 4*time.Millisecond {
		t.Fatalf("a self = %v, want 4ms", got)
	}
	top := tr.TopSelf(3)
	want := []string{"a", "b", "a1"}
	if len(top) != 3 {
		t.Fatalf("TopSelf returned %d spans", len(top))
	}
	for i, w := range want {
		if top[i].Name != w {
			t.Fatalf("TopSelf[%d] = %q, want %q (got %+v)", i, top[i].Name, w, top)
		}
	}
	// A span whose children exceed its own duration clamps at zero.
	c := &Span{Name: "c", Duration: time.Millisecond,
		Children: []*Span{{Duration: 2 * time.Millisecond}}}
	if got := c.SelfTime(); got != 0 {
		t.Fatalf("clamped self = %v, want 0", got)
	}
}

func TestJSONRenderValid(t *testing.T) {
	tr := New("query")
	sp := tr.Begin("bgp")
	sp.SetInt("rows", 42)
	sp.SetStr("note", `quote " and \ slash`)
	tr.End(sp)
	tr.Finish()
	var doc struct {
		Name     string `json:"name"`
		Children []struct {
			Name  string `json:"name"`
			Attrs struct {
				Rows int64  `json:"rows"`
				Note string `json:"note"`
			} `json:"attrs"`
		} `json:"children"`
	}
	raw := tr.JSON()
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("JSON() produced invalid JSON: %v\n%s", err, raw)
	}
	if doc.Name != "query" || len(doc.Children) != 1 {
		t.Fatalf("unexpected document: %s", raw)
	}
	if doc.Children[0].Attrs.Rows != 42 || doc.Children[0].Attrs.Note != `quote " and \ slash` {
		t.Fatalf("attrs did not round-trip: %s", raw)
	}
}

func TestTextRender(t *testing.T) {
	tr := New("query")
	sp := tr.Begin("bgp")
	sp.SetInt("patterns", 2)
	child := tr.Begin("seed_scan")
	child.SetInt("rows", 7)
	tr.End(child)
	tr.End(sp)
	tr.Finish()
	text := tr.Text()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d:\n%s", len(lines), text)
	}
	if !strings.HasPrefix(lines[0], "query") ||
		!strings.HasPrefix(lines[1], "  bgp") ||
		!strings.HasPrefix(lines[2], "    seed_scan") {
		t.Fatalf("indentation wrong:\n%s", text)
	}
	if !strings.Contains(lines[1], "patterns=2") || !strings.Contains(lines[2], "rows=7") {
		t.Fatalf("attrs missing:\n%s", text)
	}
	if !strings.Contains(lines[0], "ms") {
		t.Fatalf("duration missing:\n%s", text)
	}
}

// validateExposition is a minimal Prometheus text-format checker: every
// non-comment line must be a valid sample, every sample's family must
// have been declared by HELP+TYPE, and histogram buckets must be
// cumulative and capped by +Inf == _count.
func validateExposition(t *testing.T, body []byte) map[string]string {
	t.Helper()
	types := map[string]string{}
	sample := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf|NaN)$`)
	var curHist string
	var lastCum float64
	histCum := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		m := sample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := m[1]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && types[b] == "histogram" {
				base = b
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("sample %q has no TYPE declaration", name)
		}
		if strings.HasSuffix(name, "_bucket") && types[base] == "histogram" {
			v, _ := strconv.ParseFloat(m[3], 64)
			if base != curHist {
				curHist, lastCum = base, 0
			}
			if v < lastCum {
				t.Fatalf("histogram %s buckets not cumulative: %v < %v", base, v, lastCum)
			}
			lastCum = v
			if strings.Contains(m[2], `le="+Inf"`) {
				histCum[base] = v
			}
		}
		if strings.HasSuffix(name, "_count") && types[base] == "histogram" {
			v, _ := strconv.ParseFloat(m[3], 64)
			if inf, ok := histCum[base]; ok && inf != v {
				t.Fatalf("histogram %s: +Inf bucket %v != count %v", base, inf, v)
			}
		}
	}
	return types
}

func TestMetricsWriterExposition(t *testing.T) {
	var w MetricsWriter
	w.Counter("rdf_queries_served_total", "Queries answered successfully.", 42)
	w.Gauge("rdf_in_flight_queries", "Queries evaluating right now.", 3)
	w.GaugeL("rdf_build_info", "Build facts.", []Label{{"go_version", `go1.24 "x"`}}, 1)
	w.Histogram("rdf_query_duration_ms", "Latency.",
		[]float64{1, 2.5, 10}, []uint64{3, 0, 2, 1}, 37.5)
	body := w.Bytes()

	types := validateExposition(t, body)
	if types["rdf_queries_served_total"] != "counter" {
		t.Fatalf("counter family missing: %v", types)
	}
	if types["rdf_in_flight_queries"] != "gauge" || types["rdf_build_info"] != "gauge" {
		t.Fatalf("gauge families missing: %v", types)
	}
	if types["rdf_query_duration_ms"] != "histogram" {
		t.Fatalf("histogram family missing: %v", types)
	}
	s := string(body)
	for _, want := range []string{
		`rdf_query_duration_ms_bucket{le="1"} 3`,
		`rdf_query_duration_ms_bucket{le="2.5"} 3`,
		`rdf_query_duration_ms_bucket{le="10"} 5`,
		`rdf_query_duration_ms_bucket{le="+Inf"} 6`,
		`rdf_query_duration_ms_sum 37.5`,
		`rdf_query_duration_ms_count 6`,
		`rdf_build_info{go_version="go1.24 \"x\""} 1`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("exposition missing %q:\n%s", want, s)
		}
	}
}

func TestSlowQueryLogger(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowQueryLogger(&buf)
	err := l.Log(SlowQueryEntry{
		RequestID:     "abc123",
		QueryHash:     QueryHash("SELECT ?s WHERE { ?s ?p ?o }"),
		Route:         "scatter-gather",
		Shards:        4,
		ShardsTouched: 3,
		DurationMs:    41.25,
		TopSpans: []SpanSelf{
			{Name: "seed_scan", SelfMs: 20.5},
			{Name: "join", SelfMs: 10.1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("want exactly one line, got %q", line)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("log line is not valid JSON: %v\n%s", err, line)
	}
	if rec["request_id"] != "abc123" || rec["route"] != "scatter-gather" {
		t.Fatalf("fields wrong: %v", rec)
	}
	if rec["query_hash"] == "" {
		t.Fatal("query hash empty")
	}
	spans, ok := rec["top_spans"].([]any)
	if !ok || len(spans) != 2 {
		t.Fatalf("top_spans wrong: %v", rec["top_spans"])
	}
}

// TestSlowQueryLoggerConcurrent pins the no-interleaving contract:
// many goroutines logging to one shared writer produce exactly one
// valid JSON line per record, each line whole.
func TestSlowQueryLoggerConcurrent(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	lockedWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	l := NewSlowQueryLogger(lockedWriter)

	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := l.Log(SlowQueryEntry{
					RequestID:       fmt.Sprintf("w%d-%d", w, i),
					QueryHash:       QueryHash(fmt.Sprintf("SELECT %d", i)),
					PlanFingerprint: "aaaa000011112222",
					Route:           "local",
					DurationMs:      float64(i),
					TopSpans:        []SpanSelf{{Name: "join", SelfMs: 1.5}},
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != workers*perWorker {
		t.Fatalf("got %d lines, want %d", len(lines), workers*perWorker)
	}
	seen := make(map[string]bool, len(lines))
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("interleaved or invalid line: %v\n%s", err, line)
		}
		id, _ := rec["request_id"].(string)
		if seen[id] {
			t.Fatalf("duplicate request_id %q", id)
		}
		seen[id] = true
		if rec["plan_fingerprint"] != "aaaa000011112222" {
			t.Fatalf("plan_fingerprint wrong in %s", line)
		}
	}
}

// writerFunc adapts a function to io.Writer for test writers.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestQueryHashStable(t *testing.T) {
	a, b := QueryHash("SELECT 1"), QueryHash("SELECT 1")
	if a != b || len(a) != 16 {
		t.Fatalf("hash unstable or wrong width: %q vs %q", a, b)
	}
	if QueryHash("SELECT 2") == a {
		t.Fatal("distinct queries hashed equal")
	}
}
