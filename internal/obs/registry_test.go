package obs

import (
	"fmt"
	"sync"
	"testing"
)

func sampleFor(fp string) ShapeSample {
	return ShapeSample{
		Fingerprint: fp,
		Class:       "star",
		Example:     "SELECT ?s WHERE { ?s <http://ex/p> ?o }",
		Route:       "local",
		DurationMs:  3,
		Rows:        10,
		Bytes:       1024,
	}
}

// TestRegistryFoldsOneShape pins the aggregation contract: many
// observations of one fingerprint stay one entry, with counts folded.
func TestRegistryFoldsOneShape(t *testing.T) {
	r := NewShapeRegistry(16)
	for i := 0; i < 10000; i++ {
		s := sampleFor("aaaa000011112222")
		s.CacheHit = i > 0
		if i%10 == 0 {
			s.Err = true
		}
		r.Observe(s)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	top := r.TopK(0)
	if len(top) != 1 {
		t.Fatalf("TopK returned %d entries", len(top))
	}
	st := top[0]
	if st.Count != 10000 {
		t.Fatalf("count %d", st.Count)
	}
	if st.Errors != 1000 {
		t.Fatalf("errors %d", st.Errors)
	}
	if st.CacheHits != 9999 {
		t.Fatalf("cache hits %d", st.CacheHits)
	}
	if st.RowsTotal != 100000 {
		t.Fatalf("rows total %d", st.RowsTotal)
	}
	if st.Routes["local"] != 10000 {
		t.Fatalf("routes %v", st.Routes)
	}
	if st.LatencyP50Ms <= 0 || st.LatencyP95Ms < st.LatencyP50Ms {
		t.Fatalf("quantiles p50=%v p95=%v", st.LatencyP50Ms, st.LatencyP95Ms)
	}
	if r.Evictions() != 0 {
		t.Fatalf("evictions %d", r.Evictions())
	}
}

// TestRegistryLRUBound pins the cardinality bound: 10k distinct shapes
// never grow the registry past its capacity, and the survivors are the
// most recently seen.
func TestRegistryLRUBound(t *testing.T) {
	const cap = 64
	r := NewShapeRegistry(cap)
	for i := 0; i < 10000; i++ {
		if got := r.Len(); got > cap {
			t.Fatalf("registry grew to %d > cap %d at i=%d", got, cap, i)
		}
		r.Observe(sampleFor(fmt.Sprintf("%016x", i)))
	}
	if got := r.Len(); got != cap {
		t.Fatalf("Len = %d, want %d", got, cap)
	}
	if ev := r.Evictions(); ev != 10000-cap {
		t.Fatalf("evictions %d, want %d", ev, 10000-cap)
	}
	// The newest shapes survived; the oldest were evicted.
	for _, st := range r.TopK(0) {
		var n int
		fmt.Sscanf(st.Fingerprint, "%016x", &n)
		if n < 10000-cap {
			t.Fatalf("old shape %s survived eviction", st.Fingerprint)
		}
	}
}

// TestRegistryLRURecency pins the "recently used" half of LRU: an old
// shape that keeps being observed survives a flood of new shapes.
func TestRegistryLRURecency(t *testing.T) {
	r := NewShapeRegistry(8)
	r.Observe(sampleFor("hot0000000000000"))
	for i := 0; i < 1000; i++ {
		r.Observe(sampleFor(fmt.Sprintf("cold%012x", i)))
		r.Observe(sampleFor("hot0000000000000")) // keep it warm
	}
	found := false
	for _, st := range r.TopK(0) {
		if st.Fingerprint == "hot0000000000000" {
			found = true
			if st.Count != 1001 {
				t.Fatalf("hot shape count %d", st.Count)
			}
		}
	}
	if !found {
		t.Fatal("frequently seen shape was evicted")
	}
}

// TestRegistryTopKOrder pins heavy-hitter ordering: count descending,
// fingerprint ascending on ties, truncated to k.
func TestRegistryTopKOrder(t *testing.T) {
	r := NewShapeRegistry(16)
	for i, n := range []int{3, 7, 7, 1} {
		fp := fmt.Sprintf("%016d", i)
		for j := 0; j < n; j++ {
			r.Observe(sampleFor(fp))
		}
	}
	top := r.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK(3) returned %d", len(top))
	}
	wantOrder := []string{"0000000000000001", "0000000000000002", "0000000000000000"}
	for i, want := range wantOrder {
		if top[i].Fingerprint != want {
			t.Fatalf("rank %d = %s (count %d), want %s", i, top[i].Fingerprint, top[i].Count, want)
		}
	}
}

// TestRegistryConcurrent exercises Observe/TopK/Len under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewShapeRegistry(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Observe(sampleFor(fmt.Sprintf("%08x%08x", w%4, i%40)))
				if i%100 == 0 {
					r.TopK(5)
					r.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() == 0 || r.Len() > 32 {
		t.Fatalf("Len = %d", r.Len())
	}
}
