// Package obs is the engine's observability layer: a zero-dependency
// execution-trace span tree recorded by the query path when a run is
// armed with sparql.WithTrace, plus the text surfaces the trace and the
// server's counters are exposed through — an indented/JSON EXPLAIN
// ANALYZE renderer, a hand-rolled Prometheus text-exposition writer,
// and a structured (JSON lines) slow-query logger.
//
// Design constraints, in priority order:
//
//   - Near-zero overhead when disarmed: the evaluator keeps a single
//     nil pointer and every trace site costs one nil check. Nothing in
//     this package runs on an unarmed query.
//   - Driver-only mutation: a Trace (and its span stack) is owned by
//     the goroutine that runs the query's operator loop. Worker
//     goroutines never touch the tree — per-worker measurements (busy
//     time) accumulate in atomics merged into span attributes at run
//     end, after the workers are quiesced.
//   - Determinism: recording a trace observes the run, it never steers
//     it. Attribute order is insertion order, so two identical runs
//     render identical trees.
package obs

import (
	"sort"
	"time"
)

// Attr is one span attribute: a key with either an integer or a string
// value. Attributes keep insertion order, which makes rendered traces
// deterministic (a map would shuffle keys).
type Attr struct {
	Key string
	Int int64
	Str string
	// IsStr selects which value field is live.
	IsStr bool
}

// Span is one node of the execution trace: a named, timed stage of the
// query (parse, a BGP, one hash join, one scatter gather, ...) with
// typed attributes and child stages. Start is the offset from the
// trace's origin; Duration is zero until the span is ended.
type Span struct {
	Name     string
	Start    time.Duration
	Duration time.Duration
	Attrs    []Attr
	Children []*Span

	ended bool
}

// SetInt sets (or overwrites) an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Int, s.Attrs[i].IsStr = v, false
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Int: v})
}

// AddInt adds v to an integer attribute, creating it at v.
func (s *Span) AddInt(key string, v int64) {
	if s == nil {
		return
	}
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Int += v
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Int: v})
}

// SetStr sets (or overwrites) a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Str, s.Attrs[i].IsStr = v, true
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Str: v, IsStr: true})
}

// Int returns the integer attribute key, with ok=false when absent (or
// a string).
func (s *Span) Int(key string) (int64, bool) {
	for _, a := range s.Attrs {
		if a.Key == key && !a.IsStr {
			return a.Int, true
		}
	}
	return 0, false
}

// Str returns the string attribute key, with ok=false when absent.
func (s *Span) Str(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key && a.IsStr {
			return a.Str, true
		}
	}
	return "", false
}

// SelfTime is the span's duration minus its children's — the time the
// stage spent in its own code rather than delegating. Clamped at zero
// (children measured on other clocks can slightly overlap).
func (s *Span) SelfTime() time.Duration {
	d := s.Duration
	for _, c := range s.Children {
		d -= c.Duration
	}
	if d < 0 {
		return 0
	}
	return d
}

// Walk visits the span and every descendant in depth-first order.
func (s *Span) Walk(fn func(sp *Span, depth int)) { s.walk(fn, 0) }

func (s *Span) walk(fn func(sp *Span, depth int), depth int) {
	fn(s, depth)
	for _, c := range s.Children {
		c.walk(fn, depth+1)
	}
}

// Find returns the first span (depth-first) with the given name, nil
// when none matches. Test helper and EXPLAIN post-processing.
func (s *Span) Find(name string) *Span {
	var found *Span
	s.Walk(func(sp *Span, _ int) {
		if found == nil && sp.Name == name {
			found = sp
		}
	})
	return found
}

// FindAll returns every span (depth-first order) with the given name.
func (s *Span) FindAll(name string) []*Span {
	var out []*Span
	s.Walk(func(sp *Span, _ int) {
		if sp.Name == name {
			out = append(out, sp)
		}
	})
	return out
}

// Trace is one query's execution trace under construction: a span tree
// grown by Begin/End around a single origin timestamp (the monotonic
// clock Go embeds in time.Time). A Trace is single-goroutine — the
// query driver's — and must be Finish()ed before rendering.
type Trace struct {
	t0    time.Time
	root  *Span
	stack []*Span
}

// New starts a trace whose root span has the given name.
func New(name string) *Trace {
	t := &Trace{t0: time.Now()}
	t.root = &Span{Name: name}
	t.stack = append(t.stack, t.root)
	return t
}

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// Current returns the innermost open span (the root when nothing else
// is open).
func (t *Trace) Current() *Span { return t.stack[len(t.stack)-1] }

// Begin opens a child of the current span and makes it current.
func (t *Trace) Begin(name string) *Span {
	sp := &Span{Name: name, Start: time.Since(t.t0)}
	cur := t.Current()
	cur.Children = append(cur.Children, sp)
	t.stack = append(t.stack, sp)
	return sp
}

// End closes sp — and any descendants an early-exit path left open —
// restoring sp's parent as the current span. Ending a span that is not
// on the open stack is a no-op.
func (t *Trace) End(sp *Span) {
	at := -1
	for i := len(t.stack) - 1; i > 0; i-- {
		if t.stack[i] == sp {
			at = i
			break
		}
	}
	if at < 0 {
		return
	}
	now := time.Since(t.t0)
	for i := len(t.stack) - 1; i >= at; i-- {
		s := t.stack[i]
		if !s.ended {
			s.Duration = now - s.Start
			s.ended = true
		}
	}
	t.stack = t.stack[:at]
}

// Finish closes every open span including the root, fixing the trace's
// total duration. Idempotent.
func (t *Trace) Finish() {
	now := time.Since(t.t0)
	for i := len(t.stack) - 1; i >= 0; i-- {
		s := t.stack[i]
		if !s.ended {
			s.Duration = now - s.Start
			s.ended = true
		}
	}
	t.stack = t.stack[:1]
}

// SpanSelf pairs a span name with its self time, for top-N reports.
type SpanSelf struct {
	Name   string        `json:"name"`
	SelfMs float64       `json:"self_ms"`
	Self   time.Duration `json:"-"`
}

// TopSelf returns the n spans with the largest self time, largest
// first, ties broken by depth-first position (deterministic). The root
// span is included like any other.
func (t *Trace) TopSelf(n int) []SpanSelf {
	type ent struct {
		s    *Span
		self time.Duration
		pos  int
	}
	var all []ent
	t.root.Walk(func(sp *Span, _ int) {
		all = append(all, ent{s: sp, self: sp.SelfTime(), pos: len(all)})
	})
	sort.SliceStable(all, func(i, j int) bool { return all[i].self > all[j].self })
	if n > len(all) {
		n = len(all)
	}
	out := make([]SpanSelf, 0, n)
	for _, e := range all[:n] {
		out = append(out, SpanSelf{
			Name:   e.s.Name,
			Self:   e.self,
			SelfMs: float64(e.self) / float64(time.Millisecond),
		})
	}
	return out
}
