package obs

import (
	"bytes"
	"strconv"
)

// MetricsWriter renders metric families in the Prometheus text
// exposition format (version 0.0.4) without importing a client
// library: each family is a # HELP line, a # TYPE line, and one or
// more samples. Histograms take the server's non-cumulative bucket
// counts (one count per bound plus a final overflow bucket) and emit
// the cumulative le-labeled series the format requires, capped by the
// +Inf bucket, _sum, and _count.
type MetricsWriter struct {
	buf bytes.Buffer
}

// Label is one name="value" sample label.
type Label struct {
	Name, Value string
}

func (w *MetricsWriter) header(name, help, typ string) {
	w.buf.WriteString("# HELP ")
	w.buf.WriteString(name)
	w.buf.WriteByte(' ')
	w.buf.WriteString(escapeHelp(help))
	w.buf.WriteString("\n# TYPE ")
	w.buf.WriteString(name)
	w.buf.WriteByte(' ')
	w.buf.WriteString(typ)
	w.buf.WriteByte('\n')
}

func (w *MetricsWriter) sample(name string, labels []Label, v float64) {
	w.buf.WriteString(name)
	if len(labels) > 0 {
		w.buf.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.buf.WriteByte(',')
			}
			w.buf.WriteString(l.Name)
			w.buf.WriteString(`="`)
			w.buf.WriteString(escapeLabel(l.Value))
			w.buf.WriteByte('"')
		}
		w.buf.WriteByte('}')
	}
	w.buf.WriteByte(' ')
	w.buf.WriteString(formatValue(v))
	w.buf.WriteByte('\n')
}

// Counter emits one cumulative counter family with a single sample.
func (w *MetricsWriter) Counter(name, help string, v float64) {
	w.header(name, help, "counter")
	w.sample(name, nil, v)
}

// Gauge emits one gauge family with a single unlabeled sample.
func (w *MetricsWriter) Gauge(name, help string, v float64) {
	w.header(name, help, "gauge")
	w.sample(name, nil, v)
}

// GaugeL emits one gauge family with a single labeled sample (the
// build-info idiom: constant 1 with the facts in labels).
func (w *MetricsWriter) GaugeL(name, help string, labels []Label, v float64) {
	w.header(name, help, "gauge")
	w.sample(name, labels, v)
}

// Sample is one labeled observation of a multi-sample family.
type Sample struct {
	Labels []Label
	Value  float64
}

// CounterVec emits one counter family with a sample per label set —
// the per-shape and per-replica workload series. An empty sample list
// emits the header only, which the format permits.
func (w *MetricsWriter) CounterVec(name, help string, samples []Sample) {
	w.header(name, help, "counter")
	for _, s := range samples {
		w.sample(name, s.Labels, s.Value)
	}
}

// GaugeVec emits one gauge family with a sample per label set (e.g.
// per-replica breaker state and health score).
func (w *MetricsWriter) GaugeVec(name, help string, samples []Sample) {
	w.header(name, help, "gauge")
	for _, s := range samples {
		w.sample(name, s.Labels, s.Value)
	}
}

// Histogram emits one histogram family. uppers are the bucket upper
// bounds; counts has len(uppers)+1 entries — the count observed in
// each bound's bucket plus the final overflow bucket — and sum is the
// total of all observations (in the same unit as the bounds). The
// emitted _bucket series is cumulative, as the format requires.
func (w *MetricsWriter) Histogram(name, help string, uppers []float64, counts []uint64, sum float64) {
	w.header(name, help, "histogram")
	cum := uint64(0)
	for i, ub := range uppers {
		if i < len(counts) {
			cum += counts[i]
		}
		w.sample(name+"_bucket", []Label{{"le", formatValue(ub)}}, float64(cum))
	}
	if len(counts) > len(uppers) {
		cum += counts[len(uppers)]
	}
	w.sample(name+"_bucket", []Label{{"le", "+Inf"}}, float64(cum))
	w.sample(name+"_sum", nil, sum)
	w.sample(name+"_count", nil, float64(cum))
}

// Bytes returns the rendered exposition body.
func (w *MetricsWriter) Bytes() []byte { return w.buf.Bytes() }

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trip float ("1", "2.5", "1e+06").
func formatValue(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// escapeLabel escapes a label value: backslash, quote, newline.
func escapeLabel(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
