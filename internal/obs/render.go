package obs

import (
	"strconv"
	"strings"
	"time"
)

// The two EXPLAIN ANALYZE renderings of a finished trace: a JSON
// document for programmatic consumers and an indented text tree for
// humans. Both are hand-rolled over the ordered Attr slices so two
// identical runs render byte-identical output (encoding/json over a
// map would shuffle attribute keys).

// JSON renders the trace as a JSON document:
//
//	{"name":...,"start_us":...,"duration_us":...,"self_us":...,
//	 "attrs":{...},"children":[...]}
func (t *Trace) JSON() []byte {
	buf := make([]byte, 0, 1024)
	return appendSpanJSON(buf, t.root)
}

func appendSpanJSON(buf []byte, s *Span) []byte {
	buf = append(buf, `{"name":`...)
	buf = appendJSONString(buf, s.Name)
	buf = append(buf, `,"start_us":`...)
	buf = strconv.AppendInt(buf, s.Start.Microseconds(), 10)
	buf = append(buf, `,"duration_us":`...)
	buf = strconv.AppendInt(buf, s.Duration.Microseconds(), 10)
	buf = append(buf, `,"self_us":`...)
	buf = strconv.AppendInt(buf, s.SelfTime().Microseconds(), 10)
	if len(s.Attrs) > 0 {
		buf = append(buf, `,"attrs":{`...)
		for i, a := range s.Attrs {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONString(buf, a.Key)
			buf = append(buf, ':')
			if a.IsStr {
				buf = appendJSONString(buf, a.Str)
			} else {
				buf = strconv.AppendInt(buf, a.Int, 10)
			}
		}
		buf = append(buf, '}')
	}
	if len(s.Children) > 0 {
		buf = append(buf, `,"children":[`...)
		for i, c := range s.Children {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = appendSpanJSON(buf, c)
		}
		buf = append(buf, ']')
	}
	return append(buf, '}')
}

// appendJSONString appends s as a JSON string literal. UTF-8 passes
// through unescaped, which JSON allows.
func appendJSONString(buf []byte, s string) []byte {
	const hex = "0123456789abcdef"
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			buf = append(buf, '\\', '"')
		case c == '\\':
			buf = append(buf, '\\', '\\')
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\r':
			buf = append(buf, '\\', 'r')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c < 0x20:
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

// Text renders the trace as an indented tree, one span per line:
//
//	query                              12.345ms
//	  bgp                               5.002ms patterns=2 join_order=1,0
//	    seed_scan                       2.000ms est=100 rows=100
func (t *Trace) Text() string {
	var b strings.Builder
	t.root.Walk(func(sp *Span, depth int) {
		name := strings.Repeat("  ", depth) + sp.Name
		b.WriteString(name)
		if pad := 34 - len(name); pad > 0 {
			b.WriteString(strings.Repeat(" ", pad))
		} else {
			b.WriteByte(' ')
		}
		b.WriteString(formatMs(sp.Duration))
		for _, a := range sp.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Key)
			b.WriteByte('=')
			if a.IsStr {
				b.WriteString(a.Str)
			} else {
				b.WriteString(strconv.FormatInt(a.Int, 10))
			}
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// formatMs renders a duration as right-aligned milliseconds with
// microsecond precision ("   12.345ms").
func formatMs(d time.Duration) string {
	ms := strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
	if pad := 9 - len(ms); pad > 0 {
		ms = strings.Repeat(" ", pad) + ms
	}
	return ms + "ms"
}
