package obs

import (
	"sync"
	"time"
)

// TraceRing retains the span trees of recently traced requests in a
// fixed-size ring: the newest trace overwrites the oldest once the
// ring is full, so retention cost is bounded no matter how long the
// server runs. It backs GET /debug/queries — the in-process analogue
// of a tracing backend's "recent traces" page — and holds whatever
// tracing armed: sampled requests, slow-query captures, and explicit
// EXPLAIN ANALYZE runs.
//
// Traces are retained after Finish, when the driving goroutine is done
// mutating the span tree, so concurrent readers need no locking beyond
// the ring's own mutex.
type TraceRing struct {
	mu    sync.Mutex
	slots []RetainedTrace
	next  int
	n     int
	seq   uint64
}

// RetainedTrace is one completed request's trace plus the request
// metadata needed to find it again.
type RetainedTrace struct {
	RequestID   string    `json:"request_id"`
	Fingerprint string    `json:"fingerprint,omitempty"`
	Query       string    `json:"query,omitempty"`
	Route       string    `json:"route,omitempty"`
	Reason      string    `json:"reason"` // sampled | slow | explain
	DurationMs  float64   `json:"duration_ms"`
	Status      int       `json:"status"`
	When        time.Time `json:"when"`
	Trace       *Trace    `json:"-"`

	seq uint64 // retention order, newest highest
}

// NewTraceRing builds a ring retaining up to capacity traces
// (non-positive defaults to 64).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = 64
	}
	return &TraceRing{slots: make([]RetainedTrace, capacity)}
}

// Add retains one completed trace, evicting the oldest when full.
func (r *TraceRing) Add(t RetainedTrace) {
	if t.Query != "" {
		t.Query = truncate(t.Query, 400)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	t.seq = r.seq
	r.slots[r.next] = t
	r.next = (r.next + 1) % len(r.slots)
	if r.n < len(r.slots) {
		r.n++
	}
}

// List returns the retained traces newest-first. The Trace pointers
// are shared with the ring; callers must treat the span trees as
// read-only (they are immutable after Finish).
func (r *TraceRing) List() []RetainedTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RetainedTrace, 0, r.n)
	for i := 0; i < r.n; i++ {
		// Walk backwards from the slot before next (the newest).
		idx := (r.next - 1 - i + 2*len(r.slots)) % len(r.slots)
		out = append(out, r.slots[idx])
	}
	return out
}

// Get returns the retained trace for a request id. When the same id
// was retained more than once, the newest wins.
func (r *TraceRing) Get(requestID string) (RetainedTrace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best RetainedTrace
	found := false
	for i := 0; i < r.n; i++ {
		if r.slots[i].RequestID == requestID && (!found || r.slots[i].seq > best.seq) {
			best = r.slots[i]
			found = true
		}
	}
	return best, found
}

// Len returns the number of traces currently retained.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Cap returns the ring capacity.
func (r *TraceRing) Cap() int { return len(r.slots) }
