package obs

import (
	"hash/fnv"
	"io"
	"strconv"
	"sync"
	"time"
)

// SlowQueryEntry is one slow-query log record. The query text itself
// is never logged — only its FNV-64a hash, so the log stays
// size-bounded and query text (which may embed data) stays out of log
// pipelines; the hash still correlates recurrences of the same query.
type SlowQueryEntry struct {
	RequestID string
	QueryHash string
	// PlanFingerprint is the normalized query-shape hash
	// (sparql.FingerprintQuery); it joins slow entries against the
	// workload shape registry, where QueryHash identifies only the
	// exact text.
	PlanFingerprint string
	Route           string
	Shards          int
	ShardsTouched   int
	DurationMs      float64
	// Hedges and Speculations count tail-latency recovery actions
	// (hedged shard operations launched and speculative morsel
	// re-executions) taken while serving this query; a nonzero value
	// flags a straggler as the likely cause of the slow entry.
	Hedges       int64
	Speculations int64
	TopSpans     []SpanSelf
}

// SlowQueryLogger writes slow-query records as JSON lines to one
// writer. It is safe for concurrent use: each record is rendered to a
// private buffer and written under a mutex, so lines never interleave.
type SlowQueryLogger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSlowQueryLogger wraps w (typically a log file or stderr).
func NewSlowQueryLogger(w io.Writer) *SlowQueryLogger {
	return &SlowQueryLogger{w: w}
}

// QueryHash returns the FNV-64a hash of a query text as fixed-width
// hex — the log's stand-in for the text itself.
func QueryHash(text string) string {
	h := fnv.New64a()
	io.WriteString(h, text)
	const hex = "0123456789abcdef"
	sum := h.Sum64()
	out := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		out[i] = hex[sum&0xf]
		sum >>= 4
	}
	return string(out)
}

// Log writes one record as a single JSON line.
func (l *SlowQueryLogger) Log(e SlowQueryEntry) error {
	buf := make([]byte, 0, 256)
	buf = append(buf, `{"ts":`...)
	buf = appendJSONString(buf, time.Now().UTC().Format(time.RFC3339Nano))
	buf = append(buf, `,"request_id":`...)
	buf = appendJSONString(buf, e.RequestID)
	buf = append(buf, `,"query_hash":`...)
	buf = appendJSONString(buf, e.QueryHash)
	buf = append(buf, `,"plan_fingerprint":`...)
	buf = appendJSONString(buf, e.PlanFingerprint)
	buf = append(buf, `,"route":`...)
	buf = appendJSONString(buf, e.Route)
	buf = append(buf, `,"shards":`...)
	buf = strconv.AppendInt(buf, int64(e.Shards), 10)
	buf = append(buf, `,"shards_touched":`...)
	buf = strconv.AppendInt(buf, int64(e.ShardsTouched), 10)
	buf = append(buf, `,"duration_ms":`...)
	buf = strconv.AppendFloat(buf, e.DurationMs, 'f', 3, 64)
	buf = append(buf, `,"hedges":`...)
	buf = strconv.AppendInt(buf, e.Hedges, 10)
	buf = append(buf, `,"speculations":`...)
	buf = strconv.AppendInt(buf, e.Speculations, 10)
	buf = append(buf, `,"top_spans":[`...)
	for i, sp := range e.TopSpans {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"name":`...)
		buf = appendJSONString(buf, sp.Name)
		buf = append(buf, `,"self_ms":`...)
		buf = strconv.AppendFloat(buf, sp.SelfMs, 'f', 3, 64)
		buf = append(buf, '}')
	}
	buf = append(buf, ']', '}', '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.w.Write(buf)
	return err
}
