package server

import (
	"net/http"
	"runtime"
	"time"

	"repro/internal/obs"
)

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (version 0.0.4): everything /stats tracks — query outcomes,
// plan cache, morsel execution, sharding, faults, resource governance —
// plus the per-stage latency histograms and a build-info gauge, all
// rendered by obs.MetricsWriter without a client library. Families are
// prefixed rdf_; cumulative counters end in _total.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	mw := &obs.MetricsWriter{}

	served, failed, timeouts, rejected, _, _ := s.m.snapshot()
	mw.Counter("rdf_queries_served_total", "Queries answered successfully.", float64(served))
	mw.Counter("rdf_queries_failed_total", "Queries failed (parse or evaluation errors).", float64(failed))
	mw.Counter("rdf_query_timeouts_total", "Queries lost to deadlines or departed clients.", float64(timeouts))
	mw.Counter("rdf_queries_rejected_total", "Queries rejected by admission control.", float64(rejected))
	mw.Gauge("rdf_in_flight_queries", "Queries evaluating right now.", float64(s.m.inFlight.Load()))
	mw.Gauge("rdf_max_concurrent_queries", "Configured evaluation concurrency bound.", float64(s.cfg.MaxConcurrent))

	total, exec, serialize := s.m.histograms()
	mw.Histogram("rdf_query_duration_ms",
		"End-to-end latency of served queries (arrival to response complete), milliseconds.",
		latencyBucketsMs, total.buckets, total.totalSecs*1000)
	mw.Histogram("rdf_query_exec_ms",
		"Evaluation time of served queries, milliseconds.",
		latencyBucketsMs, exec.buckets, exec.totalSecs*1000)
	mw.Histogram("rdf_query_serialize_ms",
		"Response serialization time of served queries, milliseconds.",
		latencyBucketsMs, serialize.buckets, serialize.totalSecs*1000)

	hits, misses, size := s.cache.stats()
	mw.Counter("rdf_plan_cache_hits_total", "Prepared-plan cache hits.", float64(hits))
	mw.Counter("rdf_plan_cache_misses_total", "Prepared-plan cache misses.", float64(misses))
	mw.Gauge("rdf_plan_cache_entries", "Prepared plans cached right now.", float64(size))

	parallelQueries, parallelOps, morsels := s.m.execSnapshot()
	mw.Counter("rdf_parallel_queries_total", "Queries that split work into morsels.", float64(parallelQueries))
	mw.Counter("rdf_parallel_ops_total", "Parallel scans and probes executed.", float64(parallelOps))
	mw.Counter("rdf_morsels_dispatched_total", "Morsels dispatched to worker pools.", float64(morsels))

	res := s.m.resources()
	mw.Counter("rdf_shed_queries_total", "Queries shed immediately by admission control.", float64(res.shedQueries))
	mw.Counter("rdf_degraded_queries_total", "Queries admitted at reduced parallelism.", float64(res.degradedQueries))
	mw.Counter("rdf_budget_aborts_total", "Queries aborted by their memory budget.", float64(res.budgetAborts))
	mw.Counter("rdf_bytes_charged_total", "Bytes charged against per-query memory budgets.", float64(res.bytesCharged))
	mw.Gauge("rdf_peak_query_bytes", "Largest single query's budget charge.", float64(res.peakQueryBytes))

	fa := s.m.faults()
	mw.Counter("rdf_replica_attempts_total", "Shard replica execution attempts.", float64(fa.attempts))
	mw.Counter("rdf_replica_retries_total", "Retried replica attempts.", float64(fa.retries))
	mw.Counter("rdf_replica_failovers_total", "Failovers to another replica.", float64(fa.failovers))
	mw.Counter("rdf_hedges_total", "Hedged shard operations launched against a second replica.", float64(fa.hedges))
	mw.Counter("rdf_hedge_wins_total", "Hedged shard operations where the hedge finished first.", float64(fa.hedgeWins))
	mw.Counter("rdf_speculations_total", "Speculative morsel re-executions launched.", float64(fa.speculations))
	mw.Counter("rdf_speculation_wins_total", "Speculative morsel re-executions that finished first.", float64(fa.speculationWins))
	mw.Counter("rdf_recovered_panics_total", "Panics recovered in the engine and HTTP middleware.",
		float64(fa.enginePanics+fa.handlerPanics))
	mw.Counter("rdf_partial_failures_total", "Queries lost to total shard failure.", float64(fa.partialFailures))
	mw.Counter("rdf_oversize_results_total", "Queries aborted by the result-size guard.", float64(fa.oversizeAborts))

	if s.shards != nil {
		mw.Gauge("rdf_shards", "Shards in the sharded backend.", float64(s.shards.NumShards()))
		mw.Gauge("rdf_shard_replicas", "Replicas per shard.", float64(s.shards.Replicas()))
		pushdown, scatter, touched, pruned := s.m.shardSnapshot()
		mw.Counter("rdf_pushdown_queries_total", "Queries routed whole to subject-co-located shards.", float64(pushdown))
		mw.Counter("rdf_scatter_queries_total", "Queries routed scatter-gather.", float64(scatter))
		mw.Counter("rdf_shards_touched_total", "Shards scanned across all queries.", float64(touched))
		mw.Counter("rdf_shards_pruned_total", "Shard scans skipped by pruning.", float64(pruned))
	}

	mw.Gauge("rdf_uptime_seconds", "Seconds since the server started.", time.Since(s.started).Seconds())
	mw.GaugeL("rdf_build_info", "Build information; constant 1.",
		[]obs.Label{{Name: "go_version", Value: runtime.Version()}}, 1)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(mw.Bytes())
}
