package server

import (
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/obs"
)

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (version 0.0.4): everything /stats tracks — query outcomes,
// plan cache, morsel execution, sharding, faults, resource governance —
// plus the per-stage latency histograms and a build-info gauge, all
// rendered by obs.MetricsWriter without a client library. Families are
// prefixed rdf_; cumulative counters end in _total.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	mw := &obs.MetricsWriter{}

	served, failed, timeouts, rejected, _, _ := s.m.snapshot()
	mw.Counter("rdf_queries_served_total", "Queries answered successfully.", float64(served))
	mw.Counter("rdf_queries_failed_total", "Queries failed (parse or evaluation errors).", float64(failed))
	mw.Counter("rdf_query_timeouts_total", "Queries lost to deadlines or departed clients.", float64(timeouts))
	mw.Counter("rdf_queries_rejected_total", "Queries rejected by admission control.", float64(rejected))
	mw.Gauge("rdf_in_flight_queries", "Queries evaluating right now.", float64(s.m.inFlight.Load()))
	mw.Gauge("rdf_max_concurrent_queries", "Configured evaluation concurrency bound.", float64(s.cfg.MaxConcurrent))

	total, exec, serialize := s.m.histograms()
	mw.Histogram("rdf_query_duration_ms",
		"End-to-end latency of served queries (arrival to response complete), milliseconds.",
		latencyBucketsMs, total.buckets, total.totalSecs*1000)
	mw.Histogram("rdf_query_exec_ms",
		"Evaluation time of served queries, milliseconds.",
		latencyBucketsMs, exec.buckets, exec.totalSecs*1000)
	mw.Histogram("rdf_query_serialize_ms",
		"Response serialization time of served queries, milliseconds.",
		latencyBucketsMs, serialize.buckets, serialize.totalSecs*1000)

	hits, misses, size := s.cache.stats()
	mw.Counter("rdf_plan_cache_hits_total", "Prepared-plan cache hits.", float64(hits))
	mw.Counter("rdf_plan_cache_misses_total", "Prepared-plan cache misses.", float64(misses))
	mw.Gauge("rdf_plan_cache_entries", "Prepared plans cached right now.", float64(size))

	parallelQueries, parallelOps, morsels := s.m.execSnapshot()
	mw.Counter("rdf_parallel_queries_total", "Queries that split work into morsels.", float64(parallelQueries))
	mw.Counter("rdf_parallel_ops_total", "Parallel scans and probes executed.", float64(parallelOps))
	mw.Counter("rdf_morsels_dispatched_total", "Morsels dispatched to worker pools.", float64(morsels))

	res := s.m.resources()
	mw.Counter("rdf_shed_queries_total", "Queries shed immediately by admission control.", float64(res.shedQueries))
	mw.Counter("rdf_degraded_queries_total", "Queries admitted at reduced parallelism.", float64(res.degradedQueries))
	mw.Counter("rdf_budget_aborts_total", "Queries aborted by their memory budget.", float64(res.budgetAborts))
	mw.Counter("rdf_bytes_charged_total", "Bytes charged against per-query memory budgets.", float64(res.bytesCharged))
	mw.Gauge("rdf_peak_query_bytes", "Largest single query's budget charge.", float64(res.peakQueryBytes))

	fa := s.m.faults()
	mw.Counter("rdf_replica_attempts_total", "Shard replica execution attempts.", float64(fa.attempts))
	mw.Counter("rdf_replica_retries_total", "Retried replica attempts.", float64(fa.retries))
	mw.Counter("rdf_replica_failovers_total", "Failovers to another replica.", float64(fa.failovers))
	mw.Counter("rdf_hedges_total", "Hedged shard operations launched against a second replica.", float64(fa.hedges))
	mw.Counter("rdf_hedge_wins_total", "Hedged shard operations where the hedge finished first.", float64(fa.hedgeWins))
	mw.Counter("rdf_speculations_total", "Speculative morsel re-executions launched.", float64(fa.speculations))
	mw.Counter("rdf_speculation_wins_total", "Speculative morsel re-executions that finished first.", float64(fa.speculationWins))
	mw.Counter("rdf_recovered_panics_total", "Panics recovered in the engine and HTTP middleware.",
		float64(fa.enginePanics+fa.handlerPanics))
	mw.Counter("rdf_partial_failures_total", "Queries lost to total shard failure.", float64(fa.partialFailures))
	mw.Counter("rdf_oversize_results_total", "Queries aborted by the result-size guard.", float64(fa.oversizeAborts))

	if s.shards != nil {
		mw.Gauge("rdf_shards", "Shards in the sharded backend.", float64(s.shards.NumShards()))
		mw.Gauge("rdf_shard_replicas", "Replicas per shard.", float64(s.shards.Replicas()))
		pushdown, scatter, touched, pruned := s.m.shardSnapshot()
		mw.Counter("rdf_pushdown_queries_total", "Queries routed whole to subject-co-located shards.", float64(pushdown))
		mw.Counter("rdf_scatter_queries_total", "Queries routed scatter-gather.", float64(scatter))
		mw.Counter("rdf_shards_touched_total", "Shards scanned across all queries.", float64(touched))
		mw.Counter("rdf_shards_pruned_total", "Shard scans skipped by pruning.", float64(pruned))
		s.writeReplicaMetrics(mw)
	}
	s.writeShapeMetrics(mw)

	mw.Gauge("rdf_uptime_seconds", "Seconds since the server started.", time.Since(s.started).Seconds())
	mw.GaugeL("rdf_build_info", "Build information; constant 1.",
		[]obs.Label{{Name: "go_version", Value: runtime.Version()}}, 1)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(mw.Bytes())
}

// writeReplicaMetrics renders per-replica health as labeled series:
// breaker state (0 closed, 1 half-open, 2 open), consecutive failures,
// trips, latency EWMA, and decayed error rate, each labeled
// {shard,replica}. Until this PR replica health was visible only in
// /stats JSON — a metrics scraper could not alert on a stuck breaker.
func (s *Server) writeReplicaMetrics(mw *obs.MetricsWriter) {
	h := s.shards.Set().Health
	if h == nil {
		return
	}
	infos := h.Snapshot()
	if len(infos) == 0 {
		return
	}
	state := make([]obs.Sample, 0, len(infos))
	consec := make([]obs.Sample, 0, len(infos))
	trips := make([]obs.Sample, 0, len(infos))
	ewma := make([]obs.Sample, 0, len(infos))
	errRate := make([]obs.Sample, 0, len(infos))
	for _, bi := range infos {
		labels := []obs.Label{
			{Name: "shard", Value: strconv.Itoa(bi.Shard)},
			{Name: "replica", Value: strconv.Itoa(bi.Replica)},
		}
		sv := 0.0
		switch bi.State {
		case "half-open":
			sv = 1
		case "open":
			sv = 2
		}
		state = append(state, obs.Sample{Labels: labels, Value: sv})
		consec = append(consec, obs.Sample{Labels: labels, Value: float64(bi.ConsecutiveFailures)})
		trips = append(trips, obs.Sample{Labels: labels, Value: float64(bi.Trips)})
		ewma = append(ewma, obs.Sample{Labels: labels, Value: bi.LatencyEwmaMs})
		errRate = append(errRate, obs.Sample{Labels: labels, Value: bi.ErrorRate})
	}
	mw.GaugeVec("rdf_replica_breaker_state", "Replica circuit-breaker state: 0 closed, 1 half-open, 2 open.", state)
	mw.GaugeVec("rdf_replica_consecutive_failures", "Consecutive failures recorded against the replica.", consec)
	mw.CounterVec("rdf_replica_breaker_trips_total", "Times the replica's breaker tripped open.", trips)
	mw.GaugeVec("rdf_replica_latency_ewma_ms", "Replica successful-attempt latency EWMA, milliseconds (0 unsampled).", ewma)
	mw.GaugeVec("rdf_replica_error_rate", "Replica decayed failure rate in [0, 1].", errRate)
}

// shapeMetricsTopK bounds the per-shape labeled series on /metrics to
// the heavy hitters; the full registry stays available at
// /debug/shapes. Without the bound a high-cardinality workload would
// bloat every scrape.
const shapeMetricsTopK = 20

// writeShapeMetrics renders the plan-fingerprint registry's heavy
// hitters as labeled series keyed {fingerprint,class}.
func (s *Server) writeShapeMetrics(mw *obs.MetricsWriter) {
	mw.Gauge("rdf_shapes_tracked", "Distinct query shapes currently retained in the fingerprint registry.", float64(s.shapes.Len()))
	mw.Counter("rdf_shape_evictions_total", "Query shapes evicted by the registry's LRU bound.", float64(s.shapes.Evictions()))
	mw.Counter("rdf_sampled_traces_total", "Requests picked by the 1-in-N trace sampler.", float64(s.m.sampledSnapshot()))
	mw.Gauge("rdf_trace_ring_entries", "Completed traces retained for /debug/queries.", float64(s.ring.Len()))
	top := s.shapes.TopK(shapeMetricsTopK)
	if len(top) == 0 {
		return
	}
	queries := make([]obs.Sample, 0, len(top))
	errs := make([]obs.Sample, 0, len(top))
	hits := make([]obs.Sample, 0, len(top))
	p95 := make([]obs.Sample, 0, len(top))
	for _, st := range top {
		labels := []obs.Label{
			{Name: "fingerprint", Value: st.Fingerprint},
			{Name: "class", Value: st.Class},
		}
		queries = append(queries, obs.Sample{Labels: labels, Value: float64(st.Count)})
		errs = append(errs, obs.Sample{Labels: labels, Value: float64(st.Errors)})
		hits = append(hits, obs.Sample{Labels: labels, Value: float64(st.CacheHits)})
		p95 = append(p95, obs.Sample{Labels: labels, Value: st.LatencyP95Ms})
	}
	mw.CounterVec("rdf_shape_queries_total", "Requests observed per query shape (top shapes by count).", queries)
	mw.CounterVec("rdf_shape_errors_total", "Failed requests per query shape (top shapes by count).", errs)
	mw.CounterVec("rdf_shape_cache_hits_total", "Plan-cache hits per query shape (top shapes by count).", hits)
	mw.GaugeVec("rdf_shape_latency_p95_ms", "Estimated p95 end-to-end latency per query shape, milliseconds.", p95)
}
