package server

import "sync/atomic"

// Cost-aware admission control. The admission semaphore (Server.sem)
// bounds how many queries evaluate at once; this controller governs
// the queue in front of it. Instead of letting every excess query camp
// on the semaphore until its deadline — burning the client's budget on
// a wait that cannot succeed — the controller watches the queue depth
// and walks a degradation ladder:
//
//  1. Lightly backed up (depth > degradeAt): admitted queries run at
//     half parallelism, freeing morsel workers for the queue to drain.
//     Expensive queries (planner cost estimate over the shed
//     threshold) drop straight to serial.
//  2. Heavily backed up (depth > floorAt): every admitted query runs
//     serial, and expensive queries are shed outright — an immediate
//     503, no deadline burn.
//  3. Full (depth > maxQueue): everything is shed immediately.
//
// Degraded queries return byte-identical results (parallelism never
// changes output); shed queries fail fast so the client can back off
// or retry against a replica. The depth gauge counts queries between
// arrival and semaphore acquisition, so it is zero whenever the worker
// pool keeps up and the whole ladder costs one atomic add per request.
type admission struct {
	// maxQueue is the shed-everything bound on the waiting count.
	maxQueue int
	// degradeAt is where the ladder starts: above it, admitted queries
	// lose half their parallelism and expensive ones go serial.
	degradeAt int
	// floorAt is the heavy-overload rung: above it every admitted
	// query runs serial and expensive queries are shed.
	floorAt int

	// waiting counts queries that arrived but have not yet acquired
	// the admission semaphore (includes the one currently deciding).
	waiting atomic.Int64
}

// newAdmission sizes the ladder from the queue bound: degradation
// starts at a quarter of the queue, the serial floor at half.
func newAdmission(maxQueue int) *admission {
	a := &admission{maxQueue: maxQueue}
	a.degradeAt = maxQueue / 4
	if a.degradeAt < 1 {
		a.degradeAt = 1
	}
	a.floorAt = maxQueue / 2
	if a.floorAt < 2 {
		a.floorAt = 2
	}
	return a
}

// decide maps one arriving query's position to an admission verdict:
// shed it, or admit it at newPar ≤ par workers. depth is the waiting
// count including this query; expensive marks a planner cost estimate
// over the server's shed threshold.
func (a *admission) decide(depth int, expensive bool, par int) (shed bool, newPar int) {
	if depth > a.maxQueue {
		return true, 0
	}
	if expensive && depth > a.floorAt {
		return true, 0
	}
	switch {
	case depth > a.floorAt:
		return false, 1
	case depth > a.degradeAt:
		if expensive {
			return false, 1
		}
		half := par / 2
		if half < 1 {
			half = 1
		}
		return false, half
	}
	return false, par
}
