package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/shard"
	"repro/internal/sparql"
)

// Workload-observatory tests: sampled tracing stays invisible in
// responses, the trace ring and shape registry surface over
// /debug/*, and /metrics carries the labeled replica and shape
// series.

// workloadQueries is a small mixed workload: a star join with
// modifiers, a point lookup, and an ASK.
var workloadQueries = []string{
	`SELECT ?s ?n ?a WHERE { ?s <http://ex/name> ?n . ?s <http://ex/age> ?a } ORDER BY ?s LIMIT 7`,
	`SELECT ?n WHERE { <http://ex/s3> <http://ex/name> ?n }`,
	`ASK { ?s <http://ex/age> ?a . FILTER(?a > 21) }`,
}

// TestSampledResponseByteIdentical pins the observe-don't-steer
// contract end to end: a server sampling every request answers
// byte-for-byte what an unsampled server answers, across parallelism
// widths and sharding. Run under -race this also exercises the trace
// plumbing for data races.
func TestSampledResponseByteIdentical(t *testing.T) {
	for _, par := range []int{1, 4} {
		for _, shards := range []int{0, 3} {
			t.Run(fmt.Sprintf("par%d_shards%d", par, shards), func(t *testing.T) {
				base := Config{QueryParallelism: par}
				sampled := Config{QueryParallelism: par, TraceSampleRate: 1}
				var plain, traced *Server
				if shards == 0 {
					plain = New(testGraph(), base)
					traced = New(testGraph(), sampled)
				} else {
					sg, err := shard.BuildByName(testGraph().Triples(), "hash-subject", shards)
					if err != nil {
						t.Fatal(err)
					}
					sg2, err := shard.BuildByName(testGraph().Triples(), "hash-subject", shards)
					if err != nil {
						t.Fatal(err)
					}
					plain = NewSharded(sg, base)
					traced = NewSharded(sg2, sampled)
				}
				for _, q := range workloadQueries {
					want := getQuery(t, plain, q, "", nil)
					got := getQuery(t, traced, q, "", nil)
					if want.Code != http.StatusOK || got.Code != http.StatusOK {
						t.Fatalf("status %d vs %d for %s", want.Code, got.Code, q)
					}
					if want.Body.String() != got.Body.String() {
						t.Fatalf("sampled response differs for %s:\nplain   %s\nsampled %s",
							q, want.Body.String(), got.Body.String())
					}
				}
				if traced.ring.Len() != len(workloadQueries) {
					t.Fatalf("ring retained %d traces, want %d", traced.ring.Len(), len(workloadQueries))
				}
				if plain.ring.Len() != 0 {
					t.Fatalf("unsampled server retained %d traces", plain.ring.Len())
				}
			})
		}
	}
}

// TestDebugQueriesEndpoints pins the retained-trace browser: the index
// lists retentions newest-first, a request id resolves to its span
// tree as JSON or text, and unknown ids 404.
func TestDebugQueriesEndpoints(t *testing.T) {
	s := New(testGraph(), Config{TraceSampleRate: 1})
	q := workloadQueries[0]
	if rec := getQuery(t, s, q, "", map[string]string{"X-Request-ID": "wl-1"}); rec.Code != http.StatusOK {
		t.Fatalf("query status %d", rec.Code)
	}

	// Index.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/queries", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("index status %d", rec.Code)
	}
	var idx struct {
		Capacity int `json:"capacity"`
		Retained int `json:"retained"`
		Traces   []struct {
			RequestID   string  `json:"request_id"`
			Fingerprint string  `json:"fingerprint"`
			Reason      string  `json:"reason"`
			DurationMs  float64 `json:"duration_ms"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &idx); err != nil {
		t.Fatalf("index does not parse: %v\n%s", err, rec.Body.String())
	}
	if idx.Retained != 1 || len(idx.Traces) != 1 {
		t.Fatalf("retained %d, traces %d", idx.Retained, len(idx.Traces))
	}
	tr0 := idx.Traces[0]
	if tr0.RequestID != "wl-1" || tr0.Reason != "sampled" {
		t.Fatalf("index entry %+v", tr0)
	}
	prep, err := sparql.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr0.Fingerprint != prep.Fingerprint() {
		t.Fatalf("fingerprint %q, want %q", tr0.Fingerprint, prep.Fingerprint())
	}

	// Per-id JSON carries the span tree.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/queries/wl-1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("per-id status %d: %s", rec.Code, rec.Body.String())
	}
	var one struct {
		RequestID string   `json:"request_id"`
		Reason    string   `json:"reason"`
		Trace     jsonSpan `json:"trace"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil {
		t.Fatalf("per-id does not parse: %v\n%s", err, rec.Body.String())
	}
	if one.RequestID != "wl-1" || one.Trace.Name != "query" {
		t.Fatalf("per-id body %+v", one)
	}
	if one.Trace.find("seed_scan") == nil {
		t.Fatal("retained trace lost its seed_scan span")
	}

	// format=text renders the indented tree.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/queries/wl-1?format=text", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text content type %q", ct)
	}
	if body := rec.Body.String(); !strings.HasPrefix(body, "query") {
		t.Fatalf("text rendering:\n%s", body)
	}

	// Unknown ids 404.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/queries/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id status %d", rec.Code)
	}
}

// TestDebugShapesFoldsWorkload pins the registry cardinality contract
// over HTTP: many distinct query texts of one shape fold into one
// registry entry, visible at /debug/shapes.
func TestDebugShapesFoldsWorkload(t *testing.T) {
	s := New(testGraph(), Config{})
	const n = 200
	for i := 0; i < n; i++ {
		q := fmt.Sprintf(`SELECT ?s WHERE { ?s <http://ex/name> "n%d" } LIMIT %d`, i%64, i+1)
		if rec := getQuery(t, s, q, "", nil); rec.Code != http.StatusOK {
			t.Fatalf("query %d status %d", i, rec.Code)
		}
	}
	if got := s.shapes.Len(); got != 1 {
		t.Fatalf("registry tracks %d shapes, want 1", got)
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/shapes", nil))
	var doc struct {
		Tracked  int `json:"tracked"`
		Capacity int `json:"capacity"`
		Shapes   []struct {
			Fingerprint string         `json:"fingerprint"`
			Class       string         `json:"class"`
			Count       uint64         `json:"count"`
			Routes      map[string]int `json:"routes"`
		} `json:"shapes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/shapes does not parse: %v\n%s", err, rec.Body.String())
	}
	if doc.Tracked != 1 || len(doc.Shapes) != 1 {
		t.Fatalf("tracked %d, shapes %d", doc.Tracked, len(doc.Shapes))
	}
	sh := doc.Shapes[0]
	if sh.Count != n {
		t.Fatalf("count %d, want %d", sh.Count, n)
	}
	if sh.Routes["local"] != n {
		t.Fatalf("routes %v", sh.Routes)
	}
	prep, err := sparql.Prepare(`SELECT ?s WHERE { ?s <http://ex/name> "x" } LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Fingerprint != prep.Fingerprint() {
		t.Fatalf("fingerprint %q, want %q", sh.Fingerprint, prep.Fingerprint())
	}
}

// TestShapeRegistryBoundedHTTP pins the LRU bound over HTTP: more
// distinct shapes than MaxShapes never grow the registry past the cap.
func TestShapeRegistryBoundedHTTP(t *testing.T) {
	s := New(testGraph(), Config{MaxShapes: 4})
	for i := 0; i < 12; i++ {
		// Distinct predicate IRIs are distinct structure.
		q := fmt.Sprintf(`SELECT ?s WHERE { ?s <http://ex/p%d> ?o }`, i)
		if rec := getQuery(t, s, q, "", nil); rec.Code != http.StatusOK {
			t.Fatalf("query %d status %d: %s", i, rec.Code, rec.Body.String())
		}
		if got := s.shapes.Len(); got > 4 {
			t.Fatalf("registry grew to %d > cap 4", got)
		}
	}
	if got := s.shapes.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if ev := s.shapes.Evictions(); ev != 8 {
		t.Fatalf("evictions %d, want 8", ev)
	}
}

// TestWorkloadMetricsLabeled pins the labeled series on /metrics: a
// replicated sharded server exposes per-replica breaker gauges and
// per-shape counters, and the whole body still passes the exposition
// validator.
func TestWorkloadMetricsLabeled(t *testing.T) {
	sg, err := shard.BuildReplicatedByName(testGraph().Triples(), "hash-subject", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSharded(sg, Config{TraceSampleRate: 1})
	q := workloadQueries[0]
	if rec := getQuery(t, s, q, "", nil); rec.Code != http.StatusOK {
		t.Fatalf("query status %d: %s", rec.Code, rec.Body.String())
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	validateExposition(t, body)

	prep, err := sparql.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE rdf_replica_breaker_state gauge",
		`rdf_replica_breaker_state{shard="0",replica="0"} 0`,
		`rdf_replica_breaker_state{shard="2",replica="1"} 0`,
		"# TYPE rdf_replica_breaker_trips_total counter",
		"# TYPE rdf_replica_latency_ewma_ms gauge",
		"# TYPE rdf_replica_error_rate gauge",
		"# TYPE rdf_shape_queries_total counter",
		fmt.Sprintf(`rdf_shape_queries_total{fingerprint="%s",class="%s"} 1`,
			prep.Fingerprint(), sparql.ClassifyShape(prep.Query())),
		"# TYPE rdf_shape_latency_p95_ms gauge",
		"rdf_shapes_tracked 1",
		"rdf_sampled_traces_total 1",
		"rdf_trace_ring_entries 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestDebugDash pins the dashboard endpoint: self-contained HTML, no
// external assets.
func TestDebugDash(t *testing.T) {
	s := New(testGraph(), Config{})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/dash", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"workload observatory", "/debug/shapes", "/debug/queries"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
	for _, banned := range []string{"http://", "https://", "src=", "@import"} {
		if strings.Contains(body, banned) {
			t.Fatalf("dashboard references external asset (%q)", banned)
		}
	}
}

// TestStatsWorkloadBlock pins the /stats workload block: shape
// tracking, sampling counters, and the top-shapes view.
func TestStatsWorkloadBlock(t *testing.T) {
	s := New(testGraph(), Config{TraceSampleRate: 2})
	for i := 0; i < 4; i++ {
		if rec := getQuery(t, s, workloadQueries[0], "", nil); rec.Code != http.StatusOK {
			t.Fatalf("query %d status %d", i, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var doc struct {
		Workload struct {
			ShapesTracked   int `json:"shapes_tracked"`
			ShapeCapacity   int `json:"shape_capacity"`
			TraceSampleRate int `json:"trace_sample_rate"`
			SampledTraces   int `json:"sampled_traces"`
			TraceRing       struct {
				Size     int `json:"size"`
				Capacity int `json:"capacity"`
			} `json:"trace_ring"`
			TopShapes []struct {
				Fingerprint string `json:"fingerprint"`
				Count       uint64 `json:"count"`
			} `json:"top_shapes"`
		} `json:"workload"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/stats does not parse: %v\n%s", err, rec.Body.String())
	}
	w := doc.Workload
	if w.ShapesTracked != 1 || len(w.TopShapes) != 1 || w.TopShapes[0].Count != 4 {
		t.Fatalf("workload block %+v", w)
	}
	if w.TraceSampleRate != 2 {
		t.Fatalf("trace_sample_rate %d", w.TraceSampleRate)
	}
	// Rate 2 samples requests 2 and 4 of the 4 served.
	if w.SampledTraces != 2 || w.TraceRing.Size != 2 {
		t.Fatalf("sampled %d, ring %d; want 2, 2", w.SampledTraces, w.TraceRing.Size)
	}
}
