package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// TestAdmissionLadderDecide pins the degradation ladder's shape: full
// parallelism while the queue is shallow, half above degradeAt, serial
// above floorAt, shed above maxQueue — with expensive queries degraded
// and shed one rung earlier.
func TestAdmissionLadderDecide(t *testing.T) {
	a := newAdmission(8) // degradeAt 2, floorAt 4
	cases := []struct {
		depth     int
		expensive bool
		wantShed  bool
		wantPar   int
	}{
		{1, false, false, 8},
		{2, false, false, 8},
		{3, false, false, 4}, // above degradeAt: half
		{3, true, false, 1},  // expensive degrades straight to serial
		{5, false, false, 1}, // above floorAt: serial for everyone
		{5, true, true, 0},   // expensive sheds above floorAt
		{9, false, true, 0},  // above maxQueue: shed everything
		{9, true, true, 0},
	}
	for i, c := range cases {
		shed, par := a.decide(c.depth, c.expensive, 8)
		if shed != c.wantShed {
			t.Fatalf("case %d (depth %d expensive %v): shed = %v, want %v", i, c.depth, c.expensive, shed, c.wantShed)
		}
		if !shed && par != c.wantPar {
			t.Fatalf("case %d (depth %d expensive %v): par = %d, want %d", i, c.depth, c.expensive, par, c.wantPar)
		}
	}
}

// TestOverloadShedImmediate pins fast-fail shedding: with the worker
// pool stuck and the queue full, a new query answers 503 immediately —
// it must not burn its (generous) deadline waiting for a slot that
// cannot free up.
func TestOverloadShedImmediate(t *testing.T) {
	s := New(testGraph(), Config{MaxConcurrent: 1, MaxQueue: 2})
	s.sem <- struct{}{} // wedge the only worker slot
	query := `SELECT ?s WHERE { ?s <http://ex/name> ?n }`

	// Two queries fill the queue (depths 1 and 2 ≤ MaxQueue).
	done := make(chan *httptest.ResponseRecorder, 2)
	for i := 0; i < 2; i++ {
		go func() { done <- getQuery(t, s, query, "&timeout=30s", nil) }()
	}
	waitFor(t, func() bool { return s.admit.waiting.Load() == 2 })

	// The third sees depth 3 > MaxQueue: immediate 503, despite the
	// 30s deadline it would otherwise have been happy to wait out.
	start := time.Now()
	rec := getQuery(t, s, query, "&timeout=30s", nil)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("shed query took %v to answer, want immediate", elapsed)
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "shed") {
		t.Fatalf("body %q, want the shed message", rec.Body.String())
	}
	if res := s.m.resources(); res.shedQueries != 1 {
		t.Fatalf("shed_queries = %d, want 1", res.shedQueries)
	}

	<-s.sem // free the pool; the queued pair must drain cleanly
	for i := 0; i < 2; i++ {
		if rec := <-done; rec.Code != http.StatusOK {
			t.Fatalf("queued query: status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// TestOverloadRacedServing is the overload acceptance suite, run over
// real HTTP under -race: with the pool wedged and 16 concurrent
// queries arriving, exactly MaxQueue queries queue (some at degraded
// parallelism) and the rest shed immediately; /healthz stays
// responsive throughout; and once the pool frees, every admitted query
// answers byte-identically to an uncontended run.
func TestOverloadRacedServing(t *testing.T) {
	s := New(testGraph(), Config{MaxConcurrent: 2, MaxQueue: 4, QueryParallelism: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	query := `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n } ORDER BY ?n LIMIT 5`
	qurl := ts.URL + "/sparql?query=" + url.QueryEscape(query)

	want := httpGet(t, qurl) // uncontended reference answer
	if want.code != http.StatusOK {
		t.Fatalf("reference query: status %d", want.code)
	}

	s.sem <- struct{}{} // wedge both worker slots
	s.sem <- struct{}{}
	const n = 16
	results := make(chan httpResult, n)
	for i := 0; i < n; i++ {
		go func() { results <- httpGet(t, qurl) }()
	}
	// Steady state: 4 queued (depths 1-4), 12 shed (depth 5 each time,
	// since a shed decrements the gauge right away).
	waitFor(t, func() bool {
		return s.admit.waiting.Load() == 4 && s.m.resources().shedQueries == 12
	})

	// The control plane must answer while the data plane is saturated.
	if h := httpGet(t, ts.URL+"/healthz"); h.code != http.StatusOK {
		t.Fatalf("healthz under overload: status %d", h.code)
	}

	<-s.sem // free the pool; the queue drains
	<-s.sem
	shed, ok := 0, 0
	for i := 0; i < n; i++ {
		r := <-results
		switch r.code {
		case http.StatusServiceUnavailable:
			shed++
		case http.StatusOK:
			ok++
			if r.body != want.body {
				t.Fatalf("admitted query diverged from the uncontended answer:\nwant %q\ngot  %q", want.body, r.body)
			}
		default:
			t.Fatalf("unexpected status %d: %s", r.code, r.body)
		}
	}
	if shed != 12 || ok != 4 {
		t.Fatalf("shed %d / ok %d, want 12 / 4", shed, ok)
	}
	// Depths 2-4 exceeded degradeAt (1): three queries ran degraded.
	if res := s.m.resources(); res.degradedQueries != 3 {
		t.Fatalf("degraded_queries = %d, want 3", res.degradedQueries)
	}
}

// TestServeDegradedByteIdentical pins that the ladder's parallelism
// cuts never change answers: a query admitted under synthetic backlog
// (forced to the serial rung) returns the same bytes as an uncontended
// run, and is counted as degraded.
func TestServeDegradedByteIdentical(t *testing.T) {
	s := New(testGraph(), Config{MaxQueue: 4, QueryParallelism: 4})
	query := `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n } ORDER BY ?n`
	want := getQuery(t, s, query, "", nil)
	if want.Code != http.StatusOK {
		t.Fatalf("clean run: status %d", want.Code)
	}
	s.admit.waiting.Add(3) // synthetic backlog: next arrival is depth 4 > floorAt 2
	defer s.admit.waiting.Add(-3)
	got := getQuery(t, s, query, "", nil)
	if got.Code != http.StatusOK {
		t.Fatalf("degraded run: status %d: %s", got.Code, got.Body.String())
	}
	if got.Body.String() != want.Body.String() {
		t.Fatal("degraded run diverged from the full-parallelism answer")
	}
	if res := s.m.resources(); res.degradedQueries != 1 {
		t.Fatalf("degraded_queries = %d, want 1", res.degradedQueries)
	}
}

// TestServeMemoryBudget413 pins the serving side of per-query budgets:
// an explosive query is cut off mid-evaluation with 413 and counted,
// while a selective query under the same budget still answers — and
// the /stats resources block reports both.
func TestServeMemoryBudget413(t *testing.T) {
	s := New(cartesianGraph(512), Config{MaxQueryBytes: 32 << 10})
	rec := getQuery(t, s, `SELECT * WHERE { ?a <http://ex/p> ?x . ?b <http://ex/q> ?y }`, "", nil)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("cartesian status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "memory budget") {
		t.Fatalf("body %q, want the budget message", rec.Body.String())
	}
	rec = getQuery(t, s, `SELECT * WHERE { ?a <http://ex/p> ?x }`, "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("selective status %d: %s", rec.Code, rec.Body.String())
	}
	res := s.m.resources()
	if res.budgetAborts != 1 {
		t.Fatalf("budget_aborts = %d, want 1", res.budgetAborts)
	}
	if res.bytesCharged == 0 || res.peakQueryBytes == 0 {
		t.Fatalf("bytes charged %d / peak %d, want both > 0", res.bytesCharged, res.peakQueryBytes)
	}
	if res.peakQueryBytes <= 32<<10 {
		t.Fatalf("peak %d, want > the %d budget (the aborting charge)", res.peakQueryBytes, 32<<10)
	}
}

// TestServePostBodyCap413 pins the boundary cap: POST bodies over
// Config.MaxBodyBytes answer 413 on both protocol encodings, and a
// small body still works.
func TestServePostBodyCap413(t *testing.T) {
	s := New(testGraph(), Config{MaxBodyBytes: 256})
	small := `SELECT ?s WHERE { ?s <http://ex/name> ?n } LIMIT 1`

	req := httptest.NewRequest(http.MethodPost, "/sparql", strings.NewReader(small))
	req.Header.Set("Content-Type", "application/sparql-query")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("small body: status %d: %s", rec.Code, rec.Body.String())
	}

	big := small + " # " + strings.Repeat("x", 512)
	req = httptest.NewRequest(http.MethodPost, "/sparql", strings.NewReader(big))
	req.Header.Set("Content-Type", "application/sparql-query")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("raw body over cap: status %d: %s", rec.Code, rec.Body.String())
	}

	form := url.Values{"query": {big}}
	req = httptest.NewRequest(http.MethodPost, "/sparql", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("form body over cap: status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestCostShedExpensiveFirst pins cost-aware admission: under a
// backlog past the serial floor, a cartesian-shaped query (estimate
// over the default 4×triples threshold) is shed immediately while a
// selective query arriving at the same depth is still admitted.
func TestCostShedExpensiveFirst(t *testing.T) {
	s := New(cartesianGraph(256), Config{MaxConcurrent: 1, MaxQueue: 4, QueryParallelism: 1})
	if s.costThreshold != 4*512 {
		t.Fatalf("costThreshold = %d, want %d (4x triples)", s.costThreshold, 4*512)
	}
	cheap := `SELECT * WHERE { ?a <http://ex/p> ?x } LIMIT 1`
	expensive := `SELECT * WHERE { ?a <http://ex/p> ?x . ?b <http://ex/q> ?y } LIMIT 1`

	s.sem <- struct{}{} // wedge the pool
	done := make(chan *httptest.ResponseRecorder, 3)
	for i := 0; i < 2; i++ {
		go func() { done <- getQuery(t, s, cheap, "&timeout=30s", nil) }()
	}
	waitFor(t, func() bool { return s.admit.waiting.Load() == 2 })

	// Depth 3 > floorAt (2): the expensive query sheds...
	rec := getQuery(t, s, expensive, "&timeout=30s", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expensive at depth 3: status %d: %s", rec.Code, rec.Body.String())
	}
	// ...while a cheap query at the same depth is admitted (serial).
	go func() { done <- getQuery(t, s, cheap, "&timeout=30s", nil) }()
	waitFor(t, func() bool { return s.admit.waiting.Load() == 3 })

	<-s.sem
	for i := 0; i < 3; i++ {
		if rec := <-done; rec.Code != http.StatusOK {
			t.Fatalf("cheap query: status %d: %s", rec.Code, rec.Body.String())
		}
	}
	if res := s.m.resources(); res.shedQueries != 1 {
		t.Fatalf("shed_queries = %d, want 1", res.shedQueries)
	}
}

// TestStatsResourcesBlock checks /stats carries the governance block
// with the configured budget and queue capacity.
func TestStatsResourcesBlock(t *testing.T) {
	s := New(testGraph(), Config{MaxQueryBytes: 1 << 20, MaxConcurrent: 2})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`"resources"`, `"max_query_bytes":1048576`, `"queue_capacity":8`,
		`"budget_aborts":0`, `"shed_queries":0`, `"degraded_queries":0`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("stats missing %s: %s", want, body)
		}
	}
}

type httpResult struct {
	code int
	body string
}

func httpGet(t *testing.T, url string) httpResult {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Errorf("GET %s: %v", url, err)
		return httpResult{}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("GET %s: reading body: %v", url, err)
	}
	return httpResult{code: resp.StatusCode, body: string(b)}
}

// waitFor polls cond until it holds or a generous deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}
