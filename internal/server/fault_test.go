package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/shard"
)

// faultStatsDoc decodes the /stats faults block (plus the sharding
// bits the fault tests assert on).
type faultStatsDoc struct {
	Faults struct {
		Attempts        uint64                `json:"attempts"`
		Retries         uint64                `json:"retries"`
		Failovers       uint64                `json:"failovers"`
		RecoveredPanics uint64                `json:"recovered_panics"`
		PartialFailures uint64                `json:"partial_failures"`
		OversizeResults uint64                `json:"oversize_results"`
		BreakerTrips    int64                 `json:"breaker_trips"`
		Breakers        []sparqlBreakerFields `json:"breakers"`
	} `json:"faults"`
	Sharding struct {
		Shards   int `json:"shards"`
		Replicas int `json:"replicas"`
	} `json:"sharding"`
}

type sparqlBreakerFields struct {
	Shard   int    `json:"shard"`
	Replica int    `json:"replica"`
	State   string `json:"state"`
}

func getStats(t *testing.T, s *Server) faultStatsDoc {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var doc faultStatsDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestHandlerPanicRecovered pins the serving contract under panics: a
// panic inside request handling answers that one request with a 500,
// increments the recovered-panic counter, and leaves the server fully
// able to answer the next query.
func TestHandlerPanicRecovered(t *testing.T) {
	cfg := Config{FaultPlan: fault.NewPlan(1).PanicNext(fault.PointServer, 1)}
	s := New(testGraph(), cfg)
	q := `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n } LIMIT 2`

	if rec := getQuery(t, s, q, "", nil); rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request answered %d, want 500", rec.Code)
	}
	if rec := getQuery(t, s, q, "", nil); rec.Code != http.StatusOK {
		t.Fatalf("request after recovered panic answered %d: %s", rec.Code, rec.Body.String())
	}
	if doc := getStats(t, s); doc.Faults.RecoveredPanics != 1 {
		t.Fatalf("recovered_panics = %d, want 1", doc.Faults.RecoveredPanics)
	}
}

// TestMaxResultRowsOverload pins the overload guard: a query whose
// result exceeds MaxResultRows is refused with 413 and counted, while
// a LIMIT keeping the result under the cap passes.
func TestMaxResultRowsOverload(t *testing.T) {
	s := New(testGraph(), Config{MaxResultRows: 5})
	big := `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n }` // 64 rows
	if rec := getQuery(t, s, big, "", nil); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize query answered %d, want 413: %s", rec.Code, rec.Body.String())
	}
	small := big + ` LIMIT 3`
	if rec := getQuery(t, s, small, "", nil); rec.Code != http.StatusOK {
		t.Fatalf("limited query answered %d: %s", rec.Code, rec.Body.String())
	}
	doc := getStats(t, s)
	if doc.Faults.OversizeResults != 1 {
		t.Fatalf("oversize_results = %d, want 1", doc.Faults.OversizeResults)
	}
}

// TestShardedFailoverServing pins fault-tolerant serving end to end:
// with replica 0 of every shard failed through the chaos plan, queries
// still answer 200 with full results, and /stats reports the
// failovers, the replica count, and the breaker states.
func TestShardedFailoverServing(t *testing.T) {
	triples := testGraph().Triples()
	const shards, replicas = 3, 2
	sg, err := shard.BuildReplicatedByName(triples, "hash-subject", shards, replicas)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(1)
	for sh := 0; sh < shards; sh++ {
		plan.FailAlways(fault.ReplicaPoint(sh, 0))
	}
	s := NewSharded(sg, Config{FaultPlan: plan})
	single := New(testGraph(), Config{})

	q := `SELECT ?s ?n ?a WHERE { ?s <http://ex/name> ?n . ?s <http://ex/age> ?a } ORDER BY ?s LIMIT 5`
	want := getQuery(t, single, q, "", nil)
	got := getQuery(t, s, q, "", nil)
	if got.Code != http.StatusOK {
		t.Fatalf("query with a replica down answered %d: %s", got.Code, got.Body.String())
	}
	if want.Body.String() != got.Body.String() {
		t.Fatalf("response with a replica down differs:\nwant %s\ngot  %s", want.Body.String(), got.Body.String())
	}

	doc := getStats(t, s)
	if doc.Faults.Failovers < 1 {
		t.Fatalf("failovers = %d, want >= 1", doc.Faults.Failovers)
	}
	if doc.Sharding.Replicas != replicas {
		t.Fatalf("sharding.replicas = %d, want %d", doc.Sharding.Replicas, replicas)
	}
	if len(doc.Faults.Breakers) != shards*replicas {
		t.Fatalf("breakers lists %d entries, want %d", len(doc.Faults.Breakers), shards*replicas)
	}
}

// TestAllReplicasDownAnswers502 pins the HTTP mapping of total shard
// loss: a PartialFailureError answers 502 Bad Gateway and increments
// partial_failures — it is an infrastructure failure, not a client
// error.
func TestAllReplicasDownAnswers502(t *testing.T) {
	triples := testGraph().Triples()
	sg, err := shard.BuildReplicatedByName(triples, "hash-subject", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(1)
	for r := 0; r < 2; r++ {
		for sh := 0; sh < 3; sh++ {
			plan.FailAlways(fault.ReplicaPoint(sh, r))
		}
	}
	s := NewSharded(sg, Config{FaultPlan: plan})
	rec := getQuery(t, s, `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`, "", nil)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("total shard loss answered %d, want 502: %s", rec.Code, rec.Body.String())
	}
	if doc := getStats(t, s); doc.Faults.PartialFailures != 1 {
		t.Fatalf("partial_failures = %d, want 1", doc.Faults.PartialFailures)
	}
}

// TestGracefulDrain pins the shutdown contract the rdfserve binary
// relies on: closing the listener lets a query already in flight run to
// a complete 200 answer, and only refuses connections made afterwards.
// The in-flight query is held open by injected latency at the server
// fault point.
func TestGracefulDrain(t *testing.T) {
	cfg := Config{FaultPlan: fault.NewPlan(1).Delay(fault.PointServer, 300*time.Millisecond)}
	s := New(testGraph(), cfg)
	ts := httptest.NewServer(s.Handler())

	q := url.QueryEscape(`SELECT ?s ?n WHERE { ?s <http://ex/name> ?n } LIMIT 2`)
	type reply struct {
		code int
		body string
		err  error
	}
	done := make(chan reply, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/sparql?query=" + q)
		if err != nil {
			done <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- reply{code: resp.StatusCode, body: string(b)}
	}()

	// Let the request reach the handler's injected delay, then close
	// the listener; Close blocks until outstanding requests finish.
	time.Sleep(100 * time.Millisecond)
	ts.Close()

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight query failed during drain: %v", r.err)
	}
	if r.code != http.StatusOK || !strings.Contains(r.body, "bindings") {
		t.Fatalf("drained query answered %d: %s", r.code, r.body)
	}
	if _, err := http.Get(ts.URL + "/sparql?query=" + q); err == nil {
		t.Fatal("connection after drain succeeded, want refusal")
	}
}
