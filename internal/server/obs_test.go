package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/sparql"
)

// jsonSpan mirrors the obs.Trace JSON rendering for EXPLAIN tests.
type jsonSpan struct {
	Name       string         `json:"name"`
	DurationUs int64          `json:"duration_us"`
	Attrs      map[string]any `json:"attrs"`
	Children   []*jsonSpan    `json:"children"`
}

func (s *jsonSpan) find(name string) *jsonSpan {
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if f := c.find(name); f != nil {
			return f
		}
	}
	return nil
}

func (s *jsonSpan) attrInt(t *testing.T, key string) int64 {
	t.Helper()
	v, ok := s.Attrs[key]
	if !ok {
		t.Fatalf("span %s missing attr %s", s.Name, key)
	}
	f, ok := v.(float64)
	if !ok {
		t.Fatalf("span %s attr %s is %T, want number", s.Name, key, v)
	}
	return int64(f)
}

var (
	promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+$`)
	promHexID  = regexp.MustCompile(`^[0-9a-f]{16}$`)
)

// validateExposition checks a Prometheus text body: every sample line
// parses, every sampled family has a TYPE declaration, and histogram
// buckets are cumulative with +Inf matching _count.
func validateExposition(t *testing.T, body string) {
	t.Helper()
	typed := map[string]string{}
	lastBucket := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if typed[strings.TrimSuffix(name, suf)] == "histogram" {
				family = strings.TrimSuffix(name, suf)
			}
		}
		if typed[family] == "" {
			t.Fatalf("sample %q has no TYPE declaration", name)
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		switch {
		case strings.HasSuffix(name, "_bucket") && typed[family] == "histogram":
			if v < lastBucket[family] {
				t.Fatalf("histogram %s buckets not cumulative at %q", family, line)
			}
			lastBucket[family] = v
		case strings.HasSuffix(name, "_count") && typed[family] == "histogram":
			if v != lastBucket[family] {
				t.Fatalf("histogram %s _count %v != +Inf bucket %v", family, v, lastBucket[family])
			}
		}
	}
	if len(typed) == 0 {
		t.Fatal("exposition declared no families")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := New(testGraph(), Config{})
	// Serve one success and one parse failure so the counters move.
	if rec := getQuery(t, s, `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n } LIMIT 3`, "", nil); rec.Code != http.StatusOK {
		t.Fatalf("query status %d", rec.Code)
	}
	if rec := getQuery(t, s, `NOT SPARQL`, "", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad query status %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	validateExposition(t, body)
	for _, want := range []string{
		"# TYPE rdf_queries_served_total counter",
		"rdf_queries_served_total 1",
		"rdf_queries_failed_total 1",
		"# TYPE rdf_in_flight_queries gauge",
		"# TYPE rdf_query_duration_ms histogram",
		"# TYPE rdf_query_exec_ms histogram",
		"# TYPE rdf_query_serialize_ms histogram",
		`rdf_query_duration_ms_bucket{le="+Inf"} 1`,
		"rdf_build_info{go_version=",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsEndpointSharded(t *testing.T) {
	sg, err := shard.BuildByName(testGraph().Triples(), "hash-subject", 3)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSharded(sg, Config{})
	if rec := getQuery(t, s, `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n } LIMIT 3`, "", nil); rec.Code != http.StatusOK {
		t.Fatalf("query status %d: %s", rec.Code, rec.Body.String())
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	body := rec.Body.String()
	validateExposition(t, body)
	for _, want := range []string{"rdf_shards 3", "rdf_shards_touched_total"} {
		if !strings.Contains(body, want) {
			t.Fatalf("sharded exposition missing %q", want)
		}
	}
}

func TestRequestID(t *testing.T) {
	s := New(testGraph(), Config{})
	q := `SELECT ?s WHERE { ?s <http://ex/name> ?n } LIMIT 1`

	// No inbound id: a fresh 16-hex id appears on the response.
	rec := getQuery(t, s, q, "", nil)
	id := rec.Header().Get("X-Request-ID")
	if !promHexID.MatchString(id) {
		t.Fatalf("generated request id %q is not 16 hex digits", id)
	}

	// A usable inbound id is echoed verbatim.
	rec = getQuery(t, s, q, "", map[string]string{"X-Request-ID": "client-id_42.a"})
	if got := rec.Header().Get("X-Request-ID"); got != "client-id_42.a" {
		t.Fatalf("inbound id not echoed: got %q", got)
	}

	// An unusable inbound id (header-breaking characters) is replaced.
	rec = getQuery(t, s, q, "", map[string]string{"X-Request-ID": "bad id\twith spaces"})
	if got := rec.Header().Get("X-Request-ID"); !promHexID.MatchString(got) {
		t.Fatalf("invalid inbound id not replaced: got %q", got)
	}

	// Error responses carry the id in the body too.
	rec = getQuery(t, s, `NOT SPARQL`, "", map[string]string{"X-Request-ID": "err-7"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "(request err-7)") {
		t.Fatalf("error body lacks request id: %q", rec.Body.String())
	}
	if got := rec.Header().Get("X-Request-ID"); got != "err-7" {
		t.Fatalf("error response id %q", got)
	}
}

func TestExplainAnalyze(t *testing.T) {
	s := New(testGraph(), Config{})
	q := `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n } ORDER BY ?n LIMIT 3`
	rec := getQuery(t, s, q, "&explain=analyze", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var root jsonSpan
	if err := json.Unmarshal(rec.Body.Bytes(), &root); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if root.Name != "query" {
		t.Fatalf("root span %q", root.Name)
	}
	if root.find("parse") == nil {
		t.Fatal("no parse span")
	}
	seed := root.find("seed_scan")
	if seed == nil {
		t.Fatal("no seed_scan span")
	}
	// The query really ran: the seed scan saw all 64 name triples and
	// the modifier pipeline cut the result to LIMIT 3.
	if rows := seed.attrInt(t, "rows"); rows != 64 {
		t.Fatalf("seed_scan rows = %d, want 64", rows)
	}
	mod := root.find("modifiers")
	if mod == nil {
		t.Fatal("no modifiers span")
	}
	if rows := mod.attrInt(t, "rows"); rows != 3 {
		t.Fatalf("modifiers rows = %d, want 3", rows)
	}
	if root.find("serialize") != nil {
		t.Fatal("explain response should not serialize results")
	}

	// format=text renders the indented tree instead.
	rec = getQuery(t, s, q, "&explain=analyze&format=text", nil)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text content type %q", ct)
	}
	text := rec.Body.String()
	if !strings.HasPrefix(text, "query") || !strings.Contains(text, "  bgp") {
		t.Fatalf("unexpected text rendering:\n%s", text)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	s := New(testGraph(), Config{
		SlowQueryThreshold: time.Nanosecond, // every query is slow
		SlowQueryLog:       &buf,
	})
	q := `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n } LIMIT 5`
	rec := getQuery(t, s, q, "", map[string]string{"X-Request-ID": "slow-1"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("want exactly one log line, got %q", line)
	}
	var entry struct {
		TS            string  `json:"ts"`
		RequestID     string  `json:"request_id"`
		QueryHash     string  `json:"query_hash"`
		PlanFP        string  `json:"plan_fingerprint"`
		Route         string  `json:"route"`
		Shards        int     `json:"shards"`
		ShardsTouched int     `json:"shards_touched"`
		DurationMs    float64 `json:"duration_ms"`
		TopSpans      []struct {
			Name   string  `json:"name"`
			SelfMs float64 `json:"self_ms"`
		} `json:"top_spans"`
	}
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("log line does not parse: %v\n%s", err, line)
	}
	if entry.RequestID != "slow-1" {
		t.Fatalf("request_id %q", entry.RequestID)
	}
	if entry.QueryHash != obs.QueryHash(q) {
		t.Fatalf("query_hash %q, want %q", entry.QueryHash, obs.QueryHash(q))
	}
	if prep, err := sparql.Prepare(q); err != nil {
		t.Fatal(err)
	} else if entry.PlanFP != prep.Fingerprint() {
		t.Fatalf("plan_fingerprint %q, want %q", entry.PlanFP, prep.Fingerprint())
	}
	if entry.Route != "local" {
		t.Fatalf("route %q", entry.Route)
	}
	if entry.DurationMs <= 0 {
		t.Fatalf("duration_ms %v", entry.DurationMs)
	}
	if len(entry.TopSpans) == 0 || entry.TopSpans[0].Name == "" {
		t.Fatalf("top_spans empty: %s", line)
	}

	// A fast-path run with no threshold leaves the log empty.
	buf.Reset()
	s2 := New(testGraph(), Config{SlowQueryLog: &buf})
	getQuery(t, s2, q, "", nil)
	if buf.Len() != 0 {
		t.Fatalf("unarmed server logged %q", buf.String())
	}
}
