// Package server turns the reproduction into what the survey says
// Spark RDF systems are for: a query-answering service. It serves the
// SPARQL protocol over HTTP against a shared read-only rdf.Graph
// snapshot, with a compile-once/run-many evaluator behind an LRU
// prepared-plan cache, bounded-concurrency admission control with
// per-query deadlines, and streaming result writers that decode each
// surviving row straight into the response.
//
// Concurrency model: the graph is loaded (and its encoded view and
// statistics warmed) before the server starts accepting queries, and is
// never mutated afterwards — every evaluator structure the requests
// share (term-space indexes, dictionary-encoded view, cached stats,
// cached plans) is then safe for unlimited concurrent readers. Each
// request runs on its own goroutine with its own evaluation arena; the
// only cross-request synchronization is the plan-cache mutex and the
// admission semaphore.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/shard"
	"repro/internal/sparql"
)

// OverloadError reports a query aborted by the MaxResultRows guard.
type OverloadError struct {
	// Rows is the result size the query produced; Limit the cap.
	Rows, Limit int
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("sparql: result of %d rows exceeds the server cap of %d", e.Rows, e.Limit)
}

// Config tunes the query service. The zero value gets sensible
// defaults from New.
type Config struct {
	// MaxConcurrent bounds the number of queries evaluating at once
	// (the worker pool). Excess queries wait for a slot until their
	// deadline and are rejected with 503 if none frees up. Default 8.
	MaxConcurrent int
	// DefaultTimeout is the per-query deadline when the client does not
	// pass one. Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps the client-requested timeout. Default 2m.
	MaxTimeout time.Duration
	// PlanCacheSize is the capacity of the prepared-plan LRU; negative
	// disables plan caching (every query re-parses). Default 256.
	PlanCacheSize int
	// QueryParallelism is the per-query morsel worker-pool width: one
	// query's large seed scans and hash-join probes split across this
	// many workers (sparql.WithParallelism). Default (0) is GOMAXPROCS;
	// 1 serializes every query on its own goroutine. Results are
	// byte-identical at every width.
	QueryParallelism int
	// MaxResultRows, when > 0, aborts any query whose result exceeds
	// that many rows with a typed OverloadError (HTTP 413) instead of
	// streaming unbounded output. Default 0 (unlimited).
	MaxResultRows int
	// MaxQueryBytes, when > 0, is the per-query memory budget: every
	// query runs under sparql.WithMemoryBudget(MaxQueryBytes) and one
	// that outgrows it aborts with a typed *sparql.BudgetError (HTTP
	// 413) before partial rows escape. Unlike MaxResultRows — which
	// only sees the finished result — the budget bounds intermediate
	// join state, so a query that explodes mid-evaluation is cut off
	// while evaluating, not after. Default 0 (unlimited).
	MaxQueryBytes int64
	// MaxBodyBytes caps the request body a POST may carry (enforced
	// with http.MaxBytesReader; over-limit requests get 413). Default
	// (0) is 1 MiB; negative disables the cap.
	MaxBodyBytes int64
	// MaxQueue bounds how many queries may wait for a worker slot
	// before admission sheds new arrivals with an immediate 503 (no
	// deadline burn), with a degradation ladder shrinking per-query
	// parallelism as the queue fills (see admission). Default (0) is
	// 4×MaxConcurrent; negative disables admission control entirely,
	// restoring wait-until-deadline queueing.
	MaxQueue int
	// CostShedThreshold is the planner cost estimate
	// (Prepared.EstimateCost) above which a query counts as expensive
	// for the admission ladder: expensive queries degrade to serial
	// earlier and are shed under heavy load. Default (0) is 4× the
	// dataset's triple count; negative disables cost-aware decisions
	// (only queue depth sheds).
	CostShedThreshold int64
	// HedgeDelay arms hedged shard operations on sharded backends with
	// replicas: a per-shard op that outlives the delay races a second
	// copy on the next-best replica, first success wins. > 0 is a fixed
	// delay; < 0 selects the adaptive delay (the observed p95 of the op
	// class); 0 (default) disables hedging.
	HedgeDelay time.Duration
	// SpeculationFactor, when > 0, arms speculative morsel
	// re-execution: a morsel task still running after this multiple of
	// the run's median task time is re-dispatched, first completion
	// wins. Default 0 (disabled).
	SpeculationFactor float64
	// BreakerTripThreshold overrides how many consecutive failures trip
	// a replica's circuit breaker (sharded backends with replicas).
	// Default (0) keeps the engine default of 3.
	BreakerTripThreshold int
	// BreakerCooldown overrides how long an open breaker holds traffic
	// off a replica before the half-open probe. Default (0) keeps the
	// engine default of 250ms.
	BreakerCooldown time.Duration
	// FaultPlan, when set, is installed on every query's context and
	// consulted at the engine's fault points (internal/fault) — the
	// chaos-testing hook behind rdfserve's -chaos-fail-replica flag.
	// Results under an armed plan stay byte-identical as long as at
	// least one replica of every needed shard survives.
	FaultPlan *fault.Plan
	// SlowQueryThreshold, when > 0, arms the slow-query log: every
	// query runs traced (sparql.WithTrace), and one whose end-to-end
	// latency — arrival to response write complete — reaches the
	// threshold is recorded as one JSON line on SlowQueryLog, keyed by
	// request id and query hash with its top-3 spans by self time.
	// Default 0 (disabled; queries keep the untraced fast path).
	SlowQueryThreshold time.Duration
	// SlowQueryLog is the slow-query log destination. Default (nil) is
	// os.Stderr.
	SlowQueryLog io.Writer
	// TraceSampleRate, when > 0, arms always-on sampled tracing: one in
	// every TraceSampleRate queries runs traced (deterministically, off
	// the server's request counter — request N is sampled when N is a
	// multiple of the rate) and its completed span tree is retained in
	// the trace ring behind GET /debug/queries. Sampling changes nothing
	// observable about the response — a sampled body is byte-identical
	// to an untraced one — and unsampled queries keep the evaluator's
	// one-nil-check fast path. Default 0 (disabled).
	TraceSampleRate int
	// TraceRingSize bounds how many completed traces (sampled, slow, or
	// EXPLAIN ANALYZE) the server retains for /debug/queries; the newest
	// trace evicts the oldest. Default (0) is 64.
	TraceRingSize int
	// MaxShapes bounds the plan-fingerprint registry: at most this many
	// distinct query shapes keep aggregates at once, LRU-evicted beyond
	// that. Default (0) is 512.
	MaxShapes int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 8
	}
	if c.QueryParallelism <= 0 {
		c.QueryParallelism = runtime.GOMAXPROCS(0)
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 256
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.TraceRingSize <= 0 {
		c.TraceRingSize = 64
	}
	if c.MaxShapes <= 0 {
		c.MaxShapes = 512
	}
	return c
}

// Server is the SPARQL query service. Create it with New, mount
// Handler (or the Server itself) on an http.Server, and keep the graph
// read-only for the server's lifetime.
type Server struct {
	graph *rdf.Graph
	cfg   Config
	cache *planCache
	sem   chan struct{}
	m     *metrics
	mux   *http.ServeMux

	// shards, when set, is the sharded backend: queries execute over
	// the shard set through the distributed evaluator (pushdown or
	// scatter-gather), and /stats gains a sharding block. graph is nil
	// then.
	shards *shard.ShardedGraph

	// engine, when set, answers queries instead of the reference
	// evaluator. The surveyed engines are single-threaded simulations,
	// so execution is serialized by engineMu; the plan cache still
	// amortizes parsing.
	engine   core.Engine
	engineMu sync.Mutex

	// admit is the cost-aware admission controller (admit.go); nil
	// when Config.MaxQueue is negative. costThreshold is the resolved
	// CostShedThreshold (0 disables cost-aware decisions).
	admit         *admission
	costThreshold int64

	// slowLog, when set, receives one JSON line per query slower than
	// Config.SlowQueryThreshold; its presence arms tracing on every
	// query.
	slowLog *obs.SlowQueryLogger

	// Workload observatory: shapes aggregates served queries by plan
	// fingerprint, ring retains recently traced span trees, and
	// reqCount drives deterministic 1-in-N trace sampling.
	shapes   *obs.ShapeRegistry
	ring     *obs.TraceRing
	reqCount atomic.Uint64

	started time.Time
}

func newServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newPlanCache(cfg.PlanCacheSize),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		m:       newMetrics(),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	if cfg.MaxQueue > 0 {
		s.admit = newAdmission(cfg.MaxQueue)
	}
	if cfg.SlowQueryThreshold > 0 {
		out := cfg.SlowQueryLog
		if out == nil {
			out = os.Stderr
		}
		s.slowLog = obs.NewSlowQueryLogger(out)
	}
	s.shapes = obs.NewShapeRegistry(cfg.MaxShapes)
	s.ring = obs.NewTraceRing(cfg.TraceRingSize)
	s.mux.HandleFunc("/sparql", s.handleSPARQL)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	s.mux.HandleFunc("/debug/queries/", s.handleDebugQueries)
	s.mux.HandleFunc("/debug/shapes", s.handleDebugShapes)
	s.mux.HandleFunc("/debug/dash", s.handleDebugDash)
	return s
}

// resolveCostThreshold fixes the expensive-query bound once the
// backend (and with it the dataset size) is known: an explicit
// configuration wins, the default is 4× the triple count — a connected
// query's estimate is bounded by its scans' candidate sums, so only
// cartesian-shaped plans clear it — and a negative setting disables
// cost-aware admission.
func (s *Server) resolveCostThreshold() {
	switch {
	case s.cfg.CostShedThreshold > 0:
		s.costThreshold = s.cfg.CostShedThreshold
	case s.cfg.CostShedThreshold < 0:
		s.costThreshold = 0
	default:
		n := 0
		if s.shards != nil {
			n = s.shards.Len()
		} else if s.graph != nil {
			n = s.graph.Len()
		}
		s.costThreshold = 4 * int64(n)
	}
}

// New builds a server answering queries over g with the reference
// evaluator. The graph's encoded view and statistics are warmed
// eagerly so the first request pays no lazy-initialization cost and
// the shared structures are immutable from here on.
func New(g *rdf.Graph, cfg Config) *Server {
	g.Encoded()
	g.Stats()
	s := newServer(cfg)
	s.graph = g
	s.resolveCostThreshold()
	return s
}

// NewSharded builds a server answering queries over a sharded graph
// with the distributed evaluator: subject-star queries push down whole
// to subject-co-located shards, everything else runs scatter-gather
// with shard pruning, and results are byte-identical to single-graph
// serving. The ShardedGraph is warmed at build time and must stay
// read-only for the server's lifetime.
func NewSharded(sg *shard.ShardedGraph, cfg Config) *Server {
	s := newServer(cfg)
	s.shards = sg
	if h := sg.Set().Health; h != nil {
		if s.cfg.BreakerTripThreshold > 0 {
			h.SetTripThreshold(s.cfg.BreakerTripThreshold)
		}
		if s.cfg.BreakerCooldown > 0 {
			h.SetCooldown(s.cfg.BreakerCooldown)
		}
	}
	s.resolveCostThreshold()
	return s
}

// NewWithEngine builds a server that answers queries with one of the
// surveyed engines (already loaded with the same data as g; g is still
// used for /healthz reporting). Engine execution is serialized.
func NewWithEngine(g *rdf.Graph, engine core.Engine, cfg Config) *Server {
	s := New(g, cfg)
	s.engine = engine
	return s
}

// Handler returns the root handler serving /sparql, /healthz, /stats,
// wrapped in the panic-recovery middleware.
func (s *Server) Handler() http.Handler { return http.HandlerFunc(s.ServeHTTP) }

// ServeHTTP implements http.Handler. It stamps the per-request id and
// is the recovery middleware: a panicking handler (a real bug or an
// injected fault.PointServer crash) answers 500 and increments the
// recovered-panic counter — the process stays up and keeps serving.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Every request gets an id before anything can fail: a usable
	// inbound X-Request-ID survives (ids then correlate across
	// proxies), anything else is replaced with fresh random hex. The id
	// is echoed on every response — including error bodies — and keys
	// the slow-query log.
	id := requestIDFrom(r)
	r.Header.Set(requestIDHeader, id)
	w.Header().Set(requestIDHeader, id)
	defer func() {
		if rec := recover(); rec != nil {
			s.m.panicked()
			// Best effort: if the handler already streamed part of a
			// body the status line is gone and this only ends the
			// response.
			http.Error(w, "internal server error (request "+id+")", http.StatusInternalServerError)
		}
	}()
	s.mux.ServeHTTP(w, r)
}

const requestIDHeader = "X-Request-ID"

// requestIDFrom returns the inbound request id when it is usable (1-64
// characters from a conservative token alphabet) or a fresh random
// 16-hex-digit id otherwise.
func requestIDFrom(r *http.Request) string {
	if id := r.Header.Get(requestIDHeader); validRequestID(id) {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is not worth failing a query over; a
		// constant id still marks the response as served by us.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// validRequestID accepts ids that are safe to echo into headers, error
// bodies, and JSON logs unescaped.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		switch c := id[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// requestID reads the id ServeHTTP stamped onto the request.
func requestID(r *http.Request) string { return r.Header.Get(requestIDHeader) }

// httpError answers like http.Error with the request id appended, so
// error responses correlate with proxy logs and the slow-query log.
func (s *Server) httpError(w http.ResponseWriter, r *http.Request, msg string, code int) {
	http.Error(w, msg+" (request "+requestID(r)+")", code)
}

// queryText extracts the query string per the SPARQL 1.1 protocol:
// GET ?query=, POST application/x-www-form-urlencoded query=, or POST
// application/sparql-query with the query as the body.
func queryText(r *http.Request) (string, error) {
	if r.Method == http.MethodGet {
		return r.URL.Query().Get("query"), nil
	}
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if ct == "application/sparql-query" {
		// The body is already wrapped in http.MaxBytesReader; an
		// over-limit read fails with *http.MaxBytesError (413).
		body, err := io.ReadAll(r.Body)
		if err != nil {
			return "", err
		}
		return string(body), nil
	}
	if err := r.ParseForm(); err != nil {
		return "", err
	}
	return r.PostForm.Get("query"), nil
}

// param reads a protocol parameter from wherever the client put it:
// the URL query string or, for form POSTs, the request body. queryText
// has already consumed the body of application/sparql-query requests,
// so the lazy ParseForm here only sees the URL for those.
func param(r *http.Request, name string) string {
	if r.Form == nil {
		if r.ParseForm() != nil {
			return r.URL.Query().Get(name)
		}
	}
	return r.Form.Get(name)
}

// responseFormat picks the serialization: an explicit format= parameter
// wins, then the Accept header; JSON is the default.
func responseFormat(r *http.Request) string {
	switch param(r, "format") {
	case "json":
		return "json"
	case "tsv":
		return "tsv"
	}
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "text/tab-separated-values") {
		return "tsv"
	}
	return "json"
}

// queryTimeout resolves the per-query deadline: an explicit timeout=
// duration parameter (capped at MaxTimeout) or the default.
func (s *Server) queryTimeout(r *http.Request) time.Duration {
	if t := param(r, "timeout"); t != "" {
		if d, err := time.ParseDuration(t); err == nil && d > 0 {
			if d > s.cfg.MaxTimeout {
				return s.cfg.MaxTimeout
			}
			return d
		}
	}
	return s.cfg.DefaultTimeout
}

func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	// Latency accounting starts at arrival on the monotonic clock: the
	// served histogram spans parsing, admission queueing, evaluation,
	// and response streaming alike, so a query that was slow because
	// the server was busy reads as slow.
	arrival := time.Now()
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		s.m.fail()
		s.httpError(w, r, fmt.Sprintf("sparql: method %s not allowed", r.Method), http.StatusMethodNotAllowed)
		return
	}
	if r.Method == http.MethodPost && s.cfg.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	text, err := queryText(r)
	if err != nil { // unreadable body / malformed form
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.m.fail()
			s.httpError(w, r, "sparql: request body exceeds the server cap", http.StatusRequestEntityTooLarge)
			return
		}
		s.m.fail()
		s.httpError(w, r, "sparql: "+err.Error(), http.StatusBadRequest)
		return
	}
	if strings.TrimSpace(text) == "" {
		s.m.fail()
		s.httpError(w, r, "sparql: missing query", http.StatusBadRequest)
		return
	}
	// Tracing is armed per request: always for EXPLAIN ANALYZE, for one
	// in every TraceSampleRate requests (deterministic off the request
	// counter, so a steady workload is sampled evenly), and on every
	// query when the slow-query log is on (the log's top-spans report
	// comes from the trace). Unarmed queries keep the evaluator's
	// one-nil-check fast path.
	explain := param(r, "explain") == "analyze"
	sampled := false
	if n := s.cfg.TraceSampleRate; n > 0 {
		sampled = s.reqCount.Add(1)%uint64(n) == 0
	}
	var tr *obs.Trace
	if explain || sampled || s.slowLog != nil {
		tr = obs.New("query")
	}
	if sampled {
		s.m.sampledTrace()
	}
	var psp *obs.Span
	if tr != nil {
		psp = tr.Begin("parse")
	}
	prep, cached, err := s.cache.prepare(text)
	if tr != nil {
		if cached {
			psp.SetStr("plan_cache", "hit")
		} else {
			psp.SetStr("plan_cache", "miss")
		}
		tr.End(psp)
	}
	if err != nil {
		s.m.fail()
		s.httpError(w, r, err.Error(), http.StatusBadRequest)
		return
	}

	// Workload accounting: every request that compiled folds into the
	// shape registry on the way out, whatever its fate — shed, rejected,
	// timed out, failed, or served — so the per-shape aggregates see the
	// workload the server actually faced, not just its successes.
	smp := obs.ShapeSample{
		Fingerprint: prep.Fingerprint(),
		Class:       sparql.ClassifyShape(prep.Query()).String(),
		Example:     text,
		CacheHit:    cached,
		Sampled:     sampled,
	}
	defer func() {
		smp.DurationMs = float64(time.Since(arrival)) / float64(time.Millisecond)
		s.shapes.Observe(smp)
	}()

	// The deadline covers queueing and evaluation alike: a query that
	// waited out its budget in the admission queue is rejected, and one
	// admitted late gets only the remainder for evaluation. Client
	// disconnects cancel through the same context.
	rctx := r.Context()
	if p := s.cfg.FaultPlan; p != nil {
		rctx = fault.With(rctx, p)
		// The server fault point: a panic here exercises the recovery
		// middleware, a delay holds the request in-flight (drain tests).
		if err := p.Hit(fault.PointServer); err != nil {
			s.m.fail()
			s.httpError(w, r, "sparql: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	// Admission: decide this query's fate from the queue depth and its
	// cost estimate BEFORE arming the deadline, so a shed query answers
	// immediately instead of burning its timeout in a hopeless queue.
	par := s.cfg.QueryParallelism
	if s.admit != nil {
		expensive := false
		if s.costThreshold > 0 {
			expensive = s.estimateCost(prep) >= s.costThreshold
		}
		depth := int(s.admit.waiting.Add(1))
		shed, newPar := s.admit.decide(depth, expensive, par)
		if shed {
			s.admit.waiting.Add(-1)
			s.m.shed()
			smp.Shed = true
			s.httpError(w, r, "sparql: server overloaded, query shed", http.StatusServiceUnavailable)
			return
		}
		if newPar < par {
			par = newPar
			s.m.degrade()
			smp.Degraded = true
		}
	}
	ctx, cancel := context.WithTimeout(rctx, s.queryTimeout(r))
	defer cancel()
	select {
	case s.sem <- struct{}{}:
		if s.admit != nil {
			s.admit.waiting.Add(-1)
		}
		defer func() { <-s.sem }()
	case <-ctx.Done():
		if s.admit != nil {
			s.admit.waiting.Add(-1)
		}
		s.m.reject()
		smp.Err = true
		s.httpError(w, r, "sparql: server at capacity", http.StatusServiceUnavailable)
		return
	}
	s.m.inFlight.Add(1)
	defer s.m.inFlight.Add(-1)

	execStart := time.Now()
	sol, info, err := s.run(ctx, prep, par, tr)
	execDur := time.Since(execStart)
	smp.Route = info.route
	smp.Bytes = info.bytes
	smp.Hedges = int(info.hedges)
	smp.Speculation = int(info.speculations)
	if err != nil {
		smp.Err = true
		if errors.Is(err, context.DeadlineExceeded) {
			s.m.timeout()
			s.httpError(w, r, "sparql: query deadline exceeded", http.StatusGatewayTimeout)
			return
		}
		if errors.Is(err, context.Canceled) {
			// Client went away; nobody is listening for a status.
			s.m.timeout()
			return
		}
		var pf *sparql.PartialFailureError
		if errors.As(err, &pf) {
			s.m.partialFailure()
			s.httpError(w, r, "sparql: "+err.Error(), http.StatusBadGateway)
			return
		}
		var be *sparql.BudgetError
		if errors.As(err, &be) {
			s.m.budgetAbort()
			s.httpError(w, r, be.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		var oe *OverloadError
		if errors.As(err, &oe) {
			s.m.oversize()
			s.httpError(w, r, oe.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		s.m.fail()
		s.httpError(w, r, err.Error(), http.StatusInternalServerError)
		return
	}

	rows := sol.Len()
	if sol.IsGraph() {
		rows = len(sol.Graph())
	}
	smp.Rows = rows

	if explain {
		// EXPLAIN ANALYZE: the query ran for real — the trace carries
		// actual row counts next to the planner's estimates — but the
		// response is the trace itself, not the result set.
		tr.Finish()
		if param(r, "format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, tr.Text())
		} else {
			w.Header().Set("Content-Type", "application/json")
			w.Write(append(tr.JSON(), '\n'))
		}
		total := time.Since(arrival)
		s.m.observe(total)
		s.m.observeStages(execDur, 0)
		s.retainTrace(r, text, prep, tr, info, total, explain, sampled)
		return
	}

	var ssp *obs.Span
	if tr != nil {
		ssp = tr.Begin("serialize")
	}
	serStart := time.Now()
	var werr error
	switch {
	case sol.IsGraph():
		w.Header().Set("Content-Type", "application/n-triples")
		werr = writeGraphResults(ctx, w, sol)
	case responseFormat(r) == "tsv":
		w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
		werr = writeTSVResults(ctx, w, sol)
	default:
		w.Header().Set("Content-Type", "application/sparql-results+json")
		werr = writeJSONResults(ctx, w, sol)
	}
	serDur := time.Since(serStart)
	if tr != nil {
		ssp.SetInt("rows", int64(rows))
		tr.End(ssp)
	}
	if werr != nil {
		// Headers are out; all we can do is stop streaming.
		s.m.timeout()
		smp.Err = true
		return
	}
	total := time.Since(arrival)
	s.m.observe(total)
	s.m.observeStages(execDur, serDur)
	s.logSlowQuery(r, text, prep.Fingerprint(), tr, info, total)
	s.retainTrace(r, text, prep, tr, info, total, explain, sampled)
}

// retainTrace parks a finished request's span tree in the trace ring
// when something armed it worth keeping: an EXPLAIN ANALYZE run, a
// sampled request, or a query that crossed the slow threshold. (When
// only the slow-query log armed tracing, fast queries' traces are
// dropped — retaining every request would churn the ring into a plain
// recent-queries list.)
func (s *Server) retainTrace(r *http.Request, text string, prep *sparql.Prepared, tr *obs.Trace, info runInfo, total time.Duration, explain, sampled bool) {
	if tr == nil {
		return
	}
	var reason string
	switch {
	case explain:
		reason = "explain"
	case sampled:
		reason = "sampled"
	case s.slowLog != nil && total >= s.cfg.SlowQueryThreshold:
		reason = "slow"
	default:
		return
	}
	tr.Finish()
	s.ring.Add(obs.RetainedTrace{
		RequestID:   requestID(r),
		Fingerprint: prep.Fingerprint(),
		Query:       text,
		Route:       info.route,
		Reason:      reason,
		DurationMs:  float64(total) / float64(time.Millisecond),
		Status:      http.StatusOK,
		When:        time.Now(),
		Trace:       tr,
	})
}

// logSlowQuery records one served query in the slow-query log when the
// log is armed and the end-to-end latency reached the threshold.
func (s *Server) logSlowQuery(r *http.Request, text, fingerprint string, tr *obs.Trace, info runInfo, total time.Duration) {
	if s.slowLog == nil || total < s.cfg.SlowQueryThreshold {
		return
	}
	tr.Finish()
	s.slowLog.Log(obs.SlowQueryEntry{
		RequestID:       requestID(r),
		QueryHash:       obs.QueryHash(text),
		PlanFingerprint: fingerprint,
		Route:           info.route,
		Shards:          info.shards,
		ShardsTouched:   info.touched,
		Hedges:          info.hedges,
		Speculations:    info.speculations,
		DurationMs:      float64(total) / float64(time.Millisecond),
		TopSpans:        tr.TopSelf(3),
	})
}

// runInfo is the routing report eval hands back for the slow-query
// log: which route the query took and its shard fan-out.
type runInfo struct {
	route                string
	shards, touched      int
	hedges, speculations int64
	bytes                int64 // bytes charged against the memory budget
}

// run evaluates one admitted query at the parallelism admission
// granted it.
func (s *Server) run(ctx context.Context, prep *sparql.Prepared, par int, tr *obs.Trace) (*sparql.Solutions, runInfo, error) {
	sol, info, err := s.eval(ctx, prep, par, tr)
	if err != nil {
		return nil, info, err
	}
	// Resource guard: abort oversized results before a single row is
	// streamed, so the overload maps to a clean 413.
	if cap := s.cfg.MaxResultRows; cap > 0 && sol != nil {
		rows := sol.Len()
		if sol.IsGraph() {
			rows = len(sol.Graph())
		}
		if rows > cap {
			return nil, info, &OverloadError{Rows: rows, Limit: cap}
		}
	}
	return sol, info, nil
}

// estimateCost returns the planner's work estimate for prep against
// the configured backend (memoized per Prepared).
func (s *Server) estimateCost(prep *sparql.Prepared) int64 {
	if s.shards != nil {
		return prep.EstimateCostSharded(s.shards.Set())
	}
	if s.graph != nil {
		return prep.EstimateCost(s.graph)
	}
	return 0
}

// eval dispatches one query to the configured backend at the given
// morsel parallelism, armed with the server's per-query memory budget
// and, when tr is non-nil, execution tracing.
func (s *Server) eval(ctx context.Context, prep *sparql.Prepared, par int, tr *obs.Trace) (*sparql.Solutions, runInfo, error) {
	opts := []sparql.RunOption{sparql.WithParallelism(par)}
	if s.cfg.MaxQueryBytes != 0 {
		opts = append(opts, sparql.WithMemoryBudget(s.cfg.MaxQueryBytes))
	}
	if tr != nil {
		opts = append(opts, sparql.WithTrace(tr))
	}
	if s.cfg.SpeculationFactor > 0 {
		opts = append(opts, sparql.WithSpeculation(s.cfg.SpeculationFactor))
	}
	if s.shards != nil {
		if d := s.cfg.HedgeDelay; d != 0 {
			hp := sparql.HedgePolicy{}
			if d > 0 {
				hp.Delay = d
			}
			opts = append(opts, sparql.WithHedge(hp))
		}
		var rs sparql.RunStats
		var st sparql.ShardStats
		var fs sparql.FaultStats
		opts = append(opts,
			sparql.WithRunStats(&rs), sparql.WithShardStats(&st),
			sparql.WithFaultStats(&fs))
		sol, err := prep.RunShardedSolutions(ctx, s.shards.Set(), opts...)
		s.m.observeExec(rs)
		s.m.observeShard(st)
		s.m.observeFault(fs)
		s.m.observeBytes(rs.BytesCharged)
		return sol, runInfo{
			route: string(st.Route), shards: st.Shards, touched: st.ShardsTouched,
			hedges: fs.Hedges, speculations: fs.Speculations, bytes: rs.BytesCharged,
		}, err
	}
	if s.engine == nil {
		var rs sparql.RunStats
		var fs sparql.FaultStats
		opts = append(opts, sparql.WithRunStats(&rs), sparql.WithFaultStats(&fs))
		sol, err := prep.RunSolutions(ctx, s.graph, opts...)
		s.m.observeExec(rs)
		s.m.observeFault(fs)
		s.m.observeBytes(rs.BytesCharged)
		return sol, runInfo{route: "local", speculations: fs.Speculations, bytes: rs.BytesCharged}, err
	}
	s.engineMu.Lock()
	defer s.engineMu.Unlock()
	info := runInfo{route: "engine"}
	if err := ctx.Err(); err != nil { // deadline may have passed in the queue
		return nil, info, err
	}
	res, err := s.engine.Execute(prep.Query())
	if err != nil {
		return nil, info, err
	}
	return sparql.ResultsSolutions(res), info, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	triples := 0
	if s.shards != nil {
		triples = s.shards.Len()
	} else if s.graph != nil {
		triples = s.graph.Len()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"triples":        triples,
		"uptime_seconds": int(time.Since(s.started).Seconds()),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses, size := s.cache.stats()
	served, failed, timeouts, rejected, hist, meanMs := s.m.snapshot()
	parallelQueries, parallelOps, morsels := s.m.execSnapshot()
	_, execHist, serHist := s.m.histograms()
	body := map[string]any{
		"plan_cache": map[string]any{
			"hits":     hits,
			"misses":   misses,
			"size":     size,
			"capacity": s.cfg.PlanCacheSize,
		},
		"execution": map[string]any{
			"query_parallelism":  s.cfg.QueryParallelism,
			"parallel_queries":   parallelQueries,
			"parallel_ops":       parallelOps,
			"morsels_dispatched": morsels,
		},
		"in_flight":      s.m.inFlight.Load(),
		"max_concurrent": s.cfg.MaxConcurrent,
		"served":         served,
		"failed":         failed,
		"timeouts":       timeouts,
		"rejected":       rejected,
		"latency": map[string]any{
			"buckets": hist,
			"mean_ms": meanMs,
			// Stage breakdown over the same bounds: evaluation vs
			// response serialization.
			"exec_ms":      histStats(execHist),
			"serialize_ms": histStats(serHist),
		},
	}
	res := s.m.resources()
	resources := map[string]any{
		"max_query_bytes":  s.cfg.MaxQueryBytes,
		"bytes_charged":    res.bytesCharged,
		"peak_query_bytes": res.peakQueryBytes,
		"budget_aborts":    res.budgetAborts,
		"shed_queries":     res.shedQueries,
		"degraded_queries": res.degradedQueries,
	}
	if s.admit != nil {
		resources["queue_depth"] = s.admit.waiting.Load()
		resources["queue_capacity"] = s.admit.maxQueue
		resources["cost_shed_threshold"] = s.costThreshold
	}
	body["resources"] = resources
	fa := s.m.faults()
	faults := map[string]any{
		"attempts":         fa.attempts,
		"retries":          fa.retries,
		"failovers":        fa.failovers,
		"hedges":           fa.hedges,
		"hedge_wins":       fa.hedgeWins,
		"speculations":     fa.speculations,
		"speculation_wins": fa.speculationWins,
		"recovered_panics": fa.enginePanics + fa.handlerPanics,
		"partial_failures": fa.partialFailures,
		"oversize_results": fa.oversizeAborts,
	}
	if s.shards != nil {
		if h := s.shards.Set().Health; h != nil {
			faults["breaker_trips"] = h.Trips()
			faults["breakers"] = h.Snapshot()
		}
		pushdown, scatter, touched, pruned := s.m.shardSnapshot()
		body["sharding"] = map[string]any{
			"shards":            s.shards.NumShards(),
			"replicas":          s.shards.Replicas(),
			"partition":         s.shards.Strategy(),
			"subject_colocated": s.shards.SubjectColocated(),
			"pushdown_queries":  pushdown,
			"scatter_queries":   scatter,
			"shards_touched":    touched,
			"shards_pruned":     pruned,
		}
	}
	body["faults"] = faults
	body["workload"] = map[string]any{
		"shapes_tracked":    s.shapes.Len(),
		"shape_capacity":    s.shapes.Capacity(),
		"shape_evictions":   s.shapes.Evictions(),
		"trace_sample_rate": s.cfg.TraceSampleRate,
		"sampled_traces":    s.m.sampledSnapshot(),
		"trace_ring": map[string]any{
			"size":     s.ring.Len(),
			"capacity": s.ring.Cap(),
		},
		"top_shapes": s.shapes.TopK(10),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body)
}
