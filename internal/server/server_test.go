package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/shard"
)

// testGraph builds 64 subjects carrying name and age triples.
func testGraph() *rdf.Graph {
	var ts []rdf.Triple
	for i := 0; i < 64; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://ex/s%d", i))
		ts = append(ts,
			rdf.Triple{S: s, P: rdf.NewIRI("http://ex/name"), O: rdf.NewLiteral(fmt.Sprintf("n%d", i))},
			rdf.Triple{S: s, P: rdf.NewIRI("http://ex/age"), O: rdf.NewTypedLiteral(fmt.Sprint(20+i%8), rdf.XSDInteger)},
		)
	}
	return rdf.NewGraph(ts)
}

// cartesianGraph builds two disjoint n-subject branches whose join is
// a pure n×n cartesian — arbitrarily slow to evaluate in full.
func cartesianGraph(n int) *rdf.Graph {
	ts := make([]rdf.Triple, 0, 2*n)
	for i := 0; i < n; i++ {
		ts = append(ts,
			rdf.Triple{S: rdf.NewIRI(fmt.Sprintf("http://ex/a%d", i)), P: rdf.NewIRI("http://ex/p"), O: rdf.NewLiteral(fmt.Sprintf("x%d", i))},
			rdf.Triple{S: rdf.NewIRI(fmt.Sprintf("http://ex/b%d", i)), P: rdf.NewIRI("http://ex/q"), O: rdf.NewLiteral(fmt.Sprintf("y%d", i))},
		)
	}
	return rdf.NewGraph(ts)
}

// sparqlJSON is the SPARQL 1.1 JSON results document shape.
type sparqlJSON struct {
	Head struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Boolean *bool `json:"boolean"`
	Results struct {
		Bindings []map[string]struct {
			Type     string `json:"type"`
			Value    string `json:"value"`
			Lang     string `json:"xml:lang"`
			Datatype string `json:"datatype"`
		} `json:"bindings"`
	} `json:"results"`
}

func getQuery(t *testing.T, s *Server, query string, extra string, header map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/sparql?query="+url.QueryEscape(query)+extra, nil)
	for k, v := range header {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestServeSelectJSON(t *testing.T) {
	s := New(testGraph(), Config{})
	rec := getQuery(t, s, `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n } ORDER BY ?n LIMIT 3`, "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Fatalf("content type %q", ct)
	}
	var doc sparqlJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if got := doc.Head.Vars; len(got) != 2 || got[0] != "s" || got[1] != "n" {
		t.Fatalf("head vars %v", got)
	}
	if len(doc.Results.Bindings) != 3 {
		t.Fatalf("got %d bindings, want 3", len(doc.Results.Bindings))
	}
	b0 := doc.Results.Bindings[0]
	if b0["s"].Type != "uri" || b0["s"].Value != "http://ex/s0" {
		t.Fatalf("first subject binding %+v", b0["s"])
	}
	if b0["n"].Type != "literal" || b0["n"].Value != "n0" {
		t.Fatalf("first name binding %+v", b0["n"])
	}
}

func TestServeTSV(t *testing.T) {
	s := New(testGraph(), Config{})
	rec := getQuery(t, s, `SELECT ?s ?a WHERE { ?s <http://ex/age> ?a } ORDER BY ?s LIMIT 2`, "",
		map[string]string{"Accept": "text/tab-separated-values"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	lines := strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), rec.Body.String())
	}
	if lines[0] != "?s\t?a" {
		t.Fatalf("header line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "<http://ex/s0>\t") || !strings.Contains(lines[1], "XMLSchema#integer") {
		t.Fatalf("row line %q", lines[1])
	}
}

func TestServePostForms(t *testing.T) {
	s := New(testGraph(), Config{})
	query := `ASK WHERE { ?s <http://ex/name> "n5" }`

	form := url.Values{"query": {query}}
	req := httptest.NewRequest(http.MethodPost, "/sparql", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"boolean":true`) {
		t.Fatalf("form POST: status %d body %s", rec.Code, rec.Body.String())
	}

	req = httptest.NewRequest(http.MethodPost, "/sparql", strings.NewReader(query))
	req.Header.Set("Content-Type", "application/sparql-query")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"boolean":true`) {
		t.Fatalf("raw POST: status %d body %s", rec.Code, rec.Body.String())
	}

	// Protocol parameters carried in the form body — not the URL —
	// must be honored too: format= picks the serialization and
	// timeout= the deadline (an unparseable cap would fall back to the
	// default, not error).
	form = url.Values{
		"query":   {`SELECT ?s WHERE { ?s <http://ex/name> "n5" }`},
		"format":  {"tsv"},
		"timeout": {"5s"},
	}
	req = httptest.NewRequest(http.MethodPost, "/sparql", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.HasPrefix(rec.Body.String(), "?s") {
		t.Fatalf("form POST with format=tsv: status %d body %q", rec.Code, rec.Body.String())
	}
}

func TestServeConstructNTriples(t *testing.T) {
	s := New(testGraph(), Config{})
	rec := getQuery(t, s, `CONSTRUCT { ?s <http://ex/label> ?n } WHERE { ?s <http://ex/name> ?n }`, "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/n-triples" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n")
	if len(lines) != 64 {
		t.Fatalf("got %d triples, want 64", len(lines))
	}
	if !strings.HasSuffix(lines[0], " .") {
		t.Fatalf("not N-Triples: %q", lines[0])
	}
}

func TestServeErrors(t *testing.T) {
	s := New(testGraph(), Config{})
	if rec := getQuery(t, s, `SELECT WHERE`, "", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed query: status %d", rec.Code)
	}
	if rec := getQuery(t, s, ``, "", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty query: status %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodDelete, "/sparql", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: status %d", rec.Code)
	}
}

// A query that cannot finish inside its deadline must come back as 504
// promptly, not run to completion.
func TestServeQueryTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluates a large cartesian")
	}
	s := New(cartesianGraph(4096), Config{DefaultTimeout: 20 * time.Millisecond})
	start := time.Now()
	rec := getQuery(t, s, `SELECT * WHERE { ?a <http://ex/p> ?x . ?b <http://ex/q> ?y }`, "", nil)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timed-out query took %v to come back", elapsed)
	}
}

// With the worker pool full, a query whose deadline expires in the
// admission queue is rejected with 503 (and counted as rejected).
func TestServeAdmissionReject(t *testing.T) {
	s := New(testGraph(), Config{MaxConcurrent: 2})
	s.sem <- struct{}{} // occupy both slots
	s.sem <- struct{}{}
	defer func() { <-s.sem; <-s.sem }()
	rec := getQuery(t, s, `SELECT ?s WHERE { ?s ?p ?o }`, "&timeout=30ms", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	_, _, _, rejected, _, _ := s.m.snapshot()
	if rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", rejected)
	}
}

func TestHealthzAndStats(t *testing.T) {
	s := New(testGraph(), Config{})
	query := `SELECT ?s WHERE { ?s <http://ex/name> ?n }`
	for i := 0; i < 3; i++ {
		if rec := getQuery(t, s, query, "", nil); rec.Code != http.StatusOK {
			t.Fatalf("query %d: status %d", i, rec.Code)
		}
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["triples"].(float64) != 128 {
		t.Fatalf("healthz %v", health)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats struct {
		PlanCache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
			Size   int    `json:"size"`
		} `json:"plan_cache"`
		InFlight  int    `json:"in_flight"`
		Served    uint64 `json:"served"`
		Execution struct {
			QueryParallelism  int    `json:"query_parallelism"`
			ParallelQueries   uint64 `json:"parallel_queries"`
			MorselsDispatched uint64 `json:"morsels_dispatched"`
		} `json:"execution"`
		Latency struct {
			Buckets []histogramBucket `json:"buckets"`
		} `json:"latency"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.PlanCache.Misses != 1 || stats.PlanCache.Hits != 2 || stats.PlanCache.Size != 1 {
		t.Fatalf("plan cache stats %+v", stats.PlanCache)
	}
	if stats.Served != 3 || stats.InFlight != 0 {
		t.Fatalf("served=%d inFlight=%d", stats.Served, stats.InFlight)
	}
	var histTotal uint64
	for _, b := range stats.Latency.Buckets {
		histTotal += b.Count
	}
	if histTotal != 3 {
		t.Fatalf("latency histogram holds %d observations, want 3", histTotal)
	}
	// The 128-triple test graph is far below the morsel threshold:
	// parallelism is configured (GOMAXPROCS default) but no morsels
	// should have been dispatched.
	if stats.Execution.QueryParallelism < 1 {
		t.Fatalf("query_parallelism = %d, want >= 1", stats.Execution.QueryParallelism)
	}
	if stats.Execution.ParallelQueries != 0 || stats.Execution.MorselsDispatched != 0 {
		t.Fatalf("execution stats %+v, want no morsel dispatch on a tiny graph", stats.Execution)
	}
}

// TestStatsCountMorsels drives a morsel-sized graph through the server
// at forced parallelism and checks the /stats execution counters move.
func TestStatsCountMorsels(t *testing.T) {
	var ts []rdf.Triple
	for i := 0; i < 4096; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://ex/s%d", i))
		ts = append(ts, rdf.Triple{S: s, P: rdf.NewIRI("http://ex/name"), O: rdf.NewLiteral(fmt.Sprintf("n%d", i))})
	}
	s := New(rdf.NewGraph(ts), Config{QueryParallelism: 4})
	if rec := getQuery(t, s, `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n }`, "", nil); rec.Code != http.StatusOK {
		t.Fatalf("query status %d", rec.Code)
	}
	pq, ops, morsels := s.m.execSnapshot()
	if pq != 1 || ops == 0 || morsels == 0 {
		t.Fatalf("exec counters = (%d, %d, %d), want one parallel query with morsels", pq, ops, morsels)
	}
}

// The cache must return the identical *Prepared on a hit (that pointer
// identity is what makes a hit skip parse and compile), respect LRU
// order, and honor the disabled mode.
func TestPlanCacheLRU(t *testing.T) {
	c := newPlanCache(2)
	q1 := `SELECT ?s WHERE { ?s ?p ?o } LIMIT 1`
	q2 := `SELECT ?s WHERE { ?s ?p ?o } LIMIT 2`
	q3 := `SELECT ?s WHERE { ?s ?p ?o } LIMIT 3`
	p1, cached, err := c.prepare(q1)
	if err != nil || cached {
		t.Fatalf("first lookup: cached=%v err=%v", cached, err)
	}
	if _, _, err := c.prepare(q2); err != nil {
		t.Fatal(err)
	}
	p1b, cached, err := c.prepare(q1) // moves q1 to the front
	if err != nil || !cached || p1b != p1 {
		t.Fatalf("hit: cached=%v same=%v err=%v", cached, p1b == p1, err)
	}
	if _, _, err := c.prepare(q3); err != nil { // evicts q2 (q1 was re-used)
		t.Fatal(err)
	}
	if _, cached, _ := c.prepare(q1); !cached {
		t.Fatal("q1 should have survived eviction (recently used)")
	}
	if _, cached, _ := c.prepare(q2); cached {
		t.Fatal("q2 should have been evicted")
	}
	hits, misses, size := c.stats()
	if size != 2 {
		t.Fatalf("size %d, want 2", size)
	}
	if hits != 2 || misses != 4 {
		t.Fatalf("hits=%d misses=%d, want 2/4", hits, misses)
	}

	d := newPlanCache(-1)
	if _, cached, err := d.prepare(q1); err != nil || cached {
		t.Fatalf("disabled cache: cached=%v err=%v", cached, err)
	}
	if _, cached, err := d.prepare(q1); err != nil || cached {
		t.Fatalf("disabled cache second lookup: cached=%v err=%v", cached, err)
	}
}

// Many clients hammering one server must be race-free end to end:
// shared graph, shared plan cache, shared metrics. Run with -race.
func TestServeConcurrentClients(t *testing.T) {
	s := New(testGraph(), Config{MaxConcurrent: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	queries := []string{
		`SELECT ?s ?n WHERE { ?s <http://ex/name> ?n } ORDER BY ?n LIMIT 5`,
		`SELECT DISTINCT ?a WHERE { ?s <http://ex/age> ?a } ORDER BY ?a`,
		`ASK WHERE { ?s <http://ex/name> "n7" }`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				q := queries[(i+j)%len(queries)]
				resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(q))
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
				}
				var doc sparqlJSON
				if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
					errs <- err
				}
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses, _ := s.cache.stats()
	if hits+misses != 64 {
		t.Fatalf("cache saw %d lookups, want 64", hits+misses)
	}
	if misses > uint64(len(queries)) {
		t.Fatalf("%d cache misses for %d distinct queries", misses, len(queries))
	}
}

// appendNTriplesTerm must stay byte-identical to rdf.Term.String (the
// canonical N-Triples rendering) across every term kind and escape.
func TestAppendNTriplesTermParity(t *testing.T) {
	terms := []rdf.Term{
		rdf.NewIRI("http://ex/s"),
		rdf.NewBlank("b0"),
		rdf.NewLiteral("plain"),
		rdf.NewLiteral("quo\"te back\\slash"),
		rdf.NewLiteral("line\nbreak\ttab\rret"),
		rdf.NewLangLiteral("hallo", "de"),
		rdf.NewTypedLiteral("42", rdf.XSDInteger),
	}
	for _, term := range terms {
		if got := string(appendNTriplesTerm(nil, term)); got != term.String() {
			t.Fatalf("appendNTriplesTerm = %q, Term.String = %q", got, term.String())
		}
	}
}

// The JSON writer must emit valid JSON even for values needing escapes.
func TestServeJSONEscaping(t *testing.T) {
	g := rdf.NewGraph([]rdf.Triple{{
		S: rdf.NewIRI("http://ex/s"),
		P: rdf.NewIRI("http://ex/note"),
		O: rdf.NewLiteral("a \"quoted\"\nmulti\tline\\thing\x01"),
	}})
	s := New(g, Config{})
	rec := getQuery(t, s, `SELECT ?o WHERE { ?s <http://ex/note> ?o }`, "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var doc sparqlJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if got := doc.Results.Bindings[0]["o"].Value; got != "a \"quoted\"\nmulti\tline\\thing\x01" {
		t.Fatalf("round-tripped value %q", got)
	}
}

// Malformed POST bodies are client errors (400); only genuinely
// unsupported methods answer 405.
func TestServePostBadForm(t *testing.T) {
	s := New(testGraph(), Config{})
	req := httptest.NewRequest(http.MethodPost, "/sparql", strings.NewReader("query=%zz"))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed form: status %d, want 400", rec.Code)
	}
	req = httptest.NewRequest(http.MethodPut, "/sparql", strings.NewReader("query=x"))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("PUT: status %d, want 405", rec.Code)
	}
}

// shardedTestServer builds a 4-shard subject-hash backend over the
// same dataset testGraph serves.
func shardedTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	sg, err := shard.BuildByName(testGraph().Triples(), "hash-subject", 4)
	if err != nil {
		t.Fatal(err)
	}
	return NewSharded(sg, cfg)
}

// TestServeSharded pins the sharded backend end to end: a sharded
// server answers exactly what the single-graph server answers, and
// /stats reports the sharding block with routed-query counters.
func TestServeSharded(t *testing.T) {
	single := New(testGraph(), Config{})
	sharded := shardedTestServer(t, Config{})

	star := `SELECT ?s ?n ?a WHERE { ?s <http://ex/name> ?n . ?s <http://ex/age> ?a } ORDER BY ?s LIMIT 5`
	// OPTIONAL is not a sole BGP, so this one takes the scatter route.
	optional := `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n OPTIONAL { ?s <http://ex/age> ?a } } ORDER BY ?n LIMIT 3`
	for _, q := range []string{star, optional} {
		want := getQuery(t, single, q, "", nil)
		got := getQuery(t, sharded, q, "", nil)
		if got.Code != http.StatusOK {
			t.Fatalf("sharded status %d: %s", got.Code, got.Body.String())
		}
		if want.Body.String() != got.Body.String() {
			t.Fatalf("sharded response differs for %q:\nwant %s\ngot  %s", q, want.Body.String(), got.Body.String())
		}
	}

	rec := httptest.NewRecorder()
	sharded.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats struct {
		Sharding struct {
			Shards           int    `json:"shards"`
			Partition        string `json:"partition"`
			SubjectColocated bool   `json:"subject_colocated"`
			Pushdown         uint64 `json:"pushdown_queries"`
			Scatter          uint64 `json:"scatter_queries"`
			Touched          uint64 `json:"shards_touched"`
			Pruned           uint64 `json:"shards_pruned"`
		} `json:"sharding"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("invalid /stats JSON: %v\n%s", err, rec.Body.String())
	}
	sh := stats.Sharding
	if sh.Shards != 4 || sh.Partition != "hash-subject" || !sh.SubjectColocated {
		t.Fatalf("sharding block %+v", sh)
	}
	// The star query pushed down; the OPTIONAL query scattered.
	if sh.Pushdown != 1 || sh.Scatter != 1 {
		t.Fatalf("route counters pushdown=%d scatter=%d, want 1/1", sh.Pushdown, sh.Scatter)
	}
	if sh.Touched == 0 {
		t.Fatalf("no shards touched: %+v", sh)
	}

	rec = httptest.NewRecorder()
	sharded.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if !strings.Contains(rec.Body.String(), `"triples":128`) {
		t.Fatalf("healthz over shards: %s", rec.Body.String())
	}
}
