package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sparql"
)

// latencyBucketsMs are the upper bounds (inclusive, in milliseconds) of
// the per-query latency histogram; the final implicit bucket is +Inf.
var latencyBucketsMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// metrics aggregates the server's operational counters: queries by
// outcome, the in-flight gauge, and the latency histogram over
// successfully served queries. The gauge is atomic (read on the hot
// path by admission); the rest is mutex-guarded and only touched once
// per request.
type metrics struct {
	inFlight atomic.Int64

	mu        sync.Mutex
	served    uint64 // answered successfully
	failed    uint64 // parse errors, evaluation errors
	timeouts  uint64 // per-query deadline exceeded / client gone
	rejected  uint64 // admission control turned the query away
	buckets   []uint64
	count     uint64
	totalSecs float64

	// Stage histograms over successfully served queries: engine
	// evaluation time and response serialization time, on the same
	// bucket bounds as the end-to-end histogram. Splitting the two
	// surfaces queries that are cheap to evaluate but expensive to
	// stream (large results, slow clients).
	execBuckets   []uint64
	execCount     uint64
	execTotalSecs float64
	serBuckets    []uint64
	serCount      uint64
	serTotalSecs  float64

	// Morsel execution counters (sparql.RunStats aggregated across
	// reference-evaluator queries): how many queries actually split
	// work into morsels, how many parallel scans/probes they ran, and
	// how many morsels those dispatched.
	parallelQueries uint64
	parallelOps     uint64
	morsels         uint64

	// Sharded execution counters (sparql.ShardStats aggregated across
	// queries on a sharded backend): queries by route, and cumulative
	// shards scanned vs pruned.
	pushdownQueries uint64
	scatterQueries  uint64
	shardsTouched   uint64
	shardsPruned    uint64

	// Fault-handling counters (sparql.FaultStats aggregated across
	// queries, plus the server-side recoveries): replica attempts,
	// retried attempts, failovers, panics recovered in the engine and
	// in the HTTP recovery middleware, queries lost to partial shard
	// failure, and queries aborted by the result-size guard.
	faultAttempts   uint64
	faultRetries    uint64
	faultFailovers  uint64
	enginePanics    uint64
	handlerPanics   uint64
	partialFailures uint64
	oversizeAborts  uint64

	// Tail-latency counters (hedged shard ops and speculative morsel
	// re-execution, sparql.FaultStats): launches and wins of each.
	hedges          uint64
	hedgeWins       uint64
	speculations    uint64
	speculationWins uint64

	// Resource-governance counters: queries shed by admission control,
	// queries admitted at degraded parallelism, queries aborted by
	// their memory budget, cumulative bytes charged against budgets,
	// and the largest single query's charge.
	shedQueries     uint64
	degradedQueries uint64
	budgetAborts    uint64
	bytesCharged    uint64
	peakQueryBytes  int64

	// Workload-observatory counter: requests picked by the 1-in-N trace
	// sampler (Config.TraceSampleRate).
	sampledTraces uint64
}

func newMetrics() *metrics {
	return &metrics{
		buckets:     make([]uint64, len(latencyBucketsMs)+1),
		execBuckets: make([]uint64, len(latencyBucketsMs)+1),
		serBuckets:  make([]uint64, len(latencyBucketsMs)+1),
	}
}

// latencyBucket returns the index of the histogram bucket d falls in.
func latencyBucket(d time.Duration) int {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMs) && ms > latencyBucketsMs[i] {
		i++
	}
	return i
}

// observe records one successfully served query and its end-to-end
// latency (request arrival to response write complete).
func (m *metrics) observe(d time.Duration) {
	i := latencyBucket(d)
	m.mu.Lock()
	m.served++
	m.buckets[i]++
	m.count++
	m.totalSecs += d.Seconds()
	m.mu.Unlock()
}

// observeStages records one served query's evaluation and
// serialization times into the per-stage histograms.
func (m *metrics) observeStages(exec, serialize time.Duration) {
	ei, si := latencyBucket(exec), latencyBucket(serialize)
	m.mu.Lock()
	m.execBuckets[ei]++
	m.execCount++
	m.execTotalSecs += exec.Seconds()
	m.serBuckets[si]++
	m.serCount++
	m.serTotalSecs += serialize.Seconds()
	m.mu.Unlock()
}

// observeExec folds one query's morsel-execution stats into the
// aggregate counters.
func (m *metrics) observeExec(rs sparql.RunStats) {
	if rs.ParallelOps == 0 {
		return
	}
	m.mu.Lock()
	m.parallelQueries++
	m.parallelOps += uint64(rs.ParallelOps)
	m.morsels += uint64(rs.Morsels)
	m.mu.Unlock()
}

// execSnapshot renders the morsel-execution counters for /stats.
func (m *metrics) execSnapshot() (parallelQueries, parallelOps, morsels uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.parallelQueries, m.parallelOps, m.morsels
}

// observeShard folds one sharded query's execution report into the
// aggregate counters.
func (m *metrics) observeShard(st sparql.ShardStats) {
	if st.Shards == 0 {
		return
	}
	m.mu.Lock()
	if st.Route == sparql.RoutePushdown {
		m.pushdownQueries++
	} else {
		m.scatterQueries++
	}
	m.shardsTouched += uint64(st.ShardsTouched)
	m.shardsPruned += uint64(st.ShardsPruned)
	m.mu.Unlock()
}

// shardSnapshot renders the sharded-execution counters for /stats.
func (m *metrics) shardSnapshot() (pushdown, scatter, touched, pruned uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pushdownQueries, m.scatterQueries, m.shardsTouched, m.shardsPruned
}

func (m *metrics) fail()    { m.mu.Lock(); m.failed++; m.mu.Unlock() }
func (m *metrics) timeout() { m.mu.Lock(); m.timeouts++; m.mu.Unlock() }
func (m *metrics) reject()  { m.mu.Lock(); m.rejected++; m.mu.Unlock() }

// panicked records one panic recovered by the HTTP middleware.
func (m *metrics) panicked() { m.mu.Lock(); m.handlerPanics++; m.failed++; m.mu.Unlock() }

// partialFailure records one query lost to total shard failure.
func (m *metrics) partialFailure() { m.mu.Lock(); m.partialFailures++; m.failed++; m.mu.Unlock() }

// oversize records one query aborted by the MaxResultRows guard.
func (m *metrics) oversize() { m.mu.Lock(); m.oversizeAborts++; m.failed++; m.mu.Unlock() }

// shed records one query turned away immediately by admission
// control; it also counts as rejected (the client saw a 503 either
// way — shed distinguishes the fast-fail path).
func (m *metrics) shed() { m.mu.Lock(); m.shedQueries++; m.rejected++; m.mu.Unlock() }

// degrade records one query admitted at reduced parallelism.
func (m *metrics) degrade() { m.mu.Lock(); m.degradedQueries++; m.mu.Unlock() }

// sampledTrace records one request armed by the trace sampler.
func (m *metrics) sampledTrace() { m.mu.Lock(); m.sampledTraces++; m.mu.Unlock() }

// sampledSnapshot reads the sampled-trace counter.
func (m *metrics) sampledSnapshot() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sampledTraces
}

// budgetAbort records one query aborted by its memory budget.
func (m *metrics) budgetAbort() { m.mu.Lock(); m.budgetAborts++; m.failed++; m.mu.Unlock() }

// observeBytes folds one query's budget charges into the cumulative
// and peak gauges (n is RunStats.BytesCharged; 0 when no budget was
// armed).
func (m *metrics) observeBytes(n int64) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	m.bytesCharged += uint64(n)
	if n > m.peakQueryBytes {
		m.peakQueryBytes = n
	}
	m.mu.Unlock()
}

// resourceSnapshot renders the governance counters for /stats.
type resourceSnapshot struct {
	shedQueries, degradedQueries, budgetAborts uint64
	bytesCharged                               uint64
	peakQueryBytes                             int64
}

func (m *metrics) resources() resourceSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return resourceSnapshot{
		shedQueries:     m.shedQueries,
		degradedQueries: m.degradedQueries,
		budgetAborts:    m.budgetAborts,
		bytesCharged:    m.bytesCharged,
		peakQueryBytes:  m.peakQueryBytes,
	}
}

// observeFault folds one query's fault counters into the aggregate.
func (m *metrics) observeFault(fs sparql.FaultStats) {
	if fs.Attempts == 0 && fs.Retries == 0 && fs.RecoveredPanics == 0 &&
		fs.Hedges == 0 && fs.Speculations == 0 {
		return
	}
	m.mu.Lock()
	m.faultAttempts += uint64(fs.Attempts)
	m.faultRetries += uint64(fs.Retries)
	m.faultFailovers += uint64(fs.Failovers)
	m.enginePanics += uint64(fs.RecoveredPanics)
	m.hedges += uint64(fs.Hedges)
	m.hedgeWins += uint64(fs.HedgeWins)
	m.speculations += uint64(fs.Speculations)
	m.speculationWins += uint64(fs.SpeculationWins)
	m.mu.Unlock()
}

// faultSnapshot renders the fault counters for /stats.
type faultSnapshot struct {
	attempts, retries, failovers    uint64
	hedges, hedgeWins               uint64
	speculations, speculationWins   uint64
	enginePanics, handlerPanics     uint64
	partialFailures, oversizeAborts uint64
}

func (m *metrics) faults() faultSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return faultSnapshot{
		attempts:        m.faultAttempts,
		retries:         m.faultRetries,
		failovers:       m.faultFailovers,
		hedges:          m.hedges,
		hedgeWins:       m.hedgeWins,
		speculations:    m.speculations,
		speculationWins: m.speculationWins,
		enginePanics:    m.enginePanics,
		handlerPanics:   m.handlerPanics,
		partialFailures: m.partialFailures,
		oversizeAborts:  m.oversizeAborts,
	}
}

// histSnapshot is a point-in-time copy of one latency histogram:
// non-cumulative bucket counts (len(latencyBucketsMs)+1, last is
// +Inf), total observation count, and the sum in seconds.
type histSnapshot struct {
	buckets   []uint64
	count     uint64
	totalSecs float64
}

// histograms copies the end-to-end, evaluation, and serialization
// histograms for the /metrics and /stats renderers.
func (m *metrics) histograms() (total, exec, serialize histSnapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := func(b []uint64, c uint64, s float64) histSnapshot {
		out := make([]uint64, len(b))
		copy(out, b)
		return histSnapshot{buckets: out, count: c, totalSecs: s}
	}
	return cp(m.buckets, m.count, m.totalSecs),
		cp(m.execBuckets, m.execCount, m.execTotalSecs),
		cp(m.serBuckets, m.serCount, m.serTotalSecs)
}

// histogramBucket is one row of the latency histogram in /stats.
type histogramBucket struct {
	LeMs  float64 `json:"le_ms"` // upper bound; 0 means +Inf
	Count uint64  `json:"count"`
}

// histStats renders one histogram snapshot in the /stats JSON shape.
func histStats(h histSnapshot) map[string]any {
	buckets := make([]histogramBucket, 0, len(h.buckets))
	for i, c := range h.buckets {
		b := histogramBucket{Count: c}
		if i < len(latencyBucketsMs) {
			b.LeMs = latencyBucketsMs[i]
		}
		buckets = append(buckets, b)
	}
	meanMs := 0.0
	if h.count > 0 {
		meanMs = h.totalSecs / float64(h.count) * 1000
	}
	return map[string]any{"buckets": buckets, "mean_ms": meanMs}
}

// snapshot renders the counters for the /stats endpoint.
func (m *metrics) snapshot() (served, failed, timeouts, rejected uint64, hist []histogramBucket, meanMs float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	hist = make([]histogramBucket, 0, len(m.buckets))
	for i, c := range m.buckets {
		b := histogramBucket{Count: c}
		if i < len(latencyBucketsMs) {
			b.LeMs = latencyBucketsMs[i]
		}
		hist = append(hist, b)
	}
	if m.count > 0 {
		meanMs = m.totalSecs / float64(m.count) * 1000
	}
	return m.served, m.failed, m.timeouts, m.rejected, hist, meanMs
}
