package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Workload-observatory endpoints: the retained-trace browser
// (/debug/queries), the shape-registry view (/debug/shapes), and the
// live dashboard (/debug/dash). Everything here reads snapshots of
// state the serving path maintains anyway, so hitting these endpoints
// never perturbs query execution.

// handleDebugQueries serves the trace ring. Bare /debug/queries is the
// index — retained traces newest-first, metadata only — and
// /debug/queries/<request-id> is one request's full span tree, as JSON
// (default) or indented text (?format=text).
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/debug/queries")
	id = strings.TrimPrefix(id, "/")
	if id == "" {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"capacity": s.ring.Cap(),
			"retained": s.ring.Len(),
			"traces":   s.ring.List(),
		})
		return
	}
	rt, ok := s.ring.Get(id)
	if !ok {
		s.httpError(w, r, "debug: no retained trace for request id "+id, http.StatusNotFound)
		return
	}
	if param(r, "format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, rt.Trace.Text())
		return
	}
	body := map[string]any{
		"request_id":  rt.RequestID,
		"fingerprint": rt.Fingerprint,
		"query":       rt.Query,
		"route":       rt.Route,
		"reason":      rt.Reason,
		"duration_ms": rt.DurationMs,
		"status":      rt.Status,
		"when":        rt.When,
		"trace":       json.RawMessage(rt.Trace.JSON()),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body)
}

// handleDebugShapes serves the plan-fingerprint registry: the top-k
// shapes by request count (?k=, default 50, k=0 for all retained)
// plus the registry's bounds.
func (s *Server) handleDebugShapes(w http.ResponseWriter, r *http.Request) {
	k := 50
	if v := param(r, "k"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			k = n
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"tracked":   s.shapes.Len(),
		"capacity":  s.shapes.Capacity(),
		"evictions": s.shapes.Evictions(),
		"shapes":    s.shapes.TopK(k),
	})
}

// handleDebugDash serves the live dashboard: one self-contained HTML
// page (no external assets, no frameworks) that polls /stats,
// /debug/shapes, and /debug/queries every two seconds and renders the
// serving counters, the shape heavy-hitter table, and the recent
// traces — an in-process stand-in for the Spark UI the surveyed
// systems lean on.
func (s *Server) handleDebugDash(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, dashHTML)
}

const dashHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>rdfserve workload observatory</title>
<style>
body { font: 13px/1.5 system-ui, sans-serif; margin: 1.5rem; background: #14161a; color: #d8dce2; }
h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin: 1.2rem 0 .4rem; color: #9fb4d0; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: .25rem .6rem; border-bottom: 1px solid #2a2f37; font-variant-numeric: tabular-nums; }
th { color: #8a93a1; font-weight: 600; }
td.num, th.num { text-align: right; }
code { color: #7fd1a8; }
.cards { display: flex; flex-wrap: wrap; gap: .8rem; }
.card { background: #1c2027; border: 1px solid #2a2f37; border-radius: 6px; padding: .6rem .9rem; min-width: 7.5rem; }
.card .v { font-size: 1.3rem; font-weight: 700; } .card .k { color: #8a93a1; font-size: .75rem; }
.err { color: #e07a7a; } .ok { color: #7fd1a8; }
#status { color: #8a93a1; font-size: .8rem; }
a { color: #9fb4d0; }
</style>
</head>
<body>
<h1>rdfserve workload observatory</h1>
<div id="status">loading…</div>
<div class="cards" id="cards"></div>
<h2>Query shapes (top by count)</h2>
<table id="shapes"><thead><tr>
<th>fingerprint</th><th>class</th><th class="num">count</th><th class="num">errors</th>
<th class="num">cache hits</th><th class="num">p50 ms</th><th class="num">p95 ms</th>
<th class="num">p99 ms</th><th class="num">mean rows</th><th>route</th><th>example</th>
</tr></thead><tbody></tbody></table>
<h2>Recent traces (<a href="/debug/queries">/debug/queries</a>)</h2>
<table id="traces"><thead><tr>
<th>request</th><th>reason</th><th>route</th><th class="num">ms</th><th>fingerprint</th><th>query</th>
</tr></thead><tbody></tbody></table>
<script>
"use strict";
function el(tag, cls, text) {
  const e = document.createElement(tag);
  if (cls) e.className = cls;
  if (text !== undefined) e.textContent = text;
  return e;
}
function card(k, v, cls) {
  const c = el("div", "card");
  c.appendChild(el("div", "v" + (cls ? " " + cls : ""), String(v)));
  c.appendChild(el("div", "k", k));
  return c;
}
function fmtRoutes(routes) {
  return Object.entries(routes || {}).map(([k, v]) => k + ":" + v).join(" ");
}
async function refresh() {
  try {
    const [stats, shapes, traces] = await Promise.all([
      fetch("/stats").then(r => r.json()),
      fetch("/debug/shapes?k=25").then(r => r.json()),
      fetch("/debug/queries").then(r => r.json()),
    ]);
    const cards = document.getElementById("cards");
    cards.replaceChildren(
      card("served", stats.served),
      card("failed", stats.failed, stats.failed > 0 ? "err" : "ok"),
      card("timeouts", stats.timeouts),
      card("rejected", stats.rejected),
      card("in flight", stats.in_flight),
      card("mean ms", (stats.latency && stats.latency.mean_ms || 0).toFixed(2)),
      card("shapes tracked", shapes.tracked + "/" + shapes.capacity),
      card("traces retained", traces.retained + "/" + traces.capacity),
    );
    const stb = document.querySelector("#shapes tbody");
    stb.replaceChildren(...(shapes.shapes || []).map(sh => {
      const tr = el("tr");
      const fp = el("td"); fp.appendChild(el("code", "", sh.fingerprint)); tr.appendChild(fp);
      tr.appendChild(el("td", "", sh.class));
      tr.appendChild(el("td", "num", sh.count));
      tr.appendChild(el("td", sh.errors > 0 ? "num err" : "num", sh.errors));
      tr.appendChild(el("td", "num", sh.cache_hits));
      tr.appendChild(el("td", "num", sh.latency_p50_ms));
      tr.appendChild(el("td", "num", sh.latency_p95_ms));
      tr.appendChild(el("td", "num", sh.latency_p99_ms));
      tr.appendChild(el("td", "num", sh.mean_rows.toFixed(1)));
      tr.appendChild(el("td", "", fmtRoutes(sh.routes)));
      tr.appendChild(el("td", "", (sh.example || "").slice(0, 80)));
      return tr;
    }));
    const ttb = document.querySelector("#traces tbody");
    ttb.replaceChildren(...(traces.traces || []).map(t => {
      const tr = el("tr");
      const a = el("a", "", t.request_id);
      a.href = "/debug/queries/" + encodeURIComponent(t.request_id);
      const td = el("td"); td.appendChild(a); tr.appendChild(td);
      tr.appendChild(el("td", "", t.reason));
      tr.appendChild(el("td", "", t.route || ""));
      tr.appendChild(el("td", "num", t.duration_ms.toFixed(2)));
      const fp = el("td"); fp.appendChild(el("code", "", t.fingerprint || "")); tr.appendChild(fp);
      tr.appendChild(el("td", "", (t.query || "").slice(0, 80)));
      return tr;
    }));
    document.getElementById("status").textContent =
      "live — refreshed " + new Date().toLocaleTimeString();
  } catch (err) {
    document.getElementById("status").textContent = "refresh failed: " + err;
  }
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
`
