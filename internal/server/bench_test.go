package server

// Serving-path benchmarks. The cached/uncached pair quantifies what the
// prepared-plan cache buys: a hit skips lexing, parsing, slot-table
// construction, and (through the Prepared per-graph plan memo) BGP
// constant encoding and join ordering — the request goes straight to
// evaluation and streaming. Run with
//
//	go test ./internal/server -run xxx -bench . -benchmem

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

// BenchmarkServeCachedQuery serves the same SELECT through the full
// HTTP handler with the plan cache enabled (every iteration after the
// first is a hit) and disabled (every iteration parses and compiles).
func BenchmarkServeCachedQuery(b *testing.B) {
	g := testGraph()
	target := "/sparql?query=" + url.QueryEscape(
		`SELECT ?s ?n ?a WHERE { ?s <http://ex/name> ?n . ?s <http://ex/age> ?a } ORDER BY ?n LIMIT 10`)
	run := func(b *testing.B, s *Server) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d", rec.Code)
			}
		}
	}
	b.Run("cache-hit", func(b *testing.B) {
		s := New(g, Config{})
		rec := httptest.NewRecorder() // warm: the single miss
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		run(b, s)
		hits, misses, _ := s.cache.stats()
		if misses != 1 || hits != uint64(b.N) {
			b.Fatalf("hits=%d misses=%d over %d requests: cache not exercised", hits, misses, b.N)
		}
	})
	b.Run("cache-off", func(b *testing.B) {
		run(b, New(g, Config{PlanCacheSize: -1}))
	})
}

// BenchmarkServeStreamTSV measures the streaming TSV writer on a
// result of a few thousand rows (id-space decode per row, no []Binding
// materialization).
func BenchmarkServeStreamTSV(b *testing.B) {
	g := cartesianGraph(2048) // SELECT over one branch: 2048 rows
	s := New(g, Config{})
	target := "/sparql?format=tsv&query=" + url.QueryEscape(
		`SELECT ?a ?x WHERE { ?a <http://ex/p> ?x }`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
		if i == 0 && rec.Body.Len() == 0 {
			b.Fatal("empty body")
		}
	}
}
