package server

import (
	"bufio"
	"context"
	"io"
	"net/http"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// The streaming writers serialize a Solutions row by row: each
// surviving id-space row is decoded term by term (Solutions.Term)
// straight into the response buffer, so a million-row result never
// exists as []Binding — the only per-query allocations are the reused
// scratch buffer and the bufio window. Rows already written cannot be
// unwritten, so mid-stream cancellation truncates the response; the
// periodic context check bounds how much work a disconnected client
// can still cost.

// streamFlushEvery is how many rows are written between explicit
// flushes (and context checks) while streaming.
const streamFlushEvery = 512

// checkStream polls the context and flushes the buffered window every
// streamFlushEvery rows, so long results reach slow readers
// incrementally and abandoned queries stop consuming the worker slot.
func checkStream(ctx context.Context, bw *bufio.Writer, under io.Writer, row int) error {
	if row%streamFlushEvery != 0 || row == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if f, ok := under.(http.Flusher); ok {
		f.Flush()
	}
	return nil
}

// appendJSONString appends s as a JSON string literal (quoted and
// escaped) to buf. UTF-8 passes through unescaped, which JSON allows.
func appendJSONString(buf []byte, s string) []byte {
	const hex = "0123456789abcdef"
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			buf = append(buf, '\\', '"')
		case c == '\\':
			buf = append(buf, '\\', '\\')
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\r':
			buf = append(buf, '\\', 'r')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c < 0x20:
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

// appendJSONTerm appends one RDF term in SPARQL 1.1 Query Results JSON
// form: {"type":...,"value":...[,"xml:lang":...][,"datatype":...]}.
func appendJSONTerm(buf []byte, t rdf.Term) []byte {
	buf = append(buf, `{"type":`...)
	switch {
	case t.IsIRI():
		buf = append(buf, `"uri"`...)
	case t.IsBlank():
		buf = append(buf, `"bnode"`...)
	default:
		buf = append(buf, `"literal"`...)
	}
	buf = append(buf, `,"value":`...)
	buf = appendJSONString(buf, t.Value)
	if t.Lang != "" {
		buf = append(buf, `,"xml:lang":`...)
		buf = appendJSONString(buf, t.Lang)
	}
	if t.Datatype != "" {
		buf = append(buf, `,"datatype":`...)
		buf = appendJSONString(buf, t.Datatype)
	}
	return append(buf, '}')
}

// writeJSONResults streams sol as a SPARQL 1.1 Query Results JSON
// document (application/sparql-results+json).
func writeJSONResults(ctx context.Context, w io.Writer, sol *sparql.Solutions) error {
	bw := bufio.NewWriter(w)
	if sol.IsAsk() {
		if sol.Ask() {
			bw.WriteString(`{"head":{},"boolean":true}` + "\n")
		} else {
			bw.WriteString(`{"head":{},"boolean":false}` + "\n")
		}
		return bw.Flush()
	}
	vars := sol.Vars()
	buf := make([]byte, 0, 256)
	buf = append(buf, `{"head":{"vars":[`...)
	for i, v := range vars {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendJSONString(buf, string(v))
	}
	buf = append(buf, `]},"results":{"bindings":[`...)
	bw.Write(buf)
	for row := 0; row < sol.Len(); row++ {
		if err := checkStream(ctx, bw, w, row); err != nil {
			return err
		}
		buf = buf[:0]
		if row > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '{')
		first := true
		for col, v := range vars {
			t, bound := sol.Term(row, col)
			if !bound {
				continue
			}
			if !first {
				buf = append(buf, ',')
			}
			first = false
			buf = appendJSONString(buf, string(v))
			buf = append(buf, ':')
			buf = appendJSONTerm(buf, t)
		}
		buf = append(buf, '}')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	bw.WriteString("]}}\n")
	return bw.Flush()
}

// appendNTriplesTerm appends t in N-Triples syntax (the SPARQL TSV
// term encoding). It mirrors rdf.Term.String exactly but builds no
// intermediate strings — Term.String constructs a strings.Replacer per
// call, which at ~10 allocations per streamed row would dominate the
// serving hot path.
func appendNTriplesTerm(buf []byte, t rdf.Term) []byte {
	switch {
	case t.IsIRI():
		buf = append(buf, '<')
		buf = append(buf, t.Value...)
		return append(buf, '>')
	case t.IsBlank():
		buf = append(buf, '_', ':')
		return append(buf, t.Value...)
	}
	buf = append(buf, '"')
	for i := 0; i < len(t.Value); i++ {
		switch c := t.Value[i]; c {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '"':
			buf = append(buf, '\\', '"')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			buf = append(buf, c)
		}
	}
	buf = append(buf, '"')
	switch {
	case t.Lang != "":
		buf = append(buf, '@')
		buf = append(buf, t.Lang...)
	case t.Datatype != "":
		buf = append(buf, '^', '^', '<')
		buf = append(buf, t.Datatype...)
		buf = append(buf, '>')
	}
	return buf
}

// writeTSVResults streams sol as SPARQL 1.1 Query Results TSV
// (text/tab-separated-values): a ?var header line, then one line per
// solution with terms in N-Triples syntax and unbound positions empty.
// ASK answers render as a single true/false line.
func writeTSVResults(ctx context.Context, w io.Writer, sol *sparql.Solutions) error {
	bw := bufio.NewWriter(w)
	if sol.IsAsk() {
		if sol.Ask() {
			bw.WriteString("true\n")
		} else {
			bw.WriteString("false\n")
		}
		return bw.Flush()
	}
	vars := sol.Vars()
	buf := make([]byte, 0, 256)
	for i, v := range vars {
		if i > 0 {
			buf = append(buf, '\t')
		}
		buf = append(buf, '?')
		buf = append(buf, v...)
	}
	buf = append(buf, '\n')
	bw.Write(buf)
	for row := 0; row < sol.Len(); row++ {
		if err := checkStream(ctx, bw, w, row); err != nil {
			return err
		}
		buf = buf[:0]
		for col := range vars {
			if col > 0 {
				buf = append(buf, '\t')
			}
			if t, bound := sol.Term(row, col); bound {
				buf = appendNTriplesTerm(buf, t)
			}
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeGraphResults streams a CONSTRUCT/DESCRIBE graph result as
// N-Triples.
func writeGraphResults(ctx context.Context, w io.Writer, sol *sparql.Solutions) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 256)
	for i, t := range sol.Graph() {
		if err := checkStream(ctx, bw, w, i); err != nil {
			return err
		}
		buf = appendNTriplesTerm(buf[:0], t.S)
		buf = append(buf, ' ')
		buf = appendNTriplesTerm(buf, t.P)
		buf = append(buf, ' ')
		buf = appendNTriplesTerm(buf, t.O)
		buf = append(buf, ' ', '.', '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}
