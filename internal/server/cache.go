package server

import (
	"container/list"
	"sync"

	"repro/internal/sparql"
)

// planCache is an LRU cache of prepared query plans keyed by the exact
// query text. A hit returns the shared *sparql.Prepared — safe because
// Prepared is goroutine-safe and immutable apart from its internal,
// mutex-guarded per-graph plan memo — so a cached query skips parsing,
// slot-table construction, and (via the Prepared plan memo) BGP
// compilation and join ordering entirely.
//
// Keying by the raw text is deliberate: normalizing whitespace or
// case would require parsing first, which is exactly the work a hit
// must avoid. Two spellings of the same query simply occupy two slots.
type planCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	byText map[string]*list.Element
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	text string
	prep *sparql.Prepared
}

// newPlanCache builds a cache holding up to capacity plans; a
// capacity <= 0 disables caching (every lookup is a miss).
func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:    capacity,
		ll:     list.New(),
		byText: make(map[string]*list.Element),
	}
}

// prepare returns the cached plan for text, or parses and caches a new
// one. cached reports whether the plan came from the cache.
func (c *planCache) prepare(text string) (prep *sparql.Prepared, cached bool, err error) {
	c.mu.Lock()
	if el, ok := c.byText[text]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		prep = el.Value.(*cacheEntry).prep
		c.mu.Unlock()
		return prep, true, nil
	}
	c.misses++
	c.mu.Unlock()

	// Parse outside the lock: a slow parse of one query must not block
	// cache hits for others. Two racing misses both parse; the second
	// insert wins and the loser's plan is simply dropped.
	prep, err = sparql.Prepare(text)
	if err != nil {
		return nil, false, err
	}
	if c.cap <= 0 {
		return prep, false, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byText[text]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).prep, false, nil
	}
	c.byText[text] = c.ll.PushFront(&cacheEntry{text: text, prep: prep})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byText, oldest.Value.(*cacheEntry).text)
	}
	return prep, false, nil
}

// stats returns the hit/miss counters and current size.
func (c *planCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
