// Package sparkrdf reproduces SparkRDF (Chen et al., WI-IAT 2015,
// survey ref [5]): an elastic discreted RDF graph processing engine
// built directly on Spark RDDs (no graph API). Its storage model is
// the Multi-layer Elastic Sub-Graph (MESG), three index levels:
//
//	level 1: a class index (rdf:type triples, filed by object class)
//	         and a relation index (other triples, filed by predicate);
//	level 2: CR (class-relation) and RC (relation-class) indexes that
//	         split each predicate file by the subject's class or the
//	         object's class;
//	level 3: CRC (class-relation-class) combining all three.
//
// Queries load only the smallest applicable sub-graph of each triple
// pattern into the distributed memory model (RDSG) and join variables
// in selectivity order. The class of a variable (from its rdf:type
// patterns) is pushed into the other patterns' index lookups, so
// rdf:type patterns with constant classes are removed from the join
// entirely — the paper's class-message pruning. Before each
// distributed join, the candidate sub-graphs are pre-partitioned
// on-demand by the join variable so matching records co-locate.
//
// Supported fragment (Table II): BGP.
package sparkrdf

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
)

// IndexLevel selects how deep the MESG index is consulted, for the
// index ablation (level 3 = CRC, the full design).
type IndexLevel int

// MESG index levels.
const (
	Level1 IndexLevel = 1 // class + relation indexes only
	Level2 IndexLevel = 2 // + CR and RC
	Level3 IndexLevel = 3 // + CRC
)

// Engine is the SparkRDF system.
type Engine struct {
	ctx *spark.Context
	// Level caps the MESG depth (default Level3).
	Level IndexLevel

	relation   map[string][]rdf.Triple            // predicate -> triples (level 1)
	class      map[string][]rdf.Triple            // class IRI -> type triples (level 1)
	cr         map[string]map[string][]rdf.Triple // subjClass -> predicate -> triples (level 2)
	rc         map[string]map[string][]rdf.Triple // predicate -> objClass -> triples (level 2)
	crc        map[string][]rdf.Triple            // subjClass|pred|objClass -> triples (level 3)
	classesOf  map[rdf.Term][]string              // entity -> classes
	allTriples []rdf.Triple

	// ScannedTriples accumulates the candidate-set sizes read by
	// queries — the I/O the MESG index is designed to prune.
	ScannedTriples int64
}

// New creates an unloaded engine on ctx with the full index.
func New(ctx *spark.Context) *Engine { return &Engine{ctx: ctx, Level: Level3} }

// NewWithLevel creates an engine with a capped index depth.
func NewWithLevel(ctx *spark.Context, level IndexLevel) *Engine {
	return &Engine{ctx: ctx, Level: level}
}

// Info implements core.Engine.
func (e *Engine) Info() core.SystemInfo {
	return core.SystemInfo{
		Name:            "SparkRDF",
		Citation:        "[5]",
		Model:           core.GraphModel,
		Abstractions:    []core.Abstraction{core.RDDAbstraction},
		QueryProcessing: "Custom",
		Optimized:       true,
		Partitioning:    "Hash-sbj",
		SPARQL:          core.FragmentBGP,
	}
}

// Context implements core.Engine.
func (e *Engine) Context() *spark.Context { return e.ctx }

// Load builds the MESG indexes.
func (e *Engine) Load(triples []rdf.Triple) error {
	triples = rdf.Dedupe(triples)
	e.relation = map[string][]rdf.Triple{}
	e.class = map[string][]rdf.Triple{}
	e.cr = map[string]map[string][]rdf.Triple{}
	e.rc = map[string]map[string][]rdf.Triple{}
	e.crc = map[string][]rdf.Triple{}
	e.classesOf = map[rdf.Term][]string{}
	e.allTriples = triples
	e.ScannedTriples = 0

	for _, t := range triples {
		if t.IsTypeTriple() {
			e.class[t.O.Value] = append(e.class[t.O.Value], t)
			e.classesOf[t.S] = append(e.classesOf[t.S], t.O.Value)
		}
	}
	for _, t := range triples {
		if t.IsTypeTriple() {
			continue
		}
		e.relation[t.P.Value] = append(e.relation[t.P.Value], t)
		for _, sc := range e.classesOf[t.S] {
			if e.cr[sc] == nil {
				e.cr[sc] = map[string][]rdf.Triple{}
			}
			e.cr[sc][t.P.Value] = append(e.cr[sc][t.P.Value], t)
			for _, oc := range e.classesOf[t.O] {
				key := sc + "|" + t.P.Value + "|" + oc
				e.crc[key] = append(e.crc[key], t)
			}
		}
		for _, oc := range e.classesOf[t.O] {
			if e.rc[t.P.Value] == nil {
				e.rc[t.P.Value] = map[string][]rdf.Triple{}
			}
			e.rc[t.P.Value][oc] = append(e.rc[t.P.Value][oc], t)
		}
	}
	return nil
}

// Execute implements core.Engine. Only BGP queries are supported.
func (e *Engine) Execute(q *sparql.Query) (*sparql.Results, error) {
	if q.Form == sparql.FormDescribe {
		return nil, fmt.Errorf("sparkrdf: DESCRIBE is not supported (use the reference evaluator)")
	}
	if e.allTriples == nil {
		return nil, fmt.Errorf("sparkrdf: no dataset loaded")
	}
	bgp, ok := q.BGPOf()
	if !ok {
		return nil, fmt.Errorf("sparkrdf: only BGP queries are supported (fragment per Table II)")
	}
	rows, err := e.evalBGP(bgp)
	if err != nil {
		return nil, err
	}
	return sparql.ApplySolutionModifiers(q, rows), nil
}

func (e *Engine) evalBGP(bgp sparql.BGP) ([]sparql.Binding, error) {
	if len(bgp.Patterns) == 0 {
		return []sparql.Binding{{}}, nil
	}
	// Class-message pruning: collect class constraints from rdf:type
	// patterns with variable subject and constant class; those
	// patterns leave the join set when the variable occurs elsewhere.
	classOfVar := map[sparql.Var][]string{}
	var joinTPs []sparql.TriplePattern
	var typeTPs []sparql.TriplePattern
	for _, tp := range bgp.Patterns {
		if !tp.P.IsVar && tp.P.Term.Value == rdf.RDFType && tp.S.IsVar && !tp.O.IsVar {
			typeTPs = append(typeTPs, tp)
			continue
		}
		joinTPs = append(joinTPs, tp)
	}
	occursElsewhere := func(v sparql.Var) bool {
		for _, tp := range joinTPs {
			for _, tv := range tp.Vars() {
				if tv == v {
					return true
				}
			}
		}
		return false
	}
	for _, tp := range typeTPs {
		if occursElsewhere(tp.S.Var) && e.Level >= Level2 {
			classOfVar[tp.S.Var] = append(classOfVar[tp.S.Var], tp.O.Term.Value)
			continue
		}
		// Keep as a join pattern over the class index.
		joinTPs = append(joinTPs, tp)
	}

	// RDSG generation: load the candidate sub-graph of each pattern
	// from the deepest applicable index.
	type candSet struct {
		tp  sparql.TriplePattern
		rdd *spark.RDD[sparql.Binding]
		n   int
	}
	sets := make([]candSet, len(joinTPs))
	for i, tp := range joinTPs {
		triples := e.candidates(tp, classOfVar)
		e.ScannedTriples += int64(len(triples))
		e.ctx.AddRead(len(triples))
		var bindings []sparql.Binding
		for _, t := range triples {
			if b, ok := bindTriple(tp, t); ok {
				bindings = append(bindings, b)
			}
		}
		sets[i] = candSet{tp: tp, rdd: spark.Parallelize(e.ctx, bindings), n: len(bindings)}
	}

	// Optimal query plan: join variables in ascending candidate size,
	// staying connected.
	sort.SliceStable(sets, func(i, j int) bool { return sets[i].n < sets[j].n })
	cur := sets[0].rdd
	curVars := varSet(sets[0].tp.Vars())
	remaining := sets[1:]
	for len(remaining) > 0 {
		pick := -1
		for i, s := range remaining {
			if len(sharedVars(curVars, s.tp.Vars())) == 0 {
				continue
			}
			if pick < 0 || s.n < remaining[pick].n {
				pick = i
			}
		}
		if pick < 0 {
			pick = 0
		}
		next := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		shared := sharedVars(curVars, next.tp.Vars())
		if len(shared) == 0 {
			prod := spark.Cartesian(cur, next.rdd)
			cur = spark.FlatMap(prod, func(t spark.Tuple2[sparql.Binding, sparql.Binding]) []sparql.Binding {
				if !t.A.Compatible(t.B) {
					return nil
				}
				return []sparql.Binding{t.A.Merge(t.B)}
			})
		} else {
			// On-demand dynamic pre-partitioning: both sides are placed
			// by the join variable before the local join.
			ka := spark.PartitionBy(
				spark.KeyBy(cur, func(b sparql.Binding) string { return bindingKey(b, shared) }),
				spark.NewHashPartitioner[string](e.ctx.DefaultParallelism()))
			kb := spark.PartitionBy(
				spark.KeyBy(next.rdd, func(b sparql.Binding) string { return bindingKey(b, shared) }),
				spark.NewHashPartitioner[string](e.ctx.DefaultParallelism()))
			joined := spark.Join(ka, kb)
			cur = spark.FlatMap(joined, func(p spark.Pair[string, spark.Tuple2[sparql.Binding, sparql.Binding]]) []sparql.Binding {
				if !p.Value.A.Compatible(p.Value.B) {
					return nil
				}
				return []sparql.Binding{p.Value.A.Merge(p.Value.B)}
			})
		}
		for _, v := range next.tp.Vars() {
			curVars[v] = true
		}
	}
	rows := cur.Collect()

	// Re-check class constraints for variables that only occur in
	// removed type patterns... they were kept as join patterns, so the
	// remaining obligation is variables constrained via classOfVar but
	// whose candidate lookups could not use the class (variable in
	// object position of a predicate the index has no class for).
	var out []sparql.Binding
	for _, b := range rows {
		ok := true
		for v, classes := range classOfVar {
			t, bound := b[v]
			if !bound {
				ok = false
				break
			}
			for _, c := range classes {
				if !hasClass(e.classesOf[t], c) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	return out, nil
}

// candidates selects the smallest index entry applicable to a pattern
// under the engine's index level and the variables' class constraints.
func (e *Engine) candidates(tp sparql.TriplePattern, classOfVar map[sparql.Var][]string) []rdf.Triple {
	// Variable predicate: full scan.
	if tp.P.IsVar {
		return e.allTriples
	}
	pred := tp.P.Term.Value
	if pred == rdf.RDFType {
		if !tp.O.IsVar {
			return e.class[tp.O.Term.Value]
		}
		// All type triples.
		var all []rdf.Triple
		for _, ts := range e.class {
			all = append(all, ts...)
		}
		return all
	}
	var sClass, oClass string
	if tp.S.IsVar {
		if cs := classOfVar[tp.S.Var]; len(cs) > 0 {
			sClass = cs[0]
		}
	}
	if tp.O.IsVar {
		if cs := classOfVar[tp.O.Var]; len(cs) > 0 {
			oClass = cs[0]
		}
	}
	if e.Level >= Level3 && sClass != "" && oClass != "" {
		return e.crc[sClass+"|"+pred+"|"+oClass]
	}
	if e.Level >= Level2 {
		if sClass != "" {
			if m := e.cr[sClass]; m != nil {
				return m[pred]
			}
			return nil
		}
		if oClass != "" {
			if m := e.rc[pred]; m != nil {
				return m[oClass]
			}
			return nil
		}
	}
	return e.relation[pred]
}

// bindTriple matches one triple against a pattern.
func bindTriple(tp sparql.TriplePattern, t rdf.Triple) (sparql.Binding, bool) {
	if !tp.S.IsVar && tp.S.Term != t.S {
		return nil, false
	}
	if !tp.P.IsVar && tp.P.Term != t.P {
		return nil, false
	}
	if !tp.O.IsVar && tp.O.Term != t.O {
		return nil, false
	}
	b := sparql.Binding{}
	if tp.S.IsVar {
		b[tp.S.Var] = t.S
	}
	if tp.P.IsVar {
		if cur, ok := b[tp.P.Var]; ok && cur != t.P {
			return nil, false
		}
		b[tp.P.Var] = t.P
	}
	if tp.O.IsVar {
		if cur, ok := b[tp.O.Var]; ok && cur != t.O {
			return nil, false
		}
		b[tp.O.Var] = t.O
	}
	return b, true
}

func hasClass(classes []string, c string) bool {
	for _, x := range classes {
		if x == c {
			return true
		}
	}
	return false
}

func varSet(vs []sparql.Var) map[sparql.Var]bool {
	out := map[sparql.Var]bool{}
	for _, v := range vs {
		out[v] = true
	}
	return out
}

func sharedVars(have map[sparql.Var]bool, vs []sparql.Var) []sparql.Var {
	var out []sparql.Var
	for _, v := range vs {
		if have[v] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func bindingKey(b sparql.Binding, vars []sparql.Var) string {
	parts := make([]string, len(vars))
	for i, v := range vars {
		if t, ok := b[v]; ok {
			parts[i] = t.String()
		}
	}
	return strings.Join(parts, "\x00")
}
