package sparkrdf

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems/systemstest"
	"repro/internal/workload"
)

func newEngine() *Engine {
	return New(spark.NewContext(spark.Config{Parallelism: 4, Executors: 2, BroadcastThreshold: 1000, MaxConcurrency: 4}))
}

func TestConformance(t *testing.T) {
	systemstest.Run(t, func() core.Engine { return newEngine() })
}

func TestConformanceAllLevels(t *testing.T) {
	for _, lvl := range []IndexLevel{Level1, Level2, Level3} {
		lvl := lvl
		t.Run(fmt.Sprintf("level%d", lvl), func(t *testing.T) {
			systemstest.Run(t, func() core.Engine {
				return NewWithLevel(spark.NewContext(spark.DefaultConfig()), lvl)
			})
		})
	}
}

func TestRandomized(t *testing.T) {
	systemstest.RunRandomized(t, func() core.Engine { return newEngine() }, 5)
}

func TestInfo(t *testing.T) {
	info := newEngine().Info()
	if info.Name != "SparkRDF" || info.QueryProcessing != "Custom" {
		t.Fatalf("info = %+v", info)
	}
	if info.Model != core.GraphModel || info.Abstractions[0] != core.RDDAbstraction {
		t.Fatal("SparkRDF is a graph-model system built directly on RDDs")
	}
}

func typedQuery() *sparql.Query {
	return sparql.MustParse(fmt.Sprintf(
		`SELECT ?s ?prof WHERE { ?s <%s> <%sStudent> . ?prof <%s> <%sProfessor> . ?s <%sadvisor> ?prof }`,
		rdf.RDFType, workload.UnivNS, rdf.RDFType, workload.UnivNS, workload.UnivNS))
}

func TestDeeperIndexScansFewerTriples(t *testing.T) {
	// The MESG claim: deeper index levels load smaller sub-graphs.
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	scanned := map[IndexLevel]int64{}
	for _, lvl := range []IndexLevel{Level1, Level2, Level3} {
		e := NewWithLevel(spark.NewContext(spark.DefaultConfig()), lvl)
		if err := e.Load(triples); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Execute(typedQuery()); err != nil {
			t.Fatal(err)
		}
		scanned[lvl] = e.ScannedTriples
	}
	if !(scanned[Level3] <= scanned[Level2] && scanned[Level2] < scanned[Level1]) {
		t.Fatalf("scan counts not monotone: L1=%d L2=%d L3=%d",
			scanned[Level1], scanned[Level2], scanned[Level3])
	}
}

func TestLevelsAgreeOnAnswers(t *testing.T) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	want, err := sparql.Evaluate(typedQuery(), rdf.NewGraph(triples))
	if err != nil {
		t.Fatal(err)
	}
	for _, lvl := range []IndexLevel{Level1, Level2, Level3} {
		e := NewWithLevel(spark.NewContext(spark.DefaultConfig()), lvl)
		if err := e.Load(triples); err != nil {
			t.Fatal(err)
		}
		got, err := e.Execute(typedQuery())
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("level %d wrong: %d vs %d rows", lvl, got.Len(), want.Len())
		}
	}
}

func TestClassMessagePruningRemovesTypePatterns(t *testing.T) {
	// With class pruning, the type patterns should not add to the scan
	// count beyond the CR/CRC-reduced relation lookups.
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	e := newEngine()
	if err := e.Load(triples); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(typedQuery()); err != nil {
		t.Fatal(err)
	}
	advisorTriples := int64(len(rdf.NewGraph(triples).WithPredicate(workload.UnivAdvisor.Value)))
	if e.ScannedTriples > advisorTriples {
		t.Fatalf("scanned %d > advisor relation size %d — type patterns not pruned",
			e.ScannedTriples, advisorTriples)
	}
}

func TestDynamicPrePartitioningMetersShuffle(t *testing.T) {
	e := newEngine()
	if err := e.Load(workload.GenerateUniversity(workload.SmallUniversity())); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(fmt.Sprintf(
		`SELECT ?st ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS))
	before := e.Context().Snapshot()
	if _, err := e.Execute(q); err != nil {
		t.Fatal(err)
	}
	d := e.Context().Snapshot().Diff(before)
	if d.ShuffleRecords == 0 {
		t.Fatal("pre-partitioning should be metered as shuffle")
	}
}

func TestRejectsNonBGP(t *testing.T) {
	e := newEngine()
	if err := e.Load(workload.GenerateUniversity(workload.SmallUniversity())); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(`SELECT ?x WHERE { { ?x <http://e/p> ?y } UNION { ?x <http://e/q> ?y } }`)
	if _, err := e.Execute(q); err == nil {
		t.Fatal("UNION must be rejected (fragment is BGP)")
	}
}

func TestExecuteWithoutLoad(t *testing.T) {
	if _, err := newEngine().Execute(sparql.MustParse(`SELECT ?s WHERE { ?s ?p ?o }`)); err == nil {
		t.Fatal("expected error before Load")
	}
}
