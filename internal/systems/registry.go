// Package systems wires the nine surveyed engines into the core
// registry. Each engine gets its own simulated Spark application
// (Context) so per-engine metrics never mix.
package systems

import (
	"repro/internal/core"
	"repro/internal/spark"
	"repro/internal/systems/gframes"
	"repro/internal/systems/gxsubgraph"
	"repro/internal/systems/haqwa"
	"repro/internal/systems/hybrid"
	"repro/internal/systems/s2rdf"
	"repro/internal/systems/s2x"
	"repro/internal/systems/sparkql"
	"repro/internal/systems/sparkrdf"
	"repro/internal/systems/sparqlgx"
)

// NewRegistry builds a registry with all nine surveyed systems in the
// paper's presentation order (Sec. IV), each on a fresh context with
// the given cluster configuration.
func NewRegistry(conf spark.Config) *core.Registry {
	r := core.NewRegistry()
	for _, e := range AllEngines(conf) {
		r.Register(e)
	}
	return r
}

// AllEngines instantiates one engine per surveyed system.
func AllEngines(conf spark.Config) []core.Engine {
	return []core.Engine{
		haqwa.New(spark.NewContext(conf)),      // IV.A.1 RDD
		sparqlgx.New(spark.NewContext(conf)),   // IV.A.1 RDD
		s2rdf.New(spark.NewContext(conf)),      // IV.A.2 Spark SQL
		hybrid.New(spark.NewContext(conf)),     // IV.A.3 hybrid
		s2x.New(spark.NewContext(conf)),        // IV.B.1 GraphX
		gxsubgraph.New(spark.NewContext(conf)), // IV.B.1 GraphX
		sparkql.New(spark.NewContext(conf)),    // IV.B.1 GraphX
		gframes.New(spark.NewContext(conf)),    // IV.B.2 GraphFrames
		sparkrdf.New(spark.NewContext(conf)),   // IV.B.3 hybrid graph
	}
}
