package s2rdf

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems/systemstest"
	"repro/internal/workload"
)

func newEngine() *Engine {
	return New(spark.NewContext(spark.Config{Parallelism: 4, Executors: 2, BroadcastThreshold: 1000, MaxConcurrency: 4}))
}

func TestConformance(t *testing.T) {
	systemstest.Run(t, func() core.Engine { return newEngine() })
}

func TestRandomized(t *testing.T) {
	systemstest.RunRandomized(t, func() core.Engine { return newEngine() }, 4)
}

func TestInfo(t *testing.T) {
	info := newEngine().Info()
	if info.Name != "S2RDF" || info.Partitioning != "Extended Vertical" {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Abstractions) != 1 || info.Abstractions[0] != core.SparkSQLAbstraction {
		t.Fatalf("abstractions = %v", info.Abstractions)
	}
}

// chainData builds a tiny dataset with a selective correlation:
// advisor objects are a small subset of worksFor subjects.
func chainData() []rdf.Triple {
	var ts []rdf.Triple
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://t/" + s) }
	advisor := iri("advisor")
	worksFor := iri("worksFor")
	for i := 0; i < 20; i++ {
		ts = append(ts, rdf.Triple{S: iri(fmt.Sprintf("stud%d", i)), P: advisor, O: iri(fmt.Sprintf("prof%d", i%2))})
	}
	for i := 0; i < 20; i++ {
		ts = append(ts, rdf.Triple{S: iri(fmt.Sprintf("prof%d", i)), P: worksFor, O: iri("dept0")})
	}
	return ts
}

func TestExtVPMaterialization(t *testing.T) {
	e := newEngine()
	if err := e.Load(chainData()); err != nil {
		t.Fatal(err)
	}
	// worksFor reduced by advisor's objects (OS correlation from
	// advisor, SO from worksFor side): worksFor subjects that appear as
	// advisor objects are only prof0, prof1 => SF = 2/20 = 0.1 <= 0.25.
	// The SS reduction of worksFor against advisor is empty (no shared
	// subjects), so if materialized it must have zero rows (SF = 0).
	if tab, ok := e.extvp[extVPKey(kindSS, "http://t/worksFor", "http://t/advisor")]; ok && tab.rows != 0 {
		t.Fatalf("SS reduction should be empty, has %d rows", tab.rows)
	}
	found := false
	for k, tab := range e.extvp {
		if strings.HasPrefix(k, "so|http://t/worksFor|http://t/advisor") {
			found = true
			if tab.rows != 2 {
				t.Fatalf("SO reduction rows = %d, want 2", tab.rows)
			}
			if tab.sf != 0.1 {
				t.Fatalf("SF = %f, want 0.1", tab.sf)
			}
		}
	}
	if !found {
		keys := make([]string, 0, len(e.extvp))
		for k := range e.extvp {
			keys = append(keys, k)
		}
		t.Fatalf("SO extvp table missing; have %v", keys)
	}
}

func TestSFThresholdBoundsStorage(t *testing.T) {
	data := workload.GenerateUniversity(workload.SmallUniversity())

	strict := newEngine()
	strict.SFThreshold = 0.05
	if err := strict.Load(data); err != nil {
		t.Fatal(err)
	}
	loose := newEngine()
	loose.SFThreshold = 0.9
	if err := loose.Load(data); err != nil {
		t.Fatal(err)
	}
	if strict.StorageRows >= loose.StorageRows {
		t.Fatalf("strict threshold stored %d rows, loose %d — threshold not bounding storage",
			strict.StorageRows, loose.StorageRows)
	}
	if strict.StorageOverhead() < 1 {
		t.Fatalf("overhead below 1 is impossible: %f", strict.StorageOverhead())
	}
}

func TestChooseTablePrefersExtVP(t *testing.T) {
	e := newEngine()
	if err := e.Load(chainData()); err != nil {
		t.Fatal(err)
	}
	tps := sparql.MustParse(`SELECT * WHERE {
		?st <http://t/advisor> ?prof .
		?prof <http://t/worksFor> ?dept }`)
	bgp, _ := tps.BGPOf()
	table, rows := e.chooseTable(bgp.Patterns[1], bgp.Patterns)
	if !strings.HasPrefix(table, "extvp_") {
		t.Fatalf("worksFor pattern chose %s, want an ExtVP table", table)
	}
	if rows != 2 {
		t.Fatalf("chosen table rows = %d, want 2", rows)
	}
}

func TestTranslateBGPProducesRunnableSQL(t *testing.T) {
	e := newEngine()
	if err := e.Load(chainData()); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(`SELECT ?st ?dept WHERE {
		?st <http://t/advisor> ?prof .
		?prof <http://t/worksFor> ?dept }`)
	bgp, _ := q.BGPOf()
	text, vars, err := e.TranslateBGP(bgp)
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 3 {
		t.Fatalf("vars = %v", vars)
	}
	if !strings.Contains(text, "JOIN") || !strings.Contains(text, "SELECT") {
		t.Fatalf("sql = %s", text)
	}
	df, err := e.Session().Query(text)
	if err != nil {
		t.Fatalf("generated SQL does not run: %v\n%s", err, text)
	}
	if df.Count() != 20 {
		t.Fatalf("rows = %d, want 20", df.Count())
	}
}

func TestExtVPReducesJoinInput(t *testing.T) {
	// The headline S2RDF claim: the join over ExtVP tables reads far
	// fewer rows than over plain VP tables.
	data := chainData()
	e := newEngine()
	if err := e.Load(data); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(`SELECT ?st ?dept WHERE {
		?st <http://t/advisor> ?prof .
		?prof <http://t/worksFor> ?dept }`)
	bgp, _ := q.BGPOf()

	vpRows := e.vpSizes["http://t/advisor"] + e.vpSizes["http://t/worksFor"]
	_, r1 := e.chooseTable(bgp.Patterns[0], bgp.Patterns)
	_, r2 := e.chooseTable(bgp.Patterns[1], bgp.Patterns)
	if r1+r2 >= vpRows {
		t.Fatalf("ExtVP join input %d not below VP input %d", r1+r2, vpRows)
	}
}

func TestVariablePredicateFallsBackToTriples(t *testing.T) {
	e := newEngine()
	if err := e.Load(chainData()); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(sparql.MustParse(`SELECT ?p WHERE { <http://t/stud0> ?p ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0]["p"].Value != "http://t/advisor" {
		t.Fatalf("rows = %v", res.Canonical())
	}
}

func TestUnknownPredicateYieldsEmpty(t *testing.T) {
	e := newEngine()
	if err := e.Load(chainData()); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(sparql.MustParse(`SELECT ?s WHERE { ?s <http://t/none> ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("rows = %v", res.Canonical())
	}
}

func TestExecuteWithoutLoad(t *testing.T) {
	if _, err := newEngine().Execute(sparql.MustParse(`SELECT ?s WHERE { ?s ?p ?o }`)); err == nil {
		t.Fatal("expected error before Load")
	}
}
