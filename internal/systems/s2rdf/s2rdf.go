// Package s2rdf reproduces S2RDF (Schätzle et al., PVLDB 2016, survey
// ref [24]): SPARQL on Spark SQL over an extended vertical
// partitioning scheme, ExtVP. Besides one VP table per predicate
// (columns s, o), the loader pre-computes semi-join reductions between
// every correlated pair of VP tables:
//
//	SS  p1|p2: rows of VP(p1) whose subject also appears as subject of p2
//	OS  p1|p2: rows of VP(p1) whose object appears as subject of p2
//	SO  p1|p2: rows of VP(p1) whose subject appears as object of p2
//
// At query time each triple pattern picks the smallest applicable
// ExtVP table (falling back to the VP table), so joins touch a
// fraction of the data. A selectivity-factor threshold bounds the
// storage overhead: ExtVP tables with SF above the threshold are not
// materialized. Queries are translated to SQL text and run through the
// simulated Spark SQL session with its Catalyst-style optimizer —
// mirroring S2RDF's Jena-ARQ-to-Spark-SQL pipeline.
package s2rdf

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	sparksql "repro/internal/spark/sql"
	"repro/internal/sparql"
)

// DefaultSelectivityThreshold is the SF cut-off used when none is
// configured (the paper's recommended 0.25).
const DefaultSelectivityThreshold = 0.25

// extVPKind names the three semi-join directions.
type extVPKind string

const (
	kindSS extVPKind = "ss"
	kindOS extVPKind = "os"
	kindSO extVPKind = "so"
)

type extVPTable struct {
	table string
	rows  int
	sf    float64
}

// Engine is the S2RDF system.
type Engine struct {
	ctx     *spark.Context
	session *sparksql.Session
	// SFThreshold is the selectivity-factor cut-off for materializing
	// ExtVP tables. Set before Load; zero means the default.
	SFThreshold float64

	vpTables map[string]string // predicate IRI -> VP table name
	vpSizes  map[string]int
	extvp    map[string]extVPTable // "kind|p1|p2" -> table
	terms    map[string]rdf.Term   // rendered value -> term
	preds    []string
	// StorageRows counts all materialized rows (VP + ExtVP), for the
	// storage-overhead experiment.
	StorageRows int
	baseRows    int
}

// New creates an unloaded engine on ctx.
func New(ctx *spark.Context) *Engine {
	return &Engine{ctx: ctx, session: sparksql.NewSession(ctx)}
}

// Info implements core.Engine.
func (e *Engine) Info() core.SystemInfo {
	return core.SystemInfo{
		Name:            "S2RDF",
		Citation:        "[24]",
		Model:           core.TripleModel,
		Abstractions:    []core.Abstraction{core.SparkSQLAbstraction},
		QueryProcessing: "Spark SQL",
		Optimized:       true,
		Partitioning:    "Extended Vertical",
		SPARQL:          core.FragmentBGPPlus,
	}
}

// Context implements core.Engine.
func (e *Engine) Context() *spark.Context { return e.ctx }

// Session exposes the SQL session (used by the examples to EXPLAIN).
func (e *Engine) Session() *sparksql.Session { return e.session }

// render encodes a term for a DataFrame cell and records the reverse
// mapping.
func (e *Engine) render(t rdf.Term) string {
	s := t.String()
	e.terms[s] = t
	return s
}

// Load builds the VP tables and materializes the ExtVP tables under
// the selectivity threshold.
func (e *Engine) Load(triples []rdf.Triple) error {
	triples = rdf.Dedupe(triples)
	threshold := e.SFThreshold
	if threshold <= 0 {
		threshold = DefaultSelectivityThreshold
	}
	e.vpTables = map[string]string{}
	e.vpSizes = map[string]int{}
	e.extvp = map[string]extVPTable{}
	e.terms = map[string]rdf.Term{}
	e.StorageRows = 0
	e.baseRows = len(triples)

	byPred := map[string][][2]string{}
	for _, t := range triples {
		byPred[t.P.Value] = append(byPred[t.P.Value], [2]string{e.render(t.S), e.render(t.O)})
	}
	e.preds = e.preds[:0]
	for p := range byPred {
		e.preds = append(e.preds, p)
	}
	sort.Strings(e.preds)

	// VP tables.
	for _, p := range e.preds {
		rows := make([]sparksql.Row, len(byPred[p]))
		for i, so := range byPred[p] {
			rows[i] = sparksql.Row{so[0], so[1]}
		}
		df, err := sparksql.NewDataFrame(e.ctx, sparksql.Schema{"s", "o"}, rows)
		if err != nil {
			return fmt.Errorf("s2rdf: %w", err)
		}
		name := "vp_" + sanitize(p)
		e.session.RegisterTable(name, df)
		e.vpTables[p] = name
		e.vpSizes[p] = len(rows)
		e.StorageRows += len(rows)
	}

	// Full triples table for variable-predicate patterns.
	allRows := make([]sparksql.Row, len(triples))
	for i, t := range triples {
		allRows[i] = sparksql.Row{e.render(t.S), e.render(t.P), e.render(t.O)}
	}
	allDF, err := sparksql.NewDataFrame(e.ctx, sparksql.Schema{"s", "p", "o"}, allRows)
	if err != nil {
		return err
	}
	e.session.RegisterTable("triples", allDF)

	// ExtVP tables: semi-join reductions for every correlated pair.
	subjectSets := map[string]map[string]bool{}
	objectSets := map[string]map[string]bool{}
	for _, p := range e.preds {
		ss := map[string]bool{}
		os := map[string]bool{}
		for _, so := range byPred[p] {
			ss[so[0]] = true
			os[so[1]] = true
		}
		subjectSets[p] = ss
		objectSets[p] = os
	}
	for _, p1 := range e.preds {
		for _, p2 := range e.preds {
			if p1 == p2 {
				continue
			}
			e.buildExtVP(kindSS, p1, p2, byPred[p1], func(so [2]string) bool { return subjectSets[p2][so[0]] }, threshold)
			e.buildExtVP(kindOS, p1, p2, byPred[p1], func(so [2]string) bool { return subjectSets[p2][so[1]] }, threshold)
			e.buildExtVP(kindSO, p1, p2, byPred[p1], func(so [2]string) bool { return objectSets[p2][so[0]] }, threshold)
		}
	}
	return nil
}

// buildExtVP materializes one semi-join reduction when its selectivity
// factor is useful (SF < 1) and under the threshold.
func (e *Engine) buildExtVP(kind extVPKind, p1, p2 string, rows [][2]string, keep func([2]string) bool, threshold float64) {
	var kept []sparksql.Row
	for _, so := range rows {
		if keep(so) {
			kept = append(kept, sparksql.Row{so[0], so[1]})
		}
	}
	if len(rows) == 0 {
		return
	}
	sf := float64(len(kept)) / float64(len(rows))
	if sf > threshold || sf == 1 {
		return
	}
	df, err := sparksql.NewDataFrame(e.ctx, sparksql.Schema{"s", "o"}, kept)
	if err != nil {
		return
	}
	name := fmt.Sprintf("extvp_%s_%s__%s", kind, sanitize(p1), sanitize(p2))
	e.session.RegisterTable(name, df)
	e.extvp[extVPKey(kind, p1, p2)] = extVPTable{table: name, rows: len(kept), sf: sf}
	e.StorageRows += len(kept)
}

func extVPKey(kind extVPKind, p1, p2 string) string { return string(kind) + "|" + p1 + "|" + p2 }

// StorageOverhead returns materialized rows relative to the raw
// dataset (1.0 = no overhead) — the quantity the SF threshold bounds.
func (e *Engine) StorageOverhead() float64 {
	if e.baseRows == 0 {
		return 0
	}
	return float64(e.StorageRows) / float64(e.baseRows)
}

// ExtVPTableCount returns the number of materialized ExtVP tables.
func (e *Engine) ExtVPTableCount() int { return len(e.extvp) }

// Execute implements core.Engine.
func (e *Engine) Execute(q *sparql.Query) (*sparql.Results, error) {
	if q.Form == sparql.FormDescribe {
		return nil, fmt.Errorf("s2rdf: DESCRIBE is not supported (use the reference evaluator)")
	}
	if e.vpTables == nil {
		return nil, fmt.Errorf("s2rdf: no dataset loaded")
	}
	rows, err := e.evalPattern(q.Where)
	if err != nil {
		return nil, err
	}
	return sparql.ApplySolutionModifiers(q, rows), nil
}

func (e *Engine) evalPattern(p sparql.GraphPattern) ([]sparql.Binding, error) {
	switch n := p.(type) {
	case sparql.BGP:
		return e.evalBGP(n)
	case sparql.Group:
		rows := []sparql.Binding{{}}
		for _, part := range n.Parts {
			sub, err := e.evalPattern(part)
			if err != nil {
				return nil, err
			}
			var next []sparql.Binding
			for _, x := range rows {
				for _, y := range sub {
					if x.Compatible(y) {
						next = append(next, x.Merge(y))
					}
				}
			}
			rows = next
		}
		return rows, nil
	case sparql.Filter:
		rows, err := e.evalPattern(n.Inner)
		if err != nil {
			return nil, err
		}
		var kept []sparql.Binding
		for _, b := range rows {
			if n.Cond.EvalFilter(b) {
				kept = append(kept, b)
			}
		}
		return kept, nil
	case sparql.Union:
		left, err := e.evalPattern(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.evalPattern(n.Right)
		if err != nil {
			return nil, err
		}
		return append(left, right...), nil
	case sparql.Optional:
		left, err := e.evalPattern(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.evalPattern(n.Right)
		if err != nil {
			return nil, err
		}
		var out []sparql.Binding
		for _, l := range left {
			matched := false
			for _, r := range right {
				if l.Compatible(r) {
					out = append(out, l.Merge(r))
					matched = true
				}
			}
			if !matched {
				out = append(out, l.Clone())
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("s2rdf: unsupported pattern %T", p)
	}
}

// evalBGP translates the BGP to SQL text over VP/ExtVP tables, runs it
// through the Spark SQL session, and decodes the answer.
func (e *Engine) evalBGP(bgp sparql.BGP) ([]sparql.Binding, error) {
	if len(bgp.Patterns) == 0 {
		return []sparql.Binding{{}}, nil
	}
	sqlText, vars, err := e.TranslateBGP(bgp)
	if err != nil {
		return nil, err
	}
	df, err := e.session.Query(sqlText)
	if err != nil {
		return nil, fmt.Errorf("s2rdf: executing %q: %w", sqlText, err)
	}
	schema := df.Schema()
	colVar := make(map[string]sparql.Var, len(vars))
	for _, v := range vars {
		colVar[varCol(v)] = v
	}
	var out []sparql.Binding
	for _, row := range df.Collect() {
		b := sparql.Binding{}
		for i, col := range schema {
			v, isVar := colVar[col]
			if !isVar {
				continue
			}
			val, _ := row[i].(string)
			if term, ok := e.terms[val]; ok {
				b[v] = term
			}
		}
		out = append(out, b)
	}
	return out, nil
}

// TranslateBGP compiles a BGP to a single SQL statement: one subquery
// per triple pattern over its chosen VP/ExtVP table, natural-joined in
// the optimized order. It returns the SQL and the projected variables.
func (e *Engine) TranslateBGP(bgp sparql.BGP) (string, []sparql.Var, error) {
	ordered := e.orderPatterns(bgp.Patterns)
	subqueries := make([]string, len(ordered))
	for i, tp := range ordered {
		sub, err := e.patternSubquery(tp, ordered)
		if err != nil {
			return "", nil, err
		}
		subqueries[i] = sub
	}
	var allVars []sparql.Var
	seen := map[sparql.Var]bool{}
	for _, tp := range ordered {
		for _, v := range tp.Vars() {
			if !seen[v] {
				seen[v] = true
				allVars = append(allVars, v)
			}
		}
	}
	cols := make([]string, len(allVars))
	for i, v := range allVars {
		cols[i] = varCol(v)
	}
	text := "SELECT " + strings.Join(cols, ", ") + " FROM " + strings.Join(subqueries, " JOIN ")
	return text, allVars, nil
}

// orderPatterns applies the S2RDF ordering: patterns with more bound
// positions first; ties broken by smaller chosen-table size.
func (e *Engine) orderPatterns(tps []sparql.TriplePattern) []sparql.TriplePattern {
	out := append([]sparql.TriplePattern{}, tps...)
	boundCount := func(tp sparql.TriplePattern) int {
		n := 0
		for _, el := range []sparql.TPElem{tp.S, tp.P, tp.O} {
			if !el.IsVar {
				n++
			}
		}
		return n
	}
	size := func(tp sparql.TriplePattern) int {
		_, rows := e.chooseTable(tp, tps)
		return rows
	}
	sort.SliceStable(out, func(i, j int) bool {
		bi, bj := boundCount(out[i]), boundCount(out[j])
		if bi != bj {
			return bi > bj
		}
		return size(out[i]) < size(out[j])
	})
	return out
}

// chooseTable picks the smallest applicable table for tp given its
// correlations with the other patterns — the heart of ExtVP.
func (e *Engine) chooseTable(tp sparql.TriplePattern, all []sparql.TriplePattern) (string, int) {
	if tp.P.IsVar {
		return "triples", e.baseRows
	}
	p1 := tp.P.Term.Value
	best, bestRows := e.vpTables[p1], e.vpSizes[p1]
	if best == "" {
		return "", 0
	}
	for _, other := range all {
		if other == tp || other.P.IsVar {
			continue
		}
		p2 := other.P.Term.Value
		// Determine the correlation type through each shared variable.
		try := func(kind extVPKind, applies bool) {
			if !applies {
				return
			}
			if t, ok := e.extvp[extVPKey(kind, p1, p2)]; ok && t.rows < bestRows {
				best, bestRows = t.table, t.rows
			}
		}
		try(kindSS, shareVar(tp.S, other.S))
		try(kindOS, shareVar(tp.O, other.S))
		try(kindSO, shareVar(tp.S, other.O))
	}
	return best, bestRows
}

func shareVar(a, b sparql.TPElem) bool {
	return a.IsVar && b.IsVar && a.Var == b.Var
}

// patternSubquery renders one triple pattern as a SQL subquery over its
// chosen table, renaming s/o columns to variable names and filtering
// constants.
func (e *Engine) patternSubquery(tp sparql.TriplePattern, all []sparql.TriplePattern) (string, error) {
	table, _ := e.chooseTable(tp, all)
	if table == "" {
		// Unknown predicate: no VP table exists, so the pattern can have
		// no matches — emit a rowless subquery that still projects the
		// pattern's variable columns.
		var sel []string
		if tp.S.IsVar {
			sel = append(sel, "s AS "+varCol(tp.S.Var))
		}
		if tp.O.IsVar && (!tp.S.IsVar || tp.O.Var != tp.S.Var) {
			sel = append(sel, "o AS "+varCol(tp.O.Var))
		}
		if len(sel) == 0 {
			sel = append(sel, "s AS "+freshCol(tp, "c"))
		}
		return "(SELECT " + strings.Join(sel, ", ") + " FROM triples WHERE p = 'none')", nil
	}
	var sel []string
	var conds []string
	scol, ocol, pcol := "s", "o", "p"
	if table != "triples" {
		pcol = "" // VP/ExtVP tables have no p column
	}
	if tp.S.IsVar {
		sel = append(sel, scol+" AS "+varCol(tp.S.Var))
	} else {
		conds = append(conds, scol+" = '"+escape(e.render(tp.S.Term))+"'")
	}
	if tp.P.IsVar {
		if pcol == "" {
			return "", fmt.Errorf("s2rdf: internal: variable predicate requires triples table")
		}
		sel = append(sel, pcol+" AS "+varCol(tp.P.Var))
	} else if pcol != "" {
		conds = append(conds, pcol+" = '"+escape(e.render(tp.P.Term))+"'")
	}
	if tp.O.IsVar {
		if tp.S.IsVar && tp.O.Var == tp.S.Var {
			conds = append(conds, scol+" = "+ocol)
		} else if tp.P.IsVar && tp.O.Var == tp.P.Var {
			conds = append(conds, pcol+" = "+ocol)
		} else {
			sel = append(sel, ocol+" AS "+varCol(tp.O.Var))
		}
	} else {
		conds = append(conds, ocol+" = '"+escape(e.render(tp.O.Term))+"'")
	}
	if len(sel) == 0 {
		// All positions bound: project a constant-ish column so the
		// subquery has a schema; use s with a throwaway alias.
		sel = append(sel, scol+" AS "+freshCol(tp, "c"))
	}
	q := "(SELECT " + strings.Join(sel, ", ") + " FROM " + table
	if len(conds) > 0 {
		q += " WHERE " + strings.Join(conds, " AND ")
	}
	return q + ")", nil
}

// varCol maps a SPARQL variable to a SQL column name.
func varCol(v sparql.Var) string { return "v_" + sanitize(string(v)) }

// freshCol derives a collision-free helper column name from a pattern.
func freshCol(tp sparql.TriplePattern, suffix string) string {
	return "h_" + sanitize(tp.String()) + "_" + suffix
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func escape(s string) string { return strings.ReplaceAll(s, "'", "''") }
