package sparqlgx

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems/systemstest"
	"repro/internal/workload"
)

func newEngine() *Engine {
	return New(spark.NewContext(spark.Config{Parallelism: 4, Executors: 2, BroadcastThreshold: 1000, MaxConcurrency: 4}))
}

func TestConformance(t *testing.T) {
	systemstest.Run(t, func() core.Engine { return newEngine() })
}

func TestRandomized(t *testing.T) {
	systemstest.RunRandomized(t, func() core.Engine { return newEngine() }, 6)
}

func TestInfo(t *testing.T) {
	info := newEngine().Info()
	if info.Name != "SPARQLGX" || info.Partitioning != "Vertical" || !info.Optimized {
		t.Fatalf("info = %+v", info)
	}
	if info.Model != core.TripleModel {
		t.Fatal("SPARQLGX is a triple-model system")
	}
}

func TestExecuteWithoutLoad(t *testing.T) {
	e := newEngine()
	if _, err := e.Execute(sparql.MustParse(`SELECT ?s WHERE { ?s ?p ?o }`)); err == nil {
		t.Fatal("expected error before Load")
	}
}

func TestVerticalPartitioningBoundsScans(t *testing.T) {
	// A bounded-predicate query must read only that predicate's file —
	// the core SPARQLGX claim ("response time is minimized when queries
	// have bounded predicates").
	e := newEngine()
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	if err := e.Load(triples); err != nil {
		t.Fatal(err)
	}
	advisorCount := len(rdf.NewGraph(triples).WithPredicate(workload.UnivAdvisor.Value))

	rdd := e.scanPattern(sparql.TriplePattern{
		S: sparql.VarElem("s"),
		P: sparql.TermElem(workload.UnivAdvisor),
		O: sparql.VarElem("o"),
	})
	if rdd.Count() != advisorCount {
		t.Fatalf("scan returned %d bindings, want %d", rdd.Count(), advisorCount)
	}
}

func TestJoinReorderPutsSelectiveFirst(t *testing.T) {
	e := newEngine()
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	if err := e.Load(triples); err != nil {
		t.Fatal(err)
	}
	// takesCourse is much more frequent than subOrganizationOf.
	tps := []sparql.TriplePattern{
		{S: sparql.VarElem("st"), P: sparql.TermElem(workload.UnivTakesCourse), O: sparql.VarElem("c")},
		{S: sparql.VarElem("d"), P: sparql.TermElem(workload.UnivSubOrgOf), O: sparql.VarElem("u")},
	}
	ordered := e.reorder(tps)
	if ordered[0].P.Term != workload.UnivSubOrgOf {
		t.Fatalf("reorder did not put the selective pattern first: %v", ordered[0])
	}
}

func TestSameVariableSubjectObject(t *testing.T) {
	e := newEngine()
	self := rdf.NewIRI("http://t/self")
	p := rdf.NewIRI("http://t/p")
	other := rdf.NewIRI("http://t/o")
	if err := e.Load([]rdf.Triple{
		{S: self, P: p, O: self},
		{S: other, P: p, O: self},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(sparql.MustParse(`SELECT ?x WHERE { ?x <http://t/p> ?x }`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0]["x"] != self {
		t.Fatalf("self-loop rows = %v", res.Canonical())
	}
}

func TestReloadReplacesData(t *testing.T) {
	e := newEngine()
	p := rdf.NewIRI("http://t/p")
	a, b := rdf.NewIRI("http://t/a"), rdf.NewIRI("http://t/b")
	if err := e.Load([]rdf.Triple{{S: a, P: p, O: b}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Load([]rdf.Triple{{S: b, P: p, O: a}}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(sparql.MustParse(`SELECT ?s WHERE { ?s <http://t/p> ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0]["s"] != b {
		t.Fatalf("rows = %v", res.Canonical())
	}
}

func TestDisconnectedBGPCrossProduct(t *testing.T) {
	e := newEngine()
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://t/" + s) }
	triples := []rdf.Triple{
		{S: iri("a"), P: iri("p"), O: iri("b")},
		{S: iri("c"), P: iri("q"), O: iri("d")},
		{S: iri("e"), P: iri("q"), O: iri("f")},
	}
	if err := e.Load(triples); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(`SELECT ?x ?y WHERE { ?x <http://t/p> ?o1 . ?y <http://t/q> ?o2 }`)
	want, err := sparql.Evaluate(q, rdf.NewGraph(triples))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) || got.Len() != 2 {
		t.Fatalf("cross product rows = %v", got.Canonical())
	}
}

func TestNestedGroupWithUnionAndOptional(t *testing.T) {
	e := newEngine()
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	if err := e.Load(triples); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(fmt.Sprintf(`SELECT ?s ?n WHERE {
		?s <%sname> ?n .
		{ ?s <%sage> ?a } UNION { ?s <%semailAddress> ?m }
		OPTIONAL { ?s <%sworksFor> ?d }
	}`, workload.UnivNS, workload.UnivNS, workload.UnivNS, workload.UnivNS))
	want, err := sparql.Evaluate(q, rdf.NewGraph(rdf.Dedupe(triples)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("nested group wrong: %d vs %d rows", got.Len(), want.Len())
	}
}

func TestContextAccessor(t *testing.T) {
	e := newEngine()
	if e.Context() == nil {
		t.Fatal("nil context")
	}
}

func TestJoinAfterOptionalUnboundSharedVar(t *testing.T) {
	// SPARQL compatibility: a row whose shared variable is unbound
	// (from OPTIONAL) joins with any row — the keyed join alone would
	// drop it.
	e := newEngine()
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://t/" + s) }
	triples := []rdf.Triple{
		{S: iri("a"), P: iri("name"), O: rdf.NewLiteral("A")},
		{S: iri("b"), P: iri("name"), O: rdf.NewLiteral("B")},
		{S: iri("a"), P: iri("email"), O: iri("mboxA")},
		{S: iri("x"), P: iri("box"), O: iri("mboxA")},
		{S: iri("y"), P: iri("box"), O: iri("mboxY")},
	}
	if err := e.Load(triples); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(`SELECT ?s ?m ?o WHERE {
		?s <http://t/name> ?n
		OPTIONAL { ?s <http://t/email> ?m }
		?o <http://t/box> ?m
	}`)
	want, err := sparql.Evaluate(q, rdf.NewGraph(triples))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("unbound shared-var join wrong:\nengine %v\nreference %v",
			got.Canonical(), want.Canonical())
	}
	// Reference semantics: b (unbound ?m) joins both box rows; a joins
	// only mboxA. 3 rows total.
	if got.Len() != 3 {
		t.Fatalf("rows = %d, want 3", got.Len())
	}
}
