// Package sparqlgx reproduces SPARQLGX (Graux et al., ISWC 2016,
// survey ref [13]): RDF vertically partitioned by predicate — a triple
// (s p o) is stored in a "file" named p holding only (s, o) — with
// SPARQL compiled pattern-by-pattern onto the RDD API. Triple-pattern
// results join on their shared variable via keyBy; patterns with no
// shared variable fall back to a Cartesian product. Data statistics
// (distinct subjects / predicates / objects) reorder the join sequence.
//
// Supported fragment (Table II): BGP+ — DISTINCT, SORT, UNION, OPTIONAL
// and FILTER on top of BGPs.
package sparqlgx

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
)

// SO is one row of a vertical-partition file: the subject and object of
// a triple whose predicate names the file.
type SO struct {
	S, O rdf.Term
}

// Engine is the SPARQLGX system.
type Engine struct {
	ctx *spark.Context
	// vertical holds one RDD per predicate — the vertical partitioning.
	vertical map[string]*spark.RDD[SO]
	// preds keeps predicate IRIs sorted for deterministic iteration.
	preds []string
	stats rdf.Stats
}

// New creates an unloaded engine on ctx.
func New(ctx *spark.Context) *Engine {
	return &Engine{ctx: ctx}
}

// Info implements core.Engine.
func (e *Engine) Info() core.SystemInfo {
	return core.SystemInfo{
		Name:            "SPARQLGX",
		Citation:        "[13]",
		Model:           core.TripleModel,
		Abstractions:    []core.Abstraction{core.RDDAbstraction},
		QueryProcessing: "RDD API",
		Optimized:       true,
		Partitioning:    "Vertical",
		SPARQL:          core.FragmentBGPPlus,
	}
}

// Context implements core.Engine.
func (e *Engine) Context() *spark.Context { return e.ctx }

// Load vertically partitions the dataset: one (s,o) RDD per predicate,
// and computes the statistics used for join reordering.
func (e *Engine) Load(triples []rdf.Triple) error {
	triples = rdf.Dedupe(triples)
	e.vertical = make(map[string]*spark.RDD[SO])
	byPred := make(map[string][]SO)
	for _, t := range triples {
		byPred[t.P.Value] = append(byPred[t.P.Value], SO{S: t.S, O: t.O})
	}
	e.preds = e.preds[:0]
	for p, rows := range byPred {
		e.vertical[p] = spark.Parallelize(e.ctx, rows)
		e.preds = append(e.preds, p)
	}
	sort.Strings(e.preds)
	e.stats = rdf.ComputeStats(triples)
	return nil
}

// Execute implements core.Engine.
func (e *Engine) Execute(q *sparql.Query) (*sparql.Results, error) {
	if q.Form == sparql.FormDescribe {
		return nil, fmt.Errorf("sparqlgx: DESCRIBE is not supported (use the reference evaluator)")
	}
	if e.vertical == nil {
		return nil, fmt.Errorf("sparqlgx: no dataset loaded")
	}
	rows, err := e.evalPattern(q.Where)
	if err != nil {
		return nil, err
	}
	return sparql.ApplySolutionModifiers(q, rows.Collect()), nil
}

// evalPattern evaluates the supported algebra; BGPs go through the
// vertical-partition join pipeline, other operators map onto Spark ops.
func (e *Engine) evalPattern(p sparql.GraphPattern) (*spark.RDD[sparql.Binding], error) {
	switch n := p.(type) {
	case sparql.BGP:
		return e.evalBGP(n)
	case sparql.Group:
		cur := spark.Parallelize(e.ctx, []sparql.Binding{{}})
		for _, part := range n.Parts {
			sub, err := e.evalPattern(part)
			if err != nil {
				return nil, err
			}
			cur = joinBindingRDDs(e.ctx, cur, sub)
		}
		return cur, nil
	case sparql.Filter:
		inner, err := e.evalPattern(n.Inner)
		if err != nil {
			return nil, err
		}
		cond := n.Cond
		return inner.Filter(func(b sparql.Binding) bool { return cond.EvalFilter(b) }), nil
	case sparql.Optional:
		left, err := e.evalPattern(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.evalPattern(n.Right)
		if err != nil {
			return nil, err
		}
		return leftOuterJoinBindingRDDs(e.ctx, left, right), nil
	case sparql.Union:
		left, err := e.evalPattern(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.evalPattern(n.Right)
		if err != nil {
			return nil, err
		}
		return left.Union(right), nil
	default:
		return nil, fmt.Errorf("sparqlgx: unsupported pattern %T", p)
	}
}

// evalBGP reorders the triple patterns by estimated selectivity (the
// statistics optimization of the paper) and then folds them left to
// right, joining each pattern's bindings with the accumulated result by
// keyBy on the shared variables.
func (e *Engine) evalBGP(bgp sparql.BGP) (*spark.RDD[sparql.Binding], error) {
	if len(bgp.Patterns) == 0 {
		return spark.Parallelize(e.ctx, []sparql.Binding{{}}), nil
	}
	ordered := e.reorder(bgp.Patterns)
	cur := e.scanPattern(ordered[0])
	bound := map[sparql.Var]bool{}
	for _, v := range ordered[0].Vars() {
		bound[v] = true
	}
	for _, tp := range ordered[1:] {
		next := e.scanPattern(tp)
		var shared []sparql.Var
		for _, v := range tp.Vars() {
			if bound[v] {
				shared = append(shared, v)
			}
		}
		if len(shared) == 0 {
			cur = crossBindingRDDs(e.ctx, cur, next)
		} else {
			cur = joinOn(e.ctx, cur, next, shared)
		}
		for _, v := range tp.Vars() {
			bound[v] = true
		}
	}
	return cur, nil
}

// reorder sorts patterns ascending by estimated cardinality: bound
// predicates use the per-predicate triple count, a bound subject or
// object divides by the distinct-subject/object counts (the statistics
// SPARQLGX gathers), and variable predicates scan everything.
func (e *Engine) reorder(tps []sparql.TriplePattern) []sparql.TriplePattern {
	out := append([]sparql.TriplePattern{}, tps...)
	est := func(tp sparql.TriplePattern) float64 {
		var card float64
		if !tp.P.IsVar {
			card = float64(e.stats.PredicateCounts[tp.P.Term.Value])
		} else {
			card = float64(e.stats.Triples)
		}
		if !tp.S.IsVar && e.stats.DistinctSubjects > 0 {
			card /= float64(e.stats.DistinctSubjects)
		}
		if !tp.O.IsVar && e.stats.DistinctObjects > 0 {
			card /= float64(e.stats.DistinctObjects)
		}
		return card
	}
	sort.SliceStable(out, func(i, j int) bool { return est(out[i]) < est(out[j]) })
	return out
}

// scanPattern reads the vertical partition(s) for one pattern and emits
// its bindings. A bound predicate touches exactly one file — the core
// SPARQLGX win; a variable predicate unions all files.
func (e *Engine) scanPattern(tp sparql.TriplePattern) *spark.RDD[sparql.Binding] {
	matchSO := func(pred rdf.Term) func(SO) []sparql.Binding {
		return func(row SO) []sparql.Binding {
			b := sparql.Binding{}
			if tp.S.IsVar {
				b[tp.S.Var] = row.S
			} else if tp.S.Term != row.S {
				return nil
			}
			if tp.O.IsVar {
				if cur, ok := b[tp.O.Var]; ok {
					if cur != row.O {
						return nil
					}
				} else {
					b[tp.O.Var] = row.O
				}
			} else if tp.O.Term != row.O {
				return nil
			}
			if tp.P.IsVar {
				if cur, ok := b[tp.P.Var]; ok {
					if cur != pred {
						return nil
					}
				} else {
					b[tp.P.Var] = pred
				}
			}
			// Same-variable subject/object (?x p ?x) consistency.
			if tp.S.IsVar && tp.O.IsVar && tp.S.Var == tp.O.Var && row.S != row.O {
				return nil
			}
			return []sparql.Binding{b}
		}
	}
	if !tp.P.IsVar {
		file, ok := e.vertical[tp.P.Term.Value]
		if !ok {
			return spark.Parallelize(e.ctx, []sparql.Binding{})
		}
		return spark.FlatMap(file, matchSO(tp.P.Term))
	}
	result := spark.Parallelize(e.ctx, []sparql.Binding{})
	for _, p := range e.preds {
		pt := rdf.NewIRI(p)
		result = result.Union(spark.FlatMap(e.vertical[p], matchSO(pt)))
	}
	return result
}

// --- binding RDD combinators (SPARQLGX's keyBy-based joins) ---

// bindingKey renders the values of vars in b, for use as a join key.
func bindingKey(b sparql.Binding, vars []sparql.Var) string {
	parts := make([]string, len(vars))
	for i, v := range vars {
		if t, ok := b[v]; ok {
			parts[i] = t.String()
		}
	}
	return strings.Join(parts, "\x00")
}

// joinOn joins two binding RDDs on the given shared variables using the
// partitioned keyBy join of the RDD API.
func joinOn(ctx *spark.Context, a, b *spark.RDD[sparql.Binding], shared []sparql.Var) *spark.RDD[sparql.Binding] {
	ka := spark.KeyBy(a, func(x sparql.Binding) string { return bindingKey(x, shared) })
	kb := spark.KeyBy(b, func(x sparql.Binding) string { return bindingKey(x, shared) })
	joined := spark.Join(ka, kb)
	return spark.FlatMap(joined, func(p spark.Pair[string, spark.Tuple2[sparql.Binding, sparql.Binding]]) []sparql.Binding {
		if !p.Value.A.Compatible(p.Value.B) {
			return nil
		}
		return []sparql.Binding{p.Value.A.Merge(p.Value.B)}
	})
}

// joinBindingRDDs joins on all shared variables of the two sides (the
// generic SPARQL join); with no shared variables it is a cross product.
// Rows missing a shared variable (possible below OPTIONAL) cannot use
// the keyed join — SPARQL compatibility lets an unbound variable join
// anything — so they take the Cartesian-with-compatibility path.
func joinBindingRDDs(ctx *spark.Context, a, b *spark.RDD[sparql.Binding]) *spark.RDD[sparql.Binding] {
	av := varsOf(a)
	bv := varsOf(b)
	var shared []sparql.Var
	for v := range av {
		if bv[v] {
			shared = append(shared, v)
		}
	}
	sort.Slice(shared, func(i, j int) bool { return shared[i] < shared[j] })
	if len(shared) == 0 {
		return crossBindingRDDs(ctx, a, b)
	}
	hasAll := func(x sparql.Binding) bool {
		for _, v := range shared {
			if _, ok := x[v]; !ok {
				return false
			}
		}
		return true
	}
	aBound := a.Filter(hasAll)
	bBound := b.Filter(hasAll)
	result := joinOn(ctx, aBound, bBound, shared)
	aPartial := a.Filter(func(x sparql.Binding) bool { return !hasAll(x) })
	if aPartial.Count() > 0 {
		result = result.Union(crossBindingRDDs(ctx, aPartial, b))
	}
	bPartial := b.Filter(func(x sparql.Binding) bool { return !hasAll(x) })
	if bPartial.Count() > 0 {
		result = result.Union(crossBindingRDDs(ctx, aBound, bPartial))
	}
	return result
}

// crossBindingRDDs computes the Cartesian product of two binding RDDs.
func crossBindingRDDs(ctx *spark.Context, a, b *spark.RDD[sparql.Binding]) *spark.RDD[sparql.Binding] {
	prod := spark.Cartesian(a, b)
	return spark.FlatMap(prod, func(t spark.Tuple2[sparql.Binding, sparql.Binding]) []sparql.Binding {
		if !t.A.Compatible(t.B) {
			return nil
		}
		return []sparql.Binding{t.A.Merge(t.B)}
	})
}

// leftOuterJoinBindingRDDs implements OPTIONAL: left rows survive even
// without a compatible right row.
func leftOuterJoinBindingRDDs(ctx *spark.Context, a, b *spark.RDD[sparql.Binding]) *spark.RDD[sparql.Binding] {
	right := b.Collect()
	bc := spark.NewBroadcast(ctx, right)
	return spark.FlatMap(a, func(l sparql.Binding) []sparql.Binding {
		var out []sparql.Binding
		for _, r := range bc.Value() {
			if l.Compatible(r) {
				out = append(out, l.Merge(r))
			}
		}
		if len(out) == 0 {
			out = append(out, l.Clone())
		}
		return out
	})
}

// varsOf samples the variables present in a binding RDD.
func varsOf(r *spark.RDD[sparql.Binding]) map[sparql.Var]bool {
	out := map[sparql.Var]bool{}
	for _, b := range r.Take(32) {
		for v := range b {
			out[v] = true
		}
	}
	return out
}
