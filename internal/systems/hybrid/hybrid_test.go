package hybrid

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems/systemstest"
	"repro/internal/workload"
)

func ctx() *spark.Context {
	return spark.NewContext(spark.Config{Parallelism: 4, Executors: 2, BroadcastThreshold: 1000, MaxConcurrency: 4})
}

func TestConformanceHybrid(t *testing.T) {
	systemstest.Run(t, func() core.Engine { return New(ctx()) })
}

func TestConformanceRDDStrategy(t *testing.T) {
	systemstest.Run(t, func() core.Engine { return NewWithStrategy(ctx(), StrategyRDD) })
}

func TestConformanceDataFrameStrategy(t *testing.T) {
	systemstest.Run(t, func() core.Engine { return NewWithStrategy(ctx(), StrategyDataFrame) })
}

func TestConformanceSparkSQLStrategy(t *testing.T) {
	systemstest.Run(t, func() core.Engine { return NewWithStrategy(ctx(), StrategySparkSQL) })
}

func TestRandomizedAllStrategies(t *testing.T) {
	for _, s := range []Strategy{StrategyHybrid, StrategyRDD, StrategyDataFrame, StrategySparkSQL} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			systemstest.RunRandomized(t, func() core.Engine { return NewWithStrategy(ctx(), s) }, 3)
		})
	}
}

func TestInfo(t *testing.T) {
	info := New(ctx()).Info()
	if info.Name != "Hybrid" || info.SPARQL != core.FragmentBGP {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Abstractions) != 2 {
		t.Fatalf("hybrid spans RDD and DataFrames: %v", info.Abstractions)
	}
}

func TestRejectsNonBGP(t *testing.T) {
	e := New(ctx())
	if err := e.Load(workload.GenerateUniversity(workload.SmallUniversity())); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(`SELECT ?x WHERE { ?x <http://e/p> ?y FILTER(?y > 1) }`)
	if _, err := e.Execute(q); err == nil {
		t.Fatal("non-BGP query must be rejected (fragment is BGP)")
	}
}

func starQuery() *sparql.Query {
	return sparql.MustParse(fmt.Sprintf(
		`SELECT ?s ?n ?a WHERE { ?s <%sname> ?n . ?s <%sage> ?a }`,
		workload.UnivNS, workload.UnivNS))
}

func linearQuery() *sparql.Query {
	return sparql.MustParse(fmt.Sprintf(
		`SELECT ?st ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS))
}

func TestHybridStarJoinIsCoPartitioned(t *testing.T) {
	// Subject-subject joins over subject-hash-partitioned data must not
	// shuffle under the hybrid planner.
	e := New(ctx())
	if err := e.Load(workload.GenerateUniversity(workload.SmallUniversity())); err != nil {
		t.Fatal(err)
	}
	before := e.Context().Snapshot()
	res, err := e.Execute(starQuery())
	if err != nil {
		t.Fatal(err)
	}
	d := e.Context().Snapshot().Diff(before)
	if d.ShuffleRecords != 0 {
		t.Fatalf("hybrid star join shuffled %d records", d.ShuffleRecords)
	}
	if res.Len() == 0 {
		t.Fatal("no results")
	}
}

func TestRDDStrategyShufflesOnStar(t *testing.T) {
	// The pure RDD strategy keys each join explicitly, so even star
	// joins shuffle — the inefficiency the hybrid planner removes.
	e := NewWithStrategy(ctx(), StrategyRDD)
	if err := e.Load(workload.GenerateUniversity(workload.SmallUniversity())); err != nil {
		t.Fatal(err)
	}
	before := e.Context().Snapshot()
	if _, err := e.Execute(starQuery()); err != nil {
		t.Fatal(err)
	}
	d := e.Context().Snapshot().Diff(before)
	if d.ShuffleRecords == 0 {
		t.Fatal("RDD strategy should shuffle on star joins")
	}
}

func TestStrategiesAgreeOnAnswers(t *testing.T) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	want, err := sparql.Evaluate(linearQuery(), rdf.NewGraph(triples))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{StrategyHybrid, StrategyRDD, StrategyDataFrame, StrategySparkSQL} {
		e := NewWithStrategy(ctx(), s)
		if err := e.Load(triples); err != nil {
			t.Fatal(err)
		}
		got, err := e.Execute(linearQuery())
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%v: wrong answers (%d rows vs %d)", s, got.Len(), want.Len())
		}
	}
}

func TestHybridBeatsPureStrategiesOnShuffle(t *testing.T) {
	// The paper's claim: the hybrid plan's network cost is at most that
	// of the pure partitioned plan, and its total data movement
	// (shuffle + broadcast) at most the Cartesian strategy's.
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	shuffleOf := func(s Strategy, q *sparql.Query) int64 {
		e := NewWithStrategy(ctx(), s)
		if err := e.Load(triples); err != nil {
			t.Fatal(err)
		}
		before := e.Context().Snapshot()
		if _, err := e.Execute(q); err != nil {
			t.Fatal(err)
		}
		return e.Context().Snapshot().Diff(before).ShuffleRecords
	}
	for _, q := range []*sparql.Query{starQuery(), linearQuery()} {
		hybrid := shuffleOf(StrategyHybrid, q)
		rddOnly := shuffleOf(StrategyRDD, q)
		if hybrid > rddOnly {
			t.Fatalf("hybrid shuffled more (%d) than pure partitioned (%d)", hybrid, rddOnly)
		}
	}
}

func TestSparkSQLCartesianIsExpensive(t *testing.T) {
	// The naive Spark SQL strategy's Cartesian product must do far more
	// record comparisons — visible as broadcast traffic of the whole
	// pattern match sets.
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	e := NewWithStrategy(ctx(), StrategySparkSQL)
	if err := e.Load(triples); err != nil {
		t.Fatal(err)
	}
	before := e.Context().Snapshot()
	if _, err := e.Execute(starQuery()); err != nil {
		t.Fatal(err)
	}
	cartesian := e.Context().Snapshot().Diff(before)

	h := New(ctx())
	if err := h.Load(triples); err != nil {
		t.Fatal(err)
	}
	before = h.Context().Snapshot()
	if _, err := h.Execute(starQuery()); err != nil {
		t.Fatal(err)
	}
	hybridCost := h.Context().Snapshot().Diff(before)

	if cartesian.BroadcastRecords <= hybridCost.BroadcastRecords {
		t.Fatalf("cartesian broadcast %d should exceed hybrid %d",
			cartesian.BroadcastRecords, hybridCost.BroadcastRecords)
	}
}

func TestExecuteWithoutLoad(t *testing.T) {
	if _, err := New(ctx()).Execute(starQuery()); err == nil {
		t.Fatal("expected error before Load")
	}
}
