// Package hybrid reproduces the SPARQL graph-pattern processing study
// of Naacke, Amann and Curé (GRADES@SIGMOD 2017, survey ref [21]):
// five ways of evaluating BGPs on Spark, distilled here into four
// selectable strategies over subject-hash-partitioned data:
//
//   - StrategySparkSQL: the naive Spark SQL translation, which uses
//     broadcast joins but degenerates to Cartesian products when a
//     query has more than one triple pattern — the significant
//     drawback the paper calls out;
//   - StrategyRDD: each join becomes a partitioned (shuffle) join in
//     the input pattern order, and every triple pattern re-reads the
//     whole dataset;
//   - StrategyDataFrame: cost-based broadcast-vs-partitioned selection
//     on size alone, ignoring existing data partitioning;
//   - StrategyHybrid: the paper's contribution — a greedy optimizer
//     that combines broadcast joins with partitioned joins and
//     exploits the subject-hash partitioning, so subject-subject
//     (star) joins run co-partitioned with no shuffle.
//
// Supported fragment (Table II): BGP.
package hybrid

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
)

// Strategy selects the join planning mode.
type Strategy int

// Strategies of the study.
const (
	StrategyHybrid Strategy = iota
	StrategyRDD
	StrategyDataFrame
	StrategySparkSQL
)

func (s Strategy) String() string {
	switch s {
	case StrategyRDD:
		return "rdd-partitioned"
	case StrategyDataFrame:
		return "dataframe-broadcast"
	case StrategySparkSQL:
		return "sparksql-cartesian"
	default:
		return "hybrid"
	}
}

// Engine is the hybrid-study system.
type Engine struct {
	ctx *spark.Context
	// Mode selects the join strategy; the zero value is the hybrid
	// planner.
	Mode Strategy
	// data is keyed and hash-partitioned by subject rendering.
	data  *spark.RDD[spark.Pair[string, rdf.Triple]]
	stats rdf.Stats
}

// New creates an unloaded engine on ctx (hybrid mode).
func New(ctx *spark.Context) *Engine { return &Engine{ctx: ctx} }

// NewWithStrategy creates an engine pinned to one strategy, for the
// join-strategy ablation.
func NewWithStrategy(ctx *spark.Context, s Strategy) *Engine {
	return &Engine{ctx: ctx, Mode: s}
}

// Info implements core.Engine.
func (e *Engine) Info() core.SystemInfo {
	return core.SystemInfo{
		Name:            "Hybrid",
		Citation:        "[21]",
		Model:           core.TripleModel,
		Abstractions:    []core.Abstraction{core.RDDAbstraction, core.DataFramesAbstraction},
		QueryProcessing: "Hybrid",
		Optimized:       true,
		Partitioning:    "Hash-sbj",
		SPARQL:          core.FragmentBGP,
	}
}

// Context implements core.Engine.
func (e *Engine) Context() *spark.Context { return e.ctx }

// Load hash-partitions the dataset on the subject value.
func (e *Engine) Load(triples []rdf.Triple) error {
	triples = rdf.Dedupe(triples)
	keyed := spark.KeyBy(spark.Parallelize(e.ctx, triples), func(t rdf.Triple) string { return t.S.String() })
	e.data = spark.PartitionBy(keyed, spark.NewHashPartitioner[string](e.ctx.DefaultParallelism()))
	e.stats = rdf.ComputeStats(triples)
	return nil
}

// Execute implements core.Engine. Only BGP queries are supported,
// matching the study's scope.
func (e *Engine) Execute(q *sparql.Query) (*sparql.Results, error) {
	if q.Form == sparql.FormDescribe {
		return nil, fmt.Errorf("hybrid: DESCRIBE is not supported (use the reference evaluator)")
	}
	if e.data == nil {
		return nil, fmt.Errorf("hybrid: no dataset loaded")
	}
	bgp, ok := q.BGPOf()
	if !ok {
		return nil, fmt.Errorf("hybrid: only BGP queries are supported (fragment per Table II)")
	}
	var rows []sparql.Binding
	var err error
	switch e.Mode {
	case StrategySparkSQL:
		rows, err = e.evalCartesian(bgp)
	case StrategyRDD:
		rows, err = e.evalPartitionedOrder(bgp)
	case StrategyDataFrame:
		rows, err = e.evalSizeBased(bgp)
	default:
		rows, err = e.evalHybrid(bgp)
	}
	if err != nil {
		return nil, err
	}
	return sparql.ApplySolutionModifiers(q, rows), nil
}

// scan matches one triple pattern over the partitioned dataset. The
// result stays keyed (and partitioned) by subject, so subject-subject
// joins can run without a shuffle. Every scan reads the full dataset
// (there is no predicate index in this system).
func (e *Engine) scan(tp sparql.TriplePattern) *spark.RDD[spark.Pair[string, sparql.Binding]] {
	e.ctx.AddRead(e.stats.Triples)
	return spark.MapValues(e.data.Filter(func(p spark.Pair[string, rdf.Triple]) bool {
		return matches(tp, p.Value)
	}), func(t rdf.Triple) sparql.Binding {
		return bind(tp, t)
	})
}

func matches(tp sparql.TriplePattern, t rdf.Triple) bool {
	if !tp.S.IsVar && tp.S.Term != t.S {
		return false
	}
	if !tp.P.IsVar && tp.P.Term != t.P {
		return false
	}
	if !tp.O.IsVar && tp.O.Term != t.O {
		return false
	}
	// Repeated-variable consistency within the pattern.
	if tp.S.IsVar && tp.O.IsVar && tp.S.Var == tp.O.Var && t.S != t.O {
		return false
	}
	if tp.S.IsVar && tp.P.IsVar && tp.S.Var == tp.P.Var && t.S != t.P {
		return false
	}
	if tp.P.IsVar && tp.O.IsVar && tp.P.Var == tp.O.Var && t.P != t.O {
		return false
	}
	return true
}

func bind(tp sparql.TriplePattern, t rdf.Triple) sparql.Binding {
	b := sparql.Binding{}
	if tp.S.IsVar {
		b[tp.S.Var] = t.S
	}
	if tp.P.IsVar {
		b[tp.P.Var] = t.P
	}
	if tp.O.IsVar {
		b[tp.O.Var] = t.O
	}
	return b
}

// estimate returns the expected match count of a pattern from the
// per-predicate statistics.
func (e *Engine) estimate(tp sparql.TriplePattern) int {
	var card int
	if !tp.P.IsVar {
		card = e.stats.PredicateCounts[tp.P.Term.Value]
	} else {
		card = e.stats.Triples
	}
	if !tp.S.IsVar && e.stats.DistinctSubjects > 0 {
		card = card/e.stats.DistinctSubjects + 1
	}
	if !tp.O.IsVar && e.stats.DistinctObjects > 0 {
		card = card/e.stats.DistinctObjects + 1
	}
	return card
}

// --- strategy: Spark SQL (cartesian products) ---

// evalCartesian reproduces the naive Spark SQL behaviour the study
// criticizes: multi-pattern queries combine via Cartesian products and
// filter afterwards.
func (e *Engine) evalCartesian(bgp sparql.BGP) ([]sparql.Binding, error) {
	if len(bgp.Patterns) == 0 {
		return []sparql.Binding{{}}, nil
	}
	cur := spark.Values(e.scan(bgp.Patterns[0]))
	for _, tp := range bgp.Patterns[1:] {
		next := spark.Values(e.scan(tp))
		prod := spark.Cartesian(cur, next)
		cur = spark.FlatMap(prod, func(t spark.Tuple2[sparql.Binding, sparql.Binding]) []sparql.Binding {
			if !t.A.Compatible(t.B) {
				return nil
			}
			return []sparql.Binding{t.A.Merge(t.B)}
		})
	}
	return cur.Collect(), nil
}

// --- strategy: RDD partitioned joins in input order ---

func (e *Engine) evalPartitionedOrder(bgp sparql.BGP) ([]sparql.Binding, error) {
	return e.evalSequence(bgp.Patterns, func(left, right *spark.RDD[sparql.Binding], shared []sparql.Var, _, _ int) *spark.RDD[sparql.Binding] {
		return joinPartitioned(left, right, shared)
	})
}

// --- strategy: DataFrame size-based broadcast ---

func (e *Engine) evalSizeBased(bgp sparql.BGP) ([]sparql.Binding, error) {
	threshold := e.ctx.Conf().BroadcastThreshold
	return e.evalSequence(bgp.Patterns, func(left, right *spark.RDD[sparql.Binding], shared []sparql.Var, leftEst, rightEst int) *spark.RDD[sparql.Binding] {
		if rightEst < threshold || leftEst < threshold {
			return joinBroadcast(left, right, shared, leftEst, rightEst)
		}
		return joinPartitioned(left, right, shared)
	})
}

// evalSequence folds patterns in input order with the provided join.
func (e *Engine) evalSequence(tps []sparql.TriplePattern, join func(l, r *spark.RDD[sparql.Binding], shared []sparql.Var, le, re int) *spark.RDD[sparql.Binding]) ([]sparql.Binding, error) {
	if len(tps) == 0 {
		return []sparql.Binding{{}}, nil
	}
	cur := spark.Values(e.scan(tps[0]))
	curVars := varSet(tps[0].Vars())
	curEst := e.estimate(tps[0])
	for _, tp := range tps[1:] {
		next := spark.Values(e.scan(tp))
		shared := sharedVars(curVars, tp.Vars())
		cur = join(cur, next, shared, curEst, e.estimate(tp))
		for _, v := range tp.Vars() {
			curVars[v] = true
		}
		if est := e.estimate(tp); est < curEst {
			curEst = est
		}
	}
	return cur.Collect(), nil
}

// --- strategy: hybrid greedy planner ---

// evalHybrid implements the study's dynamic greedy optimization: group
// patterns into subject stars first (their joins are co-partitioned,
// costing nothing), order groups by estimated cardinality, and pick
// broadcast vs partitioned per cross-group join based on statistics.
func (e *Engine) evalHybrid(bgp sparql.BGP) ([]sparql.Binding, error) {
	if len(bgp.Patterns) == 0 {
		return []sparql.Binding{{}}, nil
	}
	groups := groupBySubject(bgp.Patterns)
	type evaluatedGroup struct {
		rdd  *spark.RDD[sparql.Binding]
		vars map[sparql.Var]bool
		est  int
	}
	evaluated := make([]evaluatedGroup, len(groups))
	for i, g := range groups {
		// Within a star group, all joins share the subject key: keep the
		// subject-keyed pair RDDs and join co-partitioned (no shuffle).
		cur := e.scan(g[0])
		est := e.estimate(g[0])
		for _, tp := range g[1:] {
			next := e.scan(tp)
			joined := spark.Join(cur, next)
			cur = spark.FlatMap(joined, func(p spark.Pair[string, spark.Tuple2[sparql.Binding, sparql.Binding]]) []spark.Pair[string, sparql.Binding] {
				if !p.Value.A.Compatible(p.Value.B) {
					return nil
				}
				return []spark.Pair[string, sparql.Binding]{{Key: p.Key, Value: p.Value.A.Merge(p.Value.B)}}
			})
			if te := e.estimate(tp); te < est {
				est = te
			}
		}
		evaluated[i] = evaluatedGroup{rdd: spark.Values(cur), vars: varSet(varsOfGroup(g)), est: est}
	}
	// Greedy: start from the smallest group; repeatedly join the
	// smallest connected group, broadcast when cheap.
	sort.SliceStable(evaluated, func(i, j int) bool { return evaluated[i].est < evaluated[j].est })
	cur := evaluated[0]
	rest := evaluated[1:]
	threshold := e.ctx.Conf().BroadcastThreshold
	for len(rest) > 0 {
		pick := -1
		for i, cand := range rest {
			if len(sharedVarsMap(cur.vars, cand.vars)) == 0 {
				continue
			}
			if pick < 0 || cand.est < rest[pick].est {
				pick = i
			}
		}
		if pick < 0 {
			pick = 0
		}
		next := rest[pick]
		rest = append(rest[:pick], rest[pick+1:]...)
		shared := sharedVarsMap(cur.vars, next.vars)
		var joined *spark.RDD[sparql.Binding]
		switch {
		case len(shared) == 0:
			prod := spark.Cartesian(cur.rdd, next.rdd)
			joined = spark.FlatMap(prod, func(t spark.Tuple2[sparql.Binding, sparql.Binding]) []sparql.Binding {
				if !t.A.Compatible(t.B) {
					return nil
				}
				return []sparql.Binding{t.A.Merge(t.B)}
			})
		case next.est < threshold || cur.est < threshold:
			joined = joinBroadcast(cur.rdd, next.rdd, shared, cur.est, next.est)
		default:
			joined = joinPartitioned(cur.rdd, next.rdd, shared)
		}
		merged := map[sparql.Var]bool{}
		for v := range cur.vars {
			merged[v] = true
		}
		for v := range next.vars {
			merged[v] = true
		}
		est := cur.est
		if next.est < est {
			est = next.est
		}
		cur = evaluatedGroup{rdd: joined, vars: merged, est: est}
	}
	return cur.rdd.Collect(), nil
}

// --- shared join helpers ---

func joinPartitioned(left, right *spark.RDD[sparql.Binding], shared []sparql.Var) *spark.RDD[sparql.Binding] {
	if len(shared) == 0 {
		prod := spark.Cartesian(left, right)
		return spark.FlatMap(prod, func(t spark.Tuple2[sparql.Binding, sparql.Binding]) []sparql.Binding {
			if !t.A.Compatible(t.B) {
				return nil
			}
			return []sparql.Binding{t.A.Merge(t.B)}
		})
	}
	ka := spark.KeyBy(left, func(b sparql.Binding) string { return bindingKey(b, shared) })
	kb := spark.KeyBy(right, func(b sparql.Binding) string { return bindingKey(b, shared) })
	joined := spark.Join(ka, kb)
	return spark.FlatMap(joined, func(p spark.Pair[string, spark.Tuple2[sparql.Binding, sparql.Binding]]) []sparql.Binding {
		if !p.Value.A.Compatible(p.Value.B) {
			return nil
		}
		return []sparql.Binding{p.Value.A.Merge(p.Value.B)}
	})
}

func joinBroadcast(left, right *spark.RDD[sparql.Binding], shared []sparql.Var, leftEst, rightEst int) *spark.RDD[sparql.Binding] {
	ka := spark.KeyBy(left, func(b sparql.Binding) string { return bindingKey(b, shared) })
	kb := spark.KeyBy(right, func(b sparql.Binding) string { return bindingKey(b, shared) })
	var joined *spark.RDD[spark.Pair[string, spark.Tuple2[sparql.Binding, sparql.Binding]]]
	if rightEst <= leftEst {
		joined = spark.BroadcastJoin(ka, kb)
	} else {
		swapped := spark.BroadcastJoin(kb, ka)
		joined = spark.MapValues(swapped, func(t spark.Tuple2[sparql.Binding, sparql.Binding]) spark.Tuple2[sparql.Binding, sparql.Binding] {
			return spark.Tuple2[sparql.Binding, sparql.Binding]{A: t.B, B: t.A}
		})
	}
	return spark.FlatMap(joined, func(p spark.Pair[string, spark.Tuple2[sparql.Binding, sparql.Binding]]) []sparql.Binding {
		if !p.Value.A.Compatible(p.Value.B) {
			return nil
		}
		return []sparql.Binding{p.Value.A.Merge(p.Value.B)}
	})
}

func groupBySubject(tps []sparql.TriplePattern) [][]sparql.TriplePattern {
	keyOf := func(el sparql.TPElem) string {
		if el.IsVar {
			return "?" + string(el.Var)
		}
		return el.Term.String()
	}
	byKey := map[string][]sparql.TriplePattern{}
	var order []string
	for _, tp := range tps {
		k := keyOf(tp.S)
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], tp)
	}
	out := make([][]sparql.TriplePattern, 0, len(order))
	for _, k := range order {
		out = append(out, byKey[k])
	}
	return out
}

func varsOfGroup(g []sparql.TriplePattern) []sparql.Var {
	var out []sparql.Var
	seen := map[sparql.Var]bool{}
	for _, tp := range g {
		for _, v := range tp.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

func varSet(vs []sparql.Var) map[sparql.Var]bool {
	out := map[sparql.Var]bool{}
	for _, v := range vs {
		out[v] = true
	}
	return out
}

func sharedVars(have map[sparql.Var]bool, vs []sparql.Var) []sparql.Var {
	var out []sparql.Var
	for _, v := range vs {
		if have[v] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sharedVarsMap(a, b map[sparql.Var]bool) []sparql.Var {
	var out []sparql.Var
	for v := range a {
		if b[v] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func bindingKey(b sparql.Binding, vars []sparql.Var) string {
	parts := make([]string, len(vars))
	for i, v := range vars {
		if t, ok := b[v]; ok {
			parts[i] = t.String()
		}
	}
	return strings.Join(parts, "\x00")
}
