package s2x

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems/systemstest"
	"repro/internal/workload"
)

func newEngine() *Engine {
	return New(spark.NewContext(spark.Config{Parallelism: 4, Executors: 2, BroadcastThreshold: 1000, MaxConcurrency: 4}))
}

func TestConformance(t *testing.T) {
	systemstest.Run(t, func() core.Engine { return newEngine() })
}

func TestRandomized(t *testing.T) {
	systemstest.RunRandomized(t, func() core.Engine { return newEngine() }, 5)
}

func TestInfo(t *testing.T) {
	info := newEngine().Info()
	if info.Name != "S2X" || info.Model != core.GraphModel {
		t.Fatalf("info = %+v", info)
	}
	if info.Abstractions[0] != core.GraphXAbstraction {
		t.Fatalf("abstractions = %v", info.Abstractions)
	}
}

func TestPropertyGraphConstruction(t *testing.T) {
	e := newEngine()
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://t/" + s) }
	if err := e.Load([]rdf.Triple{
		{S: iri("a"), P: iri("p"), O: iri("b")},
		{S: iri("b"), P: iri("p"), O: iri("c")},
		{S: iri("a"), P: iri("q"), O: rdf.NewLiteral("x")},
	}); err != nil {
		t.Fatal(err)
	}
	// Vertices: a, b, c, "x" — literals become vertices too.
	if e.graph.NumVertices() != 4 {
		t.Fatalf("vertices = %d", e.graph.NumVertices())
	}
	if e.graph.NumEdges() != 3 {
		t.Fatalf("edges = %d", e.graph.NumEdges())
	}
}

func TestValidationPrunesAndMeters(t *testing.T) {
	// Linear query on a chain: validation must run supersteps and
	// discard impossible candidates.
	e := newEngine()
	if err := e.Load(workload.GenerateUniversity(workload.SmallUniversity())); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(fmt.Sprintf(
		`SELECT ?st ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS))
	before := e.Context().Snapshot()
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	d := e.Context().Snapshot().Diff(before)
	if d.Supersteps == 0 {
		t.Fatal("validation ran no supersteps")
	}
	if res.Len() == 0 {
		t.Fatal("no results")
	}
}

func TestSuperstepsGrowWithDiameter(t *testing.T) {
	// A longer chain query needs at least as many validation rounds.
	e := newEngine()
	if err := e.Load(workload.GenerateUniversity(workload.SmallUniversity())); err != nil {
		t.Fatal(err)
	}
	run := func(q string) int64 {
		before := e.Context().Snapshot()
		if _, err := e.Execute(sparql.MustParse(q)); err != nil {
			t.Fatal(err)
		}
		return e.Context().Snapshot().Diff(before).Supersteps
	}
	star := run(fmt.Sprintf(`SELECT ?s WHERE { ?s <%sname> ?n . ?s <%sage> ?a }`, workload.UnivNS, workload.UnivNS))
	chain := run(fmt.Sprintf(`SELECT ?st WHERE { ?st <%sadvisor> ?p . ?p <%sworksFor> ?d . ?d <%ssubOrganizationOf> ?u }`,
		workload.UnivNS, workload.UnivNS, workload.UnivNS))
	if chain < star {
		t.Fatalf("chain supersteps %d < star %d", chain, star)
	}
}

func TestExecuteWithoutLoad(t *testing.T) {
	if _, err := newEngine().Execute(sparql.MustParse(`SELECT ?s WHERE { ?s ?p ?o }`)); err == nil {
		t.Fatal("expected error before Load")
	}
}
