// Package s2x reproduces S2X (Schätzle et al., Big-O(Q) 2015, survey
// ref [23]): graph-parallel SPARQL on GraphX combined with Spark's
// data-parallel operators. RDF is modeled as a property graph — vertex
// properties hold subject/object values plus the query variables the
// vertex is a match candidate for; the edge property holds the
// predicate.
//
// BGP evaluation follows the paper's two phases:
//
//  1. match: every triple pattern is matched against all edges
//     independently, seeding per-vertex candidate sets;
//  2. validate: vertices iteratively exchange their local match sets
//     with neighbors and discard candidates that lack support in a
//     remote match set, until nothing changes (each round is one
//     superstep with metered messages).
//
// The surviving candidates are composed into bindings with Spark
// data-parallel joins, and the remaining SPARQL operators (FILTER,
// OPTIONAL, ORDER BY, LIMIT, OFFSET, projection) run on the
// data-parallel side, exactly as the paper splits the work.
package s2x

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/spark/graphx"
	"repro/internal/sparql"
)

// vertexProp is the property of one graph vertex: its RDF term and the
// candidate variables (filled during matching).
type vertexProp struct {
	term rdf.Term
}

// Engine is the S2X system.
type Engine struct {
	ctx   *spark.Context
	graph *graphx.Graph[vertexProp, string]
	ids   map[rdf.Term]graphx.VertexID
	terms map[graphx.VertexID]rdf.Term
}

// New creates an unloaded engine on ctx.
func New(ctx *spark.Context) *Engine { return &Engine{ctx: ctx} }

// Info implements core.Engine.
func (e *Engine) Info() core.SystemInfo {
	return core.SystemInfo{
		Name:            "S2X",
		Citation:        "[23]",
		Model:           core.GraphModel,
		Abstractions:    []core.Abstraction{core.GraphXAbstraction},
		QueryProcessing: "Graph Iterations",
		Optimized:       false,
		Partitioning:    "Default",
		SPARQL:          core.FragmentBGPPlus,
	}
}

// Context implements core.Engine.
func (e *Engine) Context() *spark.Context { return e.ctx }

// Load builds the property graph: one vertex per distinct term in
// subject or object position, one edge per triple labeled with the
// predicate IRI.
func (e *Engine) Load(triples []rdf.Triple) error {
	triples = rdf.Dedupe(triples)
	e.ids = map[rdf.Term]graphx.VertexID{}
	e.terms = map[graphx.VertexID]rdf.Term{}
	var vertices []graphx.Vertex[vertexProp]
	idOf := func(t rdf.Term) graphx.VertexID {
		if id, ok := e.ids[t]; ok {
			return id
		}
		id := graphx.VertexID(len(e.ids) + 1)
		e.ids[t] = id
		e.terms[id] = t
		vertices = append(vertices, graphx.Vertex[vertexProp]{ID: id, Attr: vertexProp{term: t}})
		return id
	}
	var edges []graphx.Edge[string]
	for _, t := range triples {
		edges = append(edges, graphx.Edge[string]{Src: idOf(t.S), Dst: idOf(t.O), Attr: t.P.Value})
	}
	e.graph = graphx.New(e.ctx, vertices, edges)
	return nil
}

// Execute implements core.Engine.
func (e *Engine) Execute(q *sparql.Query) (*sparql.Results, error) {
	if q.Form == sparql.FormDescribe {
		return nil, fmt.Errorf("s2x: DESCRIBE is not supported (use the reference evaluator)")
	}
	if e.graph == nil {
		return nil, fmt.Errorf("s2x: no dataset loaded")
	}
	rows, err := e.evalPattern(q.Where)
	if err != nil {
		return nil, err
	}
	return sparql.ApplySolutionModifiers(q, rows), nil
}

// evalPattern: BGPs use the graph-parallel matcher; the other
// operators use the data-parallel side (plain Spark ops).
func (e *Engine) evalPattern(p sparql.GraphPattern) ([]sparql.Binding, error) {
	switch n := p.(type) {
	case sparql.BGP:
		return e.evalBGP(n)
	case sparql.Group:
		rows := []sparql.Binding{{}}
		for _, part := range n.Parts {
			sub, err := e.evalPattern(part)
			if err != nil {
				return nil, err
			}
			var next []sparql.Binding
			for _, x := range rows {
				for _, y := range sub {
					if x.Compatible(y) {
						next = append(next, x.Merge(y))
					}
				}
			}
			rows = next
		}
		return rows, nil
	case sparql.Filter:
		rows, err := e.evalPattern(n.Inner)
		if err != nil {
			return nil, err
		}
		rdd := spark.Parallelize(e.ctx, rows).Filter(func(b sparql.Binding) bool {
			return n.Cond.EvalFilter(b)
		})
		return rdd.Collect(), nil
	case sparql.Optional:
		left, err := e.evalPattern(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.evalPattern(n.Right)
		if err != nil {
			return nil, err
		}
		var out []sparql.Binding
		for _, l := range left {
			matched := false
			for _, r := range right {
				if l.Compatible(r) {
					out = append(out, l.Merge(r))
					matched = true
				}
			}
			if !matched {
				out = append(out, l.Clone())
			}
		}
		return out, nil
	case sparql.Union:
		left, err := e.evalPattern(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.evalPattern(n.Right)
		if err != nil {
			return nil, err
		}
		return append(left, right...), nil
	default:
		return nil, fmt.Errorf("s2x: unsupported pattern %T", p)
	}
}

// edgeCand is one candidate edge match for a triple pattern.
type edgeCand struct {
	s, o graphx.VertexID
	pred string
}

// evalBGP runs match + iterative validation + composition.
func (e *Engine) evalBGP(bgp sparql.BGP) ([]sparql.Binding, error) {
	if len(bgp.Patterns) == 0 {
		return []sparql.Binding{{}}, nil
	}
	// --- Phase 1: match every pattern against all edges. ---
	cands := make([][]edgeCand, len(bgp.Patterns))
	edges := e.graph.Edges().Collect()
	for i, tp := range bgp.Patterns {
		for _, ed := range edges {
			if !tp.P.IsVar && tp.P.Term.Value != ed.Attr {
				continue
			}
			if !tp.S.IsVar && e.ids[tp.S.Term] != ed.Src {
				continue
			}
			if !tp.O.IsVar && e.ids[tp.O.Term] != ed.Dst {
				continue
			}
			if tp.S.IsVar && tp.O.IsVar && tp.S.Var == tp.O.Var && ed.Src != ed.Dst {
				continue
			}
			cands[i] = append(cands[i], edgeCand{s: ed.Src, o: ed.Dst, pred: ed.Attr})
		}
	}

	// --- Phase 2: iterative validation. A vertex supports variable v
	// for pattern i when it appears at v's position in a candidate of
	// i. Candidates whose variable lacks support in every other pattern
	// using the same variable are discarded; repeat to fixpoint. Each
	// round is a superstep; discarded candidates are the messages. ---
	type occurrence struct {
		pattern  int
		position int // 0 = subject, 1 = object (2 = predicate: not vertex-based)
	}
	occs := map[sparql.Var][]occurrence{}
	for i, tp := range bgp.Patterns {
		if tp.S.IsVar {
			occs[tp.S.Var] = append(occs[tp.S.Var], occurrence{i, 0})
		}
		if tp.O.IsVar {
			occs[tp.O.Var] = append(occs[tp.O.Var], occurrence{i, 1})
		}
	}
	changed := true
	for changed {
		changed = false
		e.ctx.AddSupersteps(1)
		// Local match sets: vertex support per (var, pattern).
		support := map[sparql.Var]map[int]map[graphx.VertexID]bool{}
		for v, os := range occs {
			support[v] = map[int]map[graphx.VertexID]bool{}
			for _, oc := range os {
				set := map[graphx.VertexID]bool{}
				for _, c := range cands[oc.pattern] {
					if oc.position == 0 {
						set[c.s] = true
					} else {
						set[c.o] = true
					}
				}
				support[v][oc.pattern] = set
			}
		}
		removed := 0
		for i := range cands {
			var kept []edgeCand
			for _, c := range cands[i] {
				valid := true
				for v, os := range occs {
					for _, oc := range os {
						if oc.pattern == i {
							continue
						}
						// Which vertex does v bind to in candidate c of pattern i?
						var vid graphx.VertexID
						found := false
						tp := bgp.Patterns[i]
						if tp.S.IsVar && tp.S.Var == v {
							vid, found = c.s, true
						} else if tp.O.IsVar && tp.O.Var == v {
							vid, found = c.o, true
						}
						if !found {
							continue
						}
						if !support[v][oc.pattern][vid] {
							valid = false
							break
						}
					}
					if !valid {
						break
					}
				}
				if valid {
					kept = append(kept, c)
				} else {
					removed++
				}
			}
			if len(kept) != len(cands[i]) {
				changed = true
			}
			cands[i] = kept
		}
		e.ctx.AddMessages(removed)
	}

	// --- Phase 3: compose the validated candidates into bindings with
	// data-parallel joins (spark side). ---
	var cur *spark.RDD[sparql.Binding]
	var curVars map[sparql.Var]bool
	order := composeOrder(bgp)
	for _, i := range order {
		tp := bgp.Patterns[i]
		bindings := make([]sparql.Binding, 0, len(cands[i]))
		for _, c := range cands[i] {
			b := sparql.Binding{}
			ok := true
			if tp.S.IsVar {
				b[tp.S.Var] = e.terms[c.s]
			}
			if tp.O.IsVar {
				if prev, exists := b[tp.O.Var]; exists && prev != e.terms[c.o] {
					ok = false
				} else {
					b[tp.O.Var] = e.terms[c.o]
				}
			}
			if tp.P.IsVar {
				pt := rdf.NewIRI(c.pred)
				if prev, exists := b[tp.P.Var]; exists && prev != pt {
					ok = false
				} else {
					b[tp.P.Var] = pt
				}
			}
			if ok {
				bindings = append(bindings, b)
			}
		}
		next := spark.Parallelize(e.ctx, bindings)
		if cur == nil {
			cur = next
			curVars = varSet(tp.Vars())
			continue
		}
		shared := sharedVars(curVars, tp.Vars())
		if len(shared) == 0 {
			prod := spark.Cartesian(cur, next)
			cur = spark.FlatMap(prod, func(t spark.Tuple2[sparql.Binding, sparql.Binding]) []sparql.Binding {
				if !t.A.Compatible(t.B) {
					return nil
				}
				return []sparql.Binding{t.A.Merge(t.B)}
			})
		} else {
			ka := spark.KeyBy(cur, func(b sparql.Binding) string { return bindingKey(b, shared) })
			kb := spark.KeyBy(next, func(b sparql.Binding) string { return bindingKey(b, shared) })
			joined := spark.Join(ka, kb)
			cur = spark.FlatMap(joined, func(p spark.Pair[string, spark.Tuple2[sparql.Binding, sparql.Binding]]) []sparql.Binding {
				if !p.Value.A.Compatible(p.Value.B) {
					return nil
				}
				return []sparql.Binding{p.Value.A.Merge(p.Value.B)}
			})
		}
		for _, v := range tp.Vars() {
			curVars[v] = true
		}
	}
	return cur.Collect(), nil
}

// composeOrder picks a join order that keeps consecutive patterns
// connected where possible (greedy from the smallest candidate list).
func composeOrder(bgp sparql.BGP) []int {
	n := len(bgp.Patterns)
	order := make([]int, 0, n)
	used := make([]bool, n)
	vars := map[sparql.Var]bool{}
	for len(order) < n {
		pick := -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			connected := false
			for _, v := range bgp.Patterns[i].Vars() {
				if vars[v] {
					connected = true
					break
				}
			}
			if len(order) == 0 || connected {
				pick = i
				break
			}
		}
		if pick < 0 {
			for i := 0; i < n; i++ {
				if !used[i] {
					pick = i
					break
				}
			}
		}
		used[pick] = true
		order = append(order, pick)
		for _, v := range bgp.Patterns[pick].Vars() {
			vars[v] = true
		}
	}
	return order
}

func varSet(vs []sparql.Var) map[sparql.Var]bool {
	out := map[sparql.Var]bool{}
	for _, v := range vs {
		out[v] = true
	}
	return out
}

func sharedVars(have map[sparql.Var]bool, vs []sparql.Var) []sparql.Var {
	var out []sparql.Var
	for _, v := range vs {
		if have[v] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func bindingKey(b sparql.Binding, vars []sparql.Var) string {
	parts := make([]string, len(vars))
	for i, v := range vars {
		if t, ok := b[v]; ok {
			parts[i] = t.String()
		}
	}
	return strings.Join(parts, "\x00")
}
