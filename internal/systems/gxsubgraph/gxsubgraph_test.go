package gxsubgraph

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems/systemstest"
	"repro/internal/workload"
)

func newEngine() *Engine {
	return New(spark.NewContext(spark.Config{Parallelism: 4, Executors: 2, BroadcastThreshold: 1000, MaxConcurrency: 4}))
}

func TestConformance(t *testing.T) {
	systemstest.Run(t, func() core.Engine { return newEngine() })
}

func TestRandomized(t *testing.T) {
	systemstest.RunRandomized(t, func() core.Engine { return newEngine() }, 5)
}

func TestInfo(t *testing.T) {
	info := newEngine().Info()
	if info.Name != "GX-Subgraph" || info.SPARQL != core.FragmentBGP || !info.Optimized {
		t.Fatalf("info = %+v", info)
	}
}

func TestRejectsNonBGP(t *testing.T) {
	e := newEngine()
	if err := e.Load(workload.GenerateUniversity(workload.SmallUniversity())); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(`SELECT ?x WHERE { { ?x <http://e/p> ?y } UNION { ?x <http://e/q> ?y } }`)
	if _, err := e.Execute(q); err == nil {
		t.Fatal("UNION must be rejected (fragment is BGP)")
	}
}

func TestOneSuperstepPerPattern(t *testing.T) {
	// The algorithm runs one aggregateMessages round per BGP triple.
	e := newEngine()
	if err := e.Load(workload.GenerateUniversity(workload.SmallUniversity())); err != nil {
		t.Fatal(err)
	}
	run := func(q string) int64 {
		before := e.Context().Snapshot()
		if _, err := e.Execute(sparql.MustParse(q)); err != nil {
			t.Fatal(err)
		}
		return e.Context().Snapshot().Diff(before).Supersteps
	}
	one := run(fmt.Sprintf(`SELECT ?s WHERE { ?s <%sname> ?n }`, workload.UnivNS))
	three := run(fmt.Sprintf(
		`SELECT ?st WHERE { ?st <%sadvisor> ?p . ?p <%sworksFor> ?d . ?d <%ssubOrganizationOf> ?u }`,
		workload.UnivNS, workload.UnivNS, workload.UnivNS))
	if one != 1 {
		t.Fatalf("single pattern ran %d supersteps", one)
	}
	if three != 3 {
		t.Fatalf("three patterns ran %d supersteps", three)
	}
}

func TestMatchTrackRelocationMetersShuffle(t *testing.T) {
	// A star query connects through the subject while tracks sit at
	// objects, forcing a relocation — visible as shuffle records.
	e := newEngine()
	if err := e.Load(workload.GenerateUniversity(workload.SmallUniversity())); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(fmt.Sprintf(
		`SELECT ?s ?n ?a WHERE { ?s <%sname> ?n . ?s <%sage> ?a }`, workload.UnivNS, workload.UnivNS))
	before := e.Context().Snapshot()
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	d := e.Context().Snapshot().Diff(before)
	if d.ShuffleRecords == 0 {
		t.Fatal("relocation should shuffle the match-track tables")
	}
	if res.Len() == 0 {
		t.Fatal("no results")
	}
}

func TestConstantEndpoints(t *testing.T) {
	e := newEngine()
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://t/" + s) }
	if err := e.Load([]rdf.Triple{
		{S: iri("a"), P: iri("p"), O: iri("b")},
		{S: iri("c"), P: iri("p"), O: iri("b")},
		{S: iri("a"), P: iri("q"), O: iri("c")},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(sparql.MustParse(`SELECT ?s WHERE { ?s <http://t/p> <http://t/b> }`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %v", res.Canonical())
	}
	res2, err := e.Execute(sparql.MustParse(`ASK { <http://t/a> <http://t/q> <http://t/c> }`))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Ask {
		t.Fatal("ASK should be true")
	}
}

func TestExecuteWithoutLoad(t *testing.T) {
	if _, err := newEngine().Execute(sparql.MustParse(`SELECT ?s WHERE { ?s ?p ?o }`)); err == nil {
		t.Fatal("expected error before Load")
	}
}
