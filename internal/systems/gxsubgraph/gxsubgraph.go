// Package gxsubgraph reproduces the subgraph-matching approach of
// Kassaie ("SPARQL over GraphX", arXiv 2017, survey ref [16]). Each
// vertex carries a label (its term), a Match Track (MT) table of
// partial bindings that currently end at the vertex, and an
// end-of-path flag. The algorithm iterates through the BGP's triple
// patterns; for each one, aggregateMessages matches the pattern
// against the graph's edges (sendMsg as the map side, mergeMsg as the
// reduce side), extending the MT tables at the source or destination
// vertex and relocating the track when the next pattern connects
// through a different variable. After all patterns, the MT tables of
// the end vertices are joined to produce the final answer.
//
// Supported fragment (Table II): BGP, with query optimization (the
// patterns are reordered connected-first so tracks extend along
// edges).
package gxsubgraph

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/spark/graphx"
	"repro/internal/sparql"
)

// mtTable locates partial bindings at vertices: the binding's track
// variable is bound to the vertex term.
type mtTable struct {
	// locVar is the variable whose value places a binding at a vertex;
	// empty when the table is global (not vertex-located).
	locVar sparql.Var
	// at maps vertex id -> bindings tracked there.
	at map[graphx.VertexID][]sparql.Binding
	// global holds bindings with no vertex location.
	global []sparql.Binding
}

func (m *mtTable) all() []sparql.Binding {
	out := append([]sparql.Binding{}, m.global...)
	for _, bs := range m.at {
		out = append(out, bs...)
	}
	return out
}

// Engine is the GraphX subgraph-matching system.
type Engine struct {
	ctx   *spark.Context
	graph *graphx.Graph[rdf.Term, string]
	ids   map[rdf.Term]graphx.VertexID
	terms map[graphx.VertexID]rdf.Term
}

// New creates an unloaded engine on ctx.
func New(ctx *spark.Context) *Engine { return &Engine{ctx: ctx} }

// Info implements core.Engine.
func (e *Engine) Info() core.SystemInfo {
	return core.SystemInfo{
		Name:            "GX-Subgraph",
		Citation:        "[16]",
		Model:           core.GraphModel,
		Abstractions:    []core.Abstraction{core.GraphXAbstraction},
		QueryProcessing: "Graph Iterations",
		Optimized:       true,
		Partitioning:    "Default",
		SPARQL:          core.FragmentBGP,
	}
}

// Context implements core.Engine.
func (e *Engine) Context() *spark.Context { return e.ctx }

// Load builds the labeled graph: vertex label = term, edge label =
// predicate IRI.
func (e *Engine) Load(triples []rdf.Triple) error {
	triples = rdf.Dedupe(triples)
	e.ids = map[rdf.Term]graphx.VertexID{}
	e.terms = map[graphx.VertexID]rdf.Term{}
	var vertices []graphx.Vertex[rdf.Term]
	idOf := func(t rdf.Term) graphx.VertexID {
		if id, ok := e.ids[t]; ok {
			return id
		}
		id := graphx.VertexID(len(e.ids) + 1)
		e.ids[t] = id
		e.terms[id] = t
		vertices = append(vertices, graphx.Vertex[rdf.Term]{ID: id, Attr: t})
		return id
	}
	var edges []graphx.Edge[string]
	for _, t := range triples {
		edges = append(edges, graphx.Edge[string]{Src: idOf(t.S), Dst: idOf(t.O), Attr: t.P.Value})
	}
	e.graph = graphx.New(e.ctx, vertices, edges)
	return nil
}

// Execute implements core.Engine. Only BGP queries are supported.
func (e *Engine) Execute(q *sparql.Query) (*sparql.Results, error) {
	if q.Form == sparql.FormDescribe {
		return nil, fmt.Errorf("gxsubgraph: DESCRIBE is not supported (use the reference evaluator)")
	}
	if e.graph == nil {
		return nil, fmt.Errorf("gxsubgraph: no dataset loaded")
	}
	bgp, ok := q.BGPOf()
	if !ok {
		return nil, fmt.Errorf("gxsubgraph: only BGP queries are supported (fragment per Table II)")
	}
	rows, err := e.evalBGP(bgp)
	if err != nil {
		return nil, err
	}
	return sparql.ApplySolutionModifiers(q, rows), nil
}

func (e *Engine) evalBGP(bgp sparql.BGP) ([]sparql.Binding, error) {
	if len(bgp.Patterns) == 0 {
		return []sparql.Binding{{}}, nil
	}
	ordered := connectedOrder(bgp.Patterns)
	mt := &mtTable{at: map[graphx.VertexID][]sparql.Binding{}}
	first := true
	boundVars := map[sparql.Var]bool{}
	for _, tp := range ordered {
		matches := e.matchPattern(tp) // one aggregateMessages round
		if first {
			mt = matches
			first = false
		} else {
			mt = e.extend(mt, matches, tp, boundVars)
		}
		for _, v := range tp.Vars() {
			boundVars[v] = true
		}
	}
	return mt.all(), nil
}

// matchPattern matches one triple pattern with aggregateMessages: the
// send side emits a candidate binding to the destination vertex for
// every matching edge; the merge side concatenates them into the MT
// table of that vertex.
func (e *Engine) matchPattern(tp sparql.TriplePattern) *mtTable {
	msgs := graphx.AggregateMessages(e.graph,
		func(c *graphx.EdgeContext[rdf.Term, string, []sparql.Binding]) {
			b, ok := e.matchEdge(tp, c.Triplet)
			if !ok {
				return
			}
			c.SendToDst([]sparql.Binding{b})
		},
		func(a, b []sparql.Binding) []sparql.Binding { return append(a, b...) })
	e.ctx.AddSupersteps(1)
	out := &mtTable{at: map[graphx.VertexID][]sparql.Binding{}}
	switch {
	case tp.O.IsVar:
		out.locVar = tp.O.Var
		for vid, bs := range msgs {
			out.at[vid] = bs
		}
	case tp.S.IsVar:
		// Relocate to the subject vertex (the object is constant).
		out.locVar = tp.S.Var
		for _, bs := range msgs {
			for _, b := range bs {
				vid := e.ids[b[tp.S.Var]]
				out.at[vid] = append(out.at[vid], b)
			}
		}
	default:
		for _, bs := range msgs {
			out.global = append(out.global, bs...)
		}
	}
	return out
}

// matchEdge matches an edge triplet against a pattern, producing the
// pattern's binding.
func (e *Engine) matchEdge(tp sparql.TriplePattern, t graphx.Triplet[rdf.Term, string]) (sparql.Binding, bool) {
	if !tp.P.IsVar && tp.P.Term.Value != t.Attr {
		return nil, false
	}
	if !tp.S.IsVar && tp.S.Term != t.SrcAttr {
		return nil, false
	}
	if !tp.O.IsVar && tp.O.Term != t.DstAttr {
		return nil, false
	}
	b := sparql.Binding{}
	if tp.S.IsVar {
		b[tp.S.Var] = t.SrcAttr
	}
	if tp.P.IsVar {
		pt := rdf.NewIRI(t.Attr)
		if cur, ok := b[tp.P.Var]; ok && cur != pt {
			return nil, false
		}
		b[tp.P.Var] = pt
	}
	if tp.O.IsVar {
		if cur, ok := b[tp.O.Var]; ok && cur != t.DstAttr {
			return nil, false
		}
		b[tp.O.Var] = t.DstAttr
	}
	return b, true
}

// extend joins the accumulated MT table with a pattern's matches. When
// the pattern connects through the table's location variable the join
// is vertex-local (the GraphX way); otherwise the table is relocated
// first, which costs a shuffle, or joined globally as a last resort.
func (e *Engine) extend(mt *mtTable, matches *mtTable, tp sparql.TriplePattern, bound map[sparql.Var]bool) *mtTable {
	// Find a shared vertex-position variable to connect through.
	var connectVar sparql.Var
	hasConnect := false
	for _, cand := range []sparql.TPElem{tp.S, tp.O} {
		if cand.IsVar && bound[cand.Var] {
			connectVar = cand.Var
			hasConnect = true
			break
		}
	}
	if !hasConnect || matches.locVar == "" {
		// Global driver-side join (disconnected pattern or constant-only).
		out := &mtTable{at: map[graphx.VertexID][]sparql.Binding{}, locVar: matches.locVar}
		for _, l := range mt.all() {
			for _, r := range matches.all() {
				if l.Compatible(r) {
					m := l.Merge(r)
					if out.locVar != "" {
						vid := e.ids[m[out.locVar]]
						out.at[vid] = append(out.at[vid], m)
					} else {
						out.global = append(out.global, m)
					}
				}
			}
		}
		return out
	}
	if mt.locVar != connectVar {
		mt = e.relocate(mt, connectVar)
	}
	// Relocate matches to the connecting variable as well.
	if matches.locVar != connectVar {
		matches = e.relocate(matches, connectVar)
	}
	// Vertex-local join: tables meet at the shared vertex (the
	// joinVertices step of the paper).
	out := &mtTable{at: map[graphx.VertexID][]sparql.Binding{}, locVar: matches.locVar}
	// After the join the track naturally continues at the new pattern's
	// object (or stays at the connect vertex).
	nextLoc := connectVar
	if tp.O.IsVar && tp.O.Var != connectVar {
		nextLoc = tp.O.Var
	} else if tp.S.IsVar && tp.S.Var != connectVar {
		nextLoc = tp.S.Var
	}
	out.locVar = nextLoc
	for vid, ls := range mt.at {
		rs := matches.at[vid]
		if len(rs) == 0 {
			continue
		}
		for _, l := range ls {
			for _, r := range rs {
				if l.Compatible(r) {
					m := l.Merge(r)
					tv := e.ids[m[nextLoc]]
					out.at[tv] = append(out.at[tv], m)
				}
			}
		}
	}
	return out
}

// relocate moves an MT table to be keyed by a different bound
// variable. On a cluster the bindings travel to their new home
// vertices, so the move is metered as a shuffle of the table.
func (e *Engine) relocate(mt *mtTable, to sparql.Var) *mtTable {
	bindings := mt.all()
	keyed := spark.KeyBy(spark.Parallelize(e.ctx, bindings), func(b sparql.Binding) string {
		if t, ok := b[to]; ok {
			return t.String()
		}
		return ""
	})
	_ = spark.PartitionBy(keyed, spark.NewHashPartitioner[string](e.ctx.DefaultParallelism()))
	out := &mtTable{at: map[graphx.VertexID][]sparql.Binding{}, locVar: to}
	for _, b := range bindings {
		t, ok := b[to]
		if !ok {
			out.global = append(out.global, b)
			continue
		}
		out.at[e.ids[t]] = append(out.at[e.ids[t]], b)
	}
	return out
}

// connectedOrder reorders patterns so each one (after the first)
// shares a variable with those before it when possible.
func connectedOrder(tps []sparql.TriplePattern) []sparql.TriplePattern {
	n := len(tps)
	out := make([]sparql.TriplePattern, 0, n)
	used := make([]bool, n)
	vars := map[sparql.Var]bool{}
	for len(out) < n {
		pick := -1
		for i, tp := range tps {
			if used[i] {
				continue
			}
			if len(out) == 0 {
				pick = i
				break
			}
			for _, v := range tp.Vars() {
				if vars[v] {
					pick = i
					break
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			for i := range tps {
				if !used[i] {
					pick = i
					break
				}
			}
		}
		used[pick] = true
		out = append(out, tps[pick])
		for _, v := range tps[pick].Vars() {
			vars[v] = true
		}
	}
	return out
}
