package haqwa

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems/systemstest"
	"repro/internal/workload"
)

func newEngine() *Engine {
	return New(spark.NewContext(spark.Config{Parallelism: 4, Executors: 2, BroadcastThreshold: 1000, MaxConcurrency: 4}))
}

func TestConformance(t *testing.T) {
	systemstest.Run(t, func() core.Engine { return newEngine() })
}

func TestRandomized(t *testing.T) {
	systemstest.RunRandomized(t, func() core.Engine { return newEngine() }, 6)
}

func TestInfo(t *testing.T) {
	info := newEngine().Info()
	if info.Name != "HAQWA" || info.Optimized {
		t.Fatalf("info = %+v", info)
	}
	if info.Partitioning != "Hash / Query Aware" {
		t.Fatalf("partitioning = %s", info.Partitioning)
	}
}

func TestStarQueryIsShuffleFree(t *testing.T) {
	// HAQWA's core claim: subject-hash fragmentation makes star queries
	// fully local — no shuffle beyond the load.
	e := newEngine()
	if err := e.Load(workload.GenerateUniversity(workload.SmallUniversity())); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(fmt.Sprintf(
		`SELECT ?s ?n ?a WHERE { ?s <%sname> ?n . ?s <%sage> ?a }`,
		workload.UnivNS, workload.UnivNS))
	before := e.Context().Snapshot()
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	d := e.Context().Snapshot().Diff(before)
	if d.ShuffleRecords != 0 {
		t.Fatalf("star query shuffled %d records, want 0", d.ShuffleRecords)
	}
	if res.Len() == 0 {
		t.Fatal("star query returned nothing")
	}
}

func TestLinearQueryShufflesWithoutAllocation(t *testing.T) {
	e := newEngine()
	if err := e.Load(workload.GenerateUniversity(workload.SmallUniversity())); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(fmt.Sprintf(
		`SELECT ?st ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS))
	before := e.Context().Snapshot()
	if _, err := e.Execute(q); err != nil {
		t.Fatal(err)
	}
	d := e.Context().Snapshot().Diff(before)
	if d.ShuffleRecords == 0 {
		t.Fatal("unallocated linear query should shuffle")
	}
}

func TestWorkloadAwareAllocationMakesLinearLocal(t *testing.T) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	q := sparql.MustParse(fmt.Sprintf(
		`SELECT ?st ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS))

	// Reference answer.
	want, err := sparql.Evaluate(q, rdf.NewGraph(triples))
	if err != nil {
		t.Fatal(err)
	}

	e := newEngine()
	if err := e.Load(triples); err != nil {
		t.Fatal(err)
	}
	e.Allocate([]*sparql.Query{q})

	before := e.Context().Snapshot()
	got, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	d := e.Context().Snapshot().Diff(before)
	if d.ShuffleRecords != 0 {
		t.Fatalf("allocated linear query shuffled %d records, want 0", d.ShuffleRecords)
	}
	if !got.Equal(want) {
		t.Fatalf("allocated execution wrong: %d rows vs %d", got.Len(), want.Len())
	}
}

func TestAllocationPreservesCorrectnessOnOtherQueries(t *testing.T) {
	// Replication must never change answers of other queries (the
	// replicated fragment is only used when coverage holds).
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	ref := rdf.NewGraph(triples)
	linkQ := sparql.MustParse(fmt.Sprintf(
		`SELECT ?st ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS))
	e := newEngine()
	if err := e.Load(triples); err != nil {
		t.Fatal(err)
	}
	e.Allocate([]*sparql.Query{linkQ})

	star := sparql.MustParse(fmt.Sprintf(
		`SELECT ?s ?n WHERE { ?s <%sname> ?n . ?s <%sage> ?a }`, workload.UnivNS, workload.UnivNS))
	want, _ := sparql.Evaluate(star, ref)
	got, err := e.Execute(star)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("star query wrong after allocation")
	}

	deep := sparql.MustParse(fmt.Sprintf(
		`SELECT ?st ?u WHERE { ?st <%sadvisor> ?p . ?p <%sworksFor> ?d . ?d <%ssubOrganizationOf> ?u }`,
		workload.UnivNS, workload.UnivNS, workload.UnivNS))
	want2, _ := sparql.Evaluate(deep, ref)
	got2, err := e.Execute(deep)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(want2) {
		t.Fatalf("deep query wrong after allocation: %d vs %d rows", got2.Len(), want2.Len())
	}
}

func TestDictionaryEncodingApplied(t *testing.T) {
	e := newEngine()
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	if err := e.Load(triples); err != nil {
		t.Fatal(err)
	}
	stats := rdf.ComputeStats(rdf.Dedupe(triples))
	// Dictionary must assign ids to every distinct term.
	if e.dict.Len() < stats.DistinctSubjects {
		t.Fatalf("dictionary too small: %d", e.dict.Len())
	}
}

func TestExecuteWithoutLoad(t *testing.T) {
	e := newEngine()
	if _, err := e.Execute(sparql.MustParse(`SELECT ?s WHERE { ?s ?p ?o }`)); err == nil {
		t.Fatal("expected error before Load")
	}
}
