// Package haqwa reproduces HAQWA (Curé et al., ISWC 2015 P&D, survey
// ref [7]): a hash-based and query-workload-aware distributed RDF
// store, the first RDF-on-Spark approach. Its two-step fragmentation:
//
//  1. hash partitioning on triple subjects, which guarantees that
//     star-shaped queries evaluate locally with no network traffic;
//  2. workload-aware allocation: given the frequent queries, triples
//     reachable over the subject→object links those queries use are
//     replicated into the partition of the link's source subject, so
//     the registered query forms also run locally.
//
// String values are dictionary-encoded to integers to shrink volume.
// At query time a pattern is decomposed into subject-grouped (star)
// sub-queries; each candidate seed evaluates locally and, when the
// allocation does not cover a link, the missing join runs as a
// distributed RDD join.
package haqwa

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
)

// Engine is the HAQWA system.
type Engine struct {
	ctx  *spark.Context
	dict *rdf.Dictionary
	// parts is the subject-hash-partitioned dataset (metered load).
	parts *spark.RDD[rdf.EncodedTriple]
	// native[i] indexes the triples whose subject hashes to partition i.
	native []*rdf.Graph
	// full[i] additionally contains replicated triples allocated to i.
	full []*rdf.Graph
	// coveredLinks records the link predicates the workload-aware
	// allocation has replicated for (object-subject joins over them are
	// local).
	coveredLinks map[string]bool
	numParts     int
}

// New creates an unloaded engine on ctx.
func New(ctx *spark.Context) *Engine {
	return &Engine{ctx: ctx, coveredLinks: map[string]bool{}}
}

// Info implements core.Engine.
func (e *Engine) Info() core.SystemInfo {
	return core.SystemInfo{
		Name:            "HAQWA",
		Citation:        "[7]",
		Model:           core.TripleModel,
		Abstractions:    []core.Abstraction{core.RDDAbstraction},
		QueryProcessing: "RDD API",
		Optimized:       false,
		Partitioning:    "Hash / Query Aware",
		SPARQL:          core.FragmentBGPPlus,
	}
}

// Context implements core.Engine.
func (e *Engine) Context() *spark.Context { return e.ctx }

// Load encodes the dataset and hash-partitions it on the subject.
func (e *Engine) Load(triples []rdf.Triple) error {
	triples = rdf.Dedupe(triples)
	e.dict = rdf.NewDictionary()
	encoded := e.dict.EncodeAll(triples)
	e.numParts = e.ctx.DefaultParallelism()

	keyed := spark.KeyBy(spark.Parallelize(e.ctx, encoded), func(t rdf.EncodedTriple) rdf.TermID { return t.S })
	placed := spark.PartitionBy(keyed, spark.NewHashPartitioner[rdf.TermID](e.numParts))
	e.parts = spark.Values(placed)

	e.native = make([]*rdf.Graph, e.numParts)
	e.full = make([]*rdf.Graph, e.numParts)
	for i := 0; i < e.numParts; i++ {
		g := rdf.NewGraph(nil)
		for _, enc := range e.parts.Partition(i) {
			t, err := e.dict.DecodeTriple(enc)
			if err != nil {
				return fmt.Errorf("haqwa: %w", err)
			}
			g.Add(t)
		}
		e.native[i] = g
		// full starts as a copy of native; Allocate adds replicas.
		fg := rdf.NewGraph(nil)
		for _, t := range g.Triples() {
			fg.Add(t)
		}
		e.full[i] = fg
	}
	e.coveredLinks = map[string]bool{}
	return nil
}

// subjectPartition returns the partition the subject's hash assigns.
func (e *Engine) subjectPartition(s rdf.Term) int {
	id, ok := e.dict.Lookup(s)
	if !ok {
		return 0
	}
	return spark.NewHashPartitioner[rdf.TermID](e.numParts).Partition(id)
}

// Allocate performs the second fragmentation step for a query
// workload: for every subject→object link (?x p ?y joined with ?y q ?z)
// in a workload query, the triples of the link target are replicated
// into the partition of the link source, and p is recorded as covered.
func (e *Engine) Allocate(workloadQueries []*sparql.Query) {
	if e.parts == nil {
		return
	}
	linkPreds := map[string]bool{}
	for _, q := range workloadQueries {
		bgp, ok := q.BGPOf()
		if !ok {
			continue
		}
		groups := groupBySubject(bgp.Patterns)
		for _, ga := range groups {
			for _, tp := range ga {
				if !tp.O.IsVar || tp.P.IsVar {
					continue
				}
				// Does some other group have this object var as subject?
				for _, gb := range groups {
					if len(gb) > 0 && gb[0].S.IsVar && gb[0].S.Var == tp.O.Var && !sameGroup(ga, gb) {
						linkPreds[tp.P.Term.Value] = true
					}
				}
			}
		}
	}
	if len(linkPreds) == 0 {
		return
	}
	// Replicate: for each link triple (s p o) with p covered, copy every
	// triple with subject o into s's partition. The copies travel over
	// the network once, which is metered as a shuffle-sized transfer.
	replicas := 0
	for i := 0; i < e.numParts; i++ {
		for _, lt := range e.native[i].Triples() {
			if !linkPreds[lt.P.Value] {
				continue
			}
			targetPart := e.subjectPartition(lt.O)
			for _, rt := range e.native[targetPart].Triples() {
				if rt.S == lt.O && !e.full[i].Has(rt) {
					e.full[i].Add(rt)
					if targetPart != i {
						replicas++
					}
				}
			}
		}
	}
	e.ctx.AddRead(replicas)
	for p := range linkPreds {
		e.coveredLinks[p] = true
	}
}

// Execute implements core.Engine.
func (e *Engine) Execute(q *sparql.Query) (*sparql.Results, error) {
	if q.Form == sparql.FormDescribe {
		return nil, fmt.Errorf("haqwa: DESCRIBE is not supported (use the reference evaluator)")
	}
	if e.parts == nil {
		return nil, fmt.Errorf("haqwa: no dataset loaded")
	}
	rows, err := e.evalPattern(q.Where)
	if err != nil {
		return nil, err
	}
	return sparql.ApplySolutionModifiers(q, rows), nil
}

func (e *Engine) evalPattern(p sparql.GraphPattern) ([]sparql.Binding, error) {
	switch n := p.(type) {
	case sparql.BGP:
		return e.evalBGP(n)
	case sparql.Group:
		rows := []sparql.Binding{{}}
		for _, part := range n.Parts {
			sub, err := e.evalPattern(part)
			if err != nil {
				return nil, err
			}
			var next []sparql.Binding
			for _, x := range rows {
				for _, y := range sub {
					if x.Compatible(y) {
						next = append(next, x.Merge(y))
					}
				}
			}
			rows = next
		}
		return rows, nil
	case sparql.Filter:
		rows, err := e.evalPattern(n.Inner)
		if err != nil {
			return nil, err
		}
		var kept []sparql.Binding
		for _, b := range rows {
			if n.Cond.EvalFilter(b) {
				kept = append(kept, b)
			}
		}
		return kept, nil
	case sparql.Optional:
		left, err := e.evalPattern(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.evalPattern(n.Right)
		if err != nil {
			return nil, err
		}
		var out []sparql.Binding
		for _, l := range left {
			matched := false
			for _, r := range right {
				if l.Compatible(r) {
					out = append(out, l.Merge(r))
					matched = true
				}
			}
			if !matched {
				out = append(out, l.Clone())
			}
		}
		return out, nil
	case sparql.Union:
		left, err := e.evalPattern(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.evalPattern(n.Right)
		if err != nil {
			return nil, err
		}
		return append(left, right...), nil
	default:
		return nil, fmt.Errorf("haqwa: unsupported pattern %T", p)
	}
}

// evalBGP decomposes the BGP into subject star groups. A pure star (one
// group) evaluates locally on every partition — zero shuffle, HAQWA's
// headline property. A linked query whose links are covered by the
// allocation also evaluates locally against the replicated fragments,
// anchored at the seed subject to avoid duplicates. Anything else
// evaluates each star locally and joins the stars with distributed
// (shuffling) RDD joins.
func (e *Engine) evalBGP(bgp sparql.BGP) ([]sparql.Binding, error) {
	if len(bgp.Patterns) == 0 {
		return []sparql.Binding{{}}, nil
	}
	groups := groupBySubject(bgp.Patterns)
	if len(groups) == 1 {
		return e.evalLocal(sparql.BGP{Patterns: bgp.Patterns}, true, seedOf(groups[0])), nil
	}
	if seed, ok := e.coveredSeed(groups); ok {
		return e.evalLocal(bgp, false, seed), nil
	}
	// Distributed fallback: per-star local evaluation + shuffled joins.
	var cur *spark.RDD[sparql.Binding]
	var curVars map[sparql.Var]bool
	for _, g := range groups {
		local := e.evalLocal(sparql.BGP{Patterns: g}, true, seedOf(g))
		next := spark.Parallelize(e.ctx, local)
		if cur == nil {
			cur = next
			curVars = varsOfPatterns(g)
			continue
		}
		gv := varsOfPatterns(g)
		var shared []sparql.Var
		for v := range gv {
			if curVars[v] {
				shared = append(shared, v)
			}
		}
		sort.Slice(shared, func(i, j int) bool { return shared[i] < shared[j] })
		if len(shared) == 0 {
			prod := spark.Cartesian(cur, next)
			cur = spark.FlatMap(prod, func(t spark.Tuple2[sparql.Binding, sparql.Binding]) []sparql.Binding {
				if !t.A.Compatible(t.B) {
					return nil
				}
				return []sparql.Binding{t.A.Merge(t.B)}
			})
		} else {
			ka := spark.KeyBy(cur, func(b sparql.Binding) string { return bindingKey(b, shared) })
			kb := spark.KeyBy(next, func(b sparql.Binding) string { return bindingKey(b, shared) })
			joined := spark.Join(ka, kb)
			cur = spark.FlatMap(joined, func(p spark.Pair[string, spark.Tuple2[sparql.Binding, sparql.Binding]]) []sparql.Binding {
				if !p.Value.A.Compatible(p.Value.B) {
					return nil
				}
				return []sparql.Binding{p.Value.A.Merge(p.Value.B)}
			})
		}
		for v := range gv {
			curVars[v] = true
		}
	}
	return cur.Collect(), nil
}

// evalLocal evaluates a BGP independently on every partition (one task
// per partition, no shuffle). With nativeOnly the native fragment is
// used (stars are complete there); otherwise the replicated fragment is
// used and results are anchored: a solution counts only on the
// partition that natively owns its seed subject.
func (e *Engine) evalLocal(bgp sparql.BGP, nativeOnly bool, seed sparql.TPElem) []sparql.Binding {
	idx := make([]int, e.numParts)
	for i := range idx {
		idx[i] = i
	}
	idxRDD := spark.ParallelizeN(e.ctx, idx, e.numParts)
	q := &sparql.Query{Form: sparql.FormSelect, Where: bgp, Limit: -1}
	res := spark.MapPartitions(idxRDD, func(part []int) []sparql.Binding {
		if len(part) == 0 {
			return nil
		}
		i := part[0]
		g := e.full[i]
		if nativeOnly {
			g = e.native[i]
		}
		r, err := sparql.Evaluate(q, g)
		if err != nil {
			return nil
		}
		var out []sparql.Binding
		for _, b := range r.Rows {
			if !nativeOnly {
				// Anchor at the seed subject's home partition.
				var s rdf.Term
				if seed.IsVar {
					s = b[seed.Var]
				} else {
					s = seed.Term
				}
				if e.subjectPartition(s) != i {
					continue
				}
			}
			out = append(out, b)
		}
		return out
	})
	return res.Collect()
}

// coveredSeed reports whether the star groups form a 1-hop tree from a
// seed group over links the allocation covers, returning the seed
// subject.
func (e *Engine) coveredSeed(groups [][]sparql.TriplePattern) (sparql.TPElem, bool) {
	for _, seedGroup := range groups {
		allLinked := true
		for _, other := range groups {
			if sameGroup(seedGroup, other) {
				continue
			}
			linked := false
			for _, tp := range seedGroup {
				if tp.P.IsVar || !tp.O.IsVar {
					continue
				}
				if other[0].S.IsVar && other[0].S.Var == tp.O.Var && e.coveredLinks[tp.P.Term.Value] {
					linked = true
					break
				}
			}
			if !linked {
				allLinked = false
				break
			}
		}
		if allLinked {
			return seedGroup[0].S, true
		}
	}
	return sparql.TPElem{}, false
}

// groupBySubject partitions triple patterns into star groups sharing a
// subject element, preserving first-occurrence order.
func groupBySubject(tps []sparql.TriplePattern) [][]sparql.TriplePattern {
	keyOf := func(el sparql.TPElem) string {
		if el.IsVar {
			return "?" + string(el.Var)
		}
		return el.Term.String()
	}
	byKey := map[string][]sparql.TriplePattern{}
	var order []string
	for _, tp := range tps {
		k := keyOf(tp.S)
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], tp)
	}
	out := make([][]sparql.TriplePattern, 0, len(order))
	for _, k := range order {
		out = append(out, byKey[k])
	}
	return out
}

func sameGroup(a, b []sparql.TriplePattern) bool {
	return len(a) > 0 && len(b) > 0 && a[0] == b[0] && len(a) == len(b)
}

func seedOf(g []sparql.TriplePattern) sparql.TPElem { return g[0].S }

func varsOfPatterns(tps []sparql.TriplePattern) map[sparql.Var]bool {
	out := map[sparql.Var]bool{}
	for _, tp := range tps {
		for _, v := range tp.Vars() {
			out[v] = true
		}
	}
	return out
}

func bindingKey(b sparql.Binding, vars []sparql.Var) string {
	parts := make([]string, len(vars))
	for i, v := range vars {
		if t, ok := b[v]; ok {
			parts[i] = t.String()
		}
	}
	return strings.Join(parts, "\x00")
}
