package gframes

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	sparksql "repro/internal/spark/sql"
	"repro/internal/sparql"
	"repro/internal/systems/systemstest"
	"repro/internal/workload"
)

func newEngine() *Engine {
	return New(spark.NewContext(spark.Config{Parallelism: 4, Executors: 2, BroadcastThreshold: 1000, MaxConcurrency: 4}))
}

func TestConformance(t *testing.T) {
	systemstest.Run(t, func() core.Engine { return newEngine() })
}

func TestRandomized(t *testing.T) {
	systemstest.RunRandomized(t, func() core.Engine { return newEngine() }, 4)
}

func TestInfo(t *testing.T) {
	info := newEngine().Info()
	if info.Name != "GraphFrames" || info.QueryProcessing != "Subgraph Matching" {
		t.Fatalf("info = %+v", info)
	}
	if info.Abstractions[0] != core.GraphFramesAbstraction {
		t.Fatalf("abstractions = %v", info.Abstractions)
	}
}

func TestBuildMotif(t *testing.T) {
	e := newEngine()
	if err := e.Load(workload.GenerateUniversity(workload.SmallUniversity())); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(fmt.Sprintf(
		`SELECT ?st ?d WHERE { ?st <%sadvisor> ?p . ?p <%sworksFor> ?d }`,
		workload.UnivNS, workload.UnivNS))
	bgp, _ := q.BGPOf()
	motif, vars, filters, err := e.buildMotif(bgp.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 3 {
		t.Fatalf("vars = %v", vars)
	}
	if len(filters) != 2 { // two predicate filters
		t.Fatalf("filters = %d", len(filters))
	}
	if motif == "" {
		t.Fatal("empty motif")
	}
}

func TestPredicateFrequencyOrdering(t *testing.T) {
	e := newEngine()
	if err := e.Load(workload.GenerateUniversity(workload.SmallUniversity())); err != nil {
		t.Fatal(err)
	}
	// subOrganizationOf is rarer than takesCourse.
	if e.predFreq(sparql.TriplePattern{P: sparql.TermElem(workload.UnivSubOrgOf)}) >=
		e.predFreq(sparql.TriplePattern{P: sparql.TermElem(workload.UnivTakesCourse)}) {
		t.Fatal("frequency statistics look wrong")
	}
}

func TestSearchSpacePruningReducesWork(t *testing.T) {
	// With pruning, matching a one-predicate query must not read the
	// other predicates' edges into the join pipeline: compare motif
	// input sizes via the filtered edge count.
	e := newEngine()
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	if err := e.Load(triples); err != nil {
		t.Fatal(err)
	}
	total := e.graph.Edges().Count()
	pruned, err := e.graph.FilterEdges(sparksql.Eq("rel", workload.UnivAdvisor.Value))
	if err != nil {
		t.Fatal(err)
	}
	kept := pruned.Edges().Count()
	advisorCount := len(rdf.NewGraph(rdf.Dedupe(triples)).WithPredicate(workload.UnivAdvisor.Value))
	if kept != advisorCount {
		t.Fatalf("pruned graph keeps %d edges, want %d", kept, advisorCount)
	}
	if kept >= total {
		t.Fatal("pruning did not shrink the search space")
	}
}

func TestQueryAnswersOnShopData(t *testing.T) {
	triples := workload.GenerateShop(workload.SmallShop())
	e := newEngine()
	if err := e.Load(triples); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(fmt.Sprintf(
		`SELECT ?a ?b ?prod WHERE { ?a <%sfollows> ?b . ?b <%slikes> ?prod }`,
		workload.ShopNS, workload.ShopNS))
	want, err := sparql.Evaluate(q, rdf.NewGraph(triples))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("wrong: %d vs %d rows", got.Len(), want.Len())
	}
}

func TestRejectsNonBGP(t *testing.T) {
	e := newEngine()
	if err := e.Load(workload.GenerateShop(workload.SmallShop())); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(`SELECT ?x WHERE { ?x <http://e/p> ?y OPTIONAL { ?x <http://e/q> ?z } }`)
	if _, err := e.Execute(q); err == nil {
		t.Fatal("OPTIONAL must be rejected (fragment is BGP)")
	}
}

func TestExecuteWithoutLoad(t *testing.T) {
	if _, err := newEngine().Execute(sparql.MustParse(`SELECT ?s WHERE { ?s ?p ?o }`)); err == nil {
		t.Fatal("expected error before Load")
	}
}
