// Package gframes reproduces the approach of Bahrami, Gulati and
// Abulaish (WI 2017, survey ref [4]): efficient SPARQL processing over
// the GraphFrames API. The input dataset splits into a nodelist and an
// edgelist (two DataFrames) forming an unweighted labeled graph.
// SPARQL queries translate into query graphs (motifs) with two
// optimizations before matching:
//
//  1. join-order optimization: triple patterns sort by predicate
//     frequency in non-descending order, so rare predicates bind
//     first;
//  2. local search-space pruning: all triples whose predicate does not
//     appear in the BGP are discarded, and matching runs on the much
//     smaller temporary graph.
//
// Subgraph matching itself is GraphFrames motif finding, which
// compiles to DataFrame joins.
//
// Supported fragment (Table II): BGP.
package gframes

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/spark/graphframes"
	sparksql "repro/internal/spark/sql"
	"repro/internal/sparql"
)

// Engine is the GraphFrames system.
type Engine struct {
	ctx   *spark.Context
	graph *graphframes.GraphFrame
	terms map[string]rdf.Term // rendered id -> term
	freq  map[string]int      // predicate frequency
}

// New creates an unloaded engine on ctx.
func New(ctx *spark.Context) *Engine { return &Engine{ctx: ctx} }

// Info implements core.Engine.
func (e *Engine) Info() core.SystemInfo {
	return core.SystemInfo{
		Name:            "GraphFrames",
		Citation:        "[4]",
		Model:           core.GraphModel,
		Abstractions:    []core.Abstraction{core.GraphFramesAbstraction},
		QueryProcessing: "Subgraph Matching",
		Optimized:       true,
		Partitioning:    "Default",
		SPARQL:          core.FragmentBGP,
	}
}

// Context implements core.Engine.
func (e *Engine) Context() *spark.Context { return e.ctx }

// Load splits the dataset into the nodelist and edgelist DataFrames.
func (e *Engine) Load(triples []rdf.Triple) error {
	triples = rdf.Dedupe(triples)
	e.terms = map[string]rdf.Term{}
	e.freq = map[string]int{}
	render := func(t rdf.Term) string {
		s := t.String()
		e.terms[s] = t
		return s
	}
	seen := map[string]bool{}
	var nodeRows, edgeRows []sparksql.Row
	for _, t := range triples {
		s, o := render(t.S), render(t.O)
		if !seen[s] {
			seen[s] = true
			nodeRows = append(nodeRows, sparksql.Row{s})
		}
		if !seen[o] {
			seen[o] = true
			nodeRows = append(nodeRows, sparksql.Row{o})
		}
		edgeRows = append(edgeRows, sparksql.Row{s, o, t.P.Value})
		e.freq[t.P.Value]++
	}
	nodes, err := sparksql.NewDataFrame(e.ctx, sparksql.Schema{"id"}, nodeRows)
	if err != nil {
		return err
	}
	edges, err := sparksql.NewDataFrame(e.ctx, sparksql.Schema{"src", "dst", "rel"}, edgeRows)
	if err != nil {
		return err
	}
	e.graph, err = graphframes.New(nodes, edges)
	return err
}

// Execute implements core.Engine. Only BGP queries are supported.
func (e *Engine) Execute(q *sparql.Query) (*sparql.Results, error) {
	if q.Form == sparql.FormDescribe {
		return nil, fmt.Errorf("gframes: DESCRIBE is not supported (use the reference evaluator)")
	}
	if e.graph == nil {
		return nil, fmt.Errorf("gframes: no dataset loaded")
	}
	bgp, ok := q.BGPOf()
	if !ok {
		return nil, fmt.Errorf("gframes: only BGP queries are supported (fragment per Table II)")
	}
	rows, err := e.evalBGP(bgp)
	if err != nil {
		return nil, err
	}
	return sparql.ApplySolutionModifiers(q, rows), nil
}

func (e *Engine) evalBGP(bgp sparql.BGP) ([]sparql.Binding, error) {
	if len(bgp.Patterns) == 0 {
		return []sparql.Binding{{}}, nil
	}
	// Optimization 1: sort patterns by predicate frequency,
	// non-descending (unknown predicates sort first: frequency 0).
	ordered := append([]sparql.TriplePattern{}, bgp.Patterns...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return e.predFreq(ordered[i]) < e.predFreq(ordered[j])
	})

	// Optimization 2: local search-space pruning — drop every edge
	// whose predicate the BGP does not mention (unless a pattern has a
	// variable predicate, which needs them all).
	graph := e.graph
	hasVarPred := false
	var preds []sparksql.Expr
	for _, tp := range ordered {
		if tp.P.IsVar {
			hasVarPred = true
			break
		}
		preds = append(preds, sparksql.Eq("rel", tp.P.Term.Value))
	}
	if !hasVarPred {
		var predFilter sparksql.Expr
		for _, p := range preds {
			if predFilter == nil {
				predFilter = p
			} else {
				predFilter = sparksql.BinOp{Op: "OR", L: predFilter, R: p}
			}
		}
		var err error
		graph, err = graph.FilterEdges(predFilter)
		if err != nil {
			return nil, err
		}
	}

	// Build the motif and the post-filters for constants.
	motif, varNames, filters, err := e.buildMotif(ordered)
	if err != nil {
		return nil, err
	}
	df, err := graph.Find(motif)
	if err != nil {
		return nil, err
	}
	for _, f := range filters {
		df, err = df.Filter(f)
		if err != nil {
			return nil, err
		}
	}
	// Decode columns back into bindings.
	schema := df.Schema()
	var out []sparql.Binding
	for _, row := range df.Collect() {
		b := sparql.Binding{}
		ok := true
		for col, v := range varNames {
			i := schema.Index(col)
			if i < 0 {
				ok = false
				break
			}
			val, _ := row[i].(string)
			term, known := e.terms[val]
			if !known {
				// Predicate columns hold raw IRIs.
				term = rdf.NewIRI(val)
			}
			if cur, exists := b[v]; exists && cur != term {
				ok = false
				break
			}
			b[v] = term
		}
		if ok {
			out = append(out, b)
		}
	}
	return out, nil
}

func (e *Engine) predFreq(tp sparql.TriplePattern) int {
	if tp.P.IsVar {
		return 1 << 30
	}
	return e.freq[tp.P.Term.Value]
}

// buildMotif translates ordered patterns into a GraphFrames motif.
// Variables keep one motif name per variable (repeats join naturally);
// constants get fresh names plus an id-equality post-filter. Constant
// predicates become edge-attribute post-filters; variable predicates
// surface as "eN.rel" columns mapped back to the SPARQL variable.
func (e *Engine) buildMotif(tps []sparql.TriplePattern) (string, map[string]sparql.Var, []sparksql.Expr, error) {
	motif := ""
	varNames := map[string]sparql.Var{} // result column -> SPARQL var
	var filters []sparksql.Expr
	vertexName := map[sparql.Var]string{} // var -> motif vertex name
	predCol := map[sparql.Var]string{}    // var -> "eN.rel" column
	fresh := 0
	nameFor := func(el sparql.TPElem) string {
		if el.IsVar {
			if n, ok := vertexName[el.Var]; ok {
				return n
			}
			n := fmt.Sprintf("v%d", fresh)
			fresh++
			vertexName[el.Var] = n
			varNames[n] = el.Var
			return n
		}
		n := fmt.Sprintf("c%d", fresh)
		fresh++
		filters = append(filters, sparksql.Eq(n, el.Term.String()))
		return n
	}
	for i, tp := range tps {
		if i > 0 {
			motif += "; "
		}
		edgeName := fmt.Sprintf("e%d", i)
		motif += fmt.Sprintf("(%s)-[%s]->(%s)", nameFor(tp.S), edgeName, nameFor(tp.O))
		if tp.P.IsVar {
			col := edgeName + ".rel"
			if prev, ok := predCol[tp.P.Var]; ok {
				// Same predicate variable twice: filter equality.
				filters = append(filters, sparksql.ColEq(col, prev))
			} else {
				predCol[tp.P.Var] = col
				varNames[col] = tp.P.Var
			}
		} else {
			filters = append(filters, sparksql.Eq(edgeName+".rel", tp.P.Term.Value))
		}
	}
	// A variable used both as a vertex and as a predicate must agree
	// across the two column spaces. Vertex ids are rendered IRIs
	// ("<iri>") while rel holds raw IRIs, so equate on content via the
	// decoded binding instead: keep both columns in varNames and rely
	// on the binding merge (which rejects mismatches) during decoding.
	return motif, varNames, filters, nil
}
