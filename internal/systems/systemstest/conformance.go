// Package systemstest provides the cross-engine conformance suite:
// every engine must produce exactly the reference evaluator's answers
// on a battery of shaped queries and on randomized datasets. Engine
// test packages call Run with a factory for their engine.
package systemstest

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

// Factory builds a fresh engine (fresh spark context) per test.
type Factory func() core.Engine

// Case is one conformance query.
type Case struct {
	Name  string
	Query string
	// BGPOnly marks queries answerable by BGP-fragment engines.
	BGPOnly bool
}

// battery returns the conformance queries over the university
// vocabulary. BGPOnly cases run on every engine; the rest only on
// engines whose Info reports the BGP+ fragment.
func battery() []Case {
	p := func(local string) string { return "<" + workload.UnivNS + local + ">" }
	typ := "<" + rdf.RDFType + ">"
	return []Case{
		{Name: "single-tp", BGPOnly: true, Query: fmt.Sprintf(
			`SELECT ?s ?o WHERE { ?s %s ?o }`, p("advisor"))},
		{Name: "star-2", BGPOnly: true, Query: fmt.Sprintf(
			`SELECT ?s ?n ?a WHERE { ?s %s ?n . ?s %s ?a }`, p("name"), p("age"))},
		{Name: "star-3-typed", BGPOnly: true, Query: fmt.Sprintf(
			`SELECT ?s ?n WHERE { ?s %s %s . ?s %s ?n . ?s %s ?a }`,
			typ, p("Student"), p("name"), p("age"))},
		{Name: "linear-2", BGPOnly: true, Query: fmt.Sprintf(
			`SELECT ?st ?dept WHERE { ?st %s ?prof . ?prof %s ?dept }`,
			p("advisor"), p("worksFor"))},
		{Name: "linear-3", BGPOnly: true, Query: fmt.Sprintf(
			`SELECT ?st ?univ WHERE { ?st %s ?prof . ?prof %s ?dept . ?dept %s ?univ }`,
			p("advisor"), p("worksFor"), p("subOrganizationOf"))},
		{Name: "snowflake", BGPOnly: true, Query: fmt.Sprintf(
			`SELECT ?st ?sn ?pn WHERE { ?st %s ?sn . ?st %s ?prof . ?prof %s ?pn . ?prof %s ?dept }`,
			p("name"), p("advisor"), p("name"), p("worksFor"))},
		{Name: "cyclic", BGPOnly: true, Query: fmt.Sprintf(
			`SELECT ?st ?c WHERE { ?st %s ?c . ?prof %s ?c . ?st %s ?prof }`,
			p("takesCourse"), p("teacherOf"), p("advisor"))},
		{Name: "bound-subject", BGPOnly: true, Query: fmt.Sprintf(
			`SELECT ?p ?o WHERE { <%suniv0.dept0.stud0> ?p ?o }`, workload.UnivNS)},
		{Name: "bound-object", BGPOnly: true, Query: fmt.Sprintf(
			`SELECT ?s WHERE { ?s %s %s }`, typ, p("Professor"))},
		{Name: "no-answers", BGPOnly: true, Query: fmt.Sprintf(
			`SELECT ?s WHERE { ?s %s <%snoSuchThing> }`, p("advisor"), workload.UnivNS)},
		{Name: "var-predicate", BGPOnly: true, Query: fmt.Sprintf(
			`SELECT ?p WHERE { <%suniv0.dept0.stud1> ?p ?o }`, workload.UnivNS)},
		{Name: "distinct-order-limit", Query: fmt.Sprintf(
			`SELECT DISTINCT ?a WHERE { ?s %s ?a } ORDER BY ?a LIMIT 5`, p("age"))},
		{Name: "filter-numeric", Query: fmt.Sprintf(
			`SELECT ?s ?a WHERE { ?s %s ?a . FILTER(?a > 24 && ?a <= 60) }`, p("age"))},
		{Name: "optional", Query: fmt.Sprintf(
			`SELECT ?s ?e WHERE { ?s %s ?n OPTIONAL { ?s %s ?e } }`, p("name"), p("emailAddress"))},
		{Name: "union", Query: fmt.Sprintf(
			`SELECT ?x WHERE { { ?x %s %s } UNION { ?x %s %s } }`,
			typ, p("Professor"), typ, p("Course"))},
		{Name: "ask-true", Query: fmt.Sprintf(
			`ASK { ?s %s %s }`, typ, p("Student"))},
		{Name: "construct", BGPOnly: true, Query: fmt.Sprintf(
			`CONSTRUCT { ?prof %s ?st } WHERE { ?st %s ?prof }`,
			p("advises"), p("advisor"))},
		{Name: "order-multikey-offset", BGPOnly: true, Query: fmt.Sprintf(
			`SELECT ?s ?a ?n WHERE { ?s %s ?a . ?s %s ?n } ORDER BY ?a DESC(?n) LIMIT 7 OFFSET 3`,
			p("age"), p("name"))},
		{Name: "projection-subset", BGPOnly: true, Query: fmt.Sprintf(
			`SELECT ?dept WHERE { ?st %s ?prof . ?prof %s ?dept }`,
			p("advisor"), p("worksFor"))},
	}
}

// Run executes the conformance battery against the reference evaluator
// on the small university dataset.
func Run(t *testing.T, factory Factory) {
	t.Helper()
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	ref := rdf.NewGraph(triples)

	engine := factory()
	if err := engine.Load(triples); err != nil {
		t.Fatalf("Load: %v", err)
	}
	bgpPlus := engine.Info().SPARQL == core.FragmentBGPPlus

	for _, c := range battery() {
		if !c.BGPOnly && !bgpPlus {
			continue
		}
		t.Run(c.Name, func(t *testing.T) {
			q, err := sparql.Parse(c.Query)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			want, err := sparql.Evaluate(q, ref)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			got, err := engine.Execute(q)
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			if !got.Equal(want) {
				t.Fatalf("answers differ\nengine (%d rows): %v\nreference (%d rows): %v",
					got.Len(), head(got.Canonical()), want.Len(), head(want.Canonical()))
			}
		})
	}
}

// RunRandomized fuzzes the engine against the reference on random
// small datasets with random star/linear BGPs.
func RunRandomized(t *testing.T, factory Factory, rounds int) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	preds := []string{"p0", "p1", "p2"}
	for round := 0; round < rounds; round++ {
		// Random dataset: 40 triples over a small constant pool so joins hit.
		var triples []rdf.Triple
		for i := 0; i < 40; i++ {
			s := rdf.NewIRI(fmt.Sprintf("http://r/n%d", rng.Intn(10)))
			p := rdf.NewIRI("http://r/" + preds[rng.Intn(len(preds))])
			o := rdf.NewIRI(fmt.Sprintf("http://r/n%d", rng.Intn(10)))
			triples = append(triples, rdf.Triple{S: s, P: p, O: o})
		}
		ref := rdf.NewGraph(triples)

		engine := factory()
		if err := engine.Load(triples); err != nil {
			t.Fatalf("round %d Load: %v", round, err)
		}

		for qi := 0; qi < 4; qi++ {
			var text string
			p1 := "http://r/" + preds[rng.Intn(len(preds))]
			p2 := "http://r/" + preds[rng.Intn(len(preds))]
			if rng.Intn(2) == 0 {
				text = fmt.Sprintf(`SELECT ?x ?a ?b WHERE { ?x <%s> ?a . ?x <%s> ?b }`, p1, p2)
			} else {
				text = fmt.Sprintf(`SELECT ?x ?y ?z WHERE { ?x <%s> ?y . ?y <%s> ?z }`, p1, p2)
			}
			q := sparql.MustParse(text)
			want, err := sparql.Evaluate(q, ref)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			got, err := engine.Execute(q)
			if err != nil {
				t.Fatalf("round %d engine(%s): %v", round, text, err)
			}
			if !got.Equal(want) {
				t.Fatalf("round %d query %s:\nengine %d rows %v\nreference %d rows %v",
					round, text, got.Len(), head(got.Canonical()), want.Len(), head(want.Canonical()))
			}
		}
	}
}

func head(rows []string) []string {
	if len(rows) > 6 {
		return rows[:6]
	}
	return rows
}
