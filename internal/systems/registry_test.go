package systems

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/workload"
)

func TestRegistryHasAllNineSystems(t *testing.T) {
	r := NewRegistry(spark.DefaultConfig())
	if len(r.Engines()) != 9 {
		t.Fatalf("engines = %d, want 9", len(r.Engines()))
	}
	wantNames := []string{"HAQWA", "SPARQLGX", "S2RDF", "Hybrid", "S2X", "GX-Subgraph", "Spar(k)ql", "GraphFrames", "SparkRDF"}
	for i, n := range r.Names() {
		if n != wantNames[i] {
			t.Fatalf("names[%d] = %s, want %s", i, n, wantNames[i])
		}
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	// The generated Table I must place each citation in the paper's
	// cell (data model x abstraction).
	r := NewRegistry(spark.DefaultConfig())
	type cell struct {
		model core.DataModel
		abs   core.Abstraction
	}
	want := map[string]cell{
		"[7]":  {core.TripleModel, core.RDDAbstraction},
		"[13]": {core.TripleModel, core.RDDAbstraction},
		"[21]": {core.TripleModel, core.RDDAbstraction}, // also DataFrames
		"[24]": {core.TripleModel, core.SparkSQLAbstraction},
		"[23]": {core.GraphModel, core.GraphXAbstraction},
		"[16]": {core.GraphModel, core.GraphXAbstraction},
		"[12]": {core.GraphModel, core.GraphXAbstraction},
		"[4]":  {core.GraphModel, core.GraphFramesAbstraction},
		"[5]":  {core.GraphModel, core.RDDAbstraction},
	}
	for _, e := range r.Engines() {
		info := e.Info()
		w, ok := want[info.Citation]
		if !ok {
			t.Fatalf("unexpected citation %s", info.Citation)
		}
		if info.Model != w.model {
			t.Errorf("%s: model %v, want %v", info.Name, info.Model, w.model)
		}
		found := false
		for _, a := range info.Abstractions {
			if a == w.abs {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: abstractions %v missing %v", info.Name, info.Abstractions, w.abs)
		}
	}
}

func TestTableIIMatchesPaper(t *testing.T) {
	// Optimization and SPARQL-fragment columns of Table II.
	r := NewRegistry(spark.DefaultConfig())
	wantOpt := map[string]bool{
		"[7]": false, "[13]": true, "[24]": true, "[21]": true,
		"[23]": false, "[16]": true, "[12]": true, "[4]": true, "[5]": true,
	}
	wantFrag := map[string]core.Fragment{
		"[7]": core.FragmentBGPPlus, "[13]": core.FragmentBGPPlus,
		"[24]": core.FragmentBGPPlus, "[21]": core.FragmentBGP,
		"[23]": core.FragmentBGPPlus, "[16]": core.FragmentBGP,
		"[12]": core.FragmentBGP, "[4]": core.FragmentBGP, "[5]": core.FragmentBGP,
	}
	for _, e := range r.Engines() {
		info := e.Info()
		if info.Optimized != wantOpt[info.Citation] {
			t.Errorf("%s: optimized = %v", info.Name, info.Optimized)
		}
		if info.SPARQL != wantFrag[info.Citation] {
			t.Errorf("%s: fragment = %v", info.Name, info.SPARQL)
		}
	}
}

func TestFullAssessmentAllEnginesCorrect(t *testing.T) {
	// Integration: every engine answers every supported workload query
	// with exactly the reference answer.
	if testing.Short() {
		t.Skip("integration test")
	}
	conf := spark.Config{Parallelism: 4, Executors: 2, BroadcastThreshold: 1000, MaxConcurrency: 4}
	engines := AllEngines(conf)
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	ref := rdf.NewGraph(triples)
	for _, e := range engines {
		if err := e.Load(triples); err != nil {
			t.Fatalf("%s: %v", e.Info().Name, err)
		}
	}
	for _, nq := range workload.UniversityQueries() {
		want, err := sparql.Evaluate(nq.Query, ref)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range engines {
			m := core.RunQuery(e, nq.Name, nq.Query, want)
			if m.Err != nil {
				// BGP-fragment engines legitimately reject BGP+ queries.
				if e.Info().SPARQL == core.FragmentBGP {
					continue
				}
				t.Errorf("%s on %s: %v", e.Info().Name, nq.Name, m.Err)
				continue
			}
			if !m.Correct {
				t.Errorf("%s on %s: wrong answer (%d rows, want %d)",
					e.Info().Name, nq.Name, m.Rows, want.Len())
			}
		}
	}
}

func TestAllEnginesRejectDescribe(t *testing.T) {
	q := sparql.MustParse(`DESCRIBE <http://e/x>`)
	for _, e := range AllEngines(spark.DefaultConfig()) {
		if err := e.Load(nil); err != nil {
			t.Fatalf("%s: %v", e.Info().Name, err)
		}
		if _, err := e.Execute(q); err == nil {
			t.Errorf("%s accepted DESCRIBE", e.Info().Name)
		}
	}
}

func TestAllEnginesCorrectUnderFaultInjection(t *testing.T) {
	// Spark's recompute-from-lineage contract: answers are identical
	// when tasks fail and retry.
	if testing.Short() {
		t.Skip("integration test")
	}
	conf := spark.Config{Parallelism: 4, Executors: 2, BroadcastThreshold: 1000, MaxConcurrency: 4}
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	ref := rdf.NewGraph(triples)
	q := sparql.MustParse(
		`SELECT ?st ?dept WHERE { ?st <` + workload.UnivNS + `advisor> ?prof . ?prof <` + workload.UnivNS + `worksFor> ?dept }`)
	want, err := sparql.Evaluate(q, ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range AllEngines(conf) {
		plan := spark.NewFaultPlan(0.2, 11)
		plan.MaxAttempts = 64 // high failure rate: keep retrying, never abort
		e.Context().InjectFaults(plan)
		if err := e.Load(triples); err != nil {
			t.Fatalf("%s load under faults: %v", e.Info().Name, err)
		}
		got, err := e.Execute(q)
		if err != nil {
			t.Fatalf("%s execute under faults: %v", e.Info().Name, err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: answers changed under fault injection", e.Info().Name)
		}
		if e.Context().TaskRetries() == 0 {
			t.Errorf("%s: no retries at 20%% failure rate", e.Info().Name)
		}
	}
}

func TestFullAssessmentMediumScale(t *testing.T) {
	// Benchmark-scale integration: every engine answers the linear
	// workload query correctly on the ~26k-triple dataset.
	if testing.Short() {
		t.Skip("medium-scale integration test")
	}
	conf := spark.Config{Parallelism: 4, Executors: 2, BroadcastThreshold: 1000, MaxConcurrency: 8}
	triples := workload.GenerateUniversity(workload.MediumUniversity())
	ref := rdf.NewGraph(triples)
	q := workload.QueriesByShape(workload.UniversityQueries(), sparql.ShapeLinear)[0]
	want, err := sparql.Evaluate(q.Query, ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range AllEngines(conf) {
		if err := e.Load(triples); err != nil {
			t.Fatalf("%s: %v", e.Info().Name, err)
		}
		got, err := e.Execute(q.Query)
		if err != nil {
			t.Fatalf("%s: %v", e.Info().Name, err)
		}
		if !got.Equal(want) {
			t.Errorf("%s wrong at medium scale: %d vs %d rows", e.Info().Name, got.Len(), want.Len())
		}
	}
}
