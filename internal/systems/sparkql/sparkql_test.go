package sparkql

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/sparql"
	"repro/internal/systems/systemstest"
	"repro/internal/workload"
)

func newEngine() *Engine {
	return New(spark.NewContext(spark.Config{Parallelism: 4, Executors: 2, BroadcastThreshold: 1000, MaxConcurrency: 4}))
}

func TestConformance(t *testing.T) {
	systemstest.Run(t, func() core.Engine { return newEngine() })
}

func TestRandomized(t *testing.T) {
	systemstest.RunRandomized(t, func() core.Engine { return newEngine() }, 5)
}

func TestInfo(t *testing.T) {
	info := newEngine().Info()
	if info.Name != "Spar(k)ql" || info.SPARQL != core.FragmentBGP {
		t.Fatalf("info = %+v", info)
	}
}

func TestNodeModelSplitsProperties(t *testing.T) {
	e := newEngine()
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://t/" + s) }
	if err := e.Load([]rdf.Triple{
		{S: iri("a"), P: iri("knows"), O: iri("b")},                               // object property -> edge
		{S: iri("a"), P: iri("name"), O: rdf.NewLiteral("Ann")},                   // data property -> node
		{S: iri("a"), P: rdf.NewIRI(rdf.RDFType), O: iri("Person")},               // rdf:type -> node
		{S: iri("b"), P: iri("age"), O: rdf.NewTypedLiteral("7", rdf.XSDInteger)}, // data property
	}); err != nil {
		t.Fatal(err)
	}
	if e.graph.NumEdges() != 1 {
		t.Fatalf("edges = %d, want only the object property", e.graph.NumEdges())
	}
	aProps := e.props[e.ids[iri("a")]]
	if len(aProps["http://t/name"]) != 1 {
		t.Fatalf("name not stored as node property: %v", aProps)
	}
	if len(aProps[rdf.RDFType]) != 1 {
		t.Fatal("rdf:type not stored in node properties")
	}
}

func TestBFSTreeDepthDrivesSupersteps(t *testing.T) {
	e := newEngine()
	if err := e.Load(workload.GenerateUniversity(workload.SmallUniversity())); err != nil {
		t.Fatal(err)
	}
	run := func(q string) int64 {
		before := e.Context().Snapshot()
		if _, err := e.Execute(sparql.MustParse(q)); err != nil {
			t.Fatal(err)
		}
		return e.Context().Snapshot().Diff(before).Supersteps
	}
	// Star over data properties: no edge patterns, no message rounds.
	star := run(fmt.Sprintf(`SELECT ?s ?n ?a WHERE { ?s <%sname> ?n . ?s <%sage> ?a }`,
		workload.UnivNS, workload.UnivNS))
	if star != 0 {
		t.Fatalf("data-property star used %d supersteps, want 0", star)
	}
	// Two-edge chain: two tree links, two message rounds.
	chain := run(fmt.Sprintf(`SELECT ?st ?d WHERE { ?st <%sadvisor> ?p . ?p <%sworksFor> ?d }`,
		workload.UnivNS, workload.UnivNS))
	if chain != 2 {
		t.Fatalf("two-edge chain used %d supersteps, want 2", chain)
	}
}

func TestTypeFromNodeProperties(t *testing.T) {
	e := newEngine()
	if err := e.Load(workload.GenerateUniversity(workload.SmallUniversity())); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(fmt.Sprintf(`SELECT ?s WHERE { ?s <%s> <%sProfessor> }`,
		rdf.RDFType, workload.UnivNS))
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.SmallUniversity()
	want := cfg.Universities * cfg.DepartmentsPerUniv * cfg.ProfessorsPerDept
	if res.Len() != want {
		t.Fatalf("professors = %d, want %d", res.Len(), want)
	}
}

func TestCyclicQueryFallsBackCorrectly(t *testing.T) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	q := sparql.MustParse(fmt.Sprintf(
		`SELECT ?st ?c WHERE { ?st <%stakesCourse> ?c . ?prof <%steacherOf> ?c . ?st <%sadvisor> ?prof }`,
		workload.UnivNS, workload.UnivNS, workload.UnivNS))
	want, err := sparql.Evaluate(q, rdf.NewGraph(triples))
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine()
	if err := e.Load(triples); err != nil {
		t.Fatal(err)
	}
	got, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("cyclic query wrong: %d vs %d rows", got.Len(), want.Len())
	}
}

func TestRejectsNonBGP(t *testing.T) {
	e := newEngine()
	if err := e.Load(workload.GenerateUniversity(workload.SmallUniversity())); err != nil {
		t.Fatal(err)
	}
	q := sparql.MustParse(`SELECT ?x WHERE { ?x <http://e/p> ?y FILTER(?y > 1) }`)
	if _, err := e.Execute(q); err == nil {
		t.Fatal("FILTER must be rejected (fragment is BGP)")
	}
}

func TestExecuteWithoutLoad(t *testing.T) {
	if _, err := newEngine().Execute(sparql.MustParse(`SELECT ?s WHERE { ?s ?p ?o }`)); err == nil {
		t.Fatal("expected error before Load")
	}
}
