// Package sparkql reproduces Spar(k)ql (Gombos, Rácz, Kiss, FiCloud
// Workshops 2016, survey ref [12]): SPARQL evaluation on GraphX with a
// property-graph node model. Object properties (IRI-valued predicates)
// are the edges of the graph; data properties (literal-valued
// predicates) are stored inside the nodes as node properties — and so
// is rdf:type, despite being an object property, because of its
// popularity in SPARQL queries.
//
// A query plan is a tree built breadth-first over the object-property
// patterns. Execution traverses the plan bottom-up: every node first
// solves its local data-property constraints against the stored node
// properties, then child sub-result tables flow along the tree edges
// (one message round per tree level) and merge at their parents, until
// the root holds the answer.
//
// Supported fragment (Table II): BGP, with query optimization (the
// BFS plan).
package sparkql

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/spark/graphx"
	"repro/internal/sparql"
)

// nodeProps is the property map of a vertex: predicate IRI -> values.
type nodeProps map[string][]rdf.Term

// Engine is the Spar(k)ql system.
type Engine struct {
	ctx   *spark.Context
	graph *graphx.Graph[rdf.Term, string]
	props map[graphx.VertexID]nodeProps
	ids   map[rdf.Term]graphx.VertexID
	terms map[graphx.VertexID]rdf.Term
}

// New creates an unloaded engine on ctx.
func New(ctx *spark.Context) *Engine { return &Engine{ctx: ctx} }

// Info implements core.Engine.
func (e *Engine) Info() core.SystemInfo {
	return core.SystemInfo{
		Name:            "Spar(k)ql",
		Citation:        "[12]",
		Model:           core.GraphModel,
		Abstractions:    []core.Abstraction{core.GraphXAbstraction},
		QueryProcessing: "Graph Iterations",
		Optimized:       true,
		Partitioning:    "Default",
		SPARQL:          core.FragmentBGP,
	}
}

// Context implements core.Engine.
func (e *Engine) Context() *spark.Context { return e.ctx }

// Load splits the dataset per the node model: literal-valued triples
// and rdf:type become node properties; IRI-valued triples become
// edges.
func (e *Engine) Load(triples []rdf.Triple) error {
	triples = rdf.Dedupe(triples)
	e.ids = map[rdf.Term]graphx.VertexID{}
	e.terms = map[graphx.VertexID]rdf.Term{}
	e.props = map[graphx.VertexID]nodeProps{}
	var vertices []graphx.Vertex[rdf.Term]
	idOf := func(t rdf.Term) graphx.VertexID {
		if id, ok := e.ids[t]; ok {
			return id
		}
		id := graphx.VertexID(len(e.ids) + 1)
		e.ids[t] = id
		e.terms[id] = t
		vertices = append(vertices, graphx.Vertex[rdf.Term]{ID: id, Attr: t})
		return id
	}
	var edges []graphx.Edge[string]
	for _, t := range triples {
		sid := idOf(t.S)
		if t.O.IsLiteral() || t.IsTypeTriple() {
			if e.props[sid] == nil {
				e.props[sid] = nodeProps{}
			}
			e.props[sid][t.P.Value] = append(e.props[sid][t.P.Value], t.O)
			continue
		}
		edges = append(edges, graphx.Edge[string]{Src: sid, Dst: idOf(t.O), Attr: t.P.Value})
	}
	e.graph = graphx.New(e.ctx, vertices, edges)
	return nil
}

// Execute implements core.Engine. Only BGP queries are supported.
func (e *Engine) Execute(q *sparql.Query) (*sparql.Results, error) {
	if q.Form == sparql.FormDescribe {
		return nil, fmt.Errorf("sparkql: DESCRIBE is not supported (use the reference evaluator)")
	}
	if e.graph == nil {
		return nil, fmt.Errorf("sparkql: no dataset loaded")
	}
	bgp, ok := q.BGPOf()
	if !ok {
		return nil, fmt.Errorf("sparkql: only BGP queries are supported (fragment per Table II)")
	}
	rows, err := e.evalBGP(bgp)
	if err != nil {
		return nil, err
	}
	return sparql.ApplySolutionModifiers(q, rows), nil
}

// nodeKey identifies a query node (a subject/object position): either
// a variable or a constant term.
type nodeKey string

func keyOfElem(el sparql.TPElem) nodeKey {
	if el.IsVar {
		return nodeKey("?" + string(el.Var))
	}
	return nodeKey(el.Term.String())
}

func (e *Engine) evalBGP(bgp sparql.BGP) ([]sparql.Binding, error) {
	if len(bgp.Patterns) == 0 {
		return []sparql.Binding{{}}, nil
	}
	// Split patterns: node-local (data property / rdf:type / variable
	// predicate handled as leftovers), edge patterns (object
	// properties).
	var edgeTPs, leftovers []sparql.TriplePattern
	nodeTPs := map[nodeKey][]sparql.TriplePattern{}
	for _, tp := range bgp.Patterns {
		switch {
		case tp.P.IsVar:
			leftovers = append(leftovers, tp)
		case e.isNodeProperty(tp):
			k := keyOfElem(tp.S)
			nodeTPs[k] = append(nodeTPs[k], tp)
		default:
			edgeTPs = append(edgeTPs, tp)
		}
	}

	// Build the BFS query tree over the edge patterns.
	tree, treeLeftovers := buildBFSTree(edgeTPs)
	leftovers = append(leftovers, treeLeftovers...)

	// Evaluate every tree component bottom-up, then join components and
	// leftovers at the driver (Spark side).
	rows := []sparql.Binding{{}}
	usedNodes := map[nodeKey]bool{}
	for _, root := range tree.roots {
		table := e.evalSubtree(tree, root, nodeTPs, usedNodes)
		rows = joinTables(rows, table)
	}
	// Node-only variables (no edges touch them).
	for k, tps := range nodeTPs {
		if usedNodes[k] {
			continue
		}
		table := e.nodeTable(elemOfKey(k, tps), tps)
		usedNodes[k] = true
		rows = joinTables(rows, flatten(table))
	}
	for _, tp := range leftovers {
		rows = joinTables(rows, e.matchAnywhere(tp))
	}
	return rows, nil
}

// isNodeProperty reports whether a constant-predicate pattern should
// be answered from node properties: rdf:type always; otherwise when
// the predicate occurs only as a data property (never as an edge).
func (e *Engine) isNodeProperty(tp sparql.TriplePattern) bool {
	if tp.P.Term.Value == rdf.RDFType {
		return true
	}
	if !tp.O.IsVar && !tp.O.Term.IsLiteral() {
		return false
	}
	// A predicate stored as node property for at least one node and
	// never as an edge is a data property.
	isProp := false
	for _, ps := range e.props {
		if len(ps[tp.P.Term.Value]) > 0 {
			isProp = true
			break
		}
	}
	if !isProp {
		return false
	}
	for _, ed := range e.graph.Edges().Collect() {
		if ed.Attr == tp.P.Term.Value {
			return false
		}
	}
	return true
}

// queryTree is the BFS plan: parent -> children over edge patterns.
type queryTree struct {
	roots    []nodeKey
	children map[nodeKey][]treeLink
}

// treeLink connects a parent query node to a child via one pattern.
type treeLink struct {
	child nodeKey
	tp    sparql.TriplePattern
	// down is true when the pattern points parent -> child
	// (parent is the subject).
	down bool
}

// buildBFSTree builds a forest over the edge patterns; patterns that
// would close a cycle are returned as leftovers to be joined at the
// driver.
func buildBFSTree(tps []sparql.TriplePattern) (*queryTree, []sparql.TriplePattern) {
	tree := &queryTree{children: map[nodeKey][]treeLink{}}
	if len(tps) == 0 {
		return tree, nil
	}
	var leftovers []sparql.TriplePattern
	visited := map[nodeKey]bool{}
	usedTP := make([]bool, len(tps))
	for {
		// Pick the first unused pattern as a new root.
		rootIdx := -1
		for i := range tps {
			if !usedTP[i] {
				rootIdx = i
				break
			}
		}
		if rootIdx < 0 {
			break
		}
		root := keyOfElem(tps[rootIdx].S)
		if visited[root] {
			// Subject already in the forest — the pattern closes a cycle.
			usedTP[rootIdx] = true
			leftovers = append(leftovers, tps[rootIdx])
			continue
		}
		tree.roots = append(tree.roots, root)
		visited[root] = true
		queue := []nodeKey{root}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for i, tp := range tps {
				if usedTP[i] {
					continue
				}
				s, o := keyOfElem(tp.S), keyOfElem(tp.O)
				var child nodeKey
				var down bool
				switch {
				case s == cur && !visited[o]:
					child, down = o, true
				case o == cur && !visited[s]:
					child, down = s, false
				case (s == cur && visited[o]) || (o == cur && visited[s]):
					// Cycle-closing pattern.
					usedTP[i] = true
					leftovers = append(leftovers, tp)
					continue
				default:
					continue
				}
				usedTP[i] = true
				visited[child] = true
				tree.children[cur] = append(tree.children[cur], treeLink{child: child, tp: tp, down: down})
				queue = append(queue, child)
			}
		}
	}
	return tree, leftovers
}

// nodeTable builds the local sub-result table of a query node: for
// every graph vertex, the bindings satisfying all the node's
// data-property constraints (plus the node variable itself).
func (e *Engine) nodeTable(el sparql.TPElem, tps []sparql.TriplePattern) map[graphx.VertexID][]sparql.Binding {
	out := map[graphx.VertexID][]sparql.Binding{}
	consider := func(vid graphx.VertexID) {
		base := sparql.Binding{}
		if el.IsVar {
			base[el.Var] = e.terms[vid]
		}
		rows := []sparql.Binding{base}
		for _, tp := range tps {
			var next []sparql.Binding
			vals := e.props[vid][tp.P.Term.Value]
			for _, row := range rows {
				for _, val := range vals {
					if tp.O.IsVar {
						if cur, ok := row[tp.O.Var]; ok {
							if cur == val {
								next = append(next, row)
							}
							continue
						}
						nb := row.Clone()
						nb[tp.O.Var] = val
						next = append(next, nb)
					} else if tp.O.Term == val {
						next = append(next, row)
					}
				}
			}
			rows = next
			if len(rows) == 0 {
				return
			}
		}
		out[vid] = rows
	}
	if !el.IsVar {
		if vid, ok := e.ids[el.Term]; ok {
			consider(vid)
		}
		return out
	}
	for vid := range e.terms {
		consider(vid)
	}
	return out
}

// evalSubtree evaluates the plan bottom-up from root's subtree,
// returning the joined table. Each tree level costs one message round
// (superstep); child tables travel along matching edges.
func (e *Engine) evalSubtree(tree *queryTree, node nodeKey, nodeTPs map[nodeKey][]sparql.TriplePattern, used map[nodeKey]bool) []sparql.Binding {
	used[node] = true
	el := elemOfKey(node, nodeTPs[node])
	table := e.nodeTable(el, nodeTPs[node])
	for _, link := range tree.children[node] {
		childTable := e.evalSubtree(tree, link.child, nodeTPs, used)
		// Index child rows by the child node's vertex.
		childEl := elemOfKeyTP(link.child, link.tp, link.down)
		byVertex := map[graphx.VertexID][]sparql.Binding{}
		for _, row := range childTable {
			var t rdf.Term
			if childEl.IsVar {
				t = row[childEl.Var]
			} else {
				t = childEl.Term
			}
			vid := e.ids[t]
			byVertex[vid] = append(byVertex[vid], row)
		}
		// One aggregateMessages round: child rows flow along matching
		// edges to the parent vertex.
		pred := link.tp.P.Term.Value
		msgs := graphx.AggregateMessages(e.graph,
			func(c *graphx.EdgeContext[rdf.Term, string, []sparql.Binding]) {
				if c.Triplet.Attr != pred {
					return
				}
				if link.down {
					// parent --pred--> child: child rows at Dst flow to Src.
					if rows := byVertex[c.Triplet.Dst]; len(rows) > 0 {
						c.SendToSrc(rows)
					}
				} else {
					if rows := byVertex[c.Triplet.Src]; len(rows) > 0 {
						c.SendToDst(rows)
					}
				}
			},
			func(a, b []sparql.Binding) []sparql.Binding { return append(a, b...) })
		e.ctx.AddSupersteps(1)
		// Merge arriving child rows into the parent's table per vertex.
		next := map[graphx.VertexID][]sparql.Binding{}
		for vid, parentRows := range table {
			arrivals := msgs[vid]
			if len(arrivals) == 0 {
				continue
			}
			parentEl := el
			for _, pr := range parentRows {
				for _, cr := range arrivals {
					// The parent end of the edge must equal this vertex.
					merged, ok := mergeAtVertex(pr, cr, parentEl, vid, e.terms)
					if ok {
						next[vid] = append(next[vid], merged)
					}
				}
			}
		}
		table = next
	}
	return flatten(table)
}

// mergeAtVertex merges a parent row with a child row when compatible.
func mergeAtVertex(parent, child sparql.Binding, parentEl sparql.TPElem, vid graphx.VertexID, terms map[graphx.VertexID]rdf.Term) (sparql.Binding, bool) {
	if parentEl.IsVar {
		if t, ok := parent[parentEl.Var]; !ok || t != terms[vid] {
			return nil, false
		}
	}
	if !parent.Compatible(child) {
		return nil, false
	}
	return parent.Merge(child), true
}

// matchAnywhere evaluates a leftover pattern against both edges and
// node properties (variable predicates span both stores).
func (e *Engine) matchAnywhere(tp sparql.TriplePattern) []sparql.Binding {
	var out []sparql.Binding
	emit := func(s, p, o rdf.Term) {
		b := sparql.Binding{}
		if tp.S.IsVar {
			b[tp.S.Var] = s
		} else if tp.S.Term != s {
			return
		}
		if tp.P.IsVar {
			if cur, ok := b[tp.P.Var]; ok && cur != p {
				return
			}
			b[tp.P.Var] = p
		} else if tp.P.Term != p {
			return
		}
		if tp.O.IsVar {
			if cur, ok := b[tp.O.Var]; ok && cur != o {
				return
			}
			b[tp.O.Var] = o
		} else if tp.O.Term != o {
			return
		}
		out = append(out, b)
	}
	for _, ed := range e.graph.Edges().Collect() {
		emit(e.terms[ed.Src], rdf.NewIRI(ed.Attr), e.terms[ed.Dst])
	}
	for vid, ps := range e.props {
		for p, vals := range ps {
			for _, val := range vals {
				emit(e.terms[vid], rdf.NewIRI(p), val)
			}
		}
	}
	return out
}

func elemOfKey(k nodeKey, tps []sparql.TriplePattern) sparql.TPElem {
	if len(tps) > 0 {
		return tps[0].S
	}
	return elemFromKeyString(k)
}

func elemOfKeyTP(k nodeKey, tp sparql.TriplePattern, down bool) sparql.TPElem {
	if down {
		return tp.O
	}
	return tp.S
}

// elemFromKeyString reverses keyOfElem for variables; constants are
// reparsed from their N-Triples rendering.
func elemFromKeyString(k nodeKey) sparql.TPElem {
	s := string(k)
	if len(s) > 0 && s[0] == '?' {
		return sparql.VarElem(sparql.Var(s[1:]))
	}
	// Constant: parse the rendered term via a dummy triple line.
	t, err := rdf.ParseTripleLine("<http://x/s> <http://x/p> " + s + " .")
	if err != nil {
		return sparql.TPElem{}
	}
	return sparql.TermElem(t.O)
}

func flatten(m map[graphx.VertexID][]sparql.Binding) []sparql.Binding {
	var out []sparql.Binding
	for _, rows := range m {
		out = append(out, rows...)
	}
	return out
}

func joinTables(a, b []sparql.Binding) []sparql.Binding {
	var out []sparql.Binding
	for _, x := range a {
		for _, y := range b {
			if x.Compatible(y) {
				out = append(out, x.Merge(y))
			}
		}
	}
	return out
}
