package rdf

import (
	"strings"
	"testing"
)

func parseTTL(t *testing.T, doc string) []Triple {
	t.Helper()
	ts, err := ParseTurtle(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("ParseTurtle: %v", err)
	}
	return ts
}

func TestTurtleBasic(t *testing.T) {
	ts := parseTTL(t, `
@prefix ex: <http://ex.org/> .
ex:ann ex:knows ex:bob .
<http://ex.org/bob> ex:knows ex:cid .
`)
	if len(ts) != 2 {
		t.Fatalf("triples = %d", len(ts))
	}
	if ts[0].S != NewIRI("http://ex.org/ann") || ts[0].P != NewIRI("http://ex.org/knows") {
		t.Fatalf("triple 0 = %v", ts[0])
	}
}

func TestTurtlePredicateAndObjectLists(t *testing.T) {
	ts := parseTTL(t, `
@prefix ex: <http://ex.org/> .
ex:ann ex:knows ex:bob , ex:cid ;
       ex:name "Ann" ;
       a ex:Person .
`)
	if len(ts) != 4 {
		t.Fatalf("triples = %d: %v", len(ts), ts)
	}
	g := NewGraph(ts)
	if len(g.WithPredicate("http://ex.org/knows")) != 2 {
		t.Fatal("object list expansion wrong")
	}
	if len(g.WithPredicate(RDFType)) != 1 {
		t.Fatal("'a' keyword not expanded")
	}
}

func TestTurtleLiterals(t *testing.T) {
	ts := parseTTL(t, `
@prefix ex: <http://ex.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:x ex:plain "hello" .
ex:x ex:lang "bonjour"@fr .
ex:x ex:typed "5"^^xsd:integer .
ex:x ex:typedIRI "6"^^<http://www.w3.org/2001/XMLSchema#integer> .
ex:x ex:int 42 .
ex:x ex:neg -7 .
ex:x ex:dec 3.25 .
ex:x ex:flag true .
ex:x ex:esc "a\"b\nc" .
`)
	byPred := map[string]Term{}
	for _, tr := range ts {
		byPred[tr.P.Value] = tr.O
	}
	if byPred["http://ex.org/plain"] != NewLiteral("hello") {
		t.Fatalf("plain = %v", byPred["http://ex.org/plain"])
	}
	if byPred["http://ex.org/lang"].Lang != "fr" {
		t.Fatal("language tag lost")
	}
	if byPred["http://ex.org/typed"].Datatype != XSDInteger {
		t.Fatalf("prefixed datatype = %v", byPred["http://ex.org/typed"])
	}
	if byPred["http://ex.org/typedIRI"].Datatype != XSDInteger {
		t.Fatal("IRI datatype lost")
	}
	if byPred["http://ex.org/int"] != NewTypedLiteral("42", XSDInteger) {
		t.Fatalf("int shorthand = %v", byPred["http://ex.org/int"])
	}
	if byPred["http://ex.org/neg"].Value != "-7" {
		t.Fatalf("negative = %v", byPred["http://ex.org/neg"])
	}
	if !strings.HasSuffix(byPred["http://ex.org/dec"].Datatype, "decimal") {
		t.Fatalf("decimal = %v", byPred["http://ex.org/dec"])
	}
	if !strings.HasSuffix(byPred["http://ex.org/flag"].Datatype, "boolean") {
		t.Fatalf("boolean = %v", byPred["http://ex.org/flag"])
	}
	if byPred["http://ex.org/esc"].Value != "a\"b\nc" {
		t.Fatalf("escapes = %q", byPred["http://ex.org/esc"].Value)
	}
}

func TestTurtleBlankNodesAndBase(t *testing.T) {
	ts := parseTTL(t, `
@base <http://base.org/> .
@prefix ex: <http://ex.org/> .
_:b1 ex:knows <relative> .
`)
	if len(ts) != 1 {
		t.Fatalf("triples = %d", len(ts))
	}
	if !ts[0].S.IsBlank() || ts[0].S.Value != "b1" {
		t.Fatalf("subject = %v", ts[0].S)
	}
	if ts[0].O.Value != "http://base.org/relative" {
		t.Fatalf("base resolution = %v", ts[0].O)
	}
}

func TestTurtleSPARQLStyleDirectives(t *testing.T) {
	ts := parseTTL(t, `
PREFIX ex: <http://ex.org/>
ex:a ex:p ex:b .
`)
	if len(ts) != 1 || ts[0].S.Value != "http://ex.org/a" {
		t.Fatalf("triples = %v", ts)
	}
}

func TestTurtleCommentsAndWhitespace(t *testing.T) {
	ts := parseTTL(t, `
# leading comment
@prefix ex: <http://ex.org/> . # trailing comment
ex:a          # subject
   ex:p       # predicate
   ex:b .     # object
`)
	if len(ts) != 1 {
		t.Fatalf("triples = %d", len(ts))
	}
}

func TestTurtleTrailingSemicolon(t *testing.T) {
	ts := parseTTL(t, `
@prefix ex: <http://ex.org/> .
ex:a ex:p ex:b ; .
`)
	if len(ts) != 1 {
		t.Fatalf("triples = %d", len(ts))
	}
}

func TestTurtleErrors(t *testing.T) {
	for _, bad := range []string{
		`@prefix ex <http://e/> .`,                         // missing colon
		`@prefix ex: <http://e/>`,                          // missing dot
		`ex:a ex:p ex:b .`,                                 // unknown prefix
		`@prefix ex: <http://e/> . ex:a ex:p `,             // truncated
		`@prefix ex: <http://e/> . ex:a ex:p ex:b ex:c .`,  // missing separator
		`@prefix ex: <http://e/> . "lit" ex:p ex:b .`,      // literal subject
		`@prefix ex: <http://e/> . ex:a "lit" ex:b .`,      // literal predicate
		`@prefix ex: <http://e/> . ex:a ex:p "unterm .`,    // unterminated literal
		`@prefix ex: <http://e/> . ex:a ex:p "x"^^"bad" .`, // bad datatype
		`@unknown thing .`,
	} {
		if _, err := ParseTurtle(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTurtle(%q) succeeded", bad)
		}
	}
}

func TestTurtleAgainstNTriples(t *testing.T) {
	// The same data in both syntaxes must parse identically.
	nt := `<http://e/a> <http://e/p> <http://e/b> .
<http://e/a> <http://e/name> "Ann"@en .
<http://e/a> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/T> .`
	ttl := `@prefix e: <http://e/> .
e:a e:p e:b ; e:name "Ann"@en ; a e:T .`
	a, err := ParseNTriples(strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseTurtle(strings.NewReader(ttl))
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := NewGraph(a), NewGraph(b)
	if ga.Len() != gb.Len() {
		t.Fatalf("sizes differ: %d vs %d", ga.Len(), gb.Len())
	}
	for _, tr := range a {
		if !gb.Has(tr) {
			t.Fatalf("turtle missing %v", tr)
		}
	}
}
