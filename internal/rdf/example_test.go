package rdf_test

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// ExampleParseNTriples parses a two-line N-Triples document.
func ExampleParseNTriples() {
	doc := `<http://ex/a> <http://ex/knows> <http://ex/b> .
<http://ex/a> <http://ex/name> "Ann" .`
	triples, _ := rdf.ParseNTriples(strings.NewReader(doc))
	fmt.Println(len(triples), triples[1].O.Value)
	// Output: 2 Ann
}

// ExampleDictionary shows HAQWA-style integer encoding of terms.
func ExampleDictionary() {
	d := rdf.NewDictionary()
	id := d.Encode(rdf.NewIRI("http://ex/ann"))
	back, _ := d.Decode(id)
	fmt.Println(id, back.Value)
	// Output: 0 http://ex/ann
}

// ExampleMaterialize shows RDFS subclass entailment.
func ExampleMaterialize() {
	sub := rdf.NewIRI(rdf.RDFSSubClassOf)
	typ := rdf.NewIRI(rdf.RDFType)
	out := rdf.Materialize([]rdf.Triple{
		{S: rdf.NewIRI("http://ex/Student"), P: sub, O: rdf.NewIRI("http://ex/Person")},
		{S: rdf.NewIRI("http://ex/ann"), P: typ, O: rdf.NewIRI("http://ex/Student")},
	})
	fmt.Println(len(out))
	// Output: 3
}
