package rdf

// EncodedView is the dictionary-encoded face of a Graph: the same
// triples in TermID space, with positional indexes keyed by id. The
// slot-compiled reference evaluator runs entirely on this view —
// candidate scans, join-variable comparisons, and selectivity
// estimates all happen on 12-byte EncodedTriples instead of
// string-bearing Terms — and decodes ids back to Terms only when
// materializing final solutions.
//
// Obtain a view with Graph.Encoded(). All returned slices are views
// into the index and must be treated as read-only.
type EncodedView struct {
	dict    *Dictionary
	triples []EncodedTriple
	byS     map[TermID][]EncodedTriple
	byP     map[TermID][]EncodedTriple
	byO     map[TermID][]EncodedTriple
}

func newEncodedView() *EncodedView { return newEncodedViewSharing(NewDictionary()) }

// newEncodedViewSharing builds an empty view that encodes through an
// existing dictionary instead of a private one. Shard graphs use this:
// every shard of one dataset encodes through the same dictionary, so a
// TermID means the same term on every shard and cross-shard merging
// stays in id space.
func newEncodedViewSharing(dict *Dictionary) *EncodedView {
	return &EncodedView{
		dict: dict,
		byS:  make(map[TermID][]EncodedTriple),
		byP:  make(map[TermID][]EncodedTriple),
		byO:  make(map[TermID][]EncodedTriple),
	}
}

// extend encodes and indexes additional triples.
func (v *EncodedView) extend(ts []Triple) {
	for _, t := range ts {
		e := v.dict.EncodeTriple(t)
		v.triples = append(v.triples, e)
		v.byS[e.S] = append(v.byS[e.S], e)
		v.byP[e.P] = append(v.byP[e.P], e)
		v.byO[e.O] = append(v.byO[e.O], e)
	}
}

// Dict returns the dictionary that maps ids to terms and back.
func (v *EncodedView) Dict() *Dictionary { return v.dict }

// Len returns the number of encoded triples.
func (v *EncodedView) Len() int { return len(v.triples) }

// Triples returns all encoded triples (read-only).
func (v *EncodedView) Triples() []EncodedTriple { return v.triples }

// WithSubject returns the encoded triples whose subject is id
// (read-only, no copy).
func (v *EncodedView) WithSubject(id TermID) []EncodedTriple { return v.byS[id] }

// WithPredicate returns the encoded triples whose predicate is id
// (read-only, no copy).
func (v *EncodedView) WithPredicate(id TermID) []EncodedTriple { return v.byP[id] }

// WithObject returns the encoded triples whose object is id
// (read-only, no copy).
func (v *EncodedView) WithObject(id TermID) []EncodedTriple { return v.byO[id] }

// Morsel-able views: every slice returned by Triples, WithSubject,
// WithPredicate, and WithObject is immutable once the view is built
// (the single-writer/many-reader Graph contract), so a parallel
// evaluator may scan disjoint subranges — morsels — of one view
// concurrently without synchronization. MorselCount and MorselBounds
// define the canonical fixed-size split every such scan uses, which
// keeps a morsel-order merge byte-identical to a serial left-to-right
// scan of the whole view.

// MorselCount returns the number of fixed-size morsels covering n
// items (the last morsel may be short).
func MorselCount(n, size int) int {
	if n <= 0 || size <= 0 {
		return 0
	}
	return (n + size - 1) / size
}

// MorselBounds returns the half-open [start, end) range of the m-th of
// the morsels covering n items.
func MorselBounds(m, n, size int) (start, end int) {
	start = m * size
	end = start + size
	if end > n {
		end = n
	}
	return start, end
}
