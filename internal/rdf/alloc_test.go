package rdf

import (
	"fmt"
	"testing"
)

func allocGraph(n int) *Graph {
	ts := make([]Triple, 0, 2*n)
	for i := 0; i < n; i++ {
		s := NewIRI(fmt.Sprintf("http://ex/s%d", i))
		ts = append(ts,
			Triple{S: s, P: NewIRI("http://ex/name"), O: NewLiteral(fmt.Sprintf("n%d", i))},
			Triple{S: s, P: NewIRI("http://ex/age"), O: NewTypedLiteral(fmt.Sprint(20+i%50), XSDInteger)},
		)
	}
	return NewGraph(ts)
}

// The positional lookups are zero-copy index views; a regression to
// copying would silently reintroduce an allocation per candidate scan
// in the evaluator's hottest loop.
func TestGraphLookupsDoNotAllocate(t *testing.T) {
	g := allocGraph(100)
	s := NewIRI("http://ex/s7")
	o := NewLiteral("n7")
	var got int
	if n := testing.AllocsPerRun(100, func() {
		got += len(g.WithSubject(s))
	}); n != 0 {
		t.Fatalf("WithSubject allocates %.1f times per lookup, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		got += len(g.WithPredicate("http://ex/name"))
	}); n != 0 {
		t.Fatalf("WithPredicate allocates %.1f times per lookup, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		got += len(g.WithObject(o))
	}); n != 0 {
		t.Fatalf("WithObject allocates %.1f times per lookup, want 0", n)
	}
	if got == 0 {
		t.Fatal("lookups returned no triples")
	}
}

func TestEncodedViewMatchesGraph(t *testing.T) {
	g := allocGraph(50)
	v := g.Encoded()
	if v.Len() != g.Len() {
		t.Fatalf("encoded len = %d, graph len = %d", v.Len(), g.Len())
	}
	dict := v.Dict()
	for _, e := range v.Triples() {
		tr, err := dict.DecodeTriple(e)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Has(tr) {
			t.Fatalf("decoded triple %v not in graph", tr)
		}
	}
	// Per-id indexes agree with the term-space indexes.
	s := NewIRI("http://ex/s3")
	id, ok := dict.Lookup(s)
	if !ok {
		t.Fatal("subject missing from dictionary")
	}
	if got, want := len(v.WithSubject(id)), len(g.WithSubject(s)); got != want {
		t.Fatalf("encoded WithSubject = %d triples, want %d", got, want)
	}
}

func TestEncodedViewExtendsAfterAdd(t *testing.T) {
	g := allocGraph(10)
	v1 := g.Encoded()
	n := v1.Len()
	if !g.Add(Triple{S: NewIRI("http://ex/new"), P: NewIRI("http://ex/name"), O: NewLiteral("x")}) {
		t.Fatal("Add reported duplicate")
	}
	v2 := g.Encoded()
	if v2.Len() != n+1 {
		t.Fatalf("encoded view not extended: len = %d, want %d", v2.Len(), n+1)
	}
}

func TestGraphStatsCachedAndInvalidated(t *testing.T) {
	g := allocGraph(25)
	st := g.Stats()
	want := ComputeStats(g.Triples())
	if st.Triples != want.Triples ||
		st.DistinctSubjects != want.DistinctSubjects ||
		st.DistinctPredicates != want.DistinctPredicates ||
		st.DistinctObjects != want.DistinctObjects {
		t.Fatalf("Stats() = %+v, ComputeStats = %+v", st, want)
	}
	for p, c := range want.PredicateCounts {
		if st.PredicateCounts[p] != c {
			t.Fatalf("predicate %q count = %d, want %d", p, st.PredicateCounts[p], c)
		}
	}
	if n := testing.AllocsPerRun(100, func() { _ = g.Stats() }); n != 0 {
		t.Fatalf("cached Stats allocates %.1f times per call, want 0", n)
	}
	g.Add(Triple{S: NewIRI("http://ex/z"), P: NewIRI("http://ex/zp"), O: NewLiteral("z")})
	if got := g.Stats(); got.Triples != st.Triples+1 || got.PredicateCounts["http://ex/zp"] != 1 {
		t.Fatalf("Stats not invalidated after Add: %+v", got)
	}
}
