package rdf

import (
	"sort"
	"sync"
)

// Graph is an in-memory triple store with the positional indexes the
// reference evaluator needs (SPO iteration plus by-predicate,
// by-subject, and by-object lookup). Engines do not use it — they
// manage their own distributed layouts — but tests verify every engine
// against it.
//
// The indexes store per-key triple slices, so WithSubject /
// WithPredicate / WithObject return views without copying. Callers
// must treat the returned slices as read-only.
//
// Concurrency contract: a Graph is single-writer, many-reader. Add is
// not safe concurrently with anything; once loading is done, every
// read path — the term-space indexes, Encoded, Stats, and the views
// they return — is safe for unlimited concurrent readers. The two
// lazily built caches (the encoded view and the statistics) do their
// first-use fill under encMu, so N goroutines racing into a cold
// Encoded or Stats is safe; this is the contract the query service
// (internal/server) and concurrent (*sparql.Prepared).Run depend on,
// and TestGraphConcurrentLazyInit pins it under the race detector.
type Graph struct {
	triples []Triple
	byP     map[string][]Triple
	byS     map[Term][]Triple
	byO     map[Term][]Triple
	set     map[Triple]bool

	// Encoded side (HAQWA-style integer ids, built lazily and extended
	// incrementally): the slot-compiled evaluator works entirely in id
	// space and only decodes final solutions.
	encMu sync.Mutex
	view  *EncodedView
	encN  int // triples already encoded into view

	stats *Stats // cached ComputeStats result; nil after mutation
}

// NewGraph builds a graph, deduplicating triples (RDF graphs are sets).
func NewGraph(triples []Triple) *Graph {
	g := &Graph{
		byP: make(map[string][]Triple),
		byS: make(map[Term][]Triple),
		byO: make(map[Term][]Triple),
		set: make(map[Triple]bool, len(triples)),
	}
	for _, t := range triples {
		g.Add(t)
	}
	return g
}

// NewGraphWithDictionary builds a graph whose encoded view encodes
// through dict instead of a private dictionary. Shards of one dataset
// are built this way around a shared dictionary, which makes their
// TermIDs globally consistent: an id-space row produced on one shard
// can be merged, joined, and deduplicated against rows from any other
// shard without decoding. The usual concurrency contract applies, and
// additionally the shared dictionary must not be mutated by other
// writers while this graph's lazy Encoded fill runs.
func NewGraphWithDictionary(triples []Triple, dict *Dictionary) *Graph {
	g := NewGraph(triples)
	g.view = newEncodedViewSharing(dict)
	return g
}

// Add inserts a triple if not already present; it reports whether the
// triple was new.
func (g *Graph) Add(t Triple) bool {
	if g.set[t] {
		return false
	}
	g.triples = append(g.triples, t)
	g.set[t] = true
	g.byP[t.P.Value] = append(g.byP[t.P.Value], t)
	g.byS[t.S] = append(g.byS[t.S], t)
	g.byO[t.O] = append(g.byO[t.O], t)
	g.stats = nil
	return true
}

// Has reports membership.
func (g *Graph) Has(t Triple) bool { return g.set[t] }

// Len returns the number of distinct triples.
func (g *Graph) Len() int { return len(g.triples) }

// Triples returns all triples (callers must not modify the slice).
func (g *Graph) Triples() []Triple { return g.triples }

// WithPredicate returns the triples with the given predicate IRI. The
// returned slice is a view into the index: no copy is made and callers
// must not modify it.
func (g *Graph) WithPredicate(p string) []Triple { return g.byP[p] }

// WithSubject returns the triples with the given subject, as a
// read-only view (no copy).
func (g *Graph) WithSubject(s Term) []Triple { return g.byS[s] }

// WithObject returns the triples with the given object, as a
// read-only view (no copy).
func (g *Graph) WithObject(o Term) []Triple { return g.byO[o] }

// Predicates returns the distinct predicate IRIs, sorted.
func (g *Graph) Predicates() []string {
	out := make([]string, 0, len(g.byP))
	for p := range g.byP {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Subjects returns the distinct subject terms (unsorted).
func (g *Graph) Subjects() []Term {
	out := make([]Term, 0, len(g.byS))
	for s := range g.byS {
		out = append(out, s)
	}
	return out
}

// Encoded returns the dictionary-encoded view of the graph, building
// it on first use and extending it incrementally after Adds. Safe for
// concurrent readers as long as no Add runs concurrently (the same
// contract as the term-space indexes).
func (g *Graph) Encoded() *EncodedView {
	g.encMu.Lock()
	defer g.encMu.Unlock()
	if g.view == nil {
		g.view = newEncodedView()
	}
	if g.encN < len(g.triples) {
		g.view.extend(g.triples[g.encN:])
		g.encN = len(g.triples)
	}
	return g.view
}

// Stats returns the SPARQLGX-style dataset statistics for the graph,
// computed from the indexes and cached until the next Add. Like
// Encoded, the lazy fill is locked so concurrent readers (parallel
// Evaluate calls on a shared graph) are safe. The PredicateCounts map
// is the cache itself, shared across calls like every other view this
// type returns: callers must treat it as read-only (use ComputeStats
// for an independent copy).
func (g *Graph) Stats() Stats {
	g.encMu.Lock()
	defer g.encMu.Unlock()
	if g.stats != nil {
		return *g.stats
	}
	pred := make(map[string]int, len(g.byP))
	for p, ts := range g.byP {
		pred[p] = len(ts)
	}
	s := Stats{
		Triples:            len(g.triples),
		DistinctSubjects:   len(g.byS),
		DistinctPredicates: len(g.byP),
		DistinctObjects:    len(g.byO),
		PredicateCounts:    pred,
	}
	g.stats = &s
	return s
}

// Stats summarizes a dataset: the statistics SPARQLGX [13] collects to
// reorder joins (counts of distinct subjects, predicates, objects, and
// per-predicate triple counts).
type Stats struct {
	Triples            int
	DistinctSubjects   int
	DistinctPredicates int
	DistinctObjects    int
	PredicateCounts    map[string]int
}

// ComputeStats scans the dataset once and builds Stats.
func ComputeStats(triples []Triple) Stats {
	subj := make(map[Term]bool)
	pred := make(map[string]int)
	obj := make(map[Term]bool)
	for _, t := range triples {
		subj[t.S] = true
		pred[t.P.Value]++
		obj[t.O] = true
	}
	return Stats{
		Triples:            len(triples),
		DistinctSubjects:   len(subj),
		DistinctPredicates: len(pred),
		DistinctObjects:    len(obj),
		PredicateCounts:    pred,
	}
}

// Dedupe returns the distinct triples of ts in first-occurrence order.
// RDF graphs are sets; engines call this when loading raw streams that
// may repeat statements.
func Dedupe(ts []Triple) []Triple {
	seen := make(map[Triple]bool, len(ts))
	out := make([]Triple, 0, len(ts))
	for _, t := range ts {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
