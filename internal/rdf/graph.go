package rdf

import "sort"

// Graph is an in-memory triple store with the positional indexes the
// reference evaluator needs (SPO iteration plus by-predicate and
// by-subject lookup). Engines do not use it — they manage their own
// distributed layouts — but tests verify every engine against it.
type Graph struct {
	triples []Triple
	byP     map[string][]int
	byS     map[Term][]int
	byO     map[Term][]int
	set     map[Triple]bool
}

// NewGraph builds a graph, deduplicating triples (RDF graphs are sets).
func NewGraph(triples []Triple) *Graph {
	g := &Graph{
		byP: make(map[string][]int),
		byS: make(map[Term][]int),
		byO: make(map[Term][]int),
		set: make(map[Triple]bool),
	}
	for _, t := range triples {
		g.Add(t)
	}
	return g
}

// Add inserts a triple if not already present; it reports whether the
// triple was new.
func (g *Graph) Add(t Triple) bool {
	if g.set[t] {
		return false
	}
	i := len(g.triples)
	g.triples = append(g.triples, t)
	g.set[t] = true
	g.byP[t.P.Value] = append(g.byP[t.P.Value], i)
	g.byS[t.S] = append(g.byS[t.S], i)
	g.byO[t.O] = append(g.byO[t.O], i)
	return true
}

// Has reports membership.
func (g *Graph) Has(t Triple) bool { return g.set[t] }

// Len returns the number of distinct triples.
func (g *Graph) Len() int { return len(g.triples) }

// Triples returns all triples (callers must not modify the slice).
func (g *Graph) Triples() []Triple { return g.triples }

// WithPredicate returns the triples with the given predicate IRI.
func (g *Graph) WithPredicate(p string) []Triple {
	idx := g.byP[p]
	out := make([]Triple, len(idx))
	for i, j := range idx {
		out[i] = g.triples[j]
	}
	return out
}

// WithSubject returns the triples with the given subject.
func (g *Graph) WithSubject(s Term) []Triple {
	idx := g.byS[s]
	out := make([]Triple, len(idx))
	for i, j := range idx {
		out[i] = g.triples[j]
	}
	return out
}

// WithObject returns the triples with the given object.
func (g *Graph) WithObject(o Term) []Triple {
	idx := g.byO[o]
	out := make([]Triple, len(idx))
	for i, j := range idx {
		out[i] = g.triples[j]
	}
	return out
}

// Predicates returns the distinct predicate IRIs, sorted.
func (g *Graph) Predicates() []string {
	out := make([]string, 0, len(g.byP))
	for p := range g.byP {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Subjects returns the distinct subject terms (unsorted).
func (g *Graph) Subjects() []Term {
	out := make([]Term, 0, len(g.byS))
	for s := range g.byS {
		out = append(out, s)
	}
	return out
}

// Stats summarizes a dataset: the statistics SPARQLGX [13] collects to
// reorder joins (counts of distinct subjects, predicates, objects, and
// per-predicate triple counts).
type Stats struct {
	Triples            int
	DistinctSubjects   int
	DistinctPredicates int
	DistinctObjects    int
	PredicateCounts    map[string]int
}

// ComputeStats scans the dataset once and builds Stats.
func ComputeStats(triples []Triple) Stats {
	subj := make(map[Term]bool)
	pred := make(map[string]int)
	obj := make(map[Term]bool)
	for _, t := range triples {
		subj[t.S] = true
		pred[t.P.Value]++
		obj[t.O] = true
	}
	return Stats{
		Triples:            len(triples),
		DistinctSubjects:   len(subj),
		DistinctPredicates: len(pred),
		DistinctObjects:    len(obj),
		PredicateCounts:    pred,
	}
}

// Dedupe returns the distinct triples of ts in first-occurrence order.
// RDF graphs are sets; engines call this when loading raw streams that
// may repeat statements.
func Dedupe(ts []Triple) []Triple {
	seen := make(map[Triple]bool, len(ts))
	out := make([]Triple, 0, len(ts))
	for _, t := range ts {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
