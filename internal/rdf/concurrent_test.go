package rdf

import (
	"fmt"
	"sync"
	"testing"
)

// Many goroutines hitting a cold graph's lazy caches at once must be
// safe (run with -race) and must all see the same encoded view and the
// same statistics — the single-writer/many-reader contract the query
// service builds on.
func TestGraphConcurrentLazyInit(t *testing.T) {
	var ts []Triple
	for i := 0; i < 200; i++ {
		ts = append(ts, Triple{
			S: NewIRI(fmt.Sprintf("http://ex/s%d", i%50)),
			P: NewIRI(fmt.Sprintf("http://ex/p%d", i%7)),
			O: NewLiteral(fmt.Sprintf("o%d", i)),
		})
	}
	g := NewGraph(ts)

	const goroutines = 16
	views := make([]*EncodedView, goroutines)
	stats := make([]Stats, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			views[i] = g.Encoded()
			stats[i] = g.Stats()
			// Exercise the read paths that share the lazily built
			// structures: index lookups, dictionary decoding.
			for _, e := range views[i].WithPredicate(views[i].Dict().Encode(NewIRI("http://ex/p0"))) {
				if _, err := views[i].Dict().Decode(e.O); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	for i := 1; i < goroutines; i++ {
		if views[i] != views[0] {
			t.Fatal("goroutines saw different encoded views")
		}
		if stats[i].Triples != stats[0].Triples || stats[i].DistinctPredicates != stats[0].DistinctPredicates {
			t.Fatalf("goroutine %d saw different stats: %+v vs %+v", i, stats[i], stats[0])
		}
	}
	if views[0].Len() != g.Len() {
		t.Fatalf("encoded view holds %d triples, graph %d", views[0].Len(), g.Len())
	}
	if stats[0].Triples != g.Len() {
		t.Fatalf("stats count %d, graph %d", stats[0].Triples, g.Len())
	}
}
