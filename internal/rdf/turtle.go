package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode"
)

// ParseTurtle reads a Turtle document covering the subset real-world
// RDF dumps use: @prefix/@base directives (and their SPARQL-style
// PREFIX/BASE forms), prefixed names, the 'a' keyword, predicate lists
// with ';', object lists with ',', quoted literals with language tags,
// datatypes and \-escapes, integer/decimal/boolean shorthand, and
// blank nodes (_:label). Collections and blank-node property lists are
// not supported.
func ParseTurtle(r io.Reader) ([]Triple, error) {
	br := bufio.NewReader(r)
	raw, err := io.ReadAll(br)
	if err != nil {
		return nil, err
	}
	p := &turtleParser{src: string(raw), prefixes: map[string]string{}}
	return p.parse()
}

type turtleParser struct {
	src      string
	pos      int
	line     int
	prefixes map[string]string
	base     string
}

func (p *turtleParser) errf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d: %s", p.line+1, fmt.Sprintf(format, args...))
}

func (p *turtleParser) parse() ([]Triple, error) {
	var out []Triple
	for {
		p.skipWS()
		if p.eof() {
			return out, nil
		}
		if p.acceptDirective() {
			if err := p.parseDirective(); err != nil {
				return nil, err
			}
			continue
		}
		triples, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, triples...)
	}
}

func (p *turtleParser) eof() bool { return p.pos >= len(p.src) }

func (p *turtleParser) skipWS() {
	for !p.eof() {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '#':
			for !p.eof() && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

// acceptDirective peeks for @prefix/@base/PREFIX/BASE.
func (p *turtleParser) acceptDirective() bool {
	rest := p.src[p.pos:]
	for _, d := range []string{"@prefix", "@base", "PREFIX", "BASE", "prefix", "base"} {
		if strings.HasPrefix(rest, d) {
			return true
		}
	}
	return false
}

func (p *turtleParser) parseDirective() error {
	atForm := p.src[p.pos] == '@'
	word := p.readWord()
	word = strings.TrimPrefix(strings.ToLower(word), "@")
	switch word {
	case "prefix":
		p.skipWS()
		name := p.readWord()
		if !strings.HasSuffix(name, ":") {
			return p.errf("prefix name %q must end with ':'", name)
		}
		p.skipWS()
		iri, err := p.parseIRIRef()
		if err != nil {
			return err
		}
		p.prefixes[strings.TrimSuffix(name, ":")] = iri
	case "base":
		p.skipWS()
		iri, err := p.parseIRIRef()
		if err != nil {
			return err
		}
		p.base = iri
	default:
		return p.errf("unknown directive %q", word)
	}
	p.skipWS()
	if atForm {
		if p.eof() || p.src[p.pos] != '.' {
			return p.errf("@-directive must end with '.'")
		}
		p.pos++
	} else if !p.eof() && p.src[p.pos] == '.' {
		p.pos++ // tolerate the dot on SPARQL-form directives too
	}
	return nil
}

func (p *turtleParser) readWord() string {
	start := p.pos
	for !p.eof() {
		c := rune(p.src[p.pos])
		if unicode.IsSpace(c) || c == '<' {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

// parseStatement parses subject predicateObjectList '.'.
func (p *turtleParser) parseStatement() ([]Triple, error) {
	subject, err := p.parseTerm(false)
	if err != nil {
		return nil, err
	}
	var out []Triple
	for {
		p.skipWS()
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		for {
			p.skipWS()
			obj, err := p.parseTerm(true)
			if err != nil {
				return nil, err
			}
			t := Triple{S: subject, P: pred, O: obj}
			if err := t.Validate(); err != nil {
				return nil, p.errf("%v", err)
			}
			out = append(out, t)
			p.skipWS()
			if !p.eof() && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
		p.skipWS()
		if p.eof() {
			return nil, p.errf("unexpected end of input in statement")
		}
		switch p.src[p.pos] {
		case ';':
			p.pos++
			p.skipWS()
			// A trailing ';' before '.' is legal Turtle.
			if !p.eof() && p.src[p.pos] == '.' {
				p.pos++
				return out, nil
			}
			continue
		case '.':
			p.pos++
			return out, nil
		default:
			return nil, p.errf("expected ';' or '.', got %q", p.src[p.pos])
		}
	}
}

func (p *turtleParser) parsePredicate() (Term, error) {
	if !p.eof() && p.src[p.pos] == 'a' {
		// 'a' keyword only when followed by whitespace.
		if p.pos+1 < len(p.src) && unicode.IsSpace(rune(p.src[p.pos+1])) {
			p.pos++
			return NewIRI(RDFType), nil
		}
	}
	return p.parseTerm(false)
}

// parseTerm parses an IRI, prefixed name, blank node, or (when
// allowLiteral) a literal.
func (p *turtleParser) parseTerm(allowLiteral bool) (Term, error) {
	p.skipWS()
	if p.eof() {
		return Term{}, p.errf("unexpected end of input")
	}
	switch c := p.src[p.pos]; {
	case c == '<':
		iri, err := p.parseIRIRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	case c == '_':
		if p.pos+1 >= len(p.src) || p.src[p.pos+1] != ':' {
			return Term{}, p.errf("bad blank node")
		}
		p.pos += 2
		start := p.pos
		for !p.eof() && isPNChar(rune(p.src[p.pos])) {
			p.pos++
		}
		if p.pos == start {
			return Term{}, p.errf("empty blank node label")
		}
		return NewBlank(p.src[start:p.pos]), nil
	case c == '"':
		if !allowLiteral {
			return Term{}, p.errf("literal not allowed here")
		}
		return p.parseLiteral()
	case c == '+' || c == '-' || (c >= '0' && c <= '9'):
		if !allowLiteral {
			return Term{}, p.errf("number not allowed here")
		}
		return p.parseNumber()
	default:
		// Prefixed name or boolean.
		word := p.readName()
		if word == "true" || word == "false" {
			if !allowLiteral {
				return Term{}, p.errf("boolean not allowed here")
			}
			return NewTypedLiteral(word, "http://www.w3.org/2001/XMLSchema#boolean"), nil
		}
		pfx, local, ok := strings.Cut(word, ":")
		if !ok {
			return Term{}, p.errf("expected term, got %q", word)
		}
		basePart, known := p.prefixes[pfx]
		if !known {
			return Term{}, p.errf("unknown prefix %q", pfx)
		}
		return NewIRI(basePart + local), nil
	}
}

func isPNChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.'
}

func (p *turtleParser) readName() string {
	start := p.pos
	for !p.eof() {
		c := rune(p.src[p.pos])
		if unicode.IsSpace(c) || strings.ContainsRune(";,.<>\"'", c) {
			// A '.' might be part of the name (foo.bar) or the statement
			// terminator; treat '.' followed by whitespace/EOF as the
			// terminator.
			if c == '.' && p.pos+1 < len(p.src) && isPNChar(rune(p.src[p.pos+1])) {
				p.pos++
				continue
			}
			break
		}
		if c == ':' || isPNChar(c) {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *turtleParser) parseIRIRef() (string, error) {
	if p.eof() || p.src[p.pos] != '<' {
		return "", p.errf("expected '<'")
	}
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return "", p.errf("unterminated IRI")
	}
	iri := p.src[p.pos+1 : p.pos+end]
	p.pos += end + 1
	if p.base != "" && !strings.Contains(iri, "://") && !strings.HasPrefix(iri, "urn:") {
		iri = p.base + iri
	}
	return iri, nil
}

func (p *turtleParser) parseLiteral() (Term, error) {
	val, rest, err := unescapeQuoted(p.src[p.pos:])
	if err != nil {
		return Term{}, p.errf("%v", err)
	}
	p.pos = len(p.src) - len(rest)
	if !p.eof() && p.src[p.pos] == '@' {
		p.pos++
		start := p.pos
		for !p.eof() && (unicode.IsLetter(rune(p.src[p.pos])) || p.src[p.pos] == '-') {
			p.pos++
		}
		return NewLangLiteral(val, p.src[start:p.pos]), nil
	}
	if strings.HasPrefix(p.src[p.pos:], "^^") {
		p.pos += 2
		dt, err := p.parseTerm(false)
		if err != nil {
			return Term{}, err
		}
		if !dt.IsIRI() {
			return Term{}, p.errf("datatype must be an IRI")
		}
		return NewTypedLiteral(val, dt.Value), nil
	}
	return NewLiteral(val), nil
}

func (p *turtleParser) parseNumber() (Term, error) {
	start := p.pos
	if p.src[p.pos] == '+' || p.src[p.pos] == '-' {
		p.pos++
	}
	sawDot := false
	for !p.eof() {
		c := p.src[p.pos]
		if c >= '0' && c <= '9' {
			p.pos++
			continue
		}
		if c == '.' && !sawDot && p.pos+1 < len(p.src) && p.src[p.pos+1] >= '0' && p.src[p.pos+1] <= '9' {
			sawDot = true
			p.pos++
			continue
		}
		break
	}
	text := p.src[start:p.pos]
	if text == "" || text == "+" || text == "-" {
		return Term{}, p.errf("bad number")
	}
	if sawDot {
		return NewTypedLiteral(text, "http://www.w3.org/2001/XMLSchema#decimal"), nil
	}
	return NewTypedLiteral(text, XSDInteger), nil
}
