// Package rdf implements the Resource Description Framework data model
// used throughout the reproduction: terms (IRIs, literals, blank
// nodes), triples, an N-Triples reader/writer, dictionary encoding of
// terms to dense integer ids (the optimization HAQWA [7] applies), and
// RDFS inference (the survey's Sec. II background).
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three disjoint sets of RDF resources:
// URIs (U), literals (L) and blank nodes (B).
type TermKind uint8

// Term kinds.
const (
	IRI TermKind = iota
	Literal
	Blank
)

func (k TermKind) String() string {
	switch k {
	case IRI:
		return "iri"
	case Literal:
		return "literal"
	default:
		return "blank"
	}
}

// Term is one RDF resource. Terms are small values and compare with ==.
// For literals, Value holds the lexical form and Datatype the (optional)
// datatype IRI; Lang holds an optional language tag.
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string
	Lang     string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(value string) Term { return Term{Kind: Literal, Value: value} }

// NewTypedLiteral returns a literal with a datatype IRI.
func NewTypedLiteral(value, datatype string) Term {
	return Term{Kind: Literal, Value: value, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(value, lang string) Term {
	return Term{Kind: Literal, Value: value, Lang: lang}
}

// NewBlank returns a blank node with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	default:
		s := `"` + escapeLiteral(t.Value) + `"`
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	}
}

func escapeLiteral(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`, "\r", `\r`, "\t", `\t`)
	return r.Replace(s)
}

// Well-known vocabulary IRIs.
const (
	RDFType           = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	RDFSSubClassOf    = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
	RDFSSubPropertyOf = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf"
	RDFSDomain        = "http://www.w3.org/2000/01/rdf-schema#domain"
	RDFSRange         = "http://www.w3.org/2000/01/rdf-schema#range"
	XSDInteger        = "http://www.w3.org/2001/XMLSchema#integer"
	XSDString         = "http://www.w3.org/2001/XMLSchema#string"
)

// Triple is one RDF statement: (subject predicate object) from
// (U ∪ B) × U × (U ∪ L ∪ B).
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// Validate checks the positional constraints of the RDF data model.
func (t Triple) Validate() error {
	if t.S.IsLiteral() {
		return fmt.Errorf("rdf: subject cannot be a literal: %s", t.S)
	}
	if !t.P.IsIRI() {
		return fmt.Errorf("rdf: predicate must be an IRI: %s", t.P)
	}
	return nil
}

// String renders the triple as one N-Triples line (without newline).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// IsTypeTriple reports whether the predicate is rdf:type, the property
// SparkRDF's class index and Spar(k)ql's node model treat specially.
func (t Triple) IsTypeTriple() bool { return t.P.Value == RDFType }
