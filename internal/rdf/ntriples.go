package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseNTriples reads an N-Triples document: one triple per line,
// "#"-comments and blank lines ignored. It implements the subset used
// by the benchmark generators (full IRI/literal/blank syntax with
// \-escapes, language tags, and datatypes).
func ParseNTriples(r io.Reader) ([]Triple, error) {
	var out []Triple
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseTripleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseTripleLine parses a single N-Triples statement, with or without
// the trailing dot.
func ParseTripleLine(line string) (Triple, error) {
	p := &ntParser{s: line}
	s, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	pr, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	p.skipSpace()
	if p.i < len(p.s) && p.s[p.i] == '.' {
		p.i++
	}
	p.skipSpace()
	if p.i < len(p.s) {
		return Triple{}, fmt.Errorf("trailing input %q", p.s[p.i:])
	}
	t := Triple{S: s, P: pr, O: o}
	if err := t.Validate(); err != nil {
		return Triple{}, err
	}
	return t, nil
}

type ntParser struct {
	s string
	i int
}

func (p *ntParser) skipSpace() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *ntParser) term() (Term, error) {
	p.skipSpace()
	if p.i >= len(p.s) {
		return Term{}, fmt.Errorf("unexpected end of line")
	}
	switch p.s[p.i] {
	case '<':
		end := strings.IndexByte(p.s[p.i:], '>')
		if end < 0 {
			return Term{}, fmt.Errorf("unterminated IRI")
		}
		iri := p.s[p.i+1 : p.i+end]
		p.i += end + 1
		return NewIRI(iri), nil
	case '_':
		if p.i+1 >= len(p.s) || p.s[p.i+1] != ':' {
			return Term{}, fmt.Errorf("bad blank node")
		}
		j := p.i + 2
		for j < len(p.s) && p.s[j] != ' ' && p.s[j] != '\t' {
			j++
		}
		label := p.s[p.i+2 : j]
		if label == "" {
			return Term{}, fmt.Errorf("empty blank node label")
		}
		p.i = j
		return NewBlank(label), nil
	case '"':
		val, rest, err := unescapeQuoted(p.s[p.i:])
		if err != nil {
			return Term{}, err
		}
		p.i = len(p.s) - len(rest)
		// Optional language tag or datatype.
		if p.i < len(p.s) && p.s[p.i] == '@' {
			j := p.i + 1
			for j < len(p.s) && p.s[j] != ' ' && p.s[j] != '\t' {
				j++
			}
			lang := p.s[p.i+1 : j]
			p.i = j
			return NewLangLiteral(val, lang), nil
		}
		if strings.HasPrefix(p.s[p.i:], "^^<") {
			end := strings.IndexByte(p.s[p.i+3:], '>')
			if end < 0 {
				return Term{}, fmt.Errorf("unterminated datatype IRI")
			}
			dt := p.s[p.i+3 : p.i+3+end]
			p.i += 3 + end + 1
			return NewTypedLiteral(val, dt), nil
		}
		return NewLiteral(val), nil
	default:
		return Term{}, fmt.Errorf("unexpected character %q", p.s[p.i])
	}
}

// unescapeQuoted consumes a double-quoted string with \-escapes and
// returns the value and the remaining input.
func unescapeQuoted(s string) (string, string, error) {
	if len(s) == 0 || s[0] != '"' {
		return "", "", fmt.Errorf("expected quote")
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		if c == '"' {
			return b.String(), s[i+1:], nil
		}
		if c == '\\' {
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i+1])
			}
			i += 2
			continue
		}
		b.WriteByte(c)
		i++
	}
	return "", "", fmt.Errorf("unterminated string")
}

// WriteNTriples serializes triples in N-Triples syntax, one per line.
func WriteNTriples(w io.Writer, triples []Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range triples {
		if _, err := bw.WriteString(t.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
