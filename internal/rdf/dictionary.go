package rdf

import (
	"fmt"
	"sync"
)

// TermID is a dense integer identifier for a term. HAQWA [7] encodes
// string values to integers to shrink data volume and speed processing;
// the dictionary is shared by every engine that wants encoded triples.
type TermID uint32

// EncodedTriple is a triple in id space.
type EncodedTriple struct {
	S, P, O TermID
}

// Dictionary maps terms to dense ids and back. It is safe for
// concurrent encoding (engines load partitions in parallel).
type Dictionary struct {
	mu    sync.RWMutex
	ids   map[Term]TermID
	terms []Term
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[Term]TermID)}
}

// Encode returns the id for t, assigning the next dense id on first
// sight.
func (d *Dictionary) Encode(t Term) TermID {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[t]; ok {
		return id
	}
	id = TermID(len(d.terms))
	d.ids[t] = id
	d.terms = append(d.terms, t)
	return id
}

// Lookup returns the id of t without assigning one.
func (d *Dictionary) Lookup(t Term) (TermID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[t]
	return id, ok
}

// Decode returns the term for id.
func (d *Dictionary) Decode(id TermID) (Term, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.terms) {
		return Term{}, fmt.Errorf("rdf: unknown term id %d", id)
	}
	return d.terms[id], nil
}

// MustDecode is Decode for ids known to be valid; it panics otherwise
// (programmer error, not data error).
func (d *Dictionary) MustDecode(id TermID) Term {
	t, err := d.Decode(id)
	if err != nil {
		panic(err)
	}
	return t
}

// Terms returns a read-only snapshot of the id→term table: index i
// holds the term for TermID(i). Hot decode loops index this slice
// directly instead of taking the lock per Decode call; ids assigned
// after the snapshot are not visible in it.
func (d *Dictionary) Terms() []Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms[:len(d.terms):len(d.terms)]
}

// Len returns the number of distinct terms seen.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// EncodeTriple encodes all three positions.
func (d *Dictionary) EncodeTriple(t Triple) EncodedTriple {
	return EncodedTriple{S: d.Encode(t.S), P: d.Encode(t.P), O: d.Encode(t.O)}
}

// DecodeTriple reverses EncodeTriple.
func (d *Dictionary) DecodeTriple(e EncodedTriple) (Triple, error) {
	s, err := d.Decode(e.S)
	if err != nil {
		return Triple{}, err
	}
	p, err := d.Decode(e.P)
	if err != nil {
		return Triple{}, err
	}
	o, err := d.Decode(e.O)
	if err != nil {
		return Triple{}, err
	}
	return Triple{S: s, P: p, O: o}, nil
}

// EncodeAll encodes a dataset.
func (d *Dictionary) EncodeAll(ts []Triple) []EncodedTriple {
	out := make([]EncodedTriple, len(ts))
	for i, t := range ts {
		out[i] = d.EncodeTriple(t)
	}
	return out
}
