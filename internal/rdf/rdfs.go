package rdf

// RDFS inference: the vocabulary-description entailment rules the
// survey's background section introduces ("RDF Schema ... includes a
// set of inference rules used to generate new, implicit triples from
// explicit ones"). Materialize implements the core rule set:
//
//	rdfs2  (p domain c), (s p o)        => (s type c)
//	rdfs3  (p range c),  (s p o), o∈U∪B => (o type c)
//	rdfs5  (p subPropertyOf q), (q subPropertyOf r) => (p subPropertyOf r)
//	rdfs7  (p subPropertyOf q), (s p o) => (s q o)
//	rdfs9  (c subClassOf d), (s type c) => (s type d)
//	rdfs11 (c subClassOf d), (d subClassOf e) => (c subClassOf e)
//
// Materialization runs to fixpoint, so chained schemas close fully.

// Materialize returns the input plus all triples entailed by the RDFS
// rules above, deduplicated. The input slice is not modified.
func Materialize(triples []Triple) []Triple {
	g := NewGraph(triples)
	typeIRI := NewIRI(RDFType)
	subClass := NewIRI(RDFSSubClassOf)
	subProp := NewIRI(RDFSSubPropertyOf)

	changed := true
	for changed {
		changed = false

		// Schema closure first (rdfs5, rdfs11) so instance rules see the
		// transitive schema.
		for _, rule := range []Term{subClass, subProp} {
			links := g.WithPredicate(rule.Value)
			for _, a := range links {
				for _, b := range g.WithSubject(a.O) {
					if b.P.Value == rule.Value {
						if g.Add(Triple{S: a.S, P: rule, O: b.O}) {
							changed = true
						}
					}
				}
			}
		}

		// rdfs7: subproperty entailment.
		for _, sp := range g.WithPredicate(RDFSSubPropertyOf) {
			if !sp.S.IsIRI() || !sp.O.IsIRI() {
				continue
			}
			for _, t := range g.WithPredicate(sp.S.Value) {
				if g.Add(Triple{S: t.S, P: NewIRI(sp.O.Value), O: t.O}) {
					changed = true
				}
			}
		}

		// rdfs2: domain typing.
		for _, dom := range g.WithPredicate(RDFSDomain) {
			if !dom.S.IsIRI() {
				continue
			}
			for _, t := range g.WithPredicate(dom.S.Value) {
				if g.Add(Triple{S: t.S, P: typeIRI, O: dom.O}) {
					changed = true
				}
			}
		}

		// rdfs3: range typing (object must be a resource).
		for _, rng := range g.WithPredicate(RDFSRange) {
			if !rng.S.IsIRI() {
				continue
			}
			for _, t := range g.WithPredicate(rng.S.Value) {
				if t.O.IsLiteral() {
					continue
				}
				if g.Add(Triple{S: t.O, P: typeIRI, O: rng.O}) {
					changed = true
				}
			}
		}

		// rdfs9: subclass typing.
		for _, sc := range g.WithPredicate(RDFSSubClassOf) {
			for _, t := range g.WithObject(sc.S) {
				if t.P.Value != RDFType {
					continue
				}
				if g.Add(Triple{S: t.S, P: typeIRI, O: sc.O}) {
					changed = true
				}
			}
		}
	}
	out := make([]Triple, g.Len())
	copy(out, g.Triples())
	return out
}
