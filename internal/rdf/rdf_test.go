package rdf

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func iri(s string) Term { return NewIRI("http://ex.org/" + s) }

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://a/b"), "<http://a/b>"},
		{NewBlank("b1"), "_:b1"},
		{NewLiteral("hi"), `"hi"`},
		{NewLangLiteral("hi", "en"), `"hi"@en`},
		{NewTypedLiteral("5", XSDInteger), `"5"^^<` + XSDInteger + `>`},
		{NewLiteral("a\"b\\c\nd"), `"a\"b\\c\nd"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%v) = %s, want %s", c.term, got, c.want)
		}
	}
}

func TestTripleValidate(t *testing.T) {
	good := NewTriple(iri("s"), iri("p"), NewLiteral("o"))
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := NewTriple(NewLiteral("x"), iri("p"), iri("o")).Validate(); err == nil {
		t.Fatal("literal subject must be rejected")
	}
	if err := NewTriple(iri("s"), NewBlank("b"), iri("o")).Validate(); err == nil {
		t.Fatal("blank predicate must be rejected")
	}
}

func TestParseNTriplesBasic(t *testing.T) {
	doc := `
# a comment
<http://ex.org/s> <http://ex.org/p> <http://ex.org/o> .
<http://ex.org/s> <http://ex.org/name> "Alice" .
_:b1 <http://ex.org/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex.org/s> <http://ex.org/label> "bonjour"@fr .
`
	ts, err := ParseNTriples(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 4 {
		t.Fatalf("parsed %d triples", len(ts))
	}
	if ts[0].O != iri("o") {
		t.Fatalf("triple 0 = %v", ts[0])
	}
	if ts[1].O != NewLiteral("Alice") {
		t.Fatalf("triple 1 = %v", ts[1])
	}
	if ts[2].S != NewBlank("b1") || ts[2].O.Datatype != XSDInteger {
		t.Fatalf("triple 2 = %v", ts[2])
	}
	if ts[3].O.Lang != "fr" {
		t.Fatalf("triple 3 = %v", ts[3])
	}
}

func TestParseNTriplesEscapes(t *testing.T) {
	line := `<http://e/s> <http://e/p> "a\"b\\c\nd\te" .`
	tr, err := ParseTripleLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if tr.O.Value != "a\"b\\c\nd\te" {
		t.Fatalf("value = %q", tr.O.Value)
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	for _, bad := range []string{
		`<http://e/s <http://e/p> <http://e/o> .`,
		`<http://e/s> "lit" <http://e/o> .`,
		`"lit" <http://e/p> <http://e/o> .`,
		`<http://e/s> <http://e/p> "unterminated .`,
		`<http://e/s> <http://e/p> <http://e/o> . extra`,
		`_: <http://e/p> <http://e/o> .`,
		`<http://e/s> <http://e/p> "bad\q" .`,
		`<http://e/s> <http://e/p> "x"^^<dangling .`,
	} {
		if _, err := ParseTripleLine(bad); err == nil {
			t.Errorf("ParseTripleLine(%q) succeeded", bad)
		}
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	ts := []Triple{
		NewTriple(iri("s"), iri("p"), iri("o")),
		NewTriple(NewBlank("x"), iri("p"), NewLiteral("hello world")),
		NewTriple(iri("s"), iri("q"), NewLangLiteral("salut", "fr")),
		NewTriple(iri("s"), iri("r"), NewTypedLiteral("42", XSDInteger)),
		NewTriple(iri("s"), iri("r"), NewLiteral("tab\tnewline\nquote\"")),
	}
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, ts); err != nil {
		t.Fatal(err)
	}
	back, err := ParseNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, ts) {
		t.Fatalf("round trip changed data:\n%v\n%v", back, ts)
	}
}

func TestNTriplesRoundTripProperty(t *testing.T) {
	// Property: any literal value round-trips through serialization.
	f := func(value string) bool {
		// N-Triples cannot carry other control characters in this subset.
		clean := strings.Map(func(r rune) rune {
			if r < 0x20 && r != '\n' && r != '\r' && r != '\t' {
				return -1
			}
			return r
		}, value)
		tr := NewTriple(iri("s"), iri("p"), NewLiteral(clean))
		back, err := ParseTripleLine(tr.String())
		if err != nil {
			return false
		}
		return back == tr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	d := NewDictionary()
	a := d.Encode(iri("a"))
	b := d.Encode(iri("b"))
	if a == b {
		t.Fatal("distinct terms share an id")
	}
	if got := d.Encode(iri("a")); got != a {
		t.Fatal("re-encoding changed the id")
	}
	term, err := d.Decode(a)
	if err != nil || term != iri("a") {
		t.Fatalf("Decode = %v, %v", term, err)
	}
	if _, err := d.Decode(999); err == nil {
		t.Fatal("expected error for unknown id")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if _, ok := d.Lookup(iri("zzz")); ok {
		t.Fatal("Lookup invented an id")
	}
}

func TestDictionaryTripleRoundTrip(t *testing.T) {
	d := NewDictionary()
	tr := NewTriple(iri("s"), iri("p"), NewLiteral("v"))
	enc := d.EncodeTriple(tr)
	back, err := d.DecodeTriple(enc)
	if err != nil || back != tr {
		t.Fatalf("round trip = %v, %v", back, err)
	}
}

func TestDictionaryConcurrentEncode(t *testing.T) {
	d := NewDictionary()
	done := make(chan map[string]TermID, 8)
	for w := 0; w < 8; w++ {
		go func() {
			local := make(map[string]TermID)
			for i := 0; i < 100; i++ {
				name := "t" + string(rune('0'+i%10))
				local[name] = d.Encode(iri(name))
			}
			done <- local
		}()
	}
	merged := make(map[string]TermID)
	for w := 0; w < 8; w++ {
		local := <-done
		for k, v := range local {
			if prev, ok := merged[k]; ok && prev != v {
				t.Fatalf("term %s got two ids: %d and %d", k, prev, v)
			}
			merged[k] = v
		}
	}
	if d.Len() != 10 {
		t.Fatalf("Len = %d, want 10", d.Len())
	}
}

func TestDictionaryPropertyDenseIDs(t *testing.T) {
	f := func(values []string) bool {
		d := NewDictionary()
		for _, v := range values {
			id := d.Encode(NewLiteral(v))
			if int(id) >= d.Len() {
				return false
			}
		}
		// Ids must be dense: 0..Len-1 all decodable.
		for i := 0; i < d.Len(); i++ {
			if _, err := d.Decode(TermID(i)); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphIndexes(t *testing.T) {
	ts := []Triple{
		NewTriple(iri("a"), iri("knows"), iri("b")),
		NewTriple(iri("b"), iri("knows"), iri("c")),
		NewTriple(iri("a"), iri("name"), NewLiteral("Ann")),
		NewTriple(iri("a"), iri("knows"), iri("b")), // duplicate
	}
	g := NewGraph(ts)
	if g.Len() != 3 {
		t.Fatalf("Len = %d (duplicate not removed)", g.Len())
	}
	if got := len(g.WithPredicate("http://ex.org/knows")); got != 2 {
		t.Fatalf("knows = %d", got)
	}
	if got := len(g.WithSubject(iri("a"))); got != 2 {
		t.Fatalf("subject a = %d", got)
	}
	if got := len(g.WithObject(iri("b"))); got != 1 {
		t.Fatalf("object b = %d", got)
	}
	if !g.Has(ts[0]) {
		t.Fatal("Has missing triple")
	}
	if got := g.Predicates(); len(got) != 2 || got[0] > got[1] {
		t.Fatalf("Predicates = %v", got)
	}
	if got := len(g.Subjects()); got != 2 {
		t.Fatalf("Subjects = %d", got)
	}
}

func TestComputeStats(t *testing.T) {
	ts := []Triple{
		NewTriple(iri("a"), iri("p"), iri("x")),
		NewTriple(iri("a"), iri("q"), iri("y")),
		NewTriple(iri("b"), iri("p"), iri("x")),
	}
	s := ComputeStats(ts)
	if s.Triples != 3 || s.DistinctSubjects != 2 || s.DistinctPredicates != 2 || s.DistinctObjects != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.PredicateCounts["http://ex.org/p"] != 2 {
		t.Fatalf("predicate counts = %v", s.PredicateCounts)
	}
}

func TestMaterializeSubClass(t *testing.T) {
	ts := []Triple{
		NewTriple(iri("Student"), NewIRI(RDFSSubClassOf), iri("Person")),
		NewTriple(iri("Person"), NewIRI(RDFSSubClassOf), iri("Agent")),
		NewTriple(iri("ann"), NewIRI(RDFType), iri("Student")),
	}
	out := NewGraph(Materialize(ts))
	// rdfs9 through the rdfs11 closure: ann is a Person and an Agent.
	if !out.Has(NewTriple(iri("ann"), NewIRI(RDFType), iri("Person"))) {
		t.Fatal("missing ann type Person")
	}
	if !out.Has(NewTriple(iri("ann"), NewIRI(RDFType), iri("Agent"))) {
		t.Fatal("missing ann type Agent (transitive)")
	}
	if !out.Has(NewTriple(iri("Student"), NewIRI(RDFSSubClassOf), iri("Agent"))) {
		t.Fatal("missing subClassOf closure")
	}
}

func TestMaterializeSubPropertyDomainRange(t *testing.T) {
	ts := []Triple{
		NewTriple(iri("teaches"), NewIRI(RDFSSubPropertyOf), iri("worksWith")),
		NewTriple(iri("teaches"), NewIRI(RDFSDomain), iri("Teacher")),
		NewTriple(iri("teaches"), NewIRI(RDFSRange), iri("Course")),
		NewTriple(iri("bob"), iri("teaches"), iri("math101")),
	}
	out := NewGraph(Materialize(ts))
	if !out.Has(NewTriple(iri("bob"), iri("worksWith"), iri("math101"))) {
		t.Fatal("rdfs7 missing")
	}
	if !out.Has(NewTriple(iri("bob"), NewIRI(RDFType), iri("Teacher"))) {
		t.Fatal("rdfs2 missing")
	}
	if !out.Has(NewTriple(iri("math101"), NewIRI(RDFType), iri("Course"))) {
		t.Fatal("rdfs3 missing")
	}
}

func TestMaterializeRangeSkipsLiterals(t *testing.T) {
	ts := []Triple{
		NewTriple(iri("name"), NewIRI(RDFSRange), iri("Name")),
		NewTriple(iri("bob"), iri("name"), NewLiteral("Bob")),
	}
	out := Materialize(ts)
	for _, tr := range out {
		if tr.S.IsLiteral() {
			t.Fatalf("materialization produced literal subject: %v", tr)
		}
	}
	if len(out) != 2 {
		t.Fatalf("expected no new triples, got %d", len(out))
	}
}

func TestMaterializeIdempotent(t *testing.T) {
	ts := []Triple{
		NewTriple(iri("A"), NewIRI(RDFSSubClassOf), iri("B")),
		NewTriple(iri("x"), NewIRI(RDFType), iri("A")),
	}
	once := Materialize(ts)
	twice := Materialize(once)
	if len(once) != len(twice) {
		t.Fatalf("not idempotent: %d then %d", len(once), len(twice))
	}
}

func TestIsTypeTriple(t *testing.T) {
	if !NewTriple(iri("x"), NewIRI(RDFType), iri("C")).IsTypeTriple() {
		t.Fatal("type triple not detected")
	}
	if NewTriple(iri("x"), iri("p"), iri("C")).IsTypeTriple() {
		t.Fatal("non-type triple misdetected")
	}
}
