package workload

import (
	"reflect"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

func TestGenerateUniversityDeterministic(t *testing.T) {
	a := GenerateUniversity(SmallUniversity())
	b := GenerateUniversity(SmallUniversity())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("generator is not deterministic")
	}
	if len(a) == 0 {
		t.Fatal("empty dataset")
	}
}

func TestGenerateUniversityWellFormed(t *testing.T) {
	ts := GenerateUniversity(SmallUniversity())
	for _, tr := range ts {
		if err := tr.Validate(); err != nil {
			t.Fatalf("invalid triple %v: %v", tr, err)
		}
	}
	stats := rdf.ComputeStats(ts)
	if stats.DistinctPredicates < 8 {
		t.Fatalf("too few predicates: %d", stats.DistinctPredicates)
	}
	// Every student must have a type triple.
	g := rdf.NewGraph(ts)
	students := 0
	for _, tr := range g.WithPredicate(rdf.RDFType) {
		if tr.O == ClassStudent {
			students++
		}
	}
	cfg := SmallUniversity()
	want := cfg.Universities * cfg.DepartmentsPerUniv * cfg.StudentsPerDept
	if students != want {
		t.Fatalf("students = %d, want %d", students, want)
	}
}

func TestGenerateUniversityScales(t *testing.T) {
	small := len(GenerateUniversity(SmallUniversity()))
	medium := len(GenerateUniversity(MediumUniversity()))
	if medium <= small*2 {
		t.Fatalf("medium (%d) not meaningfully larger than small (%d)", medium, small)
	}
}

func TestGenerateShopDeterministicAndValid(t *testing.T) {
	a := GenerateShop(SmallShop())
	b := GenerateShop(SmallShop())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("shop generator is not deterministic")
	}
	for _, tr := range a {
		if err := tr.Validate(); err != nil {
			t.Fatalf("invalid triple %v: %v", tr, err)
		}
	}
	g := rdf.NewGraph(a)
	if len(g.WithPredicate(ShopFollows.Value)) == 0 {
		t.Fatal("no follows edges")
	}
	if len(g.WithPredicate(ShopPrice.Value)) != SmallShop().Products {
		t.Fatalf("price triples = %d", len(g.WithPredicate(ShopPrice.Value)))
	}
}

func TestWorkloadQueriesParseAndClassify(t *testing.T) {
	for _, nq := range AllQueries() {
		if nq.Query == nil {
			t.Fatalf("%s: nil query", nq.Name)
		}
		if got := sparql.ClassifyShape(nq.Query); got != nq.Shape {
			t.Fatalf("%s: shape %v, want %v", nq.Name, got, nq.Shape)
		}
	}
}

func TestWorkloadQueriesHaveAnswers(t *testing.T) {
	// Every university query must return at least one row on the medium
	// dataset — otherwise the assessment measures nothing.
	g := rdf.NewGraph(GenerateUniversity(MediumUniversity()))
	for _, nq := range UniversityQueries() {
		res, err := sparql.Evaluate(nq.Query, g)
		if err != nil {
			t.Fatalf("%s: %v", nq.Name, err)
		}
		if res.Len() == 0 {
			t.Errorf("%s: zero answers on medium dataset", nq.Name)
		}
	}
	gs := rdf.NewGraph(GenerateShop(MediumShop()))
	for _, nq := range ShopQueries() {
		res, err := sparql.Evaluate(nq.Query, gs)
		if err != nil {
			t.Fatalf("%s: %v", nq.Name, err)
		}
		if res.Len() == 0 {
			t.Errorf("%s: zero answers on medium shop dataset", nq.Name)
		}
	}
}

func TestQueriesByShape(t *testing.T) {
	stars := QueriesByShape(UniversityQueries(), sparql.ShapeStar)
	if len(stars) != 2 {
		t.Fatalf("stars = %d", len(stars))
	}
	for _, q := range stars {
		if q.Shape != sparql.ShapeStar {
			t.Fatalf("wrong shape in filter: %v", q.Shape)
		}
	}
}
