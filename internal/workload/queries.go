package workload

import (
	"fmt"

	"repro/internal/sparql"
)

// NamedQuery pairs a SPARQL query with its workload identity.
type NamedQuery struct {
	Name  string
	Shape sparql.Shape
	Text  string
	Query *sparql.Query
}

func mustNamed(name string, shape sparql.Shape, text string) NamedQuery {
	q, err := sparql.Parse(text)
	if err != nil {
		panic(fmt.Sprintf("workload query %s: %v", name, err))
	}
	if got := sparql.ClassifyShape(q); got != shape {
		panic(fmt.Sprintf("workload query %s classified as %v, want %v", name, got, shape))
	}
	return NamedQuery{Name: name, Shape: shape, Text: text, Query: q}
}

// UniversityQueries returns the shaped workload over the LUBM-style
// vocabulary: one set per shape of the survey's Sec. II.B taxonomy.
func UniversityQueries() []NamedQuery {
	p := func(local string) string { return "<" + UnivNS + local + ">" }
	return []NamedQuery{
		mustNamed("U-star-1", sparql.ShapeStar, fmt.Sprintf(
			`SELECT ?s ?n ?a WHERE { ?s %s ?n . ?s %s ?a . ?s <%s> %s }`,
			p("name"), p("age"), "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", p("Student"))),
		mustNamed("U-star-2", sparql.ShapeStar, fmt.Sprintf(
			`SELECT ?s ?d ?e WHERE { ?s %s ?d . ?s %s ?e . ?s %s ?n }`,
			p("worksFor"), p("emailAddress"), p("name"))),
		mustNamed("U-linear-1", sparql.ShapeLinear, fmt.Sprintf(
			`SELECT ?st ?prof ?dept WHERE { ?st %s ?prof . ?prof %s ?dept . ?dept %s ?univ }`,
			p("advisor"), p("worksFor"), p("subOrganizationOf"))),
		mustNamed("U-linear-2", sparql.ShapeLinear, fmt.Sprintf(
			`SELECT ?st ?c WHERE { ?st %s ?dept . ?dept %s ?u }`,
			p("memberOf"), p("subOrganizationOf"))),
		mustNamed("U-snowflake-1", sparql.ShapeSnowflake, fmt.Sprintf(
			`SELECT ?st ?sn ?prof ?pn WHERE { ?st %s ?sn . ?st %s ?prof . ?prof %s ?pn . ?prof %s ?dept }`,
			p("name"), p("advisor"), p("name"), p("worksFor"))),
		mustNamed("U-complex-1", sparql.ShapeComplex, fmt.Sprintf(
			`SELECT ?st ?c ?prof WHERE { ?st %s ?c . ?prof %s ?c . ?st %s ?prof }`,
			p("takesCourse"), p("teacherOf"), p("advisor"))),
		mustNamed("U-filter-1", sparql.ShapeComplex, fmt.Sprintf(
			`SELECT ?s ?a WHERE { ?s %s ?a . ?s %s ?n . FILTER(?a > 25) } ORDER BY ?a LIMIT 20`,
			p("age"), p("name"))),
		mustNamed("U-optional-1", sparql.ShapeComplex, fmt.Sprintf(
			`SELECT ?s ?e WHERE { ?s %s ?n OPTIONAL { ?s %s ?e } }`,
			p("name"), p("emailAddress"))),
		mustNamed("U-union-1", sparql.ShapeComplex, fmt.Sprintf(
			`SELECT DISTINCT ?x WHERE { { ?x <%s> %s } UNION { ?x <%s> %s } }`,
			"http://www.w3.org/1999/02/22-rdf-syntax-ns#type", p("Professor"),
			"http://www.w3.org/1999/02/22-rdf-syntax-ns#type", p("Course"))),
	}
}

// ShopQueries returns the shaped workload over the WatDiv-style
// vocabulary.
func ShopQueries() []NamedQuery {
	p := func(local string) string { return "<" + ShopNS + local + ">" }
	return []NamedQuery{
		mustNamed("S-star-1", sparql.ShapeStar, fmt.Sprintf(
			`SELECT ?p ?price ?cap WHERE { ?p %s ?price . ?p %s ?cap }`,
			p("price"), p("caption"))),
		mustNamed("S-linear-1", sparql.ShapeLinear, fmt.Sprintf(
			`SELECT ?a ?b ?prod WHERE { ?a %s ?b . ?b %s ?prod }`,
			p("follows"), p("likes"))),
		mustNamed("S-linear-2", sparql.ShapeLinear, fmt.Sprintf(
			`SELECT ?a ?c WHERE { ?a %s ?b . ?b %s ?c . ?c %s ?d }`,
			p("follows"), p("follows"), p("likes"))),
		mustNamed("S-snowflake-1", sparql.ShapeSnowflake, fmt.Sprintf(
			`SELECT ?u ?co ?prod ?price WHERE { ?u %s ?co . ?u %s ?prod . ?prod %s ?price . ?prod %s ?cap }`,
			p("country"), p("likes"), p("price"), p("caption"))),
		mustNamed("S-complex-1", sparql.ShapeComplex, fmt.Sprintf(
			`SELECT ?u ?r ?prod WHERE { ?u %s ?prod . ?r %s ?prod . ?u %s ?co }`,
			p("purchased"), p("sells"), p("country"))),
	}
}

// QueriesByShape filters a workload to one shape.
func QueriesByShape(qs []NamedQuery, shape sparql.Shape) []NamedQuery {
	var out []NamedQuery
	for _, q := range qs {
		if q.Shape == shape {
			out = append(out, q)
		}
	}
	return out
}

// AllQueries returns the union of both workloads.
func AllQueries() []NamedQuery {
	return append(UniversityQueries(), ShopQueries()...)
}
