// Package workload generates the synthetic datasets and shaped query
// workloads the assessment harness runs. Two generators mirror the
// benchmark families the surveyed systems were originally evaluated on:
// a LUBM-style university graph (deep class hierarchy, star-shaped
// entities) and a WatDiv-style e-commerce graph (heavy predicate skew,
// long follow chains). Both are deterministic given a seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
)

// Namespace prefixes used by the generators.
const (
	UnivNS   = "http://repro.dev/lubm/"
	ShopNS   = "http://repro.dev/watdiv/"
	VocabLen = 64 // cap on literal vocabulary size
)

func uiri(local string) rdf.Term { return rdf.NewIRI(UnivNS + local) }
func siri(local string) rdf.Term { return rdf.NewIRI(ShopNS + local) }

// UniversityConfig sizes the LUBM-style generator.
type UniversityConfig struct {
	Universities       int
	DepartmentsPerUniv int
	ProfessorsPerDept  int
	StudentsPerDept    int
	CoursesPerDept     int
	Seed               int64
}

// SmallUniversity is a laptop-scale configuration (~3k triples).
func SmallUniversity() UniversityConfig {
	return UniversityConfig{Universities: 2, DepartmentsPerUniv: 3, ProfessorsPerDept: 4, StudentsPerDept: 20, CoursesPerDept: 5, Seed: 1}
}

// MediumUniversity is the benchmark-scale configuration (~40k triples).
func MediumUniversity() UniversityConfig {
	return UniversityConfig{Universities: 5, DepartmentsPerUniv: 8, ProfessorsPerDept: 10, StudentsPerDept: 80, CoursesPerDept: 12, Seed: 1}
}

// University vocabulary predicates.
var (
	UnivType        = rdf.NewIRI(rdf.RDFType)
	UnivName        = uiri("name")
	UnivEmail       = uiri("emailAddress")
	UnivWorksFor    = uiri("worksFor")
	UnivMemberOf    = uiri("memberOf")
	UnivAdvisor     = uiri("advisor")
	UnivTakesCourse = uiri("takesCourse")
	UnivTeacherOf   = uiri("teacherOf")
	UnivSubOrgOf    = uiri("subOrganizationOf")
	UnivDegreeFrom  = uiri("undergraduateDegreeFrom")
	UnivAge         = uiri("age")

	ClassUniversity = uiri("University")
	ClassDepartment = uiri("Department")
	ClassProfessor  = uiri("Professor")
	ClassStudent    = uiri("Student")
	ClassCourse     = uiri("Course")
)

// GenerateUniversity builds the LUBM-style dataset.
func GenerateUniversity(cfg UniversityConfig) []rdf.Triple {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []rdf.Triple
	add := func(s rdf.Term, p rdf.Term, o rdf.Term) {
		out = append(out, rdf.Triple{S: s, P: p, O: o})
	}
	intLit := func(v int) rdf.Term {
		return rdf.NewTypedLiteral(fmt.Sprint(v), rdf.XSDInteger)
	}
	for u := 0; u < cfg.Universities; u++ {
		univ := uiri(fmt.Sprintf("univ%d", u))
		add(univ, UnivType, ClassUniversity)
		add(univ, UnivName, rdf.NewLiteral(fmt.Sprintf("University %d", u)))
		for d := 0; d < cfg.DepartmentsPerUniv; d++ {
			dept := uiri(fmt.Sprintf("univ%d.dept%d", u, d))
			add(dept, UnivType, ClassDepartment)
			add(dept, UnivSubOrgOf, univ)
			add(dept, UnivName, rdf.NewLiteral(fmt.Sprintf("Department %d-%d", u, d)))

			var profs []rdf.Term
			for p := 0; p < cfg.ProfessorsPerDept; p++ {
				prof := uiri(fmt.Sprintf("univ%d.dept%d.prof%d", u, d, p))
				profs = append(profs, prof)
				add(prof, UnivType, ClassProfessor)
				add(prof, UnivWorksFor, dept)
				add(prof, UnivName, rdf.NewLiteral(fmt.Sprintf("Prof %d-%d-%d", u, d, p)))
				add(prof, UnivEmail, rdf.NewLiteral(fmt.Sprintf("prof%d@univ%d.edu", p, u)))
				add(prof, UnivAge, intLit(30+rng.Intn(40)))
				add(prof, UnivDegreeFrom, uiri(fmt.Sprintf("univ%d", rng.Intn(cfg.Universities))))
			}
			var courses []rdf.Term
			for c := 0; c < cfg.CoursesPerDept; c++ {
				course := uiri(fmt.Sprintf("univ%d.dept%d.course%d", u, d, c))
				courses = append(courses, course)
				add(course, UnivType, ClassCourse)
				add(course, UnivName, rdf.NewLiteral(fmt.Sprintf("Course %d-%d-%d", u, d, c)))
				add(profs[rng.Intn(len(profs))], UnivTeacherOf, course)
			}
			for s := 0; s < cfg.StudentsPerDept; s++ {
				stud := uiri(fmt.Sprintf("univ%d.dept%d.stud%d", u, d, s))
				add(stud, UnivType, ClassStudent)
				add(stud, UnivMemberOf, dept)
				add(stud, UnivName, rdf.NewLiteral(fmt.Sprintf("Student %d-%d-%d", u, d, s)))
				add(stud, UnivAge, intLit(18+rng.Intn(12)))
				add(stud, UnivAdvisor, profs[rng.Intn(len(profs))])
				nCourses := 1 + rng.Intn(3)
				for k := 0; k < nCourses; k++ {
					add(stud, UnivTakesCourse, courses[rng.Intn(len(courses))])
				}
			}
		}
	}
	return out
}

// ShopConfig sizes the WatDiv-style generator.
type ShopConfig struct {
	Users     int
	Products  int
	Retailers int
	Seed      int64
}

// SmallShop is a laptop-scale configuration.
func SmallShop() ShopConfig { return ShopConfig{Users: 60, Products: 40, Retailers: 6, Seed: 1} }

// MediumShop is benchmark scale.
func MediumShop() ShopConfig { return ShopConfig{Users: 600, Products: 300, Retailers: 20, Seed: 1} }

// Shop vocabulary predicates.
var (
	ShopFollows  = siri("follows")
	ShopLikes    = siri("likes")
	ShopPurchase = siri("purchased")
	ShopSells    = siri("sells")
	ShopPrice    = siri("price")
	ShopCaption  = siri("caption")
	ShopCountry  = siri("country")

	ClassUser     = siri("User")
	ClassProduct  = siri("Product")
	ClassRetailer = siri("Retailer")
)

// GenerateShop builds the WatDiv-style dataset: a social graph with
// heavy-tailed follows, product likes/purchases, and retailer catalogs.
func GenerateShop(cfg ShopConfig) []rdf.Triple {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []rdf.Triple
	add := func(s, p, o rdf.Term) { out = append(out, rdf.Triple{S: s, P: p, O: o}) }
	countries := []string{"GR", "FI", "DE", "FR", "US"}

	user := func(i int) rdf.Term { return siri(fmt.Sprintf("user%d", i)) }
	product := func(i int) rdf.Term { return siri(fmt.Sprintf("product%d", i)) }

	for i := 0; i < cfg.Products; i++ {
		p := product(i)
		add(p, UnivType, ClassProduct)
		add(p, ShopPrice, rdf.NewTypedLiteral(fmt.Sprint(5+rng.Intn(500)), rdf.XSDInteger))
		add(p, ShopCaption, rdf.NewLiteral(fmt.Sprintf("Product no. %d", i)))
	}
	for i := 0; i < cfg.Retailers; i++ {
		r := siri(fmt.Sprintf("retailer%d", i))
		add(r, UnivType, ClassRetailer)
		add(r, ShopCountry, rdf.NewLiteral(countries[rng.Intn(len(countries))]))
		n := 3 + rng.Intn(cfg.Products/2+1)
		for k := 0; k < n; k++ {
			add(r, ShopSells, product(rng.Intn(cfg.Products)))
		}
	}
	for i := 0; i < cfg.Users; i++ {
		u := user(i)
		add(u, UnivType, ClassUser)
		add(u, ShopCountry, rdf.NewLiteral(countries[rng.Intn(len(countries))]))
		// Preferential attachment-ish: earlier users are followed more.
		nFollows := 1 + rng.Intn(4)
		for k := 0; k < nFollows; k++ {
			target := rng.Intn(i + 1)
			if target != i {
				add(u, ShopFollows, user(target))
			}
		}
		nLikes := rng.Intn(5)
		for k := 0; k < nLikes; k++ {
			add(u, ShopLikes, product(rng.Intn(cfg.Products)))
		}
		if rng.Intn(3) == 0 {
			add(u, ShopPurchase, product(rng.Intn(cfg.Products)))
		}
	}
	return out
}
