package partition

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/workload"
)

// allStrategies iterates the registry: every registered strategy,
// configured with the workload the workload-aware placement needs.
func allStrategies() []Strategy {
	linear := sparql.MustParse(fmt.Sprintf(
		`SELECT ?st ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS))
	return All(WithQueries(linear), WithRounds(4))
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("registry holds %d strategies: %v", len(names), names)
	}
	for _, name := range names {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("ByName(%q) built strategy named %q", name, s.Name())
		}
	}
	if _, err := ByName("no-such-strategy"); err == nil {
		t.Fatal("unknown name must error")
	}
	q := sparql.MustParse(`SELECT ?s WHERE { ?s ?p ?o }`)
	s, err := ByName(WorkloadAware{}.Name(), WithQueries(q))
	if err != nil {
		t.Fatal(err)
	}
	if wa, ok := s.(WorkloadAware); !ok || len(wa.Queries) != 1 {
		t.Fatalf("options not threaded: %#v", s)
	}
	if lp, _ := ByName(LabelPropagation{}.Name(), WithRounds(7)); lp.(LabelPropagation).Rounds != 7 {
		t.Fatalf("rounds not threaded: %#v", lp)
	}
}

// TestRegistryCoverage pins the invariant All relies on instead of a
// runtime panic: every name in registration order has a builder, and
// All returns them all, in order, with options threaded through.
func TestRegistryCoverage(t *testing.T) {
	for _, name := range registryOrder {
		if builders[name] == nil {
			t.Fatalf("registered name %q has no builder", name)
		}
	}
	if len(builders) != len(registryOrder) {
		t.Fatalf("builders holds %d entries, registryOrder %d", len(builders), len(registryOrder))
	}
	q := sparql.MustParse(`SELECT ?s WHERE { ?s ?p ?o }`)
	all := All(WithQueries(q))
	if len(all) != len(registryOrder) {
		t.Fatalf("All returned %d strategies, want %d", len(all), len(registryOrder))
	}
	for i, s := range all {
		if s.Name() != registryOrder[i] {
			t.Fatalf("All[%d] = %q, want %q", i, s.Name(), registryOrder[i])
		}
		if wa, ok := s.(WorkloadAware); ok && len(wa.Queries) != 1 {
			t.Fatalf("All did not thread options: %#v", s)
		}
	}
}

func TestPlacementsAreValid(t *testing.T) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	const n = 4
	for _, s := range allStrategies() {
		place := s.Place(rdf.Dedupe(triples), n)
		if len(place) != len(rdf.Dedupe(triples)) {
			t.Fatalf("%s: placement length %d", s.Name(), len(place))
		}
		for i, p := range place {
			if p < 0 || p >= n {
				t.Fatalf("%s: triple %d on partition %d", s.Name(), i, p)
			}
		}
	}
}

func TestPlacementsDeterministic(t *testing.T) {
	triples := rdf.Dedupe(workload.GenerateUniversity(workload.SmallUniversity()))
	for _, s := range allStrategies() {
		a := s.Place(triples, 4)
		b := s.Place(triples, 4)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: non-deterministic at %d", s.Name(), i)
			}
		}
	}
}

func TestSubjectBasedStrategiesKeepStarsLocal(t *testing.T) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	for _, s := range []Strategy{HashSubject{}, Semantic{}} {
		q := Evaluate(s, triples, 4)
		if q.StarLocality != 1.0 {
			t.Fatalf("%s: star locality %.2f, want 1.0", s.Name(), q.StarLocality)
		}
	}
}

func TestVerticalBreaksStars(t *testing.T) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	q := Evaluate(Vertical{}, triples, 4)
	if q.StarLocality >= 0.9 {
		t.Fatalf("vertical star locality %.2f should be low", q.StarLocality)
	}
}

func TestWorkloadAwareCutsLinkEdges(t *testing.T) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	hash := Evaluate(HashSubject{}, triples, 4)
	linear := sparql.MustParse(fmt.Sprintf(
		`SELECT ?st ?dept WHERE { ?st <%sadvisor> ?prof . ?prof <%sworksFor> ?dept }`,
		workload.UnivNS, workload.UnivNS))
	aware := Evaluate(WorkloadAware{Queries: []*sparql.Query{linear}}, triples, 4)
	if aware.EdgeCut >= hash.EdgeCut {
		t.Fatalf("workload-aware edge cut %.2f not below hash %.2f", aware.EdgeCut, hash.EdgeCut)
	}
	if aware.StarLocality != 1.0 {
		t.Fatalf("workload-aware must keep stars local, got %.2f", aware.StarLocality)
	}
}

func TestLabelPropagationReducesEdgeCut(t *testing.T) {
	triples := workload.GenerateUniversity(workload.SmallUniversity())
	hash := Evaluate(HashSubject{}, triples, 4)
	lp := Evaluate(LabelPropagation{Rounds: 5}, triples, 4)
	if lp.EdgeCut >= hash.EdgeCut {
		t.Fatalf("label propagation edge cut %.2f not below hash %.2f", lp.EdgeCut, hash.EdgeCut)
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	q := Evaluate(HashSubject{}, nil, 4)
	if q.Balance != 1.0 || q.EdgeCut != 0 || q.StarLocality != 1.0 {
		t.Fatalf("empty dataset quality = %+v", q)
	}
	one := []rdf.Triple{{S: rdf.NewIRI("http://a"), P: rdf.NewIRI("http://p"), O: rdf.NewIRI("http://b")}}
	q = Evaluate(HashSubject{}, one, 2)
	if q.StarLocality != 1.0 {
		t.Fatalf("single triple quality = %+v", q)
	}
}

func TestQualityString(t *testing.T) {
	s := Quality{Balance: 1.5, EdgeCut: 0.25, StarLocality: 1}.String()
	if s == "" {
		t.Fatal("empty string")
	}
}
