// Package partition implements and evaluates the data-partitioning
// strategies the survey's discussion (Sec. V) identifies as the key
// open lever for RDF-on-Spark systems: simple hash and vertical
// schemes, the semantic (class-based) partitioning of Troullinou et
// al. [27], workload-aware placement in the spirit of HAQWA, and a
// GraphX-based balanced label-propagation partitioner — the survey
// notes "GraphX has not been exploited yet towards this direction".
//
// Every strategy maps each triple to a partition; Evaluate scores a
// placement on the two axes the paper discusses: load balance and the
// edge-cut of subject-object links (the joins linear queries need).
package partition

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
	"repro/internal/spark"
	"repro/internal/spark/graphx"
	"repro/internal/sparql"
)

// Strategy assigns triples to partitions.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Place returns a partition index in [0, n) for every triple.
	Place(triples []rdf.Triple, n int) []int
}

// Quality scores a placement.
type Quality struct {
	// Balance is max partition size / ideal size (1.0 = perfect).
	Balance float64
	// EdgeCut is the fraction of subject-object links whose two
	// triples live on different partitions (0 = all linear joins are
	// local).
	EdgeCut float64
	// StarLocality is the fraction of subjects whose triples share one
	// partition (1 = every star query is local).
	StarLocality float64
}

func (q Quality) String() string {
	return fmt.Sprintf("balance=%.2f edgeCut=%.2f starLocality=%.2f", q.Balance, q.EdgeCut, q.StarLocality)
}

// Evaluate computes placement quality for a strategy over a dataset.
func Evaluate(s Strategy, triples []rdf.Triple, n int) Quality {
	triples = rdf.Dedupe(triples)
	return EvaluatePlacement(triples, s.Place(triples, n), n)
}

// EvaluatePlacement scores an already-computed placement: place[i] is
// the partition of the i-th triple of the deduplicated dataset.
// Callers that also materialize the placement (shard building, the
// rdfbench strategy comparison) use this to run Place once. Scoring
// runs in id space over dictionary-encoded triples: (subject,
// partition) membership is keyed by 4-byte TermIDs instead of
// string-bearing Terms, so both the star-locality and the edge-cut
// passes stay O(triples) with integer map lookups.
func EvaluatePlacement(triples []rdf.Triple, place []int, n int) Quality {
	sizes := make([]int, n)
	for _, p := range place {
		sizes[p]++
	}
	maxSize := 0
	for _, sz := range sizes {
		if sz > maxSize {
			maxSize = sz
		}
	}
	ideal := float64(len(triples)) / float64(n)
	balance := 1.0
	if ideal > 0 {
		balance = float64(maxSize) / ideal
	}

	// Encode once; enc[i] aligns with triples[i].
	dict := rdf.NewDictionary()
	enc := dict.EncodeAll(triples)
	nTerms := dict.Len()

	// (subject id, partition) membership, shared by both passes.
	partsSeen := make(map[uint64]struct{}, len(enc))
	partCount := make([]int32, nTerms) // distinct partitions per subject
	isSubject := make([]bool, nTerms)
	for i, e := range enc {
		isSubject[e.S] = true
		key := uint64(e.S)<<32 | uint64(uint32(place[i]))
		if _, ok := partsSeen[key]; !ok {
			partsSeen[key] = struct{}{}
			partCount[e.S]++
		}
	}

	// Star locality: subjects whose triples all share a partition.
	subjects, local := 0, 0
	for id, is := range isSubject {
		if !is {
			continue
		}
		subjects++
		if partCount[id] == 1 {
			local++
		}
	}
	starLocality := 1.0
	if subjects > 0 {
		starLocality = float64(local) / float64(subjects)
	}

	// Edge cut over subject-object links: for each triple t1 whose
	// object is some subject s2, does any t2 with subject s2 share
	// t1's partition?
	links, cut := 0, 0
	for i, e := range enc {
		if !isSubject[e.O] {
			continue
		}
		links++
		if _, ok := partsSeen[uint64(e.O)<<32|uint64(uint32(place[i]))]; !ok {
			cut++
		}
	}
	edgeCut := 0.0
	if links > 0 {
		edgeCut = float64(cut) / float64(links)
	}
	return Quality{Balance: balance, EdgeCut: edgeCut, StarLocality: starLocality}
}

// --- strategies ---

// HashSubject is the Spark default applied to RDF: place by the hash
// of the subject.
type HashSubject struct{}

// Name implements Strategy.
func (HashSubject) Name() string { return "hash-subject" }

// Place implements Strategy.
func (HashSubject) Place(triples []rdf.Triple, n int) []int {
	p := spark.NewHashPartitioner[string](n)
	out := make([]int, len(triples))
	for i, t := range triples {
		out[i] = p.Partition(t.S.String())
	}
	return out
}

// Vertical places by the hash of the predicate (the SPARQLGX layout
// viewed as a partitioning).
type Vertical struct{}

// Name implements Strategy.
func (Vertical) Name() string { return "vertical" }

// Place implements Strategy.
func (Vertical) Place(triples []rdf.Triple, n int) []int {
	p := spark.NewHashPartitioner[string](n)
	out := make([]int, len(triples))
	for i, t := range triples {
		out[i] = p.Partition(t.P.Value)
	}
	return out
}

// Semantic places by the rdf:type class of the subject (untyped
// subjects fall back to subject hash) — the class-driven scheme of
// Troullinou et al. [27].
type Semantic struct{}

// Name implements Strategy.
func (Semantic) Name() string { return "semantic-class" }

// Place implements Strategy.
func (Semantic) Place(triples []rdf.Triple, n int) []int {
	classOf := map[rdf.Term]string{}
	for _, t := range triples {
		if t.IsTypeTriple() {
			if _, ok := classOf[t.S]; !ok {
				classOf[t.S] = t.O.Value
			}
		}
	}
	p := spark.NewHashPartitioner[string](n)
	out := make([]int, len(triples))
	for i, t := range triples {
		if c, ok := classOf[t.S]; ok {
			out[i] = p.Partition(c)
		} else {
			out[i] = p.Partition(t.S.String())
		}
	}
	return out
}

// WorkloadAware co-locates subjects with the objects their triples
// point to over the link predicates a query workload joins on —
// HAQWA's allocation idea expressed as a partitioner.
type WorkloadAware struct {
	Queries []*sparql.Query
}

// Name implements Strategy.
func (WorkloadAware) Name() string { return "workload-aware" }

// Place implements Strategy.
func (w WorkloadAware) Place(triples []rdf.Triple, n int) []int {
	linkPreds := map[string]bool{}
	for _, q := range w.Queries {
		bgp, ok := q.BGPOf()
		if !ok {
			continue
		}
		subjects := map[sparql.Var]bool{}
		for _, tp := range bgp.Patterns {
			if tp.S.IsVar {
				subjects[tp.S.Var] = true
			}
		}
		for _, tp := range bgp.Patterns {
			if !tp.P.IsVar && tp.O.IsVar && subjects[tp.O.Var] {
				linkPreds[tp.P.Term.Value] = true
			}
		}
	}
	// Union-find over link edges: subjects joined to their link targets.
	parent := map[rdf.Term]rdf.Term{}
	var find func(rdf.Term) rdf.Term
	find = func(x rdf.Term) rdf.Term {
		if p, ok := parent[x]; ok && p != x {
			r := find(p)
			parent[x] = r
			return r
		}
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		return parent[x]
	}
	union := func(a, b rdf.Term) { parent[find(a)] = find(b) }
	for _, t := range triples {
		if linkPreds[t.P.Value] && !t.O.IsLiteral() {
			union(t.S, t.O)
		}
	}
	p := spark.NewHashPartitioner[string](n)
	out := make([]int, len(triples))
	for i, t := range triples {
		out[i] = p.Partition(find(t.S).String())
	}
	return out
}

// LabelPropagation is a graph partitioner built on the GraphX
// substrate: vertices iteratively adopt the most common partition
// label among their neighbors (with a capacity bias toward smaller
// partitions), minimizing the edge-cut the way the survey suggests
// graph partitioning should.
type LabelPropagation struct {
	// Rounds bounds the propagation iterations (default 5).
	Rounds int
	// Ctx supplies the GraphX substrate; a private context is created
	// when nil.
	Ctx *spark.Context
}

// Name implements Strategy.
func (LabelPropagation) Name() string { return "graphx-label-propagation" }

// Place implements Strategy.
func (l LabelPropagation) Place(triples []rdf.Triple, n int) []int {
	ctx := l.Ctx
	if ctx == nil {
		ctx = spark.NewContext(spark.DefaultConfig())
	}
	rounds := l.Rounds
	if rounds <= 0 {
		rounds = 5
	}
	// Build the entity graph: vertices are subjects/objects, edges are
	// triples between entities.
	ids := map[rdf.Term]graphx.VertexID{}
	var vertices []graphx.Vertex[int]
	idOf := func(t rdf.Term) graphx.VertexID {
		if id, ok := ids[t]; ok {
			return id
		}
		id := graphx.VertexID(len(ids) + 1)
		ids[t] = id
		// Initial label: subject hash, so the result refines the default.
		vertices = append(vertices, graphx.Vertex[int]{ID: id, Attr: spark.NewHashPartitioner[string](n).Partition(t.String())})
		return id
	}
	var edges []graphx.Edge[struct{}]
	for _, t := range triples {
		if t.O.IsLiteral() {
			continue
		}
		edges = append(edges, graphx.Edge[struct{}]{Src: idOf(t.S), Dst: idOf(t.O)})
	}
	g := graphx.New(ctx, vertices, edges)

	labels := map[graphx.VertexID]int{}
	for _, v := range g.Vertices().Collect() {
		labels[v.ID] = v.Attr
	}
	sizes := make([]int, n)
	for _, lbl := range labels {
		sizes[lbl]++
	}
	for round := 0; round < rounds; round++ {
		// One aggregateMessages round: each vertex hears its neighbors'
		// labels.
		current := labels
		votes := graphx.AggregateMessages(g,
			func(c *graphx.EdgeContext[int, struct{}, []int]) {
				c.SendToDst([]int{current[c.Triplet.Src]})
				c.SendToSrc([]int{current[c.Triplet.Dst]})
			},
			func(a, b []int) []int { return append(a, b...) })
		ctx.AddSupersteps(1)
		changed := 0
		// Deterministic order.
		vids := make([]graphx.VertexID, 0, len(labels))
		for vid := range labels {
			vids = append(vids, vid)
		}
		sort.Slice(vids, func(i, j int) bool { return vids[i] < vids[j] })
		for _, vid := range vids {
			vs := votes[vid]
			if len(vs) == 0 {
				continue
			}
			counts := map[int]int{}
			for _, lbl := range vs {
				counts[lbl]++
			}
			best, bestScore := labels[vid], -1.0
			for lbl, c := range counts {
				// Capacity bias: discount labels of oversized partitions.
				score := float64(c) / (1 + float64(sizes[lbl])/float64(len(labels)))
				if score > bestScore || (score == bestScore && lbl < best) {
					best, bestScore = lbl, score
				}
			}
			if best != labels[vid] {
				sizes[labels[vid]]--
				sizes[best]++
				labels[vid] = best
				changed++
			}
		}
		if changed == 0 {
			break
		}
	}
	p := spark.NewHashPartitioner[string](n)
	out := make([]int, len(triples))
	for i, t := range triples {
		if id, ok := ids[t.S]; ok {
			out[i] = labels[id]
		} else {
			out[i] = p.Partition(t.S.String())
		}
	}
	return out
}
