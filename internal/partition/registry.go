package partition

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/spark"
	"repro/internal/sparql"
)

// Options carries the strategy-specific inputs a registry lookup may
// supply: the query workload (workload-aware placement), the
// propagation rounds, and the GraphX substrate (label propagation).
// Strategies that do not use a field ignore it.
type Options struct {
	Queries []*sparql.Query
	Rounds  int
	Ctx     *spark.Context
}

// Option customizes a registry lookup.
type Option func(*Options)

// WithQueries supplies the workload the workload-aware strategy
// co-locates for.
func WithQueries(qs ...*sparql.Query) Option {
	return func(o *Options) { o.Queries = append(o.Queries, qs...) }
}

// WithRounds bounds the label-propagation iterations.
func WithRounds(n int) Option {
	return func(o *Options) { o.Rounds = n }
}

// WithContext supplies the GraphX substrate for label propagation.
func WithContext(ctx *spark.Context) Option {
	return func(o *Options) { o.Ctx = ctx }
}

// registryOrder lists the registered strategy names in registration
// order (the order reports and comparisons present them in).
var registryOrder = []string{
	HashSubject{}.Name(),
	Vertical{}.Name(),
	Semantic{}.Name(),
	WorkloadAware{}.Name(),
	LabelPropagation{}.Name(),
}

// builders maps each registered name to its strategy constructor.
var builders = map[string]func(Options) Strategy{
	HashSubject{}.Name(): func(Options) Strategy { return HashSubject{} },
	Vertical{}.Name():    func(Options) Strategy { return Vertical{} },
	Semantic{}.Name():    func(Options) Strategy { return Semantic{} },
	WorkloadAware{}.Name(): func(o Options) Strategy {
		return WorkloadAware{Queries: o.Queries}
	},
	LabelPropagation{}.Name(): func(o Options) Strategy {
		return LabelPropagation{Rounds: o.Rounds, Ctx: o.Ctx}
	},
}

// Names returns every registered strategy name in registration order.
func Names() []string {
	return append([]string(nil), registryOrder...)
}

// resolveOptions folds opts into an Options value.
func resolveOptions(opts []Option) Options {
	var o Options
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return o
}

// ByName returns the named strategy, configured by opts. Unknown names
// list the registry in the error so CLI flags are self-documenting.
func ByName(name string, opts ...Option) (Strategy, error) {
	if b, ok := builders[name]; ok {
		return b(resolveOptions(opts)), nil
	}
	known := Names()
	sort.Strings(known)
	return nil, fmt.Errorf("partition: unknown strategy %q (have %s)", name, strings.Join(known, ", "))
}

// All returns every registered strategy in registration order,
// configured by opts — the list tests and comparisons iterate instead
// of hand-building one. It constructs through the builders directly,
// so there is no unknown-name failure path and nothing to panic on; a
// name registered without a builder is caught by the registry
// coverage test, not at serving time.
func All(opts ...Option) []Strategy {
	o := resolveOptions(opts)
	out := make([]Strategy, 0, len(registryOrder))
	for _, name := range registryOrder {
		if b, ok := builders[name]; ok {
			out = append(out, b(o))
		}
	}
	return out
}
