package sparql

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Fault tolerance for the sharded executor (dist.go). The surveyed
// Spark-based systems inherit lineage-based retry from the platform;
// the native engine reproduces that contract in-process: every shard
// may carry R replica views (ShardSet.Replicas) that encode the same
// triples in the same order through the shared dictionary, so any
// replica yields byte-identical scans and a per-shard op can fail over
// between replicas without changing one row of output. A query fails —
// with a typed PartialFailureError — only when every replica of a
// needed shard is down for retry-budget-many consecutive passes.

// PartialFailureError reports the shards for which every replica
// failed: the only condition under which a sharded run gives up.
type PartialFailureError struct {
	// Shards lists the lost shard indexes, ascending.
	Shards []int
}

func (e *PartialFailureError) Error() string {
	return fmt.Sprintf("sparql: all replicas failed for shard(s) %v", e.Shards)
}

// PanicError wraps a panic recovered inside the execution engine — a
// morsel task or a per-shard op — after its retry budget was exhausted.
// The panic cancels the query, never the process.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sparql: recovered panic in executor: %v", e.Value)
}

// RetryPolicy bounds the fault handling of one sharded run. Within one
// pass over a shard's replicas failover is immediate; between passes
// the run backs off exponentially from BaseBackoff, capped at
// MaxBackoff and charged against the context's remaining deadline
// budget. Zero fields take the defaults (3 cycles, 2ms base, 50ms cap).
type RetryPolicy struct {
	// Cycles is the number of full passes over a shard's replica set
	// before the op gives up with a PartialFailureError.
	Cycles int
	// BaseBackoff is the sleep before the second pass; it doubles each
	// further pass.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-pass sleep.
	MaxBackoff time.Duration
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.Cycles <= 0 {
		rp.Cycles = 3
	}
	if rp.BaseBackoff <= 0 {
		rp.BaseBackoff = 2 * time.Millisecond
	}
	if rp.MaxBackoff <= 0 {
		rp.MaxBackoff = 50 * time.Millisecond
	}
	return rp
}

// backoffFor returns the sleep before pass cycle+1 (cycle >= 1).
func (rp RetryPolicy) backoffFor(cycle int) time.Duration {
	shift := cycle - 1
	if shift > 16 { // the cap dominates long before 2^16
		shift = 16
	}
	d := rp.BaseBackoff << shift
	if d > rp.MaxBackoff || d <= 0 {
		d = rp.MaxBackoff
	}
	return d
}

// WithRetryPolicy overrides the run's shard-op retry policy.
func WithRetryPolicy(rp RetryPolicy) RunOption {
	return func(o *runOpts) { o.retry = rp }
}

// FaultStats reports how one run's fault handling executed. Request it
// with WithFaultStats; a clean run reports zeros except Attempts.
type FaultStats struct {
	// Attempts counts per-shard-op replica attempts (sharded runs).
	Attempts int64
	// Retries counts failed attempts that were re-run — replica
	// attempts and morsel task re-executions.
	Retries int64
	// Failovers counts attempts routed to a different replica after the
	// previous replica failed.
	Failovers int64
	// RecoveredPanics counts panics recovered inside the engine.
	RecoveredPanics int64
	// Hedges counts hedged replica attempts launched after the hedge
	// delay elapsed without the primary answering (WithHedge).
	Hedges int64
	// HedgeWins counts hedged attempts whose result was committed —
	// the hedge beat the primary.
	HedgeWins int64
	// Speculations counts speculative morsel copies launched by the
	// straggler watchdog (WithSpeculation).
	Speculations int64
	// SpeculationWins counts speculative copies that finished before
	// their straggling original.
	SpeculationWins int64
}

// WithFaultStats makes the run fill fs with its fault counters just
// before returning (error returns included).
func WithFaultStats(fs *FaultStats) RunOption {
	return func(o *runOpts) { o.faultStats = fs }
}

// faultTally accumulates one run's fault counters across workers. The
// root environment embeds the value and every worker shares it through
// the evalEnv.ftally pointer.
type faultTally struct {
	attempts  atomic.Int64
	retries   atomic.Int64
	failovers atomic.Int64
	panics    atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	specs     atomic.Int64
	specWins  atomic.Int64
}

// mergeShardErrors folds per-worker shard-op errors into the run error:
// PartialFailureErrors from different shards merge into one naming all
// lost shards; any other error (cancellation, exhausted panic retries)
// wins outright.
func mergeShardErrors(workers []*evalEnv) error {
	var firstErr error
	var partial *PartialFailureError
	for _, w := range workers {
		if w.err == nil {
			continue
		}
		if pf, ok := w.err.(*PartialFailureError); ok {
			if partial == nil {
				partial = &PartialFailureError{}
			}
			partial.Shards = append(partial.Shards, pf.Shards...)
			continue
		}
		if firstErr == nil {
			firstErr = w.err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if partial != nil {
		sort.Ints(partial.Shards)
		return partial
	}
	return nil
}
