package sparql

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Fault tolerance for the sharded executor (dist.go). The surveyed
// Spark-based systems inherit lineage-based retry from the platform;
// the native engine reproduces that contract in-process: every shard
// may carry R replica views (ShardSet.Replicas) that encode the same
// triples in the same order through the shared dictionary, so any
// replica yields byte-identical scans and a per-shard op can fail over
// between replicas without changing one row of output. A query fails —
// with a typed PartialFailureError — only when every replica of a
// needed shard is down for retry-budget-many consecutive passes.

// PartialFailureError reports the shards for which every replica
// failed: the only condition under which a sharded run gives up.
type PartialFailureError struct {
	// Shards lists the lost shard indexes, ascending.
	Shards []int
}

func (e *PartialFailureError) Error() string {
	return fmt.Sprintf("sparql: all replicas failed for shard(s) %v", e.Shards)
}

// PanicError wraps a panic recovered inside the execution engine — a
// morsel task or a per-shard op — after its retry budget was exhausted.
// The panic cancels the query, never the process.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sparql: recovered panic in executor: %v", e.Value)
}

// RetryPolicy bounds the fault handling of one sharded run. Within one
// pass over a shard's replicas failover is immediate; between passes
// the run backs off exponentially from BaseBackoff, capped at
// MaxBackoff and charged against the context's remaining deadline
// budget. Zero fields take the defaults (3 cycles, 2ms base, 50ms cap).
type RetryPolicy struct {
	// Cycles is the number of full passes over a shard's replica set
	// before the op gives up with a PartialFailureError.
	Cycles int
	// BaseBackoff is the sleep before the second pass; it doubles each
	// further pass.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-pass sleep.
	MaxBackoff time.Duration
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.Cycles <= 0 {
		rp.Cycles = 3
	}
	if rp.BaseBackoff <= 0 {
		rp.BaseBackoff = 2 * time.Millisecond
	}
	if rp.MaxBackoff <= 0 {
		rp.MaxBackoff = 50 * time.Millisecond
	}
	return rp
}

// backoffFor returns the sleep before pass cycle+1 (cycle >= 1).
func (rp RetryPolicy) backoffFor(cycle int) time.Duration {
	shift := cycle - 1
	if shift > 16 { // the cap dominates long before 2^16
		shift = 16
	}
	d := rp.BaseBackoff << shift
	if d > rp.MaxBackoff || d <= 0 {
		d = rp.MaxBackoff
	}
	return d
}

// WithRetryPolicy overrides the run's shard-op retry policy.
func WithRetryPolicy(rp RetryPolicy) RunOption {
	return func(o *runOpts) { o.retry = rp }
}

// FaultStats reports how one run's fault handling executed. Request it
// with WithFaultStats; a clean run reports zeros except Attempts.
type FaultStats struct {
	// Attempts counts per-shard-op replica attempts (sharded runs).
	Attempts int64
	// Retries counts failed attempts that were re-run — replica
	// attempts and morsel task re-executions.
	Retries int64
	// Failovers counts attempts routed to a different replica after the
	// previous replica failed.
	Failovers int64
	// RecoveredPanics counts panics recovered inside the engine.
	RecoveredPanics int64
}

// WithFaultStats makes the run fill fs with its fault counters just
// before returning (error returns included).
func WithFaultStats(fs *FaultStats) RunOption {
	return func(o *runOpts) { o.faultStats = fs }
}

// faultTally accumulates one run's fault counters across workers. The
// root environment embeds the value and every worker shares it through
// the evalEnv.ftally pointer.
type faultTally struct {
	attempts  atomic.Int64
	retries   atomic.Int64
	failovers atomic.Int64
	panics    atomic.Int64
}

// replicaBreaker is the circuit-breaker state of one shard replica.
type replicaBreaker struct {
	consec   int // consecutive failures
	open     bool
	openedAt time.Time
	trips    int64
}

// breakerTripThreshold is the consecutive-failure count that opens a
// replica's breaker.
const breakerTripThreshold = 3

// defaultBreakerCooldown is how long an open breaker holds traffic off
// a replica before admitting a half-open probe.
const defaultBreakerCooldown = 250 * time.Millisecond

// ReplicaHealth tracks the per-replica circuit breakers of one
// ShardSet: consecutive failures trip a replica open, an open replica
// admits one half-open probe after the cooldown, and a success closes
// it again. Breakers steer replica selection, they never deny it — when
// nothing healthier remains a pick still returns an open replica (a
// forced probe), so a query only ever fails after actually attempting
// every replica. All methods are safe for concurrent use; ReplicaHealth
// is the only mutable state attached to an otherwise immutable set.
type ReplicaHealth struct {
	mu       sync.Mutex
	b        [][]replicaBreaker
	rr       []int // per-shard round-robin cursor
	trips    int64
	cooldown time.Duration
}

// NewReplicaHealth returns breaker state for shards × replicas, all
// closed.
func NewReplicaHealth(shards, replicas int) *ReplicaHealth {
	h := &ReplicaHealth{
		b:        make([][]replicaBreaker, shards),
		rr:       make([]int, shards),
		cooldown: defaultBreakerCooldown,
	}
	for s := range h.b {
		h.b[s] = make([]replicaBreaker, replicas)
	}
	return h
}

// SetCooldown overrides the half-open probe cooldown (tests and
// operational tuning).
func (h *ReplicaHealth) SetCooldown(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cooldown = d
}

// pick selects the replica of shard s for the next attempt, skipping
// replicas already failed by this op (tried). Preference order: closed
// breakers in round-robin order, then open breakers whose cooldown
// elapsed (the half-open probe), then the longest-open breaker (the
// forced probe). Returns -1 only when every replica was already tried.
func (h *ReplicaHealth) pick(s int, tried []bool, now time.Time) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	bs := h.b[s]
	n := len(bs)
	start := h.rr[s]
	h.rr[s] = (start + 1) % n
	for i := 0; i < n; i++ {
		r := (start + i) % n
		if !tried[r] && !bs[r].open {
			return r
		}
	}
	forced, oldest := -1, time.Time{}
	for r := range bs {
		if tried[r] || !bs[r].open {
			continue
		}
		if now.Sub(bs[r].openedAt) >= h.cooldown {
			return r
		}
		if forced < 0 || bs[r].openedAt.Before(oldest) {
			forced, oldest = r, bs[r].openedAt
		}
	}
	return forced
}

// ok records a successful attempt: the replica's breaker closes and its
// failure streak resets.
func (h *ReplicaHealth) ok(s, r int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := &h.b[s][r]
	b.consec, b.open = 0, false
}

// fail records a failed attempt: the streak grows, tripping the breaker
// open at the threshold; a failed probe re-arms the cooldown.
func (h *ReplicaHealth) fail(s, r int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := &h.b[s][r]
	b.consec++
	if b.open {
		b.openedAt = time.Now()
		return
	}
	if b.consec >= breakerTripThreshold {
		b.open = true
		b.openedAt = time.Now()
		b.trips++
		h.trips++
	}
}

// Trips returns the cumulative breaker trips across all replicas.
func (h *ReplicaHealth) Trips() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.trips
}

// BreakerInfo is one replica breaker's observable state (/stats).
type BreakerInfo struct {
	Shard               int    `json:"shard"`
	Replica             int    `json:"replica"`
	State               string `json:"state"` // "closed", "open", "half-open"
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Trips               int64  `json:"trips"`
}

// Snapshot returns every breaker's state, ordered by shard then
// replica.
func (h *ReplicaHealth) Snapshot() []BreakerInfo {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := time.Now()
	var out []BreakerInfo
	for s := range h.b {
		for r := range h.b[s] {
			b := h.b[s][r]
			state := "closed"
			if b.open {
				state = "open"
				if now.Sub(b.openedAt) >= h.cooldown {
					state = "half-open"
				}
			}
			out = append(out, BreakerInfo{
				Shard:               s,
				Replica:             r,
				State:               state,
				ConsecutiveFailures: b.consec,
				Trips:               b.trips,
			})
		}
	}
	return out
}

// mergeShardErrors folds per-worker shard-op errors into the run error:
// PartialFailureErrors from different shards merge into one naming all
// lost shards; any other error (cancellation, exhausted panic retries)
// wins outright.
func mergeShardErrors(workers []*evalEnv) error {
	var firstErr error
	var partial *PartialFailureError
	for _, w := range workers {
		if w.err == nil {
			continue
		}
		if pf, ok := w.err.(*PartialFailureError); ok {
			if partial == nil {
				partial = &PartialFailureError{}
			}
			partial.Shards = append(partial.Shards, pf.Shards...)
			continue
		}
		if firstErr == nil {
			firstErr = w.err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if partial != nil {
		sort.Ints(partial.Shards)
		return partial
	}
	return nil
}
