package sparql

import (
	"context"
	"errors"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/rdf"
)

// Distributed (sharded) evaluation. A dataset split into N shard graphs
// around one shared dictionary (rdf.NewGraphWithDictionary) executes
// prepared queries through (*Prepared).RunSharded exactly as a single
// graph would — byte-identical rows and order — because every merge
// happens in id space under two invariants:
//
//   - Shared dictionary: a TermID means the same term on every shard,
//     so rows from different shards join, deduplicate, and sort with
//     the single-graph code paths (joinRows, distinctRows, sortRows)
//     untouched.
//   - Global-position merge: each shard preserves the original relative
//     order of its triples, and ShardSet.Pos records every triple's
//     position in the full dataset's insertion order. Per-shard match
//     lists are therefore already sorted by global position, and a
//     deterministic k-way merge on that key reproduces the exact
//     candidate order a single-graph index scan would visit.
//
// Two routes exploit placement the way the survey says real systems
// should:
//
//   - Pushdown: when the WHERE clause is one BGP whose patterns all
//     share a single subject variable (a subject star) and the
//     placement co-locates every subject's triples on one shard
//     (ShardSet.SubjectColocated), the whole BGP evaluates on each
//     shard independently — no cross-shard join — and shard results
//     merge by the seed triple's global position. Soundness: every
//     triple of a result star shares the star's subject, so the star's
//     shard holds all of them and no other shard holds any.
//   - Scatter-gather: general queries scatter each compiled pattern to
//     the shards, gather the per-pattern matches in global order, and
//     fold them with the single-graph id-space hash joins (the eval.go
//     build/probe invariants), so OPTIONAL / UNION / FILTER and the
//     whole modifier pipeline run unchanged above the scatter.
//
// Both routes prune shards that cannot contribute: a shard whose
// indexes hold no candidates for a pattern (its predicate or class
// simply does not occur there — the vertical / semantic payoff) is
// skipped without scanning, and the skip is reported through
// ShardStats / ShardExplain.

// ShardSet describes a sharded dataset to the distributed executor. It
// is immutable once built (shard graphs must not be mutated), and safe
// for unlimited concurrent RunSharded calls.
type ShardSet struct {
	// Dict is the dictionary every shard encodes through.
	Dict *rdf.Dictionary
	// Views are the per-shard encoded views (warmed Graph.Encoded()).
	Views []*rdf.EncodedView
	// Stats are the whole dataset's statistics: with them the
	// distributed planner reproduces the single-graph plan exactly
	// (same selectivity estimates, same join order).
	Stats rdf.Stats
	// Pos maps every triple to its position in the full dataset's
	// insertion order — the merge key for deterministic gathers.
	Pos map[rdf.EncodedTriple]int32
	// SubjectColocated reports that the placement maps each subject's
	// triples to a single shard (the pushdown soundness condition).
	SubjectColocated bool

	// Replicas, when non-nil, holds every shard's replica views:
	// Replicas[s][r] is replica r of shard s, with Replicas[s][0] ==
	// Views[s]. All replicas of a shard encode the same triples in the
	// same order through the shared dictionary, so any replica yields
	// byte-identical scans — which is what makes failover invisible in
	// query results. Nil means one replica per shard (Views).
	Replicas [][]*rdf.EncodedView
	// Health carries the per-replica circuit breakers steering replica
	// selection. Nil disables breaker steering (replicas are tried in
	// index order). It is the set's only mutable field and is
	// internally synchronized.
	Health *ReplicaHealth
}

// ShardRoute identifies how the distributed executor ran a query.
type ShardRoute string

// The two execution routes.
const (
	RoutePushdown ShardRoute = "pushdown"
	RouteScatter  ShardRoute = "scatter-gather"
)

// ShardStats reports how one sharded run executed. Request it with
// WithShardStats.
type ShardStats struct {
	// Route is the route the query took.
	Route ShardRoute
	// Shards is the number of shards in the set.
	Shards int
	// ShardsTouched counts the shards the run actually scanned.
	ShardsTouched int
	// ShardsPruned counts the shards skipped because their indexes
	// could not contribute a candidate (Shards - ShardsTouched).
	ShardsPruned int
	// ScatterPatterns counts the triple patterns scattered across
	// shards (0 on the pushdown route).
	ScatterPatterns int
}

// ShardExplain reports, without executing, how a prepared query would
// run over a shard set.
type ShardExplain struct {
	Route         ShardRoute
	Shards        int
	ShardsTouched int
	ShardsPruned  int
	// Patterns is the number of triple patterns in the query.
	Patterns int
}

// WithShardStats makes a sharded run fill st with its execution report
// just before returning. Ignored by non-sharded runs.
func WithShardStats(st *ShardStats) RunOption {
	return func(o *runOpts) { o.shardStats = st }
}

// WithScatterOnly forces the scatter-gather route even when the query
// qualifies for pushdown — the benchmark baseline for measuring what
// placement-aware routing buys. Results are identical on both routes.
func WithScatterOnly() RunOption {
	return func(o *runOpts) { o.forceScatter = true }
}

// RunSharded evaluates the prepared query over a sharded dataset,
// returning exactly what (*Prepared).Run over the equivalent single
// graph returns — the same rows in the same order. Cancellation and
// RunOptions behave as in Run; WithParallelism additionally bounds how
// many shards are scanned concurrently.
func (p *Prepared) RunSharded(ctx context.Context, ss *ShardSet, opts ...RunOption) (*Results, error) {
	ro := resolveRunOpts(opts)
	return p.runShardedWith(ctx, ss, &ro)
}

func (p *Prepared) runShardedWith(ctx context.Context, ss *ShardSet, ro *runOpts) (*Results, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	d := p.newDistEnv(ctx, ss, ro)
	res, err := evaluate(d.env, p.q)
	ro.capture(d.env)
	ro.captureShard(d)
	return res, err
}

// RunShardedSolutions is RunSharded positioned for streaming, mirroring
// (*Prepared).RunSolutions: plain SELECT/ASK rows stay in id space with
// terms decoded on access.
func (p *Prepared) RunShardedSolutions(ctx context.Context, ss *ShardSet, opts ...RunOption) (*Solutions, error) {
	ro := resolveRunOpts(opts)
	if p.streamable() {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		d := p.newDistEnv(ctx, ss, &ro)
		defer ro.captureShard(d)
		return p.solutionsFromEnv(d.env, &ro)
	}
	res, err := p.runShardedWith(ctx, ss, &ro)
	if err != nil {
		return nil, err
	}
	return ResultsSolutions(res), nil
}

// ExplainSharded reports, without executing, which route the query
// would take over the shard set and how many shards its pattern
// constants can touch. The same candidate peeks drive the report and
// the executor's pruning, so the prediction is an upper bound on a
// subsequent run's touched shards: a run touches exactly these shards
// unless an intermediate result empties early, in which case it stops
// scattering and touches fewer.
func (p *Prepared) ExplainSharded(ss *ShardSet) ShardExplain {
	d := p.newDistEnv(nil, ss, &runOpts{parallelism: 1})
	defer d.env.close()
	ex := ShardExplain{Route: d.route, Shards: len(ss.Views)}
	touched := make([]bool, len(ss.Views))
	seq := 0
	var walk func(GraphPattern)
	walk = func(gp GraphPattern) {
		switch n := gp.(type) {
		case BGP:
			cps := d.planFor(seq, n)
			seq++
			ex.Patterns += len(cps)
			for s, view := range ss.Views {
				if d.route == RoutePushdown {
					if shardCovers(view, cps) {
						touched[s] = true
					}
					continue
				}
				for _, cp := range cps {
					if viewCandidateCount(view, cp) > 0 {
						touched[s] = true
						break
					}
				}
			}
		case Group:
			for _, part := range n.Parts {
				walk(part)
			}
		case Filter:
			walk(n.Inner)
		case Optional:
			walk(n.Left)
			walk(n.Right)
		case Union:
			walk(n.Left)
			walk(n.Right)
		}
	}
	walk(p.q.Where)
	for _, t := range touched {
		if t {
			ex.ShardsTouched++
		}
	}
	ex.ShardsPruned = ex.Shards - ex.ShardsTouched
	return ex
}

// distEnv is the driver state of one sharded run: the global evaluation
// environment (slot table, shared-dictionary term snapshot, global
// statistics, join arena) plus the shard set and the routing/pruning
// bookkeeping.
type distEnv struct {
	env     *evalEnv
	ss      *ShardSet
	route   ShardRoute
	touched []bool // shard s contributed at least one candidate scan
	scatter int    // patterns scattered across shards
	bgpSeq  int

	// Fault handling (replica.go): the run's injection plan (nil
	// outside chaos runs) and the shard-op retry policy.
	plan  *fault.Plan
	retry RetryPolicy

	// Tail-latency defense (health.go): non-nil arms hedged shard ops.
	hedge *HedgePolicy
}

// newDistEnv builds the driver environment of one sharded run. The
// global env carries no view — every index scan happens on a shard —
// but shares the query's slot table and the full dictionary snapshot,
// and routes BGP evaluation (and DESCRIBE resolution) through the
// shard hooks, so joins, filters, the modifier pipeline, and the whole
// evaluate/solutions machinery run the single-graph code unchanged.
func (p *Prepared) newDistEnv(ctx context.Context, ss *ShardSet, ro *runOpts) *distEnv {
	env := &evalEnv{
		terms:     ss.Dict.Terms(),
		slots:     p.slots,
		vars:      p.vars,
		stats:     ss.Stats,
		limitHint: p.limitHint,
		prep:      p,
	}
	env.ftally = &env.tally
	// Read the fault plan off the raw context: chaos plans also ride
	// uncancellable contexts, which env.ctx deliberately drops.
	env.fplan = fault.From(ctx)
	if ctx != nil && ctx.Done() != nil {
		env.ctx = ctx
	}
	env.configureParallel(ro)
	d := &distEnv{
		env:     env,
		ss:      ss,
		touched: make([]bool, len(ss.Views)),
		plan:    env.fplan,
		retry:   ro.retry.withDefaults(),
		hedge:   ro.hedge,
	}
	d.route = p.shardRoute(ss, ro.forceScatter)
	env.bgp = d.evalBGP
	env.describe = d.describeSharded
	return d
}

// shardRoute picks the execution route: pushdown when the WHERE clause
// is a single subject-star BGP and the placement co-locates subjects,
// scatter-gather otherwise.
func (p *Prepared) shardRoute(ss *ShardSet, forceScatter bool) ShardRoute {
	if forceScatter || !ss.SubjectColocated {
		return RouteScatter
	}
	if _, ok := p.subjectStarBGP(); !ok {
		return RouteScatter
	}
	return RoutePushdown
}

// subjectStarBGP returns the query's BGP when the WHERE clause is a
// single BGP whose patterns all share one subject variable — the shape
// whose evaluation pushes down whole to subject-co-located shards.
func (p *Prepared) subjectStarBGP() (BGP, bool) {
	if !isSoleBGP(p.q.Where) {
		return BGP{}, false
	}
	bgp, _ := p.q.BGPOf() // a sole BGP always flattens
	if len(bgp.Patterns) == 0 {
		return BGP{}, false
	}
	first := bgp.Patterns[0].S
	if !first.IsVar {
		return BGP{}, false
	}
	for _, tp := range bgp.Patterns[1:] {
		if !tp.S.IsVar || tp.S.Var != first.Var {
			return BGP{}, false
		}
	}
	return bgp, true
}

// captureShard fills the caller's ShardStats after a sharded run and,
// on a traced run, stamps the routing report onto the trace root.
func (o *runOpts) captureShard(d *distEnv) {
	if o.shardStats == nil && d.env.trace == nil {
		return
	}
	st := ShardStats{Route: d.route, Shards: len(d.ss.Views), ScatterPatterns: d.scatter}
	for _, t := range d.touched {
		if t {
			st.ShardsTouched++
		}
	}
	st.ShardsPruned = st.Shards - st.ShardsTouched
	if o.shardStats != nil {
		*o.shardStats = st
	}
	if d.env.trace != nil {
		root := d.env.trace.t.Root()
		root.SetStr("route", string(st.Route))
		root.SetInt("shards", int64(st.Shards))
		root.SetInt("shards_touched", int64(st.ShardsTouched))
		root.SetInt("shards_pruned", int64(st.ShardsPruned))
	}
}

// evalBGP evaluates one BGP over the shards: the pushdown route when
// the run qualified, otherwise per-pattern scatter folded with the
// single-graph join engine. The plan is compiled from the global
// statistics, so pattern order — and with it row order — is exactly
// the single-graph plan's.
func (d *distEnv) evalBGP(b BGP) []slotRow {
	seq := d.bgpSeq
	d.bgpSeq++
	cps := d.planFor(seq, b)
	// limitHint is only set when this BGP is the whole WHERE clause and
	// the modifiers keep exactly the leading rows. Each shard's output
	// is a prefix of the merged order, so a shard never needs to
	// produce more than the hint itself (LIMIT pushdown, per shard).
	max := d.env.limitHint
	if d.route == RoutePushdown && len(cps) > 0 {
		return d.pushdownBGP(cps, max)
	}
	env := d.env
	rows := []slotRow{env.emptyRow()}
	for _, cp := range cps {
		// The hint is only sound on the gather that directly emits the
		// final row sequence — a single-pattern BGP. Joins above a
		// truncated gather could need the dropped matches.
		scanMax := 0
		if len(cps) == 1 {
			scanMax = max
		}
		matches := d.scatterPattern(cp, scanMax)
		if env.err != nil {
			return nil
		}
		rows = env.joinRows(rows, matches)
		if env.err != nil {
			return nil
		}
		if len(rows) == 0 {
			break
		}
	}
	return rows
}

// planFor compiles (or recalls) the selectivity-ordered plan of the
// seq-th BGP against the shard set, caching on the Prepared exactly
// like the single-graph plan memo. Keying by ShardSet pointer is sound
// because shard sets are immutable once built.
func (d *distEnv) planFor(seq int, b BGP) []cPattern {
	if d.env.prep != nil {
		if cps := d.env.prep.cachedDistPlan(d.ss, seq); cps != nil {
			return cps
		}
	}
	cps := make([]cPattern, len(b.Patterns))
	for i, tp := range b.Patterns {
		cps[i] = d.compilePattern(tp)
		cps[i].src = i
	}
	cps = orderPatterns(cps, len(d.env.vars))
	if d.env.prep != nil {
		d.env.prep.storeDistPlan(d.ss, seq, cps)
	}
	return cps
}

// compilePattern mirrors evalEnv.compilePattern against the shard set:
// constants resolve through the shared dictionary and cardinalities sum
// across shards, so the estimate equals the single-graph estimate and
// orderPatterns reproduces the single-graph join order.
func (d *distEnv) compilePattern(tp TriplePattern) cPattern {
	compile := func(e TPElem) cElem {
		if e.IsVar {
			return cElem{isVar: true, slot: d.env.slots[e.Var]}
		}
		id, ok := d.ss.Dict.Lookup(e.Term)
		return cElem{id: id, ok: ok}
	}
	cp := cPattern{s: compile(tp.S), p: compile(tp.P), o: compile(tp.O)}
	collectPatternSlots(&cp)
	est := d.env.stats.Triples
	switch {
	case !cp.s.isVar && !cp.s.ok, !cp.p.isVar && !cp.p.ok, !cp.o.isVar && !cp.o.ok:
		est = 0
	default:
		if !cp.s.isVar {
			n := 0
			for _, v := range d.ss.Views {
				n += len(v.WithSubject(cp.s.id))
			}
			if n < est {
				est = n
			}
		}
		if !cp.o.isVar {
			n := 0
			for _, v := range d.ss.Views {
				n += len(v.WithObject(cp.o.id))
			}
			if n < est {
				est = n
			}
		}
		if !cp.p.isVar {
			if n := d.env.stats.PredicateCounts[tp.P.Term.Value]; n < est {
				est = n
			}
		}
	}
	cp.est = est
	return cp
}

// viewCandidateCount returns the size of the smallest index view a
// pattern's constants select on one shard — the executor's pruning
// peek: zero means the shard cannot contribute a single candidate.
func viewCandidateCount(view *rdf.EncodedView, cp cPattern) int {
	if (!cp.s.isVar && !cp.s.ok) || (!cp.p.isVar && !cp.p.ok) || (!cp.o.isVar && !cp.o.ok) {
		return 0
	}
	n := view.Len()
	if !cp.s.isVar {
		n = len(view.WithSubject(cp.s.id))
	}
	if !cp.o.isVar {
		if m := len(view.WithObject(cp.o.id)); m < n {
			n = m
		}
	}
	if !cp.p.isVar {
		if m := len(view.WithPredicate(cp.p.id)); m < n {
			n = m
		}
	}
	return n
}

// shardCovers reports whether a shard holds candidates for every
// pattern of a conjunctive plan — the pushdown prune: a BGP is a
// conjunction, so one empty pattern empties the shard's contribution.
func shardCovers(view *rdf.EncodedView, cps []cPattern) bool {
	for i := range cps {
		if viewCandidateCount(view, cps[i]) == 0 {
			return false
		}
	}
	return true
}

// forEachShard runs fn(s, w) for every shard where pick(s) reports
// work, marking those shards touched — concurrently up to the run's
// parallelism, serially at width 1. Each invocation gets a private
// worker environment; fn routes itself to a replica view through
// runShardOp. Worker errors latch into the global env, with
// PartialFailureErrors from different shards merged into one naming
// every lost shard.
func (d *distEnv) forEachShard(pick func(s int) bool, fn func(s int, w *evalEnv)) {
	env := d.env
	width := 1
	if env.par != nil {
		width = env.par.n
	}
	sem := make(chan struct{}, width)
	var wg sync.WaitGroup
	workers := make([]*evalEnv, 0, len(d.ss.Views))
	for s := range d.ss.Views {
		if env.err != nil || (env.par != nil && env.par.stop.Load()) {
			break
		}
		if !pick(s) {
			continue
		}
		d.touched[s] = true
		w := env.workerEnv()
		workers = append(workers, w)
		if width == 1 {
			fn(s, w)
			if w.err != nil {
				break
			}
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(s int, w *evalEnv) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(s, w)
		}(s, w)
	}
	wg.Wait()
	if merr := mergeShardErrors(workers); merr != nil && env.err == nil {
		env.err = merr
	}
	if env.par != nil && env.err == nil {
		// stop may have been raised by cancellation or by a morsel
		// task's exhausted panic retries; surface whichever happened.
		if ferr := env.par.failure(); ferr != nil {
			env.err = ferr
		} else if env.par.stop.Load() && env.ctx != nil {
			if cerr := env.ctx.Err(); cerr != nil {
				env.err = cerr
			}
		}
	}
}

// replicaViews returns the replica views of shard s ([0] is the
// primary, == Views[s]).
func (d *distEnv) replicaViews(s int) []*rdf.EncodedView {
	if d.ss.Replicas != nil {
		return d.ss.Replicas[s]
	}
	return d.ss.Views[s : s+1]
}

// pickReplica selects the next replica for an op on shard s, through
// the breakers and straggler scores when the set carries health state
// and in index order otherwise. -1 means every replica was already
// tried this pass.
func pickReplica(h *ReplicaHealth, s int, tried []bool) int {
	if h != nil {
		return h.pick(s, tried)
	}
	for r, t := range tried {
		if !t {
			return r
		}
	}
	return -1
}

// shardOp is one per-shard operation body — a pattern scan or a
// pushdown BGP — run against a worker environment whose view is
// already pointed at the serving replica. Returning the output buffers
// (instead of writing shared state) is what lets hedged attempts race:
// racing copies compute into private buffers, and only the winning
// attempt's return value is committed by runShardOp's caller.
type shardOp func(w *evalEnv) ([]slotRow, []int32)

// numTried counts the replicas already failed this pass.
func numTried(tried []bool) int {
	n := 0
	for _, t := range tried {
		if t {
			n++
		}
	}
	return n
}

// minAttemptSlice floors the per-attempt deadline slice.
const minAttemptSlice = time.Millisecond

// attemptSlice bounds one replica attempt's share of the remaining
// context deadline: the remainder divided by the attempts the retry
// budget still allows, floored at minAttemptSlice — so one hung
// replica cannot consume the whole budget before failover is even
// attempted. 0 disables slicing: no deadline, or this is the last
// possible attempt (which deserves the full remainder).
func (d *distEnv) attemptSlice(attemptsLeft int) time.Duration {
	ctx := d.env.ctx
	if ctx == nil || attemptsLeft <= 1 {
		return 0
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	remaining := time.Until(dl)
	if remaining <= 0 {
		return 0 // already expired; the attempt fails fast on its own
	}
	slice := remaining / time.Duration(attemptsLeft)
	if slice < minAttemptSlice {
		slice = minAttemptSlice
	}
	return slice
}

// fatalAttemptErr reports whether an attempt error is a query-level
// verdict, never retried on another replica: cancellation, budget
// exhaustion (retrying would charge the same bytes against the same
// shared budget), or the run's own deadline having expired. A
// DeadlineExceeded from a sliced attempt whose parent deadline is
// still live is a straggler verdict, not a query one — it fails over.
func (d *distEnv) fatalAttemptErr(err error) bool {
	var be *BudgetError
	if errors.As(err, &be) || errors.Is(err, context.Canceled) {
		return true
	}
	if errors.Is(err, context.DeadlineExceeded) {
		ctx := d.env.ctx
		return ctx == nil || ctx.Err() != nil
	}
	return false
}

// runShardOp executes one per-shard operation (a pattern scan or a
// pushdown BGP) fault-tolerantly and returns its output: the op runs
// against a replica of shard s chosen by the circuit breakers and
// straggler scores, with injected or returned failures — and recovered
// panics — failing over immediately to the next replica; full passes
// over the replica set are separated by capped exponential backoff
// charged against the context's remaining deadline, and each attempt
// is granted a bounded slice of that deadline (attemptSlice). With a
// hedge policy armed (WithHedge) and more than one replica, an attempt
// that outlives the hedge delay races a second copy on the next-best
// replica — first success wins, the loser is cancelled through its
// taskStop claim. The op gives up, latching a PartialFailureError
// naming the shard into the worker's error, only after every replica
// failed in retry.Cycles consecutive passes. Cancellation is never
// retried.
//
// Failover and hedging are invisible in results because every replica
// of a shard yields byte-identical scans (ShardSet.Replicas) and
// exactly one attempt's returned buffers are committed.
func (d *distEnv) runShardOp(s, class int, w *evalEnv, op shardOp) ([]slotRow, []int32) {
	views := d.replicaViews(s)
	if d.plan == nil && len(views) == 1 {
		// Nothing to inject and nothing to fail over to — but panics
		// are still isolated into the error latch: a crashing scan must
		// kill the query, not the process serving it. This is the
		// disarmed fast path; it allocates nothing beyond the op.
		rows, tags, err := d.attemptShardOp(w, views[0], s, -1, op)
		if err != nil {
			w.err = err
			return nil, nil
		}
		return rows, tags
	}
	h := d.ss.Health
	hedgeWait := time.Duration(-1) // < 0: hedging off
	if d.hedge != nil && len(views) > 1 {
		if hedgeWait = d.hedge.Delay; hedgeWait <= 0 {
			hedgeWait = h.hedgeAfter(class)
		}
	}
	tried := make([]bool, len(views))
	lastFailed := -1
	for cycle := 0; ; {
		r := pickReplica(h, s, tried)
		if r < 0 {
			// Every replica failed this pass.
			cycle++
			if cycle >= d.retry.Cycles {
				w.err = &PartialFailureError{Shards: []int{s}}
				return nil, nil
			}
			if err := d.backoff(cycle); err != nil {
				w.err = err
				return nil, nil
			}
			for i := range tried {
				tried[i] = false
			}
			continue
		}
		attemptsLeft := (d.retry.Cycles-cycle)*len(views) - numTried(tried)
		if hedgeWait >= 0 {
			rows, tags, done := d.racedAttempt(w, views, s, r, class, attemptsLeft, tried, &lastFailed, hedgeWait, op)
			if done {
				return rows, tags
			}
			continue
		}
		w.ftally.attempts.Add(1)
		if lastFailed >= 0 && r != lastFailed {
			w.ftally.failovers.Add(1)
		}
		start := time.Now()
		rows, tags, err := d.attemptSliced(w, views[r], s, r, attemptsLeft, op)
		if err == nil {
			if h != nil {
				dur := time.Since(start)
				h.ok(s, r, dur)
				h.noteOp(class, dur)
			}
			return rows, tags
		}
		if d.fatalAttemptErr(err) {
			w.err = err
			return nil, nil
		}
		if h != nil {
			h.fail(s, r)
		}
		w.ftally.retries.Add(1)
		tried[r] = true
		lastFailed = r
	}
}

// attemptSliced runs one replica attempt under its deadline slice.
// Unsliced attempts (no deadline, or the final attempt) run directly
// in w, exactly as before slicing existed; sliced ones run in a
// derived environment carrying the sliced context and no parRun — so a
// slice expiring mid-scan stops only this attempt instead of raising
// the run-wide stop latch.
func (d *distEnv) attemptSliced(w *evalEnv, view *rdf.EncodedView, s, r, attemptsLeft int, op shardOp) ([]slotRow, []int32, error) {
	slice := d.attemptSlice(attemptsLeft)
	if slice <= 0 {
		return d.attemptShardOp(w, view, s, r, op)
	}
	actx, cancel := context.WithTimeout(d.env.ctx, slice)
	defer cancel()
	ae := w.workerEnv()
	ae.ctx = actx
	ae.par = nil
	return d.attemptShardOp(ae, view, s, r, op)
}

// racedAttempt runs one hedged pass of a shard op: the primary attempt
// launches immediately, and if the hedge delay elapses first, a second
// copy launches on the next-best replica not already racing or failed.
// The first success wins and is returned (done=true); the loser is
// cancelled through its taskStop claim and drains into the buffered
// channel without being read. A fatal error also ends the op
// (done=true, with w.err latched). When every racing attempt fails
// non-fatally the pass reports done=false and the caller's retry loop
// picks the next replica.
func (d *distEnv) racedAttempt(w *evalEnv, views []*rdf.EncodedView, s, primary, class, attemptsLeft int, tried []bool, lastFailed *int, hedgeWait time.Duration, op shardOp) ([]slotRow, []int32, bool) {
	h := d.ss.Health
	type attemptRes struct {
		rows []slotRow
		tags []int32
		err  error
		r    int
		dur  time.Duration
	}
	resCh := make(chan attemptRes, 2) // buffered: a loser's send never blocks
	var stops []*atomic.Bool
	launch := func(r int) {
		w.ftally.attempts.Add(1)
		if *lastFailed >= 0 && r != *lastFailed {
			w.ftally.failovers.Add(1)
		}
		stop := &atomic.Bool{}
		stops = append(stops, stop)
		ae := w.workerEnv()
		ae.par = nil
		ae.taskStop = stop
		var cancel context.CancelFunc
		if slice := d.attemptSlice(attemptsLeft); slice > 0 {
			ae.ctx, cancel = context.WithTimeout(d.env.ctx, slice)
		}
		go func() {
			if cancel != nil {
				defer cancel()
			}
			start := time.Now()
			rows, tags, err := d.attemptShardOp(ae, views[r], s, r, op)
			resCh <- attemptRes{rows: rows, tags: tags, err: err, r: r, dur: time.Since(start)}
		}()
	}
	racing := make([]bool, len(views))
	racing[primary] = true
	launch(primary)
	timer := time.NewTimer(hedgeWait)
	defer timer.Stop()
	inFlight, hedged := 1, false
	for {
		select {
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true
			avoid := make([]bool, len(views))
			for i := range avoid {
				avoid[i] = tried[i] || racing[i]
			}
			if r2 := pickReplica(h, s, avoid); r2 >= 0 {
				racing[r2] = true
				w.ftally.hedges.Add(1)
				launch(r2)
				inFlight++
			}
		case res := <-resCh:
			inFlight--
			if res.err == nil {
				if h != nil {
					h.ok(s, res.r, res.dur)
					h.noteOp(class, res.dur)
				}
				if res.r != primary {
					w.ftally.hedgeWins.Add(1)
				}
				for _, st := range stops {
					st.Store(true)
				}
				return res.rows, res.tags, true
			}
			if d.fatalAttemptErr(res.err) {
				w.err = res.err
				for _, st := range stops {
					st.Store(true)
				}
				return nil, nil, true
			}
			if h != nil {
				h.fail(s, res.r)
			}
			w.ftally.retries.Add(1)
			tried[res.r] = true
			*lastFailed = res.r
			if inFlight > 0 {
				continue // the other copy may still win this pass
			}
			return nil, nil, false
		}
	}
}

// attemptShardOp runs op once against one replica's view, converting
// injected faults (the scatter and replica points) and panics into
// returned errors. A latched worker error (cancellation observed
// mid-scan) surfaces as the attempt's error; successful attempts
// return the op's private output buffers.
func (d *distEnv) attemptShardOp(w *evalEnv, view *rdf.EncodedView, s, replica int, op shardOp) (rows []slotRow, tags []int32, err error) {
	defer func() {
		if r := recover(); r != nil {
			if w.ftally != nil {
				w.ftally.panics.Add(1)
			}
			rows, tags = nil, nil
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if d.plan != nil && replica >= 0 {
		if e := d.plan.Hit(fault.PointScatter); e != nil {
			return nil, nil, e
		}
		if e := d.plan.Hit(fault.ReplicaPoint(s, replica)); e != nil {
			return nil, nil, e
		}
	}
	w.err = nil
	w.view = view
	rows, tags = op(w)
	if w.err != nil {
		return nil, nil, w.err
	}
	return rows, tags, nil
}

// backoff sleeps the capped exponential delay before retry pass
// cycle+1, charged against the context's remaining deadline: when the
// budget cannot cover the delay the op stops waiting and reports the
// deadline instead of sleeping through it.
func (d *distEnv) backoff(cycle int) error {
	dur := d.retry.backoffFor(cycle)
	ctx := d.env.ctx
	if ctx == nil {
		time.Sleep(dur)
		return nil
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= dur {
		return context.DeadlineExceeded
	}
	t := time.NewTimer(dur)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// scatterPattern gathers one pattern's full match set from every shard
// that can contribute, merged by global triple position — exactly the
// rows, in exactly the order, a single-graph scan of the pattern would
// produce. The gathered rows feed the global id-space hash joins.
// max > 0 caps each shard's scan (LIMIT pushdown): the merged leading
// max rows draw only from per-shard prefixes of at most max rows.
func (d *distEnv) scatterPattern(cp cPattern, max int) []slotRow {
	d.scatter++
	env := d.env
	sp := env.span("scatter")
	defer env.endSpan(sp)
	var retries0, failovers0 int64
	if sp != nil {
		sp.SetInt("pattern", int64(cp.src))
		sp.SetInt("est", int64(cp.est))
		// Scatters run one at a time on the driver, so the run-tally
		// deltas across this op are exactly its own retries/failovers.
		retries0 = env.ftally.retries.Load()
		failovers0 = env.ftally.failovers.Load()
	}
	nsh := len(d.ss.Views)
	outs := make([][]slotRow, nsh)
	tags := make([][]int32, nsh)
	scanned := 0
	// Pruning peeks at the primary view; replicas hold identical
	// triples, so the peek is valid for whichever replica serves.
	d.forEachShard(
		func(s int) bool {
			if viewCandidateCount(d.ss.Views[s], cp) == 0 {
				return false
			}
			scanned++
			return true
		},
		func(s int, w *evalEnv) {
			outs[s], tags[s] = d.runShardOp(s, opClassScan, w, func(w *evalEnv) ([]slotRow, []int32) {
				return scanShard(w, cp, d.ss.Pos, max)
			})
		})
	if d.env.err != nil {
		return nil
	}
	if sp != nil {
		sp.SetInt("shards_scanned", int64(scanned))
		for s := range outs {
			if len(outs[s]) > 0 {
				sp.SetInt("shard_"+strconv.Itoa(s)+"_rows", int64(len(outs[s])))
			}
		}
		if n := env.ftally.retries.Load() - retries0; n > 0 {
			sp.SetInt("retries", n)
		}
		if n := env.ftally.failovers.Load() - failovers0; n > 0 {
			sp.SetInt("failovers", n)
		}
	}
	merged := mergeTagged(d.env, outs, tags)
	sp.SetInt("rows", int64(len(merged)))
	return merged
}

// scanShard scans one shard for a pattern's matches from the empty row,
// returning each match row with its global triple position. The shard
// preserves dataset insertion order, so the returned tags ascend.
// max > 0 stops the scan once that many rows exist.
func scanShard(w *evalEnv, cp cPattern, pos map[rdf.EncodedTriple]int32, max int) ([]slotRow, []int32) {
	empty := w.emptyRow()
	scratch := w.emptyRow()
	ps := w.preparePatternScan(cp, empty)
	if ps.miss {
		return nil, nil
	}
	var rows []slotRow
	var tags []int32
	for _, t := range ps.candidates {
		if w.interrupted() {
			return nil, nil
		}
		if !ps.matches(t) {
			continue
		}
		if row, ok := bindTriple(w, cp, t, empty, scratch); ok {
			rows = append(rows, row)
			tags = append(tags, pos[t])
			if max > 0 && len(rows) >= max {
				break
			}
		}
	}
	return rows, tags
}

// bindTriple extends base by binding cp's variable positions to t's
// ids, enforcing consistency for variables repeated within the pattern.
// scratch is clobbered.
func bindTriple(w *evalEnv, cp cPattern, t rdf.EncodedTriple, base, scratch slotRow) (slotRow, bool) {
	copy(scratch, base)
	for _, bind := range [3]struct {
		e  cElem
		id rdf.TermID
	}{{cp.s, t.S}, {cp.p, t.P}, {cp.o, t.O}} {
		if !bind.e.isVar {
			continue
		}
		if cur := scratch[bind.e.slot]; cur == unboundID {
			scratch[bind.e.slot] = bind.id
		} else if cur != bind.id {
			return nil, false
		}
	}
	return w.newRow(scratch), true
}

// pushdownBGP evaluates the whole (subject-star) BGP on each covering
// shard independently and merges shard results by the seed triple's
// global position. Shards missing candidates for any pattern are
// pruned without scanning. max > 0 caps each shard's output (LIMIT
// pushdown, sound because merged leading rows draw from per-shard
// prefixes).
func (d *distEnv) pushdownBGP(cps []cPattern, max int) []slotRow {
	env := d.env
	sp := env.span("pushdown")
	defer env.endSpan(sp)
	if sp != nil {
		sp.SetInt("patterns", int64(len(cps)))
	}
	nsh := len(d.ss.Views)
	outs := make([][]slotRow, nsh)
	tags := make([][]int32, nsh)
	covering := 0
	d.forEachShard(
		func(s int) bool {
			if !shardCovers(d.ss.Views[s], cps) {
				return false
			}
			covering++
			return true
		},
		func(s int, w *evalEnv) {
			outs[s], tags[s] = d.runShardOp(s, opClassPushdown, w, func(w *evalEnv) ([]slotRow, []int32) {
				return pushdownShard(w, cps, d.ss.Pos, max)
			})
		})
	if d.env.err != nil {
		return nil
	}
	if sp != nil {
		sp.SetInt("shards_covering", int64(covering))
		for s := range outs {
			if len(outs[s]) > 0 {
				sp.SetInt("shard_"+strconv.Itoa(s)+"_rows", int64(len(outs[s])))
			}
		}
	}
	merged := mergeTagged(d.env, outs, tags)
	sp.SetInt("rows", int64(len(merged)))
	return merged
}

// pushdownShard runs the full pattern-at-a-time BGP loop against one
// shard's view, tagging every result row with the global position of
// its seed candidate. Within one seed the extension order is the
// shard's insertion order — the same relative order the single graph's
// indexes hold — so rows within a tag are already in single-graph
// order, and tags ascend across the list. max > 0 stops the loop once
// that many rows exist (the last seed may overshoot; callers truncate).
func pushdownShard(w *evalEnv, cps []cPattern, pos map[rdf.EncodedTriple]int32, max int) ([]slotRow, []int32) {
	empty := w.emptyRow()
	scratch := w.emptyRow()
	ps := w.preparePatternScan(cps[0], empty)
	if ps.miss {
		return nil, nil
	}
	var rows []slotRow
	var tags []int32
	var cur, next []slotRow
	for _, t := range ps.candidates {
		if w.interrupted() {
			return nil, nil
		}
		if !ps.matches(t) {
			continue
		}
		seed, ok := bindTriple(w, cps[0], t, empty, scratch)
		if !ok {
			continue
		}
		cur = append(cur[:0], seed)
		for _, cp := range cps[1:] {
			next = next[:0]
			for _, r := range cur {
				next = w.matchPattern(cp, r, scratch, next)
				if w.err != nil {
					return nil, nil
				}
			}
			cur, next = next, cur
			if len(cur) == 0 {
				break
			}
		}
		if len(cur) == 0 {
			continue
		}
		tag := pos[t]
		for _, r := range cur {
			rows = append(rows, r)
			tags = append(tags, tag)
		}
		if max > 0 && len(rows) >= max {
			break
		}
	}
	return rows, tags
}

// mergeTagged k-way merges per-shard row lists by their ascending
// global-position tags, charging the gather buffer against the run's
// budget. A triple lives on exactly one shard, so tags never collide
// across lists and the merge is total and deterministic.
func mergeTagged(env *evalEnv, outs [][]slotRow, tags [][]int32) []slotRow {
	total := 0
	nonEmpty := -1
	lists := 0
	for s, o := range outs {
		total += len(o)
		if len(o) > 0 {
			nonEmpty = s
			lists++
		}
	}
	if total == 0 {
		return nil
	}
	if lists == 1 {
		return outs[nonEmpty]
	}
	env.chargeRowBatch(total, stageGather)
	if env.err != nil { // over budget: skip the gather allocation
		return nil
	}
	sp := env.span("gather")
	defer env.endSpan(sp)
	if sp != nil {
		sp.SetInt("lists", int64(lists))
		sp.SetInt("rows", int64(total))
	}
	merged := make([]slotRow, 0, total)
	idx := make([]int, len(outs))
	for len(merged) < total {
		best := -1
		var bestTag int32
		for s := range outs {
			if idx[s] >= len(outs[s]) {
				continue
			}
			if t := tags[s][idx[s]]; best < 0 || t < bestTag {
				best, bestTag = s, t
			}
		}
		merged = append(merged, outs[best][idx[best]])
		idx[best]++
	}
	return merged
}

// describeSharded mirrors describeResources over the shard graphs: the
// target resources' triples gather from every shard and merge by
// global position, reproducing the single-graph description order.
func (d *distEnv) describeSharded(q *Query, rows []Binding) *Results {
	targets := map[rdf.Term]bool{}
	var order []rdf.Term
	add := func(t rdf.Term) {
		if t.IsLiteral() || targets[t] {
			return
		}
		targets[t] = true
		order = append(order, t)
	}
	for _, el := range q.Describe {
		if !el.IsVar {
			add(el.Term)
			continue
		}
		for _, b := range rows {
			if t, ok := b[el.Var]; ok {
				add(t)
			}
		}
	}
	res := &Results{IsGraph: true}
	seen := map[rdf.Triple]bool{}
	for _, t := range order {
		id, ok := d.ss.Dict.Lookup(t)
		if !ok {
			continue
		}
		type posTriple struct {
			pos int32
			tr  rdf.Triple
		}
		var found []posTriple
		for _, view := range d.ss.Views {
			for _, e := range view.WithSubject(id) {
				tr, err := d.ss.Dict.DecodeTriple(e)
				if err != nil {
					continue
				}
				found = append(found, posTriple{pos: d.ss.Pos[e], tr: tr})
			}
		}
		// Insertion-sort by global position (descriptions are small).
		for i := 1; i < len(found); i++ {
			for j := i; j > 0 && found[j].pos < found[j-1].pos; j-- {
				found[j], found[j-1] = found[j-1], found[j]
			}
		}
		for _, ft := range found {
			if !seen[ft.tr] {
				seen[ft.tr] = true
				res.Triples = append(res.Triples, ft.tr)
			}
		}
	}
	return res
}

// collectPatternSlots fills cp.slots with the distinct variable slots
// of the compiled pattern (shared by the single-graph and sharded
// compilers).
func collectPatternSlots(cp *cPattern) {
	for _, e := range [3]cElem{cp.s, cp.p, cp.o} {
		if !e.isVar {
			continue
		}
		dup := false
		for _, s := range cp.slots {
			if s == e.slot {
				dup = true
				break
			}
		}
		if !dup {
			cp.slots = append(cp.slots, e.slot)
		}
	}
}
