package sparql

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/rdf"
)

// parTestGraph builds n subjects with a unique name, an 8-way tied
// age, and (for every third subject) a knows edge — enough rows to
// push seed scans and both hash-join build sides over the parallel
// threshold, with sparse predicates to exercise OPTIONAL pass-through.
func parTestGraph(n int) *rdf.Graph {
	ts := make([]rdf.Triple, 0, 3*n)
	name := rdf.NewIRI("http://ex/name")
	age := rdf.NewIRI("http://ex/age")
	knows := rdf.NewIRI("http://ex/knows")
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://ex/s%d", i))
		ts = append(ts,
			rdf.Triple{S: s, P: name, O: rdf.NewLiteral(fmt.Sprintf("n%05d", i))},
			rdf.Triple{S: s, P: age, O: rdf.NewTypedLiteral(fmt.Sprint(20+i%8), rdf.XSDInteger)},
		)
		if i%3 == 0 {
			ts = append(ts, rdf.Triple{S: s, P: knows, O: rdf.NewIRI(fmt.Sprintf("http://ex/s%d", (i+1)%n))})
		}
	}
	return rdf.NewGraph(ts)
}

// TestParallelRunDeterminism pins the morsel contract: for every query
// shape the evaluator parallelizes (seed scans, build-right and
// build-left hash joins and OPTIONALs, UNION, top-K, LIMIT pushdown),
// a Run at parallelism 1, 4, and 16 must return the same rows in the
// same order. Run under -race this also exercises the worker pool's
// sharing discipline.
func TestParallelRunDeterminism(t *testing.T) {
	g := parTestGraph(8192)
	queries := []string{
		// Seed scan + serial extension.
		`SELECT ?s ?n ?a WHERE { ?s <http://ex/name> ?n . ?s <http://ex/age> ?a }`,
		// Group join, equal sides: build-right parallel probe.
		`SELECT * WHERE { { ?s <http://ex/name> ?n } { ?s <http://ex/age> ?a } }`,
		// Group join, small left: build-left parallel scatter probe.
		`SELECT * WHERE { { ?s <http://ex/knows> ?k } { ?s <http://ex/age> ?a } }`,
		// OPTIONAL, big left: build-right probe with pass-through rows.
		`SELECT * WHERE { { ?s <http://ex/name> ?n } OPTIONAL { ?s <http://ex/knows> ?k } }`,
		// OPTIONAL, big right: build-left scatter with pass-through.
		`SELECT * WHERE { { ?s <http://ex/knows> ?k } OPTIONAL { ?s <http://ex/age> ?a } }`,
		// UNION (shared batches) + FILTER compaction above it.
		`SELECT ?s ?v WHERE { { { ?s <http://ex/name> ?v } UNION { ?s <http://ex/age> ?v } } FILTER(?v != "n00003") }`,
		// ORDER BY + LIMIT: bounded top-K over tied keys.
		`SELECT ?s ?a WHERE { ?s <http://ex/age> ?a } ORDER BY ?a DESC(?s) LIMIT 17 OFFSET 5`,
		// LIMIT pushdown without ORDER BY: morsel short-circuit.
		`SELECT ?s ?n WHERE { ?s <http://ex/name> ?n } LIMIT 3000 OFFSET 100`,
		`ASK { ?s <http://ex/knows> ?k }`,
	}
	for qi, text := range queries {
		prep, err := Prepare(text)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		var base *Results
		for _, par := range []int{1, 4, 16} {
			res, err := prep.Run(context.Background(), g, WithParallelism(par))
			if err != nil {
				t.Fatalf("query %d par %d: %v", qi, par, err)
			}
			if base == nil {
				base = res
				continue
			}
			if res.IsAsk != base.IsAsk || res.Ask != base.Ask {
				t.Fatalf("query %d par %d: ASK answer diverged", qi, par)
			}
			a, b := base.OrderedCanonical(), res.OrderedCanonical()
			if len(a) != len(b) {
				t.Fatalf("query %d par %d: %d rows, want %d", qi, par, len(b), len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("query %d par %d: row %d = %q, want %q", qi, par, i, b[i], a[i])
				}
			}
		}
	}
}

// TestParallelRunReportsStats checks that a parallel run over morsel-
// sized inputs actually dispatches morsels and reports them, and that
// a serial run reports none.
func TestParallelRunReportsStats(t *testing.T) {
	g := parTestGraph(8192)
	prep := MustPrepare(t, `SELECT * WHERE { { ?s <http://ex/name> ?n } { ?s <http://ex/age> ?a } }`)
	var rs RunStats
	if _, err := prep.Run(context.Background(), g, WithParallelism(4), WithRunStats(&rs)); err != nil {
		t.Fatal(err)
	}
	if rs.Parallelism != 4 || rs.ParallelOps == 0 || rs.Morsels == 0 {
		t.Fatalf("parallel run stats = %+v, want parallelism 4 and nonzero ops/morsels", rs)
	}
	if _, err := prep.Run(context.Background(), g, WithParallelism(1), WithRunStats(&rs)); err != nil {
		t.Fatal(err)
	}
	if rs.Parallelism != 1 || rs.ParallelOps != 0 || rs.Morsels != 0 {
		t.Fatalf("serial run stats = %+v, want no morsel dispatch", rs)
	}
}

// TestLimitPushdownShortCircuit checks that LIMIT without ORDER BY
// stops morsel dispatch early: a big seed scan with a small-enough
// LIMIT must dispatch well under the full morsel count, and still
// return exactly the leading rows the serial evaluator would.
func TestLimitPushdownShortCircuit(t *testing.T) {
	g := parTestGraph(1 << 15)
	limited := MustPrepare(t, `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n } LIMIT 2000`)
	var rs RunStats
	res, err := limited.Run(context.Background(), g, WithParallelism(4), WithRunStats(&rs))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2000 {
		t.Fatalf("limited run returned %d rows, want 2000", len(res.Rows))
	}
	fullMorsels := (1<<15 + morselSize - 1) / morselSize
	if rs.Morsels == 0 || rs.Morsels >= int64(fullMorsels) {
		t.Fatalf("limited run dispatched %d morsels, want 0 < n < %d (short-circuit)", rs.Morsels, fullMorsels)
	}
	full, err := limited.Run(context.Background(), g, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	a, b := full.OrderedCanonical(), res.OrderedCanonical()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("short-circuited row %d diverged from serial", i)
		}
	}
}

// TestParallelRunCancelMidMorsel cancels a high-fanout parallel hash
// join mid-probe: the first worker to observe the deadline must latch
// the stop flag across the pool and Run must return the context error.
func TestParallelRunCancelMidMorsel(t *testing.T) {
	// 4096 subjects x 16 tags: the self-join produces 4096*256 ≈ 1M
	// merged rows, far more work than the 1ms budget.
	n, fan := 4096, 16
	ts := make([]rdf.Triple, 0, n*fan)
	tag := rdf.NewIRI("http://ex/tag")
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://ex/s%d", i))
		for j := 0; j < fan; j++ {
			ts = append(ts, rdf.Triple{S: s, P: tag, O: rdf.NewLiteral(fmt.Sprintf("t%d", j))})
		}
	}
	g := rdf.NewGraph(ts)
	g.Encoded()
	g.Stats()
	prep := MustPrepare(t, `SELECT * WHERE { { ?s <http://ex/tag> ?x } { ?s <http://ex/tag> ?y } }`)

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := prep.Run(ctx, g, WithParallelism(8))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = (%v, %v), want deadline exceeded", res, err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// The pool must shut down cleanly and the Prepared stay reusable.
	// (RunSolutions keeps the 1M rows in id space — no decode.)
	sol, err := prep.RunSolutions(context.Background(), g, WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if want := n * fan * fan; sol.Len() != want {
		t.Fatalf("post-cancel run returned %d rows, want %d", sol.Len(), want)
	}
}

// TestCancelDuringTopKReturnsError pins the error path of the bounded
// heap: when cancellation is first observed inside topKRows' candidate
// scan (the amortized poll crosses its 1024-tick boundary there), the
// evaluation must surface ctx.Err() instead of returning a silently
// partial top-K. The graph is sized so the seed scan spends 900 ticks
// (no poll fires) and the heap scan crosses tick 1024.
func TestCancelDuringTopKReturnsError(t *testing.T) {
	g := parTestGraph(900)
	q := MustParse(`SELECT ?s ?a WHERE { ?s <http://ex/age> ?a } ORDER BY ?a LIMIT 10`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env := newEvalEnv(q, g)
	env.ctx = ctx // bypass Run's up-front ctx.Err() check
	res, err := evaluate(env, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("evaluate = (%v, %v), want context.Canceled", res, err)
	}
}

// MustPrepare is a test helper.
func MustPrepare(t testing.TB, text string) *Prepared {
	t.Helper()
	p, err := Prepare(text)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSortRowsTopK pins the bounded-heap ORDER BY+LIMIT path against
// the stable full sort it replaces: ties resolve by original row
// order, DESC keys invert, OFFSET folds into K, and out-of-range
// offsets behave exactly as before.
func TestSortRowsTopK(t *testing.T) {
	g := parTestGraph(256) // ages are 8-way ties: stability is load-bearing
	cases := []struct {
		name    string
		limited string
		full    string
		lo, hi  int // the slice of the full ordering the limit keeps
	}{
		{"asc-ties", `SELECT ?s ?a WHERE { ?s <http://ex/age> ?a } ORDER BY ?a LIMIT 10`,
			`SELECT ?s ?a WHERE { ?s <http://ex/age> ?a } ORDER BY ?a`, 0, 10},
		{"desc", `SELECT ?s ?a WHERE { ?s <http://ex/age> ?a } ORDER BY DESC(?a) LIMIT 7 OFFSET 4`,
			`SELECT ?s ?a WHERE { ?s <http://ex/age> ?a } ORDER BY DESC(?a)`, 4, 11},
		{"multi-key", `SELECT ?s ?a ?n WHERE { ?s <http://ex/age> ?a . ?s <http://ex/name> ?n } ORDER BY ?a DESC(?n) LIMIT 9`,
			`SELECT ?s ?a ?n WHERE { ?s <http://ex/age> ?a . ?s <http://ex/name> ?n } ORDER BY ?a DESC(?n)`, 0, 9},
		{"k-beyond-rows", `SELECT ?s ?a WHERE { ?s <http://ex/age> ?a } ORDER BY ?a LIMIT 5000`,
			`SELECT ?s ?a WHERE { ?s <http://ex/age> ?a } ORDER BY ?a`, 0, 256},
		{"offset-beyond-rows", `SELECT ?s ?a WHERE { ?s <http://ex/age> ?a } ORDER BY ?a LIMIT 5 OFFSET 5000`,
			`SELECT ?s ?a WHERE { ?s <http://ex/age> ?a } ORDER BY ?a`, 256, 256},
		{"limit-zero", `SELECT ?s ?a WHERE { ?s <http://ex/age> ?a } ORDER BY ?a LIMIT 0`,
			`SELECT ?s ?a WHERE { ?s <http://ex/age> ?a } ORDER BY ?a`, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			lim, err := Evaluate(MustParse(c.limited), g)
			if err != nil {
				t.Fatal(err)
			}
			full, err := Evaluate(MustParse(c.full), g)
			if err != nil {
				t.Fatal(err)
			}
			want := full.OrderedCanonical()[c.lo:c.hi]
			got := lim.OrderedCanonical()
			if len(got) != len(want) {
				t.Fatalf("top-K kept %d rows, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("row %d = %q, want %q (full-sort truncation)", i, got[i], want[i])
				}
			}
		})
	}
}

// TestUnionSharedBatchAllocs pins the UNION satellite: combining the
// two branches must share their slot-row batches — one output slice,
// no per-row arena copies — and the combined sequence must reference
// the right branch's rows, not clones of them.
func TestUnionSharedBatchAllocs(t *testing.T) {
	g := joinTestGraph(2048)
	env, names, ages := joinSides(t, g)
	out := env.unionRows(names, ages)
	if len(out) != len(names)+len(ages) {
		t.Fatalf("union length %d, want %d", len(out), len(names)+len(ages))
	}
	if &out[len(names)][0] != &ages[0][0] {
		t.Fatal("right-branch rows were copied, want shared storage")
	}
	n := testing.AllocsPerRun(10, func() {
		out = env.unionRows(names, ages)
	})
	// One exact-size output slice; copying 2048 rows through the arena
	// would cost ~8 chunk allocations on top.
	if n > 2 {
		t.Fatalf("unionRows allocates %.1f/run, want <= 2 (shared batches)", n)
	}
}

// TestParallelJoinArenaAmortized extends the allocation pins to the
// parallel path: a morsel-parallel hash join must keep bump-allocating
// its merged rows from per-worker arenas, so allocations stay far
// below one per output row (regressing to per-row heap allocation
// would show up as ~8192 here).
func TestParallelJoinArenaAmortized(t *testing.T) {
	g := joinTestGraph(8192)
	env, names, ages := joinSides(t, g)
	env.par = &parRun{n: 4}
	defer env.close()
	if out := env.joinRows(names, ages); len(out) != 8192 {
		t.Fatalf("parallel join produced %d rows, want 8192", len(out))
	}
	n := testing.AllocsPerRun(2, func() {
		if out := env.joinRows(names, ages); len(out) != 8192 {
			t.Fatal("wrong row count")
		}
	})
	if n >= 1024 {
		t.Fatalf("parallel hash join allocates %.0f/run for 8192 rows, want amortized (< 1024)", n)
	}
}
