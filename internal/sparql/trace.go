package sparql

import (
	"strconv"
	"sync/atomic"

	"repro/internal/obs"
)

// Execution tracing (internal/obs): WithTrace arms a run to record a
// span tree of its stages — each BGP's seed scan and per-pattern match
// passes, every hash join and OPTIONAL, filter passes, the modifier
// pipeline, and (on sharded runs) every scatter, pushdown, and gather —
// as children of the trace's current span. The integration contract:
//
//   - Disarmed runs pay one nil check per site: env.trace stays nil
//     and every span helper returns immediately. The serial paths'
//     allocation pins are untouched.
//   - Spans are driver-only. Worker goroutines never touch the tree;
//     their contribution is per-worker busy time accumulated in
//     atomics (runTask) and merged into root-span attributes after the
//     run quiesces (finishRoot).
//   - Tracing observes, never steers: armed and disarmed runs take
//     identical code paths and produce byte-identical results.
//
// The run ends child spans it opened but never finishes the trace
// itself — the caller owns the root (and may wrap serialization or
// other stages around the run) and calls (*obs.Trace).Finish.

// execTrace is one armed run's trace state: the driver-owned span tree
// and the per-worker busy-time accumulators (nil for serial runs).
type execTrace struct {
	t    *obs.Trace
	busy []atomic.Int64 // busy nanoseconds per worker slot
}

// WithTrace arms the run to record its execution into t: spans are
// added under t's current span. The caller must not touch t until the
// run returns, and remains responsible for t.Finish().
func WithTrace(t *obs.Trace) RunOption {
	return func(o *runOpts) { o.trace = t }
}

// span opens a child of the trace's current span, returning nil when
// the run is disarmed. Driver-goroutine only.
func (env *evalEnv) span(name string) *obs.Span {
	if env.trace == nil {
		return nil
	}
	return env.trace.t.Begin(name)
}

// endSpan closes a span opened by env.span; a nil span (disarmed run)
// is a no-op. Open descendants left by early-exit paths close with it.
func (env *evalEnv) endSpan(sp *obs.Span) {
	if sp != nil {
		env.trace.t.End(sp)
	}
}

// noteInt sets an integer attribute on the trace's current span.
// Driver-goroutine only.
func (env *evalEnv) noteInt(key string, v int64) {
	if env.trace != nil {
		env.trace.t.Current().SetInt(key, v)
	}
}

// noteStr sets a string attribute on the trace's current span.
// Driver-goroutine only.
func (env *evalEnv) noteStr(key, v string) {
	if env.trace != nil {
		env.trace.t.Current().SetStr(key, v)
	}
}

// planOrder renders a compiled plan's chosen join order as the
// source-position sequence of its patterns ("2,0,1": the third written
// pattern was picked as the seed).
func planOrder(cps []cPattern) string {
	buf := make([]byte, 0, 2*len(cps))
	for i, cp := range cps {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(cp.src), 10)
	}
	return string(buf)
}

// finishRoot stamps the run-wide counters onto the trace's root span
// after the run quiesced: resolved parallelism, morsel accounting,
// per-worker busy time, fault-handling counters, and charged bytes.
func (et *execTrace) finishRoot(env *evalEnv) {
	root := et.t.Root()
	par := 1
	if env.par != nil {
		par = env.par.n
		root.SetInt("parallel_ops", env.par.ops.Load())
		root.SetInt("morsels", env.par.morsels.Load())
	}
	root.SetInt("parallelism", int64(par))
	for i := range et.busy {
		root.SetInt("worker_"+strconv.Itoa(i)+"_busy_us", et.busy[i].Load()/1000)
	}
	if env.ftally != nil {
		t := env.ftally
		if n := t.attempts.Load(); n > 0 {
			root.SetInt("shard_attempts", n)
		}
		if n := t.retries.Load(); n > 0 {
			root.SetInt("retries", n)
		}
		if n := t.failovers.Load(); n > 0 {
			root.SetInt("failovers", n)
		}
		if n := t.panics.Load(); n > 0 {
			root.SetInt("recovered_panics", n)
		}
	}
	if env.mem != nil {
		root.SetInt("bytes_charged", env.mem.used.Load())
	}
}
