package sparql

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fault"
)

// budgetSweepQueries cover every charge site: seed scans (arena),
// build-right and build-left joins and OPTIONALs (join tables, cursor
// matrices, output batches), UNION, and the top-K modifier path.
var budgetSweepQueries = []string{
	`SELECT ?s ?n ?a WHERE { ?s <http://ex/name> ?n . ?s <http://ex/age> ?a }`,
	`SELECT * WHERE { { ?s <http://ex/name> ?n } { ?s <http://ex/age> ?a } }`,
	`SELECT * WHERE { { ?s <http://ex/knows> ?k } { ?s <http://ex/age> ?a } }`,
	`SELECT * WHERE { { ?s <http://ex/name> ?n } OPTIONAL { ?s <http://ex/knows> ?k } }`,
	`SELECT * WHERE { { ?s <http://ex/knows> ?k } OPTIONAL { ?s <http://ex/age> ?a } }`,
	`SELECT ?s ?v WHERE { { ?s <http://ex/name> ?v } UNION { ?s <http://ex/age> ?v } }`,
	`SELECT ?s ?a WHERE { ?s <http://ex/age> ?a } ORDER BY ?a DESC(?s) LIMIT 17`,
}

// TestBudgetOverloadDeterminism pins the budget contract at every
// parallelism: a run armed with WithMemoryBudget either returns output
// byte-identical to an unbudgeted serial run or fails with a typed
// *BudgetError — never partial rows, never an untyped error. The sweep
// crosses budgets small enough to abort mid-scan, mid-join budgets,
// and one big enough to never fire, so both outcomes are exercised
// (and asserted to occur).
func TestBudgetOverloadDeterminism(t *testing.T) {
	g := parTestGraph(8192)
	ctx := context.Background()
	aborted, completed := 0, 0
	for qi, text := range budgetSweepQueries {
		prep := MustPrepare(t, text)
		want, err := prep.Run(ctx, g, WithParallelism(1))
		if err != nil {
			t.Fatalf("query %d clean run: %v", qi, err)
		}
		for _, par := range []int{1, 4} {
			for _, budget := range []int64{16 << 10, 256 << 10, 1 << 30} {
				got, err := prep.Run(ctx, g, WithParallelism(par), WithMemoryBudget(budget))
				if err != nil {
					var be *BudgetError
					if !errors.As(err, &be) {
						t.Fatalf("query %d par %d budget %d: error = %v, want *BudgetError", qi, par, budget, err)
					}
					aborted++
					continue
				}
				if !got.Equal(want) {
					t.Fatalf("query %d par %d budget %d: output diverged from unbudgeted serial run", qi, par, budget)
				}
				completed++
			}
		}
	}
	if aborted == 0 {
		t.Fatal("no query aborted: the small budgets never fired")
	}
	if completed == 0 {
		t.Fatal("no query completed: even the 1 GiB budget aborted")
	}
}

// TestBudgetErrorFields checks the typed error carries the abort's
// context: the configured limit, a used count that actually exceeds
// it, and the charge-site stage label.
func TestBudgetErrorFields(t *testing.T) {
	g := parTestGraph(8192)
	prep := MustPrepare(t, `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n }`)
	const limit = int64(4 << 10)
	_, err := prep.Run(context.Background(), g, WithParallelism(1), WithMemoryBudget(limit))
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error = %v, want *BudgetError", err)
	}
	if be.Limit != limit {
		t.Fatalf("Limit = %d, want %d", be.Limit, limit)
	}
	if be.Used <= be.Limit {
		t.Fatalf("Used = %d, want > limit %d", be.Used, be.Limit)
	}
	switch be.Stage {
	case stageArena, stageJoin, stageGather:
	default:
		t.Fatalf("Stage = %q, want one of arena/join/gather", be.Stage)
	}
}

// TestBudgetFaultPointMem pins the chaos hook: an injected failure at
// fault.PointMem forces the next charge of a budgeted run over budget,
// so chaos suites exercise the abort path without crafting a genuinely
// huge query. The budget is effectively infinite — only the injection
// can abort.
func TestBudgetFaultPointMem(t *testing.T) {
	g := parTestGraph(8192)
	prep := MustPrepare(t, `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n }`)
	plan := fault.NewPlan(3).FailNext(fault.PointMem, 1)
	_, err := prep.Run(fault.With(context.Background(), plan), g,
		WithParallelism(4), WithMemoryBudget(1<<40))
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error = %v, want *BudgetError from the injected mem fault", err)
	}

	// Without a budget the mem point is never consulted: the same plan
	// must not fire and the query must answer.
	plan = fault.NewPlan(3).FailNext(fault.PointMem, 1)
	if _, err := prep.Run(fault.With(context.Background(), plan), g, WithParallelism(4)); err != nil {
		t.Fatalf("unbudgeted run hit the mem fault point: %v", err)
	}
	if c := plan.Counters(); c.Failures != 0 {
		t.Fatalf("unbudgeted run consulted PointMem %d times, want 0", c.Failures)
	}
}

// TestBudgetTrackOnly checks the observability mode: a negative budget
// fills RunStats.BytesCharged without ever aborting, and an unarmed
// run reports zero.
func TestBudgetTrackOnly(t *testing.T) {
	g := parTestGraph(8192)
	prep := MustPrepare(t, `SELECT * WHERE { { ?s <http://ex/name> ?n } { ?s <http://ex/age> ?a } }`)
	want, err := prep.Run(context.Background(), g, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	var rs RunStats
	got, err := prep.Run(context.Background(), g,
		WithParallelism(4), WithMemoryBudget(-1), WithRunStats(&rs))
	if err != nil {
		t.Fatalf("track-only run aborted: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("track-only run diverged from serial baseline")
	}
	if rs.BytesCharged <= 0 {
		t.Fatalf("BytesCharged = %d, want > 0 under tracking", rs.BytesCharged)
	}
	if _, err := prep.Run(context.Background(), g, WithParallelism(4), WithRunStats(&rs)); err != nil {
		t.Fatal(err)
	}
	if rs.BytesCharged != 0 {
		t.Fatalf("BytesCharged = %d without a budget, want 0", rs.BytesCharged)
	}
}

// TestEstimateCost sanity-checks the admission controller's ranking
// signal: a cartesian product (patterns sharing no variables) must
// score far above a connected join over the same data, and the
// estimate must be stable across calls (it is memoized per snapshot).
func TestEstimateCost(t *testing.T) {
	g := parTestGraph(4096)
	connected := MustPrepare(t, `SELECT * WHERE { ?s <http://ex/name> ?n . ?s <http://ex/age> ?a }`)
	cartesian := MustPrepare(t, `SELECT * WHERE { ?s <http://ex/name> ?n . ?t <http://ex/age> ?a }`)
	cc := connected.EstimateCost(g)
	xc := cartesian.EstimateCost(g)
	if cc <= 0 || xc <= 0 {
		t.Fatalf("estimates = %d, %d, want positive", cc, xc)
	}
	if xc < 100*cc {
		t.Fatalf("cartesian estimate %d not far above connected %d", xc, cc)
	}
	if again := cartesian.EstimateCost(g); again != xc {
		t.Fatalf("memoized estimate changed: %d then %d", xc, again)
	}
}
