package sparql

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// TestTracedRunDeterminism pins the observe-don't-steer contract: for
// every parallelizable query shape, a traced run at parallelism 1 and 4
// must return byte-identical rows and order to the untraced serial run.
// Under -race this also exercises the driver-only-mutation discipline
// (workers write only their atomic busy accumulators).
func TestTracedRunDeterminism(t *testing.T) {
	g := parTestGraph(8192)
	queries := []string{
		`SELECT ?s ?n ?a WHERE { ?s <http://ex/name> ?n . ?s <http://ex/age> ?a }`,
		`SELECT * WHERE { { ?s <http://ex/name> ?n } { ?s <http://ex/age> ?a } }`,
		`SELECT * WHERE { { ?s <http://ex/name> ?n } OPTIONAL { ?s <http://ex/knows> ?k } }`,
		`SELECT ?s ?v WHERE { { { ?s <http://ex/name> ?v } UNION { ?s <http://ex/age> ?v } } FILTER(?v != "n00003") }`,
		`SELECT ?s ?a WHERE { ?s <http://ex/age> ?a } ORDER BY ?a DESC(?s) LIMIT 17 OFFSET 5`,
		`ASK { ?s <http://ex/knows> ?k }`,
	}
	for qi, text := range queries {
		prep := MustPrepare(t, text)
		base, err := prep.Run(context.Background(), g, WithParallelism(1))
		if err != nil {
			t.Fatalf("query %d untraced: %v", qi, err)
		}
		want := base.OrderedCanonical()
		for _, par := range []int{1, 4} {
			tr := obs.New("query")
			res, err := prep.Run(context.Background(), g, WithParallelism(par), WithTrace(tr))
			tr.Finish()
			if err != nil {
				t.Fatalf("query %d par %d traced: %v", qi, par, err)
			}
			if res.IsAsk != base.IsAsk || res.Ask != base.Ask {
				t.Fatalf("query %d par %d: ASK answer diverged under tracing", qi, par)
			}
			got := res.OrderedCanonical()
			if len(got) != len(want) {
				t.Fatalf("query %d par %d: traced run returned %d rows, want %d", qi, par, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("query %d par %d: traced row %d = %q, want %q", qi, par, i, got[i], want[i])
				}
			}
			if tr.Root().Find("bgp") == nil {
				t.Fatalf("query %d par %d: trace recorded no bgp span", qi, par)
			}
		}
	}
}

// TestTraceSpanCardinalities pins the span attributes against actual
// row counts on a fixed workload: the seed scan's rows, the match
// pass's output, the join's inputs/output, and the modifier pipeline's
// final count must all equal what the query really produced.
func TestTraceSpanCardinalities(t *testing.T) {
	n := 512
	g := parTestGraph(n) // n names, n ages, n/3+1 knows edges
	knows := (n + 2) / 3

	// Two-pattern BGP: seed scan picks knows (sparse), match extends by
	// age. Every knows subject has an age, so the final count == knows.
	prep := MustPrepare(t, `SELECT * WHERE { ?s <http://ex/knows> ?k . ?s <http://ex/age> ?a }`)
	tr := obs.New("query")
	res, err := prep.Run(context.Background(), g, WithParallelism(1), WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	if len(res.Rows) != knows {
		t.Fatalf("query returned %d rows, want %d", len(res.Rows), knows)
	}
	root := tr.Root()
	bgp := root.Find("bgp")
	if bgp == nil {
		t.Fatal("no bgp span")
	}
	if v, _ := bgp.Int("patterns"); v != 2 {
		t.Fatalf("bgp patterns = %d, want 2", v)
	}
	if order, ok := bgp.Str("join_order"); !ok || order != "0,1" {
		t.Fatalf("join_order = %q, want 0,1 (knows is sparser)", order)
	}
	seed := root.Find("seed_scan")
	if seed == nil {
		t.Fatal("no seed_scan span")
	}
	if v, _ := seed.Int("rows"); v != int64(knows) {
		t.Fatalf("seed_scan rows = %d, want %d", v, knows)
	}
	if v, _ := seed.Int("est"); v != int64(knows) {
		t.Fatalf("seed_scan est = %d, want %d (predicate count)", v, knows)
	}
	match := root.Find("match")
	if match == nil {
		t.Fatal("no match span")
	}
	if in, _ := match.Int("rows_in"); in != int64(knows) {
		t.Fatalf("match rows_in = %d, want %d", in, knows)
	}
	if v, _ := match.Int("rows"); v != int64(knows) {
		t.Fatalf("match rows = %d, want %d", v, knows)
	}
	mod := root.Find("modifiers")
	if mod == nil {
		t.Fatal("no modifiers span")
	}
	if v, _ := mod.Int("rows"); v != int64(len(res.Rows)) {
		t.Fatalf("modifiers rows = %d, want %d", v, len(res.Rows))
	}

	// Group join: two single-pattern BGPs folded by joinRows.
	prep = MustPrepare(t, `SELECT * WHERE { { ?s <http://ex/knows> ?k } { ?s <http://ex/age> ?a } }`)
	tr = obs.New("query")
	res, err = prep.Run(context.Background(), g, WithParallelism(1), WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	join := tr.Root().Find("join")
	if join == nil {
		t.Fatal("no join span")
	}
	l, _ := join.Int("left")
	r, _ := join.Int("right")
	out, _ := join.Int("rows")
	if l != int64(knows) || r != int64(n) || out != int64(len(res.Rows)) {
		t.Fatalf("join left/right/rows = %d/%d/%d, want %d/%d/%d",
			l, r, out, knows, n, len(res.Rows))
	}
	if m, ok := join.Str("method"); !ok || m != "hash_build_left" {
		t.Fatalf("join method = %q, want hash_build_left (left side smaller)", m)
	}
}

// TestTraceParallelRootAttrs checks the worker-side accounting: a
// parallel traced run stamps resolved parallelism, morsel counts, and
// per-worker busy time onto the root span, and the dispatching span
// carries its morsel count and width.
func TestTraceParallelRootAttrs(t *testing.T) {
	g := parTestGraph(8192)
	prep := MustPrepare(t, `SELECT * WHERE { { ?s <http://ex/name> ?n } { ?s <http://ex/age> ?a } }`)
	tr := obs.New("query")
	var rs RunStats
	if _, err := prep.Run(context.Background(), g,
		WithParallelism(4), WithTrace(tr), WithRunStats(&rs)); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	root := tr.Root()
	if v, _ := root.Int("parallelism"); v != 4 {
		t.Fatalf("root parallelism = %d, want 4", v)
	}
	if v, _ := root.Int("morsels"); v != rs.Morsels || v == 0 {
		t.Fatalf("root morsels = %d, want %d (nonzero)", v, rs.Morsels)
	}
	if v, _ := root.Int("parallel_ops"); v != rs.ParallelOps {
		t.Fatalf("root parallel_ops = %d, want %d", v, rs.ParallelOps)
	}
	for i := 0; i < 4; i++ {
		if _, ok := root.Int(fmt.Sprintf("worker_%d_busy_us", i)); !ok {
			t.Fatalf("root missing worker_%d_busy_us", i)
		}
	}
	// Some traced span dispatched morsels.
	found := false
	root.Walk(func(sp *obs.Span, _ int) {
		if v, ok := sp.Int("width"); ok && v == 4 && sp != root {
			found = true
		}
	})
	if !found {
		t.Fatal("no span carries the morsel dispatch width")
	}
}

// TestTraceDisarmedSharesPath pins that runs without WithTrace keep
// env.trace nil (the one-nil-check contract) and that a traced serial
// run allocates its spans outside the evaluator's pinned paths — the
// existing alloc tests cover the disarmed numbers; here we just assert
// the flag stays off by default.
func TestTraceDisarmedSharesPath(t *testing.T) {
	g := parTestGraph(64)
	q := MustParse(`SELECT ?s ?n WHERE { ?s <http://ex/name> ?n }`)
	env := newEvalEnv(q, g)
	if env.trace != nil {
		t.Fatal("fresh environment has tracing armed")
	}
	if _, err := evaluate(env, q); err != nil {
		t.Fatal(err)
	}
}
