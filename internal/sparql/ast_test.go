package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func TestPatternStringRendering(t *testing.T) {
	q := MustParse(`SELECT * WHERE {
		?x <http://e/p> ?y .
		FILTER(?y > 3)
		OPTIONAL { ?x <http://e/q> ?z }
	}`)
	s := q.Where.String()
	for _, want := range []string{"?x", "<http://e/p>", "FILTER", "OPTIONAL", "3"} {
		if !strings.Contains(s, want) {
			t.Errorf("pattern string missing %q: %s", want, s)
		}
	}
	q2 := MustParse(`SELECT * WHERE { { ?a <http://e/p> ?b } UNION { ?a <http://e/q> ?b } }`)
	if !strings.Contains(q2.Where.String(), "UNION") {
		t.Errorf("union string = %s", q2.Where.String())
	}
}

func TestFilterExprStrings(t *testing.T) {
	q := MustParse(`SELECT * WHERE {
		?x <http://e/p> ?y .
		FILTER((?y > 1 && ?y < 9) || !(?y = 5) && BOUND(?x))
	}`)
	f, ok := q.Where.(Filter)
	if !ok {
		t.Fatalf("top = %T", q.Where)
	}
	s := f.Cond.String()
	for _, want := range []string{"&&", "||", "!", "BOUND(?x)", "?y >"} {
		if !strings.Contains(s, want) {
			t.Errorf("filter string missing %q: %s", want, s)
		}
	}
}

func TestGroupUnionOptionalPatternVars(t *testing.T) {
	g := Group{Parts: []GraphPattern{
		BGP{Patterns: []TriplePattern{{S: VarElem("a"), P: TermElem(rdf.NewIRI("http://p")), O: VarElem("b")}}},
		Union{
			Left:  BGP{Patterns: []TriplePattern{{S: VarElem("b"), P: TermElem(rdf.NewIRI("http://q")), O: VarElem("c")}}},
			Right: BGP{Patterns: []TriplePattern{{S: VarElem("b"), P: TermElem(rdf.NewIRI("http://r")), O: VarElem("d")}}},
		},
		Optional{
			Left:  BGP{Patterns: []TriplePattern{{S: VarElem("a"), P: TermElem(rdf.NewIRI("http://s")), O: VarElem("e")}}},
			Right: BGP{Patterns: []TriplePattern{{S: VarElem("e"), P: TermElem(rdf.NewIRI("http://t")), O: VarElem("f")}}},
		},
	}}
	vars := g.PatternVars()
	if len(vars) != 6 {
		t.Fatalf("vars = %v", vars)
	}
	if s := g.String(); !strings.Contains(s, "UNION") || !strings.Contains(s, "OPTIONAL") {
		t.Fatalf("group string = %s", s)
	}
}

func TestBGPOfRejectsOperators(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?x <http://e/p> ?y OPTIONAL { ?x <http://e/q> ?z } }`)
	if _, ok := q.BGPOf(); ok {
		t.Fatal("OPTIONAL must not reduce to a BGP")
	}
	q2 := MustParse(`SELECT * WHERE { ?x <http://e/p> ?y . ?y <http://e/q> ?z }`)
	bgp, ok := q2.BGPOf()
	if !ok || len(bgp.Patterns) != 2 {
		t.Fatalf("bgp = %v %v", bgp, ok)
	}
}

func TestResultsString(t *testing.T) {
	r := &Results{
		Vars: []Var{"x", "y"},
		Rows: []Binding{{"x": rdf.NewIRI("http://a")}},
	}
	s := r.String()
	if !strings.Contains(s, "?x") || !strings.Contains(s, "UNBOUND") {
		t.Fatalf("results string = %q", s)
	}
	ask := &Results{IsAsk: true, Ask: true}
	if !strings.Contains(ask.String(), "true") {
		t.Fatalf("ask string = %q", ask.String())
	}
}

func TestShapeStrings(t *testing.T) {
	names := map[Shape]string{
		ShapeStar: "star", ShapeLinear: "linear",
		ShapeSnowflake: "snowflake", ShapeComplex: "complex",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%v != %s", s, want)
		}
	}
}

func TestFilterComparisonUnboundVars(t *testing.T) {
	c := Comparison{Op: "=", L: Operand{IsVar: true, Var: "x"}, R: Operand{IsVar: true, Var: "y"}}
	// Unbound operands make the comparison an error => false.
	if c.EvalFilter(Binding{}) {
		t.Fatal("comparison over unbound variables must be false")
	}
	if c.EvalFilter(Binding{"x": rdf.NewIRI("http://a")}) {
		t.Fatal("half-bound comparison must be false")
	}
	if !c.EvalFilter(Binding{"x": rdf.NewIRI("http://a"), "y": rdf.NewIRI("http://a")}) {
		t.Fatal("equal terms must compare true")
	}
}

func TestComparisonAllOperators(t *testing.T) {
	five := rdf.NewTypedLiteral("5", rdf.XSDInteger)
	six := rdf.NewTypedLiteral("6", rdf.XSDInteger)
	b := Binding{"x": five, "y": six}
	cases := map[string]bool{"=": false, "!=": true, "<": true, "<=": true, ">": false, ">=": false}
	for op, want := range cases {
		c := Comparison{Op: op, L: Operand{IsVar: true, Var: "x"}, R: Operand{IsVar: true, Var: "y"}}
		if got := c.EvalFilter(b); got != want {
			t.Errorf("5 %s 6 = %v, want %v", op, got, want)
		}
	}
}

func TestTriplePatternMatches(t *testing.T) {
	p := rdf.NewIRI("http://p")
	a, b := rdf.NewIRI("http://a"), rdf.NewIRI("http://b")
	tp := TriplePattern{S: TermElem(a), P: TermElem(p), O: VarElem("o")}
	if !tp.Matches(rdf.Triple{S: a, P: p, O: b}) {
		t.Fatal("should match")
	}
	if tp.Matches(rdf.Triple{S: b, P: p, O: b}) {
		t.Fatal("wrong subject should not match")
	}
	if tp.Matches(rdf.Triple{S: a, P: rdf.NewIRI("http://q"), O: b}) {
		t.Fatal("wrong predicate should not match")
	}
	tp2 := TriplePattern{S: VarElem("s"), P: VarElem("p"), O: TermElem(b)}
	if tp2.Matches(rdf.Triple{S: a, P: p, O: a}) {
		t.Fatal("wrong object should not match")
	}
}

func TestSelectedVarsOrdering(t *testing.T) {
	q := MustParse(`SELECT ?b ?a WHERE { ?a <http://e/p> ?b }`)
	vars := q.SelectedVars()
	if len(vars) != 2 || vars[0] != "b" || vars[1] != "a" {
		t.Fatalf("projection order not preserved: %v", vars)
	}
	star := MustParse(`SELECT * WHERE { ?b <http://e/p> ?a }`)
	vars = star.SelectedVars()
	if len(vars) != 2 || vars[0] != "a" { // sorted for SELECT *
		t.Fatalf("star vars = %v", vars)
	}
}

func TestEvaluateGroupWithUnionInside(t *testing.T) {
	g := rdf.NewGraph([]rdf.Triple{
		{S: rdf.NewIRI("http://e/a"), P: rdf.NewIRI("http://e/p"), O: rdf.NewIRI("http://e/b")},
		{S: rdf.NewIRI("http://e/a"), P: rdf.NewIRI("http://e/q"), O: rdf.NewIRI("http://e/c")},
	})
	q := MustParse(`SELECT ?x ?y WHERE {
		?x <http://e/p> ?b .
		{ ?x <http://e/q> ?y } UNION { ?x <http://e/p> ?y }
	}`)
	res, err := Evaluate(q, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %v", res.Canonical())
	}
}

func TestAggregatesSumMinMax(t *testing.T) {
	g := rdf.NewGraph([]rdf.Triple{
		{S: rdf.NewIRI("http://e/a"), P: rdf.NewIRI("http://e/v"), O: rdf.NewTypedLiteral("3", rdf.XSDInteger)},
		{S: rdf.NewIRI("http://e/b"), P: rdf.NewIRI("http://e/v"), O: rdf.NewTypedLiteral("7", rdf.XSDInteger)},
	})
	for _, c := range []struct {
		fn   string
		want string
	}{{"SUM", "10"}, {"MIN", "3"}, {"MAX", "7"}} {
		q := MustParse(`SELECT (` + c.fn + `(?v) AS ?r) WHERE { ?s <http://e/v> ?v }`)
		res, err := Evaluate(q, g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0]["r"].Value != c.want {
			t.Errorf("%s = %s, want %s", c.fn, res.Rows[0]["r"].Value, c.want)
		}
	}
}

func TestUnquoteEscapes(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE { ?x <http://e/p> "tab\tquote\"backslash\\newline\nret\r" }`)
	bgp, _ := q.BGPOf()
	if bgp.Patterns[0].O.Term.Value != "tab\tquote\"backslash\\newline\nret\r" {
		t.Fatalf("unquoted = %q", bgp.Patterns[0].O.Term.Value)
	}
	for _, bad := range []string{
		`SELECT ?x WHERE { ?x <http://e/p> "dangling\` + `" }`,
		`SELECT ?x WHERE { ?x <http://e/p> "bad\q" }`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestConstructQuery(t *testing.T) {
	g := rdf.NewGraph([]rdf.Triple{
		{S: rdf.NewIRI("http://e/a"), P: rdf.NewIRI("http://e/advisor"), O: rdf.NewIRI("http://e/p1")},
		{S: rdf.NewIRI("http://e/b"), P: rdf.NewIRI("http://e/advisor"), O: rdf.NewIRI("http://e/p1")},
	})
	q := MustParse(`CONSTRUCT { ?prof <http://e/advises> ?st . ?prof <http://e/hasRole> <http://e/Advisor> }
		WHERE { ?st <http://e/advisor> ?prof }`)
	if q.Form != FormConstruct || len(q.Template) != 2 {
		t.Fatalf("form=%v template=%d", q.Form, len(q.Template))
	}
	res, err := Evaluate(q, g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsGraph {
		t.Fatal("expected graph result")
	}
	// 2 advises triples + 1 deduped hasRole triple.
	if len(res.Triples) != 3 {
		t.Fatalf("triples = %v", res.Triples)
	}
	out := rdf.NewGraph(res.Triples)
	if !out.Has(rdf.Triple{S: rdf.NewIRI("http://e/p1"), P: rdf.NewIRI("http://e/advises"), O: rdf.NewIRI("http://e/a")}) {
		t.Fatal("missing constructed triple")
	}
	if !strings.Contains(res.String(), "advises") {
		t.Fatalf("render = %s", res.String())
	}
}

func TestConstructSkipsInvalidInstantiations(t *testing.T) {
	g := rdf.NewGraph([]rdf.Triple{
		{S: rdf.NewIRI("http://e/a"), P: rdf.NewIRI("http://e/name"), O: rdf.NewLiteral("Ann")},
	})
	// ?n is a literal: using it as subject must be silently dropped.
	q := MustParse(`CONSTRUCT { ?n <http://e/of> ?s } WHERE { ?s <http://e/name> ?n }`)
	res, err := Evaluate(q, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triples) != 0 {
		t.Fatalf("invalid triples kept: %v", res.Triples)
	}
}

func TestConstructWithOptionalUnboundVars(t *testing.T) {
	g := rdf.NewGraph([]rdf.Triple{
		{S: rdf.NewIRI("http://e/a"), P: rdf.NewIRI("http://e/p"), O: rdf.NewIRI("http://e/b")},
	})
	q := MustParse(`CONSTRUCT { ?s <http://e/q> ?m } WHERE {
		?s <http://e/p> ?o OPTIONAL { ?s <http://e/missing> ?m } }`)
	res, err := Evaluate(q, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triples) != 0 {
		t.Fatalf("unbound template vars kept: %v", res.Triples)
	}
}

func TestConstructEqualSetSemantics(t *testing.T) {
	t1 := rdf.Triple{S: rdf.NewIRI("http://e/a"), P: rdf.NewIRI("http://e/p"), O: rdf.NewIRI("http://e/b")}
	t2 := rdf.Triple{S: rdf.NewIRI("http://e/c"), P: rdf.NewIRI("http://e/p"), O: rdf.NewIRI("http://e/d")}
	a := &Results{IsGraph: true, Triples: []rdf.Triple{t1, t2}}
	b := &Results{IsGraph: true, Triples: []rdf.Triple{t2, t1}}
	if !a.Equal(b) {
		t.Fatal("graph equality must be order-insensitive")
	}
	c := &Results{IsGraph: true, Triples: []rdf.Triple{t1}}
	if a.Equal(c) {
		t.Fatal("different graphs compare equal")
	}
	sel := &Results{Vars: []Var{"x"}}
	if a.Equal(sel) {
		t.Fatal("graph vs select compare equal")
	}
}

func TestConstructParseErrors(t *testing.T) {
	for _, bad := range []string{
		`CONSTRUCT { } WHERE { ?s ?p ?o }`,
		`CONSTRUCT { ?s ?p ?o WHERE { ?s ?p ?o }`,
		`CONSTRUCT { ?s ?p ?o } { ?s ?p ?o }`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestDescribeQuery(t *testing.T) {
	g := rdf.NewGraph([]rdf.Triple{
		{S: rdf.NewIRI("http://e/a"), P: rdf.NewIRI("http://e/name"), O: rdf.NewLiteral("Ann")},
		{S: rdf.NewIRI("http://e/a"), P: rdf.NewIRI("http://e/knows"), O: rdf.NewIRI("http://e/b")},
		{S: rdf.NewIRI("http://e/b"), P: rdf.NewIRI("http://e/name"), O: rdf.NewLiteral("Bob")},
	})
	// Constant form without WHERE.
	res, err := Evaluate(MustParse(`DESCRIBE <http://e/a>`), g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsGraph || len(res.Triples) != 2 {
		t.Fatalf("describe a = %v", res.Triples)
	}
	// Variable form with WHERE.
	res2, err := Evaluate(MustParse(`DESCRIBE ?x WHERE { ?x <http://e/knows> ?y }`), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Triples) != 2 {
		t.Fatalf("describe ?x = %v", res2.Triples)
	}
	// Multiple targets dedupe overlapping descriptions.
	res3, err := Evaluate(MustParse(`DESCRIBE ?x ?y WHERE { ?x <http://e/knows> ?y }`), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Triples) != 3 {
		t.Fatalf("describe ?x ?y = %v", res3.Triples)
	}
}

func TestDescribeParseErrors(t *testing.T) {
	for _, bad := range []string{
		`DESCRIBE`,
		`DESCRIBE WHERE { ?s ?p ?o }`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}
