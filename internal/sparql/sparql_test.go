package sparql

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://ex.org/" + s) }

func lit(s string) rdf.Term { return rdf.NewLiteral(s) }

func num(s string) rdf.Term { return rdf.NewTypedLiteral(s, rdf.XSDInteger) }

// socialGraph is the fixture most tests query.
func socialGraph() *rdf.Graph {
	return rdf.NewGraph([]rdf.Triple{
		{S: iri("ann"), P: iri("knows"), O: iri("bob")},
		{S: iri("bob"), P: iri("knows"), O: iri("cid")},
		{S: iri("ann"), P: iri("age"), O: num("31")},
		{S: iri("bob"), P: iri("age"), O: num("25")},
		{S: iri("cid"), P: iri("age"), O: num("44")},
		{S: iri("ann"), P: iri("name"), O: lit("Ann")},
		{S: iri("bob"), P: iri("name"), O: lit("Bob")},
		{S: iri("ann"), P: rdf.NewIRI(rdf.RDFType), O: iri("Person")},
		{S: iri("bob"), P: rdf.NewIRI(rdf.RDFType), O: iri("Person")},
	})
}

func TestParseSimpleSelect(t *testing.T) {
	q, err := Parse(`SELECT ?x ?y WHERE { ?x <http://ex.org/knows> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Form != FormSelect || q.Distinct {
		t.Fatalf("form = %v distinct=%v", q.Form, q.Distinct)
	}
	if !reflect.DeepEqual(q.Projection, []Var{"x", "y"}) {
		t.Fatalf("projection = %v", q.Projection)
	}
	bgp, ok := q.BGPOf()
	if !ok || len(bgp.Patterns) != 1 {
		t.Fatalf("BGP = %v %v", bgp, ok)
	}
}

func TestParsePrefixes(t *testing.T) {
	q, err := Parse(`PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:knows ex:bob }`)
	if err != nil {
		t.Fatal(err)
	}
	bgp, _ := q.BGPOf()
	if bgp.Patterns[0].P.Term != iri("knows") {
		t.Fatalf("predicate = %v", bgp.Patterns[0].P)
	}
	if bgp.Patterns[0].O.Term != iri("bob") {
		t.Fatalf("object = %v", bgp.Patterns[0].O)
	}
}

func TestParseAKeyword(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE { ?x a <http://ex.org/Person> }`)
	if err != nil {
		t.Fatal(err)
	}
	bgp, _ := q.BGPOf()
	if bgp.Patterns[0].P.Term.Value != rdf.RDFType {
		t.Fatalf("a did not expand to rdf:type: %v", bgp.Patterns[0].P)
	}
}

func TestParseSemicolonComma(t *testing.T) {
	q, err := Parse(`SELECT * WHERE { ?x <http://e/p> ?y ; <http://e/q> ?z , ?w }`)
	if err != nil {
		t.Fatal(err)
	}
	bgp, _ := q.BGPOf()
	if len(bgp.Patterns) != 3 {
		t.Fatalf("patterns = %d", len(bgp.Patterns))
	}
	if bgp.Patterns[1].S != bgp.Patterns[0].S || bgp.Patterns[2].P != bgp.Patterns[1].P {
		t.Fatalf("continuations wrong: %v", bgp.Patterns)
	}
}

func TestParseModifiers(t *testing.T) {
	q, err := Parse(`SELECT DISTINCT ?x WHERE { ?x <http://e/p> ?y } ORDER BY DESC(?x) LIMIT 5 OFFSET 2`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct || q.Limit != 5 || q.Offset != 2 {
		t.Fatalf("modifiers = %+v", q)
	}
	if len(q.OrderBy) != 1 || q.OrderBy[0].Asc {
		t.Fatalf("orderBy = %v", q.OrderBy)
	}
}

func TestParseFilterOptionalUnion(t *testing.T) {
	q, err := Parse(`SELECT * WHERE {
		?x <http://e/p> ?y .
		FILTER(?y > 3 && ?y != 10)
		OPTIONAL { ?x <http://e/q> ?z }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Where.(Optional); !ok {
		t.Fatalf("top pattern = %T", q.Where)
	}
	q2, err := Parse(`SELECT * WHERE { { ?x <http://e/p> ?y } UNION { ?x <http://e/q> ?y } }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q2.Where.(Union); !ok {
		t.Fatalf("top pattern = %T", q2.Where)
	}
}

func TestParseAsk(t *testing.T) {
	q, err := Parse(`ASK { <http://e/s> <http://e/p> <http://e/o> }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Form != FormAsk {
		t.Fatalf("form = %v", q.Form)
	}
}

func TestParseAggregate(t *testing.T) {
	q, err := Parse(`SELECT (COUNT(?x) AS ?n) WHERE { ?x <http://e/p> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg == nil || q.Agg.Fn != "COUNT" || q.Agg.As != "n" {
		t.Fatalf("agg = %+v", q.Agg)
	}
	q2, err := Parse(`SELECT ?y AVG(?x) WHERE { ?s <http://e/p> ?x . ?s <http://e/q> ?y } GROUP BY ?y`)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Agg == nil || q2.Agg.Fn != "AVG" || len(q2.Agg.Group) != 1 {
		t.Fatalf("agg = %+v", q2.Agg)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"SELECT WHERE { }",
		"SELECT ?x { ?x ?p ?o }", // missing WHERE
		"SELECT ?x WHERE { ?x ?p }",
		"SELECT ?x WHERE { ?x ?p ?o",
		"SELECT ?x WHERE { ?x ?p ?o } LIMIT x",
		"SELECT ?x WHERE { ?x unknown:p ?o }",
		"SELECT ?x WHERE { ?x ?p ?o } trailing",
		"SELECT ?x WHERE { ?x ?p \"unterminated }",
		"SELECT ?x WHERE { FILTER() ?x ?p ?o }",
		"SELECT ?x WHERE { ?x ?p ?o } GROUP BY ?x",
		"ASK { ?x ?p ?o } ORDER BY",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestEvaluateSingleTP(t *testing.T) {
	g := socialGraph()
	res, err := Evaluate(MustParse(`SELECT ?x ?y WHERE { ?x <http://ex.org/knows> ?y }`), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d", res.Len())
	}
}

func TestEvaluateStarJoin(t *testing.T) {
	g := socialGraph()
	res, err := Evaluate(MustParse(`SELECT ?x ?n ?a WHERE {
		?x <http://ex.org/name> ?n .
		?x <http://ex.org/age> ?a }`), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 { // ann and bob have both name and age
		t.Fatalf("rows = %v", res.Canonical())
	}
}

func TestEvaluateLinearJoin(t *testing.T) {
	g := socialGraph()
	res, err := Evaluate(MustParse(`SELECT ?a ?c WHERE {
		?a <http://ex.org/knows> ?b .
		?b <http://ex.org/knows> ?c }`), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %v", res.Canonical())
	}
	row := res.Rows[0]
	if row["a"] != iri("ann") || row["c"] != iri("cid") {
		t.Fatalf("row = %v", row)
	}
}

func TestEvaluateSharedVariableConsistency(t *testing.T) {
	// ?x knows ?x must only match self-loops (none here).
	g := socialGraph()
	res, err := Evaluate(MustParse(`SELECT ?x WHERE { ?x <http://ex.org/knows> ?x }`), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("rows = %v", res.Canonical())
	}
}

func TestEvaluateFilter(t *testing.T) {
	g := socialGraph()
	res, err := Evaluate(MustParse(`SELECT ?x WHERE {
		?x <http://ex.org/age> ?a . FILTER(?a > 30) }`), g)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, b := range res.Rows {
		got[b["x"].Value] = true
	}
	if len(got) != 2 || !got["http://ex.org/ann"] || !got["http://ex.org/cid"] {
		t.Fatalf("rows = %v", res.Canonical())
	}
}

func TestEvaluateFilterLogic(t *testing.T) {
	g := socialGraph()
	res, err := Evaluate(MustParse(`SELECT ?x WHERE {
		?x <http://ex.org/age> ?a . FILTER(?a > 30 && !(?a >= 40)) }`), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0]["x"] != iri("ann") {
		t.Fatalf("rows = %v", res.Canonical())
	}
	res2, err := Evaluate(MustParse(`SELECT ?x WHERE {
		?x <http://ex.org/age> ?a . FILTER(?a < 26 || ?a > 43) }`), g)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Len() != 2 {
		t.Fatalf("rows = %v", res2.Canonical())
	}
}

func TestEvaluateOptional(t *testing.T) {
	g := socialGraph()
	res, err := Evaluate(MustParse(`SELECT ?x ?n WHERE {
		?x <http://ex.org/age> ?a .
		OPTIONAL { ?x <http://ex.org/name> ?n } }`), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("rows = %v", res.Canonical())
	}
	unbound := 0
	for _, b := range res.Rows {
		if _, ok := b["n"]; !ok {
			unbound++
		}
	}
	if unbound != 1 { // cid has no name
		t.Fatalf("unbound = %d", unbound)
	}
}

func TestEvaluateBoundFilter(t *testing.T) {
	g := socialGraph()
	res, err := Evaluate(MustParse(`SELECT ?x WHERE {
		?x <http://ex.org/age> ?a .
		OPTIONAL { ?x <http://ex.org/name> ?n }
		FILTER(!BOUND(?n)) }`), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0]["x"] != iri("cid") {
		t.Fatalf("rows = %v", res.Canonical())
	}
}

func TestEvaluateUnion(t *testing.T) {
	g := socialGraph()
	res, err := Evaluate(MustParse(`SELECT ?x WHERE {
		{ ?x <http://ex.org/name> "Ann" } UNION { ?x <http://ex.org/name> "Bob" } }`), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %v", res.Canonical())
	}
}

func TestEvaluateDistinctOrderLimit(t *testing.T) {
	g := socialGraph()
	res, err := Evaluate(MustParse(`SELECT DISTINCT ?a WHERE {
		?x <http://ex.org/age> ?a } ORDER BY ?a LIMIT 2`), g)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.OrderedCanonical()
	if len(rows) != 2 || !strings.Contains(rows[0], "25") || !strings.Contains(rows[1], "31") {
		t.Fatalf("rows = %v", rows)
	}
}

func TestEvaluateOrderDescending(t *testing.T) {
	g := socialGraph()
	res, err := Evaluate(MustParse(`SELECT ?x ?a WHERE {
		?x <http://ex.org/age> ?a } ORDER BY DESC(?a)`), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0]["x"] != iri("cid") {
		t.Fatalf("head = %v", res.Rows[0])
	}
}

func TestEvaluateAsk(t *testing.T) {
	g := socialGraph()
	yes, err := Evaluate(MustParse(`ASK { <http://ex.org/ann> <http://ex.org/knows> ?x }`), g)
	if err != nil {
		t.Fatal(err)
	}
	if !yes.IsAsk || !yes.Ask {
		t.Fatalf("ask = %+v", yes)
	}
	no, err := Evaluate(MustParse(`ASK { <http://ex.org/cid> <http://ex.org/knows> ?x }`), g)
	if err != nil {
		t.Fatal(err)
	}
	if no.Ask {
		t.Fatal("expected false")
	}
}

func TestEvaluateCountAggregate(t *testing.T) {
	g := socialGraph()
	if _, err := Parse(`SELECT (COUNT(?x) AS ?n) WHERE { ?x <http://ex.org/age) ?a }`); err == nil {
		t.Fatal("expected parse error for malformed IRI")
	}
	res, err := Evaluate(MustParse(`SELECT (COUNT(?x) AS ?n) WHERE { ?x <http://ex.org/age> ?a }`), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0]["n"].Value != "3" {
		t.Fatalf("count = %v", res.Canonical())
	}
}

func TestEvaluateGroupedAvg(t *testing.T) {
	g := rdf.NewGraph([]rdf.Triple{
		{S: iri("a"), P: iri("dept"), O: lit("eng")},
		{S: iri("b"), P: iri("dept"), O: lit("eng")},
		{S: iri("a"), P: iri("age"), O: num("30")},
		{S: iri("b"), P: iri("age"), O: num("40")},
	})
	res, err := Evaluate(MustParse(`SELECT ?d (AVG(?a) AS ?avg) WHERE {
		?x <http://ex.org/dept> ?d . ?x <http://ex.org/age> ?a } GROUP BY ?d`), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0]["avg"].Value != "35" {
		t.Fatalf("avg = %v", res.Canonical())
	}
}

func TestResultsEqualIsOrderInsensitive(t *testing.T) {
	a := &Results{Vars: []Var{"x"}, Rows: []Binding{{"x": iri("a")}, {"x": iri("b")}}}
	b := &Results{Vars: []Var{"x"}, Rows: []Binding{{"x": iri("b")}, {"x": iri("a")}}}
	if !a.Equal(b) {
		t.Fatal("multiset equality failed")
	}
	c := &Results{Vars: []Var{"x"}, Rows: []Binding{{"x": iri("a")}, {"x": iri("a")}}}
	if a.Equal(c) {
		t.Fatal("different multisets compare equal")
	}
}

func TestShapeClassification(t *testing.T) {
	cases := []struct {
		query string
		want  Shape
	}{
		{`SELECT * WHERE { ?s <http://e/p1> ?a . ?s <http://e/p2> ?b . ?s <http://e/p3> ?c }`, ShapeStar},
		{`SELECT * WHERE { ?s <http://e/p> ?o }`, ShapeStar},
		{`SELECT * WHERE { ?a <http://e/p> ?b . ?b <http://e/q> ?c . ?c <http://e/r> ?d }`, ShapeLinear},
		{`SELECT * WHERE { ?a <http://e/p1> ?x . ?a <http://e/p2> ?b . ?b <http://e/q1> ?y . ?b <http://e/q2> ?z }`, ShapeSnowflake},
		{`SELECT * WHERE { ?a <http://e/p> ?x . ?b <http://e/q> ?y }`, ShapeComplex},
		{`SELECT * WHERE { { ?a <http://e/p> ?x } UNION { ?a <http://e/q> ?x } }`, ShapeComplex},
	}
	for _, c := range cases {
		got := ClassifyShape(MustParse(c.query))
		if got != c.want {
			t.Errorf("shape(%s) = %v, want %v", c.query, got, c.want)
		}
	}
}

func TestCompareTermsNumericVsLexical(t *testing.T) {
	if CompareTerms(num("9"), num("10")) >= 0 {
		t.Fatal("numeric literals must compare numerically")
	}
	if CompareTerms(lit("9"), lit("10")) <= 0 {
		t.Fatal("plain strings compare lexically")
	}
	if CompareTerms(iri("a"), lit("a")) == 0 {
		t.Fatal("IRI and literal must differ")
	}
}

func TestBindingCompatibleMerge(t *testing.T) {
	a := Binding{"x": iri("a"), "y": iri("b")}
	b := Binding{"y": iri("b"), "z": iri("c")}
	if !a.Compatible(b) {
		t.Fatal("compatible bindings rejected")
	}
	m := a.Merge(b)
	if len(m) != 3 || m["z"] != iri("c") {
		t.Fatalf("merge = %v", m)
	}
	c := Binding{"y": iri("zzz")}
	if a.Compatible(c) {
		t.Fatal("incompatible bindings accepted")
	}
}

func TestProjectDropsVars(t *testing.T) {
	r := &Results{Vars: []Var{"x", "y"}, Rows: []Binding{{"x": iri("a"), "y": iri("b")}}}
	p := r.Project([]Var{"y"})
	if len(p.Vars) != 1 || p.Rows[0]["y"] != iri("b") {
		t.Fatalf("project = %v", p)
	}
	if _, ok := p.Rows[0]["x"]; ok {
		t.Fatal("x not dropped")
	}
}
