package sparql

// Micro-benchmarks for the reference evaluator's join engine. The hash
// path must beat the nested-loop baseline (kept as the cartesian /
// partial-binding fallback) on both time and allocations; the
// allocation gap is pinned by TestHashJoinAllocsVsNestedLoop. Run with
//
//	go test ./internal/sparql -run xxx -bench . -benchmem

import "testing"

const benchJoinRows = 8192

// BenchmarkEvalJoin joins two star branches of benchJoinRows rows each
// (one match per row) with the hash join and with the nested-loop
// baseline it replaced.
func BenchmarkEvalJoin(b *testing.B) {
	g := joinTestGraph(benchJoinRows)
	env, names, ages := joinSides(b, g)
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := env.joinRows(names, ages); len(out) != benchJoinRows {
				b.Fatalf("join produced %d rows", len(out))
			}
		}
	})
	b.Run("nested", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := env.nestedJoinRows(names, ages); len(out) != benchJoinRows {
				b.Fatalf("join produced %d rows", len(out))
			}
		}
	})
}

// BenchmarkEvalOptional left-joins the same branches; every left row
// matches exactly once.
func BenchmarkEvalOptional(b *testing.B) {
	g := joinTestGraph(benchJoinRows)
	env, names, ages := joinSides(b, g)
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := env.optionalRows(names, ages); len(out) != benchJoinRows {
				b.Fatalf("optional produced %d rows", len(out))
			}
		}
	})
	b.Run("nested", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := env.nestedOptionalRows(names, ages); len(out) != benchJoinRows {
				b.Fatalf("optional produced %d rows", len(out))
			}
		}
	})
}
