package sparql

// Micro-benchmarks for the reference evaluator's join engine. The hash
// path must beat the nested-loop baseline (kept as the cartesian /
// partial-binding fallback) on both time and allocations; the
// allocation gap is pinned by TestHashJoinAllocsVsNestedLoop. Run with
//
//	go test ./internal/sparql -run xxx -bench . -benchmem

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/obs"
)

const benchJoinRows = 8192

// benchParWidths returns the morsel-pool widths the parallel
// benchmarks compare: serial, 4 (the acceptance bar), and GOMAXPROCS
// when it differs.
func benchParWidths() []int {
	widths := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		widths = append(widths, n)
	}
	return widths
}

// BenchmarkEvalJoin joins two star branches of benchJoinRows rows each
// (one match per row) with the hash join (serial, then morsel-parallel
// probe at each pool width) and with the nested-loop baseline it
// replaced. "hash" is the pinned serial path — its 6 allocs/op must
// not move; "hash-p4" vs "hash" is the parallel-speedup acceptance
// comparison on multi-core hardware.
func BenchmarkEvalJoin(b *testing.B) {
	g := joinTestGraph(benchJoinRows)
	env, names, ages := joinSides(b, g)
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := env.joinRows(names, ages); len(out) != benchJoinRows {
				b.Fatalf("join produced %d rows", len(out))
			}
		}
	})
	for _, p := range benchParWidths() {
		if p == 1 {
			continue // "hash" is the parallelism-1 measurement
		}
		b.Run(fmt.Sprintf("hash-p%d", p), func(b *testing.B) {
			penv, names, ages := joinSides(b, g)
			penv.par = &parRun{n: p}
			defer penv.close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if out := penv.joinRows(names, ages); len(out) != benchJoinRows {
					b.Fatalf("join produced %d rows", len(out))
				}
			}
		})
	}
	b.Run("nested", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := env.nestedJoinRows(names, ages); len(out) != benchJoinRows {
				b.Fatalf("join produced %d rows", len(out))
			}
		}
	})
}

// BenchmarkEvalOptional left-joins the same branches; every left row
// matches exactly once.
func BenchmarkEvalOptional(b *testing.B) {
	g := joinTestGraph(benchJoinRows)
	env, names, ages := joinSides(b, g)
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := env.optionalRows(names, ages); len(out) != benchJoinRows {
				b.Fatalf("optional produced %d rows", len(out))
			}
		}
	})
	b.Run("nested", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := env.nestedOptionalRows(names, ages); len(out) != benchJoinRows {
				b.Fatalf("optional produced %d rows", len(out))
			}
		}
	})
}

// BenchmarkEvalBGPParallel measures a full prepared run whose work is
// one big seed scan (65536 candidate triples, 64 morsels), the
// cleanest morsel-parallel target: p1 must stay within noise of the
// serial evaluator, and p4 is the >=2x acceptance comparison on
// multi-core hardware. RunSolutions keeps rows in id space so the
// benchmark measures evaluation, not decoding.
func BenchmarkEvalBGPParallel(b *testing.B) {
	g := joinTestGraph(1 << 16)
	g.Encoded()
	g.Stats()
	prep, err := Prepare(`SELECT ?s ?n WHERE { ?s <http://ex/name> ?n }`)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, p := range benchParWidths() {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sol, err := prep.RunSolutions(ctx, g, WithParallelism(p))
				if err != nil {
					b.Fatal(err)
				}
				if sol.Len() != 1<<16 {
					b.Fatalf("scan produced %d rows", sol.Len())
				}
			}
		})
	}
}

// BenchmarkEvalSampledTracing measures what arming a trace costs a
// full prepared run — the price the server pays on the one-in-N
// sampled requests of the workload observatory. "untraced" is the
// disarmed fast path (one nil check per operator, same run the
// BenchmarkEvalBGPParallel/p1 alloc guard pins); "traced" carries a
// live span tree. The gap is the sampling budget CI watches.
func BenchmarkEvalSampledTracing(b *testing.B) {
	g := joinTestGraph(1 << 16)
	g.Encoded()
	g.Stats()
	prep, err := Prepare(`SELECT ?s ?n WHERE { ?s <http://ex/name> ?n }`)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("untraced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := prep.RunSolutions(ctx, g, WithParallelism(1))
			if err != nil {
				b.Fatal(err)
			}
			if sol.Len() != 1<<16 {
				b.Fatalf("scan produced %d rows", sol.Len())
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := obs.New("query")
			sol, err := prep.RunSolutions(ctx, g, WithParallelism(1), WithTrace(tr))
			if err != nil {
				b.Fatal(err)
			}
			tr.Finish()
			if sol.Len() != 1<<16 {
				b.Fatalf("scan produced %d rows", sol.Len())
			}
		}
	})
}

// BenchmarkEvalTopK compares ORDER BY+LIMIT under the bounded top-K
// heap against the full stable sort it replaces (reachable by passing
// topK = -1). 16384 rows, K = 13.
func BenchmarkEvalTopK(b *testing.B) {
	g := joinTestGraph(1 << 14)
	q := MustParse(`SELECT ?s ?n WHERE { ?s <http://ex/name> ?n } ORDER BY DESC(?n) LIMIT 13`)
	env := newEvalEnv(q, g)
	rows, err := env.evalPattern(q.Where)
	if err != nil {
		b.Fatal(err)
	}
	scratch := make([]slotRow, len(rows))
	b.Run("topk-heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(scratch, rows)
			if out := env.sortRows(scratch, q.OrderBy, 13); len(out) != 13 {
				b.Fatalf("top-K kept %d rows", len(out))
			}
		}
	})
	b.Run("full-sort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(scratch, rows)
			if out := env.sortRows(scratch, q.OrderBy, -1); len(out) != len(rows) {
				b.Fatalf("full sort kept %d rows", len(out))
			}
		}
	})
}
