package sparql

// Shape classifies the join structure of a BGP, the query-shape
// taxonomy of the survey's Sec. II.B: star (subject-subject joins),
// linear (subject-object chains), snowflake (connected stars), and
// complex (everything else). Shape strongly predicts which engine wins,
// which is why the assessment harness sweeps all four.
type Shape int

// Query shapes.
const (
	ShapeStar Shape = iota
	ShapeLinear
	ShapeSnowflake
	ShapeComplex
)

func (s Shape) String() string {
	switch s {
	case ShapeStar:
		return "star"
	case ShapeLinear:
		return "linear"
	case ShapeSnowflake:
		return "snowflake"
	default:
		return "complex"
	}
}

// ClassifyShape inspects the triple patterns of a query's BGP and
// returns its shape. Queries that do not reduce to a BGP are complex.
func ClassifyShape(q *Query) Shape {
	bgp, ok := q.BGPOf()
	if !ok {
		return ShapeComplex
	}
	return ClassifyBGP(bgp)
}

// ClassifyBGP classifies a bare BGP.
//
//   - star: every pattern shares one subject;
//   - linear: the patterns form a chain where each consecutive pair is
//     connected by an object-subject (or subject-object) join;
//   - snowflake: several star hubs connected by linear links;
//   - complex: anything else (including patterns with variable
//     predicates joining on the predicate position).
func ClassifyBGP(b BGP) Shape {
	n := len(b.Patterns)
	if n == 0 {
		return ShapeComplex
	}
	if n == 1 {
		return ShapeStar
	}

	// Star: all subjects identical (same var or same constant).
	allSame := true
	for _, tp := range b.Patterns[1:] {
		if !sameElem(tp.S, b.Patterns[0].S) {
			allSame = false
			break
		}
	}
	if allSame {
		return ShapeStar
	}

	if isLinear(b) {
		return ShapeLinear
	}
	if isSnowflake(b) {
		return ShapeSnowflake
	}
	return ShapeComplex
}

func sameElem(a, b TPElem) bool {
	if a.IsVar != b.IsVar {
		return false
	}
	if a.IsVar {
		return a.Var == b.Var
	}
	return a.Term == b.Term
}

// isLinear checks for a subject-object chain: patterns can be ordered
// so that each pattern's subject equals the previous pattern's object.
func isLinear(b BGP) bool {
	n := len(b.Patterns)
	used := make([]bool, n)
	// Try each pattern as the chain head.
	for head := 0; head < n; head++ {
		for i := range used {
			used[i] = false
		}
		used[head] = true
		cur := b.Patterns[head]
		count := 1
		for count < n {
			found := -1
			for i, tp := range b.Patterns {
				if used[i] {
					continue
				}
				if sameElem(tp.S, cur.O) {
					found = i
					break
				}
			}
			if found < 0 {
				break
			}
			used[found] = true
			cur = b.Patterns[found]
			count++
		}
		if count == n {
			return true
		}
	}
	return false
}

// isSnowflake checks for connected star clusters: group patterns by
// subject; the quotient graph (stars linked when one star's object is
// another star's subject) must be connected and have at least two
// stars, with at least one star of size >= 2.
func isSnowflake(b BGP) bool {
	groups := map[string][]TriplePattern{}
	keyOf := func(e TPElem) string {
		if e.IsVar {
			return "?" + string(e.Var)
		}
		return e.Term.String()
	}
	for _, tp := range b.Patterns {
		k := keyOf(tp.S)
		groups[k] = append(groups[k], tp)
	}
	// An object-object join on a variable that is never a subject makes
	// the query cyclic/complex, not a snowflake.
	objCount := map[string]int{}
	for _, tp := range b.Patterns {
		if tp.O.IsVar {
			objCount[keyOf(tp.O)]++
		}
	}
	for k, n := range objCount {
		if n >= 2 {
			if _, isSubject := groups[k]; !isSubject {
				return false
			}
		}
	}
	if len(groups) < 2 {
		return false
	}
	hasStar := false
	for _, g := range groups {
		if len(g) >= 2 {
			hasStar = true
		}
	}
	if !hasStar {
		return false
	}
	// Connectivity over the star-link graph.
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	adj := map[string][]string{}
	for _, k := range keys {
		for _, tp := range groups[k] {
			ok := keyOf(tp.O)
			if _, exists := groups[ok]; exists && ok != k {
				adj[k] = append(adj[k], ok)
				adj[ok] = append(adj[ok], k)
			}
		}
	}
	visited := map[string]bool{}
	stack := []string{keys[0]}
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[k] {
			continue
		}
		visited[k] = true
		stack = append(stack, adj[k]...)
	}
	return len(visited) == len(groups)
}
