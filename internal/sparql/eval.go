package sparql

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// The reference evaluator is slot-compiled: each query is compiled
// once into a Var→slot table, and every partial solution is a
// []rdf.TermID row indexed by slot (unboundID marking empty slots)
// over the graph's dictionary-encoded triples. Joins, OPTIONALs, and
// intra-pattern consistency checks compare 4-byte ids instead of
// string-bearing Terms, and extending a solution copies one small
// slice instead of cloning a map per candidate triple. BGPs are
// reordered by estimated selectivity from rdf.Stats (the SPARQLGX
// statistics) before evaluation. Ids are decoded back to Terms only
// when the final solution sequence is materialized as Bindings.

// unboundID marks an empty slot in a compiled solution row.
const unboundID = ^rdf.TermID(0)

// slotRow is one partial solution in id space: index i holds the id
// bound to the query's i-th variable, or unboundID. Rows are immutable
// once produced.
type slotRow []rdf.TermID

// Evaluate runs q over g with the reference evaluator: a direct,
// centralized implementation of the SPARQL algebra. Every distributed
// engine in internal/systems is tested against it. For repeated or
// cancellable evaluation use Prepare / (*Prepared).Run, which share
// this exact code path.
func Evaluate(q *Query, g *rdf.Graph) (*Results, error) {
	return evaluate(newEvalEnv(q, g), q)
}

// evaluate is the shared body of Evaluate and (*Prepared).Run.
func evaluate(env *evalEnv, q *Query) (*Results, error) {
	rows, err := env.evalPattern(q.Where)
	if err != nil {
		return nil, err
	}
	if env.err != nil {
		return nil, env.err
	}
	// Plain SELECT and ASK run the whole modifier pipeline in id
	// space and decode only the surviving rows. Aggregates, CONSTRUCT,
	// and DESCRIBE need term values for every solution, so they decode
	// first and share the engines' modifier tail.
	if (q.Form == FormSelect || q.Form == FormAsk) && q.Agg == nil {
		return env.applyModifiers(q, rows), nil
	}
	decoded := env.decodeRows(rows)
	if q.Form == FormDescribe {
		return describeResources(q, decoded, env.g), nil
	}
	return ApplySolutionModifiers(q, decoded), nil
}

// applyModifiers applies projection / DISTINCT / ORDER BY / OFFSET /
// LIMIT over id-space rows, mirroring ApplySolutionModifiers exactly,
// and decodes only the rows that survive.
func (env *evalEnv) applyModifiers(q *Query, rows []slotRow) *Results {
	if q.Form == FormAsk {
		return &Results{IsAsk: true, Ask: len(rows) > 0}
	}
	vars := q.SelectedVars()
	rows = env.modifierPipeline(q, vars, rows)
	return &Results{Vars: append([]Var{}, vars...), Rows: env.decodeRows(rows)}
}

// modifierPipeline runs projection / DISTINCT / ORDER BY / OFFSET /
// LIMIT entirely in id space and returns the surviving rows undecoded.
// Both the Binding-materializing path (applyModifiers) and the
// streaming path ((*Prepared).RunSolutions) share it.
func (env *evalEnv) modifierPipeline(q *Query, vars []Var, rows []slotRow) []slotRow {
	rows = env.projectRows(rows, vars)
	if q.Distinct {
		rows = env.distinctRows(rows)
	}
	if len(q.OrderBy) > 0 {
		env.sortRows(rows, q.OrderBy)
	}
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	return rows
}

// projectRows restricts rows to the selected variables by clearing
// every other slot. When the projection keeps every compiled slot the
// rows are returned as-is (no copy).
func (env *evalEnv) projectRows(rows []slotRow, vars []Var) []slotRow {
	keep := make([]bool, len(env.vars))
	kept := 0
	for _, v := range vars {
		if s, ok := env.slots[v]; ok && !keep[s] {
			keep[s] = true
			kept++
		}
	}
	if kept == len(env.vars) {
		return rows
	}
	out := make([]slotRow, len(rows))
	for i, row := range rows {
		nr := env.newRow(row)
		for s := range nr {
			if !keep[s] {
				nr[s] = unboundID
			}
		}
		out[i] = nr
	}
	return out
}

// distinctRows deduplicates rows on their full slot vector. Ids are
// injective over terms, so id equality is exactly the term equality
// the map-based DISTINCT uses.
func (env *evalEnv) distinctRows(rows []slotRow) []slotRow {
	seen := make(map[string]bool, len(rows))
	var kept []slotRow
	buf := make([]byte, 0, 4*len(env.vars))
	for _, row := range rows {
		buf = buf[:0]
		for _, id := range row {
			buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		if !seen[string(buf)] {
			seen[string(buf)] = true
			kept = append(kept, row)
		}
	}
	return kept
}

// sortRows orders rows in place by the ORDER BY keys, with the same
// unbound-first/last and stability semantics as Results.SortRows.
func (env *evalEnv) sortRows(rows []slotRow, keys []OrderKey) {
	type keySlot struct {
		slot int
		asc  bool
	}
	ks := make([]keySlot, 0, len(keys))
	for _, k := range keys {
		if s, ok := env.slots[k.Var]; ok {
			ks = append(ks, keySlot{s, k.Asc})
		} else {
			ks = append(ks, keySlot{-1, k.Asc})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range ks {
			var ti, tj rdf.TermID = unboundID, unboundID
			if k.slot >= 0 {
				ti, tj = rows[i][k.slot], rows[j][k.slot]
			}
			if ti == unboundID && tj == unboundID {
				continue
			}
			if ti == unboundID {
				return k.asc
			}
			if tj == unboundID {
				return !k.asc
			}
			c := CompareTerms(env.terms[ti], env.terms[tj])
			if c == 0 {
				continue
			}
			if k.asc {
				return c < 0
			}
			return c > 0
		}
		return false
	})
}

// evalEnv is the per-query compilation environment: the slot table,
// the encoded graph view, and the dataset statistics driving join
// ordering. Rows are bump-allocated from chunked arenas, so producing
// a solution costs a copy, not a heap allocation.
type evalEnv struct {
	g     *rdf.Graph
	view  *rdf.EncodedView
	terms []rdf.Term // id→term snapshot for lock-free decoding
	slots map[Var]int
	vars  []Var // slot→var
	stats rdf.Stats
	arena []rdf.TermID // bump allocator for slot rows

	// Cancellation state ((*Prepared).Run): ctx is nil for
	// uncancellable evaluations (Evaluate, or a context that can never
	// be cancelled), so the hot loops pay one nil check. When set, the
	// loops poll ctx.Done() every cancelCheckEvery iterations through
	// interrupted(), latching the context error in err; every layer
	// above bails out as soon as err is non-nil.
	ctx  context.Context
	tick uint
	err  error

	// Plan reuse ((*Prepared).Run): prep, when non-nil, caches each
	// BGP's compiled-and-ordered patterns across runs, keyed by the
	// graph snapshot. bgpSeq numbers evalBGP calls in (deterministic)
	// evaluation order to address the cache.
	prep   *Prepared
	bgpSeq int
}

// cancelCheckEvery is the amortization interval of the cancellation
// check: hot loops consult ctx.Done() once per this many iterations, so
// a cancellable run costs one counter increment per row instead of one
// channel poll.
const cancelCheckEvery = 1024

// interrupted reports whether the evaluation has been cancelled,
// polling the context at most once per cancelCheckEvery calls. Once it
// returns true it keeps returning true (the error is latched).
func (env *evalEnv) interrupted() bool {
	if env.err != nil {
		return true
	}
	if env.ctx == nil {
		return false
	}
	if env.tick++; env.tick&(cancelCheckEvery-1) != 0 {
		return false
	}
	select {
	case <-env.ctx.Done():
		env.err = env.ctx.Err()
		return true
	default:
		return false
	}
}

// newRow bump-allocates a row and initializes it as a copy of src
// (which may be shorter, e.g. empty). Rows handed out stay valid for
// the whole evaluation; exhausted chunks are abandoned to the GC along
// with the rows that reference them.
func (env *evalEnv) newRow(src slotRow) slotRow {
	w := len(env.vars)
	if w == 0 {
		return slotRow{}
	}
	if len(env.arena)+w > cap(env.arena) {
		chunk := 256 * w
		env.arena = make([]rdf.TermID, 0, chunk)
	}
	start := len(env.arena)
	env.arena = env.arena[:start+w]
	row := slotRow(env.arena[start : start+w : start+w])
	copy(row, src)
	for i := len(src); i < w; i++ {
		row[i] = unboundID
	}
	return row
}

// reserveRows pre-sizes the arena for n upcoming rows, so the emit pass
// of a hash join bump-allocates every merged row out of a single chunk.
func (env *evalEnv) reserveRows(n int) {
	w := len(env.vars)
	if w == 0 || n <= 0 {
		return
	}
	if len(env.arena)+n*w <= cap(env.arena) {
		return
	}
	env.arena = make([]rdf.TermID, 0, n*w)
}

func newEvalEnv(q *Query, g *rdf.Graph) *evalEnv {
	vars := q.Where.PatternVars()
	slots := make(map[Var]int, len(vars))
	for i, v := range vars {
		slots[v] = i
	}
	view := g.Encoded()
	return &evalEnv{
		g:     g,
		view:  view,
		terms: view.Dict().Terms(),
		slots: slots,
		vars:  vars,
		stats: g.Stats(),
	}
}

func (env *evalEnv) emptyRow() slotRow { return env.newRow(nil) }

// decodeRow materializes one id-space row as a Binding.
func (env *evalEnv) decodeRow(row slotRow) Binding {
	b := make(Binding, len(row))
	for i, id := range row {
		if id != unboundID {
			b[env.vars[i]] = env.terms[id]
		}
	}
	return b
}

func (env *evalEnv) decodeRows(rows []slotRow) []Binding {
	out := make([]Binding, len(rows))
	for i, row := range rows {
		out[i] = env.decodeRow(row)
	}
	return out
}

// describeResources returns the description graph of a DESCRIBE query:
// for every target resource (constant, or each binding of a target
// variable), all triples with that resource as subject — a simplified
// concise bounded description.
func describeResources(q *Query, rows []Binding, g *rdf.Graph) *Results {
	targets := map[rdf.Term]bool{}
	var order []rdf.Term
	add := func(t rdf.Term) {
		if t.IsLiteral() || targets[t] {
			return
		}
		targets[t] = true
		order = append(order, t)
	}
	for _, el := range q.Describe {
		if !el.IsVar {
			add(el.Term)
			continue
		}
		for _, b := range rows {
			if t, ok := b[el.Var]; ok {
				add(t)
			}
		}
	}
	res := &Results{IsGraph: true}
	seen := map[rdf.Triple]bool{}
	for _, t := range order {
		for _, tr := range g.WithSubject(t) {
			if !seen[tr] {
				seen[tr] = true
				res.Triples = append(res.Triples, tr)
			}
		}
	}
	return res
}

func (env *evalEnv) evalPattern(p GraphPattern) ([]slotRow, error) {
	if env.err != nil {
		return nil, env.err
	}
	switch n := p.(type) {
	case BGP:
		rows := env.evalBGP(n)
		if env.err != nil { // cancelled mid-scan
			return nil, env.err
		}
		return rows, nil
	case Group:
		rows := []slotRow{env.emptyRow()}
		for _, part := range n.Parts {
			sub, err := env.evalPattern(part)
			if err != nil {
				return nil, err
			}
			rows = env.joinRows(rows, sub)
			if env.err != nil {
				return nil, env.err
			}
		}
		return rows, nil
	case Filter:
		rows, err := env.evalPattern(n.Inner)
		if err != nil {
			return nil, err
		}
		// Filter in place: every evalPattern result is freshly built and
		// referenced only by its parent, so the surviving rows can be
		// compacted into the same slice instead of growing a new one.
		kept := rows[:0]
		for _, row := range rows {
			if env.evalFilter(n.Cond, row) {
				kept = append(kept, row)
			}
		}
		return kept, nil
	case Optional:
		left, err := env.evalPattern(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := env.evalPattern(n.Right)
		if err != nil {
			return nil, err
		}
		rows := env.optionalRows(left, right)
		if env.err != nil { // cancelled mid-join: rows are partial
			return nil, env.err
		}
		return rows, nil
	case Union:
		left, err := env.evalPattern(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := env.evalPattern(n.Right)
		if err != nil {
			return nil, err
		}
		// Right-side rows are copied through the arena rather than
		// appended directly. This establishes the invariant that the
		// two branches never share row storage in the combined
		// sequence: rows are immutable once produced today, but any
		// future in-place row modifier (e.g. a projection clearing
		// slots in place) would otherwise alias across branches.
		out := make([]slotRow, 0, len(left)+len(right))
		out = append(out, left...)
		for _, r := range right {
			out = append(out, env.newRow(r))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("sparql: cannot evaluate pattern %T", p)
	}
}

// compatibleRows reports whether two rows agree on every slot bound in
// both (the SPARQL join condition, in id space).
func compatibleRows(a, b slotRow) bool {
	for i, v := range a {
		if v != unboundID && b[i] != unboundID && b[i] != v {
			return false
		}
	}
	return true
}

// mergeRows returns the union of two compatible rows.
func (env *evalEnv) mergeRows(a, b slotRow) slotRow {
	out := env.newRow(a)
	for i, v := range b {
		if out[i] == unboundID {
			out[i] = v
		}
	}
	return out
}

// The join engine: joinRows, optionalRows, and the Group-part fold all
// run as id-space hash joins. The join key is the set of slots bound in
// every row of both sides (computed per join from the slot table); the
// smaller side is hashed on that key into a chained array table and the
// other side probes it. Candidate pairs are still verified with
// compatibleRows, so hash collisions and shared-but-non-key slots are
// handled exactly as the nested loop would. A counting pass sizes the
// output slice and the row arena before any row is merged, so a hash
// join performs O(1) allocations on top of the output rows themselves.
// The nested loop survives as the fallback for the two cases a hash key
// cannot express: sides sharing no slots at all (a true cartesian
// product) and sides whose bindings are partial on the would-be build
// key (an unbound key slot is compatible with every value, which a hash
// bucket cannot model).

// sharedKeySlots returns the slots bound in every row of a AND every
// row of b — the hash-join key. An empty key means the join must fall
// back to the nested loop.
func (env *evalEnv) sharedKeySlots(a, b []slotRow) []int {
	w := len(env.vars)
	if w == 0 || len(a) == 0 || len(b) == 0 {
		return nil
	}
	const allA, allB = 1, 2
	flags := make([]uint8, w)
	for s, id := range a[0] {
		if id != unboundID {
			flags[s] |= allA
		}
	}
	for _, row := range a[1:] {
		for s, id := range row {
			if id == unboundID {
				flags[s] &^= allA
			}
		}
	}
	for s, id := range b[0] {
		if id != unboundID {
			flags[s] |= allB
		}
	}
	for _, row := range b[1:] {
		for s, id := range row {
			if id == unboundID {
				flags[s] &^= allB
			}
		}
	}
	key := make([]int, 0, w)
	for s, f := range flags {
		if f == allA|allB {
			key = append(key, s)
		}
	}
	return key
}

// rowKeyHash hashes the ids at the key slots (FNV-1a over the 4 bytes
// of each id). Equal key values always collide into the same bucket;
// unequal values that collide are rejected by compatibleRows.
func rowKeyHash(row slotRow, key []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, s := range key {
		id := row[s]
		h = (h ^ uint64(id&0xff)) * prime64
		h = (h ^ uint64((id>>8)&0xff)) * prime64
		h = (h ^ uint64((id>>16)&0xff)) * prime64
		h = (h ^ uint64(id>>24)) * prime64
	}
	return h
}

// buildJoinTable hashes rows on the key slots into a chained array
// table: head[bucket] is the first row index, next[i] chains to the
// following one. Rows are inserted back to front so every bucket lists
// row indexes in ascending order, which keeps hash-join output in the
// exact order the nested loop would produce.
func buildJoinTable(rows []slotRow, key []int) (head, next []int32, mask uint64) {
	m := 1
	for m < 2*len(rows) {
		m <<= 1
	}
	head = make([]int32, m)
	for i := range head {
		head[i] = -1
	}
	next = make([]int32, len(rows))
	mask = uint64(m - 1)
	for i := len(rows) - 1; i >= 0; i-- {
		h := rowKeyHash(rows[i], key) & mask
		next[i] = head[h]
		head[h] = int32(i)
	}
	return head, next, mask
}

// allUnbound reports whether no slot of the row is bound.
func allUnbound(row slotRow) bool {
	for _, id := range row {
		if id != unboundID {
			return false
		}
	}
	return true
}

// joinRows computes the SPARQL join of two solution sequences with an
// id-space hash join, falling back to the nested loop when the sides
// share no all-bound slots. Output order is identical to the nested
// loop's (a-major, b-suborder) on every path.
func (env *evalEnv) joinRows(a, b []slotRow) []slotRow {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	// A single all-unbound row is the join identity (the Group-fold
	// seed): merging it with any row yields that row back.
	if len(a) == 1 && allUnbound(a[0]) {
		return b
	}
	if len(b) == 1 && allUnbound(b[0]) {
		return a
	}
	key := env.sharedKeySlots(a, b)
	if len(key) == 0 {
		return env.nestedJoinRows(a, b)
	}
	if len(b) <= len(a) {
		return env.hashJoinBuildRight(a, b, key)
	}
	return env.hashJoinBuildLeft(a, b, key)
}

// nestedJoinRows is the O(n·m) fallback join, kept for cartesian joins
// (no shared slots) and joins whose bindings are partial on the build
// key. It is also the baseline the hash-join benchmarks measure against.
func (env *evalEnv) nestedJoinRows(a, b []slotRow) []slotRow {
	var out []slotRow
	for _, x := range a {
		for _, y := range b {
			if env.interrupted() {
				return out
			}
			if compatibleRows(x, y) {
				out = append(out, env.mergeRows(x, y))
			}
		}
	}
	return out
}

// hashJoinBuildRight builds the table on b (the smaller side) and
// probes with a: one pass counts the matches to size the output and the
// arena exactly, the second emits them in a-major order.
func (env *evalEnv) hashJoinBuildRight(a, b []slotRow, key []int) []slotRow {
	head, next, mask := buildJoinTable(b, key)
	total := 0
	for _, x := range a {
		if env.interrupted() {
			return nil
		}
		h := rowKeyHash(x, key) & mask
		for yi := head[h]; yi >= 0; yi = next[yi] {
			if compatibleRows(x, b[yi]) {
				total++
			}
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]slotRow, 0, total)
	env.reserveRows(total)
	for _, x := range a {
		if env.interrupted() {
			return out
		}
		h := rowKeyHash(x, key) & mask
		for yi := head[h]; yi >= 0; yi = next[yi] {
			if y := b[yi]; compatibleRows(x, y) {
				out = append(out, env.mergeRows(x, y))
			}
		}
	}
	return out
}

// hashJoinBuildLeft builds the table on a (the smaller side) and probes
// with b, scattering matches through per-build-row cursors so the
// output still comes out in a-major order with b-suborder.
func (env *evalEnv) hashJoinBuildLeft(a, b []slotRow, key []int) []slotRow {
	head, next, mask := buildJoinTable(a, key)
	counts := make([]int32, len(a))
	total := 0
	for _, y := range b {
		if env.interrupted() {
			return nil
		}
		h := rowKeyHash(y, key) & mask
		for xi := head[h]; xi >= 0; xi = next[xi] {
			if compatibleRows(a[xi], y) {
				counts[xi]++
				total++
			}
		}
	}
	if total == 0 {
		return nil
	}
	// Prefix-sum the counts into write cursors.
	sum := int32(0)
	for i, c := range counts {
		counts[i] = sum
		sum += c
	}
	out := make([]slotRow, total)
	env.reserveRows(total)
	for _, y := range b {
		if env.interrupted() {
			// The scatter is incomplete — out still has nil holes that
			// would crash any consumer — so return nothing. The latched
			// error stops the evaluation right above this frame.
			return nil
		}
		h := rowKeyHash(y, key) & mask
		for xi := head[h]; xi >= 0; xi = next[xi] {
			if x := a[xi]; compatibleRows(x, y) {
				out[counts[xi]] = env.mergeRows(x, y)
				counts[xi]++
			}
		}
	}
	return out
}

// optionalRows computes the SPARQL left join (OPTIONAL): every left row
// extended by each compatible right row, or passed through unchanged
// when none matches. The hash path mirrors joinRows; the fallback keeps
// the nested loop's exact semantics for partial bindings on the join
// variables (an unbound slot matches everything).
func (env *evalEnv) optionalRows(left, right []slotRow) []slotRow {
	if len(left) == 0 {
		return nil
	}
	if len(right) == 0 {
		return left
	}
	key := env.sharedKeySlots(left, right)
	if len(key) == 0 {
		return env.nestedOptionalRows(left, right)
	}
	if len(right) <= len(left) {
		return env.hashOptionalBuildRight(left, right, key)
	}
	return env.hashOptionalBuildLeft(left, right, key)
}

// nestedOptionalRows is the O(n·m) fallback left join.
func (env *evalEnv) nestedOptionalRows(left, right []slotRow) []slotRow {
	var out []slotRow
	for _, l := range left {
		matched := false
		for _, r := range right {
			if env.interrupted() {
				return out
			}
			if compatibleRows(l, r) {
				out = append(out, env.mergeRows(l, r))
				matched = true
			}
		}
		if !matched {
			out = append(out, l)
		}
	}
	return out
}

// hashOptionalBuildRight builds the table on the right side and probes
// with the left rows; unmatched left rows pass through without an arena
// copy, exactly like the nested loop.
func (env *evalEnv) hashOptionalBuildRight(left, right []slotRow, key []int) []slotRow {
	head, next, mask := buildJoinTable(right, key)
	total, merged := 0, 0
	for _, l := range left {
		if env.interrupted() {
			return nil
		}
		h := rowKeyHash(l, key) & mask
		n := 0
		for ri := head[h]; ri >= 0; ri = next[ri] {
			if compatibleRows(l, right[ri]) {
				n++
			}
		}
		if n == 0 {
			total++
		} else {
			total += n
			merged += n
		}
	}
	out := make([]slotRow, 0, total)
	env.reserveRows(merged)
	for _, l := range left {
		if env.interrupted() {
			return out
		}
		h := rowKeyHash(l, key) & mask
		matched := false
		for ri := head[h]; ri >= 0; ri = next[ri] {
			if r := right[ri]; compatibleRows(l, r) {
				out = append(out, env.mergeRows(l, r))
				matched = true
			}
		}
		if !matched {
			out = append(out, l)
		}
	}
	return out
}

// hashOptionalBuildLeft builds the table on the left side and probes
// with the right rows, scattering merges through per-left-row cursors;
// left rows with no match keep their single slot and pass through
// uncopied. Output order matches the nested loop exactly.
func (env *evalEnv) hashOptionalBuildLeft(left, right []slotRow, key []int) []slotRow {
	head, next, mask := buildJoinTable(left, key)
	counts := make([]int32, len(left))
	merged := 0
	for _, r := range right {
		if env.interrupted() {
			return nil
		}
		h := rowKeyHash(r, key) & mask
		for li := head[h]; li >= 0; li = next[li] {
			if compatibleRows(left[li], r) {
				counts[li]++
				merged++
			}
		}
	}
	// Prefix-sum into write cursors; unmatched left rows take one slot
	// and are placed immediately.
	total := 0
	for _, c := range counts {
		if c == 0 {
			total++
		} else {
			total += int(c)
		}
	}
	out := make([]slotRow, total)
	env.reserveRows(merged)
	pos := int32(0)
	for i, c := range counts {
		counts[i] = pos
		if c == 0 {
			out[pos] = left[i]
			pos++
		} else {
			pos += c
		}
	}
	for _, r := range right {
		if env.interrupted() {
			// Incomplete scatter: nil holes remain, return nothing (the
			// latched error aborts the evaluation).
			return nil
		}
		h := rowKeyHash(r, key) & mask
		for li := head[h]; li >= 0; li = next[li] {
			if l := left[li]; compatibleRows(l, r) {
				out[counts[li]] = env.mergeRows(l, r)
				counts[li]++
			}
		}
	}
	return out
}

// evalFilter computes the effective boolean value of a FILTER over an
// id-space row, decoding only the terms the expression touches. An
// expression type the compiler does not know falls back to the
// map-based FilterExpr API on a decoded row.
func (env *evalEnv) evalFilter(e FilterExpr, row slotRow) bool {
	switch n := e.(type) {
	case Comparison:
		l, ok := env.resolveOperand(n.L, row)
		if !ok {
			return false
		}
		r, ok := env.resolveOperand(n.R, row)
		if !ok {
			return false
		}
		return cmpSatisfies(n.Op, CompareTerms(l, r))
	case LogicalAnd:
		return env.evalFilter(n.L, row) && env.evalFilter(n.R, row)
	case LogicalOr:
		return env.evalFilter(n.L, row) || env.evalFilter(n.R, row)
	case LogicalNot:
		return !env.evalFilter(n.E, row)
	case Bound:
		slot, ok := env.slots[n.Var]
		return ok && row[slot] != unboundID
	default:
		// Unknown expression types fall back to the map-based
		// FilterExpr API. When the expression can enumerate the
		// variables it touches, only those are decoded; otherwise the
		// whole row is.
		if vl, ok := e.(VarLister); ok {
			return e.EvalFilter(env.decodeVars(row, vl.FilterVars()))
		}
		return e.EvalFilter(env.decodeRow(row))
	}
}

// decodeVars materializes just the named variables of an id-space row
// as a Binding, for filter expressions that declare what they touch.
func (env *evalEnv) decodeVars(row slotRow, vars []Var) Binding {
	b := make(Binding, len(vars))
	for _, v := range vars {
		if s, ok := env.slots[v]; ok {
			if id := row[s]; id != unboundID {
				b[v] = env.terms[id]
			}
		}
	}
	return b
}

func (env *evalEnv) resolveOperand(o Operand, row slotRow) (rdf.Term, bool) {
	if !o.IsVar {
		return o.Term, true
	}
	slot, ok := env.slots[o.Var]
	if !ok {
		return rdf.Term{}, false
	}
	id := row[slot]
	if id == unboundID {
		return rdf.Term{}, false
	}
	return env.terms[id], true
}

// cElem is one compiled triple-pattern position: either a slot index
// (variables) or a pre-encoded constant id. A constant absent from the
// dictionary (ok=false) cannot match any triple.
type cElem struct {
	isVar bool
	slot  int
	id    rdf.TermID
	ok    bool
}

// cPattern is one compiled triple pattern with its selectivity
// estimate.
type cPattern struct {
	s, p, o cElem
	est     int
	slots   []int // distinct variable slots, for join-ordering
}

func (env *evalEnv) compileElem(e TPElem) cElem {
	if e.IsVar {
		return cElem{isVar: true, slot: env.slots[e.Var]}
	}
	id, ok := env.view.Dict().Lookup(e.Term)
	return cElem{id: id, ok: ok}
}

// compilePattern encodes the pattern's constants and estimates its
// result cardinality from the dataset statistics: the tightest bound
// among the per-subject, per-object, and per-predicate (SPARQLGX
// PredicateCounts) index cardinalities, or the triple count when fully
// unbound.
func (env *evalEnv) compilePattern(tp TriplePattern) cPattern {
	cp := cPattern{
		s: env.compileElem(tp.S),
		p: env.compileElem(tp.P),
		o: env.compileElem(tp.O),
	}
	for _, e := range [3]cElem{cp.s, cp.p, cp.o} {
		if !e.isVar {
			continue
		}
		dup := false
		for _, s := range cp.slots {
			if s == e.slot {
				dup = true
				break
			}
		}
		if !dup {
			cp.slots = append(cp.slots, e.slot)
		}
	}
	est := env.stats.Triples
	switch {
	case !cp.s.isVar && !cp.s.ok, !cp.p.isVar && !cp.p.ok, !cp.o.isVar && !cp.o.ok:
		est = 0
	default:
		if !cp.s.isVar {
			if n := len(env.view.WithSubject(cp.s.id)); n < est {
				est = n
			}
		}
		if !cp.o.isVar {
			if n := len(env.view.WithObject(cp.o.id)); n < est {
				est = n
			}
		}
		if !cp.p.isVar {
			if n := env.stats.PredicateCounts[tp.P.Term.Value]; n < est {
				est = n
			}
		}
	}
	cp.est = est
	return cp
}

// orderPatterns reorders compiled patterns greedily by estimated
// selectivity: start from the most selective pattern, then repeatedly
// take the most selective pattern connected to an already-bound
// variable (avoiding Cartesian intermediates), falling back to the
// global minimum when no remaining pattern connects. Ties keep the
// original order, so fully-unselective queries evaluate as written.
func orderPatterns(cps []cPattern, nslots int) []cPattern {
	n := len(cps)
	if n <= 1 {
		return cps
	}
	used := make([]bool, n)
	bound := make([]bool, nslots)
	out := make([]cPattern, 0, n)
	for len(out) < n {
		best, bestConnected := -1, false
		for i, cp := range cps {
			if used[i] {
				continue
			}
			connected := false
			for _, s := range cp.slots {
				if bound[s] {
					connected = true
					break
				}
			}
			if best == -1 ||
				(connected && !bestConnected) ||
				(connected == bestConnected && cp.est < cps[best].est) {
				best, bestConnected = i, connected
			}
		}
		used[best] = true
		for _, s := range cps[best].slots {
			bound[s] = true
		}
		out = append(out, cps[best])
	}
	return out
}

// evalBGP evaluates a conjunction of triple patterns by iterated
// selection and join over the encoded indexes, visiting patterns in
// selectivity order. Prepared runs reuse the compiled-and-ordered
// pattern list across calls via planFor.
func (env *evalEnv) evalBGP(b BGP) []slotRow {
	seq := env.bgpSeq
	env.bgpSeq++
	cps := env.planFor(seq, b)
	rows := []slotRow{env.emptyRow()}
	scratch := env.emptyRow()
	for _, cp := range cps {
		next := make([]slotRow, 0, len(rows))
		for _, row := range rows {
			next = env.matchPattern(cp, row, scratch, next)
			if env.err != nil {
				return nil
			}
		}
		rows = next
		if len(rows) == 0 {
			break
		}
	}
	return rows
}

// planFor returns the compiled, selectivity-ordered patterns of the
// seq-th BGP of the query. Plain Evaluate compiles on every call; a
// Prepared run consults the plan cache first, so re-running a plan on
// an unchanged graph snapshot skips constant encoding, selectivity
// estimation, and join ordering entirely. Cached plans are immutable
// after publication and therefore safe to share across concurrent runs.
func (env *evalEnv) planFor(seq int, b BGP) []cPattern {
	if env.prep != nil {
		if cps := env.prep.cachedPlan(env.view, seq); cps != nil {
			return cps
		}
	}
	cps := make([]cPattern, len(b.Patterns))
	for i, tp := range b.Patterns {
		cps[i] = env.compilePattern(tp)
	}
	cps = orderPatterns(cps, len(env.vars))
	if env.prep != nil {
		env.prep.storePlan(env.view, seq, cps)
	}
	return cps
}

// elemID resolves a compiled element under a row: constants yield
// their id, variables their current binding (bound=false when the slot
// is empty). miss is true for constants absent from the dictionary.
func elemID(e cElem, row slotRow) (id rdf.TermID, bound, miss bool) {
	if !e.isVar {
		return e.id, true, !e.ok
	}
	id = row[e.slot]
	return id, id != unboundID, false
}

// matchPattern appends to out every extension of row by a triple
// matching cp. scratch must be a row-sized buffer; it is clobbered.
func (env *evalEnv) matchPattern(cp cPattern, row slotRow, scratch slotRow, out []slotRow) []slotRow {
	sID, sBound, sMiss := elemID(cp.s, row)
	pID, pBound, pMiss := elemID(cp.p, row)
	oID, oBound, oMiss := elemID(cp.o, row)
	if sMiss || pMiss || oMiss {
		return out
	}
	// Scan the smallest applicable index.
	candidates := env.view.Triples()
	if sBound {
		candidates = env.view.WithSubject(sID)
	}
	if oBound {
		if byO := env.view.WithObject(oID); len(byO) < len(candidates) {
			candidates = byO
		}
	}
	if pBound {
		if byP := env.view.WithPredicate(pID); len(byP) < len(candidates) {
			candidates = byP
		}
	}
	for _, t := range candidates {
		if env.interrupted() {
			return out
		}
		if sBound && t.S != sID {
			continue
		}
		if pBound && t.P != pID {
			continue
		}
		if oBound && t.O != oID {
			continue
		}
		// Bind the variable positions, checking consistency for
		// variables repeated within the pattern (e.g. ?x ?p ?x).
		copy(scratch, row)
		ok := true
		for _, bind := range [3]struct {
			e  cElem
			id rdf.TermID
		}{{cp.s, t.S}, {cp.p, t.P}, {cp.o, t.O}} {
			if !bind.e.isVar {
				continue
			}
			if cur := scratch[bind.e.slot]; cur == unboundID {
				scratch[bind.e.slot] = bind.id
			} else if cur != bind.id {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, env.newRow(scratch))
		}
	}
	return out
}
