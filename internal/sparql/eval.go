package sparql

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rdf"
)

// The reference evaluator is slot-compiled: each query is compiled
// once into a Var→slot table, and every partial solution is a
// []rdf.TermID row indexed by slot (unboundID marking empty slots)
// over the graph's dictionary-encoded triples. Joins, OPTIONALs, and
// intra-pattern consistency checks compare 4-byte ids instead of
// string-bearing Terms, and extending a solution copies one small
// slice instead of cloning a map per candidate triple. BGPs are
// reordered by estimated selectivity from rdf.Stats (the SPARQLGX
// statistics) before evaluation. Ids are decoded back to Terms only
// when the final solution sequence is materialized as Bindings.

// unboundID marks an empty slot in a compiled solution row.
const unboundID = ^rdf.TermID(0)

// slotRow is one partial solution in id space: index i holds the id
// bound to the query's i-th variable, or unboundID. Rows are immutable
// once produced.
type slotRow []rdf.TermID

// Evaluate runs q over g with the reference evaluator: a direct,
// centralized implementation of the SPARQL algebra. Every distributed
// engine in internal/systems is tested against it. For repeated or
// cancellable evaluation use Prepare / (*Prepared).Run, which share
// this exact code path.
func Evaluate(q *Query, g *rdf.Graph) (*Results, error) {
	return evaluate(newEvalEnv(q, g), q)
}

// evaluate is the shared body of Evaluate and (*Prepared).Run.
func evaluate(env *evalEnv, q *Query) (*Results, error) {
	defer env.close()
	rows, err := env.evalPattern(q.Where)
	if err != nil {
		return nil, err
	}
	if env.err != nil {
		return nil, env.err
	}
	// Plain SELECT and ASK run the whole modifier pipeline in id
	// space and decode only the surviving rows. Aggregates, CONSTRUCT,
	// and DESCRIBE need term values for every solution, so they decode
	// first and share the engines' modifier tail.
	if (q.Form == FormSelect || q.Form == FormAsk) && q.Agg == nil {
		res := env.applyModifiers(q, rows)
		if env.err != nil { // cancelled inside the pipeline (top-K scan)
			return nil, env.err
		}
		return res, nil
	}
	decoded := env.decodeRows(rows)
	if q.Form == FormDescribe {
		if env.describe != nil {
			return env.describe(q, decoded), nil
		}
		return describeResources(q, decoded, env.g), nil
	}
	return ApplySolutionModifiers(q, decoded), nil
}

// applyModifiers applies projection / DISTINCT / ORDER BY / OFFSET /
// LIMIT over id-space rows, mirroring ApplySolutionModifiers exactly,
// and decodes only the rows that survive.
func (env *evalEnv) applyModifiers(q *Query, rows []slotRow) *Results {
	if q.Form == FormAsk {
		return &Results{IsAsk: true, Ask: len(rows) > 0}
	}
	vars := q.SelectedVars()
	rows = env.modifierPipeline(q, vars, rows)
	return &Results{Vars: append([]Var{}, vars...), Rows: env.decodeRows(rows)}
}

// modifierPipeline runs projection / DISTINCT / ORDER BY / OFFSET /
// LIMIT entirely in id space and returns the surviving rows undecoded.
// Both the Binding-materializing path (applyModifiers) and the
// streaming path ((*Prepared).RunSolutions) share it.
func (env *evalEnv) modifierPipeline(q *Query, vars []Var, rows []slotRow) []slotRow {
	sp := env.span("modifiers")
	sp.SetInt("rows_in", int64(len(rows)))
	rows = env.projectRows(rows, vars)
	if q.Distinct {
		rows = env.distinctRows(rows)
	}
	if len(q.OrderBy) > 0 {
		topK := -1
		if q.Limit >= 0 {
			if k := q.Limit + q.Offset; k >= 0 { // guard vs overflow
				topK = k
			}
		}
		rows = env.sortRows(rows, q.OrderBy, topK)
	}
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	sp.SetInt("rows", int64(len(rows)))
	env.endSpan(sp)
	return rows
}

// projectRows restricts rows to the selected variables by clearing
// every other slot. When the projection keeps every compiled slot the
// rows are returned as-is (no copy).
func (env *evalEnv) projectRows(rows []slotRow, vars []Var) []slotRow {
	keep := make([]bool, len(env.vars))
	kept := 0
	for _, v := range vars {
		if s, ok := env.slots[v]; ok && !keep[s] {
			keep[s] = true
			kept++
		}
	}
	if kept == len(env.vars) {
		return rows
	}
	out := make([]slotRow, len(rows))
	for i, row := range rows {
		nr := env.newRow(row)
		for s := range nr {
			if !keep[s] {
				nr[s] = unboundID
			}
		}
		out[i] = nr
	}
	return out
}

// distinctRows deduplicates rows on their full slot vector. Ids are
// injective over terms, so id equality is exactly the term equality
// the map-based DISTINCT uses.
func (env *evalEnv) distinctRows(rows []slotRow) []slotRow {
	seen := make(map[string]bool, len(rows))
	var kept []slotRow
	buf := make([]byte, 0, 4*len(env.vars))
	for _, row := range rows {
		buf = buf[:0]
		for _, id := range row {
			buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		if !seen[string(buf)] {
			seen[string(buf)] = true
			kept = append(kept, row)
		}
	}
	return kept
}

// keySlot is one compiled ORDER BY key: the slot it reads (-1 for a
// variable the query never binds) and its direction.
type keySlot struct {
	slot int
	asc  bool
}

func (env *evalEnv) compileOrderKeys(keys []OrderKey) []keySlot {
	ks := make([]keySlot, 0, len(keys))
	for _, k := range keys {
		if s, ok := env.slots[k.Var]; ok {
			ks = append(ks, keySlot{s, k.Asc})
		} else {
			ks = append(ks, keySlot{-1, k.Asc})
		}
	}
	return ks
}

// compareRowsByKeys three-way-compares two rows under the ORDER BY
// keys, with the same unbound-first/last semantics as Results.SortRows:
// an unbound value sorts before every bound value ascending and after
// every bound value descending.
func (env *evalEnv) compareRowsByKeys(a, b slotRow, ks []keySlot) int {
	for _, k := range ks {
		var ta, tb rdf.TermID = unboundID, unboundID
		if k.slot >= 0 {
			ta, tb = a[k.slot], b[k.slot]
		}
		if ta == unboundID && tb == unboundID {
			continue
		}
		if ta == unboundID {
			if k.asc {
				return -1
			}
			return 1
		}
		if tb == unboundID {
			if k.asc {
				return 1
			}
			return -1
		}
		c := CompareTerms(env.terms[ta], env.terms[tb])
		if c == 0 {
			continue
		}
		if !k.asc {
			c = -c
		}
		return c
	}
	return 0
}

// sortRows orders rows by the ORDER BY keys, with the same
// unbound-first/last and stability semantics as Results.SortRows, and
// returns the surviving prefix. topK < 0 (or >= len(rows)) requests
// the full stable sort in place. 0 <= topK < len(rows) — ORDER BY with
// a LIMIT (+ OFFSET) that keeps only the first topK rows — selects and
// orders those rows with a bounded max-heap instead of sorting the
// whole sequence: O(n log k) comparisons and one k-entry scratch
// allocation instead of O(n log n) over everything. Ties break on the
// original row index, which is exactly the order a stable full sort
// followed by truncation would produce.
func (env *evalEnv) sortRows(rows []slotRow, keys []OrderKey, topK int) []slotRow {
	ks := env.compileOrderKeys(keys)
	if topK >= 0 && topK < len(rows) {
		return env.topKRows(rows, ks, topK)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return env.compareRowsByKeys(rows[i], rows[j], ks) < 0
	})
	return rows
}

// heapEnt is one bounded-heap entry: a candidate row and its original
// index (the stability tie-break).
type heapEnt struct {
	row slotRow
	idx int
}

// entBefore reports whether a sorts strictly before b under the keys,
// breaking ties by original position (stable-sort order).
func (env *evalEnv) entBefore(a, b heapEnt, ks []keySlot) bool {
	if c := env.compareRowsByKeys(a.row, b.row, ks); c != 0 {
		return c < 0
	}
	return a.idx < b.idx
}

// siftDown restores the max-heap property (largest entry at the root)
// from position i.
func (env *evalEnv) siftDown(h []heapEnt, i int, ks []keySlot) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		big := l
		if r := l + 1; r < len(h) && env.entBefore(h[l], h[r], ks) {
			big = r
		}
		if !env.entBefore(h[i], h[big], ks) {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// topKRows writes the k smallest rows (under ks + stable tie-break),
// in sorted order, into rows[:k] and returns that prefix. It maintains
// a k-entry max-heap whose root is the worst candidate: a new row
// enters only by beating the root, and a final heap-sort pass orders
// the survivors.
func (env *evalEnv) topKRows(rows []slotRow, ks []keySlot, k int) []slotRow {
	if k == 0 {
		return rows[:0]
	}
	h := make([]heapEnt, k)
	for i := 0; i < k; i++ {
		h[i] = heapEnt{rows[i], i}
	}
	for i := k/2 - 1; i >= 0; i-- {
		env.siftDown(h, i, ks)
	}
	for i := k; i < len(rows); i++ {
		if env.interrupted() {
			break
		}
		if e := (heapEnt{rows[i], i}); env.entBefore(e, h[0], ks) {
			h[0] = e
			env.siftDown(h, 0, ks)
		}
	}
	for n := k - 1; n > 0; n-- {
		h[0], h[n] = h[n], h[0]
		env.siftDown(h[:n], 0, ks)
	}
	out := rows[:k]
	for i, e := range h {
		out[i] = e.row
	}
	return out
}

// evalEnv is the per-query compilation environment: the slot table,
// the encoded graph view, and the dataset statistics driving join
// ordering. Rows are bump-allocated from chunked arenas, so producing
// a solution costs a copy, not a heap allocation.
type evalEnv struct {
	g     *rdf.Graph
	view  *rdf.EncodedView
	terms []rdf.Term // id→term snapshot for lock-free decoding
	slots map[Var]int
	vars  []Var // slot→var
	stats rdf.Stats
	arena []rdf.TermID // bump allocator for slot rows

	// Cancellation state ((*Prepared).Run): ctx is nil for
	// uncancellable evaluations (Evaluate, or a context that can never
	// be cancelled), so the hot loops pay one nil check. When set, the
	// loops poll ctx.Done() every cancelCheckEvery iterations through
	// interrupted(), latching the context error in err; every layer
	// above bails out as soon as err is non-nil.
	ctx  context.Context
	tick uint
	err  error

	// Morsel-driven parallelism ((*Prepared).Run with parallelism > 1,
	// see parallel.go): par carries the shared per-Run state (worker
	// count, cross-worker cancellation latch, stats counters) and pool
	// the lazily started per-Run worker pool. Both are nil for serial
	// evaluation, which then takes exactly the PR 1–3 code paths.
	par  *parRun
	pool *workerPool

	// limitHint, when > 0, is the number of leading rows the modifier
	// pipeline will keep (LIMIT + OFFSET, or 1 for ASK) for queries
	// whose WHERE clause is a single BGP and whose modifiers only
	// truncate (no DISTINCT, no ORDER BY): the BGP's last pattern — and
	// the morsel dispatcher under it — may stop producing once that
	// many rows exist.
	limitHint int

	// Plan reuse ((*Prepared).Run): prep, when non-nil, caches each
	// BGP's compiled-and-ordered patterns across runs, keyed by the
	// graph snapshot. bgpSeq numbers evalBGP calls in (deterministic)
	// evaluation order to address the cache.
	prep   *Prepared
	bgpSeq int

	// Distributed evaluation hooks (dist.go). bgp, when non-nil,
	// overrides BGP evaluation — the sharded executor routes BGPs
	// through per-shard pushdown or per-pattern scatter-gather;
	// describe, when non-nil, resolves DESCRIBE targets across shards
	// instead of env.g. Everything else — joins, filters, UNION, the
	// modifier pipeline — runs the exact single-graph code above the
	// hooks, which is what keeps sharded output byte-identical.
	bgp      func(BGP) []slotRow
	describe func(*Query, []Binding) *Results

	// Fault handling (replica.go, internal/fault): fplan is the fault
	// plan installed on the run's context (nil outside chaos tests and
	// chaos serving); tally accumulates the run's fault counters and
	// ftally points at the root environment's tally so every worker
	// shares it. tally is embedded by value so arming fault stats costs
	// a run no extra allocation.
	fplan  *fault.Plan
	tally  faultTally
	ftally *faultTally

	// Memory accounting (budget.go): mem, when non-nil, is the run's
	// shared byte budget, charged at arena chunk growth, join-state
	// builds, and gather merges. Workers share the root environment's
	// tracker (workerEnv), so one budget spans the whole run. Nil — the
	// default — costs each charge site one nil check.
	mem *memBudget

	// Execution tracing (trace.go, internal/obs): trace, when non-nil,
	// records the run's span tree. The tree is mutated only by the
	// driver goroutine; workers touch only their busy-time accumulator,
	// indexed by wid. Nil — the default — costs each span site one nil
	// check.
	trace *execTrace
	wid   int

	// taskStop, when non-nil, is the first-completion-wins claim of the
	// racing copies of this environment's current task — hedged shard
	// attempts (dist.go) and speculative morsel copies (parallel.go).
	// Once another copy commits, interrupted() reports true WITHOUT
	// latching an error, so the losing copy quietly abandons its
	// private work. Nil everywhere outside a race.
	taskStop *atomic.Bool
}

// cancelCheckEvery is the amortization interval of the cancellation
// check: hot loops consult ctx.Done() once per this many iterations, so
// a cancellable run costs one counter increment per row instead of one
// channel poll.
const cancelCheckEvery = 1024

// interrupted reports whether the evaluation has been cancelled,
// polling the context at most once per cancelCheckEvery calls. Once it
// returns true it keeps returning true (the error is latched). Under a
// parallel run the latch spans workers: the first environment — main
// or worker — to observe ctx.Done() raises the shared parRun.stop
// flag, and every other environment picks it up at its own next poll,
// so one poll every 1024 rows per worker still stops the whole Run.
func (env *evalEnv) interrupted() bool {
	if env.err != nil {
		return true
	}
	if env.ctx == nil && env.taskStop == nil {
		return false
	}
	if env.tick++; env.tick&(cancelCheckEvery-1) != 0 {
		return false
	}
	if env.taskStop != nil && env.taskStop.Load() {
		// This copy of the task lost its race (hedge or speculation):
		// stop computing, but latch no error — the winner's result is
		// already committed and the run is healthy.
		return true
	}
	if env.ctx == nil {
		return false
	}
	if env.par != nil && env.par.stop.Load() {
		env.err = env.ctx.Err()
		return true
	}
	select {
	case <-env.ctx.Done():
		env.err = env.ctx.Err()
		if env.par != nil {
			env.par.stop.Store(true)
		}
		return true
	default:
		return false
	}
}

// newRow bump-allocates a row and initializes it as a copy of src
// (which may be shorter, e.g. empty). Rows handed out stay valid for
// the whole evaluation; exhausted chunks are abandoned to the GC along
// with the rows that reference them.
func (env *evalEnv) newRow(src slotRow) slotRow {
	w := len(env.vars)
	if w == 0 {
		return slotRow{}
	}
	if len(env.arena)+w > cap(env.arena) {
		chunk := 256 * w
		env.charge(int64(chunk)*termIDBytes, stageArena)
		env.arena = make([]rdf.TermID, 0, chunk)
	}
	start := len(env.arena)
	env.arena = env.arena[:start+w]
	row := slotRow(env.arena[start : start+w : start+w])
	copy(row, src)
	for i := len(src); i < w; i++ {
		row[i] = unboundID
	}
	return row
}

// reserveRows pre-sizes the arena for n upcoming rows, so the emit pass
// of a hash join bump-allocates every merged row out of a single chunk.
func (env *evalEnv) reserveRows(n int) {
	w := len(env.vars)
	if w == 0 || n <= 0 {
		return
	}
	if len(env.arena)+n*w <= cap(env.arena) {
		return
	}
	env.charge(int64(n*w)*termIDBytes, stageArena)
	env.arena = make([]rdf.TermID, 0, n*w)
}

func newEvalEnv(q *Query, g *rdf.Graph) *evalEnv {
	vars := q.Where.PatternVars()
	slots := make(map[Var]int, len(vars))
	for i, v := range vars {
		slots[v] = i
	}
	view := g.Encoded()
	env := &evalEnv{
		g:         g,
		view:      view,
		terms:     view.Dict().Terms(),
		slots:     slots,
		vars:      vars,
		stats:     g.Stats(),
		limitHint: limitHintFor(q),
	}
	env.ftally = &env.tally
	return env
}

// limitHintFor computes the LIMIT-pushdown hint of a query: the number
// of leading pattern rows the modifier pipeline keeps, or 0 when
// truncation cannot be pushed below the modifiers. The hint is only
// sound when the WHERE clause is a single BGP (its output feeds the
// pipeline directly — joins above a BGP could drop or multiply rows)
// and when every modifier preserves the leading rows: projection
// always does, DISTINCT and ORDER BY do not. ASK needs exactly one
// row; SELECT needs OFFSET+LIMIT.
func limitHintFor(q *Query) int {
	if q.Agg != nil || q.Distinct || len(q.OrderBy) > 0 || !isSoleBGP(q.Where) {
		return 0
	}
	switch q.Form {
	case FormAsk:
		return 1
	case FormSelect:
		if q.Limit >= 0 {
			if n := q.Limit + q.Offset; n > 0 {
				return n
			}
		}
	}
	return 0
}

// isSoleBGP reports whether the pattern is exactly one BGP, possibly
// wrapped in single-part groups. (Unlike Query.BGPOf it rejects a
// conjunction of several BGPs: those evaluate as a join fold, so the
// last BGP's output is not the final row sequence.)
func isSoleBGP(p GraphPattern) bool {
	for {
		switch n := p.(type) {
		case BGP:
			return true
		case Group:
			if len(n.Parts) != 1 {
				return false
			}
			p = n.Parts[0]
		default:
			return false
		}
	}
}

func (env *evalEnv) emptyRow() slotRow { return env.newRow(nil) }

// decodeRow materializes one id-space row as a Binding.
func (env *evalEnv) decodeRow(row slotRow) Binding {
	b := make(Binding, len(row))
	for i, id := range row {
		if id != unboundID {
			b[env.vars[i]] = env.terms[id]
		}
	}
	return b
}

func (env *evalEnv) decodeRows(rows []slotRow) []Binding {
	out := make([]Binding, len(rows))
	for i, row := range rows {
		out[i] = env.decodeRow(row)
	}
	return out
}

// describeResources returns the description graph of a DESCRIBE query:
// for every target resource (constant, or each binding of a target
// variable), all triples with that resource as subject — a simplified
// concise bounded description.
func describeResources(q *Query, rows []Binding, g *rdf.Graph) *Results {
	targets := map[rdf.Term]bool{}
	var order []rdf.Term
	add := func(t rdf.Term) {
		if t.IsLiteral() || targets[t] {
			return
		}
		targets[t] = true
		order = append(order, t)
	}
	for _, el := range q.Describe {
		if !el.IsVar {
			add(el.Term)
			continue
		}
		for _, b := range rows {
			if t, ok := b[el.Var]; ok {
				add(t)
			}
		}
	}
	res := &Results{IsGraph: true}
	seen := map[rdf.Triple]bool{}
	for _, t := range order {
		for _, tr := range g.WithSubject(t) {
			if !seen[tr] {
				seen[tr] = true
				res.Triples = append(res.Triples, tr)
			}
		}
	}
	return res
}

func (env *evalEnv) evalPattern(p GraphPattern) ([]slotRow, error) {
	if env.err != nil {
		return nil, env.err
	}
	switch n := p.(type) {
	case BGP:
		var rows []slotRow
		if env.bgp != nil {
			rows = env.bgp(n)
		} else {
			rows = env.evalBGP(n)
		}
		if env.err != nil { // cancelled mid-scan
			return nil, env.err
		}
		return rows, nil
	case Group:
		rows := []slotRow{env.emptyRow()}
		for _, part := range n.Parts {
			sub, err := env.evalPattern(part)
			if err != nil {
				return nil, err
			}
			rows = env.joinRows(rows, sub)
			if env.err != nil {
				return nil, env.err
			}
		}
		return rows, nil
	case Filter:
		rows, err := env.evalPattern(n.Inner)
		if err != nil {
			return nil, err
		}
		sp := env.span("filter")
		sp.SetInt("rows_in", int64(len(rows)))
		// Filter in place: every evalPattern result is freshly built and
		// referenced only by its parent, so the surviving rows can be
		// compacted into the same slice instead of growing a new one.
		kept := rows[:0]
		for _, row := range rows {
			if env.evalFilter(n.Cond, row) {
				kept = append(kept, row)
			}
		}
		sp.SetInt("rows", int64(len(kept)))
		env.endSpan(sp)
		return kept, nil
	case Optional:
		left, err := env.evalPattern(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := env.evalPattern(n.Right)
		if err != nil {
			return nil, err
		}
		rows := env.optionalRows(left, right)
		if env.err != nil { // cancelled mid-join: rows are partial
			return nil, env.err
		}
		return rows, nil
	case Union:
		left, err := env.evalPattern(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := env.evalPattern(n.Right)
		if err != nil {
			return nil, err
		}
		return env.unionRows(left, right), nil
	default:
		return nil, fmt.Errorf("sparql: cannot evaluate pattern %T", p)
	}
}

// unionRows concatenates the two branches of a UNION, sharing both
// branches' slot-row batches: the right-side rows are referenced, not
// copied through the arena. This leans on the engine-wide invariant
// that rows are immutable once produced — every downstream operator
// that rewrites a row (projection, merge) allocates a fresh one, and
// in-place operators (Filter's compaction, sortRows) only permute the
// row *slice*, which is freshly built here. TestUnionSharedBatchAllocs
// pins the no-copy behavior.
func (env *evalEnv) unionRows(left, right []slotRow) []slotRow {
	out := make([]slotRow, 0, len(left)+len(right))
	out = append(out, left...)
	return append(out, right...)
}

// compatibleRows reports whether two rows agree on every slot bound in
// both (the SPARQL join condition, in id space).
func compatibleRows(a, b slotRow) bool {
	for i, v := range a {
		if v != unboundID && b[i] != unboundID && b[i] != v {
			return false
		}
	}
	return true
}

// mergeRows returns the union of two compatible rows.
func (env *evalEnv) mergeRows(a, b slotRow) slotRow {
	out := env.newRow(a)
	for i, v := range b {
		if out[i] == unboundID {
			out[i] = v
		}
	}
	return out
}

// The join engine: joinRows, optionalRows, and the Group-part fold all
// run as id-space hash joins. The join key is the set of slots bound in
// every row of both sides (computed per join from the slot table); the
// smaller side is hashed on that key into a chained array table and the
// other side probes it. Candidate pairs are still verified with
// compatibleRows, so hash collisions and shared-but-non-key slots are
// handled exactly as the nested loop would. A counting pass sizes the
// output slice and the row arena before any row is merged, so a hash
// join performs O(1) allocations on top of the output rows themselves.
// The nested loop survives as the fallback for the two cases a hash key
// cannot express: sides sharing no slots at all (a true cartesian
// product) and sides whose bindings are partial on the would-be build
// key (an unbound key slot is compatible with every value, which a hash
// bucket cannot model).

// sharedKeySlots returns the slots bound in every row of a AND every
// row of b — the hash-join key. An empty key means the join must fall
// back to the nested loop.
func (env *evalEnv) sharedKeySlots(a, b []slotRow) []int {
	w := len(env.vars)
	if w == 0 || len(a) == 0 || len(b) == 0 {
		return nil
	}
	const allA, allB = 1, 2
	flags := make([]uint8, w)
	for s, id := range a[0] {
		if id != unboundID {
			flags[s] |= allA
		}
	}
	for _, row := range a[1:] {
		for s, id := range row {
			if id == unboundID {
				flags[s] &^= allA
			}
		}
	}
	for s, id := range b[0] {
		if id != unboundID {
			flags[s] |= allB
		}
	}
	for _, row := range b[1:] {
		for s, id := range row {
			if id == unboundID {
				flags[s] &^= allB
			}
		}
	}
	key := make([]int, 0, w)
	for s, f := range flags {
		if f == allA|allB {
			key = append(key, s)
		}
	}
	return key
}

// rowKeyHash hashes the ids at the key slots (FNV-1a over the 4 bytes
// of each id). Equal key values always collide into the same bucket;
// unequal values that collide are rejected by compatibleRows.
func rowKeyHash(row slotRow, key []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, s := range key {
		id := row[s]
		h = (h ^ uint64(id&0xff)) * prime64
		h = (h ^ uint64((id>>8)&0xff)) * prime64
		h = (h ^ uint64((id>>16)&0xff)) * prime64
		h = (h ^ uint64(id>>24)) * prime64
	}
	return h
}

// buildJoinTable hashes rows on the key slots into a chained array
// table: head[bucket] is the first row index, next[i] chains to the
// following one. Rows are inserted back to front so every bucket lists
// row indexes in ascending order, which keeps hash-join output in the
// exact order the nested loop would produce.
func buildJoinTable(rows []slotRow, key []int) (head, next []int32, mask uint64) {
	m := 1
	for m < 2*len(rows) {
		m <<= 1
	}
	head = make([]int32, m)
	for i := range head {
		head[i] = -1
	}
	next = make([]int32, len(rows))
	mask = uint64(m - 1)
	for i := len(rows) - 1; i >= 0; i-- {
		h := rowKeyHash(rows[i], key) & mask
		next[i] = head[h]
		head[h] = int32(i)
	}
	return head, next, mask
}

// allUnbound reports whether no slot of the row is bound.
func allUnbound(row slotRow) bool {
	for _, id := range row {
		if id != unboundID {
			return false
		}
	}
	return true
}

// joinRows computes the SPARQL join of two solution sequences with an
// id-space hash join, falling back to the nested loop when the sides
// share no all-bound slots. Output order is identical to the nested
// loop's (a-major, b-suborder) on every path. On a traced run the join
// records a span (input/output cardinalities and the dispatched
// method); identity shortcuts stay span-free — they do no work.
func (env *evalEnv) joinRows(a, b []slotRow) []slotRow {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	// A single all-unbound row is the join identity (the Group-fold
	// seed): merging it with any row yields that row back.
	if len(a) == 1 && allUnbound(a[0]) {
		return b
	}
	if len(b) == 1 && allUnbound(b[0]) {
		return a
	}
	if env.trace == nil {
		return env.joinRowsImpl(a, b)
	}
	sp := env.trace.t.Begin("join")
	sp.SetInt("left", int64(len(a)))
	sp.SetInt("right", int64(len(b)))
	out := env.joinRowsImpl(a, b)
	sp.SetInt("rows", int64(len(out)))
	env.trace.t.End(sp)
	return out
}

// joinRowsImpl dispatches the join to the hash variants or the nested
// fallback. Split from joinRows so the traced wrapper costs the
// disarmed path a single nil check.
func (env *evalEnv) joinRowsImpl(a, b []slotRow) []slotRow {
	key := env.sharedKeySlots(a, b)
	if len(key) == 0 {
		env.noteStr("method", "nested_loop")
		return env.nestedJoinRows(a, b)
	}
	// The probe side of either hash variant splits into morsels under a
	// parallel run (parallel.go); the build pass, the fallback nested
	// loop, and small probes stay serial.
	if len(b) <= len(a) {
		env.noteStr("method", "hash_build_right")
		if env.canParallel(len(a)) {
			return env.hashJoinBuildRightPar(a, b, key)
		}
		return env.hashJoinBuildRight(a, b, key)
	}
	env.noteStr("method", "hash_build_left")
	if env.canParallel(len(b)) {
		return env.hashJoinBuildLeftPar(a, b, key)
	}
	return env.hashJoinBuildLeft(a, b, key)
}

// nestedJoinRows is the O(n·m) fallback join, kept for cartesian joins
// (no shared slots) and joins whose bindings are partial on the build
// key. It is also the baseline the hash-join benchmarks measure against.
func (env *evalEnv) nestedJoinRows(a, b []slotRow) []slotRow {
	var out []slotRow
	for _, x := range a {
		for _, y := range b {
			if env.interrupted() {
				return out
			}
			if compatibleRows(x, y) {
				out = append(out, env.mergeRows(x, y))
			}
		}
	}
	return out
}

// hashJoinBuildRight builds the table on b (the smaller side) and
// probes with a: one pass counts the matches to size the output and the
// arena exactly, the second emits them in a-major order.
func (env *evalEnv) hashJoinBuildRight(a, b []slotRow, key []int) []slotRow {
	head, next, mask := buildJoinTable(b, key)
	env.chargeJoinTable(head, next)
	total := 0
	for _, x := range a {
		if env.interrupted() {
			return nil
		}
		h := rowKeyHash(x, key) & mask
		for yi := head[h]; yi >= 0; yi = next[yi] {
			if compatibleRows(x, b[yi]) {
				total++
			}
		}
	}
	if total == 0 {
		return nil
	}
	env.chargeRowBatch(total, stageJoin)
	if env.err != nil { // over budget: skip the output allocation
		return nil
	}
	out := make([]slotRow, 0, total)
	env.reserveRows(total)
	for _, x := range a {
		if env.interrupted() {
			return out
		}
		h := rowKeyHash(x, key) & mask
		for yi := head[h]; yi >= 0; yi = next[yi] {
			if y := b[yi]; compatibleRows(x, y) {
				out = append(out, env.mergeRows(x, y))
			}
		}
	}
	return out
}

// hashJoinBuildLeft builds the table on a (the smaller side) and probes
// with b, scattering matches through per-build-row cursors so the
// output still comes out in a-major order with b-suborder.
func (env *evalEnv) hashJoinBuildLeft(a, b []slotRow, key []int) []slotRow {
	head, next, mask := buildJoinTable(a, key)
	env.chargeJoinTable(head, next)
	counts := make([]int32, len(a))
	total := 0
	for _, y := range b {
		if env.interrupted() {
			return nil
		}
		h := rowKeyHash(y, key) & mask
		for xi := head[h]; xi >= 0; xi = next[xi] {
			if compatibleRows(a[xi], y) {
				counts[xi]++
				total++
			}
		}
	}
	if total == 0 {
		return nil
	}
	// Prefix-sum the counts into write cursors.
	sum := int32(0)
	for i, c := range counts {
		counts[i] = sum
		sum += c
	}
	env.chargeRowBatch(total, stageJoin)
	if env.err != nil { // over budget: skip the output allocation
		return nil
	}
	out := make([]slotRow, total)
	env.reserveRows(total)
	for _, y := range b {
		if env.interrupted() {
			// The scatter is incomplete — out still has nil holes that
			// would crash any consumer — so return nothing. The latched
			// error stops the evaluation right above this frame.
			return nil
		}
		h := rowKeyHash(y, key) & mask
		for xi := head[h]; xi >= 0; xi = next[xi] {
			if x := a[xi]; compatibleRows(x, y) {
				out[counts[xi]] = env.mergeRows(x, y)
				counts[xi]++
			}
		}
	}
	return out
}

// optionalRows computes the SPARQL left join (OPTIONAL): every left row
// extended by each compatible right row, or passed through unchanged
// when none matches. The hash path mirrors joinRows; the fallback keeps
// the nested loop's exact semantics for partial bindings on the join
// variables (an unbound slot matches everything).
func (env *evalEnv) optionalRows(left, right []slotRow) []slotRow {
	if len(left) == 0 {
		return nil
	}
	if len(right) == 0 {
		return left
	}
	if env.trace == nil {
		return env.optionalRowsImpl(left, right)
	}
	sp := env.trace.t.Begin("optional")
	sp.SetInt("left", int64(len(left)))
	sp.SetInt("right", int64(len(right)))
	out := env.optionalRowsImpl(left, right)
	sp.SetInt("rows", int64(len(out)))
	env.trace.t.End(sp)
	return out
}

// optionalRowsImpl dispatches the left join like joinRowsImpl.
func (env *evalEnv) optionalRowsImpl(left, right []slotRow) []slotRow {
	key := env.sharedKeySlots(left, right)
	if len(key) == 0 {
		env.noteStr("method", "nested_loop")
		return env.nestedOptionalRows(left, right)
	}
	if len(right) <= len(left) {
		env.noteStr("method", "hash_build_right")
		if env.canParallel(len(left)) {
			return env.hashOptionalBuildRightPar(left, right, key)
		}
		return env.hashOptionalBuildRight(left, right, key)
	}
	env.noteStr("method", "hash_build_left")
	if env.canParallel(len(right)) {
		return env.hashOptionalBuildLeftPar(left, right, key)
	}
	return env.hashOptionalBuildLeft(left, right, key)
}

// nestedOptionalRows is the O(n·m) fallback left join.
func (env *evalEnv) nestedOptionalRows(left, right []slotRow) []slotRow {
	var out []slotRow
	for _, l := range left {
		matched := false
		for _, r := range right {
			if env.interrupted() {
				return out
			}
			if compatibleRows(l, r) {
				out = append(out, env.mergeRows(l, r))
				matched = true
			}
		}
		if !matched {
			out = append(out, l)
		}
	}
	return out
}

// hashOptionalBuildRight builds the table on the right side and probes
// with the left rows; unmatched left rows pass through without an arena
// copy, exactly like the nested loop.
func (env *evalEnv) hashOptionalBuildRight(left, right []slotRow, key []int) []slotRow {
	head, next, mask := buildJoinTable(right, key)
	env.chargeJoinTable(head, next)
	total, merged := 0, 0
	for _, l := range left {
		if env.interrupted() {
			return nil
		}
		h := rowKeyHash(l, key) & mask
		n := 0
		for ri := head[h]; ri >= 0; ri = next[ri] {
			if compatibleRows(l, right[ri]) {
				n++
			}
		}
		if n == 0 {
			total++
		} else {
			total += n
			merged += n
		}
	}
	env.chargeRowBatch(total, stageJoin)
	if env.err != nil { // over budget: skip the output allocation
		return nil
	}
	out := make([]slotRow, 0, total)
	env.reserveRows(merged)
	for _, l := range left {
		if env.interrupted() {
			return out
		}
		h := rowKeyHash(l, key) & mask
		matched := false
		for ri := head[h]; ri >= 0; ri = next[ri] {
			if r := right[ri]; compatibleRows(l, r) {
				out = append(out, env.mergeRows(l, r))
				matched = true
			}
		}
		if !matched {
			out = append(out, l)
		}
	}
	return out
}

// hashOptionalBuildLeft builds the table on the left side and probes
// with the right rows, scattering merges through per-left-row cursors;
// left rows with no match keep their single slot and pass through
// uncopied. Output order matches the nested loop exactly.
func (env *evalEnv) hashOptionalBuildLeft(left, right []slotRow, key []int) []slotRow {
	head, next, mask := buildJoinTable(left, key)
	env.chargeJoinTable(head, next)
	counts := make([]int32, len(left))
	merged := 0
	for _, r := range right {
		if env.interrupted() {
			return nil
		}
		h := rowKeyHash(r, key) & mask
		for li := head[h]; li >= 0; li = next[li] {
			if compatibleRows(left[li], r) {
				counts[li]++
				merged++
			}
		}
	}
	// Prefix-sum into write cursors; unmatched left rows take one slot
	// and are placed immediately.
	total := 0
	for _, c := range counts {
		if c == 0 {
			total++
		} else {
			total += int(c)
		}
	}
	env.chargeRowBatch(total, stageJoin)
	if env.err != nil { // over budget: skip the output allocation
		return nil
	}
	out := make([]slotRow, total)
	env.reserveRows(merged)
	pos := int32(0)
	for i, c := range counts {
		counts[i] = pos
		if c == 0 {
			out[pos] = left[i]
			pos++
		} else {
			pos += c
		}
	}
	for _, r := range right {
		if env.interrupted() {
			// Incomplete scatter: nil holes remain, return nothing (the
			// latched error aborts the evaluation).
			return nil
		}
		h := rowKeyHash(r, key) & mask
		for li := head[h]; li >= 0; li = next[li] {
			if l := left[li]; compatibleRows(l, r) {
				out[counts[li]] = env.mergeRows(l, r)
				counts[li]++
			}
		}
	}
	return out
}

// evalFilter computes the effective boolean value of a FILTER over an
// id-space row, decoding only the terms the expression touches. An
// expression type the compiler does not know falls back to the
// map-based FilterExpr API on a decoded row.
func (env *evalEnv) evalFilter(e FilterExpr, row slotRow) bool {
	switch n := e.(type) {
	case Comparison:
		l, ok := env.resolveOperand(n.L, row)
		if !ok {
			return false
		}
		r, ok := env.resolveOperand(n.R, row)
		if !ok {
			return false
		}
		return cmpSatisfies(n.Op, CompareTerms(l, r))
	case LogicalAnd:
		return env.evalFilter(n.L, row) && env.evalFilter(n.R, row)
	case LogicalOr:
		return env.evalFilter(n.L, row) || env.evalFilter(n.R, row)
	case LogicalNot:
		return !env.evalFilter(n.E, row)
	case Bound:
		slot, ok := env.slots[n.Var]
		return ok && row[slot] != unboundID
	default:
		// Unknown expression types fall back to the map-based
		// FilterExpr API. When the expression can enumerate the
		// variables it touches, only those are decoded; otherwise the
		// whole row is.
		if vl, ok := e.(VarLister); ok {
			return e.EvalFilter(env.decodeVars(row, vl.FilterVars()))
		}
		return e.EvalFilter(env.decodeRow(row))
	}
}

// decodeVars materializes just the named variables of an id-space row
// as a Binding, for filter expressions that declare what they touch.
func (env *evalEnv) decodeVars(row slotRow, vars []Var) Binding {
	b := make(Binding, len(vars))
	for _, v := range vars {
		if s, ok := env.slots[v]; ok {
			if id := row[s]; id != unboundID {
				b[v] = env.terms[id]
			}
		}
	}
	return b
}

func (env *evalEnv) resolveOperand(o Operand, row slotRow) (rdf.Term, bool) {
	if !o.IsVar {
		return o.Term, true
	}
	slot, ok := env.slots[o.Var]
	if !ok {
		return rdf.Term{}, false
	}
	id := row[slot]
	if id == unboundID {
		return rdf.Term{}, false
	}
	return env.terms[id], true
}

// cElem is one compiled triple-pattern position: either a slot index
// (variables) or a pre-encoded constant id. A constant absent from the
// dictionary (ok=false) cannot match any triple.
type cElem struct {
	isVar bool
	slot  int
	id    rdf.TermID
	ok    bool
}

// cPattern is one compiled triple pattern with its selectivity
// estimate.
type cPattern struct {
	s, p, o cElem
	est     int
	src     int   // position of the pattern as written (trace/EXPLAIN)
	slots   []int // distinct variable slots, for join-ordering
}

func (env *evalEnv) compileElem(e TPElem) cElem {
	if e.IsVar {
		return cElem{isVar: true, slot: env.slots[e.Var]}
	}
	id, ok := env.view.Dict().Lookup(e.Term)
	return cElem{id: id, ok: ok}
}

// compilePattern encodes the pattern's constants and estimates its
// result cardinality from the dataset statistics: the tightest bound
// among the per-subject, per-object, and per-predicate (SPARQLGX
// PredicateCounts) index cardinalities, or the triple count when fully
// unbound.
func (env *evalEnv) compilePattern(tp TriplePattern) cPattern {
	cp := cPattern{
		s: env.compileElem(tp.S),
		p: env.compileElem(tp.P),
		o: env.compileElem(tp.O),
	}
	collectPatternSlots(&cp)
	est := env.stats.Triples
	switch {
	case !cp.s.isVar && !cp.s.ok, !cp.p.isVar && !cp.p.ok, !cp.o.isVar && !cp.o.ok:
		est = 0
	default:
		if !cp.s.isVar {
			if n := len(env.view.WithSubject(cp.s.id)); n < est {
				est = n
			}
		}
		if !cp.o.isVar {
			if n := len(env.view.WithObject(cp.o.id)); n < est {
				est = n
			}
		}
		if !cp.p.isVar {
			if n := env.stats.PredicateCounts[tp.P.Term.Value]; n < est {
				est = n
			}
		}
	}
	cp.est = est
	return cp
}

// orderPatterns reorders compiled patterns greedily by estimated
// selectivity: start from the most selective pattern, then repeatedly
// take the most selective pattern connected to an already-bound
// variable (avoiding Cartesian intermediates), falling back to the
// global minimum when no remaining pattern connects. Ties keep the
// original order, so fully-unselective queries evaluate as written.
func orderPatterns(cps []cPattern, nslots int) []cPattern {
	n := len(cps)
	if n <= 1 {
		return cps
	}
	used := make([]bool, n)
	bound := make([]bool, nslots)
	out := make([]cPattern, 0, n)
	for len(out) < n {
		best, bestConnected := -1, false
		for i, cp := range cps {
			if used[i] {
				continue
			}
			connected := false
			for _, s := range cp.slots {
				if bound[s] {
					connected = true
					break
				}
			}
			if best == -1 ||
				(connected && !bestConnected) ||
				(connected == bestConnected && cp.est < cps[best].est) {
				best, bestConnected = i, connected
			}
		}
		used[best] = true
		for _, s := range cps[best].slots {
			bound[s] = true
		}
		out = append(out, cps[best])
	}
	return out
}

// evalBGP evaluates a conjunction of triple patterns by iterated
// selection and join over the encoded indexes, visiting patterns in
// selectivity order. Prepared runs reuse the compiled-and-ordered
// pattern list across calls via planFor. The first (most selective)
// pattern — the seed scan — runs over a single empty row and may be
// split into candidate morsels under a parallel run; when the query's
// limitHint applies, the last pattern stops producing once enough
// leading rows exist (LIMIT pushdown below the modifier pipeline).
func (env *evalEnv) evalBGP(b BGP) []slotRow {
	seq := env.bgpSeq
	env.bgpSeq++
	cps := env.planFor(seq, b)
	bsp := env.span("bgp")
	// endSpan also closes per-pattern spans left open by the error
	// returns below; nil span (the disarmed default) is a no-op.
	defer env.endSpan(bsp)
	if bsp != nil {
		bsp.SetInt("patterns", int64(len(cps)))
		bsp.SetStr("join_order", planOrder(cps))
	}
	rows := []slotRow{env.emptyRow()}
	scratch := env.emptyRow()
	for i, cp := range cps {
		max := 0
		if i == len(cps)-1 {
			// limitHint is only set when this BGP is the whole WHERE
			// clause, so its last pattern emits the final row sequence.
			max = env.limitHint
		}
		var psp *obs.Span
		if env.trace != nil {
			if i == 0 {
				psp = env.trace.t.Begin("seed_scan")
			} else {
				psp = env.trace.t.Begin("match")
				psp.SetInt("rows_in", int64(len(rows)))
			}
			psp.SetInt("pattern", int64(cp.src))
			psp.SetInt("est", int64(cp.est))
		}
		if i == 0 {
			rows = env.seedScan(cp, rows[0], scratch, max)
		} else {
			next := make([]slotRow, 0, len(rows))
			for _, row := range rows {
				next = env.matchPattern(cp, row, scratch, next)
				if env.err != nil {
					return nil
				}
				if max > 0 && len(next) >= max {
					break
				}
			}
			rows = next
		}
		if env.err != nil {
			return nil
		}
		if psp != nil {
			psp.SetInt("rows", int64(len(rows)))
			env.trace.t.End(psp)
		}
		if len(rows) == 0 {
			break
		}
	}
	return rows
}

// seedScan evaluates the BGP's first pattern against the empty row,
// splitting the candidate view into morsels when the run is parallel
// and the scan is large enough to amortize dispatch. max > 0 bounds
// how many rows are needed (LIMIT pushdown); a small bound keeps the
// scan serial so it can stop exactly at max rows.
func (env *evalEnv) seedScan(cp cPattern, row, scratch slotRow, max int) []slotRow {
	ps := env.preparePatternScan(cp, row)
	if ps.miss {
		return nil
	}
	env.noteInt("candidates", int64(len(ps.candidates)))
	if env.canParallel(len(ps.candidates)) && !(max > 0 && max <= morselSize) {
		return env.seedScanPar(&ps, row, max)
	}
	return env.scanPattern(&ps, row, scratch, ps.candidates, max, make([]slotRow, 0, 1))
}

// planFor returns the compiled, selectivity-ordered patterns of the
// seq-th BGP of the query. Plain Evaluate compiles on every call; a
// Prepared run consults the plan cache first, so re-running a plan on
// an unchanged graph snapshot skips constant encoding, selectivity
// estimation, and join ordering entirely. Cached plans are immutable
// after publication and therefore safe to share across concurrent runs.
func (env *evalEnv) planFor(seq int, b BGP) []cPattern {
	if env.prep != nil {
		if cps := env.prep.cachedPlan(env.view, seq); cps != nil {
			return cps
		}
	}
	cps := make([]cPattern, len(b.Patterns))
	for i, tp := range b.Patterns {
		cps[i] = env.compilePattern(tp)
		cps[i].src = i
	}
	cps = orderPatterns(cps, len(env.vars))
	if env.prep != nil {
		env.prep.storePlan(env.view, seq, cps)
	}
	return cps
}

// elemID resolves a compiled element under a row: constants yield
// their id, variables their current binding (bound=false when the slot
// is empty). miss is true for constants absent from the dictionary.
func elemID(e cElem, row slotRow) (id rdf.TermID, bound, miss bool) {
	if !e.isVar {
		return e.id, true, !e.ok
	}
	id = row[e.slot]
	return id, id != unboundID, false
}

// patternScan is one pattern's resolved scan: the ids each position
// must match under the current row, and the smallest applicable index
// view to scan. It is immutable once prepared, so parallel morsels of
// one scan share it read-only.
type patternScan struct {
	cp                     cPattern
	sID, pID, oID          rdf.TermID
	sBound, pBound, oBound bool
	miss                   bool
	candidates             []rdf.EncodedTriple
}

// matches reports whether a candidate triple satisfies the scan's
// resolved positions — the filter every candidate loop (serial scan,
// morsel scan, per-shard scan) applies before binding variables.
func (ps *patternScan) matches(t rdf.EncodedTriple) bool {
	if ps.sBound && t.S != ps.sID {
		return false
	}
	if ps.pBound && t.P != ps.pID {
		return false
	}
	if ps.oBound && t.O != ps.oID {
		return false
	}
	return true
}

// preparePatternScan resolves cp's positions under row and picks the
// smallest applicable index as the candidate view.
func (env *evalEnv) preparePatternScan(cp cPattern, row slotRow) patternScan {
	ps := patternScan{cp: cp}
	var sMiss, pMiss, oMiss bool
	ps.sID, ps.sBound, sMiss = elemID(cp.s, row)
	ps.pID, ps.pBound, pMiss = elemID(cp.p, row)
	ps.oID, ps.oBound, oMiss = elemID(cp.o, row)
	if sMiss || pMiss || oMiss {
		ps.miss = true
		return ps
	}
	// Scan the smallest applicable index.
	candidates := env.view.Triples()
	if ps.sBound {
		candidates = env.view.WithSubject(ps.sID)
	}
	if ps.oBound {
		if byO := env.view.WithObject(ps.oID); len(byO) < len(candidates) {
			candidates = byO
		}
	}
	if ps.pBound {
		if byP := env.view.WithPredicate(ps.pID); len(byP) < len(candidates) {
			candidates = byP
		}
	}
	ps.candidates = candidates
	return ps
}

// matchPattern appends to out every extension of row by a triple
// matching cp. scratch must be a row-sized buffer; it is clobbered.
func (env *evalEnv) matchPattern(cp cPattern, row slotRow, scratch slotRow, out []slotRow) []slotRow {
	ps := env.preparePatternScan(cp, row)
	if ps.miss {
		return out
	}
	return env.scanPattern(&ps, row, scratch, ps.candidates, 0, out)
}

// scanPattern appends to out every extension of row by a candidate
// triple matching the prepared scan. cands is the (sub)range of
// ps.candidates to visit — parallel seed scans pass one morsel each —
// and max > 0 stops the scan once out holds max rows (LIMIT pushdown).
// scratch is clobbered. ps is read-only, so concurrent morsels of the
// same scan may share it.
func (env *evalEnv) scanPattern(ps *patternScan, row, scratch slotRow, cands []rdf.EncodedTriple, max int, out []slotRow) []slotRow {
	cp := ps.cp
	for _, t := range cands {
		if env.interrupted() {
			return out
		}
		if !ps.matches(t) {
			continue
		}
		// Bind the variable positions, checking consistency for
		// variables repeated within the pattern (e.g. ?x ?p ?x).
		copy(scratch, row)
		ok := true
		for _, bind := range [3]struct {
			e  cElem
			id rdf.TermID
		}{{cp.s, t.S}, {cp.p, t.P}, {cp.o, t.O}} {
			if !bind.e.isVar {
				continue
			}
			if cur := scratch[bind.e.slot]; cur == unboundID {
				scratch[bind.e.slot] = bind.id
			} else if cur != bind.id {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, env.newRow(scratch))
			if max > 0 && len(out) >= max {
				return out
			}
		}
	}
	return out
}
