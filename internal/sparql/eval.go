package sparql

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// The reference evaluator is slot-compiled: each query is compiled
// once into a Var→slot table, and every partial solution is a
// []rdf.TermID row indexed by slot (unboundID marking empty slots)
// over the graph's dictionary-encoded triples. Joins, OPTIONALs, and
// intra-pattern consistency checks compare 4-byte ids instead of
// string-bearing Terms, and extending a solution copies one small
// slice instead of cloning a map per candidate triple. BGPs are
// reordered by estimated selectivity from rdf.Stats (the SPARQLGX
// statistics) before evaluation. Ids are decoded back to Terms only
// when the final solution sequence is materialized as Bindings.

// unboundID marks an empty slot in a compiled solution row.
const unboundID = ^rdf.TermID(0)

// slotRow is one partial solution in id space: index i holds the id
// bound to the query's i-th variable, or unboundID. Rows are immutable
// once produced.
type slotRow []rdf.TermID

// Evaluate runs q over g with the reference evaluator: a direct,
// centralized implementation of the SPARQL algebra. Every distributed
// engine in internal/systems is tested against it.
func Evaluate(q *Query, g *rdf.Graph) (*Results, error) {
	env := newEvalEnv(q, g)
	rows, err := env.evalPattern(q.Where)
	if err != nil {
		return nil, err
	}
	// Plain SELECT and ASK run the whole modifier pipeline in id
	// space and decode only the surviving rows. Aggregates, CONSTRUCT,
	// and DESCRIBE need term values for every solution, so they decode
	// first and share the engines' modifier tail.
	if (q.Form == FormSelect || q.Form == FormAsk) && q.Agg == nil {
		return env.applyModifiers(q, rows), nil
	}
	decoded := env.decodeRows(rows)
	if q.Form == FormDescribe {
		return describeResources(q, decoded, g), nil
	}
	return ApplySolutionModifiers(q, decoded), nil
}

// applyModifiers applies projection / DISTINCT / ORDER BY / OFFSET /
// LIMIT over id-space rows, mirroring ApplySolutionModifiers exactly,
// and decodes only the rows that survive.
func (env *evalEnv) applyModifiers(q *Query, rows []slotRow) *Results {
	if q.Form == FormAsk {
		return &Results{IsAsk: true, Ask: len(rows) > 0}
	}
	vars := q.SelectedVars()
	rows = env.projectRows(rows, vars)
	if q.Distinct {
		rows = env.distinctRows(rows)
	}
	if len(q.OrderBy) > 0 {
		env.sortRows(rows, q.OrderBy)
	}
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}
	return &Results{Vars: append([]Var{}, vars...), Rows: env.decodeRows(rows)}
}

// projectRows restricts rows to the selected variables by clearing
// every other slot. When the projection keeps every compiled slot the
// rows are returned as-is (no copy).
func (env *evalEnv) projectRows(rows []slotRow, vars []Var) []slotRow {
	keep := make([]bool, len(env.vars))
	kept := 0
	for _, v := range vars {
		if s, ok := env.slots[v]; ok && !keep[s] {
			keep[s] = true
			kept++
		}
	}
	if kept == len(env.vars) {
		return rows
	}
	out := make([]slotRow, len(rows))
	for i, row := range rows {
		nr := env.newRow(row)
		for s := range nr {
			if !keep[s] {
				nr[s] = unboundID
			}
		}
		out[i] = nr
	}
	return out
}

// distinctRows deduplicates rows on their full slot vector. Ids are
// injective over terms, so id equality is exactly the term equality
// the map-based DISTINCT uses.
func (env *evalEnv) distinctRows(rows []slotRow) []slotRow {
	seen := make(map[string]bool, len(rows))
	var kept []slotRow
	buf := make([]byte, 0, 4*len(env.vars))
	for _, row := range rows {
		buf = buf[:0]
		for _, id := range row {
			buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		if !seen[string(buf)] {
			seen[string(buf)] = true
			kept = append(kept, row)
		}
	}
	return kept
}

// sortRows orders rows in place by the ORDER BY keys, with the same
// unbound-first/last and stability semantics as Results.SortRows.
func (env *evalEnv) sortRows(rows []slotRow, keys []OrderKey) {
	type keySlot struct {
		slot int
		asc  bool
	}
	ks := make([]keySlot, 0, len(keys))
	for _, k := range keys {
		if s, ok := env.slots[k.Var]; ok {
			ks = append(ks, keySlot{s, k.Asc})
		} else {
			ks = append(ks, keySlot{-1, k.Asc})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range ks {
			var ti, tj rdf.TermID = unboundID, unboundID
			if k.slot >= 0 {
				ti, tj = rows[i][k.slot], rows[j][k.slot]
			}
			if ti == unboundID && tj == unboundID {
				continue
			}
			if ti == unboundID {
				return k.asc
			}
			if tj == unboundID {
				return !k.asc
			}
			c := CompareTerms(env.terms[ti], env.terms[tj])
			if c == 0 {
				continue
			}
			if k.asc {
				return c < 0
			}
			return c > 0
		}
		return false
	})
}

// evalEnv is the per-query compilation environment: the slot table,
// the encoded graph view, and the dataset statistics driving join
// ordering. Rows are bump-allocated from chunked arenas, so producing
// a solution costs a copy, not a heap allocation.
type evalEnv struct {
	g     *rdf.Graph
	view  *rdf.EncodedView
	terms []rdf.Term // id→term snapshot for lock-free decoding
	slots map[Var]int
	vars  []Var // slot→var
	stats rdf.Stats
	arena []rdf.TermID // bump allocator for slot rows
}

// newRow bump-allocates a row and initializes it as a copy of src
// (which may be shorter, e.g. empty). Rows handed out stay valid for
// the whole evaluation; exhausted chunks are abandoned to the GC along
// with the rows that reference them.
func (env *evalEnv) newRow(src slotRow) slotRow {
	w := len(env.vars)
	if w == 0 {
		return slotRow{}
	}
	if len(env.arena)+w > cap(env.arena) {
		chunk := 256 * w
		env.arena = make([]rdf.TermID, 0, chunk)
	}
	start := len(env.arena)
	env.arena = env.arena[:start+w]
	row := slotRow(env.arena[start : start+w : start+w])
	copy(row, src)
	for i := len(src); i < w; i++ {
		row[i] = unboundID
	}
	return row
}

func newEvalEnv(q *Query, g *rdf.Graph) *evalEnv {
	vars := q.Where.PatternVars()
	slots := make(map[Var]int, len(vars))
	for i, v := range vars {
		slots[v] = i
	}
	view := g.Encoded()
	return &evalEnv{
		g:     g,
		view:  view,
		terms: view.Dict().Terms(),
		slots: slots,
		vars:  vars,
		stats: g.Stats(),
	}
}

func (env *evalEnv) emptyRow() slotRow { return env.newRow(nil) }

// decodeRow materializes one id-space row as a Binding.
func (env *evalEnv) decodeRow(row slotRow) Binding {
	b := make(Binding, len(row))
	for i, id := range row {
		if id != unboundID {
			b[env.vars[i]] = env.terms[id]
		}
	}
	return b
}

func (env *evalEnv) decodeRows(rows []slotRow) []Binding {
	out := make([]Binding, len(rows))
	for i, row := range rows {
		out[i] = env.decodeRow(row)
	}
	return out
}

// describeResources returns the description graph of a DESCRIBE query:
// for every target resource (constant, or each binding of a target
// variable), all triples with that resource as subject — a simplified
// concise bounded description.
func describeResources(q *Query, rows []Binding, g *rdf.Graph) *Results {
	targets := map[rdf.Term]bool{}
	var order []rdf.Term
	add := func(t rdf.Term) {
		if t.IsLiteral() || targets[t] {
			return
		}
		targets[t] = true
		order = append(order, t)
	}
	for _, el := range q.Describe {
		if !el.IsVar {
			add(el.Term)
			continue
		}
		for _, b := range rows {
			if t, ok := b[el.Var]; ok {
				add(t)
			}
		}
	}
	res := &Results{IsGraph: true}
	seen := map[rdf.Triple]bool{}
	for _, t := range order {
		for _, tr := range g.WithSubject(t) {
			if !seen[tr] {
				seen[tr] = true
				res.Triples = append(res.Triples, tr)
			}
		}
	}
	return res
}

func (env *evalEnv) evalPattern(p GraphPattern) ([]slotRow, error) {
	switch n := p.(type) {
	case BGP:
		return env.evalBGP(n), nil
	case Group:
		rows := []slotRow{env.emptyRow()}
		for _, part := range n.Parts {
			sub, err := env.evalPattern(part)
			if err != nil {
				return nil, err
			}
			rows = env.joinRows(rows, sub)
		}
		return rows, nil
	case Filter:
		rows, err := env.evalPattern(n.Inner)
		if err != nil {
			return nil, err
		}
		var kept []slotRow
		for _, row := range rows {
			if env.evalFilter(n.Cond, row) {
				kept = append(kept, row)
			}
		}
		return kept, nil
	case Optional:
		left, err := env.evalPattern(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := env.evalPattern(n.Right)
		if err != nil {
			return nil, err
		}
		var out []slotRow
		for _, l := range left {
			matched := false
			for _, r := range right {
				if compatibleRows(l, r) {
					out = append(out, env.mergeRows(l, r))
					matched = true
				}
			}
			if !matched {
				out = append(out, l)
			}
		}
		return out, nil
	case Union:
		left, err := env.evalPattern(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := env.evalPattern(n.Right)
		if err != nil {
			return nil, err
		}
		return append(left, right...), nil
	default:
		return nil, fmt.Errorf("sparql: cannot evaluate pattern %T", p)
	}
}

// compatibleRows reports whether two rows agree on every slot bound in
// both (the SPARQL join condition, in id space).
func compatibleRows(a, b slotRow) bool {
	for i, v := range a {
		if v != unboundID && b[i] != unboundID && b[i] != v {
			return false
		}
	}
	return true
}

// mergeRows returns the union of two compatible rows.
func (env *evalEnv) mergeRows(a, b slotRow) slotRow {
	out := env.newRow(a)
	for i, v := range b {
		if out[i] == unboundID {
			out[i] = v
		}
	}
	return out
}

// joinRows computes the SPARQL join of two solution sequences.
func (env *evalEnv) joinRows(a, b []slotRow) []slotRow {
	var out []slotRow
	for _, x := range a {
		for _, y := range b {
			if compatibleRows(x, y) {
				out = append(out, env.mergeRows(x, y))
			}
		}
	}
	return out
}

// evalFilter computes the effective boolean value of a FILTER over an
// id-space row, decoding only the terms the expression touches. An
// expression type the compiler does not know falls back to the
// map-based FilterExpr API on a decoded row.
func (env *evalEnv) evalFilter(e FilterExpr, row slotRow) bool {
	switch n := e.(type) {
	case Comparison:
		l, ok := env.resolveOperand(n.L, row)
		if !ok {
			return false
		}
		r, ok := env.resolveOperand(n.R, row)
		if !ok {
			return false
		}
		return cmpSatisfies(n.Op, CompareTerms(l, r))
	case LogicalAnd:
		return env.evalFilter(n.L, row) && env.evalFilter(n.R, row)
	case LogicalOr:
		return env.evalFilter(n.L, row) || env.evalFilter(n.R, row)
	case LogicalNot:
		return !env.evalFilter(n.E, row)
	case Bound:
		slot, ok := env.slots[n.Var]
		return ok && row[slot] != unboundID
	default:
		return e.EvalFilter(env.decodeRow(row))
	}
}

func (env *evalEnv) resolveOperand(o Operand, row slotRow) (rdf.Term, bool) {
	if !o.IsVar {
		return o.Term, true
	}
	slot, ok := env.slots[o.Var]
	if !ok {
		return rdf.Term{}, false
	}
	id := row[slot]
	if id == unboundID {
		return rdf.Term{}, false
	}
	return env.terms[id], true
}

// cElem is one compiled triple-pattern position: either a slot index
// (variables) or a pre-encoded constant id. A constant absent from the
// dictionary (ok=false) cannot match any triple.
type cElem struct {
	isVar bool
	slot  int
	id    rdf.TermID
	ok    bool
}

// cPattern is one compiled triple pattern with its selectivity
// estimate.
type cPattern struct {
	s, p, o cElem
	est     int
	slots   []int // distinct variable slots, for join-ordering
}

func (env *evalEnv) compileElem(e TPElem) cElem {
	if e.IsVar {
		return cElem{isVar: true, slot: env.slots[e.Var]}
	}
	id, ok := env.view.Dict().Lookup(e.Term)
	return cElem{id: id, ok: ok}
}

// compilePattern encodes the pattern's constants and estimates its
// result cardinality from the dataset statistics: the tightest bound
// among the per-subject, per-object, and per-predicate (SPARQLGX
// PredicateCounts) index cardinalities, or the triple count when fully
// unbound.
func (env *evalEnv) compilePattern(tp TriplePattern) cPattern {
	cp := cPattern{
		s: env.compileElem(tp.S),
		p: env.compileElem(tp.P),
		o: env.compileElem(tp.O),
	}
	for _, e := range [3]cElem{cp.s, cp.p, cp.o} {
		if !e.isVar {
			continue
		}
		dup := false
		for _, s := range cp.slots {
			if s == e.slot {
				dup = true
				break
			}
		}
		if !dup {
			cp.slots = append(cp.slots, e.slot)
		}
	}
	est := env.stats.Triples
	switch {
	case !cp.s.isVar && !cp.s.ok, !cp.p.isVar && !cp.p.ok, !cp.o.isVar && !cp.o.ok:
		est = 0
	default:
		if !cp.s.isVar {
			if n := len(env.view.WithSubject(cp.s.id)); n < est {
				est = n
			}
		}
		if !cp.o.isVar {
			if n := len(env.view.WithObject(cp.o.id)); n < est {
				est = n
			}
		}
		if !cp.p.isVar {
			if n := env.stats.PredicateCounts[tp.P.Term.Value]; n < est {
				est = n
			}
		}
	}
	cp.est = est
	return cp
}

// orderPatterns reorders compiled patterns greedily by estimated
// selectivity: start from the most selective pattern, then repeatedly
// take the most selective pattern connected to an already-bound
// variable (avoiding Cartesian intermediates), falling back to the
// global minimum when no remaining pattern connects. Ties keep the
// original order, so fully-unselective queries evaluate as written.
func orderPatterns(cps []cPattern, nslots int) []cPattern {
	n := len(cps)
	if n <= 1 {
		return cps
	}
	used := make([]bool, n)
	bound := make([]bool, nslots)
	out := make([]cPattern, 0, n)
	for len(out) < n {
		best, bestConnected := -1, false
		for i, cp := range cps {
			if used[i] {
				continue
			}
			connected := false
			for _, s := range cp.slots {
				if bound[s] {
					connected = true
					break
				}
			}
			if best == -1 ||
				(connected && !bestConnected) ||
				(connected == bestConnected && cp.est < cps[best].est) {
				best, bestConnected = i, connected
			}
		}
		used[best] = true
		for _, s := range cps[best].slots {
			bound[s] = true
		}
		out = append(out, cps[best])
	}
	return out
}

// evalBGP evaluates a conjunction of triple patterns by iterated
// selection and join over the encoded indexes, visiting patterns in
// selectivity order.
func (env *evalEnv) evalBGP(b BGP) []slotRow {
	cps := make([]cPattern, len(b.Patterns))
	for i, tp := range b.Patterns {
		cps[i] = env.compilePattern(tp)
	}
	cps = orderPatterns(cps, len(env.vars))
	rows := []slotRow{env.emptyRow()}
	scratch := env.emptyRow()
	for _, cp := range cps {
		next := make([]slotRow, 0, len(rows))
		for _, row := range rows {
			next = env.matchPattern(cp, row, scratch, next)
		}
		rows = next
		if len(rows) == 0 {
			break
		}
	}
	return rows
}

// elemID resolves a compiled element under a row: constants yield
// their id, variables their current binding (bound=false when the slot
// is empty). miss is true for constants absent from the dictionary.
func elemID(e cElem, row slotRow) (id rdf.TermID, bound, miss bool) {
	if !e.isVar {
		return e.id, true, !e.ok
	}
	id = row[e.slot]
	return id, id != unboundID, false
}

// matchPattern appends to out every extension of row by a triple
// matching cp. scratch must be a row-sized buffer; it is clobbered.
func (env *evalEnv) matchPattern(cp cPattern, row slotRow, scratch slotRow, out []slotRow) []slotRow {
	sID, sBound, sMiss := elemID(cp.s, row)
	pID, pBound, pMiss := elemID(cp.p, row)
	oID, oBound, oMiss := elemID(cp.o, row)
	if sMiss || pMiss || oMiss {
		return out
	}
	// Scan the smallest applicable index.
	candidates := env.view.Triples()
	if sBound {
		candidates = env.view.WithSubject(sID)
	}
	if oBound {
		if byO := env.view.WithObject(oID); len(byO) < len(candidates) {
			candidates = byO
		}
	}
	if pBound {
		if byP := env.view.WithPredicate(pID); len(byP) < len(candidates) {
			candidates = byP
		}
	}
	for _, t := range candidates {
		if sBound && t.S != sID {
			continue
		}
		if pBound && t.P != pID {
			continue
		}
		if oBound && t.O != oID {
			continue
		}
		// Bind the variable positions, checking consistency for
		// variables repeated within the pattern (e.g. ?x ?p ?x).
		copy(scratch, row)
		ok := true
		for _, bind := range [3]struct {
			e  cElem
			id rdf.TermID
		}{{cp.s, t.S}, {cp.p, t.P}, {cp.o, t.O}} {
			if !bind.e.isVar {
				continue
			}
			if cur := scratch[bind.e.slot]; cur == unboundID {
				scratch[bind.e.slot] = bind.id
			} else if cur != bind.id {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, env.newRow(scratch))
		}
	}
	return out
}
