package sparql

import (
	"fmt"

	"repro/internal/rdf"
)

// Evaluate runs q over g with the reference evaluator: a direct,
// centralized implementation of the SPARQL algebra. Every distributed
// engine in internal/systems is tested against it.
func Evaluate(q *Query, g *rdf.Graph) (*Results, error) {
	rows, err := evalPattern(q.Where, g)
	if err != nil {
		return nil, err
	}
	if q.Form == FormDescribe {
		return describeResources(q, rows, g), nil
	}
	return ApplySolutionModifiers(q, rows), nil
}

// describeResources returns the description graph of a DESCRIBE query:
// for every target resource (constant, or each binding of a target
// variable), all triples with that resource as subject — a simplified
// concise bounded description.
func describeResources(q *Query, rows []Binding, g *rdf.Graph) *Results {
	targets := map[rdf.Term]bool{}
	var order []rdf.Term
	add := func(t rdf.Term) {
		if t.IsLiteral() || targets[t] {
			return
		}
		targets[t] = true
		order = append(order, t)
	}
	for _, el := range q.Describe {
		if !el.IsVar {
			add(el.Term)
			continue
		}
		for _, b := range rows {
			if t, ok := b[el.Var]; ok {
				add(t)
			}
		}
	}
	res := &Results{IsGraph: true}
	seen := map[rdf.Triple]bool{}
	for _, t := range order {
		for _, tr := range g.WithSubject(t) {
			if !seen[tr] {
				seen[tr] = true
				res.Triples = append(res.Triples, tr)
			}
		}
	}
	return res
}

func evalPattern(p GraphPattern, g *rdf.Graph) ([]Binding, error) {
	switch n := p.(type) {
	case BGP:
		return evalBGP(n, g), nil
	case Group:
		rows := []Binding{{}}
		for _, part := range n.Parts {
			sub, err := evalPattern(part, g)
			if err != nil {
				return nil, err
			}
			rows = joinBindings(rows, sub)
		}
		return rows, nil
	case Filter:
		rows, err := evalPattern(n.Inner, g)
		if err != nil {
			return nil, err
		}
		var kept []Binding
		for _, b := range rows {
			if n.Cond.EvalFilter(b) {
				kept = append(kept, b)
			}
		}
		return kept, nil
	case Optional:
		left, err := evalPattern(n.Left, g)
		if err != nil {
			return nil, err
		}
		right, err := evalPattern(n.Right, g)
		if err != nil {
			return nil, err
		}
		var out []Binding
		for _, l := range left {
			matched := false
			for _, r := range right {
				if l.Compatible(r) {
					out = append(out, l.Merge(r))
					matched = true
				}
			}
			if !matched {
				out = append(out, l.Clone())
			}
		}
		return out, nil
	case Union:
		left, err := evalPattern(n.Left, g)
		if err != nil {
			return nil, err
		}
		right, err := evalPattern(n.Right, g)
		if err != nil {
			return nil, err
		}
		return append(left, right...), nil
	default:
		return nil, fmt.Errorf("sparql: cannot evaluate pattern %T", p)
	}
}

// evalBGP evaluates a conjunction of triple patterns by iterated
// selection and join, using the graph's indexes to pick candidates.
func evalBGP(b BGP, g *rdf.Graph) []Binding {
	rows := []Binding{{}}
	for _, tp := range b.Patterns {
		var next []Binding
		for _, row := range rows {
			for _, m := range matchPattern(tp, row, g) {
				next = append(next, m)
			}
		}
		rows = next
		if len(rows) == 0 {
			break
		}
	}
	return rows
}

// matchPattern extends binding row with every triple matching tp.
func matchPattern(tp TriplePattern, row Binding, g *rdf.Graph) []Binding {
	// Substitute already-bound variables.
	resolved := tp
	for i, e := range []*TPElem{&resolved.S, &resolved.P, &resolved.O} {
		_ = i
		if e.IsVar {
			if t, ok := row[e.Var]; ok {
				*e = TermElem(t)
			}
		}
	}
	// Choose the most selective index.
	var candidates []rdf.Triple
	switch {
	case !resolved.S.IsVar:
		candidates = g.WithSubject(resolved.S.Term)
	case !resolved.O.IsVar:
		candidates = g.WithObject(resolved.O.Term)
	case !resolved.P.IsVar:
		candidates = g.WithPredicate(resolved.P.Term.Value)
	default:
		candidates = g.Triples()
	}
	var out []Binding
	for _, t := range candidates {
		if !resolved.Matches(t) {
			continue
		}
		nb := row.Clone()
		ok := true
		bind := func(e TPElem, val rdf.Term) {
			if !e.IsVar {
				return
			}
			if cur, bound := nb[e.Var]; bound {
				if cur != val {
					ok = false
				}
				return
			}
			nb[e.Var] = val
		}
		bind(tp.S, t.S)
		if ok {
			bind(tp.P, t.P)
		}
		if ok {
			bind(tp.O, t.O)
		}
		if ok {
			out = append(out, nb)
		}
	}
	return out
}

// joinBindings computes the SPARQL join of two solution sequences.
func joinBindings(a, b []Binding) []Binding {
	var out []Binding
	for _, x := range a {
		for _, y := range b {
			if x.Compatible(y) {
				out = append(out, x.Merge(y))
			}
		}
	}
	return out
}
