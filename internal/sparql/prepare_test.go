package sparql

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
)

// prepareTestQueries covers every query form the evaluator supports,
// so Run is checked against Evaluate across the whole algebra.
var prepareTestQueries = []string{
	`SELECT ?s ?n WHERE { ?s <http://ex/name> ?n }`,
	`SELECT DISTINCT ?a WHERE { ?s <http://ex/age> ?a } ORDER BY ?a LIMIT 3`,
	`SELECT ?s ?n ?a WHERE { ?s <http://ex/name> ?n . ?s <http://ex/age> ?a }`,
	`SELECT ?s ?n ?a WHERE { ?s <http://ex/name> ?n OPTIONAL { ?s <http://ex/age> ?a } }`,
	`SELECT ?s WHERE { { ?s <http://ex/name> "n1" } UNION { ?s <http://ex/name> "n2" } }`,
	`SELECT ?s ?a WHERE { ?s <http://ex/age> ?a FILTER(?a > 23) }`,
	`ASK WHERE { ?s <http://ex/name> "n5" }`,
	`SELECT (COUNT(?s) AS ?c) WHERE { ?s <http://ex/age> ?a } GROUP BY ?a`,
	`CONSTRUCT { ?s <http://ex/label> ?n } WHERE { ?s <http://ex/name> ?n }`,
}

// A Prepared plan must answer exactly like the one-shot evaluator on
// every query form, on first and on plan-cache-hit runs.
func TestPreparedRunMatchesEvaluate(t *testing.T) {
	g := allocTestGraph()
	for _, text := range prepareTestQueries {
		p, err := Prepare(text)
		if err != nil {
			t.Fatalf("Prepare(%q): %v", text, err)
		}
		want, err := Evaluate(p.Query(), g)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 3; run++ { // run 0 compiles, 1..2 hit the plan cache
			got, err := p.Run(context.Background(), g)
			if err != nil {
				t.Fatalf("Run(%q) #%d: %v", text, run, err)
			}
			if !got.Equal(want) {
				t.Fatalf("Run(%q) #%d diverges from Evaluate", text, run)
			}
		}
	}
}

// One Prepared plan and one Graph shared by many goroutines must be
// safe under the race detector: the graph's encoded view and stats are
// lazily built on first use, the plan cache is filled concurrently, and
// runs share cached plans read-only. (Run with -race; this test is the
// load-bearing exercise for the Stats/Encoded locking.)
func TestPreparedConcurrentRuns(t *testing.T) {
	g := allocTestGraph() // fresh graph: encoded view and stats not yet built
	p, err := Prepare(`SELECT ?s ?n ?a WHERE { ?s <http://ex/name> ?n . ?s <http://ex/age> ?a } ORDER BY ?n LIMIT 16`)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 12
	results := make([]*Results, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for run := 0; run < 4; run++ {
				r, err := p.Run(context.Background(), g)
				if err != nil {
					errs[i] = err
					return
				}
				results[i] = r
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	for i := 1; i < goroutines; i++ {
		if !results[i].Equal(results[0]) {
			t.Fatalf("goroutine %d produced different results", i)
		}
	}
}

// Adding triples after a run must invalidate the cached plan: the next
// run re-compiles against the grown snapshot and sees the new data.
func TestPreparedPlanInvalidation(t *testing.T) {
	g := allocTestGraph()
	p, err := Prepare(`SELECT ?s WHERE { ?s <http://ex/name> ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	before, err := p.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	g.Add(rdf.Triple{
		S: rdf.NewIRI("http://ex/new"),
		P: rdf.NewIRI("http://ex/name"),
		O: rdf.NewLiteral("fresh"),
	})
	after, err := p.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if after.Len() != before.Len()+1 {
		t.Fatalf("post-Add run returned %d rows, want %d", after.Len(), before.Len()+1)
	}
}

// cancelTestGraph builds two disjoint star branches of n subjects each,
// so joining them is a true n×n cartesian product — the worst case a
// cancelled context must abort.
func cancelTestGraph(n int) *rdf.Graph {
	ts := make([]rdf.Triple, 0, 2*n)
	for i := 0; i < n; i++ {
		ts = append(ts,
			rdf.Triple{S: rdf.NewIRI(fmt.Sprintf("http://ex/a%d", i)), P: rdf.NewIRI("http://ex/p"), O: rdf.NewLiteral(fmt.Sprintf("x%d", i))},
			rdf.Triple{S: rdf.NewIRI(fmt.Sprintf("http://ex/b%d", i)), P: rdf.NewIRI("http://ex/q"), O: rdf.NewLiteral(fmt.Sprintf("y%d", i))},
		)
	}
	return rdf.NewGraph(ts)
}

// Cancelling mid-join must abort an 8192×8192 cartesian well before
// its ~67M-row completion and surface ctx.Err(). Both cartesian paths
// are exercised: the BGP-internal row extension (matchPattern) and the
// Group join fallback (nestedJoinRows).
func TestRunCancelMidJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("builds an 8192-wide cartesian")
	}
	g := cancelTestGraph(8192)
	g.Encoded() // warm outside the timed section
	g.Stats()
	for name, text := range map[string]string{
		"bgp-cartesian":   `SELECT * WHERE { ?a <http://ex/p> ?x . ?b <http://ex/q> ?y }`,
		"group-cartesian": `SELECT * WHERE { { ?a <http://ex/p> ?x . } { ?b <http://ex/q> ?y . } }`,
	} {
		t.Run(name, func(t *testing.T) {
			p, err := Prepare(text)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(10 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err = p.Run(ctx, g)
			elapsed := time.Since(start)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Run returned %v, want context.Canceled", err)
			}
			// The full cartesian materializes tens of millions of rows
			// (multiple seconds and gigabytes); a prompt abort is orders
			// of magnitude under this bound.
			if elapsed > 3*time.Second {
				t.Fatalf("cancelled run took %v, want prompt abort", elapsed)
			}
		})
	}
}

// An already-expired context must fail before any evaluation work.
func TestRunPreCancelled(t *testing.T) {
	g := allocTestGraph()
	p, err := Prepare(`SELECT ?s WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	<-dctx.Done()
	if _, err := p.RunSolutions(dctx, g); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunSolutions = %v, want context.DeadlineExceeded", err)
	}
}

// RunSolutions must expose exactly the rows Run materializes, decoding
// terms on access, and handle the ASK / aggregate / CONSTRUCT
// fallbacks behind the same accessors.
func TestRunSolutionsMatchesRun(t *testing.T) {
	g := allocTestGraph()
	for _, text := range prepareTestQueries {
		p, err := Prepare(text)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.Run(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := p.RunSolutions(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if got := sol.Results(); !got.Equal(want) {
			t.Fatalf("RunSolutions(%q) diverges from Run", text)
		}
		if sol.IsAsk() || sol.IsGraph() {
			continue
		}
		if sol.Len() != want.Len() {
			t.Fatalf("Solutions.Len(%q) = %d, want %d", text, sol.Len(), want.Len())
		}
		for i := 0; i < sol.Len(); i++ {
			for j, v := range sol.Vars() {
				term, bound := sol.Term(i, j)
				wt, wok := want.Rows[i][v]
				if bound != wok || (bound && term != wt) {
					t.Fatalf("Term(%d,%d) of %q = (%v,%v), want (%v,%v)", i, j, text, term, bound, wt, wok)
				}
			}
		}
	}
}

// LIMIT/OFFSET arguments must be validated integers: the old
// fmt.Sscanf parsing silently truncated "3.5" to 3 and ignored
// overflow entirely.
func TestParseLimitOffsetValidation(t *testing.T) {
	for _, text := range []string{
		`SELECT ?s WHERE { ?s ?p ?o } LIMIT 3.5`,
		`SELECT ?s WHERE { ?s ?p ?o } OFFSET 1.2`,
		`SELECT ?s WHERE { ?s ?p ?o } LIMIT -4`,
		`SELECT ?s WHERE { ?s ?p ?o } OFFSET -1`,
		`SELECT ?s WHERE { ?s ?p ?o } LIMIT 99999999999999999999999999`,
		`SELECT ?s WHERE { ?s ?p ?o } LIMIT ?x`,
	} {
		if _, err := Parse(text); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", text)
		} else if !strings.Contains(err.Error(), "LIMIT") && !strings.Contains(err.Error(), "OFFSET") {
			t.Fatalf("Parse(%q) error %q does not name the clause", text, err)
		}
	}
	q, err := Parse(`SELECT ?s WHERE { ?s ?p ?o } LIMIT 10 OFFSET 2`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 10 || q.Offset != 2 {
		t.Fatalf("LIMIT/OFFSET = %d/%d, want 10/2", q.Limit, q.Offset)
	}
}

// A cancellation that lands inside a build-left hash scatter must not
// leak the pre-sized output slice: its unfilled nil holes would crash
// any consumer that indexes rows before noticing the latched error
// (regression: Filter over a cancelled OPTIONAL panicked).
func TestCancelMidScatterLeaksNoHoles(t *testing.T) {
	g := joinTestGraph(2048)
	env, names, ages := joinSides(t, g)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	// Probe side (right) larger than build side (left) → build-left
	// paths. The counting loop polls the context after cancelCheckEvery
	// probes and must return nothing rather than a holed slice.
	for name, join := range map[string]func([]slotRow, []slotRow) []slotRow{
		"join":     env.joinRows,
		"optional": env.optionalRows,
	} {
		env.ctx, env.err, env.tick = cancelled, nil, 0
		out := join(names[:16], ages)
		if env.err == nil {
			t.Fatalf("%s: cancellation not latched", name)
		}
		for i, r := range out {
			if r == nil {
				t.Fatalf("%s: nil row hole at %d in %d-row output", name, i, len(out))
			}
		}
	}

	// End to end: the latched error must surface as ctx.Err() from the
	// pattern walk, not as partial rows handed to FILTER.
	env2 := PrepareQuery(MustParse(
		`SELECT * WHERE { ?s <http://ex/name> ?n OPTIONAL { ?s <http://ex/age> ?a } FILTER(BOUND(?a)) }`)).
		newEnv(cancelled, g)
	if _, err := evaluate(env2, env2.prep.q); !errors.Is(err, context.Canceled) {
		t.Fatalf("evaluate under cancelled ctx = %v, want context.Canceled", err)
	}
}
