// Package sparql implements the SPARQL subset the surveyed systems
// support (the survey's "SPARQL Fragment" dimension): basic graph
// patterns plus FILTER, OPTIONAL, UNION, DISTINCT, ORDER BY, LIMIT,
// OFFSET, projection, ASK, and COUNT/AVG aggregates (BGP+). It provides
// the shared front end (lexer, parser, algebra), a query-shape
// classifier (star / linear / snowflake / complex, Sec. II.B), and a
// reference evaluator used as ground truth for every engine.
package sparql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// Var is a SPARQL variable name without the leading '?'.
type Var string

// TPElem is one position of a triple pattern: a variable or a constant
// term.
type TPElem struct {
	IsVar bool
	Var   Var
	Term  rdf.Term
}

// VarElem builds a variable element.
func VarElem(v Var) TPElem { return TPElem{IsVar: true, Var: v} }

// TermElem builds a constant element.
func TermElem(t rdf.Term) TPElem { return TPElem{Term: t} }

func (e TPElem) String() string {
	if e.IsVar {
		return "?" + string(e.Var)
	}
	return e.Term.String()
}

// TriplePattern is one pattern of a basic graph pattern; each position
// may be a variable or a constant.
type TriplePattern struct {
	S, P, O TPElem
}

func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String()
}

// Vars returns the distinct variables of the pattern in S,P,O order.
func (tp TriplePattern) Vars() []Var {
	var out []Var
	seen := map[Var]bool{}
	for _, e := range []TPElem{tp.S, tp.P, tp.O} {
		if e.IsVar && !seen[e.Var] {
			seen[e.Var] = true
			out = append(out, e.Var)
		}
	}
	return out
}

// Matches reports whether a concrete triple matches the pattern
// ignoring variable consistency (callers handle shared variables).
func (tp TriplePattern) Matches(t rdf.Triple) bool {
	if !tp.S.IsVar && tp.S.Term != t.S {
		return false
	}
	if !tp.P.IsVar && tp.P.Term != t.P {
		return false
	}
	if !tp.O.IsVar && tp.O.Term != t.O {
		return false
	}
	return true
}

// GraphPattern is a node of the SPARQL algebra.
type GraphPattern interface {
	// PatternVars lists every variable mentioned in the pattern.
	PatternVars() []Var
	fmt.Stringer
}

// BGP is a basic graph pattern: a conjunction of triple patterns.
type BGP struct {
	Patterns []TriplePattern
}

// PatternVars implements GraphPattern.
func (b BGP) PatternVars() []Var { return dedupVars(b.collect()) }

func (b BGP) collect() []Var {
	var out []Var
	for _, tp := range b.Patterns {
		out = append(out, tp.Vars()...)
	}
	return out
}

func (b BGP) String() string {
	parts := make([]string, len(b.Patterns))
	for i, tp := range b.Patterns {
		parts[i] = tp.String()
	}
	return strings.Join(parts, " . ")
}

// Filter restricts the solutions of Inner by Cond.
type Filter struct {
	Inner GraphPattern
	Cond  FilterExpr
}

// PatternVars implements GraphPattern.
func (f Filter) PatternVars() []Var { return f.Inner.PatternVars() }

func (f Filter) String() string {
	return f.Inner.String() + " FILTER(" + f.Cond.String() + ")"
}

// Optional is a left-join: solutions of Left optionally extended by
// Right.
type Optional struct {
	Left, Right GraphPattern
}

// PatternVars implements GraphPattern.
func (o Optional) PatternVars() []Var {
	return dedupVars(append(o.Left.PatternVars(), o.Right.PatternVars()...))
}

func (o Optional) String() string {
	return o.Left.String() + " OPTIONAL { " + o.Right.String() + " }"
}

// Union is the alternation of two patterns.
type Union struct {
	Left, Right GraphPattern
}

// PatternVars implements GraphPattern.
func (u Union) PatternVars() []Var {
	return dedupVars(append(u.Left.PatternVars(), u.Right.PatternVars()...))
}

func (u Union) String() string {
	return "{ " + u.Left.String() + " } UNION { " + u.Right.String() + " }"
}

// Group is the sequential join of sub-patterns.
type Group struct {
	Parts []GraphPattern
}

// PatternVars implements GraphPattern.
func (g Group) PatternVars() []Var {
	var all []Var
	for _, p := range g.Parts {
		all = append(all, p.PatternVars()...)
	}
	return dedupVars(all)
}

func (g Group) String() string {
	parts := make([]string, len(g.Parts))
	for i, p := range g.Parts {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ")
}

func dedupVars(vs []Var) []Var {
	seen := map[Var]bool{}
	var out []Var
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// QueryForm distinguishes SELECT from ASK.
type QueryForm int

// Query forms.
const (
	FormSelect QueryForm = iota
	FormAsk
	FormConstruct
	FormDescribe
)

// OrderKey is one ORDER BY sort key.
type OrderKey struct {
	Var Var
	Asc bool
}

// Aggregate describes an aggregate projection such as COUNT(?x) or
// AVG(?age) (the survey's BGP+ additions).
type Aggregate struct {
	Fn    string // COUNT, SUM, AVG, MIN, MAX
	Var   Var    // argument variable; empty means COUNT(*)
	As    Var    // result name
	Group []Var  // GROUP BY variables
}

// Query is a parsed SPARQL query.
type Query struct {
	Form       QueryForm
	Distinct   bool
	Projection []Var // empty means SELECT *
	Agg        *Aggregate
	// Template holds the CONSTRUCT template patterns (FormConstruct).
	Template []TriplePattern
	// Describe holds the DESCRIBE targets (FormDescribe): variables
	// and/or constant resources.
	Describe []TPElem
	Where    GraphPattern
	OrderBy  []OrderKey
	Limit    int // -1 when absent
	Offset   int
}

// SelectedVars returns the variables the query projects (all pattern
// variables for SELECT *), in projection order.
func (q *Query) SelectedVars() []Var {
	if q.Agg != nil {
		out := append([]Var{}, q.Agg.Group...)
		return append(out, q.Agg.As)
	}
	if len(q.Projection) > 0 {
		return q.Projection
	}
	vs := q.Where.PatternVars()
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// BGPOf returns the flattened triple patterns when the WHERE clause is
// (or reduces to) a pure conjunction of BGPs; ok is false otherwise.
// Many surveyed engines support exactly this fragment.
func (q *Query) BGPOf() (BGP, bool) {
	var collect func(GraphPattern) ([]TriplePattern, bool)
	collect = func(p GraphPattern) ([]TriplePattern, bool) {
		switch n := p.(type) {
		case BGP:
			return n.Patterns, true
		case Group:
			var all []TriplePattern
			for _, part := range n.Parts {
				tps, ok := collect(part)
				if !ok {
					return nil, false
				}
				all = append(all, tps...)
			}
			return all, true
		default:
			return nil, false
		}
	}
	tps, ok := collect(q.Where)
	return BGP{Patterns: tps}, ok
}

// FilterExpr is a FILTER condition.
type FilterExpr interface {
	// EvalFilter computes the effective boolean value under b.
	EvalFilter(b Binding) bool
	fmt.Stringer
}

// VarLister is optionally implemented by FilterExpr values that can
// enumerate the variables they touch. The reference evaluator uses it
// when it must fall back to the map-based EvalFilter for an expression
// type it cannot run in id space: only the listed variables are decoded
// into the Binding instead of the whole solution row.
type VarLister interface {
	FilterVars() []Var
}

// Comparison compares a variable (or constant) with another operand.
type Comparison struct {
	Op   string // = != < <= > >=
	L, R Operand
}

// Operand is either a variable or a constant term.
type Operand struct {
	IsVar bool
	Var   Var
	Term  rdf.Term
}

func (o Operand) String() string {
	if o.IsVar {
		return "?" + string(o.Var)
	}
	return o.Term.String()
}

func (o Operand) resolve(b Binding) (rdf.Term, bool) {
	if !o.IsVar {
		return o.Term, true
	}
	t, ok := b[o.Var]
	return t, ok
}

// EvalFilter implements FilterExpr.
func (c Comparison) EvalFilter(b Binding) bool {
	l, ok := c.L.resolve(b)
	if !ok {
		return false
	}
	r, ok := c.R.resolve(b)
	if !ok {
		return false
	}
	return cmpSatisfies(c.Op, CompareTerms(l, r))
}

// cmpSatisfies interprets a three-way comparison result under one of
// the FILTER comparison operators.
func cmpSatisfies(op string, cmp int) bool {
	switch op {
	case "=":
		return cmp == 0
	case "!=":
		return cmp != 0
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	case ">":
		return cmp > 0
	case ">=":
		return cmp >= 0
	}
	return false
}

func (c Comparison) String() string {
	return c.L.String() + " " + c.Op + " " + c.R.String()
}

// LogicalAnd is &&.
type LogicalAnd struct{ L, R FilterExpr }

// EvalFilter implements FilterExpr.
func (a LogicalAnd) EvalFilter(b Binding) bool { return a.L.EvalFilter(b) && a.R.EvalFilter(b) }

func (a LogicalAnd) String() string { return "(" + a.L.String() + " && " + a.R.String() + ")" }

// LogicalOr is ||.
type LogicalOr struct{ L, R FilterExpr }

// EvalFilter implements FilterExpr.
func (o LogicalOr) EvalFilter(b Binding) bool { return o.L.EvalFilter(b) || o.R.EvalFilter(b) }

func (o LogicalOr) String() string { return "(" + o.L.String() + " || " + o.R.String() + ")" }

// LogicalNot is !.
type LogicalNot struct{ E FilterExpr }

// EvalFilter implements FilterExpr.
func (n LogicalNot) EvalFilter(b Binding) bool { return !n.E.EvalFilter(b) }

func (n LogicalNot) String() string { return "!(" + n.E.String() + ")" }

// Bound is BOUND(?x).
type Bound struct{ Var Var }

// EvalFilter implements FilterExpr.
func (bd Bound) EvalFilter(b Binding) bool { _, ok := b[bd.Var]; return ok }

func (bd Bound) String() string { return "BOUND(?" + string(bd.Var) + ")" }

// CompareTerms orders two terms: numeric literals numerically, other
// terms by kind then lexical value. It defines the semantics of FILTER
// comparisons and ORDER BY for the whole reproduction.
func CompareTerms(a, b rdf.Term) int {
	if a.IsLiteral() && b.IsLiteral() {
		if af, aok := numericValue(a); aok {
			if bf, bok := numericValue(b); bok {
				switch {
				case af < bf:
					return -1
				case af > bf:
					return 1
				default:
					return 0
				}
			}
		}
	}
	if a.Kind != b.Kind {
		return int(a.Kind) - int(b.Kind)
	}
	if c := strings.Compare(a.Value, b.Value); c != 0 {
		return c
	}
	if c := strings.Compare(a.Datatype, b.Datatype); c != 0 {
		return c
	}
	return strings.Compare(a.Lang, b.Lang)
}

// numericValue extracts a float from a datatyped literal. Plain
// (untyped) literals are simple strings and never numeric, matching
// SPARQL's operator semantics. This sits under every FILTER
// comparison and ORDER BY key, so it must not allocate: obviously
// non-numeric lexical forms are rejected before strconv runs (the
// error strconv would build is a heap allocation).
func numericValue(t rdf.Term) (float64, bool) {
	if !t.IsLiteral() || t.Datatype == "" || t.Value == "" {
		return 0, false
	}
	switch c := t.Value[0]; {
	case c >= '0' && c <= '9', c == '+', c == '-', c == '.':
	case c == 'I', c == 'i', c == 'N', c == 'n': // INF / NaN spellings
	default:
		return 0, false
	}
	f, err := strconv.ParseFloat(t.Value, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}
