package sparql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Binding maps variables to the terms they are bound to; absent
// variables are unbound (possible under OPTIONAL).
type Binding map[Var]rdf.Term

// Clone copies the binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Compatible reports whether two bindings agree on every shared
// variable (the SPARQL join condition).
func (b Binding) Compatible(other Binding) bool {
	for k, v := range b {
		if ov, ok := other[k]; ok && ov != v {
			return false
		}
	}
	return true
}

// Merge returns the union of two compatible bindings.
func (b Binding) Merge(other Binding) Binding {
	out := b.Clone()
	for k, v := range other {
		out[k] = v
	}
	return out
}

// Results is a solution sequence: an ordered list of bindings projected
// over Vars. All engines return this type, so results are directly
// comparable across systems.
type Results struct {
	Vars []Var
	Rows []Binding
	// Ask holds the answer of an ASK query; Rows is empty then.
	Ask bool
	// IsAsk marks ASK results.
	IsAsk bool
	// Triples holds the constructed graph of a CONSTRUCT query;
	// IsGraph marks such results.
	Triples []rdf.Triple
	IsGraph bool
}

// Len returns the number of solutions.
func (r *Results) Len() int { return len(r.Rows) }

// Project restricts rows to the given variables (used by engines after
// evaluating the full pattern). Rows already restricted to exactly the
// projected variables are reused without copying.
func (r *Results) Project(vars []Var) *Results {
	rows := make([]Binding, len(r.Rows))
	for i, b := range r.Rows {
		// Reusable only when b's keys and vars are equal as sets (vars
		// may hold duplicates, so length equality alone is not enough).
		reuse := true
		for v := range b {
			found := false
			for _, pv := range vars {
				if pv == v {
					found = true
					break
				}
			}
			if !found {
				reuse = false
				break
			}
		}
		if reuse {
			for _, v := range vars {
				if _, ok := b[v]; !ok {
					reuse = false
					break
				}
			}
		}
		if reuse {
			rows[i] = b
			continue
		}
		nb := make(Binding, len(vars))
		for _, v := range vars {
			if t, ok := b[v]; ok {
				nb[v] = t
			}
		}
		rows[i] = nb
	}
	return &Results{Vars: append([]Var{}, vars...), Rows: rows}
}

// rowKey renders one binding canonically over the result variables.
func (r *Results) rowKey(b Binding) string {
	parts := make([]string, len(r.Vars))
	for i, v := range r.Vars {
		if t, ok := b[v]; ok {
			parts[i] = t.String()
		} else {
			parts[i] = "UNBOUND"
		}
	}
	return strings.Join(parts, "\t")
}

// Canonical returns the solutions as sorted canonical strings — a
// multiset fingerprint used to compare engines against the reference
// evaluator.
func (r *Results) Canonical() []string {
	out := make([]string, len(r.Rows))
	for i, b := range r.Rows {
		out[i] = r.rowKey(b)
	}
	sort.Strings(out)
	return out
}

// OrderedCanonical returns the solutions in result order (for ORDER BY
// comparisons).
func (r *Results) OrderedCanonical() []string {
	out := make([]string, len(r.Rows))
	for i, b := range r.Rows {
		out[i] = r.rowKey(b)
	}
	return out
}

// Equal reports whether two result sets hold the same multiset of
// solutions over the same variables (or, for ASK/CONSTRUCT, the same
// answer / the same graph).
func (r *Results) Equal(other *Results) bool {
	if r.IsAsk != other.IsAsk || r.IsGraph != other.IsGraph {
		return false
	}
	if r.IsAsk {
		return r.Ask == other.Ask
	}
	if r.IsGraph {
		if len(r.Triples) != len(other.Triples) {
			return false
		}
		g := rdf.NewGraph(other.Triples)
		for _, t := range r.Triples {
			if !g.Has(t) {
				return false
			}
		}
		return true
	}
	a, b := r.Canonical(), other.Canonical()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders a small results table for CLIs and examples.
func (r *Results) String() string {
	if r.IsAsk {
		return fmt.Sprintf("ASK => %v", r.Ask)
	}
	if r.IsGraph {
		var b strings.Builder
		for _, t := range r.Triples {
			b.WriteString(t.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	var b strings.Builder
	for i, v := range r.Vars {
		if i > 0 {
			b.WriteString("\t")
		}
		b.WriteString("?" + string(v))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(r.rowKey(row))
		b.WriteByte('\n')
	}
	return b.String()
}

// SortRows orders rows by the given keys (stable), used by engines to
// apply ORDER BY uniformly.
func (r *Results) SortRows(keys []OrderKey) {
	sort.SliceStable(r.Rows, func(i, j int) bool {
		for _, k := range keys {
			ti, iok := r.Rows[i][k.Var]
			tj, jok := r.Rows[j][k.Var]
			if !iok && !jok {
				continue
			}
			if !iok {
				return k.Asc
			}
			if !jok {
				return !k.Asc
			}
			c := CompareTerms(ti, tj)
			if c == 0 {
				continue
			}
			if k.Asc {
				return c < 0
			}
			return c > 0
		}
		return false
	})
}

// ApplySolutionModifiers applies DISTINCT / ORDER BY / OFFSET / LIMIT /
// projection / aggregation in the standard SPARQL order. Engines
// evaluate the graph pattern their own way, then share this tail.
func ApplySolutionModifiers(q *Query, rows []Binding) *Results {
	if q.Agg != nil {
		rows = aggregateRows(q.Agg, rows)
	}
	vars := q.SelectedVars()
	res := &Results{Vars: vars, Rows: rows}
	res = res.Project(vars)
	if q.Distinct {
		seen := map[string]bool{}
		var kept []Binding
		for _, b := range res.Rows {
			k := res.rowKey(b)
			if !seen[k] {
				seen[k] = true
				kept = append(kept, b)
			}
		}
		res.Rows = kept
	}
	if len(q.OrderBy) > 0 {
		res.SortRows(q.OrderBy)
	}
	if q.Offset > 0 {
		if q.Offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(res.Rows) {
		res.Rows = res.Rows[:q.Limit]
	}
	if q.Form == FormAsk {
		return &Results{IsAsk: true, Ask: len(rows) > 0}
	}
	if q.Form == FormConstruct {
		return &Results{IsGraph: true, Triples: InstantiateTemplate(q.Template, res.Rows)}
	}
	return res
}

// InstantiateTemplate builds the CONSTRUCT output graph: the template
// patterns instantiated under every solution, dropping instantiations
// with unbound variables or invalid positions, deduplicated (a SPARQL
// CONSTRUCT result is a graph, i.e. a set).
func InstantiateTemplate(template []TriplePattern, rows []Binding) []rdf.Triple {
	var out []rdf.Triple
	seen := map[rdf.Triple]bool{}
	resolve := func(el TPElem, b Binding) (rdf.Term, bool) {
		if !el.IsVar {
			return el.Term, true
		}
		t, ok := b[el.Var]
		return t, ok
	}
	for _, b := range rows {
		for _, tp := range template {
			s, ok := resolve(tp.S, b)
			if !ok {
				continue
			}
			p, ok := resolve(tp.P, b)
			if !ok {
				continue
			}
			o, ok := resolve(tp.O, b)
			if !ok {
				continue
			}
			t := rdf.Triple{S: s, P: p, O: o}
			if t.Validate() != nil || seen[t] {
				continue
			}
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// aggregateRows evaluates the single supported aggregate over rows.
func aggregateRows(agg *Aggregate, rows []Binding) []Binding {
	type acc struct {
		group Binding
		count int
		sum   float64
		min   *rdf.Term
		max   *rdf.Term
	}
	groups := map[string]*acc{}
	var order []string
	for _, b := range rows {
		parts := make([]string, len(agg.Group))
		for i, g := range agg.Group {
			if t, ok := b[g]; ok {
				parts[i] = t.String()
			}
		}
		key := strings.Join(parts, "\t")
		a, ok := groups[key]
		if !ok {
			gb := Binding{}
			for _, g := range agg.Group {
				if t, has := b[g]; has {
					gb[g] = t
				}
			}
			a = &acc{group: gb}
			groups[key] = a
			order = append(order, key)
		}
		if agg.Var == "" { // COUNT(*)
			a.count++
			continue
		}
		t, bound := b[agg.Var]
		if !bound {
			continue
		}
		a.count++
		if f, ok := numericValue(t); ok {
			a.sum += f
		}
		tc := t
		if a.min == nil || CompareTerms(tc, *a.min) < 0 {
			a.min = &tc
		}
		if a.max == nil || CompareTerms(tc, *a.max) > 0 {
			a.max = &tc
		}
	}
	numLit := func(f float64) rdf.Term {
		s := strings.TrimSuffix(strings.TrimRight(fmt.Sprintf("%f", f), "0"), ".")
		return rdf.NewTypedLiteral(s, rdf.XSDInteger)
	}
	var out []Binding
	for _, key := range order {
		a := groups[key]
		b := a.group.Clone()
		switch agg.Fn {
		case "COUNT":
			b[agg.As] = rdf.NewTypedLiteral(fmt.Sprint(a.count), rdf.XSDInteger)
		case "SUM":
			b[agg.As] = numLit(a.sum)
		case "AVG":
			if a.count > 0 {
				b[agg.As] = numLit(a.sum / float64(a.count))
			}
		case "MIN":
			if a.min != nil {
				b[agg.As] = *a.min
			}
		case "MAX":
			if a.max != nil {
				b[agg.As] = *a.max
			}
		}
		out = append(out, b)
	}
	return out
}
