package sparql

import (
	"fmt"
	"regexp"
	"testing"
)

func fpOf(t *testing.T, text string) string {
	t.Helper()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	return FingerprintQuery(q)
}

var fpHex = regexp.MustCompile(`^[0-9a-f]{16}$`)

// TestFingerprintLiteralInvariance pins the core normalization: two
// queries that differ only in the data they mention — literal values,
// subject/object entity constants, variable spellings, LIMIT/OFFSET
// arguments — share a fingerprint.
func TestFingerprintLiteralInvariance(t *testing.T) {
	same := [][2]string{
		{ // literal object values
			`SELECT ?s WHERE { ?s <http://ex/name> "alice" }`,
			`SELECT ?s WHERE { ?s <http://ex/name> "bob" }`,
		},
		{ // FILTER comparison constants
			`SELECT ?s ?a WHERE { ?s <http://ex/age> ?a . FILTER(?a > 10) }`,
			`SELECT ?s ?a WHERE { ?s <http://ex/age> ?a . FILTER(?a > 99) }`,
		},
		{ // subject entity constants
			`SELECT ?n WHERE { <http://ex/alice> <http://ex/name> ?n }`,
			`SELECT ?n WHERE { <http://ex/bob> <http://ex/name> ?n }`,
		},
		{ // variable spellings
			`SELECT ?s ?n WHERE { ?s <http://ex/name> ?n . ?s <http://ex/age> ?a }`,
			`SELECT ?person ?name WHERE { ?person <http://ex/name> ?name . ?person <http://ex/age> ?years }`,
		},
		{ // LIMIT argument
			`SELECT ?s WHERE { ?s <http://ex/name> ?n } LIMIT 10`,
			`SELECT ?s WHERE { ?s <http://ex/name> ?n } LIMIT 500`,
		},
	}
	for i, pair := range same {
		a, b := fpOf(t, pair[0]), fpOf(t, pair[1])
		if !fpHex.MatchString(a) {
			t.Fatalf("case %d: fingerprint %q is not 16 hex digits", i, a)
		}
		if a != b {
			t.Errorf("case %d: same shape hashed differently:\n  %s -> %s\n  %s -> %s",
				i, pair[0], a, pair[1], b)
		}
	}
}

// TestFingerprintStructureSensitivity pins the other direction:
// structural differences — predicate identity, the join graph,
// modifiers — change the fingerprint.
func TestFingerprintStructureSensitivity(t *testing.T) {
	diff := [][2]string{
		{ // predicate identity is structure
			`SELECT ?s WHERE { ?s <http://ex/name> ?n }`,
			`SELECT ?s WHERE { ?s <http://ex/age> ?n }`,
		},
		{ // join graph: chain vs star over the same predicates
			`SELECT ?s WHERE { ?s <http://ex/p> ?o . ?o <http://ex/q> ?x }`,
			`SELECT ?s WHERE { ?s <http://ex/p> ?o . ?s <http://ex/q> ?x }`,
		},
		{ // pattern count
			`SELECT ?s WHERE { ?s <http://ex/p> ?o }`,
			`SELECT ?s WHERE { ?s <http://ex/p> ?o . ?s <http://ex/p> ?o2 }`,
		},
		{ // DISTINCT is structure
			`SELECT ?s WHERE { ?s <http://ex/p> ?o }`,
			`SELECT DISTINCT ?s WHERE { ?s <http://ex/p> ?o }`,
		},
		{ // LIMIT presence is structure (its value is not)
			`SELECT ?s WHERE { ?s <http://ex/p> ?o }`,
			`SELECT ?s WHERE { ?s <http://ex/p> ?o } LIMIT 10`,
		},
		{ // ORDER BY direction is structure
			`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o } ORDER BY ?o`,
			`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o } ORDER BY DESC(?o)`,
		},
		{ // term kind of a constant is structure
			`SELECT ?s WHERE { ?s <http://ex/p> "v" }`,
			`SELECT ?s WHERE { ?s <http://ex/p> <http://ex/v> }`,
		},
		{ // form is structure
			`SELECT ?s WHERE { ?s <http://ex/p> ?o }`,
			`ASK { ?s <http://ex/p> ?o }`,
		},
	}
	for i, pair := range diff {
		a, b := fpOf(t, pair[0]), fpOf(t, pair[1])
		if a == b {
			t.Errorf("case %d: structurally different queries collided on %s:\n  %s\n  %s",
				i, a, pair[0], pair[1])
		}
	}
}

// TestFingerprintSweepOneShape is the registry-cardinality contract
// from the workload observatory: 10k distinct query texts of one shape
// — a point lookup with ever-changing literals — produce exactly one
// fingerprint, and Prepare memoizes the same hash.
func TestFingerprintSweepOneShape(t *testing.T) {
	want := ""
	for i := 0; i < 10000; i++ {
		text := fmt.Sprintf(`SELECT ?s WHERE { ?s <http://ex/name> "user-%d" } LIMIT %d`, i, i+1)
		prep, err := Prepare(text)
		if err != nil {
			t.Fatal(err)
		}
		got := prep.Fingerprint()
		if want == "" {
			want = got
			if got != FingerprintQuery(prep.Query()) {
				t.Fatalf("Prepared.Fingerprint %s != FingerprintQuery %s", got, FingerprintQuery(prep.Query()))
			}
			continue
		}
		if got != want {
			t.Fatalf("text %d hashed to %s, want %s", i, got, want)
		}
	}
}
