package sparql

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fault"
)

// TestMorselPanicRetryDeterminism pins the lineage-retry contract for
// morsel tasks: a single injected panic inside a morsel worker is
// recovered, the task re-runs, and the query's output stays
// byte-identical to a clean serial run — the engine-side equivalent of
// Spark re-running a lost task from lineage.
func TestMorselPanicRetryDeterminism(t *testing.T) {
	g := parTestGraph(8192)
	queries := []string{
		// Seed scan: the simplest morsel source.
		`SELECT ?s ?n WHERE { ?s <http://ex/name> ?n }`,
		// Build-right probe: panics can hit the probe tasks.
		`SELECT * WHERE { { ?s <http://ex/name> ?n } { ?s <http://ex/age> ?a } }`,
		// Build-left scatter probe: the cursor-matrix must be re-runnable.
		`SELECT * WHERE { { ?s <http://ex/knows> ?k } { ?s <http://ex/age> ?a } }`,
		// Build-left OPTIONAL: emit-pass retries must not double-advance.
		`SELECT * WHERE { { ?s <http://ex/knows> ?k } OPTIONAL { ?s <http://ex/age> ?a } }`,
	}
	for qi, text := range queries {
		prep := MustPrepare(t, text)
		want, err := prep.Run(context.Background(), g, WithParallelism(1))
		if err != nil {
			t.Fatalf("query %d clean run: %v", qi, err)
		}
		plan := fault.NewPlan(int64(qi+1)).PanicNext(fault.PointMorsel, 1)
		var fs FaultStats
		got, err := prep.Run(fault.With(context.Background(), plan), g,
			WithParallelism(4), WithFaultStats(&fs))
		if err != nil {
			t.Fatalf("query %d faulted run: %v", qi, err)
		}
		if !got.Equal(want) {
			t.Fatalf("query %d: output diverged under an injected morsel panic", qi)
		}
		if c := plan.Counters(); c.Panics != 1 {
			t.Fatalf("query %d: plan injected %d panics, want 1", qi, c.Panics)
		}
		if fs.RecoveredPanics < 1 {
			t.Fatalf("query %d: fault stats recovered %d panics, want >= 1", qi, fs.RecoveredPanics)
		}
		if fs.Retries < 1 {
			t.Fatalf("query %d: fault stats report %d retries, want >= 1", qi, fs.Retries)
		}
	}
}

// TestMorselPanicExhaustedFailsQuery pins that a morsel task panicking
// on every attempt fails the query — with a typed PanicError, not a
// crashed process or a silent partial result.
func TestMorselPanicExhaustedFailsQuery(t *testing.T) {
	g := parTestGraph(8192)
	prep := MustPrepare(t, `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n }`)
	plan := fault.NewPlan(1).PanicNext(fault.PointMorsel, -1) // every hit panics
	var fs FaultStats
	_, err := prep.Run(fault.With(context.Background(), plan), g,
		WithParallelism(4), WithFaultStats(&fs))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v, want a *PanicError after exhausted retries", err)
	}
	if fs.RecoveredPanics < int64(maxTaskAttempts) {
		t.Fatalf("recovered %d panics, want >= %d (every attempt of the doomed task)",
			fs.RecoveredPanics, maxTaskAttempts)
	}
}

// TestMorselFaultInjectedError pins that an injected (non-panic) task
// failure is also retried to a clean result, and that exhausting the
// budget surfaces the injected error itself.
func TestMorselFaultInjectedError(t *testing.T) {
	g := parTestGraph(8192)
	prep := MustPrepare(t, `SELECT ?s ?n WHERE { ?s <http://ex/name> ?n }`)
	want, err := prep.Run(context.Background(), g, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}

	// Two one-shot failures: both tasks re-run and the output is clean.
	plan := fault.NewPlan(7).FailNext(fault.PointMorsel, 2)
	got, err := prep.Run(fault.With(context.Background(), plan), g, WithParallelism(4))
	if err != nil {
		t.Fatalf("faulted run: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("output diverged under injected morsel failures")
	}

	// Unbounded failure: the retry budget runs out and the injected
	// error reaches the caller.
	always := fault.NewPlan(7).FailAlways(fault.PointMorsel)
	if _, err := prep.Run(fault.With(context.Background(), always), g, WithParallelism(4)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error = %v, want fault.ErrInjected", err)
	}
}
