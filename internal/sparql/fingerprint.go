package sparql

import (
	"hash/fnv"
	"strconv"

	"repro/internal/rdf"
)

// Plan fingerprinting: a normalized query-shape hash that keys the
// workload observatory's per-shape aggregates (internal/obs). Two
// queries share a fingerprint exactly when they share *structure* —
// the same pattern layout, the same join graph, the same modifiers —
// regardless of the literals and entity constants they mention. The
// normalization rules:
//
//   - Variables are renamed to canonical ordinals in first-mention
//     order over a deterministic walk of the algebra, so ?s/?person
//     spelling differences disappear while the join graph (which
//     positions share a variable) is fully preserved.
//   - Predicate constants keep their value: the predicate defines
//     which relation a pattern touches, which is structure, not data.
//   - Subject/object constants and FILTER comparison constants are
//     reduced to their term kind (IRI, literal, blank). A point
//     lookup for Alice and one for Bob are the same query shape.
//   - Solution modifiers contribute their presence and structure
//     (DISTINCT, ORDER BY keys and directions, LIMIT/OFFSET
//     presence, projection, aggregate shape) but not their literal
//     arguments: LIMIT 10 and LIMIT 500 are the same shape.
//
// Pattern order is taken as written — the evaluator's join reordering
// is derived state, and hashing the written form keeps fingerprinting
// a pure function of the parsed query.

// fpState carries the canonical-variable table of one fingerprint walk.
type fpState struct {
	buf  []byte
	vars map[Var]int
}

func (st *fpState) writeVar(v Var) {
	n, ok := st.vars[v]
	if !ok {
		n = len(st.vars)
		st.vars[v] = n
	}
	st.buf = append(st.buf, '?')
	st.buf = strconv.AppendInt(st.buf, int64(n), 10)
}

// writeElem encodes one triple-pattern position. pred marks the
// predicate position, whose constants keep their value.
func (st *fpState) writeElem(e TPElem, pred bool) {
	if e.IsVar {
		st.writeVar(e.Var)
		return
	}
	if pred {
		st.buf = append(st.buf, '<')
		st.buf = append(st.buf, e.Term.Value...)
		st.buf = append(st.buf, '>')
		return
	}
	st.writeKind(e.Term)
}

// writeKind encodes a constant as its term kind only.
func (st *fpState) writeKind(t rdf.Term) {
	st.buf = append(st.buf, 'k')
	st.buf = strconv.AppendInt(st.buf, int64(t.Kind), 10)
}

func (st *fpState) writePattern(tp TriplePattern) {
	st.writeElem(tp.S, false)
	st.buf = append(st.buf, ' ')
	st.writeElem(tp.P, true)
	st.buf = append(st.buf, ' ')
	st.writeElem(tp.O, false)
	st.buf = append(st.buf, ';')
}

func (st *fpState) writeGraphPattern(p GraphPattern) {
	switch n := p.(type) {
	case BGP:
		st.buf = append(st.buf, "bgp{"...)
		for _, tp := range n.Patterns {
			st.writePattern(tp)
		}
		st.buf = append(st.buf, '}')
	case Filter:
		st.buf = append(st.buf, "filter("...)
		st.writeFilterExpr(n.Cond)
		st.buf = append(st.buf, "){"...)
		st.writeGraphPattern(n.Inner)
		st.buf = append(st.buf, '}')
	case Optional:
		st.buf = append(st.buf, "opt{"...)
		st.writeGraphPattern(n.Left)
		st.buf = append(st.buf, "}{"...)
		st.writeGraphPattern(n.Right)
		st.buf = append(st.buf, '}')
	case Union:
		st.buf = append(st.buf, "union{"...)
		st.writeGraphPattern(n.Left)
		st.buf = append(st.buf, "}{"...)
		st.writeGraphPattern(n.Right)
		st.buf = append(st.buf, '}')
	case Group:
		st.buf = append(st.buf, "grp{"...)
		for _, part := range n.Parts {
			st.writeGraphPattern(part)
		}
		st.buf = append(st.buf, '}')
	default:
		// Unknown algebra nodes still hash deterministically by type
		// string, so a new node type cannot silently alias an old shape.
		st.buf = append(st.buf, "node("...)
		st.buf = append(st.buf, p.String()...)
		st.buf = append(st.buf, ')')
	}
}

func (st *fpState) writeOperand(o Operand) {
	if o.IsVar {
		st.writeVar(o.Var)
		return
	}
	st.writeKind(o.Term)
}

func (st *fpState) writeFilterExpr(e FilterExpr) {
	switch n := e.(type) {
	case Comparison:
		st.buf = append(st.buf, "cmp"...)
		st.buf = append(st.buf, n.Op...)
		st.buf = append(st.buf, '(')
		st.writeOperand(n.L)
		st.buf = append(st.buf, ',')
		st.writeOperand(n.R)
		st.buf = append(st.buf, ')')
	case LogicalAnd:
		st.buf = append(st.buf, "and("...)
		st.writeFilterExpr(n.L)
		st.buf = append(st.buf, ',')
		st.writeFilterExpr(n.R)
		st.buf = append(st.buf, ')')
	case LogicalOr:
		st.buf = append(st.buf, "or("...)
		st.writeFilterExpr(n.L)
		st.buf = append(st.buf, ',')
		st.writeFilterExpr(n.R)
		st.buf = append(st.buf, ')')
	case LogicalNot:
		st.buf = append(st.buf, "not("...)
		st.writeFilterExpr(n.E)
		st.buf = append(st.buf, ')')
	case Bound:
		st.buf = append(st.buf, "bound("...)
		st.writeVar(n.Var)
		st.buf = append(st.buf, ')')
	default:
		st.buf = append(st.buf, "expr("...)
		st.buf = append(st.buf, e.String()...)
		st.buf = append(st.buf, ')')
	}
}

// canonicalShape renders the query's normalized structural form — the
// preimage of the fingerprint hash. Exported to tests via the
// fingerprint itself; kept unexported so the encoding can evolve.
func canonicalShape(q *Query) []byte {
	st := &fpState{buf: make([]byte, 0, 256), vars: make(map[Var]int, 8)}
	// WHERE first: it mentions (almost) every variable, so canonical
	// numbering is anchored to the join graph, not the SELECT list.
	st.buf = append(st.buf, "where:"...)
	if q.Where != nil {
		st.writeGraphPattern(q.Where)
	}
	st.buf = append(st.buf, "|form:"...)
	st.buf = strconv.AppendInt(st.buf, int64(q.Form), 10)
	if q.Distinct {
		st.buf = append(st.buf, "|distinct"...)
	}
	if len(q.Projection) > 0 {
		st.buf = append(st.buf, "|proj:"...)
		for _, v := range q.Projection {
			st.writeVar(v)
		}
	}
	if q.Agg != nil {
		st.buf = append(st.buf, "|agg:"...)
		st.buf = append(st.buf, q.Agg.Fn...)
		st.buf = append(st.buf, '(')
		if q.Agg.Var != "" {
			st.writeVar(q.Agg.Var)
		} else {
			st.buf = append(st.buf, '*')
		}
		st.buf = append(st.buf, ')')
		for _, v := range q.Agg.Group {
			st.writeVar(v)
		}
	}
	for _, t := range q.Template {
		st.buf = append(st.buf, "|tmpl:"...)
		st.writePattern(t)
	}
	for _, d := range q.Describe {
		st.buf = append(st.buf, "|desc:"...)
		st.writeElem(d, false)
	}
	if len(q.OrderBy) > 0 {
		st.buf = append(st.buf, "|order:"...)
		for _, k := range q.OrderBy {
			st.writeVar(k.Var)
			if k.Asc {
				st.buf = append(st.buf, '+')
			} else {
				st.buf = append(st.buf, '-')
			}
		}
	}
	// LIMIT/OFFSET contribute presence, not value: paging through the
	// same query is one workload shape.
	if q.Limit >= 0 {
		st.buf = append(st.buf, "|limit"...)
	}
	if q.Offset > 0 {
		st.buf = append(st.buf, "|offset"...)
	}
	return st.buf
}

// FingerprintQuery returns the plan fingerprint of a parsed query as
// fixed-width hex: the FNV-64a hash of its canonical structural form.
func FingerprintQuery(q *Query) string {
	h := fnv.New64a()
	h.Write(canonicalShape(q))
	const hexDigits = "0123456789abcdef"
	sum := h.Sum64()
	out := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		out[i] = hexDigits[sum&0xf]
		sum >>= 4
	}
	return string(out)
}

// Fingerprint returns the prepared query's plan fingerprint, computed
// once at Prepare time (a Prepared is immutable, so the fingerprint
// is too).
func (p *Prepared) Fingerprint() string { return p.fingerprint }
