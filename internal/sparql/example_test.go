package sparql_test

import (
	"fmt"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// ExampleEvaluate shows the reference evaluator answering a small
// star-shaped query.
func ExampleEvaluate() {
	g := rdf.NewGraph([]rdf.Triple{
		{S: rdf.NewIRI("http://ex/ann"), P: rdf.NewIRI("http://ex/name"), O: rdf.NewLiteral("Ann")},
		{S: rdf.NewIRI("http://ex/ann"), P: rdf.NewIRI("http://ex/age"), O: rdf.NewTypedLiteral("31", rdf.XSDInteger)},
	})
	q := sparql.MustParse(`SELECT ?n WHERE { ?s <http://ex/name> ?n . ?s <http://ex/age> ?a }`)
	res, _ := sparql.Evaluate(q, g)
	fmt.Println(res.Rows[0]["n"].Value)
	// Output: Ann
}

// ExampleClassifyShape shows the query-shape taxonomy of the survey's
// Section II.B.
func ExampleClassifyShape() {
	star := sparql.MustParse(`SELECT * WHERE { ?s <http://e/p> ?a . ?s <http://e/q> ?b }`)
	chain := sparql.MustParse(`SELECT * WHERE { ?a <http://e/p> ?b . ?b <http://e/q> ?c }`)
	fmt.Println(sparql.ClassifyShape(star))
	fmt.Println(sparql.ClassifyShape(chain))
	// Output:
	// star
	// linear
}
