package sparql

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/rdf"
)

// joinTestGraph builds n subjects each carrying a name and an age
// triple, for exercising joins between the two star branches.
func joinTestGraph(n int) *rdf.Graph {
	ts := make([]rdf.Triple, 0, 2*n)
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://ex/s%d", i))
		ts = append(ts,
			rdf.Triple{S: s, P: rdf.NewIRI("http://ex/name"), O: rdf.NewLiteral(fmt.Sprintf("n%d", i))},
			rdf.Triple{S: s, P: rdf.NewIRI("http://ex/age"), O: rdf.NewTypedLiteral(fmt.Sprint(20+i%8), rdf.XSDInteger)},
		)
	}
	return rdf.NewGraph(ts)
}

// joinSides evaluates the two star branches separately, so the join
// itself can be driven directly.
func joinSides(t testing.TB, g *rdf.Graph) (*evalEnv, []slotRow, []slotRow) {
	q := MustParse(`SELECT * WHERE { ?s <http://ex/name> ?n . ?s <http://ex/age> ?a }`)
	env := newEvalEnv(q, g)
	nameRows, err := env.evalPattern(BGP{Patterns: []TriplePattern{{
		S: VarElem("s"), P: TermElem(rdf.NewIRI("http://ex/name")), O: VarElem("n"),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	ageRows, err := env.evalPattern(BGP{Patterns: []TriplePattern{{
		S: VarElem("s"), P: TermElem(rdf.NewIRI("http://ex/age")), O: VarElem("a"),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	return env, nameRows, ageRows
}

func rowsEqual(a, b []slotRow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// The hash join must produce byte-identical output, in the same order,
// as the nested loop it replaces — for both build-side choices.
func TestHashJoinMatchesNestedLoop(t *testing.T) {
	g := joinTestGraph(40)
	env, names, ages := joinSides(t, g)

	// Build on the right side (|b| <= |a|).
	if got, want := env.joinRows(names, ages[:17]), env.nestedJoinRows(names, ages[:17]); !rowsEqual(got, want) {
		t.Fatalf("build-right hash join diverged from nested loop:\n%v\n%v", got, want)
	}
	// Build on the left side (|a| < |b|).
	if got, want := env.joinRows(names[:17], ages), env.nestedJoinRows(names[:17], ages); !rowsEqual(got, want) {
		t.Fatalf("build-left hash join diverged from nested loop:\n%v\n%v", got, want)
	}
}

func TestHashOptionalMatchesNestedLoop(t *testing.T) {
	g := joinTestGraph(40)
	env, names, ages := joinSides(t, g)

	// Drop some right rows so unmatched lefts pass through.
	if got, want := env.optionalRows(names, ages[:11]), env.nestedOptionalRows(names, ages[:11]); !rowsEqual(got, want) {
		t.Fatalf("build-right optional diverged from nested loop:\n%v\n%v", got, want)
	}
	if got, want := env.optionalRows(names[:11], ages), env.nestedOptionalRows(names[:11], ages); !rowsEqual(got, want) {
		t.Fatalf("build-left optional diverged from nested loop:\n%v\n%v", got, want)
	}
}

// A cartesian join (no shared slots at all) must take the nested-loop
// fallback and produce the full cross product.
func TestCartesianJoinNoSharedSlots(t *testing.T) {
	g := rdf.NewGraph([]rdf.Triple{
		{S: rdf.NewIRI("http://ex/s1"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewLiteral("x1")},
		{S: rdf.NewIRI("http://ex/s2"), P: rdf.NewIRI("http://ex/q"), O: rdf.NewLiteral("y1")},
		{S: rdf.NewIRI("http://ex/s3"), P: rdf.NewIRI("http://ex/q"), O: rdf.NewLiteral("y2")},
	})
	q := MustParse(`SELECT * WHERE { { ?a <http://ex/p> ?x } { ?b <http://ex/q> ?y } }`)
	res, err := Evaluate(q, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("cartesian join returned %d rows, want 2", len(res.Rows))
	}
	for _, b := range res.Rows {
		if b["a"] != rdf.NewIRI("http://ex/s1") || b["x"] != rdf.NewLiteral("x1") {
			t.Fatalf("cartesian row lost left bindings: %v", b)
		}
		if _, ok := b["b"]; !ok {
			t.Fatalf("cartesian row lost right bindings: %v", b)
		}
	}
	// The fallback itself: no shared slots means no hash key.
	env, names, _ := joinSides(t, joinTestGraph(4))
	if key := env.sharedKeySlots(names, names); len(key) == 0 {
		t.Fatal("expected a hash key for identical sides")
	}
}

// OPTIONAL where the left side has the join variable unbound in some
// rows: an unbound slot is compatible with every right value, which the
// hash path cannot express — the partial-binding fallback must fire and
// keep SPARQL's left-join semantics.
func TestOptionalJoinVarUnboundOnLeft(t *testing.T) {
	name := rdf.NewIRI("http://ex/name")
	knows := rdf.NewIRI("http://ex/knows")
	s1, s2, s3 := rdf.NewIRI("http://ex/s1"), rdf.NewIRI("http://ex/s2"), rdf.NewIRI("http://ex/s3")
	g := rdf.NewGraph([]rdf.Triple{
		{S: s1, P: name, O: rdf.NewLiteral("A")},
		{S: s2, P: name, O: rdf.NewLiteral("B")},
		{S: s3, P: name, O: rdf.NewLiteral("C")},
		{S: s1, P: knows, O: s2},
	})
	q := MustParse(`SELECT * WHERE {
		{ ?s <http://ex/name> ?n }
		OPTIONAL { ?s <http://ex/knows> ?k }
		OPTIONAL { ?k <http://ex/name> ?kn }
	}`)
	res, err := Evaluate(q, g)
	if err != nil {
		t.Fatal(err)
	}
	// s1 knows s2 → one extended row. s2 and s3 have ?k unbound, so the
	// second OPTIONAL joins them with every (?k, ?kn) name row: 3 each.
	if len(res.Rows) != 7 {
		t.Fatalf("got %d rows, want 7: %v", len(res.Rows), res.Rows)
	}
	boundK := 0
	for _, b := range res.Rows {
		if b["s"] == s1 {
			if b["k"] != s2 || b["kn"] != rdf.NewLiteral("B") {
				t.Fatalf("s1 row mis-joined: %v", b)
			}
			boundK++
		} else if _, ok := b["k"]; !ok {
			t.Fatalf("unbound-?k row should have been extended by the fallback: %v", b)
		}
	}
	if boundK != 1 {
		t.Fatalf("s1 matched %d times, want 1", boundK)
	}
}

// Union must not alias rows across its branches: modifying the combined
// sequence downstream (FILTER compacts in place) must leave both branch
// results intact and correct.
func TestUnionFilterInPlace(t *testing.T) {
	g := joinTestGraph(8)
	q := MustParse(`SELECT ?s ?v WHERE {
		{ { ?s <http://ex/name> ?v } UNION { ?s <http://ex/age> ?v } }
		FILTER(?v != "n3")
	}`)
	res, err := Evaluate(q, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 15 {
		t.Fatalf("union+filter returned %d rows, want 15", len(res.Rows))
	}
	for _, b := range res.Rows {
		if b["v"] == rdf.NewLiteral("n3") {
			t.Fatalf("filtered row survived: %v", b)
		}
	}
}

// varTrackingExpr is a FilterExpr the id-space compiler does not know;
// it implements VarLister and records which variables its Binding
// actually carried.
type varTrackingExpr struct {
	vars []Var
	seen map[Var]bool
}

func (e *varTrackingExpr) EvalFilter(b Binding) bool {
	for v := range b {
		e.seen[v] = true
	}
	return true
}

func (e *varTrackingExpr) String() string { return "varTracking()" }

func (e *varTrackingExpr) FilterVars() []Var { return e.vars }

// The evalFilter fallback must decode only the variables a VarLister
// expression declares, not the whole row.
func TestEvalFilterFallbackDecodesOnlyTouchedVars(t *testing.T) {
	g := joinTestGraph(4)
	q := MustParse(`SELECT * WHERE { ?s <http://ex/name> ?n . ?s <http://ex/age> ?a }`)
	env := newEvalEnv(q, g)
	rows, err := env.evalPattern(q.Where)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows to filter")
	}
	expr := &varTrackingExpr{vars: []Var{"n"}, seen: map[Var]bool{}}
	if !env.evalFilter(expr, rows[0]) {
		t.Fatal("filter should pass")
	}
	if !expr.seen["n"] {
		t.Fatal("declared variable ?n was not decoded")
	}
	if expr.seen["s"] || expr.seen["a"] {
		t.Fatalf("undeclared variables decoded: %v", expr.seen)
	}
}
