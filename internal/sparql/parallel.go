package sparql

import (
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rdf"
)

// Morsel-driven intra-query parallelism. A (*Prepared).Run with
// parallelism > 1 splits its two bulk producers — each BGP's
// most-selective seed scan and each id-space hash join's probe side —
// into fixed-size morsels dispatched to a per-Run worker pool. The
// contract that keeps parallel output byte-identical to the serial
// evaluator:
//
//   - Morsels are contiguous subranges of the serial iteration order
//     (candidate triples of the seed scan's index view, probe-side
//     rows of a hash join), split by rdf.MorselBounds.
//   - Each worker owns a private evaluation environment — its own row
//     arena, cancellation tick, and error latch — and shares only the
//     immutable run state (slot table, encoded view, compiled scan,
//     build-side hash table). Rows a worker produces stay valid after
//     the pool is gone; arenas amortize across every morsel a worker
//     runs.
//   - Results merge in morsel order: seed scans and build-right
//     probes concatenate per-morsel output buffers; build-left probes
//     scatter through per-(morsel, build-row) write cursors computed
//     from a counting pass, so the a-major/b-suborder of the serial
//     scatter is reproduced exactly.
//   - Cancellation latches across workers: the first environment to
//     observe ctx.Done() raises parRun.stop, every other worker sees
//     it at its next amortized poll (1/1024 rows), and the dispatcher
//     stops handing out morsels.
//
// The nested-loop fallback (cartesian joins, bindings partial on the
// build key) and every probe below parMinWork stay serial, so the
// serial path's allocation pins are untouched.

const (
	// morselSize is the number of input items (candidate triples of a
	// seed scan, probe-side rows of a hash join) one morsel covers.
	morselSize = 1024
	// parMinWork is the smallest input worth splitting: below two
	// morsels the dispatch overhead outweighs the parallelism.
	parMinWork = 2 * morselSize
)

// parRun is the state one parallel Run shares across its workers: the
// configured width, the cross-worker cancellation latch, and the
// morsel accounting surfaced through RunStats.
type parRun struct {
	n       int         // worker-pool size
	stop    atomic.Bool // latched: some environment observed ctx.Done()
	ops     atomic.Int64
	morsels atomic.Int64
	specK   float64 // > 0: speculative re-execution straggler multiple

	// Failure latch: the first task whose panic retries are exhausted
	// records its error here and raises stop, cancelling the run — the
	// query dies, the process (and the pool's other workers draining
	// their morsels) never does.
	failMu  sync.Mutex
	failErr error
}

// latchFailure records the run-cancelling error of one failed task
// (first writer wins) and raises the stop latch.
func (p *parRun) latchFailure(err error) {
	p.failMu.Lock()
	if p.failErr == nil {
		p.failErr = err
	}
	p.failMu.Unlock()
	p.stop.Store(true)
}

// failure returns the latched task failure, if any.
func (p *parRun) failure() error {
	p.failMu.Lock()
	defer p.failMu.Unlock()
	return p.failErr
}

// RunStats reports how one Run executed. Request it with WithRunStats.
type RunStats struct {
	// Parallelism is the resolved worker-pool width of the run (1 for
	// a serial run).
	Parallelism int
	// ParallelOps counts the scans and probe passes that were actually
	// dispatched as morsels; 0 means the whole run stayed serial.
	ParallelOps int64
	// Morsels counts the morsels dispatched across those operations.
	Morsels int64
	// BytesCharged is the evaluator-owned memory the run charged
	// against its budget (arena chunks, join state, gather buffers);
	// 0 unless the run was armed with WithMemoryBudget.
	BytesCharged int64
}

// runOpts collects the per-Run options.
type runOpts struct {
	parallelism int
	stats       *RunStats

	// Sharded-run options (dist.go): the execution report sink and the
	// route override. Both are ignored by single-graph runs.
	shardStats   *ShardStats
	forceScatter bool

	// Fault-handling options (replica.go): the fault counters sink and
	// the shard-op retry policy (zero value = defaults).
	faultStats *FaultStats
	retry      RetryPolicy

	// Tail-latency options (health.go): hedged shard operations and
	// the speculative-re-execution straggler multiple (0 = off).
	hedge      *HedgePolicy
	specFactor float64

	// Memory-budget option (budget.go): > 0 bounds the run's charged
	// bytes, < 0 arms tracking only, 0 disables accounting.
	memBudget int64

	// Execution-trace option (trace.go): non-nil arms the run to
	// record a span tree under the trace's current span.
	trace *obs.Trace
}

// RunOption tunes one (*Prepared).Run / RunSolutions call.
type RunOption func(*runOpts)

// WithParallelism sets the run's worker-pool width. n <= 0 means
// GOMAXPROCS (the default); 1 forces fully serial evaluation.
func WithParallelism(n int) RunOption {
	return func(o *runOpts) { o.parallelism = n }
}

// WithRunStats makes the run fill s with its execution counters just
// before returning.
func WithRunStats(s *RunStats) RunOption {
	return func(o *runOpts) { o.stats = s }
}

func resolveRunOpts(opts []RunOption) runOpts {
	var o runOpts
	for _, f := range opts {
		if f != nil {
			f(&o)
		}
	}
	if o.parallelism <= 0 {
		o.parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// configureParallel arms the environment for morsel dispatch and, when
// requested, memory accounting and execution tracing. Width 1 leaves
// env.par nil: the run takes exactly the serial code paths. No budget
// leaves env.mem nil, no trace leaves env.trace nil: every charge and
// span site costs one nil check.
func (env *evalEnv) configureParallel(o *runOpts) {
	if o.parallelism > 1 {
		env.par = &parRun{n: o.parallelism, specK: o.specFactor}
	}
	if o.memBudget != 0 {
		mb := &memBudget{}
		if o.memBudget > 0 {
			mb.limit = o.memBudget
		}
		env.mem = mb
	}
	if o.trace != nil {
		et := &execTrace{t: o.trace}
		if o.parallelism > 1 {
			et.busy = make([]atomic.Int64, o.parallelism)
		}
		env.trace = et
	}
}

// capture fills the caller's RunStats and FaultStats after the run.
func (o *runOpts) capture(env *evalEnv) {
	if env.trace != nil {
		env.trace.finishRoot(env)
	}
	if o.faultStats != nil && env.ftally != nil {
		t := env.ftally
		*o.faultStats = FaultStats{
			Attempts:        t.attempts.Load(),
			Retries:         t.retries.Load(),
			Failovers:       t.failovers.Load(),
			RecoveredPanics: t.panics.Load(),
			Hedges:          t.hedges.Load(),
			HedgeWins:       t.hedgeWins.Load(),
			Speculations:    t.specs.Load(),
			SpeculationWins: t.specWins.Load(),
		}
	}
	if o.stats == nil {
		return
	}
	*o.stats = RunStats{Parallelism: 1}
	if env.par != nil {
		o.stats.Parallelism = env.par.n
		o.stats.ParallelOps = env.par.ops.Load()
		o.stats.Morsels = env.par.morsels.Load()
	}
	if env.mem != nil {
		o.stats.BytesCharged = env.mem.used.Load()
	}
}

// canParallel reports whether a bulk operation over n input items
// should be split into morsels.
func (env *evalEnv) canParallel(n int) bool {
	return env.par != nil && env.par.n > 1 && n >= parMinWork
}

// workerEnv derives a worker's private environment: fresh arena, tick,
// and error latch over the shared immutable run state.
func (env *evalEnv) workerEnv() *evalEnv {
	return &evalEnv{
		g:     env.g,
		view:  env.view,
		terms: env.terms,
		slots: env.slots,
		vars:  env.vars,
		stats: env.stats,
		ctx:   env.ctx,
		par:   env.par,
		mem:   env.mem, // one shared budget across every worker

		fplan:  env.fplan,
		ftally: env.ftally,

		// Shared for the busy accumulators only — a worker never
		// touches the span tree (driver-only mutation).
		trace: env.trace,
	}
}

// poolTask is one morsel handed to the pool: the work and the
// operation's completion group. A direct task manages its own retries
// and completion (speculative execution, runMorselsSpec) — the pool
// only lends it a worker environment.
type poolTask struct {
	fn     func(w *evalEnv)
	wg     *sync.WaitGroup
	direct bool
}

// workerPool is the per-Run pool: n goroutines, each bound to one
// worker environment for the lifetime of the run (so worker arenas
// amortize across operations), pulling morsels off an unbuffered
// channel. The unbuffered send doubles as backpressure — the
// dispatcher re-checks the limit short-circuit and the cancellation
// latch between sends.
type workerPool struct {
	tasks chan poolTask
}

func newWorkerPool(parent *evalEnv, n int) *workerPool {
	p := &workerPool{tasks: make(chan poolTask)}
	for i := 0; i < n; i++ {
		w := parent.workerEnv()
		w.wid = i
		go func() {
			for t := range p.tasks {
				runTask(w, t)
			}
		}()
	}
	return p
}

// maxTaskAttempts bounds re-running a panicked morsel task — the
// engine-side mirror of Spark's spark.task.maxFailures (lineage-based
// task retry, the fault-tolerance contract the surveyed systems inherit
// from the platform).
const maxTaskAttempts = 3

// runTask executes one morsel task, recovering panics (real ones and
// injected ones, fault.PointMorsel) and re-running the task up to
// maxTaskAttempts times. Morsel tasks are pure functions of immutable
// run state that (re)initialize their private output slots, so a re-run
// recomputes exactly what the crashed attempt would have produced —
// byte-identical output survives the crash. When attempts exhaust, the
// failure latches into the run (parRun.latchFailure), cancelling the
// query; the process and the pool's other workers stay up.
func runTask(w *evalEnv, t poolTask) {
	if t.wg != nil {
		defer t.wg.Done()
	}
	if w.trace != nil {
		// Per-worker busy time. Registered after wg.Done so it runs
		// before it (LIFO): the accumulator is complete once the
		// dispatcher's wg.Wait returns.
		start := time.Now()
		defer func() { w.trace.busy[w.wid].Add(int64(time.Since(start))) }()
	}
	if t.direct {
		t.fn(w)
		return
	}
	for attempt := 1; ; attempt++ {
		err := runTaskAttempt(w, t.fn)
		if err == nil {
			return
		}
		if _, ok := err.(*PanicError); ok && w.ftally != nil {
			w.ftally.panics.Add(1)
		}
		if w.err != nil {
			// The run is already cancelled; its error wins.
			return
		}
		if attempt >= maxTaskAttempts {
			w.par.latchFailure(err)
			return
		}
		if w.ftally != nil {
			w.ftally.retries.Add(1)
		}
	}
}

// runTaskAttempt runs the task body once behind a panic recovery and
// the morsel fault point.
func runTaskAttempt(w *evalEnv, fn func(*evalEnv)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if e := w.fplan.Hit(fault.PointMorsel); e != nil {
		return e
	}
	fn(w)
	return nil
}

// close releases the pool's goroutines. Safe to call on a serial
// environment or twice; rows produced by workers remain valid.
func (env *evalEnv) close() {
	if env.pool != nil {
		close(env.pool.tasks)
		env.pool = nil
	}
}

// runMorsels dispatches morsels [0, total) to the pool and waits for
// the dispatched ones to finish. mk builds the m-th morsel's task;
// tasks run concurrently and must write only morsel-private state.
// When needed > 0 and produced is non-nil, dispatch short-circuits as
// soon as produced (the tasks' shared output-row counter) reaches
// needed — the LIMIT pushdown. Returns how many morsels were
// dispatched and latches any cross-worker cancellation into env.err.
func (env *evalEnv) runMorsels(total, needed int, produced *atomic.Int64, mk func(m int) func(w *evalEnv)) int {
	if env.pool == nil {
		env.pool = newWorkerPool(env, env.par.n)
	}
	var wg sync.WaitGroup
	dispatched := 0
	for m := 0; m < total; m++ {
		if env.par.stop.Load() {
			break
		}
		if needed > 0 && produced != nil && produced.Load() >= int64(needed) {
			break
		}
		wg.Add(1)
		env.pool.tasks <- poolTask{fn: mk(m), wg: &wg}
		dispatched++
	}
	wg.Wait()
	env.par.ops.Add(1)
	env.par.morsels.Add(int64(dispatched))
	if env.trace != nil {
		// The dispatcher runs on the driver under the operation's span
		// (seed_scan or join), so the morsel accounting lands there.
		cur := env.trace.t.Current()
		cur.AddInt("morsels", int64(dispatched))
		cur.SetInt("width", int64(env.par.n))
	}
	// A latched task failure (exhausted panic retries) outranks the
	// cancellation latch: stop may be raised by either, and ctx.Err()
	// is nil when the run died of a panic rather than cancellation.
	if env.err == nil {
		if ferr := env.par.failure(); ferr != nil {
			env.err = ferr
		} else if env.par.stop.Load() && env.ctx != nil {
			if cerr := env.ctx.Err(); cerr != nil {
				env.err = cerr
			}
		}
	}
	return dispatched
}

// runMorselsOut dispatches morsels whose tasks each produce one
// private output buffer: compute(m, w) returns morsel m's rows, and
// the committed buffer lands in outs[m] (with len(out) added to the
// shared produced counter when non-nil). This is the commit-side
// variant of runMorsels that speculation needs: because the buffer is
// returned rather than written in place, two racing copies of the same
// morsel can run and exactly one result commits. Without speculation
// armed it delegates to runMorsels with the commit inlined — same
// dispatch, same cost.
func (env *evalEnv) runMorselsOut(total, needed int, produced *atomic.Int64, outs [][]slotRow, compute func(m int, w *evalEnv) []slotRow) int {
	if env.par.specK > 0 {
		return env.runMorselsSpec(total, needed, produced, outs, compute)
	}
	return env.runMorsels(total, needed, produced, func(m int) func(w *evalEnv) {
		return func(w *evalEnv) {
			out := compute(m, w)
			if w.err != nil {
				return
			}
			outs[m] = out
			if produced != nil {
				produced.Add(int64(len(out)))
			}
		}
	})
}

// Speculative morsel re-execution — the engine-side reproduction of
// Spark's speculative task execution (spark.speculation): a watchdog
// re-dispatches tasks still running after specK× the run's median
// completed-task time, and the first copy to finish commits. The
// claim protocol that keeps output byte-identical:
//
//   - Each morsel's copies compute into private buffers; a single
//     atomic claim (specTask.claimed) decides which copy commits
//     outs[m]. Tasks are pure functions of immutable run state, so
//     both copies compute identical rows — the claim only picks whose
//     allocation survives.
//   - The claim doubles as the loser's stop flag: evalEnv.taskStop
//     points at it, so a straggling loser abandons its morsel at the
//     next amortized poll without latching any error.
//   - The operation's wait group counts claims, not task exits: each
//     dispatched morsel resolves exactly once (commit, failure latch,
//     or dying-run release).
const (
	// specMinSamples is how many completed tasks the watchdog needs
	// before it trusts the median.
	specMinSamples = 3
	// specMinThreshold floors the straggler threshold: µs-scale tasks
	// are never worth re-dispatching.
	specMinThreshold = 100 * time.Microsecond
	// specWatchdogTick is the watchdog's poll interval.
	specWatchdogTick = 500 * time.Microsecond
)

// specTask is the per-morsel race state.
type specTask struct {
	claimed atomic.Bool  // first-completion-wins claim + loser stop flag
	started atomic.Int64 // first copy's start time (unix nanos); 0 = queued
	specd   atomic.Bool  // a speculative copy was launched
}

func (env *evalEnv) runMorselsSpec(total, needed int, produced *atomic.Int64, outs [][]slotRow, compute func(m int, w *evalEnv) []slotRow) int {
	if env.pool == nil {
		env.pool = newWorkerPool(env, env.par.n)
	}
	states := make([]specTask, total)
	var wg sync.WaitGroup // one Done per dispatched morsel, at claim resolution
	var durMu sync.Mutex
	var durs []int64 // committed-copy durations, for the straggler median

	// release resolves a morsel's claim without committing (dying run,
	// exhausted failure): the first resolver still fires the wait group.
	release := func(st *specTask) bool {
		if st.claimed.CompareAndSwap(false, true) {
			wg.Done()
			return true
		}
		return false
	}

	// run executes one copy of morsel m and resolves its claim: the
	// first copy to finish commits its private buffer, later copies
	// discard theirs.
	run := func(m int, st *specTask, w *evalEnv, spec bool) {
		start := time.Now()
		st.started.CompareAndSwap(0, start.UnixNano())
		w.taskStop = &st.claimed
		defer func() { w.taskStop = nil }()
		out := compute(m, w)
		if w.err != nil {
			release(st)
			return
		}
		if !st.claimed.CompareAndSwap(false, true) {
			return // lost the race; the winner already committed
		}
		outs[m] = out
		if produced != nil {
			produced.Add(int64(len(out)))
		}
		if spec && w.ftally != nil {
			w.ftally.specWins.Add(1)
		}
		durMu.Lock()
		durs = append(durs, int64(time.Since(start)))
		durMu.Unlock()
		wg.Done()
	}

	// original builds morsel m's pool task: runTask's retry loop,
	// inlined so an exhausted failure only kills the run if the morsel
	// was not already rescued by its speculative copy.
	original := func(m int, st *specTask) func(w *evalEnv) {
		return func(w *evalEnv) {
			// Stamp the start before the first attempt, not inside run():
			// a task stalled ahead of its compute (an injected fault
			// delay, a descheduled worker) is already straggling, and the
			// watchdog must see it running.
			st.started.CompareAndSwap(0, time.Now().UnixNano())
			for attempt := 1; ; attempt++ {
				err := runTaskAttempt(w, func(w *evalEnv) { run(m, st, w, false) })
				if err == nil {
					return
				}
				if _, ok := err.(*PanicError); ok && w.ftally != nil {
					w.ftally.panics.Add(1)
				}
				if w.err != nil {
					release(st)
					return
				}
				if attempt >= maxTaskAttempts {
					if release(st) {
						w.par.latchFailure(err)
					}
					return
				}
				if st.claimed.Load() {
					return // rescued while we were failing; nothing to retry for
				}
				if w.ftally != nil {
					w.ftally.retries.Add(1)
				}
			}
		}
	}

	// The watchdog: every tick, compute the straggler threshold from
	// the committed-task median and launch one speculative copy (on a
	// fresh goroutine with a private environment) for each unclaimed
	// task over it.
	watchStop := make(chan struct{})
	var aux sync.WaitGroup // the watchdog and every speculative copy
	aux.Add(1)
	go func() {
		defer aux.Done()
		tick := time.NewTicker(specWatchdogTick)
		defer tick.Stop()
		for {
			select {
			case <-watchStop:
				return
			case <-tick.C:
			}
			durMu.Lock()
			var median int64
			if len(durs) >= specMinSamples {
				sorted := append([]int64(nil), durs...)
				sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
				median = sorted[len(sorted)/2]
			}
			durMu.Unlock()
			if median == 0 {
				continue
			}
			threshold := time.Duration(float64(median) * env.par.specK)
			if threshold < specMinThreshold {
				threshold = specMinThreshold
			}
			now := time.Now().UnixNano()
			for i := range states {
				st := &states[i]
				if st.claimed.Load() || st.specd.Load() {
					continue
				}
				startNs := st.started.Load()
				if startNs == 0 || now-startNs < int64(threshold) {
					continue
				}
				st.specd.Store(true)
				if env.ftally != nil {
					env.ftally.specs.Add(1)
				}
				aux.Add(1)
				go func(m int, st *specTask) {
					defer aux.Done()
					// One best-effort attempt: a panicking or failing
					// copy is simply dropped — the original still owns
					// the retry budget.
					w := env.workerEnv()
					_ = runTaskAttempt(w, func(w *evalEnv) { run(m, st, w, true) })
				}(i, st)
			}
		}
	}()

	dispatched := 0
	for m := 0; m < total; m++ {
		if env.par.stop.Load() {
			break
		}
		if needed > 0 && produced != nil && produced.Load() >= int64(needed) {
			break
		}
		wg.Add(1)
		env.pool.tasks <- poolTask{fn: original(m, &states[m]), direct: true}
		dispatched++
	}
	// Morsels beyond dispatched never resolve a claim; their wait-group
	// slots were never added, so waiting on claims of the dispatched
	// prefix is exact.
	wg.Wait()
	close(watchStop)
	aux.Wait() // losers and the watchdog are gone before the op returns
	env.par.ops.Add(1)
	env.par.morsels.Add(int64(dispatched))
	if env.trace != nil {
		cur := env.trace.t.Current()
		cur.AddInt("morsels", int64(dispatched))
		cur.SetInt("width", int64(env.par.n))
	}
	if env.err == nil {
		if ferr := env.par.failure(); ferr != nil {
			env.err = ferr
		} else if env.par.stop.Load() && env.ctx != nil {
			if cerr := env.ctx.Err(); cerr != nil {
				env.err = cerr
			}
		}
	}
	return dispatched
}

// mergeMorsels concatenates per-morsel output buffers in morsel order
// (= serial order), charging the merged batch against the run's
// budget. Returns nil for an empty result, like the serial join paths.
func mergeMorsels(env *evalEnv, outs [][]slotRow) []slotRow {
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	if total == 0 {
		return nil
	}
	env.chargeRowBatch(total, stageJoin)
	if env.err != nil { // over budget: skip the merge allocation
		return nil
	}
	merged := make([]slotRow, 0, total)
	for _, o := range outs {
		merged = append(merged, o...)
	}
	return merged
}

// seedScanPar splits a seed scan's candidate view into morsels. Each
// morsel scans its contiguous candidate range into a private buffer
// (rows from the worker's arena); the merge concatenates buffers in
// morsel order, so the result is the serial scan's row order exactly.
// max > 0 is the LIMIT pushdown bound: dispatch stops once the morsels
// already finished have produced enough leading rows, and each morsel
// caps itself at max (its contribution to the kept prefix can never
// exceed that).
func (env *evalEnv) seedScanPar(ps *patternScan, row slotRow, max int) []slotRow {
	n := len(ps.candidates)
	total := rdf.MorselCount(n, morselSize)
	outs := make([][]slotRow, total)
	var produced atomic.Int64
	dispatched := env.runMorselsOut(total, max, &produced, outs, func(m int, w *evalEnv) []slotRow {
		start, end := rdf.MorselBounds(m, n, morselSize)
		scratch := w.emptyRow()
		return w.scanPattern(ps, row, scratch, ps.candidates[start:end], max, nil)
	})
	if env.err != nil {
		return nil
	}
	merged := mergeMorsels(env, outs[:dispatched])
	if merged == nil {
		// Serial seed scans yield an empty non-nil slice; callers only
		// check len, but stay consistent.
		merged = []slotRow{}
	}
	return merged
}

// hashJoinBuildRightPar is hashJoinBuildRight with the probe side (a)
// split into morsels: the build pass stays serial, each morsel counts
// and emits its contiguous a-range into a private buffer, and buffers
// concatenate in morsel order — a-major with b-suborder, exactly the
// serial output.
func (env *evalEnv) hashJoinBuildRightPar(a, b []slotRow, key []int) []slotRow {
	head, next, mask := buildJoinTable(b, key)
	env.chargeJoinTable(head, next)
	n := len(a)
	total := rdf.MorselCount(n, morselSize)
	outs := make([][]slotRow, total)
	env.runMorselsOut(total, 0, nil, outs, func(m int, w *evalEnv) []slotRow {
		start, end := rdf.MorselBounds(m, n, morselSize)
		var out []slotRow
		for _, x := range a[start:end] {
			if w.interrupted() {
				break
			}
			h := rowKeyHash(x, key) & mask
			for yi := head[h]; yi >= 0; yi = next[yi] {
				if y := b[yi]; compatibleRows(x, y) {
					out = append(out, w.mergeRows(x, y))
				}
			}
		}
		return out
	})
	if env.err != nil {
		return nil
	}
	return mergeMorsels(env, outs)
}

// hashOptionalBuildRightPar mirrors hashOptionalBuildRight: morsels
// over the probe (left) side, unmatched left rows passing through
// uncopied inside their morsel's buffer.
func (env *evalEnv) hashOptionalBuildRightPar(left, right []slotRow, key []int) []slotRow {
	head, next, mask := buildJoinTable(right, key)
	env.chargeJoinTable(head, next)
	n := len(left)
	total := rdf.MorselCount(n, morselSize)
	outs := make([][]slotRow, total)
	env.runMorselsOut(total, 0, nil, outs, func(m int, w *evalEnv) []slotRow {
		start, end := rdf.MorselBounds(m, n, morselSize)
		out := make([]slotRow, 0, end-start)
		for _, l := range left[start:end] {
			if w.interrupted() {
				break
			}
			h := rowKeyHash(l, key) & mask
			matched := false
			for ri := head[h]; ri >= 0; ri = next[ri] {
				if r := right[ri]; compatibleRows(l, r) {
					out = append(out, w.mergeRows(l, r))
					matched = true
				}
			}
			if !matched {
				out = append(out, l)
			}
		}
		return out
	})
	if env.err != nil {
		return nil
	}
	return mergeMorsels(env, outs)
}

// scatterMorselSpan picks the morsel size for the build-left scatter
// probes, whose counting pass needs one int32 per (morsel, build row):
// the standard morselSize, grown as needed to cap the morsel count at
// 4 morsels per worker so the cursor matrix stays O(par · build side).
func scatterMorselSpan(n, par int) (size, count int) {
	size = morselSize
	if maxCount := 4 * par; rdf.MorselCount(n, size) > maxCount {
		size = (n + maxCount - 1) / maxCount
	}
	return size, rdf.MorselCount(n, size)
}

// hashJoinBuildLeftPar is hashJoinBuildLeft with the probe side (b)
// split into morsels. The serial variant's counting pass generalizes
// to a cursor matrix: morsel m counts its matches per build row,
// cursors[m][xi] then becomes the exact output offset of morsel m's
// first match for build row xi (a-major, morsels of b in order), and
// the emit pass scatters through those cursors — every (m, xi) writes
// a disjoint output range, and the order is byte-identical to serial.
func (env *evalEnv) hashJoinBuildLeftPar(a, b []slotRow, key []int) []slotRow {
	head, next, mask := buildJoinTable(a, key)
	env.chargeJoinTable(head, next)
	la, n := len(a), len(b)
	size, total := scatterMorselSpan(n, env.par.n)
	// The cursor matrix and its starts snapshot both cost one int32 per
	// (morsel, build row).
	env.charge(2*int64(total*la)*termIDBytes, stageJoin)
	if env.err != nil {
		return nil
	}
	cursors := make([]int32, total*la)
	// starts snapshots the write cursors before the emit pass, so a
	// re-run task (panic recovery, parallel.go runTask) restores its
	// cursor row instead of advancing it twice.
	var starts []int32
	probe := func(emit bool, out []slotRow) {
		env.runMorsels(total, 0, nil, func(m int) func(w *evalEnv) {
			start, end := rdf.MorselBounds(m, n, size)
			cur := cursors[m*la : (m+1)*la]
			return func(w *evalEnv) {
				// (Re)initialize the task's private cursor row: zeros
				// for the counting pass, the saved write offsets for
				// the emit pass — the emit's out[] writes are then
				// idempotent (same rows, same disjoint slots).
				if emit {
					copy(cur, starts[m*la:(m+1)*la])
				} else {
					for i := range cur {
						cur[i] = 0
					}
				}
				for _, y := range b[start:end] {
					if w.interrupted() {
						return
					}
					h := rowKeyHash(y, key) & mask
					for xi := head[h]; xi >= 0; xi = next[xi] {
						if x := a[xi]; compatibleRows(x, y) {
							if emit {
								out[cur[xi]] = w.mergeRows(x, y)
							}
							cur[xi]++
						}
					}
				}
			}
		})
	}
	probe(false, nil)
	if env.err != nil {
		return nil
	}
	// Turn counts into write cursors: a-major, then morsel order.
	pos := int32(0)
	for xi := 0; xi < la; xi++ {
		for m := 0; m < total; m++ {
			c := cursors[m*la+xi]
			cursors[m*la+xi] = pos
			pos += c
		}
	}
	if pos == 0 {
		return nil
	}
	env.chargeRowBatch(int(pos), stageJoin)
	if env.err != nil { // over budget: skip the output allocation
		return nil
	}
	starts = append([]int32(nil), cursors...)
	out := make([]slotRow, pos)
	probe(true, out)
	if env.err != nil {
		// Incomplete scatter: nil holes remain, return nothing (the
		// latched error aborts the evaluation).
		return nil
	}
	return out
}

// hashOptionalBuildLeftPar is hashOptionalBuildLeft with the probe
// (right) side split into morsels, using the same cursor matrix as
// hashJoinBuildLeftPar; unmatched left rows take their single output
// slot during the serial cursor walk, exactly where the serial scatter
// places them.
func (env *evalEnv) hashOptionalBuildLeftPar(left, right []slotRow, key []int) []slotRow {
	head, next, mask := buildJoinTable(left, key)
	env.chargeJoinTable(head, next)
	ll, n := len(left), len(right)
	size, total := scatterMorselSpan(n, env.par.n)
	// Cursor matrix + starts snapshot: one int32 each per (morsel, row).
	env.charge(2*int64(total*ll)*termIDBytes, stageJoin)
	if env.err != nil {
		return nil
	}
	cursors := make([]int32, total*ll)
	// starts: see hashJoinBuildLeftPar — restores a re-run emit task's
	// cursor row so retries stay idempotent.
	var starts []int32
	probe := func(emit bool, out []slotRow) {
		env.runMorsels(total, 0, nil, func(m int) func(w *evalEnv) {
			start, end := rdf.MorselBounds(m, n, size)
			cur := cursors[m*ll : (m+1)*ll]
			return func(w *evalEnv) {
				if emit {
					copy(cur, starts[m*ll:(m+1)*ll])
				} else {
					for i := range cur {
						cur[i] = 0
					}
				}
				for _, r := range right[start:end] {
					if w.interrupted() {
						return
					}
					h := rowKeyHash(r, key) & mask
					for li := head[h]; li >= 0; li = next[li] {
						if l := left[li]; compatibleRows(l, r) {
							if emit {
								out[cur[li]] = w.mergeRows(l, r)
							}
							cur[li]++
						}
					}
				}
			}
		})
	}
	probe(false, nil)
	if env.err != nil {
		return nil
	}
	// Size the output (unmatched lefts pass through with one slot
	// each), then turn counts into write cursors.
	outLen := 0
	for li := 0; li < ll; li++ {
		matches := 0
		for m := 0; m < total; m++ {
			matches += int(cursors[m*ll+li])
		}
		if matches == 0 {
			outLen++
		} else {
			outLen += matches
		}
	}
	env.chargeRowBatch(outLen, stageJoin)
	if env.err != nil { // over budget: skip the output allocation
		return nil
	}
	out := make([]slotRow, outLen)
	pos := int32(0)
	for li := 0; li < ll; li++ {
		colStart := pos
		for m := 0; m < total; m++ {
			c := cursors[m*ll+li]
			cursors[m*ll+li] = pos
			pos += c
		}
		if pos == colStart { // no matches: the left row passes through
			out[pos] = left[li]
			pos++
		}
	}
	starts = append([]int32(nil), cursors...)
	probe(true, out)
	if env.err != nil {
		// Incomplete scatter: nil holes remain (see above).
		return nil
	}
	return out
}
