package sparql

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
)

func allocTestGraph() *rdf.Graph {
	var ts []rdf.Triple
	for i := 0; i < 64; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://ex/s%d", i))
		ts = append(ts,
			rdf.Triple{S: s, P: rdf.NewIRI("http://ex/name"), O: rdf.NewLiteral(fmt.Sprintf("n%d", i))},
			rdf.Triple{S: s, P: rdf.NewIRI("http://ex/age"), O: rdf.NewTypedLiteral(fmt.Sprint(20+i%8), rdf.XSDInteger)},
		)
	}
	return rdf.NewGraph(ts)
}

// Single-pattern evaluation must stay effectively allocation-free:
// matched rows are bump-allocated from the environment's arena, so the
// amortized heap cost of extending one binding row is a fraction of an
// allocation (one chunk per 256 rows). A regression to per-candidate
// cloning shows up here as n >= 1.
func TestMatchPatternAllocs(t *testing.T) {
	g := allocTestGraph()
	q := MustParse(`SELECT ?s ?n WHERE { ?s <http://ex/name> ?n }`)
	env := newEvalEnv(q, g)
	bgp, ok := q.BGPOf()
	if !ok || len(bgp.Patterns) != 1 {
		t.Fatal("expected a single-pattern BGP")
	}
	cp := env.compilePattern(bgp.Patterns[0])
	row := env.emptyRow()
	scratch := env.emptyRow()
	out := make([]slotRow, 0, 128)

	matches := env.matchPattern(cp, row, scratch, out[:0])
	if len(matches) != 64 {
		t.Fatalf("matchPattern returned %d rows, want 64", len(matches))
	}
	n := testing.AllocsPerRun(100, func() {
		out = env.matchPattern(cp, row, scratch, out[:0])
	})
	if n >= 1 {
		t.Fatalf("single-pattern matchPattern allocates %.2f times per evaluation, want amortized < 1", n)
	}
}

// A bound-subject lookup through the public API must not copy the
// graph index: the candidate slice is a zero-copy view and candidate
// filtering happens in id space.
func TestEvaluateBoundSubjectAllocs(t *testing.T) {
	g := allocTestGraph()
	q := MustParse(`SELECT ?p ?o WHERE { <http://ex/s9> ?p ?o }`)
	// Warm the lazily built encoded view and stats.
	if _, err := Evaluate(q, g); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(100, func() {
		if _, err := Evaluate(q, g); err != nil {
			t.Fatal(err)
		}
	})
	// 2 result rows decode to 2 small maps plus fixed per-query setup;
	// anything near the old per-candidate map-churn regime (≈47) means
	// the zero-copy path rotted.
	if n > 30 {
		t.Fatalf("bound-subject Evaluate allocates %.1f times per query, want <= 30", n)
	}
}

// The hash-join engine must allocate O(1) on top of the output rows:
// the counting pass sizes the output slice and the arena before the
// emit pass runs, while the nested-loop baseline grows both
// incrementally. The ≥5× gap is the PR 2 acceptance bar; a regression
// to incremental growth (or a fallback that silently always fires)
// shows up here as the ratio collapsing.
func TestHashJoinAllocsVsNestedLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("quadratic nested-loop baseline")
	}
	g := joinTestGraph(benchJoinRows)
	env, names, ages := joinSides(t, g)
	hash := testing.AllocsPerRun(2, func() { _ = env.joinRows(names, ages) })
	nested := testing.AllocsPerRun(2, func() { _ = env.nestedJoinRows(names, ages) })
	if hash*5 > nested {
		t.Fatalf("hash join allocates %.1f/run vs nested %.1f/run, want >= 5x fewer", hash, nested)
	}
	hashOpt := testing.AllocsPerRun(2, func() { _ = env.optionalRows(names, ages) })
	nestedOpt := testing.AllocsPerRun(2, func() { _ = env.nestedOptionalRows(names, ages) })
	if hashOpt*5 > nestedOpt {
		t.Fatalf("hash optional allocates %.1f/run vs nested %.1f/run, want >= 5x fewer", hashOpt, nestedOpt)
	}
}

// Concurrent Evaluate calls on a shared graph must be safe: the
// lazily built encoded view and cached stats are filled under a lock.
func TestEvaluateConcurrent(t *testing.T) {
	g := allocTestGraph()
	q := MustParse(`SELECT ?s ?n WHERE { ?s <http://ex/name> ?n } ORDER BY ?n LIMIT 10`)
	done := make(chan *Results, 8)
	for i := 0; i < 8; i++ {
		go func() {
			r, err := Evaluate(q, g)
			if err != nil {
				t.Error(err)
			}
			done <- r
		}()
	}
	first := <-done
	for i := 1; i < 8; i++ {
		if r := <-done; !r.Equal(first) {
			t.Fatal("concurrent evaluations disagree")
		}
	}
}

// numericValue's alloc-free fast path must still admit the xsd:double
// special lexical forms that strconv understands.
func TestNumericValueSpecialForms(t *testing.T) {
	for _, c := range []struct {
		val  string
		want float64
		ok   bool
	}{
		{"42", 42, true},
		{"-3.5", -3.5, true},
		{".5", 0.5, true},
		{"INF", 0, true},
		{"-INF", 0, true},
		{"NaN", 0, true},
		{"abc", 0, false},
		{"", 0, false},
		{"12abc", 0, false},
	} {
		f, ok := numericValue(rdf.NewTypedLiteral(c.val, "http://www.w3.org/2001/XMLSchema#double"))
		if ok != c.ok {
			t.Fatalf("numericValue(%q) ok = %v, want %v", c.val, ok, c.ok)
		}
		if c.ok && c.val != "INF" && c.val != "-INF" && c.val != "NaN" && f != c.want {
			t.Fatalf("numericValue(%q) = %v, want %v", c.val, f, c.want)
		}
	}
	if f, ok := numericValue(rdf.NewTypedLiteral("INF", "http://www.w3.org/2001/XMLSchema#double")); !ok || f <= 0 {
		t.Fatalf("INF = %v,%v; want +Inf", f, ok)
	}
	if f, ok := numericValue(rdf.NewTypedLiteral("-INF", "http://www.w3.org/2001/XMLSchema#double")); !ok || f >= 0 {
		t.Fatalf("-INF = %v,%v; want -Inf", f, ok)
	}
}

// Project's zero-copy reuse must not fire when the projection list
// holds duplicate variables or a strict subset of the row's bindings.
func TestProjectDuplicateVars(t *testing.T) {
	x := rdf.NewIRI("http://ex/x")
	y := rdf.NewLiteral("y")
	r := &Results{
		Vars: []Var{"x", "y"},
		Rows: []Binding{{"x": x, "y": y}},
	}
	p := r.Project([]Var{"x", "x"})
	if _, leaked := p.Rows[0]["y"]; leaked {
		t.Fatal("duplicate-var projection leaked unprojected binding ?y")
	}
	if got := p.Rows[0]["x"]; got != x {
		t.Fatalf("projected ?x = %v, want %v", got, x)
	}
	q := r.Project([]Var{"x"})
	if _, leaked := q.Rows[0]["y"]; leaked {
		t.Fatal("subset projection leaked unprojected binding ?y")
	}
}
