package sparql

import (
	"sort"
	"sync"
	"time"
)

// Replica health for the sharded executor: circuit breakers (PR 6)
// plus the tail-latency signals layered on top of them — per-replica
// EWMA latency and error-rate scores that steer replica selection
// toward the fastest healthy copy, and per-op-class latency windows
// whose p95 sets the adaptive hedge delay. The analogue in the
// surveyed systems is Spark's straggler mitigation: speculative task
// execution re-runs slow tasks elsewhere, which only helps if the
// scheduler also learns which executors are slow.

// replicaBreaker is the circuit-breaker state of one shard replica.
type replicaBreaker struct {
	consec   int // consecutive failures
	open     bool
	openedAt time.Time
	trips    int64
}

// replicaScore is the straggler signal of one shard replica: an
// exponentially weighted moving average of its successful-attempt
// latency and a decayed error rate. ewmaNs == 0 means unsampled — the
// replica has never answered, so selection warms it before latency
// steering takes over.
type replicaScore struct {
	ewmaNs  float64
	errRate float64
}

// value folds latency and error rate into one steering score (lower is
// better): errors inflate the effective latency so a fast-but-flaky
// replica does not starve a slightly slower reliable one.
func (sc replicaScore) value() float64 {
	return sc.ewmaNs * (1 + scoreErrPenalty*sc.errRate)
}

const (
	// breakerTripThreshold is the default consecutive-failure count
	// that opens a replica's breaker.
	breakerTripThreshold = 3
	// defaultBreakerCooldown is how long an open breaker holds traffic
	// off a replica before admitting a half-open probe.
	defaultBreakerCooldown = 250 * time.Millisecond
	// scoreAlpha is the EWMA weight of the newest latency/error sample.
	scoreAlpha = 0.3
	// scoreErrPenalty scales how strongly the error rate inflates a
	// replica's steering score.
	scoreErrPenalty = 4.0
)

// Op classes for the hedge-delay latency windows: scatter scans and
// pushdown ops have very different cost profiles, so each class keeps
// its own p95.
const (
	opClassScan = iota
	opClassPushdown
	numOpClasses
)

const (
	// latWindowSize bounds each op class's sliding latency window.
	latWindowSize = 64
	// minHedgeSamples is how many completed ops an op class needs
	// before its observed p95 replaces the fallback hedge delay.
	minHedgeSamples = 8
	// fallbackHedgeDelay is the adaptive hedge delay until enough
	// samples exist (and the floor below which the p95 never matters —
	// hedging µs-scale ops would only add load).
	fallbackHedgeDelay = time.Millisecond
)

// latWindow is a fixed-size ring of recent op latencies.
type latWindow struct {
	samples [latWindowSize]int64
	next    int
	n       int
}

func (w *latWindow) add(ns int64) {
	w.samples[w.next] = ns
	w.next = (w.next + 1) % latWindowSize
	if w.n < latWindowSize {
		w.n++
	}
}

// p95 returns the nearest-rank 95th percentile over the window, or
// false while the window holds fewer than minHedgeSamples samples.
func (w *latWindow) p95() (int64, bool) {
	if w.n < minHedgeSamples {
		return 0, false
	}
	sorted := make([]int64, w.n)
	copy(sorted, w.samples[:w.n])
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (95*w.n + 99) / 100 // ceil(0.95 * n)
	if idx > w.n {
		idx = w.n
	}
	return sorted[idx-1], true
}

// ReplicaHealth tracks the mutable per-replica serving state of one
// ShardSet: circuit breakers (consecutive failures trip a replica
// open, an open replica admits one half-open probe after the cooldown,
// a success closes it again) and straggler scores (EWMA latency +
// decayed error rate) that order selection among the closed replicas.
// Breakers steer replica selection, they never deny it — when nothing
// healthier remains a pick still returns an open replica (a forced
// probe), so a query only ever fails after actually attempting every
// replica. All methods are safe for concurrent use; ReplicaHealth is
// the only mutable state attached to an otherwise immutable set.
type ReplicaHealth struct {
	mu       sync.Mutex
	b        [][]replicaBreaker
	score    [][]replicaScore
	rr       []int // per-shard round-robin cursor (warmup ordering)
	trips    int64
	trip     int // consecutive failures that open a breaker
	cooldown time.Duration
	now      func() time.Time // injectable clock (tests)
	lat      [numOpClasses]latWindow
}

// NewReplicaHealth returns breaker state for shards × replicas, all
// closed and unsampled.
func NewReplicaHealth(shards, replicas int) *ReplicaHealth {
	h := &ReplicaHealth{
		b:        make([][]replicaBreaker, shards),
		score:    make([][]replicaScore, shards),
		rr:       make([]int, shards),
		trip:     breakerTripThreshold,
		cooldown: defaultBreakerCooldown,
		now:      time.Now,
	}
	for s := range h.b {
		h.b[s] = make([]replicaBreaker, replicas)
		h.score[s] = make([]replicaScore, replicas)
	}
	return h
}

// SetCooldown overrides the half-open probe cooldown (tests and
// operational tuning).
func (h *ReplicaHealth) SetCooldown(d time.Duration) {
	if d <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cooldown = d
}

// SetTripThreshold overrides how many consecutive failures open a
// replica's breaker (minimum 1).
func (h *ReplicaHealth) SetTripThreshold(n int) {
	if n < 1 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.trip = n
}

// SetClock injects the time source used for breaker cooldowns, so
// breaker tests advance time without sleeping.
func (h *ReplicaHealth) SetClock(now func() time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.now = now
}

// pick selects the replica of shard s for the next attempt, skipping
// replicas already failed by this op (tried). Preference order:
// unsampled closed replicas in round-robin order (so every replica's
// score warms up), then sampled closed replicas by ascending straggler
// score, then open breakers whose cooldown elapsed (the half-open
// probe), then the longest-open breaker (the forced probe). Returns -1
// only when every replica was already tried.
func (h *ReplicaHealth) pick(s int, tried []bool) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	bs := h.b[s]
	sc := h.score[s]
	n := len(bs)
	start := h.rr[s]
	h.rr[s] = (start + 1) % n
	for i := 0; i < n; i++ {
		r := (start + i) % n
		if !tried[r] && !bs[r].open && sc[r].ewmaNs == 0 {
			return r
		}
	}
	best, bestScore := -1, 0.0
	for r := 0; r < n; r++ {
		if tried[r] || bs[r].open {
			continue
		}
		if v := sc[r].value(); best < 0 || v < bestScore {
			best, bestScore = r, v
		}
	}
	if best >= 0 {
		return best
	}
	now := h.now()
	forced, oldest := -1, time.Time{}
	for r := range bs {
		if tried[r] || !bs[r].open {
			continue
		}
		if now.Sub(bs[r].openedAt) >= h.cooldown {
			return r
		}
		if forced < 0 || bs[r].openedAt.Before(oldest) {
			forced, oldest = r, bs[r].openedAt
		}
	}
	return forced
}

// ok records a successful attempt and its latency: the replica's
// breaker closes, its failure streak resets, its latency EWMA absorbs
// the sample, and its error rate decays.
func (h *ReplicaHealth) ok(s, r int, d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := &h.b[s][r]
	b.consec, b.open = 0, false
	sc := &h.score[s][r]
	ns := float64(d)
	if ns < 1 {
		ns = 1 // keep 0 as the unsampled marker
	}
	if sc.ewmaNs == 0 {
		sc.ewmaNs = ns
	} else {
		sc.ewmaNs += scoreAlpha * (ns - sc.ewmaNs)
	}
	sc.errRate *= 1 - scoreAlpha
}

// fail records a failed attempt: the streak grows, tripping the breaker
// open at the threshold; a failed probe re-arms the cooldown; the error
// rate rises toward 1.
func (h *ReplicaHealth) fail(s, r int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := &h.b[s][r]
	b.consec++
	sc := &h.score[s][r]
	sc.errRate += scoreAlpha * (1 - sc.errRate)
	if b.open {
		b.openedAt = h.now()
		return
	}
	if b.consec >= h.trip {
		b.open = true
		b.openedAt = h.now()
		b.trips++
		h.trips++
	}
}

// noteOp records one completed shard op's end-to-end latency into its
// op class's window — the signal behind the adaptive hedge delay.
func (h *ReplicaHealth) noteOp(class int, d time.Duration) {
	if h == nil || class < 0 || class >= numOpClasses {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lat[class].add(int64(d))
}

// hedgeAfter returns the adaptive hedge delay for an op class: the
// observed p95 over the class's recent ops, floored at the fallback
// delay; the plain fallback while samples are scarce.
func (h *ReplicaHealth) hedgeAfter(class int) time.Duration {
	if h == nil || class < 0 || class >= numOpClasses {
		return fallbackHedgeDelay
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if p, ok := h.lat[class].p95(); ok && time.Duration(p) > fallbackHedgeDelay {
		return time.Duration(p)
	}
	return fallbackHedgeDelay
}

// Trips returns the cumulative breaker trips across all replicas.
func (h *ReplicaHealth) Trips() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.trips
}

// BreakerInfo is one replica breaker's observable state (/stats).
type BreakerInfo struct {
	Shard               int    `json:"shard"`
	Replica             int    `json:"replica"`
	State               string `json:"state"` // "closed", "open", "half-open"
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Trips               int64  `json:"trips"`
	// LatencyEwmaMs is the replica's successful-attempt latency EWMA in
	// milliseconds; 0 means unsampled.
	LatencyEwmaMs float64 `json:"latency_ewma_ms"`
	// ErrorRate is the replica's decayed failure rate in [0, 1].
	ErrorRate float64 `json:"error_rate"`
}

// Snapshot returns every breaker's state, ordered by shard then
// replica.
func (h *ReplicaHealth) Snapshot() []BreakerInfo {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	var out []BreakerInfo
	for s := range h.b {
		for r := range h.b[s] {
			b := h.b[s][r]
			state := "closed"
			if b.open {
				state = "open"
				if now.Sub(b.openedAt) >= h.cooldown {
					state = "half-open"
				}
			}
			out = append(out, BreakerInfo{
				Shard:               s,
				Replica:             r,
				State:               state,
				ConsecutiveFailures: b.consec,
				Trips:               b.trips,
				LatencyEwmaMs:       h.score[s][r].ewmaNs / 1e6,
				ErrorRate:           h.score[s][r].errRate,
			})
		}
	}
	return out
}

// HedgePolicy configures hedged shard operations: after Delay without
// an answer from the primary replica, the same op launches on the
// next-best replica and the first success wins (the loser is
// cancelled). Replica interchangeability makes the race invisible in
// the output.
type HedgePolicy struct {
	// Delay is how long an op waits before hedging. Zero or negative
	// means adaptive: the observed p95 of the op's class, with a 1ms
	// fallback until enough samples exist.
	Delay time.Duration
}

// WithHedge arms hedged shard operations for the run (effective only
// on sharded backends with more than one replica per shard).
func WithHedge(hp HedgePolicy) RunOption {
	return func(o *runOpts) {
		p := hp
		o.hedge = &p
	}
}

// defaultSpecFactor is the straggler multiple WithSpeculation(k<=0)
// falls back to: a task is re-dispatched once it runs 3× the run's
// median task time.
const defaultSpecFactor = 3.0

// WithSpeculation arms speculative morsel re-execution: a watchdog
// re-dispatches morsel tasks still running after k× the run's median
// completed-task time, and the first copy to finish commits its
// buffer. k <= 0 selects the default factor. Morsel tasks that build
// private output buffers are eligible (seed scans, build-right probe
// passes); the build-left cursor-matrix passes write shared state in
// place and always run exactly once.
func WithSpeculation(k float64) RunOption {
	return func(o *runOpts) {
		if k <= 0 {
			k = defaultSpecFactor
		}
		o.specFactor = k
	}
}
