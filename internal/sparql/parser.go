package sparql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/rdf"
)

// Parse parses a SPARQL query in the supported fragment:
//
//	[PREFIX pfx: <iri>]*
//	SELECT [DISTINCT] (?v... | * | AGG(?v) AS ?alias) WHERE { pattern }
//	  [GROUP BY ?v...] [ORDER BY [ASC|DESC](?v) | ?v ...]
//	  [LIMIT n] [OFFSET n]
//	ASK WHERE { pattern }
//
// pattern supports triple blocks, FILTER(expr), OPTIONAL { ... },
// { ... } UNION { ... }, and nested groups.
func Parse(text string) (*Query, error) {
	toks, err := lex(text)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: map[string]string{}}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.done() {
		return nil, fmt.Errorf("sparql: trailing input at %q", p.peek().text)
	}
	return q, nil
}

// MustParse is Parse for known-good queries in tests and examples.
func MustParse(text string) *Query {
	q, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return q
}

type token struct {
	kind string // ident var iri literal number punct
	text string
	lang string // literal language
	dt   string // literal datatype (already resolved IRI)
}

func lex(text string) ([]token, error) {
	var toks []token
	i := 0
	n := len(text)
	for i < n {
		c := rune(text[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '#':
			for i < n && text[i] != '\n' {
				i++
			}
		case c == '<':
			// '<' starts an IRI only when a '>' follows with no
			// whitespace in between; otherwise it is the less-than
			// operator (FILTER expressions).
			j := strings.IndexByte(text[i:], '>')
			if j > 0 && !strings.ContainsAny(text[i:i+j], " \t\n\r") {
				toks = append(toks, token{kind: "iri", text: text[i+1 : i+j]})
				i += j + 1
				break
			}
			if i+1 < n && text[i+1] == '=' {
				toks = append(toks, token{kind: "punct", text: "<="})
				i += 2
			} else {
				toks = append(toks, token{kind: "punct", text: "<"})
				i++
			}
		case c == '?' || c == '$':
			j := i + 1
			for j < n && (isNameChar(rune(text[j]))) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("sparql: empty variable name")
			}
			toks = append(toks, token{kind: "var", text: text[i+1 : j]})
			i = j
		case c == '"':
			val, rest, err := unquote(text[i:])
			if err != nil {
				return nil, err
			}
			i = n - len(rest)
			tok := token{kind: "literal", text: val}
			if i < n && text[i] == '@' {
				j := i + 1
				for j < n && (unicode.IsLetter(rune(text[j])) || text[j] == '-') {
					j++
				}
				tok.lang = text[i+1 : j]
				i = j
			} else if strings.HasPrefix(text[i:], "^^<") {
				j := strings.IndexByte(text[i+3:], '>')
				if j < 0 {
					return nil, fmt.Errorf("sparql: unterminated datatype")
				}
				tok.dt = text[i+3 : i+3+j]
				i += 3 + j + 1
			}
			toks = append(toks, tok)
		case unicode.IsDigit(c) || (c == '-' && i+1 < n && unicode.IsDigit(rune(text[i+1]))):
			j := i + 1
			for j < n && (unicode.IsDigit(rune(text[j])) || text[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: "number", text: text[i:j]})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < n && (isNameChar(rune(text[j])) || text[j] == ':') {
				j++
			}
			toks = append(toks, token{kind: "ident", text: text[i:j]})
			i = j
		case strings.ContainsRune("{}().,;*", c):
			toks = append(toks, token{kind: "punct", text: string(c)})
			i++
		case strings.ContainsRune("=<>!&|", c):
			j := i + 1
			for j < n && strings.ContainsRune("=<>&|", rune(text[j])) {
				j++
			}
			toks = append(toks, token{kind: "punct", text: text[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("sparql: unexpected character %q", c)
		}
	}
	return toks, nil
}

func isNameChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.'
}

func unquote(s string) (string, string, error) {
	var b strings.Builder
	i := 1
	for i < len(s) {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("sparql: dangling escape")
			}
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return "", "", fmt.Errorf("sparql: bad escape \\%c", s[i+1])
			}
			i += 2
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return "", "", fmt.Errorf("sparql: unterminated string")
}

type parser struct {
	toks     []token
	pos      int
	prefixes map[string]string
}

func (p *parser) done() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.done() {
		return token{kind: "eof"}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == "ident" && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sparql: expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	t := p.peek()
	if t.kind == "punct" && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("sparql: expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	for p.acceptKeyword("PREFIX") {
		name := p.next()
		if name.kind != "ident" || !strings.HasSuffix(name.text, ":") {
			return nil, fmt.Errorf("sparql: bad prefix name %q", name.text)
		}
		iri := p.next()
		if iri.kind != "iri" {
			return nil, fmt.Errorf("sparql: bad prefix IRI %q", iri.text)
		}
		p.prefixes[strings.TrimSuffix(name.text, ":")] = iri.text
	}

	q := &Query{Limit: -1}
	switch {
	case p.acceptKeyword("SELECT"):
		q.Form = FormSelect
		q.Distinct = p.acceptKeyword("DISTINCT")
		if p.acceptPunct("*") {
			// SELECT * — projection stays empty.
		} else {
			for {
				t := p.peek()
				if t.kind == "var" {
					p.next()
					q.Projection = append(q.Projection, Var(t.text))
					continue
				}
				if t.kind == "ident" && isAggName(t.text) {
					agg, err := p.parseAggregate()
					if err != nil {
						return nil, err
					}
					if q.Agg != nil {
						return nil, fmt.Errorf("sparql: only one aggregate supported")
					}
					q.Agg = agg
					continue
				}
				if t.kind == "punct" && t.text == "(" {
					// (AGG(?x) AS ?alias)
					p.next()
					agg, err := p.parseAggregate()
					if err != nil {
						return nil, err
					}
					if err := p.expectPunct(")"); err != nil {
						return nil, err
					}
					if q.Agg != nil {
						return nil, fmt.Errorf("sparql: only one aggregate supported")
					}
					q.Agg = agg
					continue
				}
				break
			}
			if len(q.Projection) == 0 && q.Agg == nil {
				return nil, fmt.Errorf("sparql: empty SELECT list")
			}
		}
	case p.acceptKeyword("CONSTRUCT"):
		q.Form = FormConstruct
		tmpl, err := p.parseTemplate()
		if err != nil {
			return nil, err
		}
		q.Template = tmpl
	case p.acceptKeyword("DESCRIBE"):
		q.Form = FormDescribe
		for {
			t := p.peek()
			if t.kind == "var" {
				p.next()
				q.Describe = append(q.Describe, VarElem(Var(t.text)))
				continue
			}
			if t.kind == "iri" {
				p.next()
				q.Describe = append(q.Describe, TermElem(rdf.NewIRI(t.text)))
				continue
			}
			break
		}
		if len(q.Describe) == 0 {
			return nil, fmt.Errorf("sparql: DESCRIBE needs at least one resource or variable")
		}
	case p.acceptKeyword("ASK"):
		q.Form = FormAsk
	default:
		return nil, fmt.Errorf("sparql: expected SELECT or ASK, got %q", p.peek().text)
	}

	switch q.Form {
	case FormAsk:
		p.acceptKeyword("WHERE") // optional for ASK
	case FormDescribe:
		// WHERE is optional for DESCRIBE <iri>.
		if !p.acceptKeyword("WHERE") {
			if t := p.peek(); !(t.kind == "punct" && t.text == "{") {
				q.Where = BGP{}
				return q, nil
			}
		}
	default:
		if err := p.expectKeyword("WHERE"); err != nil {
			return nil, err
		}
	}
	where, err := p.parseGroupGraphPattern()
	if err != nil {
		return nil, err
	}
	q.Where = where

	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		if q.Agg == nil {
			return nil, fmt.Errorf("sparql: GROUP BY without aggregate")
		}
		for p.peek().kind == "var" {
			q.Agg.Group = append(q.Agg.Group, Var(p.next().text))
		}
		if len(q.Agg.Group) == 0 {
			return nil, fmt.Errorf("sparql: empty GROUP BY")
		}
	}

	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.peek()
			if t.kind == "var" {
				p.next()
				q.OrderBy = append(q.OrderBy, OrderKey{Var: Var(t.text), Asc: true})
				continue
			}
			if t.kind == "ident" && (strings.EqualFold(t.text, "ASC") || strings.EqualFold(t.text, "DESC")) {
				asc := strings.EqualFold(t.text, "ASC")
				p.next()
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				v := p.next()
				if v.kind != "var" {
					return nil, fmt.Errorf("sparql: expected variable in ORDER BY, got %q", v.text)
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				q.OrderBy = append(q.OrderBy, OrderKey{Var: Var(v.text), Asc: asc})
				continue
			}
			break
		}
		if len(q.OrderBy) == 0 {
			return nil, fmt.Errorf("sparql: empty ORDER BY")
		}
	}

	if p.acceptKeyword("LIMIT") {
		n, err := p.parseCount("LIMIT")
		if err != nil {
			return nil, err
		}
		q.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.parseCount("OFFSET")
		if err != nil {
			return nil, err
		}
		q.Offset = n
	}
	return q, nil
}

// parseCount parses the non-negative integer argument of LIMIT/OFFSET.
// The lexer's number token also admits decimals and negative numbers
// (needed for FILTER literals), so the value is validated here instead
// of being silently truncated.
func (p *parser) parseCount(clause string) (int, error) {
	t := p.next()
	if t.kind != "number" {
		return 0, fmt.Errorf("sparql: expected number after %s, got %q", clause, t.text)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("sparql: bad %s value %q: %v", clause, t.text, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("sparql: negative %s value %q", clause, t.text)
	}
	return n, nil
}

func isAggName(s string) bool {
	switch strings.ToUpper(s) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// parseAggregate parses AGG(?v | *) [AS ?alias].
func (p *parser) parseAggregate() (*Aggregate, error) {
	fn := strings.ToUpper(p.next().text)
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	agg := &Aggregate{Fn: fn, As: Var(strings.ToLower(fn))}
	if p.acceptPunct("*") {
		if fn != "COUNT" {
			return nil, fmt.Errorf("sparql: %s(*) is not defined", fn)
		}
	} else {
		v := p.next()
		if v.kind != "var" {
			return nil, fmt.Errorf("sparql: expected variable in %s(), got %q", fn, v.text)
		}
		agg.Var = Var(v.text)
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("AS") {
		v := p.next()
		if v.kind != "var" {
			return nil, fmt.Errorf("sparql: expected alias variable, got %q", v.text)
		}
		agg.As = Var(v.text)
	}
	return agg, nil
}

// parseTemplate parses the CONSTRUCT template: a brace-enclosed list
// of triple patterns (no FILTER/OPTIONAL/UNION allowed).
func (p *parser) parseTemplate() ([]TriplePattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []TriplePattern
	for {
		t := p.peek()
		if t.kind == "punct" && t.text == "}" {
			p.next()
			if len(out) == 0 {
				return nil, fmt.Errorf("sparql: empty CONSTRUCT template")
			}
			return out, nil
		}
		if t.kind == "punct" && t.text == "." {
			p.next()
			continue
		}
		if t.kind == "eof" {
			return nil, fmt.Errorf("sparql: unterminated CONSTRUCT template")
		}
		tps, err := p.parseTriplePattern()
		if err != nil {
			return nil, err
		}
		out = append(out, tps...)
	}
}

// parseGroupGraphPattern parses { ... }.
func (p *parser) parseGroupGraphPattern() (GraphPattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var parts []GraphPattern
	var bgp []TriplePattern
	flush := func() {
		if len(bgp) > 0 {
			parts = append(parts, BGP{Patterns: bgp})
			bgp = nil
		}
	}
	for {
		t := p.peek()
		switch {
		case t.kind == "punct" && t.text == "}":
			p.next()
			flush()
			switch len(parts) {
			case 0:
				return BGP{}, nil
			case 1:
				return parts[0], nil
			default:
				return Group{Parts: parts}, nil
			}
		case t.kind == "ident" && strings.EqualFold(t.text, "FILTER"):
			p.next()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			cond, err := p.parseFilterExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			flush()
			// FILTER scopes over the group evaluated so far.
			var inner GraphPattern
			switch len(parts) {
			case 0:
				inner = BGP{}
			case 1:
				inner = parts[0]
			default:
				inner = Group{Parts: parts}
			}
			parts = []GraphPattern{Filter{Inner: inner, Cond: cond}}
		case t.kind == "ident" && strings.EqualFold(t.text, "OPTIONAL"):
			p.next()
			right, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			flush()
			var left GraphPattern
			switch len(parts) {
			case 0:
				left = BGP{}
			case 1:
				left = parts[0]
			default:
				left = Group{Parts: parts}
			}
			parts = []GraphPattern{Optional{Left: left, Right: right}}
		case t.kind == "punct" && t.text == "{":
			sub, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			if p.acceptKeyword("UNION") {
				right, err := p.parseGroupGraphPattern()
				if err != nil {
					return nil, err
				}
				sub = Union{Left: sub, Right: right}
				for p.acceptKeyword("UNION") {
					more, err := p.parseGroupGraphPattern()
					if err != nil {
						return nil, err
					}
					sub = Union{Left: sub, Right: more}
				}
			}
			flush()
			parts = append(parts, sub)
		case t.kind == "punct" && t.text == ".":
			p.next()
		case t.kind == "eof":
			return nil, fmt.Errorf("sparql: unterminated group pattern")
		default:
			tp, err := p.parseTriplePattern()
			if err != nil {
				return nil, err
			}
			bgp = append(bgp, tp...)
		}
	}
}

// parseTriplePattern parses s p o (with ; and , continuations).
func (p *parser) parseTriplePattern() ([]TriplePattern, error) {
	s, err := p.parseElem(false)
	if err != nil {
		return nil, err
	}
	var out []TriplePattern
	for {
		pr, err := p.parseElem(true)
		if err != nil {
			return nil, err
		}
		for {
			o, err := p.parseElem(false)
			if err != nil {
				return nil, err
			}
			out = append(out, TriplePattern{S: s, P: pr, O: o})
			if !p.acceptPunct(",") {
				break
			}
		}
		if !p.acceptPunct(";") {
			break
		}
	}
	return out, nil
}

// parseElem parses a variable or constant; predicate position allows
// the keyword "a" as rdf:type.
func (p *parser) parseElem(predicate bool) (TPElem, error) {
	t := p.next()
	switch t.kind {
	case "var":
		return VarElem(Var(t.text)), nil
	case "iri":
		return TermElem(rdf.NewIRI(t.text)), nil
	case "literal":
		if t.lang != "" {
			return TermElem(rdf.NewLangLiteral(t.text, t.lang)), nil
		}
		if t.dt != "" {
			return TermElem(rdf.NewTypedLiteral(t.text, t.dt)), nil
		}
		return TermElem(rdf.NewLiteral(t.text)), nil
	case "number":
		return TermElem(rdf.NewTypedLiteral(t.text, rdf.XSDInteger)), nil
	case "ident":
		if predicate && t.text == "a" {
			return TermElem(rdf.NewIRI(rdf.RDFType)), nil
		}
		if pfx, local, ok := strings.Cut(t.text, ":"); ok {
			base, known := p.prefixes[pfx]
			if !known {
				return TPElem{}, fmt.Errorf("sparql: unknown prefix %q", pfx)
			}
			return TermElem(rdf.NewIRI(base + local)), nil
		}
		return TPElem{}, fmt.Errorf("sparql: unexpected identifier %q in pattern", t.text)
	default:
		return TPElem{}, fmt.Errorf("sparql: unexpected token %q in pattern", t.text)
	}
}

// parseFilterExpr parses ||-level filter expressions.
func (p *parser) parseFilterExpr() (FilterExpr, error) {
	left, err := p.parseFilterAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("||") {
		right, err := p.parseFilterAnd()
		if err != nil {
			return nil, err
		}
		left = LogicalOr{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseFilterAnd() (FilterExpr, error) {
	left, err := p.parseFilterUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("&&") {
		right, err := p.parseFilterUnary()
		if err != nil {
			return nil, err
		}
		left = LogicalAnd{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseFilterUnary() (FilterExpr, error) {
	if p.acceptPunct("!") {
		e, err := p.parseFilterUnary()
		if err != nil {
			return nil, err
		}
		return LogicalNot{E: e}, nil
	}
	if p.acceptPunct("(") {
		e, err := p.parseFilterExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	if t := p.peek(); t.kind == "ident" && strings.EqualFold(t.text, "BOUND") {
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		v := p.next()
		if v.kind != "var" {
			return nil, fmt.Errorf("sparql: expected variable in BOUND(), got %q", v.text)
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return Bound{Var: Var(v.text)}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (FilterExpr, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	op := p.next()
	if op.kind != "punct" {
		return nil, fmt.Errorf("sparql: expected comparison operator, got %q", op.text)
	}
	switch op.text {
	case "=", "==", "!=", "<", "<=", ">", ">=":
	default:
		return nil, fmt.Errorf("sparql: bad operator %q", op.text)
	}
	opText := op.text
	if opText == "==" {
		opText = "="
	}
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return Comparison{Op: opText, L: l, R: r}, nil
}

func (p *parser) parseOperand() (Operand, error) {
	e, err := p.parseElem(false)
	if err != nil {
		return Operand{}, err
	}
	if e.IsVar {
		return Operand{IsVar: true, Var: e.Var}, nil
	}
	return Operand{Term: e.Term}, nil
}
