package sparql

import (
	"context"
	"sync"

	"repro/internal/fault"
	"repro/internal/rdf"
)

// Prepared is a query compiled for repeated execution: the parsed
// algebra plus the Var→slot table, built once by Prepare and reused by
// every Run. A Prepared value is goroutine-safe — any number of Run /
// RunSolutions calls may execute concurrently against the same or
// different graphs — because each run builds its own evaluation
// environment (row arena, cancellation state) and only shares the
// immutable query, the slot table, and the mutex-guarded plan cache.
//
// The plan cache memoizes, per BGP of the query, the compiled triple
// patterns (constants resolved to dictionary ids) in selectivity order
// for one graph snapshot, identified by the graph's EncodedView pointer
// and its triple count. Re-running against the same snapshot skips
// parsing, slot-table construction, constant encoding, selectivity
// estimation, and join ordering; a run against a different graph — or
// the same graph after an Add — recompiles and replaces the cache.
// Cached plans are never mutated after publication, so concurrent runs
// share them without copying.
type Prepared struct {
	q           *Query
	vars        []Var
	slots       map[Var]int
	limitHint   int
	fingerprint string // normalized shape hash (fingerprint.go)

	mu       sync.Mutex
	planView *rdf.EncodedView
	planLen  int
	plans    [][]cPattern // indexed by BGP evaluation order

	// Sharded plan memo (dist.go): the same per-BGP compiled plans,
	// keyed by ShardSet pointer — sound because shard sets are
	// immutable once built.
	distSet   *ShardSet
	distPlans [][]cPattern

	// Cost-estimate memo (budget.go): the admission controller's work
	// estimate, keyed like the plan caches (graph snapshot / shard-set
	// pointer) so the per-request hot path is one mutex-guarded lookup.
	costView   *rdf.EncodedView
	costLen    int
	costVal    int64
	costSet    *ShardSet
	costSetVal int64
}

// Prepare parses text and compiles it for repeated execution.
func Prepare(text string) (*Prepared, error) {
	q, err := Parse(text)
	if err != nil {
		return nil, err
	}
	return PrepareQuery(q), nil
}

// PrepareQuery compiles an already-parsed query for repeated execution.
// The query must not be mutated afterwards.
func PrepareQuery(q *Query) *Prepared {
	vars := q.Where.PatternVars()
	slots := make(map[Var]int, len(vars))
	for i, v := range vars {
		slots[v] = i
	}
	return &Prepared{
		q:           q,
		vars:        vars,
		slots:       slots,
		limitHint:   limitHintFor(q),
		fingerprint: FingerprintQuery(q),
	}
}

// Query returns the parsed query. Callers must treat it as read-only.
func (p *Prepared) Query() *Query { return p.q }

// newEnv builds a fresh evaluation environment for one run, reusing
// the prepared slot table and wiring in the cancellation context. A
// context that can never be cancelled (Done() == nil, e.g.
// context.Background()) costs the hot loops nothing.
func (p *Prepared) newEnv(ctx context.Context, g *rdf.Graph) *evalEnv {
	view := g.Encoded()
	env := &evalEnv{
		g:         g,
		view:      view,
		terms:     view.Dict().Terms(),
		slots:     p.slots,
		vars:      p.vars,
		stats:     g.Stats(),
		limitHint: p.limitHint,
		prep:      p,
	}
	env.ftally = &env.tally
	// The fault plan is read off the raw context: chaos plans also ride
	// uncancellable contexts, which env.ctx deliberately drops.
	env.fplan = fault.From(ctx)
	if ctx != nil && ctx.Done() != nil {
		env.ctx = ctx
	}
	return env
}

// Run evaluates the prepared query over g, honoring ctx: when the
// context is cancelled or its deadline passes, the evaluation aborts
// promptly (the join and scan loops poll the context with an amortized
// check every cancelCheckEvery rows) and Run returns ctx.Err().
//
// By default a run uses up to GOMAXPROCS workers for its large seed
// scans and hash-join probes (morsel-driven parallelism, parallel.go);
// the result is byte-identical at every width. Tune with
// WithParallelism, observe with WithRunStats.
func (p *Prepared) Run(ctx context.Context, g *rdf.Graph, opts ...RunOption) (*Results, error) {
	ro := resolveRunOpts(opts)
	return p.runWith(ctx, g, &ro)
}

func (p *Prepared) runWith(ctx context.Context, g *rdf.Graph, ro *runOpts) (*Results, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	env := p.newEnv(ctx, g)
	env.configureParallel(ro)
	res, err := evaluate(env, p.q)
	ro.capture(env)
	return res, err
}

// cachedPlan returns the cached plan of the seq-th BGP for the given
// graph snapshot, or nil when no matching plan is cached.
func (p *Prepared) cachedPlan(view *rdf.EncodedView, seq int) []cPattern {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.planView != view || p.planLen != view.Len() || seq >= len(p.plans) {
		return nil
	}
	return p.plans[seq]
}

// storePlan publishes the compiled plan of the seq-th BGP for the
// given graph snapshot, discarding plans of any other snapshot.
func (p *Prepared) storePlan(view *rdf.EncodedView, seq int, cps []cPattern) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.planView != view || p.planLen != view.Len() {
		p.planView, p.planLen = view, view.Len()
		p.plans = p.plans[:0]
	}
	for len(p.plans) <= seq {
		p.plans = append(p.plans, nil)
	}
	p.plans[seq] = cps
}

// cachedDistPlan returns the cached sharded plan of the seq-th BGP for
// the given shard set, or nil when no matching plan is cached.
func (p *Prepared) cachedDistPlan(ss *ShardSet, seq int) []cPattern {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.distSet != ss || seq >= len(p.distPlans) {
		return nil
	}
	return p.distPlans[seq]
}

// storeDistPlan publishes the compiled sharded plan of the seq-th BGP
// for the given shard set, discarding plans of any other set.
func (p *Prepared) storeDistPlan(ss *ShardSet, seq int, cps []cPattern) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.distSet != ss {
		p.distSet = ss
		p.distPlans = p.distPlans[:0]
	}
	for len(p.distPlans) <= seq {
		p.distPlans = append(p.distPlans, nil)
	}
	p.distPlans[seq] = cps
}

// Solutions is a result sequence positioned for streaming: for plain
// SELECT (and ASK) queries the rows stay in id space with all solution
// modifiers already applied, and each term is decoded on access — a
// serializer can write row after row straight into a response without
// ever materializing a []Binding. Aggregates, CONSTRUCT, and DESCRIBE
// need term values for every solution, so those forms carry decoded
// rows (or the result graph) behind the same accessors.
//
// A Solutions value is read-only and safe for concurrent readers; it
// pins the evaluation environment (and through it the graph's term
// dictionary snapshot) until released to the GC.
type Solutions struct {
	vars []Var

	// id-space backing (plain SELECT).
	env  *evalEnv
	rows []slotRow
	cols []int // vars[i] → slot, -1 when the variable never binds

	// decoded backing (aggregates and other forms).
	decoded []Binding

	isAsk   bool
	ask     bool
	isGraph bool
	triples []rdf.Triple
}

// RunSolutions evaluates the prepared query over g like Run, but
// returns the solutions positioned for streaming instead of a
// materialized Results. Cancellation and the RunOptions behave exactly
// as in Run; the worker pool of a parallel run is released before the
// Solutions value is returned.
func (p *Prepared) RunSolutions(ctx context.Context, g *rdf.Graph, opts ...RunOption) (*Solutions, error) {
	ro := resolveRunOpts(opts)
	if p.streamable() {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		env := p.newEnv(ctx, g)
		env.configureParallel(&ro)
		return p.solutionsFromEnv(env, &ro)
	}
	res, err := p.runWith(ctx, g, &ro)
	if err != nil {
		return nil, err
	}
	return ResultsSolutions(res), nil
}

// streamable reports whether the query's solutions can stay in id
// space for streaming: plain SELECT and ASK. Aggregates, CONSTRUCT,
// and DESCRIBE need term values for every solution.
func (p *Prepared) streamable() bool {
	q := p.q
	return (q.Form == FormSelect || q.Form == FormAsk) && q.Agg == nil
}

// solutionsFromEnv runs the streamable tail shared by RunSolutions and
// RunShardedSolutions over an armed environment: evaluate the WHERE
// pattern, apply the id-space modifier pipeline, and position the
// surviving rows for on-access term decoding.
func (p *Prepared) solutionsFromEnv(env *evalEnv, ro *runOpts) (*Solutions, error) {
	q := p.q
	defer env.close()
	defer ro.capture(env)
	rows, err := env.evalPattern(q.Where)
	if err != nil {
		return nil, err
	}
	if env.err != nil {
		return nil, env.err
	}
	if q.Form == FormAsk {
		return &Solutions{isAsk: true, ask: len(rows) > 0}, nil
	}
	vars := q.SelectedVars()
	rows = env.modifierPipeline(q, vars, rows)
	if env.err != nil { // cancelled inside the pipeline (top-K scan)
		return nil, env.err
	}
	cols := make([]int, len(vars))
	for i, v := range vars {
		if s, ok := env.slots[v]; ok {
			cols[i] = s
		} else {
			cols[i] = -1
		}
	}
	return &Solutions{vars: vars, env: env, rows: rows, cols: cols}, nil
}

// ResultsSolutions wraps an already-materialized Results behind the
// Solutions accessors, so serializers written against the streaming
// API also accept results from engines that only produce Bindings.
func ResultsSolutions(res *Results) *Solutions {
	return &Solutions{
		vars:    res.Vars,
		decoded: res.Rows,
		isAsk:   res.IsAsk,
		ask:     res.Ask,
		isGraph: res.IsGraph,
		triples: res.Triples,
	}
}

// Vars returns the result variables in projection order (read-only).
func (s *Solutions) Vars() []Var { return s.vars }

// Len returns the number of solution rows.
func (s *Solutions) Len() int {
	if s.env != nil {
		return len(s.rows)
	}
	return len(s.decoded)
}

// IsAsk reports whether this is an ASK answer (see Ask).
func (s *Solutions) IsAsk() bool { return s.isAsk }

// Ask returns the boolean answer of an ASK query.
func (s *Solutions) Ask() bool { return s.ask }

// IsGraph reports whether this is a CONSTRUCT/DESCRIBE graph result
// (see Graph).
func (s *Solutions) IsGraph() bool { return s.isGraph }

// Graph returns the triples of a graph result (read-only).
func (s *Solutions) Graph() []rdf.Triple { return s.triples }

// Term returns the term bound to column col of row, decoding it from
// the id-space row on the fly; ok is false for unbound positions. It
// allocates nothing and may be called from concurrent readers.
func (s *Solutions) Term(row, col int) (rdf.Term, bool) {
	if s.env != nil {
		slot := s.cols[col]
		if slot < 0 {
			return rdf.Term{}, false
		}
		id := s.rows[row][slot]
		if id == unboundID {
			return rdf.Term{}, false
		}
		return s.env.terms[id], true
	}
	t, ok := s.decoded[row][s.vars[col]]
	return t, ok
}

// Results materializes the solutions as a Results value (decoding every
// row). It is the bridge back to the non-streaming API.
func (s *Solutions) Results() *Results {
	if s.isAsk {
		return &Results{IsAsk: true, Ask: s.ask}
	}
	if s.isGraph {
		return &Results{IsGraph: true, Triples: s.triples}
	}
	if s.env == nil {
		return &Results{Vars: s.vars, Rows: s.decoded}
	}
	return &Results{Vars: append([]Var{}, s.vars...), Rows: s.env.decodeRows(s.rows)}
}
