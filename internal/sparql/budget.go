package sparql

import (
	"fmt"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/rdf"
)

// Per-query memory accounting. The surveyed Spark systems inherit
// executor memory management from the platform: a task that outgrows
// its executor's budget is spilled or killed, and one pathological job
// cannot take a whole worker down. The native engine reproduces that
// governance in-process: a run armed with WithMemoryBudget charges a
// shared byte counter at every allocation site the evaluator owns —
// arena chunk growth (newRow/reserveRows), hash-join tables and their
// output batches, the parallel probes' cursor matrices, and the
// sharded gather's merge buffer — and aborts with a typed BudgetError
// the moment the charges exceed the budget.
//
// The contract mirrors cancellation exactly: a budget abort rides the
// same latched-error machinery (evalEnv.err, parRun.latchFailure), so
// a budgeted run either completes with output byte-identical to an
// unbudgeted serial run or fails with the typed error — never partial
// rows. Charges happen where allocations are already amortized (a row
// arena charges once per 256-row chunk, not per row), and an unarmed
// run pays one nil check per charge site, so the serial allocation
// pins are untouched when no budget is set.
//
// Accounting is deliberately a lower bound on the process's true
// allocation: small fixed-size structures (pattern scans, per-shard
// tag lists, modifier scratch) are not charged, and a task re-run
// after an injected fault charges its arena chunks again. The budget
// bounds the dominant, input-proportional allocations — result rows
// and join state — which is what an overload guard needs.

// termIDBytes is the byte size of one rdf.TermID (the unit every row
// slot and join-table entry costs).
const termIDBytes = 4

// rowHeaderBytes is the byte size of one slotRow slice header in a row
// batch ([]slotRow) — charged when an output batch is pre-sized.
const rowHeaderBytes = 24

// Charge-site stage labels, reported in BudgetError.Stage.
const (
	stageArena  = "arena"  // row-arena chunk growth
	stageJoin   = "join"   // hash-join tables, cursors, output batches
	stageGather = "gather" // sharded scatter-gather merge buffers
)

// BudgetError reports a query aborted by its memory budget: the run
// had charged Used bytes against a Limit-byte budget when the charge
// at Stage pushed it over. It is the memory analogue of the
// cancellation error: when Run returns it, no partial rows escaped.
type BudgetError struct {
	// Used is the total bytes the run had charged, including the
	// charge that exceeded the budget.
	Used int64
	// Limit is the configured budget (WithMemoryBudget).
	Limit int64
	// Stage names the charge site that went over: "arena", "join", or
	// "gather".
	Stage string
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sparql: query memory budget exceeded at %s: %d bytes charged, limit %d",
		e.Stage, e.Used, e.Limit)
}

// memBudget is the byte tracker one budgeted run shares across its
// morsel workers and shard scans: a single atomic counter, so charges
// from concurrent workers all draw down the same budget.
type memBudget struct {
	// limit is the configured bound; 0 means track-only (no abort).
	limit int64
	used  atomic.Int64
}

// WithMemoryBudget bounds the bytes one run may charge for its row
// arenas, join state, and gather buffers. bytes > 0 makes the run
// abort with a *BudgetError once its charges exceed the budget;
// bytes < 0 arms tracking only (RunStats.BytesCharged fills, nothing
// aborts); 0 — the default — disables accounting entirely, leaving
// the hot paths with one nil check per charge site.
func WithMemoryBudget(bytes int64) RunOption {
	return func(o *runOpts) { o.memBudget = bytes }
}

// charge records n bytes of evaluator-owned allocation against the
// run's budget. Unbudgeted runs return after one nil check. Going
// over the limit (or hitting an armed fault.PointMem) latches a
// *BudgetError into the environment — and, under a parallel run, into
// the shared failure latch, stopping every worker at its next
// amortized poll — exactly like cancellation, which is what keeps a
// budget abort free of partial rows.
func (env *evalEnv) charge(n int64, stage string) {
	mb := env.mem
	if mb == nil || n <= 0 {
		return
	}
	used := mb.used.Add(n)
	if env.err != nil {
		return
	}
	over := mb.limit > 0 && used > mb.limit
	if !over && env.fplan != nil {
		if e := env.fplan.Hit(fault.PointMem); e != nil {
			over = true
		}
	}
	if !over {
		return
	}
	berr := &BudgetError{Used: used, Limit: mb.limit, Stage: stage}
	env.err = berr
	if env.par != nil {
		env.par.latchFailure(berr)
	}
}

// chargeJoinTable charges the chained-array hash table a join just
// built (head + next, int32 each).
func (env *evalEnv) chargeJoinTable(head, next []int32) {
	env.charge(int64(len(head)+len(next))*termIDBytes, stageJoin)
}

// chargeRowBatch charges an output batch of n slotRow headers about to
// be allocated at the given stage.
func (env *evalEnv) chargeRowBatch(n int, stage string) {
	env.charge(int64(n)*rowHeaderBytes, stage)
}

// Cost estimation. The admission controller (internal/server) weighs
// queries by estimated work before they hold a worker slot, using the
// same Graph.Stats selectivity estimates the planner orders joins
// with. The estimate is unitless and deliberately coarse: it ranks
// queries (a cartesian product scores orders of magnitude above a
// selective star), it does not predict latency.

// costCap saturates cost arithmetic well below overflow.
const costCap = int64(1) << 62

func satAdd(a, b int64) int64 {
	if a > costCap-b {
		return costCap
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	if a > costCap/b {
		return costCap
	}
	return a * b
}

// EstimateCost returns the planner's work estimate for running p over
// g: per BGP, triple patterns group into connected components by
// shared variables, each component contributes the sum of its
// patterns' estimated candidate counts, and the component sums
// multiply — so a BGP whose patterns share no variables (the
// nested-loop cartesian fallback) scores as the product it would
// produce, while a connected query scores as the sum of its scans.
// Groups fold the same way: parts sharing no variables multiply.
// The estimate is cached per graph snapshot alongside the plan memo.
func (p *Prepared) EstimateCost(g *rdf.Graph) int64 {
	view := g.Encoded()
	p.mu.Lock()
	if p.costView == view && p.costLen == view.Len() {
		c := p.costVal
		p.mu.Unlock()
		return c
	}
	p.mu.Unlock()
	env := &evalEnv{view: view, slots: p.slots, vars: p.vars, stats: g.Stats()}
	c := costOfPattern(p.q.Where, len(p.vars), env.compilePattern)
	p.mu.Lock()
	p.costView, p.costLen, p.costVal = view, view.Len(), c
	p.mu.Unlock()
	return c
}

// EstimateCostSharded is EstimateCost against a shard set: constants
// resolve through the shared dictionary and cardinalities sum across
// shards, so the estimate equals the single-graph estimate over the
// equivalent unsharded dataset.
func (p *Prepared) EstimateCostSharded(ss *ShardSet) int64 {
	p.mu.Lock()
	if p.costSet == ss {
		c := p.costSetVal
		p.mu.Unlock()
		return c
	}
	p.mu.Unlock()
	d := &distEnv{env: &evalEnv{slots: p.slots, vars: p.vars, stats: ss.Stats}, ss: ss}
	c := costOfPattern(p.q.Where, len(p.vars), d.compilePattern)
	p.mu.Lock()
	p.costSet, p.costSetVal = ss, c
	p.mu.Unlock()
	return c
}

// costOfPattern walks one graph pattern, estimating each triple
// pattern with compile (the planner's own selectivity estimator).
func costOfPattern(gp GraphPattern, nslots int, compile func(TriplePattern) cPattern) int64 {
	switch n := gp.(type) {
	case BGP:
		return bgpCost(n, nslots, compile)
	case Group:
		// The Group fold joins parts left to right; a part sharing no
		// variables with what came before falls back to the nested
		// loop, so its cost multiplies instead of adding.
		cost := int64(0)
		seen := make([]bool, nslots)
		for i, part := range n.Parts {
			c := costOfPattern(part, nslots, compile)
			vars := make([]bool, nslots)
			patternSlotSet(part, compile, vars)
			if i == 0 {
				cost = c
			} else if slotsOverlap(seen, vars) {
				cost = satAdd(cost, c)
			} else {
				cost = satMul(max64(cost, 1), max64(c, 1))
			}
			for s, v := range vars {
				if v {
					seen[s] = true
				}
			}
		}
		return cost
	case Filter:
		return costOfPattern(n.Inner, nslots, compile)
	case Optional:
		return satAdd(costOfPattern(n.Left, nslots, compile), costOfPattern(n.Right, nslots, compile))
	case Union:
		return satAdd(costOfPattern(n.Left, nslots, compile), costOfPattern(n.Right, nslots, compile))
	default:
		return 0
	}
}

// bgpCost scores one BGP: patterns partition into connected components
// over shared variable slots (union-find); each component costs the
// sum of its patterns' estimates, and components multiply — the
// cartesian the join engine would actually produce between them.
func bgpCost(b BGP, nslots int, compile func(TriplePattern) cPattern) int64 {
	if len(b.Patterns) == 0 {
		return 0
	}
	cps := make([]cPattern, len(b.Patterns))
	for i, tp := range b.Patterns {
		cps[i] = compile(tp)
	}
	// Union-find over pattern indexes, keyed by first pattern seen per
	// slot.
	parent := make([]int, len(cps))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	slotOwner := make([]int, nslots)
	for i := range slotOwner {
		slotOwner[i] = -1
	}
	for i, cp := range cps {
		for _, s := range cp.slots {
			if slotOwner[s] < 0 {
				slotOwner[s] = i
			} else {
				parent[find(i)] = find(slotOwner[s])
			}
		}
	}
	sums := make(map[int]int64, len(cps))
	total := int64(0)
	for i, cp := range cps {
		r := find(i)
		sums[r] = satAdd(sums[r], int64(cp.est))
		total = satAdd(total, int64(cp.est))
	}
	product := int64(1)
	for _, s := range sums {
		product = satMul(product, max64(s, 1))
	}
	return max64(total, product)
}

// patternSlotSet marks, in set, every variable slot the pattern's
// triple patterns touch (compile resolves Var→slot).
func patternSlotSet(gp GraphPattern, compile func(TriplePattern) cPattern, set []bool) {
	switch n := gp.(type) {
	case BGP:
		for _, tp := range n.Patterns {
			cp := compile(tp)
			for _, s := range cp.slots {
				set[s] = true
			}
		}
	case Group:
		for _, part := range n.Parts {
			patternSlotSet(part, compile, set)
		}
	case Filter:
		patternSlotSet(n.Inner, compile, set)
	case Optional:
		patternSlotSet(n.Left, compile, set)
		patternSlotSet(n.Right, compile, set)
	case Union:
		patternSlotSet(n.Left, compile, set)
		patternSlotSet(n.Right, compile, set)
	}
}

func slotsOverlap(a, b []bool) bool {
	for i, v := range a {
		if v && b[i] {
			return true
		}
	}
	return false
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
