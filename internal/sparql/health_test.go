package sparql

import (
	"testing"
	"time"
)

// TestBreakerTripAndCooldownInjectedClock pins the breaker lifecycle
// against an injected clock: trip after the threshold, steer picks
// away while open, admit the half-open probe once the cooldown
// elapses, and close again on success — no sleeping.
func TestBreakerTripAndCooldownInjectedClock(t *testing.T) {
	h := NewReplicaHealth(1, 2)
	now := time.Unix(1000, 0)
	h.SetClock(func() time.Time { return now })
	h.SetCooldown(100 * time.Millisecond)

	for i := 0; i < breakerTripThreshold; i++ {
		h.fail(0, 0)
	}
	if got := h.Trips(); got != 1 {
		t.Fatalf("Trips = %d after %d failures, want 1", got, breakerTripThreshold)
	}

	tried := make([]bool, 2)
	if r := h.pick(0, tried); r != 1 {
		t.Fatalf("pick with replica 0 open = %d, want 1", r)
	}

	// With the only closed replica tried and the cooldown not yet
	// elapsed, the open replica is still returned — a forced probe, so
	// an op never gives up without attempting every replica.
	tried[1] = true
	if r := h.pick(0, tried); r != 0 {
		t.Fatalf("forced probe = %d, want 0", r)
	}

	now = now.Add(150 * time.Millisecond)
	for _, bi := range h.Snapshot() {
		if bi.Shard == 0 && bi.Replica == 0 && bi.State != "half-open" {
			t.Fatalf("replica 0 state after cooldown = %q, want half-open", bi.State)
		}
	}
	if r := h.pick(0, tried); r != 0 {
		t.Fatalf("half-open probe = %d, want 0", r)
	}

	h.ok(0, 0, time.Millisecond)
	for _, bi := range h.Snapshot() {
		if bi.Shard == 0 && bi.Replica == 0 && bi.State != "closed" {
			t.Fatalf("replica 0 state after success = %q, want closed", bi.State)
		}
	}
}

// TestBreakerTripThresholdConfigurable pins SetTripThreshold: with a
// threshold of 1 a single failure opens the breaker.
func TestBreakerTripThresholdConfigurable(t *testing.T) {
	h := NewReplicaHealth(1, 2)
	h.SetTripThreshold(1)
	h.fail(0, 0)
	if got := h.Trips(); got != 1 {
		t.Fatalf("Trips = %d after one failure with threshold 1, want 1", got)
	}
	// Out-of-range overrides are ignored, not applied.
	h2 := NewReplicaHealth(1, 2)
	h2.SetTripThreshold(0)
	h2.fail(0, 0)
	if got := h2.Trips(); got != 0 {
		t.Fatalf("Trips = %d, want 0 (threshold override of 0 must be ignored)", got)
	}
}

// TestPickWarmsUnsampledReplicas pins the warmup rule: replicas that
// have never answered are picked (in round-robin order) before latency
// steering takes over, so every replica's score gets a first sample.
func TestPickWarmsUnsampledReplicas(t *testing.T) {
	h := NewReplicaHealth(1, 3)
	tried := make([]bool, 3)
	seen := make(map[int]bool)
	for i := 0; i < 3; i++ {
		r := h.pick(0, tried)
		if seen[r] {
			t.Fatalf("warmup revisited replica %d before sampling all", r)
		}
		seen[r] = true
		h.ok(0, r, time.Millisecond)
	}
}

// TestPickSteersByLatencyScore pins latency steering: among sampled
// closed replicas, pick prefers the lowest EWMA, and excluding it
// falls through to the next best.
func TestPickSteersByLatencyScore(t *testing.T) {
	h := NewReplicaHealth(1, 3)
	h.ok(0, 0, 10*time.Millisecond)
	h.ok(0, 1, 1*time.Millisecond)
	h.ok(0, 2, 5*time.Millisecond)
	tried := make([]bool, 3)
	if r := h.pick(0, tried); r != 1 {
		t.Fatalf("pick = %d, want 1 (fastest)", r)
	}
	tried[1] = true
	if r := h.pick(0, tried); r != 2 {
		t.Fatalf("pick excluding fastest = %d, want 2", r)
	}
}

// TestPickPenalizesErrorRate pins the error-rate fold: a fast but
// flaky replica loses to a slower reliable one once its decayed error
// rate inflates the score past the alternative.
func TestPickPenalizesErrorRate(t *testing.T) {
	h := NewReplicaHealth(1, 2)
	h.ok(0, 0, 1*time.Millisecond)
	h.ok(0, 1, 2*time.Millisecond)
	// Two failures: errRate = 1-(1-α)² = 0.51, score = 1ms·(1+4·0.51) ≈
	// 3ms > 2ms; the breaker (threshold 3) stays closed.
	h.fail(0, 0)
	h.fail(0, 0)
	tried := make([]bool, 2)
	if r := h.pick(0, tried); r != 1 {
		t.Fatalf("pick = %d, want 1 (reliable beats fast-but-flaky)", r)
	}
}

// TestHedgeAfterAdaptiveP95 pins the adaptive hedge delay: the
// fallback until enough samples exist, then the op class's observed
// p95, per class and nil-receiver safe.
func TestHedgeAfterAdaptiveP95(t *testing.T) {
	h := NewReplicaHealth(1, 2)
	if d := h.hedgeAfter(opClassScan); d != fallbackHedgeDelay {
		t.Fatalf("hedgeAfter unsampled = %v, want fallback %v", d, fallbackHedgeDelay)
	}
	// 64 samples, 7 of them 40ms stragglers: ceil(0.95·64) = 61st of
	// the sorted window lands in the straggler tail.
	for i := 0; i < latWindowSize; i++ {
		d := 2 * time.Millisecond
		if i%10 == 0 {
			d = 40 * time.Millisecond
		}
		h.noteOp(opClassScan, d)
	}
	if d := h.hedgeAfter(opClassScan); d != 40*time.Millisecond {
		t.Fatalf("hedgeAfter = %v, want 40ms (the window p95)", d)
	}
	// Classes are independent.
	if d := h.hedgeAfter(opClassPushdown); d != fallbackHedgeDelay {
		t.Fatalf("hedgeAfter other class = %v, want fallback", d)
	}
	// Nil health (unsharded runs) degrades to the fallback.
	var hn *ReplicaHealth
	hn.noteOp(opClassScan, time.Second)
	if d := hn.hedgeAfter(opClassScan); d != fallbackHedgeDelay {
		t.Fatalf("nil hedgeAfter = %v, want fallback", d)
	}
}
