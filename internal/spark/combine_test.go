package spark

import (
	"fmt"
	"reflect"
	"testing"
)

// CombineByKey with a combiner type different from the value type: a
// running (sum, count) average.
func TestCombineByKeySemantics(t *testing.T) {
	ctx := testCtx()
	data := []Pair[string, int]{{"a", 2}, {"b", 10}, {"a", 4}, {"a", 6}, {"b", 20}}
	type sc struct {
		sum, n int
	}
	combined := CombineByKey(Parallelize(ctx, data),
		func(v int) sc { return sc{v, 1} },
		func(c sc, v int) sc { return sc{c.sum + v, c.n + 1} },
		func(a, b sc) sc { return sc{a.sum + b.sum, a.n + b.n} })
	got := map[string]sc{}
	for _, p := range combined.Collect() {
		got[p.Key] = p.Value
	}
	want := map[string]sc{"a": {12, 3}, "b": {30, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CombineByKey = %v, want %v", got, want)
	}
	if !IsKeyPartitioned(combined) {
		t.Fatal("CombineByKey result must be key-partitioned")
	}
}

// twoPassReduceByKey is the pre-combiner-scatter reduceByKey algorithm,
// reimplemented over the public API: map-side combine per source
// partition in record order, scatter the combined records (placement
// per the hash partitioner, merged in source order), then reduce each
// destination in first-seen key order. The combiner-aware scatter must
// reproduce its per-partition key order exactly.
func twoPassReduceByKey(r *RDD[Pair[string, int]], f func(a, b int) int) [][]Pair[string, int] {
	n := r.NumPartitions()
	combined := make([][]Pair[string, int], n)
	for i := 0; i < n; i++ {
		m := map[string]int{}
		var order []string
		for _, rec := range r.Partition(i) {
			if cur, ok := m[rec.Key]; ok {
				m[rec.Key] = f(cur, rec.Value)
			} else {
				m[rec.Key] = rec.Value
				order = append(order, rec.Key)
			}
		}
		for _, k := range order {
			combined[i] = append(combined[i], Pair[string, int]{k, m[k]})
		}
	}
	p := NewHashPartitioner[string](n)
	out := make([][]Pair[string, int], n)
	for dst := 0; dst < n; dst++ {
		m := map[string]int{}
		var order []string
		for src := 0; src < n; src++ {
			for _, rec := range combined[src] {
				if p.Partition(rec.Key) != dst {
					continue
				}
				if cur, ok := m[rec.Key]; ok {
					m[rec.Key] = f(cur, rec.Value)
				} else {
					m[rec.Key] = rec.Value
					order = append(order, rec.Key)
				}
			}
		}
		for _, k := range order {
			out[dst] = append(out[dst], Pair[string, int]{k, m[k]})
		}
	}
	return out
}

// The combiner-aware scatter must be deterministic and keep the exact
// per-partition key order of the old two-pass reduceByKey, so results
// and placement are bit-compatible across the rewrite.
func TestCombineByKeyKeyOrderMatchesTwoPass(t *testing.T) {
	ctx := testCtx()
	data := make([]Pair[string, int], 400)
	for i := range data {
		data[i] = Pair[string, int]{fmt.Sprintf("key-%d", (i*13)%37), i}
	}
	r := ParallelizeN(ctx, data, 4)
	add := func(a, b int) int { return a + b }
	got := ReduceByKey(r, add)
	want := twoPassReduceByKey(r, add)
	if got.NumPartitions() != len(want) {
		t.Fatalf("partitions = %d, want %d", got.NumPartitions(), len(want))
	}
	for i := range want {
		g := got.Partition(i)
		if len(g) == 0 && len(want[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(append([]Pair[string, int]{}, g...), want[i]) {
			t.Fatalf("partition %d order diverged:\n got %v\nwant %v", i, g, want[i])
		}
	}
}

// The intermediate-RDD pass is gone: only combined records cross the
// shuffle, so shuffle records are bounded by distinct keys per source
// partition — never the raw record count.
func TestReduceByKeySpillFreeShuffle(t *testing.T) {
	ctx := testCtx()
	const records, keys = 10000, 100
	data := make([]Pair[int, int], records)
	for i := range data {
		data[i] = Pair[int, int]{i % keys, i}
	}
	r := Parallelize(ctx, data)
	before := ctx.Snapshot()
	sums := ReduceByKey(r, func(a, b int) int { return a + b })
	d := ctx.Snapshot().Diff(before)
	limit := int64(keys * r.NumPartitions())
	if d.ShuffleRecords == 0 || d.ShuffleRecords > limit {
		t.Fatalf("shuffle records = %d, want in (0, %d] (distinct keys per source partition)", d.ShuffleRecords, limit)
	}
	if d.Stages != 1 {
		t.Fatalf("stages = %d, want 1 (single combiner-scatter shuffle)", d.Stages)
	}
	if d.ShuffleBytes <= 0 {
		t.Fatalf("shuffle bytes = %d, want > 0", d.ShuffleBytes)
	}
	if got := sums.Count(); got != keys {
		t.Fatalf("result keys = %d, want %d", got, keys)
	}
}

// A side already hash-partitioned with the matching partition count
// must fold in place: reduceByKey over co-partitioned data performs no
// shuffle (Spark's known-partitioner optimization), so it can never
// meter as more expensive than groupByKey on the same input.
func TestReduceByKeyCoPartitionedSkipsShuffle(t *testing.T) {
	ctx := testCtx()
	data := make([]Pair[int, int], 500)
	for i := range data {
		data[i] = Pair[int, int]{i % 20, i}
	}
	placed := PartitionBy(Parallelize(ctx, data), NewHashPartitioner[int](4))
	before := ctx.Snapshot()
	sums := ReduceByKey(placed, func(a, b int) int { return a + b })
	d := ctx.Snapshot().Diff(before)
	if d.ShuffleRecords != 0 || d.Stages != 0 {
		t.Fatalf("co-partitioned reduceByKey shuffled %d records over %d stages, want 0/0", d.ShuffleRecords, d.Stages)
	}
	want := map[int]int{}
	for _, rec := range data {
		want[rec.Key] += rec.Value
	}
	got := map[int]int{}
	for _, p := range sums.Collect() {
		got[p.Key] = p.Value
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("co-partitioned reduceByKey = %v, want %v", got, want)
	}
	if !IsKeyPartitioned(sums) {
		t.Fatal("result must stay key-partitioned")
	}
}

// GroupByKey keeps its contract: no map-side combine, so the full raw
// dataset crosses the shuffle — and a side that is already
// key-partitioned skips the shuffle entirely.
func TestGroupByKeyShuffleContract(t *testing.T) {
	ctx := testCtx()
	data := make([]Pair[int, int], 1000)
	for i := range data {
		data[i] = Pair[int, int]{i % 10, i}
	}
	r := Parallelize(ctx, data)
	before := ctx.Snapshot()
	grouped := GroupByKey(r)
	d := ctx.Snapshot().Diff(before)
	if d.ShuffleRecords != int64(len(data)) {
		t.Fatalf("groupByKey shuffled %d records, want %d (no map-side combine)", d.ShuffleRecords, len(data))
	}
	total := 0
	for _, p := range grouped.Collect() {
		total += len(p.Value)
	}
	if total != len(data) {
		t.Fatalf("grouped %d values, want %d", total, len(data))
	}

	placed := PartitionBy(r, NewHashPartitioner[int](4))
	before = ctx.Snapshot()
	regrouped := GroupByKey(placed)
	d = ctx.Snapshot().Diff(before)
	if d.ShuffleRecords != 0 {
		t.Fatalf("key-partitioned groupByKey shuffled %d records, want 0", d.ShuffleRecords)
	}
	if got := regrouped.Collect(); len(got) != 10 {
		t.Fatalf("regrouped keys = %d, want 10", len(got))
	}
}
