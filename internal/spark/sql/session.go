package sql

import (
	"fmt"

	"repro/internal/spark"
)

// Session is the simulated SparkSession: a catalog of registered tables
// plus the SQL entry points.
type Session struct {
	ctx    *spark.Context
	tables map[string]*DataFrame
}

// NewSession creates an empty session bound to ctx.
func NewSession(ctx *spark.Context) *Session {
	return &Session{ctx: ctx, tables: make(map[string]*DataFrame)}
}

// Context returns the owning spark context.
func (s *Session) Context() *spark.Context { return s.ctx }

// RegisterTable makes df queryable under name, replacing any previous
// registration.
func (s *Session) RegisterTable(name string, df *DataFrame) { s.tables[name] = df }

// DropTable removes a registration.
func (s *Session) DropTable(name string) { delete(s.tables, name) }

// Table returns the registered DataFrame.
func (s *Session) Table(name string) (*DataFrame, bool) {
	df, ok := s.tables[name]
	return df, ok
}

// TableNames lists registered tables (unsorted).
func (s *Session) TableNames() []string {
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	return out
}

// Query parses, optimizes, and executes a SQL statement.
func (s *Session) Query(sqlText string) (*DataFrame, error) {
	plan, err := ParseSQL(sqlText)
	if err != nil {
		return nil, err
	}
	return s.Run(plan)
}

// Run optimizes and executes an already-built logical plan.
func (s *Session) Run(plan Plan) (*DataFrame, error) {
	return s.Execute(s.Optimize(plan))
}

// Explain returns the optimized plan for a SQL statement as text.
func (s *Session) Explain(sqlText string) (string, error) {
	plan, err := ParseSQL(sqlText)
	if err != nil {
		return "", err
	}
	return ExplainPlan(s.Optimize(plan)), nil
}

// Execute runs a logical plan without further optimization.
func (s *Session) Execute(p Plan) (*DataFrame, error) {
	switch n := p.(type) {
	case *Scan:
		df, ok := s.tables[n.Table]
		if !ok {
			return nil, fmt.Errorf("sql: unknown table %q", n.Table)
		}
		return df, nil
	case *InlineData:
		return n.DF, nil
	case *Project:
		in, err := s.Execute(n.Input)
		if err != nil {
			return nil, err
		}
		if len(n.Cols) == 1 && n.Cols[0] == "*" {
			return in, nil
		}
		return in.Select(n.Cols...)
	case *FilterNode:
		in, err := s.Execute(n.Input)
		if err != nil {
			return nil, err
		}
		return in.Filter(n.Pred)
	case *JoinNode:
		l, err := s.Execute(n.Left)
		if err != nil {
			return nil, err
		}
		r, err := s.Execute(n.Right)
		if err != nil {
			return nil, err
		}
		on := n.On
		if len(on) == 0 {
			on = l.Schema().Shared(r.Schema())
		}
		if len(on) == 0 {
			return l.CrossJoin(r), nil
		}
		return l.Join(r, on, n.Strategy)
	case *UnionNode:
		l, err := s.Execute(n.Left)
		if err != nil {
			return nil, err
		}
		r, err := s.Execute(n.Right)
		if err != nil {
			return nil, err
		}
		return l.Union(r)
	case *DistinctNode:
		in, err := s.Execute(n.Input)
		if err != nil {
			return nil, err
		}
		return in.Distinct(), nil
	case *SortNode:
		in, err := s.Execute(n.Input)
		if err != nil {
			return nil, err
		}
		return in.OrderBy(n.Col, n.Asc)
	case *LimitNode:
		in, err := s.Execute(n.Input)
		if err != nil {
			return nil, err
		}
		if n.Offset > 0 {
			in = in.Offset(n.Offset)
		}
		if n.N >= 0 {
			in = in.Limit(n.N)
		}
		return in, nil
	case *AggNode:
		in, err := s.Execute(n.Input)
		if err != nil {
			return nil, err
		}
		return in.Aggregate(n.GroupCols, n.Fn, n.Col)
	default:
		return nil, fmt.Errorf("sql: cannot execute plan node %T", p)
	}
}
