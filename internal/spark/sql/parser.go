package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseSQL parses a SQL subset into a logical plan:
//
//	SELECT [DISTINCT] list FROM source {JOIN source [ON a = b]}
//	  [WHERE expr] [GROUP BY cols] [ORDER BY col [ASC|DESC]]
//	  [LIMIT n] [OFFSET n]
//
// where list is *, columns ("c" / "c AS x"), or one aggregate
// (COUNT/SUM/AVG/MIN/MAX), and source is a table name or a
// parenthesized subquery with an alias. Bare JOIN is a natural join on
// all shared columns — exactly the form S2RDF emits for SPARQL BGPs.
func ParseSQL(text string) (Plan, error) {
	toks, err := lexSQL(text)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	plan, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.done() {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	return plan, nil
}

type sqlToken struct {
	kind string // "ident", "number", "string", "punct"
	text string
}

func lexSQL(text string) ([]sqlToken, error) {
	var toks []sqlToken
	i := 0
	for i < len(text) {
		c := rune(text[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			var b strings.Builder
			for j < len(text) {
				if text[j] == '\'' {
					if j+1 < len(text) && text[j+1] == '\'' { // escaped quote
						b.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				b.WriteByte(text[j])
				j++
			}
			if j >= len(text) {
				return nil, fmt.Errorf("sql: unterminated string literal")
			}
			toks = append(toks, sqlToken{"string", b.String()})
			i = j + 1
		case unicode.IsDigit(c) || (c == '-' && i+1 < len(text) && unicode.IsDigit(rune(text[i+1]))):
			j := i + 1
			for j < len(text) && (unicode.IsDigit(rune(text[j])) || text[j] == '.') {
				j++
			}
			toks = append(toks, sqlToken{"number", text[i:j]})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < len(text) && (unicode.IsLetter(rune(text[j])) || unicode.IsDigit(rune(text[j])) || text[j] == '_' || text[j] == '.') {
				j++
			}
			toks = append(toks, sqlToken{"ident", text[i:j]})
			i = j
		case strings.ContainsRune("(),*", c):
			toks = append(toks, sqlToken{"punct", string(c)})
			i++
		case strings.ContainsRune("=<>!", c):
			j := i + 1
			if j < len(text) && strings.ContainsRune("=<>", rune(text[j])) {
				j++
			}
			toks = append(toks, sqlToken{"punct", text[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("sql: unexpected character %q", c)
		}
	}
	return toks, nil
}

type sqlParser struct {
	toks []sqlToken
	pos  int
}

func (p *sqlParser) done() bool { return p.pos >= len(p.toks) }

func (p *sqlParser) peek() sqlToken {
	if p.done() {
		return sqlToken{"eof", ""}
	}
	return p.toks[p.pos]
}

func (p *sqlParser) next() sqlToken {
	t := p.peek()
	p.pos++
	return t
}

func (p *sqlParser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == "ident" && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *sqlParser) acceptPunct(s string) bool {
	t := p.peek()
	if t.kind == "punct" && t.text == s {
		p.pos++
		return true
	}
	return false
}

type selectItem struct {
	col   string // column name or "*" (or aggregate argument)
	alias string
	agg   AggFunc // empty when plain column
}

func (p *sqlParser) parseQuery() (Plan, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	distinct := p.acceptKeyword("DISTINCT")

	items, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	plan, err := p.parseSource()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("JOIN") {
		right, err := p.parseSource()
		if err != nil {
			return nil, err
		}
		var on []string
		if p.acceptKeyword("ON") {
			a := p.next()
			if a.kind != "ident" {
				return nil, fmt.Errorf("sql: expected column in ON, got %q", a.text)
			}
			if p.acceptPunct("=") {
				b := p.next()
				if b.kind != "ident" {
					return nil, fmt.Errorf("sql: expected column after =, got %q", b.text)
				}
				if a.text != b.text {
					// Rename right side to the left's column name, then join.
					right = &Project{Input: right, Cols: []string{"*"}} // placeholder, resolved below
					return nil, fmt.Errorf("sql: ON %s = %s with different names is unsupported; alias the columns first", a.text, b.text)
				}
				on = []string{a.text}
			} else {
				on = []string{a.text}
			}
		}
		plan = &JoinNode{Left: plan, Right: right, On: on, Strategy: JoinAuto}
	}

	if p.acceptKeyword("WHERE") {
		pred, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		plan = &FilterNode{Input: plan, Pred: pred}
	}

	var groupCols []string
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != "ident" {
				return nil, fmt.Errorf("sql: expected column in GROUP BY, got %q", t.text)
			}
			groupCols = append(groupCols, t.text)
			if !p.acceptPunct(",") {
				break
			}
		}
	}

	// Apply select list: either one aggregate (+ group cols) or plain columns.
	var aggItem *selectItem
	for i := range items {
		if items[i].agg != "" {
			if aggItem != nil {
				return nil, fmt.Errorf("sql: only one aggregate per query is supported")
			}
			aggItem = &items[i]
		}
	}
	if aggItem != nil {
		plan = &AggNode{Input: plan, GroupCols: groupCols, Fn: aggItem.agg, Col: aggItem.col}
		if aggItem.alias != "" {
			cols := append([]string{}, groupCols...)
			cols = append(cols, fmt.Sprintf("%s(%s) AS %s", aggItem.agg, aggItem.col, aggItem.alias))
			plan = &Project{Input: plan, Cols: cols}
		}
	} else if len(groupCols) > 0 {
		return nil, fmt.Errorf("sql: GROUP BY requires an aggregate in the select list")
	} else if !(len(items) == 1 && items[0].col == "*") {
		cols := make([]string, len(items))
		for i, it := range items {
			if it.alias != "" {
				cols[i] = it.col + " AS " + it.alias
			} else {
				cols[i] = it.col
			}
		}
		plan = &Project{Input: plan, Cols: cols}
	}

	if distinct {
		plan = &DistinctNode{Input: plan}
	}

	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != "ident" {
			return nil, fmt.Errorf("sql: expected column in ORDER BY, got %q", t.text)
		}
		asc := true
		if p.acceptKeyword("DESC") {
			asc = false
		} else {
			p.acceptKeyword("ASC")
		}
		plan = &SortNode{Input: plan, Col: t.text, Asc: asc}
	}

	limit, offset := -1, 0
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != "number" {
			return nil, fmt.Errorf("sql: expected number after LIMIT, got %q", t.text)
		}
		fmt.Sscanf(t.text, "%d", &limit)
	}
	if p.acceptKeyword("OFFSET") {
		t := p.next()
		if t.kind != "number" {
			return nil, fmt.Errorf("sql: expected number after OFFSET, got %q", t.text)
		}
		fmt.Sscanf(t.text, "%d", &offset)
	}
	if limit >= 0 || offset > 0 {
		plan = &LimitNode{Input: plan, N: limit, Offset: offset}
	}
	return plan, nil
}

func (p *sqlParser) parseSelectList() ([]selectItem, error) {
	if p.acceptPunct("*") {
		return []selectItem{{col: "*"}}, nil
	}
	var items []selectItem
	for {
		t := p.next()
		if t.kind != "ident" {
			return nil, fmt.Errorf("sql: expected select item, got %q", t.text)
		}
		upper := strings.ToUpper(t.text)
		var item selectItem
		switch upper {
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			if p.acceptPunct("(") {
				var arg string
				if p.acceptPunct("*") {
					arg = "*"
				} else {
					at := p.next()
					if at.kind != "ident" {
						return nil, fmt.Errorf("sql: expected column in %s(), got %q", upper, at.text)
					}
					arg = at.text
				}
				if !p.acceptPunct(")") {
					return nil, fmt.Errorf("sql: expected ) after aggregate")
				}
				item = selectItem{col: arg, agg: AggFunc(upper)}
				break
			}
			item = selectItem{col: t.text}
		default:
			item = selectItem{col: t.text}
		}
		if p.acceptKeyword("AS") {
			at := p.next()
			if at.kind != "ident" {
				return nil, fmt.Errorf("sql: expected alias, got %q", at.text)
			}
			item.alias = at.text
		}
		items = append(items, item)
		if !p.acceptPunct(",") {
			break
		}
	}
	return items, nil
}

func (p *sqlParser) parseSource() (Plan, error) {
	if p.acceptPunct("(") {
		sub, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if !p.acceptPunct(")") {
			return nil, fmt.Errorf("sql: expected ) after subquery")
		}
		// Optional alias; subqueries are positional so the alias is
		// accepted and discarded.
		if p.acceptKeyword("AS") {
			p.next()
		} else if t := p.peek(); t.kind == "ident" && !isClauseKeyword(t.text) {
			p.next()
		}
		return sub, nil
	}
	t := p.next()
	if t.kind != "ident" {
		return nil, fmt.Errorf("sql: expected table name, got %q", t.text)
	}
	return &Scan{Table: t.text}, nil
}

func isClauseKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "JOIN", "WHERE", "GROUP", "ORDER", "LIMIT", "OFFSET", "ON", "UNION":
		return true
	}
	return false
}

// parseExpr parses OR-level expressions.
func (p *sqlParser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = BinOp{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *sqlParser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = BinOp{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *sqlParser) parseUnary() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	}
	if p.acceptPunct("(") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.acceptPunct(")") {
			return nil, fmt.Errorf("sql: expected )")
		}
		return e, nil
	}
	return p.parseComparison()
}

func (p *sqlParser) parseComparison() (Expr, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != "punct" {
		return nil, fmt.Errorf("sql: expected comparison operator, got %q", t.text)
	}
	switch t.text {
	case "=", "!=", "<>", "<", "<=", ">", ">=":
		p.next()
	default:
		return nil, fmt.Errorf("sql: bad operator %q", t.text)
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return BinOp{Op: t.text, L: left, R: right}, nil
}

func (p *sqlParser) parseOperand() (Expr, error) {
	t := p.next()
	switch t.kind {
	case "ident":
		return Col{Name: t.text}, nil
	case "number":
		v, err := ParseNumber(t.text)
		if err != nil {
			return nil, err
		}
		return Lit{Value: v}, nil
	case "string":
		return Lit{Value: t.text}, nil
	default:
		return nil, fmt.Errorf("sql: bad operand %q", t.text)
	}
}
