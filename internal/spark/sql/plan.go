package sql

import (
	"fmt"
	"strings"
)

// Plan is a node of the logical query plan, the representation the
// Catalyst-style optimizer rewrites before execution.
type Plan interface {
	// Children returns the input plans.
	Children() []Plan
	// Explain renders the node (without children) for EXPLAIN output.
	Explain() string
}

// Scan reads a registered table.
type Scan struct{ Table string }

// Children implements Plan.
func (s *Scan) Children() []Plan { return nil }

// Explain implements Plan.
func (s *Scan) Explain() string { return "Scan " + s.Table }

// Project selects/renames columns; each entry is "col" or "col AS alias".
type Project struct {
	Input Plan
	Cols  []string
}

// Children implements Plan.
func (p *Project) Children() []Plan { return []Plan{p.Input} }

// Explain implements Plan.
func (p *Project) Explain() string { return "Project " + strings.Join(p.Cols, ", ") }

// FilterNode keeps rows matching Pred.
type FilterNode struct {
	Input Plan
	Pred  Expr
}

// Children implements Plan.
func (f *FilterNode) Children() []Plan { return []Plan{f.Input} }

// Explain implements Plan.
func (f *FilterNode) Explain() string { return "Filter " + f.Pred.String() }

// JoinNode joins two plans on the named shared columns (natural join on
// all shared columns when On is empty).
type JoinNode struct {
	Left, Right Plan
	On          []string
	Strategy    JoinStrategy
}

// Children implements Plan.
func (j *JoinNode) Children() []Plan { return []Plan{j.Left, j.Right} }

// Explain implements Plan.
func (j *JoinNode) Explain() string {
	on := "natural"
	if len(j.On) > 0 {
		on = strings.Join(j.On, ", ")
	}
	return fmt.Sprintf("Join[%s] on %s", j.Strategy, on)
}

// UnionNode appends Right below Left.
type UnionNode struct{ Left, Right Plan }

// Children implements Plan.
func (u *UnionNode) Children() []Plan { return []Plan{u.Left, u.Right} }

// Explain implements Plan.
func (u *UnionNode) Explain() string { return "Union" }

// DistinctNode removes duplicate rows.
type DistinctNode struct{ Input Plan }

// Children implements Plan.
func (d *DistinctNode) Children() []Plan { return []Plan{d.Input} }

// Explain implements Plan.
func (d *DistinctNode) Explain() string { return "Distinct" }

// SortNode orders rows by one column.
type SortNode struct {
	Input Plan
	Col   string
	Asc   bool
}

// Children implements Plan.
func (s *SortNode) Children() []Plan { return []Plan{s.Input} }

// Explain implements Plan.
func (s *SortNode) Explain() string {
	dir := "ASC"
	if !s.Asc {
		dir = "DESC"
	}
	return "Sort " + s.Col + " " + dir
}

// LimitNode truncates to N rows after skipping Offset rows.
type LimitNode struct {
	Input  Plan
	N      int
	Offset int
}

// Children implements Plan.
func (l *LimitNode) Children() []Plan { return []Plan{l.Input} }

// Explain implements Plan.
func (l *LimitNode) Explain() string { return fmt.Sprintf("Limit %d offset %d", l.N, l.Offset) }

// AggNode groups by GroupCols and computes Fn(Col).
type AggNode struct {
	Input     Plan
	GroupCols []string
	Fn        AggFunc
	Col       string
}

// Children implements Plan.
func (a *AggNode) Children() []Plan { return []Plan{a.Input} }

// Explain implements Plan.
func (a *AggNode) Explain() string {
	return fmt.Sprintf("Aggregate [%s] %s(%s)", strings.Join(a.GroupCols, ","), a.Fn, a.Col)
}

// InlineData embeds a pre-built DataFrame in the plan (used when engines
// compose plans programmatically).
type InlineData struct{ DF *DataFrame }

// Children implements Plan.
func (i *InlineData) Children() []Plan { return nil }

// Explain implements Plan.
func (i *InlineData) Explain() string { return fmt.Sprintf("InlineData %d rows", i.DF.Count()) }

// ExplainPlan renders the whole plan tree, one node per line.
func ExplainPlan(p Plan) string {
	var b strings.Builder
	var walk func(Plan, int)
	walk = func(n Plan, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Explain())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return b.String()
}

// --- Optimizer (Catalyst-style rule passes) ---

// Optimize applies the rule passes in order: predicate pushdown, join
// reordering by estimated cardinality, then physical join-strategy
// selection against the broadcast threshold.
func (s *Session) Optimize(p Plan) Plan {
	p = pushDownFilters(p, s)
	p = reorderJoins(p, s)
	p = chooseJoinStrategies(p, s)
	return p
}

// planSchema computes the output schema of a plan without executing it.
func (s *Session) planSchema(p Plan) (Schema, error) {
	switch n := p.(type) {
	case *Scan:
		df, ok := s.tables[n.Table]
		if !ok {
			return nil, fmt.Errorf("sql: unknown table %q", n.Table)
		}
		return df.Schema(), nil
	case *InlineData:
		return n.DF.Schema(), nil
	case *Project:
		out := make(Schema, len(n.Cols))
		for i, c := range n.Cols {
			name, alias := splitAlias(c)
			if alias != "" {
				out[i] = alias
			} else {
				out[i] = name
			}
		}
		return out, nil
	case *FilterNode:
		return s.planSchema(n.Input)
	case *JoinNode:
		ls, err := s.planSchema(n.Left)
		if err != nil {
			return nil, err
		}
		rs, err := s.planSchema(n.Right)
		if err != nil {
			return nil, err
		}
		on := n.On
		if len(on) == 0 {
			on = ls.Shared(rs)
		}
		out := ls.Clone()
		for _, c := range rs {
			if !contains(on, c) {
				out = append(out, c)
			}
		}
		return out, nil
	case *UnionNode:
		return s.planSchema(n.Left)
	case *DistinctNode:
		return s.planSchema(n.Input)
	case *SortNode:
		return s.planSchema(n.Input)
	case *LimitNode:
		return s.planSchema(n.Input)
	case *AggNode:
		out := append(Schema{}, n.GroupCols...)
		return append(out, fmt.Sprintf("%s(%s)", n.Fn, n.Col)), nil
	default:
		return nil, fmt.Errorf("sql: unknown plan node %T", p)
	}
}

// estimateRows approximates the output cardinality of a plan. Scans are
// exact (the catalog knows table sizes); filters apply a fixed
// selectivity; joins multiply by a containment factor. The estimates
// drive join ordering and broadcast selection exactly as Catalyst's
// statistics do.
func (s *Session) estimateRows(p Plan) int {
	const filterSelectivity = 4 // keep 1/4
	switch n := p.(type) {
	case *Scan:
		if df, ok := s.tables[n.Table]; ok {
			return df.Count()
		}
		return 0
	case *InlineData:
		return n.DF.Count()
	case *Project:
		return s.estimateRows(n.Input)
	case *FilterNode:
		e := s.estimateRows(n.Input) / filterSelectivity
		if e < 1 {
			e = 1
		}
		return e
	case *JoinNode:
		l := s.estimateRows(n.Left)
		r := s.estimateRows(n.Right)
		if l > r {
			return l
		}
		return r
	case *UnionNode:
		return s.estimateRows(n.Left) + s.estimateRows(n.Right)
	case *DistinctNode:
		return s.estimateRows(n.Input)
	case *SortNode:
		return s.estimateRows(n.Input)
	case *LimitNode:
		e := s.estimateRows(n.Input)
		if n.N < e {
			return n.N
		}
		return e
	case *AggNode:
		if len(n.GroupCols) == 0 {
			return 1
		}
		return s.estimateRows(n.Input)
	default:
		return 0
	}
}

// pushDownFilters moves filter predicates below joins when every column
// the predicate references comes from one side.
func pushDownFilters(p Plan, s *Session) Plan {
	switch n := p.(type) {
	case *FilterNode:
		n.Input = pushDownFilters(n.Input, s)
		if j, ok := n.Input.(*JoinNode); ok {
			ls, lerr := s.planSchema(j.Left)
			rs, rerr := s.planSchema(j.Right)
			if lerr == nil && rerr == nil {
				cols := n.Pred.Columns()
				if allIn(cols, ls) {
					j.Left = &FilterNode{Input: j.Left, Pred: n.Pred}
					return j
				}
				if allIn(cols, rs) {
					j.Right = &FilterNode{Input: j.Right, Pred: n.Pred}
					return j
				}
			}
		}
		return n
	case *JoinNode:
		n.Left = pushDownFilters(n.Left, s)
		n.Right = pushDownFilters(n.Right, s)
		return n
	case *Project:
		n.Input = pushDownFilters(n.Input, s)
		return n
	case *UnionNode:
		n.Left = pushDownFilters(n.Left, s)
		n.Right = pushDownFilters(n.Right, s)
		return n
	case *DistinctNode:
		n.Input = pushDownFilters(n.Input, s)
		return n
	case *SortNode:
		n.Input = pushDownFilters(n.Input, s)
		return n
	case *LimitNode:
		n.Input = pushDownFilters(n.Input, s)
		return n
	case *AggNode:
		n.Input = pushDownFilters(n.Input, s)
		return n
	default:
		return p
	}
}

func allIn(cols []string, schema Schema) bool {
	for _, c := range cols {
		if !schema.Has(c) {
			return false
		}
	}
	return true
}

// reorderJoins flattens chains of natural inner joins and greedily
// re-links them smallest-first, keeping each step connected (sharing at
// least one column with the accumulated left side) to avoid accidental
// cross products — the optimization SPARQLGX and S2RDF both apply.
func reorderJoins(p Plan, s *Session) Plan {
	switch n := p.(type) {
	case *JoinNode:
		if len(n.On) > 0 {
			n.Left = reorderJoins(n.Left, s)
			n.Right = reorderJoins(n.Right, s)
			return n
		}
		leaves := flattenJoins(n)
		if len(leaves) <= 2 {
			n.Left = reorderJoins(n.Left, s)
			n.Right = reorderJoins(n.Right, s)
			return n
		}
		for i := range leaves {
			leaves[i] = reorderJoins(leaves[i], s)
		}
		return s.linkJoins(leaves)
	case *FilterNode:
		n.Input = reorderJoins(n.Input, s)
		return n
	case *Project:
		n.Input = reorderJoins(n.Input, s)
		return n
	case *UnionNode:
		n.Left = reorderJoins(n.Left, s)
		n.Right = reorderJoins(n.Right, s)
		return n
	case *DistinctNode:
		n.Input = reorderJoins(n.Input, s)
		return n
	case *SortNode:
		n.Input = reorderJoins(n.Input, s)
		return n
	case *LimitNode:
		n.Input = reorderJoins(n.Input, s)
		return n
	case *AggNode:
		n.Input = reorderJoins(n.Input, s)
		return n
	default:
		return p
	}
}

// flattenJoins collects the leaves of a tree of natural inner joins.
func flattenJoins(p Plan) []Plan {
	if j, ok := p.(*JoinNode); ok && len(j.On) == 0 {
		return append(flattenJoins(j.Left), flattenJoins(j.Right)...)
	}
	return []Plan{p}
}

// linkJoins greedily builds a left-deep join tree: start from the
// smallest leaf, repeatedly attach the smallest connected leaf.
func (s *Session) linkJoins(leaves []Plan) Plan {
	remaining := append([]Plan{}, leaves...)
	best := 0
	for i := 1; i < len(remaining); i++ {
		if s.estimateRows(remaining[i]) < s.estimateRows(remaining[best]) {
			best = i
		}
	}
	current := remaining[best]
	remaining = append(remaining[:best], remaining[best+1:]...)
	curSchema, _ := s.planSchema(current)

	for len(remaining) > 0 {
		pick := -1
		for i, cand := range remaining {
			cs, err := s.planSchema(cand)
			if err != nil {
				continue
			}
			if len(curSchema.Shared(cs)) == 0 {
				continue
			}
			if pick < 0 || s.estimateRows(cand) < s.estimateRows(remaining[pick]) {
				pick = i
			}
		}
		if pick < 0 {
			// No connected leaf: fall back to the smallest (cross product).
			pick = 0
			for i := 1; i < len(remaining); i++ {
				if s.estimateRows(remaining[i]) < s.estimateRows(remaining[pick]) {
					pick = i
				}
			}
		}
		next := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		current = &JoinNode{Left: current, Right: next}
		curSchema, _ = s.planSchema(current)
	}
	return current
}

// chooseJoinStrategies resolves JoinAuto into broadcast or partitioned
// using estimated cardinalities against the broadcast threshold.
func chooseJoinStrategies(p Plan, s *Session) Plan {
	switch n := p.(type) {
	case *JoinNode:
		n.Left = chooseJoinStrategies(n.Left, s)
		n.Right = chooseJoinStrategies(n.Right, s)
		if n.Strategy == JoinAuto {
			threshold := s.ctx.Conf().BroadcastThreshold
			if s.estimateRows(n.Left) < threshold || s.estimateRows(n.Right) < threshold {
				n.Strategy = JoinBroadcast
			} else {
				n.Strategy = JoinPartitioned
			}
		}
		return n
	case *FilterNode:
		n.Input = chooseJoinStrategies(n.Input, s)
		return n
	case *Project:
		n.Input = chooseJoinStrategies(n.Input, s)
		return n
	case *UnionNode:
		n.Left = chooseJoinStrategies(n.Left, s)
		n.Right = chooseJoinStrategies(n.Right, s)
		return n
	case *DistinctNode:
		n.Input = chooseJoinStrategies(n.Input, s)
		return n
	case *SortNode:
		n.Input = chooseJoinStrategies(n.Input, s)
		return n
	case *LimitNode:
		n.Input = chooseJoinStrategies(n.Input, s)
		return n
	case *AggNode:
		n.Input = chooseJoinStrategies(n.Input, s)
		return n
	default:
		return p
	}
}
