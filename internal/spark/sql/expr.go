package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a scalar expression evaluated against a row. The SQL layer and
// the SPARQL FILTER translation both compile to this representation.
type Expr interface {
	// Eval computes the expression over row (described by schema).
	Eval(row Row, schema Schema) (any, error)
	// Columns lists the column names the expression references.
	Columns() []string
	// String renders the expression in SQL syntax.
	String() string
}

// Col references a column by name.
type Col struct{ Name string }

// Eval implements Expr.
func (c Col) Eval(row Row, schema Schema) (any, error) {
	i := schema.Index(c.Name)
	if i < 0 {
		return nil, errColumn(c.Name, schema)
	}
	return row[i], nil
}

// Columns implements Expr.
func (c Col) Columns() []string { return []string{c.Name} }

func (c Col) String() string { return c.Name }

// Lit is a literal constant.
type Lit struct{ Value any }

// Eval implements Expr.
func (l Lit) Eval(Row, Schema) (any, error) { return l.Value, nil }

// Columns implements Expr.
func (l Lit) Columns() []string { return nil }

func (l Lit) String() string {
	if s, ok := l.Value.(string); ok {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	return fmt.Sprint(l.Value)
}

// BinOp applies a binary operator. Supported ops: = != < <= > >= AND OR.
type BinOp struct {
	Op   string
	L, R Expr
}

// Eval implements Expr.
func (b BinOp) Eval(row Row, schema Schema) (any, error) {
	lv, err := b.L.Eval(row, schema)
	if err != nil {
		return nil, err
	}
	switch b.Op {
	case "AND":
		lb, _ := lv.(bool)
		if !lb {
			return false, nil
		}
		rv, err := b.R.Eval(row, schema)
		if err != nil {
			return nil, err
		}
		rb, _ := rv.(bool)
		return rb, nil
	case "OR":
		lb, _ := lv.(bool)
		if lb {
			return true, nil
		}
		rv, err := b.R.Eval(row, schema)
		if err != nil {
			return nil, err
		}
		rb, _ := rv.(bool)
		return rb, nil
	}
	rv, err := b.R.Eval(row, schema)
	if err != nil {
		return nil, err
	}
	cmp, ok := Compare(lv, rv)
	if !ok {
		return false, nil
	}
	switch b.Op {
	case "=":
		return cmp == 0, nil
	case "!=", "<>":
		return cmp != 0, nil
	case "<":
		return cmp < 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">":
		return cmp > 0, nil
	case ">=":
		return cmp >= 0, nil
	default:
		return nil, fmt.Errorf("sql: unknown operator %q", b.Op)
	}
}

// Columns implements Expr.
func (b BinOp) Columns() []string { return append(b.L.Columns(), b.R.Columns()...) }

func (b BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Not negates a boolean expression.
type Not struct{ E Expr }

// Eval implements Expr.
func (n Not) Eval(row Row, schema Schema) (any, error) {
	v, err := n.E.Eval(row, schema)
	if err != nil {
		return nil, err
	}
	vb, _ := v.(bool)
	return !vb, nil
}

// Columns implements Expr.
func (n Not) Columns() []string { return n.E.Columns() }

func (n Not) String() string { return "NOT " + n.E.String() }

// Compare orders two scalar values. Numbers compare numerically (ints and
// floats interoperate); strings lexically; bools false<true. The second
// result is false when the values are not comparable.
func Compare(a, b any) (int, bool) {
	if af, aok := toFloat(a); aok {
		if bf, bok := toFloat(b); bok {
			switch {
			case af < bf:
				return -1, true
			case af > bf:
				return 1, true
			default:
				return 0, true
			}
		}
	}
	as, aok := a.(string)
	bs, bok := b.(string)
	if aok && bok {
		return strings.Compare(as, bs), true
	}
	ab, aok2 := a.(bool)
	bb, bok2 := b.(bool)
	if aok2 && bok2 {
		switch {
		case ab == bb:
			return 0, true
		case !ab:
			return -1, true
		default:
			return 1, true
		}
	}
	// Mixed string/number: compare by string rendering so dictionaries of
	// RDF terms (all strings) behave predictably.
	if aok || bok {
		return strings.Compare(fmt.Sprint(a), fmt.Sprint(b)), true
	}
	return 0, false
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int:
		return float64(x), true
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint32:
		return float64(x), true
	case uint64:
		return float64(x), true
	case float32:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// ParseNumber converts a SQL numeric token into int64 or float64.
func ParseNumber(tok string) (any, error) {
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return i, nil
	}
	f, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return nil, fmt.Errorf("sql: bad number %q", tok)
	}
	return f, nil
}

// Eq builds the common column-equals-literal predicate.
func Eq(col string, value any) Expr { return BinOp{Op: "=", L: Col{col}, R: Lit{value}} }

// ColEq builds a column-equals-column predicate.
func ColEq(a, b string) Expr { return BinOp{Op: "=", L: Col{a}, R: Col{b}} }

// And conjoins expressions, returning nil for an empty list.
func And(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = BinOp{Op: "AND", L: out, R: e}
		}
	}
	return out
}
