// Package sql simulates Spark SQL: DataFrames (schema'd, immutable,
// partitioned tables built on the spark RDD substrate), a SQL subset
// parser, and a Catalyst-style optimizer with predicate pushdown,
// projection pruning, size-based broadcast-join selection, and join
// reordering. S2RDF [24] and the hybrid study [21] are built on it.
package sql

import (
	"fmt"
	"strings"
)

// Row is one record of a DataFrame; values are aligned with the schema.
type Row []any

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Schema is the ordered list of column names of a DataFrame.
type Schema []string

// Index returns the position of column name, or -1 if absent.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c == name {
			return i
		}
	}
	return -1
}

// Has reports whether the schema contains column name.
func (s Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Shared returns the column names present in both schemas, in s order.
func (s Schema) Shared(other Schema) []string {
	var out []string
	for _, c := range s {
		if other.Has(c) {
			out = append(out, c)
		}
	}
	return out
}

// Clone returns a copy of the schema.
func (s Schema) Clone() Schema { return append(Schema(nil), s...) }

func (s Schema) String() string { return strings.Join(s, ", ") }

// errColumn builds the canonical unknown-column error.
func errColumn(name string, s Schema) error {
	return fmt.Errorf("sql: unknown column %q (schema: %s)", name, s)
}
