package sql

import (
	"strings"
	"testing"

	"repro/internal/spark"
)

func TestOrderByNegativeNumbers(t *testing.T) {
	ctx, _ := testSession(t)
	df := mustDF(t, ctx, Schema{"v"}, []Row{
		{int64(-5)}, {int64(3)}, {int64(-40)}, {int64(0)},
	})
	o, err := df.OrderBy("v", true)
	if err != nil {
		t.Fatal(err)
	}
	rows := o.Collect()
	want := []int64{-40, -5, 0, 3}
	for i, r := range rows {
		if r[0] != want[i] {
			t.Fatalf("order = %v", rows)
		}
	}
}

func TestOrderByStringsVsNumbersMixedColumn(t *testing.T) {
	ctx, _ := testSession(t)
	df := mustDF(t, ctx, Schema{"v"}, []Row{{"b"}, {"a"}, {"c"}})
	o, err := df.OrderBy("v", true)
	if err != nil {
		t.Fatal(err)
	}
	if o.Collect()[0][0] != "a" {
		t.Fatalf("order = %v", o.Collect())
	}
	if _, err := df.OrderBy("missing", true); err == nil {
		t.Fatal("expected unknown-column error")
	}
}

func TestOffsetBeyondEnd(t *testing.T) {
	ctx, _ := testSession(t)
	df := mustDF(t, ctx, Schema{"v"}, []Row{{1}, {2}})
	if got := df.Offset(10).Count(); got != 0 {
		t.Fatalf("offset beyond end = %d rows", got)
	}
	if got := df.Limit(0).Count(); got != 0 {
		t.Fatalf("limit 0 = %d rows", got)
	}
}

func TestAggregateErrors(t *testing.T) {
	ctx, _ := testSession(t)
	df := peopleDF(t, ctx)
	if _, err := df.Aggregate([]string{"nope"}, AggCount, "*"); err == nil {
		t.Fatal("unknown group column accepted")
	}
	if _, err := df.Aggregate(nil, AggSum, "nope"); err == nil {
		t.Fatal("unknown agg column accepted")
	}
	if _, err := df.Aggregate(nil, AggSum, "*"); err == nil {
		t.Fatal("SUM(*) accepted")
	}
}

func TestAggregateSkipsNulls(t *testing.T) {
	ctx, _ := testSession(t)
	df := mustDF(t, ctx, Schema{"g", "v"}, []Row{
		{"a", int64(10)},
		{"a", nil},
		{"b", nil},
	})
	avg, err := df.Aggregate([]string{"g"}, AggAvg, "v")
	if err != nil {
		t.Fatal(err)
	}
	byG := map[string]any{}
	for _, r := range avg.Collect() {
		byG[r[0].(string)] = r[1]
	}
	if byG["a"] != 10.0 {
		t.Fatalf("avg a = %v", byG["a"])
	}
	if byG["b"] != nil {
		t.Fatalf("avg of all-null group = %v", byG["b"])
	}
}

func TestJoinErrors(t *testing.T) {
	ctx, _ := testSession(t)
	a := mustDF(t, ctx, Schema{"x"}, []Row{{1}})
	b := mustDF(t, ctx, Schema{"y"}, []Row{{1}})
	if _, err := a.Join(b, nil, JoinAuto); err == nil {
		t.Fatal("empty join columns accepted")
	}
	if _, err := a.Join(b, []string{"x"}, JoinAuto); err == nil {
		t.Fatal("join column missing on right accepted")
	}
	if _, err := a.Join(b, []string{"y"}, JoinAuto); err == nil {
		t.Fatal("join column missing on left accepted")
	}
	if _, err := a.LeftOuterJoin(b, []string{"x"}); err == nil {
		t.Fatal("left outer join with bad column accepted")
	}
	if _, err := a.Union(mustDF(t, ctx, Schema{"p", "q"}, nil)); err == nil {
		t.Fatal("union with mismatched schema accepted")
	}
}

func TestJoinStrategyString(t *testing.T) {
	if JoinAuto.String() != "auto" || JoinPartitioned.String() != "partitioned" || JoinBroadcast.String() != "broadcast" {
		t.Fatal("strategy names changed")
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := Schema{"a", "b", "c"}
	if !s.Has("b") || s.Has("z") {
		t.Fatal("Has wrong")
	}
	shared := s.Shared(Schema{"c", "a"})
	if len(shared) != 2 || shared[0] != "a" {
		t.Fatalf("Shared = %v", shared)
	}
	if s.String() != "a, b, c" {
		t.Fatalf("String = %q", s.String())
	}
	r := Row{1, "x"}
	c := r.Clone()
	c[0] = 99
	if r[0] != 1 {
		t.Fatal("Clone aliases storage")
	}
}

func TestPlanExplains(t *testing.T) {
	nodes := []Plan{
		&Scan{Table: "t"},
		&Project{Input: &Scan{Table: "t"}, Cols: []string{"a"}},
		&FilterNode{Input: &Scan{Table: "t"}, Pred: Eq("a", 1)},
		&JoinNode{Left: &Scan{Table: "t"}, Right: &Scan{Table: "u"}, On: []string{"a"}},
		&UnionNode{Left: &Scan{Table: "t"}, Right: &Scan{Table: "u"}},
		&DistinctNode{Input: &Scan{Table: "t"}},
		&SortNode{Input: &Scan{Table: "t"}, Col: "a", Asc: false},
		&LimitNode{Input: &Scan{Table: "t"}, N: 3, Offset: 1},
		&AggNode{Input: &Scan{Table: "t"}, GroupCols: []string{"g"}, Fn: AggAvg, Col: "v"},
	}
	for _, n := range nodes {
		if n.Explain() == "" {
			t.Fatalf("%T: empty explain", n)
		}
	}
	text := ExplainPlan(nodes[3])
	if !strings.Contains(text, "Join") || !strings.Contains(text, "Scan u") {
		t.Fatalf("tree = %s", text)
	}
}

func TestInlineDataPlanNode(t *testing.T) {
	ctx, sess := testSession(t)
	df := mustDF(t, ctx, Schema{"x"}, []Row{{int64(1)}, {int64(2)}})
	plan := &FilterNode{Input: &InlineData{DF: df}, Pred: BinOp{Op: ">", L: Col{"x"}, R: Lit{int64(1)}}}
	out, err := sess.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.Count() != 1 {
		t.Fatalf("rows = %d", out.Count())
	}
	if (&InlineData{DF: df}).Explain() == "" {
		t.Fatal("empty explain")
	}
}

func TestSessionTableManagement(t *testing.T) {
	ctx, sess := testSession(t)
	df := peopleDF(t, ctx)
	sess.RegisterTable("p", df)
	if _, ok := sess.Table("p"); !ok {
		t.Fatal("table lost")
	}
	if names := sess.TableNames(); len(names) != 1 || names[0] != "p" {
		t.Fatalf("names = %v", names)
	}
	sess.DropTable("p")
	if _, ok := sess.Table("p"); ok {
		t.Fatal("drop failed")
	}
	if sess.Context() != ctx {
		t.Fatal("wrong context")
	}
}

func TestCompressionFactorDocumented(t *testing.T) {
	// The survey's "up to 10 times larger data sets than RDD" claim is
	// modeled by this constant; pin it so the docs stay honest.
	if CompressionFactor != 10 {
		t.Fatalf("CompressionFactor = %d", CompressionFactor)
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{
		"SELECT x FROM t WHERE a = 'unterminated",
		"SELECT x FROM t WHERE a ~ b",
	} {
		if _, err := ParseSQL(bad); err == nil {
			t.Errorf("ParseSQL(%q) succeeded", bad)
		}
	}
}

func TestSQLMinMaxAggregates(t *testing.T) {
	ctx, sess := testSession(t)
	sess.RegisterTable("people", peopleDF(t, ctx))
	for _, c := range []struct {
		fn   string
		want int64
	}{{"MIN", 25}, {"MAX", 44}} {
		df, err := sess.Query("SELECT " + c.fn + "(age) FROM people")
		if err != nil {
			t.Fatal(err)
		}
		if got := df.Collect()[0][0]; got != c.want {
			t.Fatalf("%s = %v", c.fn, got)
		}
	}
}

func TestBroadcastThresholdDrivesAutoJoin(t *testing.T) {
	// With a tiny threshold, JoinAuto must fall back to the partitioned
	// join (both sides too big to broadcast).
	ctx := spark.NewContext(spark.Config{Parallelism: 2, Executors: 2, BroadcastThreshold: 1, MaxConcurrency: 2})
	mk := func(n int) *DataFrame {
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{"k" + string(rune('0'+i%3)), int64(i)}
		}
		df, err := NewDataFrame(ctx, Schema{"k", "v"}, rows)
		if err != nil {
			t.Fatal(err)
		}
		return df
	}
	a, b := mk(50), mk(40)
	before := ctx.Snapshot()
	if _, err := a.Join(b, []string{"k"}, JoinAuto); err != nil {
		t.Fatal(err)
	}
	d := ctx.Snapshot().Diff(before)
	if d.ShuffleRecords == 0 {
		t.Fatal("auto join below threshold should have shuffled")
	}
}
