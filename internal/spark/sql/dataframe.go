package sql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/spark"
)

// DataFrame is an immutable, schema'd, partitioned table — the simulated
// counterpart of org.apache.spark.sql.DataFrame. It wraps an RDD of rows
// so all shuffle/broadcast accounting flows through the spark substrate.
//
// Per the survey (Sec. III), DataFrames differ from raw RDDs in two ways
// that matter to the engines: the schema enables an optimizer, and the
// columnar encoding is far more compact than Java serialization. The
// compact encoding is modeled by CompressionFactor, which scales the
// byte cost the SQL layer reports for DataFrame shuffles.
type DataFrame struct {
	ctx    *spark.Context
	schema Schema
	rdd    *spark.RDD[Row]
}

// CompressionFactor models the columnar in-memory compression of
// DataFrames relative to RDD rows ("up to 10 times larger data sets than
// RDD can be managed", survey Sec. IV.A.3).
const CompressionFactor = 10

// NewDataFrame builds a DataFrame from rows. Rows shorter than the
// schema are padded with nils; longer rows are an error.
func NewDataFrame(ctx *spark.Context, schema Schema, rows []Row) (*DataFrame, error) {
	fixed := make([]Row, len(rows))
	for i, r := range rows {
		if len(r) > len(schema) {
			return nil, fmt.Errorf("sql: row %d has %d values for %d columns", i, len(r), len(schema))
		}
		row := make(Row, len(schema))
		copy(row, r)
		fixed[i] = row
	}
	return &DataFrame{ctx: ctx, schema: schema.Clone(), rdd: spark.Parallelize(ctx, fixed)}, nil
}

func fromRDD(ctx *spark.Context, schema Schema, rdd *spark.RDD[Row]) *DataFrame {
	return &DataFrame{ctx: ctx, schema: schema, rdd: rdd}
}

// Context returns the owning spark context.
func (d *DataFrame) Context() *spark.Context { return d.ctx }

// Schema returns the column names.
func (d *DataFrame) Schema() Schema { return d.schema.Clone() }

// RDD exposes the underlying row RDD (read-only by convention).
func (d *DataFrame) RDD() *spark.RDD[Row] { return d.rdd }

// Count returns the number of rows.
func (d *DataFrame) Count() int { return d.rdd.Count() }

// Collect gathers all rows to the driver.
func (d *DataFrame) Collect() []Row { return d.rdd.Collect() }

// Filter keeps rows where pred evaluates to true.
func (d *DataFrame) Filter(pred Expr) (*DataFrame, error) {
	for _, c := range pred.Columns() {
		if !d.schema.Has(c) {
			return nil, errColumn(c, d.schema)
		}
	}
	schema := d.schema
	out := d.rdd.Filter(func(r Row) bool {
		v, err := pred.Eval(r, schema)
		if err != nil {
			return false
		}
		b, _ := v.(bool)
		return b
	})
	return fromRDD(d.ctx, schema, out), nil
}

// Select projects (and optionally renames) columns. Each selection is
// "col" or "col AS alias".
func (d *DataFrame) Select(cols ...string) (*DataFrame, error) {
	idx := make([]int, len(cols))
	names := make(Schema, len(cols))
	for i, c := range cols {
		name, alias := splitAlias(c)
		j := d.schema.Index(name)
		if j < 0 {
			return nil, errColumn(name, d.schema)
		}
		idx[i] = j
		if alias != "" {
			names[i] = alias
		} else {
			names[i] = name
		}
	}
	out := spark.Map(d.rdd, func(r Row) Row {
		row := make(Row, len(idx))
		for i, j := range idx {
			row[i] = r[j]
		}
		return row
	})
	return fromRDD(d.ctx, names, out), nil
}

func splitAlias(c string) (name, alias string) {
	parts := strings.Fields(c)
	if len(parts) == 3 && strings.EqualFold(parts[1], "AS") {
		return parts[0], parts[2]
	}
	return strings.TrimSpace(c), ""
}

// WithColumnRenamed renames one column.
func (d *DataFrame) WithColumnRenamed(from, to string) (*DataFrame, error) {
	i := d.schema.Index(from)
	if i < 0 {
		return nil, errColumn(from, d.schema)
	}
	schema := d.schema.Clone()
	schema[i] = to
	return fromRDD(d.ctx, schema, d.rdd), nil
}

// Distinct removes duplicate rows (whole-row comparison) via a shuffle.
func (d *DataFrame) Distinct() *DataFrame {
	keyed := spark.KeyBy(d.rdd, rowKeyAll)
	reduced := spark.ReduceByKey(keyed, func(a, _ Row) Row { return a })
	out := spark.Values(reduced)
	return fromRDD(d.ctx, d.schema, out)
}

func rowKeyAll(r Row) string {
	var b strings.Builder
	for i, v := range r {
		if i > 0 {
			b.WriteByte(0)
		}
		fmt.Fprint(&b, v)
	}
	return b.String()
}

func rowKeyCols(r Row, idx []int) string {
	var b strings.Builder
	for i, j := range idx {
		if i > 0 {
			b.WriteByte(0)
		}
		fmt.Fprint(&b, r[j])
	}
	return b.String()
}

// Union appends another DataFrame with an identical schema.
func (d *DataFrame) Union(other *DataFrame) (*DataFrame, error) {
	if len(d.schema) != len(other.schema) {
		return nil, fmt.Errorf("sql: union schema mismatch: %v vs %v", d.schema, other.schema)
	}
	return fromRDD(d.ctx, d.schema, d.rdd.Union(other.rdd)), nil
}

// OrderBy sorts rows by column; asc selects the direction. The sort key
// uses Compare semantics (numeric when possible, else lexical).
func (d *DataFrame) OrderBy(col string, asc bool) (*DataFrame, error) {
	i := d.schema.Index(col)
	if i < 0 {
		return nil, errColumn(col, d.schema)
	}
	all := d.rdd.Collect()
	d.ctx.AddRead(0) // sort is a wide op; meter the shuffle explicitly below
	sorted := spark.SortBy(spark.ParallelizeN(d.ctx, all, d.rdd.NumPartitions()), func(r Row) string {
		return sortKey(r[i])
	})
	rows := sorted.Collect()
	if !asc {
		for l, r := 0, len(rows)-1; l < r; l, r = l+1, r-1 {
			rows[l], rows[r] = rows[r], rows[l]
		}
	}
	return fromRDD(d.ctx, d.schema, spark.ParallelizeN(d.ctx, rows, d.rdd.NumPartitions())), nil
}

// sortKey renders a value so lexical order matches Compare order within
// a column of homogeneous type: numbers are zero-padded.
func sortKey(v any) string {
	if f, ok := toFloat(v); ok {
		return fmt.Sprintf("%032.6f", f+1e15)
	}
	return fmt.Sprint(v)
}

// Limit returns the first n rows (with optional offset applied first).
func (d *DataFrame) Limit(n int) *DataFrame {
	rows := d.rdd.Take(n)
	return fromRDD(d.ctx, d.schema, spark.ParallelizeN(d.ctx, rows, 1))
}

// Offset skips the first n rows.
func (d *DataFrame) Offset(n int) *DataFrame {
	rows := d.rdd.Collect()
	if n > len(rows) {
		n = len(rows)
	}
	return fromRDD(d.ctx, d.schema, spark.ParallelizeN(d.ctx, rows[n:], d.rdd.NumPartitions()))
}

// JoinStrategy selects the physical join implementation.
type JoinStrategy int

const (
	// JoinAuto picks broadcast when one side is under the context's
	// BroadcastThreshold, else a partitioned shuffle join — Catalyst's
	// size-based policy.
	JoinAuto JoinStrategy = iota
	// JoinPartitioned forces the shuffle hash join.
	JoinPartitioned
	// JoinBroadcast forces broadcasting the smaller side.
	JoinBroadcast
)

func (s JoinStrategy) String() string {
	switch s {
	case JoinPartitioned:
		return "partitioned"
	case JoinBroadcast:
		return "broadcast"
	default:
		return "auto"
	}
}

// Join computes the natural inner join on the given shared columns using
// the chosen strategy. The result schema is the left schema followed by
// the right schema minus the join columns.
func (d *DataFrame) Join(other *DataFrame, on []string, strategy JoinStrategy) (*DataFrame, error) {
	if len(on) == 0 {
		return nil, fmt.Errorf("sql: join requires at least one column (use CrossJoin for products)")
	}
	li := make([]int, len(on))
	ri := make([]int, len(on))
	for i, c := range on {
		li[i] = d.schema.Index(c)
		ri[i] = other.schema.Index(c)
		if li[i] < 0 {
			return nil, errColumn(c, d.schema)
		}
		if ri[i] < 0 {
			return nil, errColumn(c, other.schema)
		}
	}
	// Result schema and right-side kept columns.
	schema := d.schema.Clone()
	var keep []int
	for j, c := range other.schema {
		if !contains(on, c) {
			schema = append(schema, c)
			keep = append(keep, j)
		}
	}

	leftKeyed := spark.KeyBy(d.rdd, func(r Row) string { return rowKeyCols(r, li) })
	rightKeyed := spark.KeyBy(other.rdd, func(r Row) string { return rowKeyCols(r, ri) })

	useBroadcast := strategy == JoinBroadcast
	if strategy == JoinAuto {
		threshold := d.ctx.Conf().BroadcastThreshold
		useBroadcast = other.Count() < threshold || d.Count() < threshold
	}

	var joined *spark.RDD[spark.Pair[string, spark.Tuple2[Row, Row]]]
	if useBroadcast {
		if other.Count() <= d.Count() {
			joined = spark.BroadcastJoin(leftKeyed, rightKeyed)
		} else {
			swapped := spark.BroadcastJoin(rightKeyed, leftKeyed)
			joined = spark.MapValues(swapped, func(t spark.Tuple2[Row, Row]) spark.Tuple2[Row, Row] {
				return spark.Tuple2[Row, Row]{A: t.B, B: t.A}
			})
		}
	} else {
		joined = spark.Join(leftKeyed, rightKeyed)
	}

	out := spark.Map(joined, func(p spark.Pair[string, spark.Tuple2[Row, Row]]) Row {
		row := make(Row, 0, len(schema))
		row = append(row, p.Value.A...)
		for _, j := range keep {
			row = append(row, p.Value.B[j])
		}
		return row
	})
	return fromRDD(d.ctx, schema, out), nil
}

// LeftOuterJoin keeps all left rows; right columns are nil when
// unmatched. Used by the SPARQL OPTIONAL translation.
func (d *DataFrame) LeftOuterJoin(other *DataFrame, on []string) (*DataFrame, error) {
	li := make([]int, len(on))
	ri := make([]int, len(on))
	for i, c := range on {
		li[i] = d.schema.Index(c)
		ri[i] = other.schema.Index(c)
		if li[i] < 0 {
			return nil, errColumn(c, d.schema)
		}
		if ri[i] < 0 {
			return nil, errColumn(c, other.schema)
		}
	}
	schema := d.schema.Clone()
	var keep []int
	for j, c := range other.schema {
		if !contains(on, c) {
			schema = append(schema, c)
			keep = append(keep, j)
		}
	}
	leftKeyed := spark.KeyBy(d.rdd, func(r Row) string { return rowKeyCols(r, li) })
	rightKeyed := spark.KeyBy(other.rdd, func(r Row) string { return rowKeyCols(r, ri) })
	joined := spark.LeftOuterJoin(leftKeyed, rightKeyed)
	out := spark.Map(joined, func(p spark.Pair[string, spark.Tuple2[Row, spark.Opt[Row]]]) Row {
		row := make(Row, 0, len(schema))
		row = append(row, p.Value.A...)
		for _, j := range keep {
			if p.Value.B.OK {
				row = append(row, p.Value.B.Val[j])
			} else {
				row = append(row, nil)
			}
		}
		return row
	})
	return fromRDD(d.ctx, schema, out), nil
}

// CrossJoin computes the Cartesian product — the fallback Spark SQL used
// for multi-pattern queries in the hybrid study [21], flagged there as a
// significant drawback.
func (d *DataFrame) CrossJoin(other *DataFrame) *DataFrame {
	schema := append(d.schema.Clone(), other.schema...)
	prod := spark.Cartesian(d.rdd, other.rdd)
	out := spark.Map(prod, func(t spark.Tuple2[Row, Row]) Row {
		row := make(Row, 0, len(schema))
		row = append(row, t.A...)
		row = append(row, t.B...)
		return row
	})
	return fromRDD(d.ctx, schema, out)
}

// AggFunc names an aggregate.
type AggFunc string

// Supported aggregates (the survey's BGP+ includes AVG and COUNT).
const (
	AggCount AggFunc = "COUNT"
	AggSum   AggFunc = "SUM"
	AggAvg   AggFunc = "AVG"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
)

// Aggregate groups by the given columns (possibly none, for a global
// aggregate) and computes fn over column col ("*" with COUNT counts
// rows). The result schema is groupCols + one column named e.g.
// "COUNT(x)".
func (d *DataFrame) Aggregate(groupCols []string, fn AggFunc, col string) (*DataFrame, error) {
	gi := make([]int, len(groupCols))
	for i, c := range groupCols {
		gi[i] = d.schema.Index(c)
		if gi[i] < 0 {
			return nil, errColumn(c, d.schema)
		}
	}
	vi := -1
	if col != "*" {
		vi = d.schema.Index(col)
		if vi < 0 {
			return nil, errColumn(col, d.schema)
		}
	} else if fn != AggCount {
		return nil, fmt.Errorf("sql: %s(*) is not defined", fn)
	}

	type acc struct {
		group      Row
		count      int
		sum        float64
		numeric    bool
		minV, maxV any
	}
	foldRow := func(a acc, r Row) acc {
		if a.group == nil {
			a.group = make(Row, len(gi))
			for i, j := range gi {
				a.group[i] = r[j]
			}
		}
		if vi < 0 {
			a.count++
			return a
		}
		v := r[vi]
		if v == nil {
			return a
		}
		a.count++
		if f, ok := toFloat(v); ok {
			a.sum += f
		} else {
			a.numeric = false
		}
		if a.minV == nil {
			a.minV, a.maxV = v, v
		} else {
			if c, ok := Compare(v, a.minV); ok && c < 0 {
				a.minV = v
			}
			if c, ok := Compare(v, a.maxV); ok && c > 0 {
				a.maxV = v
			}
		}
		return a
	}
	mergeAcc := func(a, b acc) acc {
		if a.group == nil {
			a.group = b.group
		}
		a.count += b.count
		a.sum += b.sum
		a.numeric = a.numeric && b.numeric
		if a.minV == nil {
			a.minV = b.minV
		} else if b.minV != nil {
			if c, ok := Compare(b.minV, a.minV); ok && c < 0 {
				a.minV = b.minV
			}
		}
		if a.maxV == nil {
			a.maxV = b.maxV
		} else if b.maxV != nil {
			if c, ok := Compare(b.maxV, a.maxV); ok && c > 0 {
				a.maxV = b.maxV
			}
		}
		return a
	}
	// Aggregation runs as a combineByKey: each group's accumulator is
	// folded map-side during the combiner scatter, so only one combined
	// record per (partition, group) crosses the shuffle — the grouped
	// value lists of the old groupByKey pipeline are never materialized.
	keyed := spark.KeyBy(d.rdd, func(r Row) string { return rowKeyCols(r, gi) })
	combined := spark.CombineByKey(keyed,
		func(r Row) acc { return foldRow(acc{numeric: true}, r) },
		foldRow,
		mergeAcc)
	schema := append(Schema{}, groupCols...)
	schema = append(schema, fmt.Sprintf("%s(%s)", fn, col))
	out := spark.Map(combined, func(p spark.Pair[string, acc]) Row {
		a := p.Value
		row := append(Row{}, a.group...)
		switch fn {
		case AggCount:
			row = append(row, int64(a.count))
		case AggSum:
			row = append(row, a.sum)
		case AggAvg:
			if a.count == 0 {
				row = append(row, nil)
			} else {
				row = append(row, a.sum/float64(a.count))
			}
		case AggMin:
			row = append(row, a.minV)
		case AggMax:
			row = append(row, a.maxV)
		}
		return row
	})
	return fromRDD(d.ctx, schema, out), nil
}

// Rows returns the rows sorted canonically — handy for tests that
// compare result sets.
func (d *DataFrame) Rows() []Row {
	rows := d.Collect()
	sort.Slice(rows, func(i, j int) bool { return rowKeyAll(rows[i]) < rowKeyAll(rows[j]) })
	return rows
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
