package sql

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/spark"
)

func testSession(t *testing.T) (*spark.Context, *Session) {
	t.Helper()
	ctx := spark.NewContext(spark.Config{Parallelism: 4, Executors: 2, BroadcastThreshold: 100, MaxConcurrency: 4})
	return ctx, NewSession(ctx)
}

func mustDF(t *testing.T, ctx *spark.Context, schema Schema, rows []Row) *DataFrame {
	t.Helper()
	df, err := NewDataFrame(ctx, schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	return df
}

func peopleDF(t *testing.T, ctx *spark.Context) *DataFrame {
	return mustDF(t, ctx, Schema{"name", "dept", "age"}, []Row{
		{"ann", "eng", int64(31)},
		{"bob", "sales", int64(25)},
		{"cid", "eng", int64(44)},
		{"dee", "hr", int64(25)},
	})
}

func deptDF(t *testing.T, ctx *spark.Context) *DataFrame {
	return mustDF(t, ctx, Schema{"dept", "floor"}, []Row{
		{"eng", int64(3)},
		{"sales", int64(1)},
	})
}

func TestDataFrameBasics(t *testing.T) {
	ctx, _ := testSession(t)
	df := peopleDF(t, ctx)
	if df.Count() != 4 {
		t.Fatalf("Count = %d", df.Count())
	}
	if got := df.Schema(); !reflect.DeepEqual(got, Schema{"name", "dept", "age"}) {
		t.Fatalf("Schema = %v", got)
	}
}

func TestNewDataFrameRejectsWideRows(t *testing.T) {
	ctx, _ := testSession(t)
	_, err := NewDataFrame(ctx, Schema{"a"}, []Row{{1, 2}})
	if err == nil {
		t.Fatal("expected error for too-wide row")
	}
}

func TestFilterAndSelect(t *testing.T) {
	ctx, _ := testSession(t)
	df := peopleDF(t, ctx)
	eng, err := df.Filter(Eq("dept", "eng"))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Count() != 2 {
		t.Fatalf("eng count = %d", eng.Count())
	}
	names, err := eng.Select("name AS who")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names.Schema(), Schema{"who"}) {
		t.Fatalf("schema = %v", names.Schema())
	}
	got := map[string]bool{}
	for _, r := range names.Collect() {
		got[r[0].(string)] = true
	}
	if !got["ann"] || !got["cid"] || len(got) != 2 {
		t.Fatalf("names = %v", got)
	}
}

func TestFilterUnknownColumn(t *testing.T) {
	ctx, _ := testSession(t)
	df := peopleDF(t, ctx)
	if _, err := df.Filter(Eq("nope", "x")); err == nil {
		t.Fatal("expected unknown-column error")
	}
	if _, err := df.Select("nope"); err == nil {
		t.Fatal("expected unknown-column error")
	}
}

func TestJoinNatural(t *testing.T) {
	ctx, _ := testSession(t)
	people := peopleDF(t, ctx)
	depts := deptDF(t, ctx)
	j, err := people.Join(depts, []string{"dept"}, JoinAuto)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j.Schema(), Schema{"name", "dept", "age", "floor"}) {
		t.Fatalf("join schema = %v", j.Schema())
	}
	if j.Count() != 3 { // dee's hr has no floor
		t.Fatalf("join count = %d", j.Count())
	}
}

func TestJoinStrategiesAgree(t *testing.T) {
	ctx, _ := testSession(t)
	people := peopleDF(t, ctx)
	depts := deptDF(t, ctx)
	p, err := people.Join(depts, []string{"dept"}, JoinPartitioned)
	if err != nil {
		t.Fatal(err)
	}
	b, err := people.Join(depts, []string{"dept"}, JoinBroadcast)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Rows(), b.Rows()) {
		t.Fatalf("strategy mismatch:\n%v\n%v", p.Rows(), b.Rows())
	}
}

func TestLeftOuterJoin(t *testing.T) {
	ctx, _ := testSession(t)
	people := peopleDF(t, ctx)
	depts := deptDF(t, ctx)
	j, err := people.LeftOuterJoin(depts, []string{"dept"})
	if err != nil {
		t.Fatal(err)
	}
	if j.Count() != 4 {
		t.Fatalf("left outer count = %d", j.Count())
	}
	for _, r := range j.Collect() {
		if r[1] == "hr" && r[3] != nil {
			t.Fatalf("hr should have nil floor: %v", r)
		}
	}
}

func TestCrossJoin(t *testing.T) {
	ctx, _ := testSession(t)
	a := mustDF(t, ctx, Schema{"x"}, []Row{{1}, {2}})
	b := mustDF(t, ctx, Schema{"y"}, []Row{{10}, {20}, {30}})
	if got := a.CrossJoin(b).Count(); got != 6 {
		t.Fatalf("cross join count = %d", got)
	}
}

func TestDistinctUnionOrderLimit(t *testing.T) {
	ctx, _ := testSession(t)
	a := mustDF(t, ctx, Schema{"v"}, []Row{{int64(3)}, {int64(1)}})
	b := mustDF(t, ctx, Schema{"v"}, []Row{{int64(3)}, {int64(2)}})
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Count() != 4 {
		t.Fatalf("union count = %d", u.Count())
	}
	d := u.Distinct()
	if d.Count() != 3 {
		t.Fatalf("distinct count = %d", d.Count())
	}
	o, err := d.OrderBy("v", true)
	if err != nil {
		t.Fatal(err)
	}
	rows := o.Collect()
	if rows[0][0] != int64(1) || rows[2][0] != int64(3) {
		t.Fatalf("order = %v", rows)
	}
	lim := o.Limit(2)
	if lim.Count() != 2 {
		t.Fatalf("limit count = %d", lim.Count())
	}
	off := o.Offset(2)
	if off.Count() != 1 || off.Collect()[0][0] != int64(3) {
		t.Fatalf("offset = %v", off.Collect())
	}
}

func TestOrderByDescending(t *testing.T) {
	ctx, _ := testSession(t)
	df := peopleDF(t, ctx)
	o, err := df.OrderBy("age", false)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Collect()[0][0]; got != "cid" {
		t.Fatalf("desc head = %v", got)
	}
}

func TestAggregates(t *testing.T) {
	ctx, _ := testSession(t)
	df := peopleDF(t, ctx)

	count, err := df.Aggregate(nil, AggCount, "*")
	if err != nil {
		t.Fatal(err)
	}
	if got := count.Collect()[0][0]; got != int64(4) {
		t.Fatalf("COUNT(*) = %v", got)
	}

	avg, err := df.Aggregate([]string{"dept"}, AggAvg, "age")
	if err != nil {
		t.Fatal(err)
	}
	byDept := map[string]float64{}
	for _, r := range avg.Collect() {
		byDept[r[0].(string)] = r[1].(float64)
	}
	if byDept["eng"] != 37.5 || byDept["sales"] != 25 {
		t.Fatalf("AVG by dept = %v", byDept)
	}

	mn, err := df.Aggregate(nil, AggMin, "age")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := toFloat(mn.Collect()[0][0]); got != 25 {
		t.Fatalf("MIN = %v", mn.Collect())
	}
	mx, err := df.Aggregate(nil, AggMax, "age")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := toFloat(mx.Collect()[0][0]); got != 44 {
		t.Fatalf("MAX = %v", mx.Collect())
	}
	sum, err := df.Aggregate(nil, AggSum, "age")
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Collect()[0][0].(float64); got != 125 {
		t.Fatalf("SUM = %v", got)
	}
}

func TestSQLEndToEnd(t *testing.T) {
	ctx, sess := testSession(t)
	sess.RegisterTable("people", peopleDF(t, ctx))
	sess.RegisterTable("depts", deptDF(t, ctx))

	df, err := sess.Query("SELECT name, floor FROM people JOIN depts WHERE age > 26 ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	rows := df.Collect()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "ann" || rows[1][0] != "cid" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSQLDistinctLimitOffset(t *testing.T) {
	ctx, sess := testSession(t)
	sess.RegisterTable("people", peopleDF(t, ctx))
	df, err := sess.Query("SELECT DISTINCT dept FROM people ORDER BY dept LIMIT 2 OFFSET 1")
	if err != nil {
		t.Fatal(err)
	}
	rows := df.Collect()
	if len(rows) != 2 || rows[0][0] != "hr" || rows[1][0] != "sales" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSQLAggregate(t *testing.T) {
	ctx, sess := testSession(t)
	sess.RegisterTable("people", peopleDF(t, ctx))
	df, err := sess.Query("SELECT dept, COUNT(*) AS n FROM people GROUP BY dept ORDER BY dept")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(df.Schema(), Schema{"dept", "n"}) {
		t.Fatalf("schema = %v", df.Schema())
	}
	rows := df.Collect()
	if len(rows) != 3 || rows[0][0] != "eng" || rows[0][1] != int64(2) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSQLSubquery(t *testing.T) {
	ctx, sess := testSession(t)
	sess.RegisterTable("people", peopleDF(t, ctx))
	sess.RegisterTable("depts", deptDF(t, ctx))
	df, err := sess.Query("SELECT name FROM (SELECT name, dept FROM people WHERE age < 30) sub JOIN depts")
	if err != nil {
		t.Fatal(err)
	}
	rows := df.Collect()
	if len(rows) != 1 || rows[0][0] != "bob" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSQLWhereAndOrNot(t *testing.T) {
	ctx, sess := testSession(t)
	sess.RegisterTable("people", peopleDF(t, ctx))
	df, err := sess.Query("SELECT name FROM people WHERE (dept = 'eng' AND age > 40) OR NOT age >= 25")
	if err != nil {
		t.Fatal(err)
	}
	rows := df.Collect()
	if len(rows) != 1 || rows[0][0] != "cid" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSQLParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"SELECT",
		"SELECT x",
		"SELECT x FROM",
		"SELECT x FROM t WHERE",
		"SELECT x FROM t LIMIT x",
		"SELECT x FROM t trailing garbage (",
		"SELECT x, FROM t",
		"SELECT x FROM t WHERE x = 'unterminated",
		"SELECT COUNT(x FROM t",
		"SELECT x FROM t GROUP BY y",
	} {
		if _, err := ParseSQL(bad); err == nil {
			t.Errorf("ParseSQL(%q) succeeded, want error", bad)
		}
	}
}

func TestSQLUnknownTable(t *testing.T) {
	_, sess := testSession(t)
	if _, err := sess.Query("SELECT x FROM missing"); err == nil || !strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("err = %v", err)
	}
}

func TestOptimizerPushesFilterBelowJoin(t *testing.T) {
	ctx, sess := testSession(t)
	sess.RegisterTable("people", peopleDF(t, ctx))
	sess.RegisterTable("depts", deptDF(t, ctx))
	plan, err := ParseSQL("SELECT name FROM people JOIN depts WHERE age > 26")
	if err != nil {
		t.Fatal(err)
	}
	optimized := sess.Optimize(plan)
	text := ExplainPlan(optimized)
	// The filter must appear below the join in the plan tree.
	joinLine := strings.Index(text, "Join")
	filterLine := strings.Index(text, "Filter")
	if joinLine < 0 || filterLine < 0 || filterLine < joinLine {
		t.Fatalf("filter not pushed below join:\n%s", text)
	}
	// And the result must still be correct.
	df, err := sess.Execute(optimized)
	if err != nil {
		t.Fatal(err)
	}
	if df.Count() != 2 {
		t.Fatalf("count = %d", df.Count())
	}
}

func TestOptimizerBroadcastSelection(t *testing.T) {
	ctx, sess := testSession(t)
	big := make([]Row, 500)
	for i := range big {
		big[i] = Row{"k" + string(rune('0'+i%10)), int64(i)}
	}
	sess.RegisterTable("big", mustDF(t, ctx, Schema{"k", "v"}, big))
	sess.RegisterTable("small", mustDF(t, ctx, Schema{"k", "w"}, []Row{{"k1", int64(1)}}))
	plan, _ := ParseSQL("SELECT v, w FROM big JOIN small")
	opt := sess.Optimize(plan)
	text := ExplainPlan(opt)
	if !strings.Contains(text, "Join[broadcast]") {
		t.Fatalf("expected broadcast join:\n%s", text)
	}
}

func TestOptimizerJoinReorderConnectivity(t *testing.T) {
	ctx, sess := testSession(t)
	// a(x,y) big, b(y,z) small, c(z,w) medium: optimal left-deep order
	// starts from b and must stay connected.
	mk := func(n int, s Schema) *DataFrame {
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{"v" + string(rune('0'+i%7)), "v" + string(rune('0'+i%5))}
		}
		return mustDF(t, ctx, s, rows)
	}
	sess.RegisterTable("a", mk(300, Schema{"x", "y"}))
	sess.RegisterTable("b", mk(10, Schema{"y", "z"}))
	sess.RegisterTable("c", mk(100, Schema{"z", "w"}))
	plan, _ := ParseSQL("SELECT x, w FROM a JOIN b JOIN c")
	opt := sess.Optimize(plan)
	df, err := sess.Execute(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Correctness: compare against unoptimized execution.
	base, err := sess.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(df.Rows(), base.Rows()) {
		t.Fatal("optimized plan changed the answer")
	}
}

func TestExplainQuery(t *testing.T) {
	ctx, sess := testSession(t)
	sess.RegisterTable("people", peopleDF(t, ctx))
	text, err := sess.Explain("SELECT name FROM people WHERE age > 30")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "Project") || !strings.Contains(text, "Scan people") {
		t.Fatalf("explain = %s", text)
	}
}

func TestCompareSemantics(t *testing.T) {
	cases := []struct {
		a, b any
		want int
	}{
		{int64(1), int64(2), -1},
		{int64(2), 2.0, 0},
		{"a", "b", -1},
		{"b", "a", 1},
		{true, false, 1},
		{false, false, 0},
		{int64(10), int64(9), 1},
	}
	for _, c := range cases {
		got, ok := Compare(c.a, c.b)
		if !ok || got != c.want {
			t.Errorf("Compare(%v,%v) = %d,%v want %d", c.a, c.b, got, ok, c.want)
		}
	}
	if _, ok := Compare(nil, nil); ok {
		t.Error("Compare(nil,nil) should not be comparable")
	}
}

func TestCompareNumbersProperty(t *testing.T) {
	f := func(a, b int32) bool {
		got, ok := Compare(int64(a), int64(b))
		if !ok {
			return false
		}
		switch {
		case a < b:
			return got < 0
		case a > b:
			return got > 0
		default:
			return got == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWithColumnRenamed(t *testing.T) {
	ctx, _ := testSession(t)
	df := peopleDF(t, ctx)
	r, err := df.WithColumnRenamed("name", "who")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schema().Has("who") || r.Schema().Has("name") {
		t.Fatalf("schema = %v", r.Schema())
	}
	if _, err := df.WithColumnRenamed("nope", "x"); err == nil {
		t.Fatal("expected error")
	}
}

func TestExprString(t *testing.T) {
	e := And(Eq("a", "x"), BinOp{Op: "<", L: Col{"b"}, R: Lit{int64(3)}})
	s := e.String()
	if !strings.Contains(s, "a = 'x'") || !strings.Contains(s, "b < 3") {
		t.Fatalf("String = %s", s)
	}
	if And() != nil {
		t.Fatal("And() should be nil")
	}
}
