package spark

import (
	"math/rand"
	"sync"
)

// Fault injection: Spark's headline property is that lost tasks are
// recomputed from lineage without changing results. The simulation
// reproduces that contract so engine tests can assert answers are
// identical under injected task failures.
//
// A FaultPlan decides, per task attempt, whether the attempt fails
// before producing output. Failed attempts are retried up to
// MaxAttempts; the retry is metered. Because tasks in this simulation
// are pure functions of their input partition (lineage), a retry is
// simply re-running the function — exactly Spark's recomputation
// model.

// FaultPlan injects task failures deterministically.
type FaultPlan struct {
	// FailureRate is the probability an attempt fails, in [0,1).
	FailureRate float64
	// MaxAttempts bounds retries per task (Spark's spark.task.maxFailures,
	// default 4).
	MaxAttempts int
	// Seed makes the injection deterministic.
	Seed int64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewFaultPlan returns a plan failing attempts with the given rate.
func NewFaultPlan(rate float64, seed int64) *FaultPlan {
	return &FaultPlan{FailureRate: rate, MaxAttempts: 4, Seed: seed}
}

// attemptFails reports whether the next attempt should fail.
func (f *FaultPlan) attemptFails() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(f.Seed))
	}
	return f.rng.Float64() < f.FailureRate
}

// InjectFaults installs a fault plan on the context; nil disables
// injection. Subsequent tasks run under the plan.
func (c *Context) InjectFaults(plan *FaultPlan) {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	c.faults = plan
}

// TaskRetries returns the number of task attempts that failed and were
// retried.
func (c *Context) TaskRetries() int64 { return c.taskRetries.Load() }

// runAttempts executes one task under the installed fault plan,
// retrying failed attempts. It panics when a task exhausts
// MaxAttempts, mirroring Spark aborting the stage.
func (c *Context) runAttempts(task func()) {
	c.faultMu.Lock()
	plan := c.faults
	c.faultMu.Unlock()
	if plan == nil {
		task()
		return
	}
	max := plan.MaxAttempts
	if max < 1 {
		max = 1
	}
	for attempt := 1; ; attempt++ {
		if !plan.attemptFails() {
			task()
			return
		}
		c.taskRetries.Add(1)
		if attempt >= max {
			panic("spark: task failed after max attempts (stage aborted)")
		}
	}
}
